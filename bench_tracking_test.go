// Multi-client tracking latency benchmark for the batched tracking
// service: N sessions track the same stereo sequence in lockstep
// rounds — every session submits one frame at the round barrier, the
// round ends when all N finish — once with independent per-session
// execution (the pre-pool default) and once through one shared
// trackpool. The reported ns/op is the track.total p50 across sessions
// and rounds, the number the PR's acceptance bar is stated in: with
// the pool's admission gate an admitted frame runs to completion, so
// its execution time is the single-session frame cost instead of
// paying N-way timeslicing, and the wait for admission moves to the
// explicit track.queue stage. End-to-end wall latency (queue included)
// is reported alongside as e2e-p50/e2e-p90 — scheduling can't shrink
// aggregate work, so e2e improves by the smaller run-to-completion
// margin while execution latency collapses.
package slamshare_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"slamshare/internal/bow"
	"slamshare/internal/camera"
	"slamshare/internal/dataset"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/img"
	"slamshare/internal/mapping"
	"slamshare/internal/smap"
	"slamshare/internal/tracking"
	"slamshare/internal/trackpool"
)

const (
	mctRounds = 8 // frames per session per iteration
	mctWarmup = 2 // rounds excluded from the latency sample
)

// mctFrames caches the prerendered stereo pairs so frame synthesis is
// paid once per process, not per sub-benchmark.
var mctFrames struct {
	once  sync.Once
	seq   *dataset.Sequence
	left  []*img.Gray
	right []*img.Gray
}

func mctLoad() (*dataset.Sequence, []*img.Gray, []*img.Gray) {
	mctFrames.once.Do(func() {
		mctFrames.seq = dataset.MH04(camera.Stereo)
		for i := 0; i < mctRounds; i++ {
			l, r := mctFrames.seq.StereoFrame(i)
			mctFrames.left = append(mctFrames.left, l)
			mctFrames.right = append(mctFrames.right, r)
		}
	})
	return mctFrames.seq, mctFrames.left, mctFrames.right
}

type mctSession struct {
	tr *tracking.Tracker
	mp *mapping.Mapper
	st *trackpool.Stream
}

func BenchmarkMultiClientTracking(b *testing.B) {
	seq, left, right := mctLoad()
	for _, mode := range []string{"indep", "pool"} {
		for _, n := range []int{1, 2, 4, 8} {
			b.Run(mode+"/"+benchName("sessions", n), func(b *testing.B) {
				var mu sync.Mutex
				var lat, e2e []time.Duration
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					var pool *trackpool.Pool
					if mode == "pool" {
						pool = trackpool.New(trackpool.Config{})
					}
					ses := make([]*mctSession, n)
					for si := range ses {
						m := smap.NewMap(bow.Default())
						alloc := smap.NewIDAllocator(si + 1)
						ex := feature.NewExtractor(feature.DefaultConfig())
						tr := tracking.New(m, seq.Rig, ex, alloc, si+1, tracking.DefaultConfig())
						s := &mctSession{tr: tr, mp: mapping.New(m, seq.Rig, alloc, si+1, mapping.DefaultConfig())}
						if pool != nil {
							s.st = pool.NewStream()
							ex.Par = s.st
							tr.SearchPar = s.st
						}
						ses[si] = s
					}
					b.StartTimer()
					for round := 0; round < mctRounds; round++ {
						var wg sync.WaitGroup
						for _, s := range ses {
							wg.Add(1)
							go func(s *mctSession) {
								defer wg.Done()
								var prior *geom.SE3
								if round == 0 {
									p := seq.GroundTruth(round).Inverse()
									prior = &p
								}
								t0 := time.Now()
								res := s.tr.ProcessFrame(left[round], right[round], seq.FrameTime(round), prior)
								d := time.Since(t0)
								if round >= mctWarmup {
									mu.Lock()
									lat = append(lat, res.Timing.Total)
									e2e = append(e2e, d)
									mu.Unlock()
								}
								if res.NewKF != nil {
									s.mp.ProcessKeyFrame(res.NewKF)
								}
							}(s)
						}
						wg.Wait()
					}
					b.StopTimer()
					if pool != nil {
						for _, s := range ses {
							s.st.Close()
						}
						pool.Close()
					}
					b.StartTimer()
				}
				sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
				sort.Slice(e2e, func(i, j int) bool { return e2e[i] < e2e[j] })
				// The track.total p50 IS the benchmark's headline: it
				// overrides wall ns/op so benchdiff records and diffs it.
				b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "ns/op")
				b.ReportMetric(float64(lat[int(float64(len(lat))*0.9)].Nanoseconds()), "p90-ns/frame")
				b.ReportMetric(float64(e2e[len(e2e)/2].Nanoseconds()), "e2e-p50-ns")
				b.ReportMetric(float64(e2e[int(float64(len(e2e))*0.9)].Nanoseconds()), "e2e-p90-ns")
			})
		}
	}
}
