// Command slamshare-front runs the cluster front router: devices
// connect to it as if it were a single SLAM-Share edge server, and it
// routes each session to the shard that owns the session's spatial
// region, moving ownership between shards as the user walks across a
// boundary. Shards are slamshare-server processes started with
// -shard-id/-shard-token.
//
// Fronts are replicated for failover: run two or more instances with
// the same -token and the same -shards table (and distinct -front-id),
// and give devices the full address list. A resume-capable client that
// loses its front presents its session token to any surviving replica,
// which adopts the session in place — no relocalization, no replayed
// answers.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"slamshare/internal/cluster"
	"slamshare/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7006", "listen address devices dial")
	shards := flag.String("shards", "", "comma-separated shard addresses; index is the shard ID")
	token := flag.Uint64("token", 0, "shared secret matching the shards' -shard-token")
	frontID := flag.Uint("front-id", 0, "this front's ID in shard-to-shard sender fields")
	minX := flag.Float64("min-x", -100, "west edge of the partitioned region (metres, world frame)")
	maxX := flag.Float64("max-x", 100, "east edge of the partitioned region")
	hysteresis := flag.Float64("hysteresis", 5, "half-width of the no-handoff band around shard boundaries (metres)")
	cooldown := flag.Duration("handoff-cooldown", 500*time.Millisecond, "minimum dwell between ownership handoffs per session")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars with the front failover gauges on this address")
	flag.Parse()

	list := strings.Split(*shards, ",")
	clean := list[:0]
	for _, a := range list {
		if a = strings.TrimSpace(a); a != "" {
			clean = append(clean, a)
		}
	}
	if len(clean) == 0 {
		log.Fatal("at least one -shards address is required")
	}

	front := cluster.NewFront(cluster.FrontConfig{
		Shards:  clean,
		Token:   *token,
		FrontID: uint32(*frontID),
		Part: cluster.Partition{
			Min:        *minX,
			Max:        *maxX,
			N:          len(clean),
			Hysteresis: *hysteresis,
		},
		HandoffCooldown: *cooldown,
	})

	if *debugAddr != "" {
		reg := obs.NewRegistry()
		front.RegisterDebug(reg)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug endpoint on http://%s/debug/vars", dln.Addr())
		go http.Serve(dln, obs.Handler(obs.NewTracer(reg, obs.DefaultRingSize)))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("slamshare-front on %s routing x∈[%v, %v) across %d shards: %v",
		ln.Addr(), *minX, *maxX, len(clean), clean)

	go func() {
		seen := 0
		for range time.Tick(5 * time.Second) {
			evs := front.Events()
			for ; seen < len(evs); seen++ {
				ev := evs[seen]
				if ev.Committed {
					log.Printf("handoff: client %d shard %d -> %d (epoch %d)",
						ev.Client, ev.From, ev.To, ev.Epoch)
				} else {
					log.Printf("handoff aborted: client %d shard %d -> %d: %s",
						ev.Client, ev.From, ev.To, ev.Reason)
				}
			}
		}
	}()

	if err := front.Serve(ln); err != nil {
		log.Fatal(err)
	}
}
