// Command benchdiff is the benchmark-regression harness: it runs the
// repo's tier-1 benchmarks (-benchtime=1x -count=N), records the
// per-benchmark medians to a BENCH_*.json file, and compares them
// against the most recent committed baseline. A >threshold ns/op
// regression fails the run, so a PR that slows the pipeline down
// shows up in CI next to the tests it kept green.
//
// Usage:
//
//	go run ./cmd/benchdiff                 # run, write BENCH_PR7.json, compare
//	go run ./cmd/benchdiff -threshold 0   # record only, never fail
//
// Medians over -count runs absorb scheduler noise; -benchtime=1x keeps
// a full sweep in minutes on a shared CI runner. The comparison is
// advisory by design (CI marks the job continue-on-error): on noisy
// hardware a red benchdiff is a prompt to look, not proof of a
// regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is the recorded median of one benchmark.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Samples     int     `json:"samples"`
}

// File is the on-disk BENCH_*.json format.
type File struct {
	Label       string            `json:"label"`
	GoVersion   string            `json:"go_version"`
	BenchRegexp string            `json:"bench_regexp"`
	Count       int               `json:"count"`
	Results     map[string]Result `json:"results"`
}

// benchLine matches one `go test -bench` result line. Names are kept
// verbatim — including any -GOMAXPROCS suffix — because sub-benchmarks
// also end in -<number> (e.g. /clients-8) and stripping would merge
// them; a differing core count between runs shows up as "new" rows,
// never as a false regression.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(.*)$`)

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output file (BENCH_<label>.json)")
	benchRe := flag.String("bench", "MultiClient|CodecRoundTrip|SpanStartEnd$|StageObserve|HistogramObserve|EncodeMap|DecodeMap|HandleFrameShedding|LifecycleCull|OffloadModes|OffloadAdaptiveRamp|ClusterMerge|ClusterScale|FrontAdopt",
		"benchmark regexp passed to go test -bench")
	pkgs := flag.String("pkgs", "./ ./internal/obs ./internal/video ./internal/wire ./internal/server ./internal/lifecycle ./internal/chaos ./internal/cluster",
		"space-separated packages to benchmark")
	count := flag.Int("count", 3, "runs per benchmark (median is recorded)")
	threshold := flag.Float64("threshold", 0.25, "fail when ns/op regresses by more than this fraction (0 disables)")
	baselinePath := flag.String("baseline", "", "baseline BENCH_*.json (default: newest other BENCH_*.json next to -out)")
	flag.Parse()

	results, err := runBenchmarks(*benchRe, strings.Fields(*pkgs), *count)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmarks matched", *benchRe)
		os.Exit(2)
	}

	label := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(*out), "BENCH_"), ".json")
	f := File{
		Label:       label,
		GoVersion:   runtime.Version(),
		BenchRegexp: *benchRe,
		Count:       *count,
		Results:     results,
	}
	blob, _ := json.MarshalIndent(f, "", "  ")
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Printf("wrote %s (%d benchmarks, median of %d)\n", *out, len(results), *count)

	base, baseName := loadBaseline(*baselinePath, *out)
	if base == nil {
		fmt.Println("no baseline BENCH_*.json found; recorded results only")
		return
	}
	fmt.Printf("comparing against %s\n", baseName)
	if regressed := compare(os.Stdout, base.Results, results, *threshold); regressed && *threshold > 0 {
		fmt.Printf("FAIL: ns/op regression beyond %.0f%% vs %s\n", *threshold*100, baseName)
		os.Exit(1)
	}
}

var (
	bPerOpRe = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsRe = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

// runBenchmarks executes the suite and returns per-benchmark medians.
func runBenchmarks(benchRe string, pkgs []string, count int) (map[string]Result, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchtime=1x",
		"-count", strconv.Itoa(count)}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBlob, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}

	type samples struct{ ns, b, allocs []float64 }
	all := map[string]*samples{}
	for _, line := range strings.Split(string(outBlob), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		s := all[name]
		if s == nil {
			s = &samples{}
			all[name] = s
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		s.ns = append(s.ns, ns)
		if bm := bPerOpRe.FindStringSubmatch(m[3]); bm != nil {
			v, _ := strconv.ParseFloat(bm[1], 64)
			s.b = append(s.b, v)
		}
		if am := allocsRe.FindStringSubmatch(m[3]); am != nil {
			v, _ := strconv.ParseFloat(am[1], 64)
			s.allocs = append(s.allocs, v)
		}
	}
	results := make(map[string]Result, len(all))
	for name, s := range all {
		results[name] = Result{
			NsPerOp:     median(s.ns),
			BPerOp:      median(s.b),
			AllocsPerOp: median(s.allocs),
			Samples:     len(s.ns),
		}
	}
	return results, nil
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// loadBaseline returns the baseline file to diff against: an explicit
// path, or the lexicographically newest BENCH_*.json beside out that
// is not out itself.
func loadBaseline(explicit, out string) (*File, string) {
	path := explicit
	if path == "" {
		pattern := filepath.Join(filepath.Dir(out), "BENCH_*.json")
		matches, _ := filepath.Glob(pattern)
		sort.Strings(matches)
		for i := len(matches) - 1; i >= 0; i-- {
			if filepath.Base(matches[i]) != filepath.Base(out) {
				path = matches[i]
				break
			}
		}
	}
	if path == "" {
		return nil, ""
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, ""
	}
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline %s: %v\n", path, err)
		return nil, ""
	}
	return &f, filepath.Base(path)
}

// compare prints the diff table and reports whether any shared
// benchmark regressed beyond the threshold.
func compare(w *os.File, old, new map[string]Result, threshold float64) bool {
	names := make([]string, 0, len(new))
	for n := range new {
		names = append(names, n)
	}
	sort.Strings(names)
	regressed := false
	fmt.Fprintf(w, "%-44s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, n := range names {
		nw := new[n]
		od, ok := old[n]
		if !ok || od.NsPerOp == 0 {
			fmt.Fprintf(w, "%-44s %14s %14.0f %8s\n", n, "-", nw.NsPerOp, "new")
			continue
		}
		delta := nw.NsPerOp/od.NsPerOp - 1
		mark := ""
		if threshold > 0 && delta > threshold {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %+7.1f%%%s\n", n, od.NsPerOp, nw.NsPerOp, delta*100, mark)
	}
	return regressed
}
