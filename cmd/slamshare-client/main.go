// Command slamshare-client replays a synthetic dataset sequence as an
// AR device against a running slamshare-server: IMU integration and
// video encoding on the client, SLAM on the server. The link can be
// shaped with tc-style delay and bandwidth options, as in the paper's
// testbed (§5.1).
package main

import (
	"flag"
	"log"
	"net"
	"strings"
	"time"

	"slamshare"
	"slamshare/internal/overload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7007", "server address")
	addrsFlag := flag.String("addrs", "", "comma-separated replicated front addresses; enables session-token failover (overrides -addr)")
	seqName := flag.String("seq", "MH04", "sequence: MH04, MH05, V202, TUM-fr1, KITTI-00, KITTI-05, CITY-00, CITY-01")
	stereo := flag.Bool("stereo", true, "use the stereo rig")
	id := flag.Uint("id", 1, "client id (unique per device)")
	frames := flag.Int("frames", 300, "frames to replay")
	stride := flag.Int("stride", 1, "process every Nth frame")
	delay := flag.Duration("delay", 0, "added one-way link delay (tc netem)")
	mbps := flag.Float64("mbps", 0, "link bandwidth cap in Mbit/s (0 = unlimited)")
	qosName := flag.String("qos", "", "QoS class for adaptive offloading: headset, handheld or drone (empty = fixed full offload)")
	modeName := flag.String("mode", "", "pin an offload mode instead of letting the server adapt: full, split or shadow")
	flag.Parse()

	mode := slamshare.Mono
	if *stereo {
		mode = slamshare.Stereo
	}
	seq, err := slamshare.LoadSequence(*seqName, mode)
	if err != nil {
		log.Fatal(err)
	}

	dev := slamshare.NewDevice(uint32(*id), seq)
	adaptive := *qosName != "" || *modeName != ""
	if *qosName != "" {
		qos, err := slamshare.ParseQoS(*qosName)
		if err != nil {
			log.Fatal(err)
		}
		dev.EnableAdaptive(qos, slamshare.CapSplit|slamshare.CapShadow)
	}
	if *modeName != "" {
		m, err := slamshare.ParseOffloadMode(*modeName)
		if err != nil {
			log.Fatal(err)
		}
		dev.ForceMode(m)
	}
	var idxs []int
	for i := 0; i < *frames && i < seq.FrameCount(); i += *stride {
		idxs = append(idxs, i)
	}
	start := time.Now()
	if *addrsFlag != "" {
		// Failover mode: dial the replicated-front list, resume by
		// session token on a dead front. RunTCPResumable owns its
		// connections, so -delay/-mbps shaping does not apply here.
		var fronts []string
		for _, a := range strings.Split(*addrsFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				fronts = append(fronts, a)
			}
		}
		log.Printf("client %d replaying %s (%s), %d frames over fronts %v",
			*id, seq.Name, mode, len(idxs), fronts)
		pol := overload.Backoff{Base: 100, Factor: 2, Max: 2000, Jitter: 0.2, Seed: int64(*id)}
		if err := dev.RunTCPResumable(fronts, idxs, pol); err != nil {
			log.Fatal(err)
		}
	} else {
		raw, err := net.Dial("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		conn := slamshare.ShapeConn(raw, slamshare.NetemConfig{
			Delay:        *delay,
			BandwidthBps: *mbps * 1e6,
		})
		defer conn.Close()
		log.Printf("client %d replaying %s (%s), %d frames over %s (delay %v, cap %.1f Mbit/s)",
			*id, seq.Name, mode, len(idxs), *addr, *delay, *mbps)
		run := dev.RunTCP
		if adaptive {
			run = dev.RunTCPAdaptive
		}
		if err := run(conn, idxs); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	truth := slamshare.GroundTruth(seq, *frames, *stride)
	log.Printf("done in %v: ATE %.3f m, uplink %.2f KB/frame",
		elapsed.Round(time.Millisecond),
		slamshare.ATE(dev.Trajectory(), truth),
		float64(dev.UplinkBytes())/float64(dev.FramesSent())/1024)
	if adaptive {
		log.Printf("offload: final mode %s, RTT estimate %v, %d mode switches",
			dev.OffloadMode(), dev.RTTEstimate().Round(time.Millisecond), len(dev.ModeLog()))
	}
}
