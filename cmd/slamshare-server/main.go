// Command slamshare-server runs a SLAM-Share edge server: it allocates
// the shared-memory global map, accepts device connections over TCP,
// and periodically logs the global map's growth and merge activity.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"time"

	"slamshare"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7007", "listen address")
	debugAddr := flag.String("debug-addr", "", "serve live observability (/debug/vars, /debug/spans, /debug/pprof/) on this address (empty = disabled)")
	gpuLanes := flag.Int("gpu-lanes", 8, "simulated GPU lanes (0 = CPU only)")
	lanesPerClient := flag.Int("lanes-per-client", 4, "GSlice lanes per client session (only without batched tracking)")
	trackWorkers := flag.Int("track-workers", 0, "batched tracking pool workers shared by all sessions (0 = GOMAXPROCS, negative = disable batching)")
	shmGB := flag.Int64("shm-gb", 2, "shared-memory budget in GiB")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for durable map checkpoints + journal (empty = no persistence)")
	checkpointEvery := flag.Duration("checkpoint-every", 30*time.Second, "background checkpoint interval")
	fsyncJournal := flag.Bool("fsync-journal", false, "fsync every journal batch")
	maxSessions := flag.Int("max-sessions", 0, "admission ceiling on concurrent device sessions (0 = default 64, negative = unlimited)")
	maxMerges := flag.Int("max-merges", 0, "ceiling on concurrent map merges (0 = default 2, negative = unlimited)")
	shedBudget := flag.Duration("shed-budget", 0, "per-session backlog budget before stale frames are shed (0 = shedding disabled)")
	idleTimeout := flag.Duration("idle-timeout", 0, "evict connections idle this long (0 = default 2m, negative = never)")
	readTimeout := flag.Duration("read-timeout", 0, "evict peers stalled mid-message this long (0 = default 30s, negative = never)")
	frameDeadline := flag.Duration("frame-deadline", 0, "per-frame tracking budget; over it, frames skip refinement (0 = no deadline)")
	maxMapKF := flag.Int("max-map-kf", 0, "resident keyframe budget; past it the lifecycle manager culls redundant keyframes (0 = unbounded)")
	evictAfter := flag.Uint64("evict-after", 0, "evict map regions untouched for this many handled frames to disk, reloading on demand (0 = never; needs -checkpoint-dir)")
	splitLoad := flag.Float64("split-load", 0, "server load at which full-offload sessions degrade to split keypoint upload (0 = policy default 2)")
	shadowLoad := flag.Float64("shadow-load", 0, "server load at which split sessions degrade to shadow map-only sync; headsets are exempt (0 = policy default 6)")
	splitRTT := flag.Duration("split-rtt", 0, "RTT beyond which full offload degrades to split regardless of load (0 = policy default 150ms)")
	modeHysteresis := flag.Duration("mode-hysteresis", 0, "minimum dwell between offload mode switches (0 = policy default 2s)")
	reservedSlots := flag.Int("reserved-slots", 0, "tracking-pool admission slots held back for headset (QoS 0) frames (0 = none)")
	shardID := flag.Uint("shard-id", 0, "cluster shard ID (used with slamshare-front; 0 is a valid ID)")
	shardToken := flag.Uint64("shard-token", 0, "shared secret authenticating shard-to-shard and front-to-shard messages")
	flag.Parse()

	srv, err := slamshare.NewEdgeServer(slamshare.ServerOptions{
		GPULanes:           *gpuLanes,
		LanesPerClient:     *lanesPerClient,
		TrackWorkers:       *trackWorkers,
		ShmCapacity:        *shmGB << 30,
		CheckpointDir:      *checkpointDir,
		CheckpointEvery:    *checkpointEvery,
		FsyncJournal:       *fsyncJournal,
		MaxSessions:        *maxSessions,
		MaxMergesInFlight:  *maxMerges,
		ShedBudget:         *shedBudget,
		IdleTimeout:        *idleTimeout,
		ReadTimeout:        *readTimeout,
		FrameDeadline:      *frameDeadline,
		MaxMapKF:           *maxMapKF,
		EvictAfter:         *evictAfter,
		SplitLoad:          *splitLoad,
		ShadowLoad:         *shadowLoad,
		SplitRTT:           *splitRTT,
		ModeHysteresis:     *modeHysteresis,
		TrackReservedSlots: *reservedSlots,
		ShardID:            uint32(*shardID),
		ShardToken:         *shardToken,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	if rec := srv.Recovery(); rec != nil {
		log.Printf("recovered map from %s: %d keyframes, %d map points (checkpoint seq %d + %d journal records in %v)",
			*checkpointDir, srv.GlobalMap().NKeyFrames(), srv.GlobalMap().NMapPoints(),
			rec.CheckpointSeq, rec.ReplayedRecords, rec.ReplayTime.Round(time.Millisecond))
	}

	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug endpoint on http://%s/debug/", dl.Addr())
		go func() {
			if err := http.Serve(dl, srv.DebugHandler()); err != nil {
				log.Printf("debug endpoint: %v", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s listening on %s (gpu lanes: %d, shm: %d GiB)",
		slamshare.String(), l.Addr(), *gpuLanes, *shmGB)

	go func() {
		ticker := time.NewTicker(5 * time.Second)
		defer ticker.Stop()
		lastMerges := 0
		for range ticker.C {
			g := srv.GlobalMap()
			reports := srv.MergeReports()
			log.Printf("global map: %d keyframes, %d map points, %d merges",
				g.NKeyFrames(), g.NMapPoints(), len(reports))
			for ; lastMerges < len(reports); lastMerges++ {
				r := reports[lastMerges]
				if r.Alignment != nil {
					log.Printf("  merge: %d KFs aligned, %d inliers, %v total",
						r.InsertKFs, r.Alignment.Inliers, r.Total.Round(time.Millisecond))
				}
			}
		}
	}()

	if err := srv.Serve(l); err != nil {
		log.Fatal(err)
	}
}
