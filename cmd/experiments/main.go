// Command experiments regenerates the paper's tables and figures by
// id. Run with no arguments to list the available experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"slamshare/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down experiments")
	scaleDiv := flag.Int("scale", 3, "quick-mode reduction factor")
	full := flag.Bool("full", false, "run the most expensive variants (e.g. table1's 210-keyframe row)")
	flag.Parse()
	exp.Quick = *quick
	exp.ScaleDiv = *scaleDiv
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = exp.All()
	}
	for _, id := range ids {
		fmt.Printf("=== %s ===\n", id)
		if err := exp.Run(os.Stdout, id, *full); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-quick] [-full] <id>... | all")
	fmt.Fprintln(os.Stderr, "experiments:")
	for _, id := range exp.All() {
		fmt.Fprintf(os.Stderr, "  %s\n", id)
	}
}
