module slamshare

go 1.22
