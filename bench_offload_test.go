// Offload-mode benchmark: the per-frame end-to-end server cost of
// each offload mode as sessions scale. Full mode pays video decode +
// extraction + tracking; split mode enters the tracker at pose
// prediction with client-extracted keypoints; shadow mode only warms
// the motion model. The headline e2e-p50-ms is what cmd/benchdiff
// tracks across PRs.
package slamshare_test

import (
	"sort"
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/protocol"
	"slamshare/internal/server"
)

// offloadBenchMode names one uplink shape of BenchmarkOffloadModes.
type offloadBenchMode string

const (
	benchFull   offloadBenchMode = "full"
	benchSplit  offloadBenchMode = "split"
	benchShadow offloadBenchMode = "shadow"
)

// buildOffloadMsgs pre-builds one client's uplink messages so the
// timed loop measures only the server side. Full mode re-encodes the
// video per session (the stream is stateful); split and shadow build
// keypoint messages round-tripped through the wire encoding.
func buildOffloadMsgs(b *testing.B, mode offloadBenchMode, id uint32,
	seq *dataset.Sequence, frames, stride int) []*protocol.KeypointMsg {
	b.Helper()
	if mode == benchFull {
		return nil
	}
	cl := client.New(id, seq)
	msgs := make([]*protocol.KeypointMsg, 0, frames)
	for k := 0; k < frames; k++ {
		var m *protocol.KeypointMsg
		if mode == benchSplit {
			m = cl.BuildKeypointFrame(k * stride)
		} else {
			m = cl.BuildSync(k * stride)
		}
		m2, err := protocol.DecodeKeypointMsg(m.Encode())
		if err != nil {
			b.Fatal(err)
		}
		msgs = append(msgs, m2)
	}
	return msgs
}

// BenchmarkOffloadModes runs full|split|shadow uplinks against 1, 4
// and 8 concurrent-session servers in lockstep rounds and reports the
// per-frame end-to-end p50 (time from handing the uplink to the
// session until its pose answer).
func BenchmarkOffloadModes(b *testing.B) {
	const frames, stride = 24, 2
	seq := dataset.MH04(camera.Stereo)
	for _, mode := range []offloadBenchMode{benchFull, benchSplit, benchShadow} {
		for _, nSess := range []int{1, 4, 8} {
			b.Run(string(mode)+"/"+benchName("sessions", nSess), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					srv, err := server.New(server.DefaultConfig())
					if err != nil {
						b.Fatal(err)
					}
					sessions := make([]*server.Session, nSess)
					clients := make([]*client.Client, nSess)
					kpMsgs := make([][]*protocol.KeypointMsg, nSess)
					for j := 0; j < nSess; j++ {
						id := uint32(j + 1)
						sessions[j], err = srv.OpenSession(id, seq.Rig)
						if err != nil {
							b.Fatal(err)
						}
						clients[j] = client.New(id, seq)
						kpMsgs[j] = buildOffloadMsgs(b, mode, id, seq, frames, stride)
					}
					lats := make([]time.Duration, 0, nSess*frames)
					b.StartTimer()
					for k := 0; k < frames; k++ {
						for j := 0; j < nSess; j++ {
							var t0 time.Time
							switch mode {
							case benchSplit:
								t0 = time.Now()
								if _, err := sessions[j].HandleKeypoints(kpMsgs[j][k]); err != nil {
									b.Fatal(err)
								}
							case benchShadow:
								t0 = time.Now()
								sessions[j].HandleSync(kpMsgs[j][k])
							default:
								msg := clients[j].BuildFrame(k * stride)
								t0 = time.Now()
								if _, err := sessions[j].HandleFrame(msg); err != nil {
									b.Fatal(err)
								}
							}
							lats = append(lats, time.Since(t0))
						}
					}
					b.StopTimer()
					srv.Close()
					sort.Slice(lats, func(x, y int) bool { return lats[x] < lats[y] })
					p50 := lats[len(lats)/2]
					p99 := lats[int(0.99*float64(len(lats)-1))]
					b.ReportMetric(float64(p50.Microseconds())/1000, "e2e-p50-ms")
					b.ReportMetric(float64(p99.Microseconds())/1000, "e2e-p99-ms")
				}
			})
		}
	}
}
