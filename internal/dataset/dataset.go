// Package dataset defines the named evaluation sequences that stand in
// for the paper's EuRoC and KITTI recordings (§5.1): procedurally
// generated worlds and trajectories with the same names, durations,
// frame counts and sensor configurations, so every table and figure has
// its analogue. MH04/MH05 share one machine-hall world (their clients'
// maps must merge, Fig. 10a); KITTI sequences run through street
// corridors and can be split into per-client segments (Fig. 10c).
package dataset

import (
	"fmt"
	"sync"

	"slamshare/internal/camera"
	"slamshare/internal/geom"
	"slamshare/internal/img"
	"slamshare/internal/imu"
	"slamshare/internal/render"
	"slamshare/internal/worldgen"
)

// Sequence is a synthetic dataset: world + trajectory + camera rig +
// IMU configuration. It provides rendered frames, IMU samples and
// ground-truth poses.
type Sequence struct {
	Name      string
	World     *worldgen.World
	Traj      worldgen.Trajectory
	Rig       camera.Rig
	FPS       float64
	IMURate   float64
	Noise     imu.NoiseConfig
	RenderCfg render.Config
	Seed      int64

	imuOnce    sync.Once
	imuSamples []imu.Sample
	rendOnce   sync.Once
	rend       *render.Renderer
}

// Duration returns the sequence length in seconds.
func (s *Sequence) Duration() float64 { return s.Traj.Duration() }

// FrameCount returns the number of camera frames.
func (s *Sequence) FrameCount() int { return int(s.Duration() * s.FPS) }

// FrameTime returns the capture time of frame i.
func (s *Sequence) FrameTime(i int) float64 { return float64(i) / s.FPS }

// GroundTruth returns the true camera-to-world pose at frame i.
func (s *Sequence) GroundTruth(i int) geom.SE3 {
	return s.Traj.PoseAt(s.FrameTime(i))
}

// Renderer returns the (cached) frame renderer for this sequence.
func (s *Sequence) Renderer() *render.Renderer {
	s.rendOnce.Do(func() {
		s.rend = render.New(s.World, s.Rig, s.RenderCfg)
	})
	return s.rend
}

// Frame renders the left-eye frame i.
func (s *Sequence) Frame(i int) *img.Gray {
	return s.Renderer().Render(s.GroundTruth(i), uint64(s.Seed)+uint64(i))
}

// StereoFrame renders the stereo pair for frame i. For mono rigs the
// right image is nil.
func (s *Sequence) StereoFrame(i int) (left, right *img.Gray) {
	if s.Rig.Mode != camera.Stereo {
		return s.Frame(i), nil
	}
	return s.Renderer().RenderStereo(s.GroundTruth(i), uint64(s.Seed)+uint64(i))
}

// IMU returns the full IMU sample stream (cached after first call).
func (s *Sequence) IMU() []imu.Sample {
	s.imuOnce.Do(func() {
		s.imuSamples = imu.Simulate(s.Traj, 0, s.Duration(), s.IMURate, s.Noise, s.Seed)
	})
	return s.imuSamples
}

// IMUBetween returns the IMU samples captured in [FrameTime(i),
// FrameTime(j)).
func (s *Sequence) IMUBetween(i, j int) []imu.Sample {
	all := s.IMU()
	t0, t1 := s.FrameTime(i), s.FrameTime(j)
	lo := 0
	for lo < len(all) && all[lo].T < t0 {
		lo++
	}
	hi := lo
	for hi < len(all) && all[hi].T < t1 {
		hi++
	}
	return all[lo:hi]
}

// Split divides the sequence into n equal time segments sharing the
// same world — the per-client splits of KITTI-05 in Fig. 10c.
func (s *Sequence) Split(n int) []*Sequence {
	out := make([]*Sequence, n)
	dur := s.Duration()
	for i := 0; i < n; i++ {
		seg := &worldgen.SegmentTrajectory{
			Inner: s.Traj,
			T0:    dur * float64(i) / float64(n),
			T1:    dur * float64(i+1) / float64(n),
		}
		out[i] = &Sequence{
			Name:      fmt.Sprintf("%s-part%d", s.Name, i+1),
			World:     s.World,
			Traj:      seg,
			Rig:       s.Rig,
			FPS:       s.FPS,
			IMURate:   s.IMURate,
			Noise:     s.Noise,
			RenderCfg: s.RenderCfg,
			Seed:      s.Seed + int64(i+1)*7919,
		}
	}
	return out
}

// sharedMachineHall is the single machine-hall world all MH sequences
// observe, so multi-client maps can merge.
var (
	mhOnce sync.Once
	mhWild *worldgen.World
)

func machineHall() *worldgen.World {
	mhOnce.Do(func() { mhWild = worldgen.MachineHall(0xEB0C, 110) })
	return mhWild
}

const euRoCBaseline = 0.11 // metres, EuRoC stereo rig

// MH04 is the EuRoC MH04-like drone sequence: 68 s at 30 FPS (2032
// frames in the original). Mode selects mono or stereo.
func MH04(mode camera.Mode) *Sequence {
	// A sweep through the hall: start south-west, climb, loop the
	// perimeter counterclockwise, return through the middle.
	wp := []geom.Vec3{
		{X: -9, Y: -6, Z: 1.2}, {X: -5, Y: -6.5, Z: 1.6}, {X: 0, Y: -6, Z: 2.0},
		{X: 5, Y: -5.5, Z: 2.4}, {X: 9, Y: -4, Z: 2.6}, {X: 10, Y: 0, Z: 2.8},
		{X: 9.5, Y: 4, Z: 3.0}, {X: 6, Y: 6.5, Z: 3.2}, {X: 1, Y: 7, Z: 3.0},
		{X: -4, Y: 6.5, Z: 2.6}, {X: -8.5, Y: 5, Z: 2.2}, {X: -9.5, Y: 1, Z: 2.0},
		{X: -7, Y: -2, Z: 1.8}, {X: -3, Y: -4, Z: 1.6}, {X: 1, Y: -4.5, Z: 1.5},
		{X: 4, Y: -3, Z: 1.6}, {X: 5, Y: 0, Z: 1.8},
	}
	return euroc("MH04", wp, 68.0/float64(len(wp)-1), mode, 101)
}

// MH05 is the EuRoC MH05-like drone sequence: 75 s, same hall as MH04
// but a different path with substantial overlap (Fig. 10a merges the
// two).
func MH05(mode camera.Mode) *Sequence {
	wp := []geom.Vec3{
		{X: -9, Y: -6, Z: 1.4}, {X: -6, Y: -4, Z: 1.8}, {X: -2, Y: -2.5, Z: 2.2},
		{X: 2, Y: -2, Z: 2.4}, {X: 6, Y: -3, Z: 2.6}, {X: 9, Y: -4.5, Z: 2.4},
		{X: 10, Y: -1, Z: 2.6}, {X: 9, Y: 3, Z: 2.8}, {X: 7, Y: 6, Z: 3.0},
		{X: 3, Y: 7.5, Z: 2.8}, {X: -1, Y: 6.5, Z: 2.4}, {X: -5, Y: 4.5, Z: 2.2},
		{X: -8, Y: 2, Z: 2.0}, {X: -9, Y: -1.5, Z: 1.8}, {X: -6.5, Y: -4.5, Z: 1.6},
		{X: -2.5, Y: -5.5, Z: 1.5}, {X: 2, Y: -5, Z: 1.6}, {X: 6, Y: -4, Z: 1.8},
	}
	return euroc("MH05", wp, 75.0/float64(len(wp)-1), mode, 102)
}

// V202 is a Vicon-room-like orbit sequence (the V202 dataset in
// Fig. 5 and Fig. 8): a small room, tighter motion.
func V202(mode camera.Mode) *Sequence {
	world := worldgen.ViconRoom(0x202, 150)
	traj := &worldgen.OrbitTrajectory{
		Center: geom.Vec3{Z: 1.2},
		Radius: 2.6,
		Height: 0.6,
		Omega:  0.35,
		Dur:    46,
	}
	return &Sequence{
		Name:      "V202",
		World:     world,
		Traj:      traj,
		Rig:       rigFor(camera.EuRoCIntrinsics(), mode, euRoCBaseline),
		FPS:       30,
		IMURate:   200,
		Noise:     imu.ConsumerGradeNoise(),
		RenderCfg: render.DefaultConfig(),
		Seed:      103,
	}
}

// TUMfr1 is a TUM-fr1-like handheld sequence over a desk-scale scene.
func TUMfr1(mode camera.Mode) *Sequence {
	world := worldgen.ViconRoom(0xF41, 170)
	traj := &worldgen.OrbitTrajectory{
		Center: geom.Vec3{Z: 0.9},
		Radius: 2.0,
		Height: 0.5,
		Omega:  0.3,
		Dur:    30,
	}
	return &Sequence{
		Name:      "TUM-fr1",
		World:     world,
		Traj:      traj,
		Rig:       rigFor(camera.TUMIntrinsics(), mode, 0.08),
		FPS:       30,
		IMURate:   200,
		Noise:     imu.ConsumerGradeNoise(),
		RenderCfg: render.DefaultConfig(),
		Seed:      104,
	}
}

func euroc(name string, wp []geom.Vec3, dt float64, mode camera.Mode, seed int64) *Sequence {
	traj := worldgen.NewSplineTrajectory(worldgen.NewSpline(wp, dt))
	return &Sequence{
		Name:      name,
		World:     machineHall(),
		Traj:      traj,
		Rig:       rigFor(camera.EuRoCIntrinsics(), mode, euRoCBaseline),
		FPS:       30,
		IMURate:   200,
		Noise:     imu.ConsumerGradeNoise(),
		RenderCfg: render.DefaultConfig(),
		Seed:      seed,
	}
}

const kittiBaseline = 0.54 // metres, KITTI stereo rig

var (
	k00Once, k05Once   sync.Once
	k00World, k05World *worldgen.World
	k00Path, k05Path   *worldgen.Spline
)

// KITTI00 is a KITTI-00-like vehicular sequence: 151 s of urban
// driving through a street grid with a loop closure.
func KITTI00(mode camera.Mode) *Sequence {
	k00Once.Do(func() {
		wp := []geom.Vec3{
			{X: 0, Y: 0, Z: 1.65}, {X: 80, Y: 0, Z: 1.65}, {X: 160, Y: 10, Z: 1.65},
			{X: 240, Y: 40, Z: 1.65}, {X: 280, Y: 110, Z: 1.65}, {X: 260, Y: 180, Z: 1.65},
			{X: 190, Y: 220, Z: 1.65}, {X: 110, Y: 230, Z: 1.65}, {X: 40, Y: 200, Z: 1.65},
			{X: 0, Y: 130, Z: 1.65}, {X: -10, Y: 60, Z: 1.65}, {X: 0, Y: 0, Z: 1.65},
			{X: 60, Y: -5, Z: 1.65}, {X: 120, Y: 5, Z: 1.65},
		}
		k00Path = worldgen.NewSpline(wp, 151.0/float64(len(wp)-1))
		k00World = worldgen.StreetCorridor(0xC00, k00Path, 2.5)
	})
	traj := worldgen.NewSplineTrajectory(k00Path)
	return &Sequence{
		Name:      "KITTI-00",
		World:     k00World,
		Traj:      traj,
		Rig:       rigFor(camera.KITTIIntrinsics(), mode, kittiBaseline),
		FPS:       30,
		IMURate:   200,
		Noise:     imu.ConsumerGradeNoise(),
		RenderCfg: render.VehicularConfig(),
		Seed:      105,
	}
}

// KITTI05 is a KITTI-05-like vehicular sequence: 92 s, a loop through
// a 500 x 600 m area (split into three clients in Fig. 10c).
func KITTI05(mode camera.Mode) *Sequence {
	k05Once.Do(func() {
		wp := []geom.Vec3{
			{X: 0, Y: 0, Z: 1.65}, {X: 90, Y: 10, Z: 1.65}, {X: 180, Y: 0, Z: 1.65},
			{X: 270, Y: 30, Z: 1.65}, {X: 330, Y: 100, Z: 1.65}, {X: 340, Y: 190, Z: 1.65},
			{X: 280, Y: 260, Z: 1.65}, {X: 190, Y: 280, Z: 1.65}, {X: 100, Y: 260, Z: 1.65},
			{X: 30, Y: 200, Z: 1.65}, {X: 0, Y: 110, Z: 1.65}, {X: 10, Y: 30, Z: 1.65},
		}
		k05Path = worldgen.NewSpline(wp, 92.0/float64(len(wp)-1))
		k05World = worldgen.StreetCorridor(0xC05, k05Path, 2.5)
	})
	traj := worldgen.NewSplineTrajectory(k05Path)
	return &Sequence{
		Name:      "KITTI-05",
		World:     k05World,
		Traj:      traj,
		Rig:       rigFor(camera.KITTIIntrinsics(), mode, kittiBaseline),
		FPS:       30,
		IMURate:   200,
		Noise:     imu.ConsumerGradeNoise(),
		RenderCfg: render.VehicularConfig(),
		Seed:      106,
	}
}

// The shared city grid all CITY sequences observe: 4x4 blocks of
// 60 m, so a compressed "hour" of vehicular loops and pedestrian
// strolls covers distinct neighbourhoods that go cold independently —
// the workload the map-lifecycle soak runs.
const (
	CityBlocks = 4
	CityBlockM = 60.0
)

var (
	cityOnce  sync.Once
	cityWorld *worldgen.World
)

func cityGrid() *worldgen.World {
	cityOnce.Do(func() { cityWorld = worldgen.CityGrid(0xC17F, CityBlocks, CityBlockM) })
	return cityWorld
}

// CityRoute builds a sequence through the shared city grid along the
// given intersection route ((i, j) street indices). speed is metres
// per second — ~11 for a vehicle, ~1.4 for a pedestrian AR user; the
// camera height follows the platform.
func CityRoute(name string, route [][2]int, speed float64, mode camera.Mode, seed int64) *Sequence {
	if speed <= 0 {
		speed = 10
	}
	height := 1.65
	if speed < 4 { // pedestrian: head height
		height = 1.5
	}
	dt := CityBlockM / speed
	path := worldgen.GridRoute(route, CityBlockM, dt, height)
	return &Sequence{
		Name:      name,
		World:     cityGrid(),
		Traj:      worldgen.NewSplineTrajectory(path),
		Rig:       rigFor(camera.KITTIIntrinsics(), mode, kittiBaseline),
		FPS:       30,
		IMURate:   200,
		Noise:     imu.ConsumerGradeNoise(),
		RenderCfg: render.VehicularConfig(),
		Seed:      seed,
	}
}

// City00 is a vehicular loop around the city grid's perimeter.
func City00(mode camera.Mode) *Sequence {
	return CityRoute("CITY-00", [][2]int{
		{0, 0}, {2, 0}, {4, 0}, {4, 2}, {4, 4}, {2, 4}, {0, 4}, {0, 2}, {0, 0}, {1, 0},
	}, 11, mode, 107)
}

// City01 is a pedestrian stroll through the grid's inner streets.
func City01(mode camera.Mode) *Sequence {
	return CityRoute("CITY-01", [][2]int{
		{1, 1}, {2, 1}, {2, 2}, {3, 2}, {3, 3}, {2, 3}, {2, 2}, {1, 2}, {1, 1},
	}, 1.4, mode, 108)
}

func rigFor(in camera.Intrinsics, mode camera.Mode, baseline float64) camera.Rig {
	if mode == camera.Stereo {
		return camera.NewStereoRig(in, baseline)
	}
	return camera.NewMonoRig(in)
}

// ByName returns the sequence with the given paper name.
func ByName(name string, mode camera.Mode) (*Sequence, error) {
	switch name {
	case "MH04":
		return MH04(mode), nil
	case "MH05":
		return MH05(mode), nil
	case "V202":
		return V202(mode), nil
	case "TUM-fr1":
		return TUMfr1(mode), nil
	case "KITTI-00":
		return KITTI00(mode), nil
	case "KITTI-05":
		return KITTI05(mode), nil
	case "CITY-00":
		return City00(mode), nil
	case "CITY-01":
		return City01(mode), nil
	}
	return nil, fmt.Errorf("dataset: unknown sequence %q", name)
}
