package dataset

import (
	"testing"

	"slamshare/internal/camera"
)

func TestSequenceDurationsMatchPaper(t *testing.T) {
	// §5.1: MH04 68 s (2032 frames), MH05 75 s (2273 frames in the
	// original at ~30.3 FPS; ours is exactly 30), KITTI-00 151 s,
	// KITTI-05 92 s.
	cases := []struct {
		seq  *Sequence
		dur  float64
		mind int
	}{
		{MH04(camera.Mono), 68, 2000},
		{MH05(camera.Mono), 75, 2200},
		{KITTI00(camera.Stereo), 151, 4500},
		{KITTI05(camera.Stereo), 92, 2700},
	}
	for _, c := range cases {
		if got := c.seq.Duration(); got < c.dur-0.5 || got > c.dur+0.5 {
			t.Errorf("%s duration = %v, want ~%v", c.seq.Name, got, c.dur)
		}
		if got := c.seq.FrameCount(); got < c.mind {
			t.Errorf("%s frames = %d, want >= %d", c.seq.Name, got, c.mind)
		}
	}
}

func TestMHSequencesShareWorld(t *testing.T) {
	a := MH04(camera.Mono)
	b := MH05(camera.Mono)
	if a.World != b.World {
		t.Error("MH04 and MH05 must observe the same world for map merging")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"MH04", "MH05", "V202", "TUM-fr1", "KITTI-00", "KITTI-05"} {
		s, err := ByName(name, camera.Mono)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("name mismatch: %s vs %s", s.Name, name)
		}
	}
	if _, err := ByName("nope", camera.Mono); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestStereoRigBaselines(t *testing.T) {
	if MH04(camera.Stereo).Rig.Baseline != 0.11 {
		t.Error("EuRoC baseline wrong")
	}
	if KITTI00(camera.Stereo).Rig.Baseline != 0.54 {
		t.Error("KITTI baseline wrong")
	}
	if MH04(camera.Mono).Rig.Baseline != 0 {
		t.Error("mono rig has baseline")
	}
}

func TestFrameRendering(t *testing.T) {
	s := V202(camera.Stereo)
	f := s.Frame(0)
	if f.W != s.Rig.Intr.Width || f.H != s.Rig.Intr.Height {
		t.Fatalf("frame size %dx%d", f.W, f.H)
	}
	l, r := s.StereoFrame(0)
	if l == nil || r == nil {
		t.Fatal("stereo frame missing an eye")
	}
	mono := V202(camera.Mono)
	_, r2 := mono.StereoFrame(0)
	if r2 != nil {
		t.Error("mono sequence returned right eye")
	}
}

func TestIMUCachedAndAligned(t *testing.T) {
	s := TUMfr1(camera.Mono)
	a := s.IMU()
	b := s.IMU()
	if len(a) == 0 || &a[0] != &b[0] {
		t.Error("IMU stream not cached")
	}
	wantLen := int(s.Duration() * s.IMURate)
	if len(a) != wantLen {
		t.Errorf("IMU samples = %d, want %d", len(a), wantLen)
	}
	// Samples between frames 10 and 12 must span that time range.
	seg := s.IMUBetween(10, 12)
	t0, t1 := s.FrameTime(10), s.FrameTime(12)
	if len(seg) == 0 {
		t.Fatal("empty IMU segment")
	}
	for _, smp := range seg {
		if smp.T < t0 || smp.T >= t1 {
			t.Fatalf("sample at %v outside [%v, %v)", smp.T, t0, t1)
		}
	}
}

func TestSplitSharesWorldAndCoversTrajectory(t *testing.T) {
	s := KITTI05(camera.Stereo)
	parts := s.Split(3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	for i, p := range parts {
		if p.World != s.World {
			t.Errorf("part %d has a different world", i)
		}
		if p.Duration() < s.Duration()/3-1 {
			t.Errorf("part %d too short: %v", i, p.Duration())
		}
	}
	// Part boundaries line up with the original trajectory.
	if d := parts[1].GroundTruth(0).T.Dist(s.Traj.PoseAt(s.Duration() / 3).T); d > 1e-6 {
		t.Errorf("part 2 start off by %v m", d)
	}
}

func TestGroundTruthContinuity(t *testing.T) {
	s := MH04(camera.Mono)
	prev := s.GroundTruth(0)
	for i := 1; i < 120; i++ {
		cur := s.GroundTruth(i)
		if d := cur.T.Dist(prev.T); d > 0.2 {
			t.Fatalf("ground truth jump of %v m at frame %d", d, i)
		}
		prev = cur
	}
}

func TestTrajectoriesStayInWorld(t *testing.T) {
	// Drone paths must stay inside the hall so frames see landmarks.
	for _, s := range []*Sequence{MH04(camera.Mono), MH05(camera.Mono)} {
		n := s.FrameCount()
		for i := 0; i < n; i += 30 {
			p := s.GroundTruth(i).T
			if p.X < -12 || p.X > 12 || p.Y < -9 || p.Y > 9 || p.Z < 0 || p.Z > 7 {
				t.Fatalf("%s leaves the hall at frame %d: %v", s.Name, i, p)
			}
		}
	}
}

func TestFramesSeeLandmarks(t *testing.T) {
	// Every sampled frame must have enough visible landmarks to track.
	for _, s := range []*Sequence{MH04(camera.Mono), KITTI05(camera.Stereo)} {
		r := s.Renderer()
		n := s.FrameCount()
		for i := 0; i < n; i += n / 8 {
			truth := r.Truth(s.GroundTruth(i))
			if len(truth) < 40 {
				t.Errorf("%s frame %d sees only %d landmarks", s.Name, i, len(truth))
			}
		}
	}
}
