package netem

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestFaultResetAfterBytesCutsMidMessage(t *testing.T) {
	a, b := Pipe(Unlimited)
	fc := WrapFault(a, FaultConfig{ResetAfterBytes: 100})
	defer fc.Close()
	defer b.Close()

	var got []byte
	readDone := make(chan error, 1)
	go func() {
		buf, err := io.ReadAll(b)
		got = buf
		readDone <- err
	}()

	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(i)
	}
	var wrote int
	var lastErr error
	for i := 0; i < 3; i++ {
		n, err := fc.Write(payload)
		wrote += n
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrInjectedReset) {
		t.Fatalf("want ErrInjectedReset, got %v", lastErr)
	}
	if wrote != 100 {
		t.Errorf("wire saw %d bytes, want exactly 100 (mid-message cut)", wrote)
	}
	<-readDone
	if len(got) != 100 {
		t.Errorf("peer received %d bytes, want 100", len(got))
	}
	if st := fc.Stats(); st.Resets != 1 || st.Written != 100 {
		t.Errorf("stats = %+v", st)
	}
	// The connection stays dead.
	if _, err := fc.Write(payload); !errors.Is(err, ErrInjectedReset) {
		t.Errorf("post-reset write error = %v", err)
	}
}

func TestFaultProbabilisticReset(t *testing.T) {
	a, b := Pipe(Unlimited)
	fc := WrapFault(a, FaultConfig{Seed: 7, ResetProb: 0.2})
	defer fc.Close()
	defer b.Close()
	go io.Copy(io.Discard, b)

	// With p=0.2 the reset fires within a handful of writes; the seed
	// makes the exact count reproducible.
	var resetAt = -1
	for i := 0; i < 100; i++ {
		if _, err := fc.Write([]byte("frame")); err != nil {
			if !errors.Is(err, ErrInjectedReset) {
				t.Fatalf("write %d: %v", i, err)
			}
			resetAt = i
			break
		}
	}
	if resetAt < 0 {
		t.Fatal("no reset injected in 100 writes at p=0.2")
	}
	if st := fc.Stats(); st.Resets != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Same seed, same byte stream: the fault replays identically.
	a2, b2 := Pipe(Unlimited)
	fc2 := WrapFault(a2, FaultConfig{Seed: 7, ResetProb: 0.2})
	defer fc2.Close()
	defer b2.Close()
	go io.Copy(io.Discard, b2)
	for i := 0; i <= resetAt; i++ {
		_, err := fc2.Write([]byte("frame"))
		if i < resetAt && err != nil {
			t.Fatalf("replay diverged: reset at write %d, not %d", i, resetAt)
		}
		if i == resetAt && !errors.Is(err, ErrInjectedReset) {
			t.Fatalf("replay diverged: no reset at write %d", resetAt)
		}
	}
}

func TestFaultReorderSwapsAdjacentWrites(t *testing.T) {
	a, b := Pipe(Unlimited)
	// p=1: every write is either held or flushes the held one, so
	// adjacent pairs swap deterministically: 1234 -> 2143.
	fc := WrapFault(a, FaultConfig{ReorderProb: 1})
	defer fc.Close()
	defer b.Close()

	var got []byte
	readDone := make(chan struct{})
	go func() {
		buf, _ := io.ReadAll(b)
		got = buf
		close(readDone)
	}()
	for _, s := range []string{"1", "2", "3", "4"} {
		if _, err := fc.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	fc.Close()
	<-readDone
	if string(got) != "2143" {
		t.Errorf("wire order %q, want %q", got, "2143")
	}
	if st := fc.Stats(); st.Reorders != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultStallDelaysWrite(t *testing.T) {
	a, b := Pipe(Unlimited)
	const stall = 60 * time.Millisecond
	fc := WrapFault(a, FaultConfig{StallProb: 1, StallDur: stall})
	defer fc.Close()
	defer b.Close()
	go io.Copy(io.Discard, b)

	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Errorf("stalled write returned in %v, want >= %v", elapsed, stall)
	}
	if st := fc.Stats(); st.Stalls != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultFreezeThaw(t *testing.T) {
	a, b := Pipe(Unlimited)
	fc := WrapFault(a, FaultConfig{})
	defer fc.Close()
	defer b.Close()
	go io.Copy(io.Discard, b)

	fc.Freeze()
	wrote := make(chan struct{})
	go func() {
		fc.Write([]byte("partitioned"))
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("write completed while frozen")
	case <-time.After(50 * time.Millisecond):
	}
	fc.Thaw()
	select {
	case <-wrote:
	case <-time.After(2 * time.Second):
		t.Fatal("write did not resume after Thaw")
	}
	// Freeze/Thaw are idempotent.
	fc.Thaw()
	fc.Freeze()
	fc.Freeze()
	fc.Thaw()
}

func TestFaultCutKillsBothDirections(t *testing.T) {
	a, b := Pipe(Unlimited)
	fc := WrapFault(a, FaultConfig{})
	defer b.Close()

	fc.Cut()
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Errorf("write after Cut: %v", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Errorf("read after Cut: %v", err)
	}
	// The peer observes the close too.
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Error("peer read succeeded after Cut")
	}
}

func TestFaultComposesWithShaping(t *testing.T) {
	// Faults under shaping: WrapFault(Wrap(...)) paces and then cuts.
	inner, peer := Pipe(Unlimited)
	shaped := Wrap(inner, DelayOnly(5*time.Millisecond))
	fc := WrapFault(shaped, FaultConfig{ResetAfterBytes: 10})
	defer fc.Close()
	defer peer.Close()

	var got []byte
	readDone := make(chan struct{})
	go func() {
		buf, _ := io.ReadAll(peer)
		got = buf
		close(readDone)
	}()
	fc.Write([]byte("0123456789abcdef"))
	<-readDone
	if !bytes.Equal(got, []byte("0123456789")) {
		t.Errorf("peer got %q, want first 10 bytes only", got)
	}
}

func TestBandwidthPacingTolerance(t *testing.T) {
	// 4 Mbit/s, 8 KiB burst: 100 KB ≈ 200 ms of pacing. Assert the
	// elapsed time lands in a generous band around the theoretical
	// serialization delay — neither bypassing the bucket nor stalling.
	cfg := Mbps(4)
	cfg.Burst = 8 << 10
	a, b := Pipe(cfg)
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 100<<10)
	done := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		a.Write(payload)
		done <- time.Since(start)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	elapsed := <-done
	// Theoretical: (100 KiB - burst credit) / 500 KB/s ≈ 188 ms.
	if elapsed < 90*time.Millisecond {
		t.Errorf("pacing too loose: 100KB at 4Mbit/s in %v", elapsed)
	}
	if elapsed > 1500*time.Millisecond {
		t.Errorf("pacing too tight: 100KB at 4Mbit/s took %v", elapsed)
	}
}

func TestDelayPreservesOrdering(t *testing.T) {
	// Messages written in sequence must be read in sequence even when
	// each is released after the propagation delay.
	a, b := Pipe(DelayOnly(10 * time.Millisecond))
	defer a.Close()
	defer b.Close()
	go func() {
		for i := byte(0); i < 20; i++ {
			a.Write([]byte{i})
		}
	}()
	got := make([]byte, 20)
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 20; i++ {
		if got[i] != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}
