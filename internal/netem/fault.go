package netem

// Fault injection: a deterministic, seeded layer under the shaping
// discipline that emulates the ways real links die — abrupt resets,
// cuts mid-message after a byte budget, stalls, and reordering. The
// chaos harness (internal/chaos) scripts scenarios with it; decisions
// are drawn from a seeded RNG keyed to the write sequence, so a fixed
// seed and a deterministic byte stream replay the same faults.

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned by FaultConn I/O after an injected
// connection reset.
var ErrInjectedReset = errors.New("netem: injected connection reset")

// FaultConfig configures the injected faults for one endpoint. All
// probabilities are per-Write draws from the seeded RNG.
type FaultConfig struct {
	// Seed drives every probabilistic decision on this endpoint.
	Seed int64
	// ResetProb is the per-write probability of resetting the
	// connection before any bytes of that write reach the wire.
	ResetProb float64
	// ResetAfterBytes cuts the connection mid-message once the total
	// bytes written crosses this threshold (0 = disabled): the write
	// that crosses it is truncated at the boundary, then the underlying
	// connection is closed — the peer sees a partial frame.
	ResetAfterBytes int64
	// StallProb is the per-write probability of freezing for StallDur
	// before the bytes go out, emulating a transient partition.
	StallProb float64
	// StallDur is how long an injected stall lasts.
	StallDur time.Duration
	// ReorderProb is the per-write probability that a write is held
	// back and emitted after the following write, swapping adjacent
	// messages on the wire.
	ReorderProb float64
}

// FaultStats counts the faults an endpoint has injected, for test
// assertions.
type FaultStats struct {
	Resets   int
	Stalls   int
	Reorders int
	Written  int64
}

// FaultConn wraps a net.Conn with injected write-side faults. Reads
// pass through untouched (a reset closes the underlying connection, so
// both directions die together, like a RST).
type FaultConn struct {
	net.Conn
	cfg FaultConfig

	mu     sync.Mutex
	frozen bool
	thaw   chan struct{}
	rng    *rand.Rand
	held   []byte // write held back for reordering
	failed bool
	stats  FaultStats
}

// WrapFault applies fault injection to a connection. Compose with Wrap
// to get both shaping and faults: WrapFault(Wrap(conn, shape), faults).
func WrapFault(inner net.Conn, cfg FaultConfig) *FaultConn {
	return &FaultConn{
		Conn: inner,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		thaw: make(chan struct{}),
	}
}

// Stats returns a copy of the endpoint's fault counters.
func (c *FaultConn) Stats() FaultStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Cut deterministically resets the connection now: subsequent I/O on
// either side fails. The harness uses it for scripted crashes.
func (c *FaultConn) Cut() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reset()
}

// Freeze blocks all writes until Thaw, emulating a scripted partition.
func (c *FaultConn) Freeze() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.frozen {
		c.frozen = true
		c.thaw = make(chan struct{})
	}
}

// Thaw lifts a Freeze.
func (c *FaultConn) Thaw() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frozen {
		c.frozen = false
		close(c.thaw)
	}
}

// reset closes the inner connection and latches the failure. Callers
// hold c.mu.
func (c *FaultConn) reset() {
	if !c.failed {
		c.failed = true
		c.stats.Resets++
		c.Conn.Close()
	}
}

// Write applies the configured faults, then forwards to the inner
// connection.
func (c *FaultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	for c.frozen {
		ch := c.thaw
		c.mu.Unlock()
		<-ch
		c.mu.Lock()
	}
	if c.failed {
		c.mu.Unlock()
		return 0, ErrInjectedReset
	}
	// Mid-message cut: truncate at the byte budget, then reset.
	if c.cfg.ResetAfterBytes > 0 && c.stats.Written+int64(len(p)) >= c.cfg.ResetAfterBytes {
		keep := c.cfg.ResetAfterBytes - c.stats.Written
		if keep < 0 {
			keep = 0
		}
		var n int
		var err error
		if keep > 0 {
			n, err = c.Conn.Write(p[:keep])
			c.stats.Written += int64(n)
		}
		c.reset()
		c.mu.Unlock()
		if err == nil {
			err = ErrInjectedReset
		}
		return n, err
	}
	if c.cfg.ResetProb > 0 && c.rng.Float64() < c.cfg.ResetProb {
		c.reset()
		c.mu.Unlock()
		return 0, ErrInjectedReset
	}
	stall := c.cfg.StallProb > 0 && c.rng.Float64() < c.cfg.StallProb
	if stall {
		c.stats.Stalls++
	}
	// Reordering: hold this write back, or flush a held one after the
	// current write.
	var flush []byte
	hold := false
	if c.held != nil {
		flush = c.held
		c.held = nil
	} else if c.cfg.ReorderProb > 0 && c.rng.Float64() < c.cfg.ReorderProb {
		c.held = append([]byte(nil), p...)
		c.stats.Reorders++
		hold = true
	}
	c.mu.Unlock()

	if stall && c.cfg.StallDur > 0 {
		time.Sleep(c.cfg.StallDur)
	}
	if hold {
		// Report success now; the bytes ride out with the next write.
		return len(p), nil
	}
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.stats.Written += int64(n)
	c.mu.Unlock()
	if err != nil {
		return n, err
	}
	if flush != nil {
		m, ferr := c.Conn.Write(flush)
		c.mu.Lock()
		c.stats.Written += int64(m)
		c.mu.Unlock()
		if ferr != nil {
			return n, ferr
		}
	}
	return n, err
}

// Read forwards to the inner connection, surfacing ErrInjectedReset
// after a reset for a recognizable failure.
func (c *FaultConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if err != nil {
		c.mu.Lock()
		failed := c.failed
		c.mu.Unlock()
		if failed {
			err = ErrInjectedReset
		}
	}
	return n, err
}
