package netem

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func TestPipeUnlimitedPassesData(t *testing.T) {
	a, b := Pipe(Unlimited)
	defer a.Close()
	defer b.Close()
	msg := []byte("hello slam-share")
	go a.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
}

func TestDelayAddsLatency(t *testing.T) {
	const delay = 50 * time.Millisecond
	a, b := Pipe(DelayOnly(delay))
	defer a.Close()
	defer b.Close()
	msg := []byte("ping")
	start := time.Now()
	go a.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < delay {
		t.Errorf("read completed in %v, want >= %v", elapsed, delay)
	}
	if elapsed > delay*4 {
		t.Errorf("read took %v, far beyond the configured delay", elapsed)
	}
}

func TestBandwidthCapsThroughput(t *testing.T) {
	// 8 Mbit/s cap: 200 KB should take ~200 ms.
	cfg := Mbps(8)
	cfg.Burst = 16 << 10
	a, b := Pipe(cfg)
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 200<<10)
	done := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		a.Write(payload)
		done <- time.Since(start)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	elapsed := <-done
	min := 120 * time.Millisecond // allow burst credit
	if elapsed < min {
		t.Errorf("200KB at 8Mbit/s took only %v", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("transfer too slow: %v", elapsed)
	}
}

func TestUnlimitedIsFast(t *testing.T) {
	a, b := Pipe(Unlimited)
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 1<<20)
	go func() {
		a.Write(payload)
	}()
	start := time.Now()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Errorf("unshaped 1MB transfer took %v", time.Since(start))
	}
}

func TestTCPPair(t *testing.T) {
	c, s, err := TCPPair(DelayOnly(10 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer s.Close()
	msg := []byte("over real sockets")
	start := time.Now()
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("TCP pair ignored delay")
	}
}

func TestShortReadBuffering(t *testing.T) {
	a, b := Pipe(DelayOnly(5 * time.Millisecond))
	defer a.Close()
	defer b.Close()
	msg := []byte("0123456789")
	go a.Write(msg)
	// Read in tiny pieces: buffered remainder must survive.
	var got []byte
	for len(got) < len(msg) {
		p := make([]byte, 3)
		n, err := b.Read(p)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, p[:n]...)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
}
