// Package netem shapes connections the way the paper's testbed uses
// tc(8) (§5.1): added one-way delay and token-bucket bandwidth caps
// (300 ms, 18.7 Mbit/s, 9.4 Mbit/s in the experiments), applied over
// real net.Conn transports or in-process pipes.
package netem

import (
	"net"
	"sync"
	"time"
)

// Config is the shaping discipline for one direction of a link.
type Config struct {
	// Delay is the added one-way propagation delay.
	Delay time.Duration
	// BandwidthBps caps throughput in bits per second (0 = unlimited).
	BandwidthBps float64
	// Burst is the token bucket depth in bytes (default: 32 KiB).
	Burst int
}

// Unlimited is a no-op discipline.
var Unlimited = Config{}

// DelayOnly returns a discipline with only added delay.
func DelayOnly(d time.Duration) Config { return Config{Delay: d} }

// Mbps returns a discipline capped at the given megabits per second.
func Mbps(m float64) Config { return Config{BandwidthBps: m * 1e6} }

// chunk is a unit of delayed data in flight.
type chunk struct {
	data    []byte
	arrival time.Time
}

// Conn wraps an inner net.Conn with shaping: writes are paced by a
// token bucket (queuing delay, like tc's tbf) and reads are released
// only after the propagation delay (like tc's netem).
type Conn struct {
	net.Conn
	cfg Config

	writeMu sync.Mutex
	tokens  float64
	lastRef time.Time

	readMu  sync.Mutex
	pending []chunk
	buf     []byte
}

// Wrap applies the shaping discipline to a connection. Both the write
// pacing and the read delay act on this endpoint; shape both ends to
// emulate a symmetric link.
func Wrap(inner net.Conn, cfg Config) *Conn {
	if cfg.Burst <= 0 {
		cfg.Burst = 32 << 10
	}
	return &Conn{
		Conn:    inner,
		cfg:     cfg,
		tokens:  float64(cfg.Burst),
		lastRef: time.Now(),
	}
}

// Write paces the payload through the token bucket before handing it
// to the inner connection.
func (c *Conn) Write(p []byte) (int, error) {
	if c.cfg.BandwidthBps <= 0 {
		return c.Conn.Write(p)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	written := 0
	for written < len(p) {
		// Refill.
		now := time.Now()
		c.tokens += c.cfg.BandwidthBps / 8 * now.Sub(c.lastRef).Seconds()
		if c.tokens > float64(c.cfg.Burst) {
			c.tokens = float64(c.cfg.Burst)
		}
		c.lastRef = now
		if c.tokens < 1 {
			// Wait for at least one MTU worth of tokens.
			need := 1500 - c.tokens
			wait := time.Duration(need / (c.cfg.BandwidthBps / 8) * float64(time.Second))
			if wait > 0 {
				time.Sleep(wait)
			}
			continue
		}
		n := int(c.tokens)
		if n > len(p)-written {
			n = len(p) - written
		}
		m, err := c.Conn.Write(p[written : written+n])
		written += m
		c.tokens -= float64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Read delivers data only after the propagation delay has elapsed
// since it arrived from the inner connection.
func (c *Conn) Read(p []byte) (int, error) {
	if c.cfg.Delay <= 0 {
		return c.Conn.Read(p)
	}
	c.readMu.Lock()
	defer c.readMu.Unlock()
	// Serve buffered released data first.
	if len(c.buf) > 0 {
		n := copy(p, c.buf)
		c.buf = c.buf[n:]
		return n, nil
	}
	// Release the next pending chunk when due.
	if len(c.pending) > 0 {
		ch := c.pending[0]
		if wait := time.Until(ch.arrival); wait > 0 {
			time.Sleep(wait)
		}
		c.pending = c.pending[1:]
		n := copy(p, ch.data)
		if n < len(ch.data) {
			c.buf = ch.data[n:]
		}
		return n, nil
	}
	// Pull fresh data from the wire and stamp its arrival time.
	tmp := make([]byte, 64<<10)
	n, err := c.Conn.Read(tmp)
	if n > 0 {
		due := time.Now().Add(c.cfg.Delay)
		data := append([]byte(nil), tmp[:n]...)
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		m := copy(p, data)
		if m < len(data) {
			c.buf = data[m:]
		}
		return m, err
	}
	return 0, err
}

// Pipe returns an in-process bidirectional link shaped with cfg in
// each direction, for tests and single-process experiments.
func Pipe(cfg Config) (net.Conn, net.Conn) {
	a, b := net.Pipe()
	return Wrap(a, cfg), Wrap(b, cfg)
}

// TCPPair dials a loopback TCP connection to itself and returns both
// shaped ends — a real-socket link for experiments that want kernel
// buffering in the path.
func TCPPair(cfg Config) (client, server net.Conn, err error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer l.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	cc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	r := <-ch
	if r.err != nil {
		cc.Close()
		return nil, nil, r.err
	}
	return Wrap(cc, cfg), Wrap(r.c, cfg), nil
}
