// Package protocol frames the client-server messages of both systems:
// SLAM-Share's uplink video frames with IMU deltas and downlink poses
// (§4.1 steps 2 and 4), and the baseline's serialized map exchanges.
// Messages are length-prefixed with a one-byte type over any net.Conn.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/imu"
)

// Message types.
const (
	// TypeHello introduces a client (payload: clientID uint32).
	TypeHello = byte(iota + 1)
	// TypeFrame carries an encoded video frame plus the IMU delta
	// since the previous frame.
	TypeFrame
	// TypePose carries a server-computed pose for a frame index.
	TypePose
	// TypeMapUpload carries a serialized client map (baseline).
	TypeMapUpload
	// TypeMapPortion carries a serialized global-map subset (baseline).
	TypeMapPortion
	// TypeBye closes the session.
	TypeBye
	// TypeModeSwitch carries a server-initiated offload-mode change
	// (full / split / shadow). Only sent to clients that advertised
	// capability bits in their hello; legacy clients never see it.
	TypeModeSwitch
	// TypeKeypoint carries a split-mode uplink frame: client-extracted
	// keypoints + descriptors instead of encoded video. With the
	// sync-only flag set it is a shadow-mode ping (IMU delta only).
	TypeKeypoint
)

// MaxMessageSize bounds a single message (64 MiB fits any map the
// experiments produce).
const MaxMessageSize = 64 << 20

// ErrTooLarge is returned for messages beyond MaxMessageSize.
var ErrTooLarge = errors.New("protocol: message too large")

// WriteMessage frames one message onto w.
func WriteMessage(w io.Writer, msgType byte, payload []byte) error {
	if len(payload) > MaxMessageSize {
		return ErrTooLarge
	}
	var hdr [5]byte
	hdr[0] = msgType
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (msgType byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxMessageSize {
		return 0, nil, ErrTooLarge
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// ReadMessageDeadlines reads one framed message from a connection with
// two distinct read deadlines: idle bounds the wait for the message
// header (a healthy session may legitimately pause between frames up
// to this long), while stall bounds the wait for the remainder once
// the header has arrived (a peer that freezes mid-message is stuck,
// not idle). A zero duration disables that deadline. The deadline is
// cleared before returning so later undeadlined reads are unaffected.
func ReadMessageDeadlines(c net.Conn, idle, stall time.Duration) (msgType byte, payload []byte, err error) {
	setDeadline := func(d time.Duration) error {
		if d <= 0 {
			return c.SetReadDeadline(time.Time{})
		}
		return c.SetReadDeadline(time.Now().Add(d))
	}
	if err := setDeadline(idle); err != nil {
		return 0, nil, err
	}
	var hdr [5]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxMessageSize {
		return 0, nil, ErrTooLarge
	}
	if err := setDeadline(stall); err != nil {
		return 0, nil, err
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(c, payload); err != nil {
		return 0, nil, err
	}
	c.SetReadDeadline(time.Time{})
	return hdr[0], payload, nil
}

// Hello capability bits: offload modes the client can run locally. A
// client with no capability bits (including every legacy client) is
// pinned to full offload and never receives a ModeSwitchMsg.
const (
	// CapSplit: the client can extract FAST/ORB keypoints itself and
	// uplink KeypointMsg frames instead of video.
	CapSplit = byte(1 << iota)
	// CapShadow: the client can dead-reckon locally on map-only sync
	// pings when the server cannot afford to track it.
	CapShadow
)

// HelloMsg introduces a client: its ID, camera mode, and optionally
// the rig calibration and QoS/capability block. The legacy 5-byte
// form (ID + mode) is still accepted; without calibration the server
// assumes the EuRoC rig, and without a QoS block the session is
// pinned to full offload.
type HelloMsg struct {
	ClientID uint32
	Mode     camera.Mode
	// HasRig reports whether the calibration fields are meaningful.
	HasRig   bool
	Intr     camera.Intrinsics
	Baseline float64 // metres; 0 for monocular rigs
	// HasQoS reports whether the QoS/capability block is present.
	HasQoS bool
	QoS    byte // 0 headset (highest), 1 handheld, 2 mapping drone
	Caps   byte // CapSplit | CapShadow
}

// Rig materializes the advertised calibration (or the EuRoC default
// for legacy hellos).
func (m *HelloMsg) Rig() camera.Rig {
	intr := m.Intr
	if !m.HasRig {
		intr = camera.EuRoCIntrinsics()
	}
	if m.Mode == camera.Stereo {
		base := m.Baseline
		if !m.HasRig {
			base = 0.11
		}
		return camera.NewStereoRig(intr, base)
	}
	return camera.NewMonoRig(intr)
}

// Hello extension block tags. Blocks are appended after the legacy
// 5-byte prefix in strictly ascending tag order, each optional, so a
// decoder written for tag N keeps parsing hellos that stop before
// tag N+1 and errors loudly on anything it does not know.
const (
	helloBlockRig = 1
	helloBlockQoS = 2
)

// Encode serializes the hello message.
func (m *HelloMsg) Encode() []byte {
	buf := make([]byte, 0, 5+1+6*8+2*4+3)
	buf = binary.LittleEndian.AppendUint32(buf, m.ClientID)
	buf = append(buf, byte(m.Mode))
	if m.HasRig {
		buf = append(buf, helloBlockRig)
		for _, v := range []float64{m.Intr.Fx, m.Intr.Fy, m.Intr.Cx, m.Intr.Cy} {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Intr.Width))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Intr.Height))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Baseline))
	}
	if m.HasQoS {
		buf = append(buf, helloBlockQoS, m.QoS, m.Caps)
	}
	return buf
}

// DecodeHelloMsg reverses HelloMsg.Encode, accepting the legacy
// 5-byte form, the calibration-extended form, and the QoS-extended
// form (in any combination, tags ascending).
func DecodeHelloMsg(data []byte) (*HelloMsg, error) {
	r := &byteReader{buf: data}
	m := &HelloMsg{}
	m.ClientID = r.u32()
	m.Mode = camera.Mode(r.u8())
	if r.err != nil {
		return nil, r.err
	}
	if r.off == len(data) {
		return m, nil // legacy hello: no extensions
	}
	flag := r.u8()
	if flag == helloBlockRig {
		m.HasRig = true
		m.Intr.Fx = r.f64()
		m.Intr.Fy = r.f64()
		m.Intr.Cx = r.f64()
		m.Intr.Cy = r.f64()
		m.Intr.Width = int(r.u32())
		m.Intr.Height = int(r.u32())
		m.Baseline = r.f64()
		if r.err != nil {
			return nil, r.err
		}
		if r.off == len(data) {
			return m, nil
		}
		flag = r.u8()
	}
	if flag != helloBlockQoS {
		return nil, fmt.Errorf("protocol: bad hello calibration flag %d", flag)
	}
	m.HasQoS = true
	m.QoS = r.u8()
	m.Caps = r.u8()
	if r.err != nil {
		return nil, r.err
	}
	if m.QoS > 2 {
		return nil, fmt.Errorf("protocol: bad hello qos class %d", m.QoS)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("protocol: %d trailing bytes in hello", len(data)-r.off)
	}
	return m, nil
}

// FrameMsg is the per-frame uplink payload.
type FrameMsg struct {
	ClientID uint32
	FrameIdx uint32
	Stamp    float64
	// Delta is the preintegrated IMU motion since the previous frame.
	Delta imu.FrameDelta
	// Video is the encoded left frame; VideoRight the right eye (may
	// be empty for monocular clients).
	Video      []byte
	VideoRight []byte
	// Prior optionally carries the client's body-to-world pose
	// estimate; the first frame of a session uses it to anchor the
	// server-side map in the client's local frame.
	Prior    geom.SE3
	HasPrior bool
	// SentNanos is the client's wall clock at send time; the server
	// echoes it on the answering PoseMsg so the client can measure
	// round-trip time. RTTNanos is the client's current RTT estimate,
	// fed to the server's offload-mode controller. Both are 0 from
	// legacy clients (the decoder tolerates the missing tail).
	SentNanos uint64
	RTTNanos  uint64
}

// Encode serializes the frame message.
func (m *FrameMsg) Encode() []byte {
	buf := make([]byte, 0, 16+len(m.Video)+len(m.VideoRight)+100)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	f64 := func(v float64) { buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v)) }
	u32(m.ClientID)
	u32(m.FrameIdx)
	f64(m.Stamp)
	f64(m.Delta.RotDelta.W)
	f64(m.Delta.RotDelta.X)
	f64(m.Delta.RotDelta.Y)
	f64(m.Delta.RotDelta.Z)
	f64(m.Delta.PosDelta.X)
	f64(m.Delta.PosDelta.Y)
	f64(m.Delta.PosDelta.Z)
	f64(m.Delta.VelDelta.X)
	f64(m.Delta.VelDelta.Y)
	f64(m.Delta.VelDelta.Z)
	f64(m.Delta.DT)
	u32(uint32(len(m.Video)))
	buf = append(buf, m.Video...)
	u32(uint32(len(m.VideoRight)))
	buf = append(buf, m.VideoRight...)
	if m.HasPrior {
		buf = append(buf, 1)
		f64(m.Prior.R.W)
		f64(m.Prior.R.X)
		f64(m.Prior.R.Y)
		f64(m.Prior.R.Z)
		f64(m.Prior.T.X)
		f64(m.Prior.T.Y)
		f64(m.Prior.T.Z)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, m.SentNanos)
	buf = binary.LittleEndian.AppendUint64(buf, m.RTTNanos)
	return buf
}

// DecodeFrameMsg reverses FrameMsg.Encode.
func DecodeFrameMsg(data []byte) (*FrameMsg, error) {
	r := &byteReader{buf: data}
	m := &FrameMsg{}
	m.ClientID = r.u32()
	m.FrameIdx = r.u32()
	m.Stamp = r.f64()
	m.Delta.RotDelta.W = r.f64()
	m.Delta.RotDelta.X = r.f64()
	m.Delta.RotDelta.Y = r.f64()
	m.Delta.RotDelta.Z = r.f64()
	m.Delta.PosDelta.X = r.f64()
	m.Delta.PosDelta.Y = r.f64()
	m.Delta.PosDelta.Z = r.f64()
	m.Delta.VelDelta.X = r.f64()
	m.Delta.VelDelta.Y = r.f64()
	m.Delta.VelDelta.Z = r.f64()
	m.Delta.DT = r.f64()
	m.Video = r.bytes()
	m.VideoRight = r.bytes()
	if flag := r.u8(); flag == 1 {
		m.HasPrior = true
		m.Prior.R.W = r.f64()
		m.Prior.R.X = r.f64()
		m.Prior.R.Y = r.f64()
		m.Prior.R.Z = r.f64()
		m.Prior.T.X = r.f64()
		m.Prior.T.Y = r.f64()
		m.Prior.T.Z = r.f64()
	}
	// Timing tail (absent from legacy senders; decoders have always
	// ignored trailing bytes here, so appending is safe).
	if r.err == nil && len(data)-r.off >= 16 {
		m.SentNanos = r.u64()
		m.RTTNanos = r.u64()
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// PoseMsg is the downlink pose answer: the paper's "small 4x4 matrix".
type PoseMsg struct {
	FrameIdx uint32
	Pose     geom.SE3 // world-to-camera
	Tracked  bool     // false when the server lost tracking that frame
	// Shed marks a frame the overloaded server dropped without
	// processing (process-latest load shedding): the pose fields carry
	// no information and the client should keep dead-reckoning on its
	// IMU (Alg. 1) until the next tracked answer.
	Shed bool
	// HasEcho/EchoNanos return the SentNanos stamp of the uplink frame
	// this pose answers, letting the client measure round-trip time.
	// Only sent to sessions that advertised capability bits, so legacy
	// decoders (which reject unknown lengths) never see it.
	HasEcho   bool
	EchoNanos uint64
	// Token is the front's updated session token (encoded
	// SessionTokenMsg bytes), piggybacked so a CapResume client holds a
	// current token after every answered frame. Only sent to sessions
	// that advertised CapResume, so legacy decoders never see it.
	Token []byte
}

// poseMsgLegacyLen is the pre-Shed encoding: frame index + 4x4 matrix
// + tracked byte. Tails append in ascending flag order: shed is one
// 0x01 flag byte, echo a 0x02 flag byte plus the 8-byte stamp, and a
// session token a 0x03 flag byte plus a length-prefixed blob.
// Non-shed, non-echo, token-less answers keep the legacy form so old
// decoders still parse them.
const poseMsgLegacyLen = 4 + 16*8 + 1

// maxPoseTokenLen bounds the token tail: a full token is well under
// 200 bytes, so anything near the bound is forged.
const maxPoseTokenLen = 4096

// Encode serializes the pose message.
func (m *PoseMsg) Encode() []byte {
	buf := make([]byte, 0, poseMsgLegacyLen+1)
	buf = binary.LittleEndian.AppendUint32(buf, m.FrameIdx)
	mat := m.Pose.Mat4()
	for _, v := range mat {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	if m.Tracked {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	if m.Shed {
		buf = append(buf, 1)
	}
	if m.HasEcho {
		buf = append(buf, 2)
		buf = binary.LittleEndian.AppendUint64(buf, m.EchoNanos)
	}
	if m.Token != nil {
		buf = append(buf, 3)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Token)))
		buf = append(buf, m.Token...)
	}
	return buf
}

// DecodePoseMsg reverses PoseMsg.Encode: the legacy fixed-length body
// followed by optional tails in strictly ascending flag order (1 shed,
// 2 echo + 8-byte stamp, 3 token + length-prefixed blob). Every tail
// must be complete and the final offset exact, so forged or truncated
// tails never parse; the four pre-token forms decode byte-identically
// to the old exact-length decoder.
func DecodePoseMsg(data []byte) (*PoseMsg, error) {
	if len(data) < poseMsgLegacyLen {
		return nil, fmt.Errorf("protocol: bad pose message length %d", len(data))
	}
	m := &PoseMsg{}
	m.FrameIdx = binary.LittleEndian.Uint32(data)
	var mat geom.Mat4
	for i := range mat {
		mat[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[4+8*i:]))
	}
	m.Pose = geom.SE3FromMat4(mat)
	m.Tracked = data[4+16*8] == 1
	off, prev := poseMsgLegacyLen, byte(0)
	for off < len(data) {
		flag := data[off]
		if flag <= prev || flag > 3 {
			return nil, fmt.Errorf("protocol: bad pose tail flag %d", flag)
		}
		prev = flag
		off++
		switch flag {
		case 1:
			m.Shed = true
		case 2:
			if off+8 > len(data) {
				return nil, errors.New("protocol: short pose echo tail")
			}
			m.HasEcho = true
			m.EchoNanos = binary.LittleEndian.Uint64(data[off:])
			off += 8
		case 3:
			if off+4 > len(data) {
				return nil, errors.New("protocol: short pose token tail")
			}
			n := int(binary.LittleEndian.Uint32(data[off:]))
			off += 4
			if n < 0 || n > maxPoseTokenLen || off+n > len(data) {
				return nil, fmt.Errorf("protocol: pose token length %d exceeds payload", n)
			}
			m.Token = data[off : off+n : off+n]
			off += n
		}
	}
	return m, nil
}

type byteReader struct {
	buf []byte
	off int
	err error
}

func (r *byteReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.err = errors.New("protocol: short message")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *byteReader) f64() float64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.err = errors.New("protocol: short message")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *byteReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.err = errors.New("protocol: short message")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *byteReader) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.err = errors.New("protocol: short message")
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *byteReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = errors.New("protocol: short message")
		}
		return nil
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

// KeypointMsg flag bits.
const (
	// KeypointSyncOnly marks a shadow-mode map-sync ping: Kps is empty
	// and the server only integrates the IMU delta into the session's
	// motion model so a later mode upgrade re-enters tracking with a
	// usable prior.
	KeypointSyncOnly = byte(1 << iota)
)

// keypointWireBytes is the serialized size of one keypoint: X, Y,
// level, angle, score, descriptor, right, depth.
const keypointWireBytes = 8 + 8 + 4 + 8 + 8 + feature.DescriptorBytes + 8 + 8

// KeypointMsg is the split-mode uplink frame: the client ran FAST/ORB
// extraction (and stereo matching) itself and ships keypoints +
// descriptors instead of encoded video, skipping the video encode /
// decode stages and the server's extract stage. All float fields are
// raw IEEE-754 bits so a split-mode session tracks bit-identically to
// a full-offload one fed the same pixels.
type KeypointMsg struct {
	ClientID uint32
	FrameIdx uint32
	Stamp    float64
	// Delta is the preintegrated IMU motion since the previous frame.
	Delta imu.FrameDelta
	Flags byte
	// SentNanos / RTTNanos mirror FrameMsg's timing tail.
	SentNanos uint64
	RTTNanos  uint64
	// Kps are the extracted keypoints; Right/Depth are filled when the
	// client stereo-matched them.
	Kps []feature.Keypoint
	// Prior mirrors FrameMsg.Prior.
	Prior    geom.SE3
	HasPrior bool
}

// Encode serializes the keypoint message.
func (m *KeypointMsg) Encode() []byte {
	buf := make([]byte, 0, 4+4+8+11*8+1+16+4+len(m.Kps)*keypointWireBytes+1+7*8)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u32(m.ClientID)
	u32(m.FrameIdx)
	f64(m.Stamp)
	f64(m.Delta.RotDelta.W)
	f64(m.Delta.RotDelta.X)
	f64(m.Delta.RotDelta.Y)
	f64(m.Delta.RotDelta.Z)
	f64(m.Delta.PosDelta.X)
	f64(m.Delta.PosDelta.Y)
	f64(m.Delta.PosDelta.Z)
	f64(m.Delta.VelDelta.X)
	f64(m.Delta.VelDelta.Y)
	f64(m.Delta.VelDelta.Z)
	f64(m.Delta.DT)
	buf = append(buf, m.Flags)
	u64(m.SentNanos)
	u64(m.RTTNanos)
	u32(uint32(len(m.Kps)))
	for i := range m.Kps {
		kp := &m.Kps[i]
		f64(kp.X)
		f64(kp.Y)
		u32(uint32(int32(kp.Level)))
		f64(kp.Angle)
		f64(kp.Score)
		d := kp.Desc.Bytes()
		buf = append(buf, d[:]...)
		f64(kp.Right)
		f64(kp.Depth)
	}
	if m.HasPrior {
		buf = append(buf, 1)
		f64(m.Prior.R.W)
		f64(m.Prior.R.X)
		f64(m.Prior.R.Y)
		f64(m.Prior.R.Z)
		f64(m.Prior.T.X)
		f64(m.Prior.T.Y)
		f64(m.Prior.T.Z)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// DecodeKeypointMsg reverses KeypointMsg.Encode. Unlike FrameMsg this
// is strict: trailing bytes are an error.
func DecodeKeypointMsg(data []byte) (*KeypointMsg, error) {
	r := &byteReader{buf: data}
	m := &KeypointMsg{}
	m.ClientID = r.u32()
	m.FrameIdx = r.u32()
	m.Stamp = r.f64()
	m.Delta.RotDelta.W = r.f64()
	m.Delta.RotDelta.X = r.f64()
	m.Delta.RotDelta.Y = r.f64()
	m.Delta.RotDelta.Z = r.f64()
	m.Delta.PosDelta.X = r.f64()
	m.Delta.PosDelta.Y = r.f64()
	m.Delta.PosDelta.Z = r.f64()
	m.Delta.VelDelta.X = r.f64()
	m.Delta.VelDelta.Y = r.f64()
	m.Delta.VelDelta.Z = r.f64()
	m.Delta.DT = r.f64()
	m.Flags = r.u8()
	m.SentNanos = r.u64()
	m.RTTNanos = r.u64()
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n < 0 || n*keypointWireBytes > len(data)-r.off {
		return nil, fmt.Errorf("protocol: keypoint count %d exceeds payload", n)
	}
	if n > 0 {
		m.Kps = make([]feature.Keypoint, n)
	}
	for i := 0; i < n; i++ {
		kp := &m.Kps[i]
		kp.X = r.f64()
		kp.Y = r.f64()
		kp.Level = int(int32(r.u32()))
		kp.Angle = r.f64()
		kp.Score = r.f64()
		var d [feature.DescriptorBytes]byte
		if r.err == nil && r.off+feature.DescriptorBytes <= len(data) {
			copy(d[:], data[r.off:])
			r.off += feature.DescriptorBytes
		} else if r.err == nil {
			r.err = errors.New("protocol: short message")
		}
		kp.Desc = feature.DescriptorFromBytes(d)
		kp.Right = r.f64()
		kp.Depth = r.f64()
	}
	if flag := r.u8(); flag == 1 {
		m.HasPrior = true
		m.Prior.R.W = r.f64()
		m.Prior.R.X = r.f64()
		m.Prior.R.Y = r.f64()
		m.Prior.R.Z = r.f64()
		m.Prior.T.X = r.f64()
		m.Prior.T.Y = r.f64()
		m.Prior.T.Z = r.f64()
	} else if flag != 0 && r.err == nil {
		return nil, fmt.Errorf("protocol: bad keypoint prior flag %d", flag)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("protocol: %d trailing bytes in keypoint message", len(data)-r.off)
	}
	return m, nil
}

// ModeSwitchMsg is the server-initiated offload-mode change for a
// session: 0 full, 1 split, 2 shadow. Epoch increments on every
// switch so a reordered stale switch can be discarded by the client.
type ModeSwitchMsg struct {
	Mode   byte
	Epoch  uint32
	Reason byte // advisory: 0 policy, 1 server load, 2 RTT
	// SentNanos is the server's wall clock at send time. Mode switches
	// are gated by the policy's hysteresis dwell, but the client's
	// reader can drain several queued downlinks back to back, so only
	// this stamp preserves the true switch spacing for diagnostics.
	// Zero from a server that predates the field.
	SentNanos uint64
}

// modeSwitchLen is the ModeSwitchMsg encoding size without the
// send-timestamp tail (what pre-timestamp servers emit).
const modeSwitchLen = 1 + 4 + 1

// Encode serializes the mode-switch message.
func (m *ModeSwitchMsg) Encode() []byte {
	buf := make([]byte, 0, modeSwitchLen+8)
	buf = append(buf, m.Mode)
	buf = binary.LittleEndian.AppendUint32(buf, m.Epoch)
	buf = append(buf, m.Reason)
	buf = binary.LittleEndian.AppendUint64(buf, m.SentNanos)
	return buf
}

// DecodeModeSwitchMsg reverses ModeSwitchMsg.Encode. The 8-byte
// send-timestamp tail is optional: a legacy 6-byte message decodes
// with SentNanos zero.
func DecodeModeSwitchMsg(data []byte) (*ModeSwitchMsg, error) {
	if len(data) != modeSwitchLen && len(data) != modeSwitchLen+8 {
		return nil, fmt.Errorf("protocol: bad mode switch length %d", len(data))
	}
	m := &ModeSwitchMsg{}
	m.Mode = data[0]
	if m.Mode > 2 {
		return nil, fmt.Errorf("protocol: bad offload mode %d", m.Mode)
	}
	m.Epoch = binary.LittleEndian.Uint32(data[1:])
	m.Reason = data[5]
	if len(data) == modeSwitchLen+8 {
		m.SentNanos = binary.LittleEndian.Uint64(data[6:])
	}
	return m, nil
}
