// Package protocol frames the client-server messages of both systems:
// SLAM-Share's uplink video frames with IMU deltas and downlink poses
// (§4.1 steps 2 and 4), and the baseline's serialized map exchanges.
// Messages are length-prefixed with a one-byte type over any net.Conn.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/geom"
	"slamshare/internal/imu"
)

// Message types.
const (
	// TypeHello introduces a client (payload: clientID uint32).
	TypeHello = byte(iota + 1)
	// TypeFrame carries an encoded video frame plus the IMU delta
	// since the previous frame.
	TypeFrame
	// TypePose carries a server-computed pose for a frame index.
	TypePose
	// TypeMapUpload carries a serialized client map (baseline).
	TypeMapUpload
	// TypeMapPortion carries a serialized global-map subset (baseline).
	TypeMapPortion
	// TypeBye closes the session.
	TypeBye
)

// MaxMessageSize bounds a single message (64 MiB fits any map the
// experiments produce).
const MaxMessageSize = 64 << 20

// ErrTooLarge is returned for messages beyond MaxMessageSize.
var ErrTooLarge = errors.New("protocol: message too large")

// WriteMessage frames one message onto w.
func WriteMessage(w io.Writer, msgType byte, payload []byte) error {
	if len(payload) > MaxMessageSize {
		return ErrTooLarge
	}
	var hdr [5]byte
	hdr[0] = msgType
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (msgType byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxMessageSize {
		return 0, nil, ErrTooLarge
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// ReadMessageDeadlines reads one framed message from a connection with
// two distinct read deadlines: idle bounds the wait for the message
// header (a healthy session may legitimately pause between frames up
// to this long), while stall bounds the wait for the remainder once
// the header has arrived (a peer that freezes mid-message is stuck,
// not idle). A zero duration disables that deadline. The deadline is
// cleared before returning so later undeadlined reads are unaffected.
func ReadMessageDeadlines(c net.Conn, idle, stall time.Duration) (msgType byte, payload []byte, err error) {
	setDeadline := func(d time.Duration) error {
		if d <= 0 {
			return c.SetReadDeadline(time.Time{})
		}
		return c.SetReadDeadline(time.Now().Add(d))
	}
	if err := setDeadline(idle); err != nil {
		return 0, nil, err
	}
	var hdr [5]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxMessageSize {
		return 0, nil, ErrTooLarge
	}
	if err := setDeadline(stall); err != nil {
		return 0, nil, err
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(c, payload); err != nil {
		return 0, nil, err
	}
	c.SetReadDeadline(time.Time{})
	return hdr[0], payload, nil
}

// HelloMsg introduces a client: its ID, camera mode, and optionally
// the rig calibration. The legacy 5-byte form (ID + mode) is still
// accepted; without calibration the server assumes the EuRoC rig.
type HelloMsg struct {
	ClientID uint32
	Mode     camera.Mode
	// HasRig reports whether the calibration fields are meaningful.
	HasRig   bool
	Intr     camera.Intrinsics
	Baseline float64 // metres; 0 for monocular rigs
}

// Rig materializes the advertised calibration (or the EuRoC default
// for legacy hellos).
func (m *HelloMsg) Rig() camera.Rig {
	intr := m.Intr
	if !m.HasRig {
		intr = camera.EuRoCIntrinsics()
	}
	if m.Mode == camera.Stereo {
		base := m.Baseline
		if !m.HasRig {
			base = 0.11
		}
		return camera.NewStereoRig(intr, base)
	}
	return camera.NewMonoRig(intr)
}

// Encode serializes the hello message.
func (m *HelloMsg) Encode() []byte {
	buf := make([]byte, 0, 5+1+6*8+2*4)
	buf = binary.LittleEndian.AppendUint32(buf, m.ClientID)
	buf = append(buf, byte(m.Mode))
	if !m.HasRig {
		return buf
	}
	buf = append(buf, 1)
	for _, v := range []float64{m.Intr.Fx, m.Intr.Fy, m.Intr.Cx, m.Intr.Cy} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Intr.Width))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Intr.Height))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Baseline))
	return buf
}

// DecodeHelloMsg reverses HelloMsg.Encode, accepting both the legacy
// 5-byte form and the extended form with calibration.
func DecodeHelloMsg(data []byte) (*HelloMsg, error) {
	r := &byteReader{buf: data}
	m := &HelloMsg{}
	m.ClientID = r.u32()
	m.Mode = camera.Mode(r.u8())
	if r.err != nil {
		return nil, r.err
	}
	if r.off == len(data) {
		return m, nil // legacy hello: no calibration
	}
	if flag := r.u8(); flag != 1 {
		return nil, fmt.Errorf("protocol: bad hello calibration flag %d", flag)
	}
	m.HasRig = true
	m.Intr.Fx = r.f64()
	m.Intr.Fy = r.f64()
	m.Intr.Cx = r.f64()
	m.Intr.Cy = r.f64()
	m.Intr.Width = int(r.u32())
	m.Intr.Height = int(r.u32())
	m.Baseline = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("protocol: %d trailing bytes in hello", len(data)-r.off)
	}
	return m, nil
}

// FrameMsg is the per-frame uplink payload.
type FrameMsg struct {
	ClientID uint32
	FrameIdx uint32
	Stamp    float64
	// Delta is the preintegrated IMU motion since the previous frame.
	Delta imu.FrameDelta
	// Video is the encoded left frame; VideoRight the right eye (may
	// be empty for monocular clients).
	Video      []byte
	VideoRight []byte
	// Prior optionally carries the client's body-to-world pose
	// estimate; the first frame of a session uses it to anchor the
	// server-side map in the client's local frame.
	Prior    geom.SE3
	HasPrior bool
}

// Encode serializes the frame message.
func (m *FrameMsg) Encode() []byte {
	buf := make([]byte, 0, 16+len(m.Video)+len(m.VideoRight)+100)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	f64 := func(v float64) { buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v)) }
	u32(m.ClientID)
	u32(m.FrameIdx)
	f64(m.Stamp)
	f64(m.Delta.RotDelta.W)
	f64(m.Delta.RotDelta.X)
	f64(m.Delta.RotDelta.Y)
	f64(m.Delta.RotDelta.Z)
	f64(m.Delta.PosDelta.X)
	f64(m.Delta.PosDelta.Y)
	f64(m.Delta.PosDelta.Z)
	f64(m.Delta.VelDelta.X)
	f64(m.Delta.VelDelta.Y)
	f64(m.Delta.VelDelta.Z)
	f64(m.Delta.DT)
	u32(uint32(len(m.Video)))
	buf = append(buf, m.Video...)
	u32(uint32(len(m.VideoRight)))
	buf = append(buf, m.VideoRight...)
	if m.HasPrior {
		buf = append(buf, 1)
		f64(m.Prior.R.W)
		f64(m.Prior.R.X)
		f64(m.Prior.R.Y)
		f64(m.Prior.R.Z)
		f64(m.Prior.T.X)
		f64(m.Prior.T.Y)
		f64(m.Prior.T.Z)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// DecodeFrameMsg reverses FrameMsg.Encode.
func DecodeFrameMsg(data []byte) (*FrameMsg, error) {
	r := &byteReader{buf: data}
	m := &FrameMsg{}
	m.ClientID = r.u32()
	m.FrameIdx = r.u32()
	m.Stamp = r.f64()
	m.Delta.RotDelta.W = r.f64()
	m.Delta.RotDelta.X = r.f64()
	m.Delta.RotDelta.Y = r.f64()
	m.Delta.RotDelta.Z = r.f64()
	m.Delta.PosDelta.X = r.f64()
	m.Delta.PosDelta.Y = r.f64()
	m.Delta.PosDelta.Z = r.f64()
	m.Delta.VelDelta.X = r.f64()
	m.Delta.VelDelta.Y = r.f64()
	m.Delta.VelDelta.Z = r.f64()
	m.Delta.DT = r.f64()
	m.Video = r.bytes()
	m.VideoRight = r.bytes()
	if flag := r.u8(); flag == 1 {
		m.HasPrior = true
		m.Prior.R.W = r.f64()
		m.Prior.R.X = r.f64()
		m.Prior.R.Y = r.f64()
		m.Prior.R.Z = r.f64()
		m.Prior.T.X = r.f64()
		m.Prior.T.Y = r.f64()
		m.Prior.T.Z = r.f64()
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// PoseMsg is the downlink pose answer: the paper's "small 4x4 matrix".
type PoseMsg struct {
	FrameIdx uint32
	Pose     geom.SE3 // world-to-camera
	Tracked  bool     // false when the server lost tracking that frame
	// Shed marks a frame the overloaded server dropped without
	// processing (process-latest load shedding): the pose fields carry
	// no information and the client should keep dead-reckoning on its
	// IMU (Alg. 1) until the next tracked answer.
	Shed bool
}

// poseMsgLegacyLen is the pre-Shed encoding: frame index + 4x4 matrix
// + tracked byte. Shed answers append one flag byte; non-shed answers
// keep the legacy form so old decoders still parse them.
const poseMsgLegacyLen = 4 + 16*8 + 1

// Encode serializes the pose message.
func (m *PoseMsg) Encode() []byte {
	buf := make([]byte, 0, poseMsgLegacyLen+1)
	buf = binary.LittleEndian.AppendUint32(buf, m.FrameIdx)
	mat := m.Pose.Mat4()
	for _, v := range mat {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	if m.Tracked {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	if m.Shed {
		buf = append(buf, 1)
	}
	return buf
}

// DecodePoseMsg reverses PoseMsg.Encode, accepting both the legacy
// form (no shed byte, Shed=false) and the extended form.
func DecodePoseMsg(data []byte) (*PoseMsg, error) {
	if len(data) != poseMsgLegacyLen && len(data) != poseMsgLegacyLen+1 {
		return nil, fmt.Errorf("protocol: bad pose message length %d", len(data))
	}
	m := &PoseMsg{}
	m.FrameIdx = binary.LittleEndian.Uint32(data)
	var mat geom.Mat4
	for i := range mat {
		mat[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[4+8*i:]))
	}
	m.Pose = geom.SE3FromMat4(mat)
	m.Tracked = data[4+16*8] == 1
	if len(data) == poseMsgLegacyLen+1 {
		if data[poseMsgLegacyLen] != 1 {
			return nil, fmt.Errorf("protocol: bad pose shed flag %d", data[poseMsgLegacyLen])
		}
		m.Shed = true
	}
	return m, nil
}

type byteReader struct {
	buf []byte
	off int
	err error
}

func (r *byteReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.err = errors.New("protocol: short message")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *byteReader) f64() float64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.err = errors.New("protocol: short message")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *byteReader) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.err = errors.New("protocol: short message")
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *byteReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = errors.New("protocol: short message")
		}
		return nil
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}
