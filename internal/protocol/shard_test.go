package protocol

import (
	"bytes"
	"net"
	"reflect"
	"testing"

	"slamshare/internal/camera"
	"slamshare/internal/geom"
	"slamshare/internal/imu"
)

func pose(x, y, z float64) geom.SE3 {
	return geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{X: x, Y: y, Z: z}}
}

func TestShardHelloRoundTrip(t *testing.T) {
	for _, m := range []*ShardHelloMsg{
		{Role: ShardRoleFront, SenderID: 0, Token: 0},
		{Role: ShardRolePeer, SenderID: 3, Token: 0xDEADBEEFCAFEF00D},
		{Role: ShardRoleAdmin, SenderID: ^uint32(0), Token: ^uint64(0)},
	} {
		got, err := DecodeShardHelloMsg(m.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if *got != *m {
			t.Fatalf("round trip: got %+v want %+v", got, m)
		}
	}
}

func TestShardHelloRejects(t *testing.T) {
	valid := (&ShardHelloMsg{Role: ShardRolePeer, SenderID: 1, Token: 7}).Encode()
	cases := map[string][]byte{
		"empty":     {},
		"short":     valid[:len(valid)-1],
		"long":      append(append([]byte(nil), valid...), 0),
		"zero role": append([]byte{0}, valid[1:]...),
		"bad role":  append([]byte{9}, valid[1:]...),
	}
	for name, data := range cases {
		if _, err := DecodeShardHelloMsg(data); err == nil {
			t.Errorf("%s: decoder accepted %x", name, data)
		}
	}
	// A legacy device hello payload must never parse as a shard hello:
	// the 5-byte form is too short and the rig form too long.
	legacy := (&HelloMsg{ClientID: 3, Mode: camera.Stereo}).Encode()
	if _, err := DecodeShardHelloMsg(legacy); err == nil {
		t.Error("device hello payload decoded as shard hello")
	}
	rig := (&HelloMsg{ClientID: 3, Mode: camera.Stereo, HasRig: true,
		Intr: camera.EuRoCIntrinsics(), Baseline: 0.11}).Encode()
	if _, err := DecodeShardHelloMsg(rig); err == nil {
		t.Error("rig hello payload decoded as shard hello")
	}
}

func TestHandoffRoundTrip(t *testing.T) {
	for _, m := range []*HandoffMsg{
		{Phase: HandoffBegin, ClientID: 7, Epoch: 1, FromShard: 0, ToShard: 1},
		{Phase: HandoffAck, ClientID: 7, Epoch: 2, FromShard: 1, ToShard: 0},
		{Phase: HandoffNack, ClientID: 9, Epoch: 3, FromShard: 1, ToShard: 2,
			Reason: "import rolled back: rmse 0.71 over budget"},
		{Phase: HandoffCommit, ClientID: ^uint32(0), Epoch: ^uint64(0), FromShard: 4, ToShard: 5},
		{Phase: HandoffCommitAck, ClientID: 1, Epoch: 10, FromShard: 5, ToShard: 4},
	} {
		got, err := DecodeHandoffMsg(m.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if *got != *m {
			t.Fatalf("round trip: got %+v want %+v", got, m)
		}
	}
}

func TestHandoffRejects(t *testing.T) {
	valid := (&HandoffMsg{Phase: HandoffBegin, ClientID: 1, Epoch: 1, ToShard: 1, Reason: "x"}).Encode()
	trailing := append(append([]byte(nil), valid...), 0xAA)
	badPhase := append([]byte(nil), valid...)
	badPhase[0] = 0
	overLen := append([]byte(nil), valid...)
	overLen[21] = 0xFF // reason length claims more bytes than present
	for name, data := range map[string][]byte{
		"empty": {}, "trailing": trailing, "bad phase": badPhase, "over length": overLen,
	} {
		if _, err := DecodeHandoffMsg(data); err == nil {
			t.Errorf("%s: decoder accepted %x", name, data)
		}
	}
	huge := &HandoffMsg{Phase: HandoffNack, ClientID: 1, Epoch: 1,
		Reason: string(make([]byte, maxHandoffReason+1))}
	if _, err := DecodeHandoffMsg(huge.Encode()); err == nil {
		t.Error("oversized reason accepted")
	}
}

func TestBoundaryRegionRoundTrip(t *testing.T) {
	for _, m := range []*BoundaryRegionMsg{
		{ClientID: 1, Epoch: 1, RegionID: 42},
		{ClientID: 2, Epoch: 9, RegionID: 7, Region: []byte("region blob"), Anchors: []byte{1, 2, 3}},
	} {
		got, err := DecodeBoundaryRegionMsg(m.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.ClientID != m.ClientID || got.Epoch != m.Epoch || got.RegionID != m.RegionID ||
			!bytes.Equal(got.Region, m.Region) || !bytes.Equal(got.Anchors, m.Anchors) {
			t.Fatalf("round trip: got %+v want %+v", got, m)
		}
	}
	valid := (&BoundaryRegionMsg{ClientID: 1, Epoch: 1, RegionID: 1, Region: []byte("r")}).Encode()
	if _, err := DecodeBoundaryRegionMsg(append(valid, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	forged := append([]byte(nil), valid...)
	forged[20] = 0xFF // region length beyond payload
	if _, err := DecodeBoundaryRegionMsg(forged); err == nil {
		t.Error("forged region length accepted")
	}
}

func TestShardControlRoundTrip(t *testing.T) {
	for _, op := range []byte{ShardOpPing, ShardOpCheck, ShardOpOwnership, ShardOpStats} {
		m := &ShardControlMsg{Op: op, Token: 0x51A87A5E}
		got, err := DecodeShardControlMsg(m.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if *got != *m {
			t.Fatalf("round trip: got %+v want %+v", got, m)
		}
	}
	// The resume probe carries its ClientID operand; the other ops
	// never grow one (a 13-byte ping is rejected below as "long").
	resume := &ShardControlMsg{Op: ShardOpResume, Token: 0x51A87A5E, ClientID: 42}
	got, err := DecodeShardControlMsg(resume.Encode())
	if err != nil {
		t.Fatalf("decode resume: %v", err)
	}
	if *got != *resume {
		t.Fatalf("resume round trip: got %+v want %+v", got, resume)
	}
	valid := (&ShardControlMsg{Op: ShardOpPing, Token: 1}).Encode()
	for name, data := range map[string][]byte{
		"empty":        {},
		"short":        valid[:len(valid)-1],
		"long":         append(append([]byte(nil), valid...), 0),
		"ping with id": append(append([]byte(nil), valid...), 1, 0, 0, 0),
		"zero op":      append([]byte{0}, valid[1:]...),
		"wild op":      append([]byte{200}, valid[1:]...),
		"short resume": resume.Encode()[:shardControlLen],
	} {
		if _, err := DecodeShardControlMsg(data); err == nil {
			t.Errorf("%s: decoder accepted %x", name, data)
		}
	}
}

func TestShardStatusRoundTrip(t *testing.T) {
	for _, m := range []*ShardStatusMsg{
		{Op: ShardOpPing, OK: true},
		{Op: ShardOpCheck, OK: false,
			Violations: []string{"kf 5 binds missing mp 9", "mp 9 orphaned"}},
		{Op: ShardOpOwnership, OK: true,
			KFIDs: []uint64{1, 2, 1 << 40, (3 << 40) | 7},
			Anchors: []AnchorState{
				{ID: 1, Pose: pose(1, 2, 3)},
				{ID: 9, Pose: pose(-4, 0, 120.5)},
			}},
		{Op: ShardOpStats, OK: true,
			Stats: ShardStats{KeyFrames: 100, MapPoints: 9000, Sessions: 4,
				ImportsInFlight: 1, Imports: 3, ImportRollbacks: 1, ImportsStalled: 1}},
		{Op: ShardOpResume, OK: true,
			ResumeKnown: true, ResumeFrame: 312, ResumeEpoch: 7, ResumeMode: 1},
		{Op: ShardOpResume, OK: true}, // unknown client: zero resume section
	} {
		got, err := DecodeShardStatusMsg(m.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
		}
	}
}

func TestShardStatusRejects(t *testing.T) {
	valid := (&ShardStatusMsg{Op: ShardOpCheck, OK: true, KFIDs: []uint64{1}}).Encode()
	badOK := append([]byte(nil), valid...)
	badOK[1] = 2
	forgedKF := append([]byte(nil), valid...)
	forgedKF[6] = 0xFF // keyframe count beyond payload
	for name, data := range map[string][]byte{
		"empty":     {},
		"trailing":  append(append([]byte(nil), valid...), 0),
		"bad ok":    badOK,
		"forged kf": forgedKF,
	} {
		if _, err := DecodeShardStatusMsg(data); err == nil {
			t.Errorf("%s: decoder accepted %x", name, data)
		}
	}
}

// TestShardTypesDisjointFromDevice pins the cluster message type values:
// they continue the device sequence and may never collide with it, so a
// front door can pass legacy device traffic through untouched.
func TestShardTypesDisjointFromDevice(t *testing.T) {
	device := []byte{TypeHello, TypeFrame, TypePose, TypeMapUpload, TypeMapPortion, TypeBye, TypeModeSwitch, TypeKeypoint, TypeSessionToken}
	shard := []byte{TypeShardHello, TypeBoundaryRegion, TypeHandoff, TypeShardControl, TypeShardStatus}
	want := []byte{9, 10, 11, 12, 13}
	if !bytes.Equal(shard, want) {
		t.Fatalf("shard type values moved: got %v want %v", shard, want)
	}
	seen := map[byte]bool{}
	for _, v := range append(device, shard...) {
		if seen[v] {
			t.Fatalf("duplicate message type value %d", v)
		}
		seen[v] = true
	}
}

// TestLegacyFramingThroughShardFraming proves the framing layer treats
// legacy device messages and shard messages identically: a pipe
// carrying an interleaved legacy hello, frame, shard hello, and pose
// delivers each intact — the cluster front door relays device bytes
// with no re-encoding.
func TestLegacyFramingThroughShardFraming(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	hello := &HelloMsg{ClientID: 3, Mode: camera.Stereo} // legacy 5-byte form
	frame := &FrameMsg{ClientID: 3, FrameIdx: 1, Stamp: 0.05,
		Delta: imu.FrameDelta{RotDelta: geom.IdentityQuat(), DT: 0.05},
		Video: []byte("payload"), Prior: pose(1, 2, 3), HasPrior: true}
	shardHello := &ShardHelloMsg{Role: ShardRoleFront, SenderID: 1, Token: 99}
	poseMsg := &PoseMsg{FrameIdx: 1, Pose: pose(1, 2, 3), Tracked: true}

	go func() {
		WriteMessage(a, TypeHello, hello.Encode())
		WriteMessage(a, TypeFrame, frame.Encode())
		WriteMessage(a, TypeShardHello, shardHello.Encode())
		WriteMessage(a, TypePose, poseMsg.Encode())
	}()

	for _, want := range []struct {
		mt      byte
		payload []byte
	}{
		{TypeHello, hello.Encode()},
		{TypeFrame, frame.Encode()},
		{TypeShardHello, shardHello.Encode()},
		{TypePose, poseMsg.Encode()},
	} {
		mt, payload, err := ReadMessage(b)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if mt != want.mt || !bytes.Equal(payload, want.payload) {
			t.Fatalf("message %d: got type %d payload %x, want type %d payload %x",
				want.mt, mt, payload, want.mt, want.payload)
		}
	}
}

func FuzzDecodeShardHello(f *testing.F) {
	for _, m := range []*ShardHelloMsg{
		{Role: ShardRoleFront, SenderID: 1, Token: 7},
		{Role: ShardRolePeer, SenderID: 2, Token: ^uint64(0)},
		{Role: ShardRoleAdmin, SenderID: 0, Token: 0},
	} {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:len(data)-1])
		f.Add(append(append([]byte(nil), data...), 0))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeShardHelloMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		if got := m.Encode(); !bytes.Equal(got, data) {
			t.Fatalf("round-trip mismatch: %x -> %x", data, got)
		}
	})
}

func FuzzDecodeBoundaryRegion(f *testing.F) {
	for _, m := range []*BoundaryRegionMsg{
		{ClientID: 1, Epoch: 1, RegionID: 1},
		{ClientID: 2, Epoch: 5, RegionID: 9, Region: []byte("SLRG fake"), Anchors: []byte{0, 1}},
	} {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:len(data)/2])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/3] ^= 0xFF
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeBoundaryRegionMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		if len(m.Region)+len(m.Anchors) > len(data) {
			t.Fatalf("decoded %d blob bytes from a %d-byte message",
				len(m.Region)+len(m.Anchors), len(data))
		}
		if got := m.Encode(); !bytes.Equal(got, data) {
			t.Fatalf("round-trip mismatch: %x -> %x", data, got)
		}
	})
}

func FuzzDecodeHandoffMsg(f *testing.F) {
	for _, m := range []*HandoffMsg{
		{Phase: HandoffBegin, ClientID: 1, Epoch: 1, ToShard: 1},
		{Phase: HandoffNack, ClientID: 2, Epoch: 3, FromShard: 1, Reason: "no"},
		{Phase: HandoffCommitAck, ClientID: 3, Epoch: 9, FromShard: 0, ToShard: 1},
	} {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:len(data)-1])
		f.Add(append(append([]byte(nil), data...), 0))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeHandoffMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		if got := m.Encode(); !bytes.Equal(got, data) {
			t.Fatalf("round-trip mismatch: %x -> %x", data, got)
		}
	})
}

func FuzzDecodeShardControlMsg(f *testing.F) {
	for _, op := range []byte{ShardOpPing, ShardOpCheck, ShardOpOwnership, ShardOpStats, ShardOpResume} {
		data := (&ShardControlMsg{Op: op, Token: uint64(op) * 31, ClientID: uint32(op)}).Encode()
		f.Add(data)
		f.Add(data[:len(data)-1])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeShardControlMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		if got := m.Encode(); !bytes.Equal(got, data) {
			t.Fatalf("round-trip mismatch: %x -> %x", data, got)
		}
	})
}

func FuzzDecodeShardStatusMsg(f *testing.F) {
	for _, m := range []*ShardStatusMsg{
		{Op: ShardOpPing, OK: true},
		{Op: ShardOpCheck, Violations: []string{"v1", "v2"}},
		{Op: ShardOpOwnership, OK: true, KFIDs: []uint64{1, 2, 3},
			Anchors: []AnchorState{{ID: 4, Pose: pose(1, 0, 2)}}},
		{Op: ShardOpStats, OK: true, Stats: ShardStats{KeyFrames: 5, Sessions: 2}},
		{Op: ShardOpResume, OK: true, ResumeKnown: true, ResumeFrame: 9,
			ResumeEpoch: 2, ResumeMode: 2},
	} {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:len(data)/2])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/4] ^= 0xFF
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeShardStatusMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		if got := m.Encode(); !bytes.Equal(got, data) {
			t.Fatalf("round-trip mismatch: %x -> %x", data, got)
		}
	})
}
