package protocol

import (
	"encoding/binary"
	"fmt"
	"math"
)

// TypeSessionToken carries a resumable session token: downlink from a
// front piggybacked on pose tails (see PoseMsg.Token), uplink from a
// reconnecting client presenting its newest token to whichever front
// replica answers the dial. Legacy clients never send or receive it.
const TypeSessionToken = byte(14)

// CapResume: the client understands session tokens — it stores the
// token tail from every answered pose and presents the newest one
// after its hello when it reconnects, letting any front replica adopt
// the session without a blind relocalization window.
const CapResume = byte(1 << 2)

// maxTokenMarks bounds the per-shard watermark list; far above any
// deployable shard count, low enough that a forged count cannot force
// a large allocation.
const maxTokenMarks = 64

// ShardMark is one shard's answered-frame watermark: the highest
// FrameIdx whose pose answer the client has actually received from
// that shard. Because the token carrying mark=i rides on answer i
// itself, possession of the token proves receipt up to the mark —
// which is exactly the dedup floor an adopting front needs.
type ShardMark struct {
	Shard    uint32
	MaxFrame uint32
}

// SessionTokenMsg is the resumable session token. It is everything a
// replacement front needs to adopt the session mid-stream: who the
// session is, which shard owns it at what handoff epoch, the answered
// watermark per shard it has visited, the negotiated offload mode
// (+ mode epoch so a stale ModeSwitch can still be discarded after
// failover), and the last routed partition position.
type SessionTokenMsg struct {
	ClientID  uint32
	Shard     uint32 // current owning shard index
	Epoch     uint64 // session's newest handoff epoch
	Mode      byte   // offload.Mode: 0 full, 1 split, 2 shadow
	ModeEpoch uint32
	PosX      float64 // last routed partition coordinate
	Marks     []ShardMark
}

// Encode serializes the token.
func (m *SessionTokenMsg) Encode() []byte {
	buf := make([]byte, 0, 4+4+8+1+4+8+4+len(m.Marks)*8)
	buf = binary.LittleEndian.AppendUint32(buf, m.ClientID)
	buf = binary.LittleEndian.AppendUint32(buf, m.Shard)
	buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
	buf = append(buf, m.Mode)
	buf = binary.LittleEndian.AppendUint32(buf, m.ModeEpoch)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.PosX))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Marks)))
	for _, mk := range m.Marks {
		buf = binary.LittleEndian.AppendUint32(buf, mk.Shard)
		buf = binary.LittleEndian.AppendUint32(buf, mk.MaxFrame)
	}
	return buf
}

// DecodeSessionTokenMsg reverses Encode. Strict: the mark count is
// gated against both the payload and maxTokenMarks, the mode must be
// a defined offload mode, and trailing bytes are an error.
func DecodeSessionTokenMsg(data []byte) (*SessionTokenMsg, error) {
	r := &byteReader{buf: data}
	m := &SessionTokenMsg{}
	m.ClientID = r.u32()
	m.Shard = r.u32()
	m.Epoch = r.u64()
	m.Mode = r.u8()
	m.ModeEpoch = r.u32()
	m.PosX = r.f64()
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if m.Mode > 2 {
		return nil, fmt.Errorf("protocol: bad token mode %d", m.Mode)
	}
	if n < 0 || n > maxTokenMarks || n*8 > len(data)-r.off {
		return nil, fmt.Errorf("protocol: token mark count %d exceeds payload", n)
	}
	if n > 0 {
		m.Marks = make([]ShardMark, n)
	}
	for i := 0; i < n; i++ {
		m.Marks[i].Shard = r.u32()
		m.Marks[i].MaxFrame = r.u32()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("protocol: %d trailing bytes in session token", len(data)-r.off)
	}
	return m, nil
}

// Mark returns the answered watermark for a shard (0 if unvisited).
func (m *SessionTokenMsg) Mark(shard uint32) uint32 {
	for _, mk := range m.Marks {
		if mk.Shard == shard {
			return mk.MaxFrame
		}
	}
	return 0
}

// SetMark records a shard's answered watermark, keeping it monotone.
func (m *SessionTokenMsg) SetMark(shard, frame uint32) {
	for i := range m.Marks {
		if m.Marks[i].Shard == shard {
			if frame > m.Marks[i].MaxFrame {
				m.Marks[i].MaxFrame = frame
			}
			return
		}
	}
	if len(m.Marks) < maxTokenMarks {
		m.Marks = append(m.Marks, ShardMark{Shard: shard, MaxFrame: frame})
	}
}
