package protocol

import (
	"bytes"
	"testing"

	"slamshare/internal/geom"
)

func TestSessionTokenRoundTrip(t *testing.T) {
	for _, m := range []*SessionTokenMsg{
		{ClientID: 1},
		{ClientID: 7, Shard: 1, Epoch: 5, Mode: 1, ModeEpoch: 3, PosX: 88.5,
			Marks: []ShardMark{{Shard: 0, MaxFrame: 41}, {Shard: 1, MaxFrame: 12}}},
		{ClientID: ^uint32(0), Shard: 63, Epoch: ^uint64(0), Mode: 2,
			ModeEpoch: ^uint32(0), PosX: -1e9},
	} {
		got, err := DecodeSessionTokenMsg(m.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.ClientID != m.ClientID || got.Shard != m.Shard || got.Epoch != m.Epoch ||
			got.Mode != m.Mode || got.ModeEpoch != m.ModeEpoch || got.PosX != m.PosX ||
			len(got.Marks) != len(m.Marks) {
			t.Fatalf("round trip: got %+v want %+v", got, m)
		}
		for i := range m.Marks {
			if got.Marks[i] != m.Marks[i] {
				t.Fatalf("mark %d: got %+v want %+v", i, got.Marks[i], m.Marks[i])
			}
		}
	}
}

func TestSessionTokenRejects(t *testing.T) {
	valid := (&SessionTokenMsg{ClientID: 3, Shard: 1, Epoch: 2, Mode: 1,
		Marks: []ShardMark{{Shard: 1, MaxFrame: 9}}}).Encode()
	badMode := append([]byte(nil), valid...)
	badMode[16] = 3 // mode byte past shard+epoch
	forgedCount := append([]byte(nil), valid...)
	forgedCount[29] = 0xFF // mark count beyond payload
	for name, data := range map[string][]byte{
		"empty":        {},
		"short":        valid[:len(valid)-1],
		"trailing":     append(append([]byte(nil), valid...), 0),
		"bad mode":     badMode,
		"forged count": forgedCount,
	} {
		if _, err := DecodeSessionTokenMsg(data); err == nil {
			t.Errorf("%s: decoder accepted %x", name, data)
		}
	}
}

func TestSessionTokenMarks(t *testing.T) {
	m := &SessionTokenMsg{ClientID: 1}
	m.SetMark(0, 5)
	m.SetMark(1, 9)
	m.SetMark(0, 3) // stale: marks never regress
	m.SetMark(0, 7)
	if got := m.Mark(0); got != 7 {
		t.Errorf("mark 0 = %d, want 7", got)
	}
	if got := m.Mark(1); got != 9 {
		t.Errorf("mark 1 = %d, want 9", got)
	}
	if got := m.Mark(2); got != 0 {
		t.Errorf("unvisited mark = %d, want 0", got)
	}
}

// TestPoseMsgTokenTail pins the wire shape of the token tail and its
// interaction with the legacy forms: a token-less answer is
// byte-identical to the pre-token encoding, a tokened answer decodes
// the same blob back, and forged tails are rejected.
func TestPoseMsgTokenTail(t *testing.T) {
	token := (&SessionTokenMsg{ClientID: 2, Shard: 1, Epoch: 4, Mode: 1,
		Marks: []ShardMark{{Shard: 1, MaxFrame: 30}}}).Encode()
	m := &PoseMsg{FrameIdx: 30, Pose: geom.IdentitySE3(), Tracked: true, Token: token}
	data := m.Encode()
	if want := poseMsgLegacyLen + 1 + 4 + len(token); len(data) != want {
		t.Fatalf("tokened pose encodes to %d bytes, want %d", len(data), want)
	}
	got, err := DecodePoseMsg(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Token, token) {
		t.Fatalf("token corrupted: %x -> %x", token, got.Token)
	}
	tok, err := DecodeSessionTokenMsg(got.Token)
	if err != nil || tok.Mark(1) != 30 {
		t.Fatalf("embedded token unusable: %+v (%v)", tok, err)
	}

	// All three tails stack in ascending flag order.
	full := &PoseMsg{FrameIdx: 31, Pose: geom.IdentitySE3(), Shed: true,
		HasEcho: true, EchoNanos: 77, Token: token}
	gf, err := DecodePoseMsg(full.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !gf.Shed || !gf.HasEcho || gf.EchoNanos != 77 || !bytes.Equal(gf.Token, token) {
		t.Errorf("stacked tails wrong: %+v", gf)
	}

	// A token-less answer still has the legacy byte layout.
	legacy := (&PoseMsg{FrameIdx: 3, Pose: geom.IdentitySE3(), Tracked: true}).Encode()
	if len(legacy) != poseMsgLegacyLen {
		t.Fatalf("token-less pose encodes to %d bytes", len(legacy))
	}

	// Truncated token tail, oversized claimed length, and out-of-order
	// flags are rejected.
	if _, err := DecodePoseMsg(data[:len(data)-1]); err == nil {
		t.Error("truncated token tail accepted")
	}
	over := append([]byte(nil), data...)
	over[poseMsgLegacyLen+1] = 0xFF // token length beyond payload
	if _, err := DecodePoseMsg(over); err == nil {
		t.Error("forged token length accepted")
	}
	outOfOrder := append(append([]byte(nil), data...), 1) // shed after token
	if _, err := DecodePoseMsg(outOfOrder); err == nil {
		t.Error("descending tail flags accepted")
	}
}
