package protocol

import (
	"bytes"
	"net"
	"testing"

	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/imu"
)

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("frame data here")
	if err := WriteMessage(&buf, TypeFrame, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&buf, TypePose, nil); err != nil {
		t.Fatal(err)
	}
	mt, got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != TypeFrame || !bytes.Equal(got, payload) {
		t.Errorf("first message wrong: %d %q", mt, got)
	}
	mt, got, err = ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != TypePose || len(got) != 0 {
		t.Errorf("second message wrong: %d %q", mt, got)
	}
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Error("read from empty stream should fail")
	}
}

func TestMessageTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, TypeFrame, make([]byte, MaxMessageSize+1)); err != ErrTooLarge {
		t.Errorf("oversized write: %v", err)
	}
	// Forged oversized header must be rejected on read.
	buf.Write([]byte{TypeFrame, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadMessage(&buf); err != ErrTooLarge {
		t.Errorf("oversized read: %v", err)
	}
}

func TestFrameMsgRoundTrip(t *testing.T) {
	m := &FrameMsg{
		ClientID: 7,
		FrameIdx: 1234,
		Stamp:    41.125,
		Delta: imu.FrameDelta{
			RotDelta: geom.QuatFromAxisAngle(geom.Vec3{Z: 1}, 0.01),
			PosDelta: geom.Vec3{X: 0.03, Y: -0.001, Z: 0.002},
			VelDelta: geom.Vec3{X: 0.9},
			DT:       1.0 / 30,
		},
		Video:      []byte{1, 2, 3, 4, 5},
		VideoRight: []byte{9, 8},
	}
	got, err := DecodeFrameMsg(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ClientID != 7 || got.FrameIdx != 1234 || got.Stamp != 41.125 {
		t.Errorf("header fields wrong: %+v", got)
	}
	if got.Delta.RotDelta.AngleTo(m.Delta.RotDelta) > 1e-12 {
		t.Error("rotation delta corrupted")
	}
	if got.Delta.PosDelta != m.Delta.PosDelta || got.Delta.DT != m.Delta.DT {
		t.Error("IMU delta corrupted")
	}
	if !bytes.Equal(got.Video, m.Video) || !bytes.Equal(got.VideoRight, m.VideoRight) {
		t.Error("video payload corrupted")
	}
}

func TestFrameMsgMonoEmptyRight(t *testing.T) {
	m := &FrameMsg{Video: []byte{1}, Delta: imu.FrameDelta{RotDelta: geom.IdentityQuat()}}
	got, err := DecodeFrameMsg(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VideoRight) != 0 {
		t.Error("mono frame grew a right eye")
	}
}

func TestFrameMsgCorrupt(t *testing.T) {
	m := &FrameMsg{Video: []byte{1, 2, 3}}
	data := m.Encode()
	if _, err := DecodeFrameMsg(data[:10]); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := DecodeFrameMsg(nil); err == nil {
		t.Error("empty frame accepted")
	}
}

func TestPoseMsgRoundTrip(t *testing.T) {
	m := &PoseMsg{
		FrameIdx: 99,
		Pose: geom.SE3{
			R: geom.QuatFromAxisAngle(geom.Vec3{X: 1, Y: -1, Z: 0.5}, 1.1),
			T: geom.Vec3{X: 2, Y: 3, Z: -1},
		},
		Tracked: true,
	}
	got, err := DecodePoseMsg(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameIdx != 99 || !got.Tracked {
		t.Errorf("fields wrong: %+v", got)
	}
	if got.Pose.T.Dist(m.Pose.T) > 1e-9 || got.Pose.R.AngleTo(m.Pose.R) > 1e-9 {
		t.Error("pose corrupted")
	}
	if _, err := DecodePoseMsg([]byte{1, 2}); err == nil {
		t.Error("short pose accepted")
	}
}

func TestPoseMsgShed(t *testing.T) {
	m := &PoseMsg{FrameIdx: 12, Pose: geom.IdentitySE3(), Shed: true}
	data := m.Encode()
	if len(data) != 4+16*8+2 {
		t.Fatalf("shed pose encodes to %d bytes", len(data))
	}
	got, err := DecodePoseMsg(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shed || got.Tracked || got.FrameIdx != 12 {
		t.Errorf("shed fields wrong: %+v", got)
	}

	// A non-shed pose keeps the legacy byte layout, and legacy bytes
	// (no shed flag) still decode.
	legacy := (&PoseMsg{FrameIdx: 3, Pose: geom.IdentitySE3(), Tracked: true}).Encode()
	if len(legacy) != 4+16*8+1 {
		t.Fatalf("non-shed pose encodes to %d bytes", len(legacy))
	}
	old, err := DecodePoseMsg(legacy)
	if err != nil {
		t.Fatalf("legacy pose rejected: %v", err)
	}
	if old.Shed || !old.Tracked {
		t.Errorf("legacy fields wrong: %+v", old)
	}

	// A trailing zero flag byte is non-canonical and rejected.
	if _, err := DecodePoseMsg(append(legacy, 0)); err == nil {
		t.Error("non-canonical shed byte accepted")
	}
}

func TestPoseMsgEcho(t *testing.T) {
	m := &PoseMsg{FrameIdx: 5, Pose: geom.IdentitySE3(), Tracked: true,
		HasEcho: true, EchoNanos: 987654321}
	data := m.Encode()
	if len(data) != poseMsgLegacyLen+9 {
		t.Fatalf("echoed pose encodes to %d bytes", len(data))
	}
	got, err := DecodePoseMsg(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasEcho || got.EchoNanos != 987654321 || got.Shed || !got.Tracked {
		t.Errorf("echo fields wrong: %+v", got)
	}

	// Shed + echo stack in canonical order.
	both := (&PoseMsg{FrameIdx: 6, Pose: geom.IdentitySE3(), Shed: true,
		HasEcho: true, EchoNanos: 42}).Encode()
	if len(both) != poseMsgLegacyLen+10 {
		t.Fatalf("shed+echo pose encodes to %d bytes", len(both))
	}
	gb, err := DecodePoseMsg(both)
	if err != nil {
		t.Fatal(err)
	}
	if !gb.Shed || !gb.HasEcho || gb.EchoNanos != 42 {
		t.Errorf("shed+echo fields wrong: %+v", gb)
	}

	// Wrong flag bytes at the extension offsets are rejected.
	bad := append([]byte(nil), data...)
	bad[poseMsgLegacyLen] = 1 // shed flag where echo flag belongs
	if _, err := DecodePoseMsg(bad); err == nil {
		t.Error("echo-length message with shed flag accepted")
	}
}

func TestHelloMsgQoS(t *testing.T) {
	m := &HelloMsg{ClientID: 21, Mode: 1, HasQoS: true, QoS: 2,
		Caps: CapSplit | CapShadow}
	data := m.Encode()
	if len(data) != 5+3 {
		t.Fatalf("qos hello encodes to %d bytes", len(data))
	}
	got, err := DecodeHelloMsg(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasQoS || got.QoS != 2 || got.Caps != CapSplit|CapShadow || got.HasRig {
		t.Errorf("qos fields wrong: %+v", got)
	}

	// The legacy 5-byte form still decodes, pinned to full offload.
	old, err := DecodeHelloMsg(data[:5])
	if err != nil {
		t.Fatalf("legacy hello rejected: %v", err)
	}
	if old.HasQoS || old.Caps != 0 {
		t.Errorf("legacy hello grew a qos block: %+v", old)
	}

	// Rig + QoS blocks stack in canonical (ascending-tag) order.
	rig := &HelloMsg{ClientID: 9, Mode: 1, HasRig: true,
		Intr: m.Intr, Baseline: 0.11, HasQoS: true, QoS: 1, Caps: CapSplit}
	rd, err := DecodeHelloMsg(rig.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !rd.HasRig || !rd.HasQoS || rd.QoS != 1 || rd.Caps != CapSplit || rd.Baseline != 0.11 {
		t.Errorf("rig+qos fields wrong: %+v", rd)
	}

	// Trailing garbage, out-of-range class, and unknown tags are errors.
	if _, err := DecodeHelloMsg(append(m.Encode(), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := DecodeHelloMsg(append(data[:5], helloBlockQoS, 3, 0)); err == nil {
		t.Error("qos class 3 accepted")
	}
	if _, err := DecodeHelloMsg(append(data[:5], 9, 0, 0)); err == nil {
		t.Error("unknown extension tag accepted")
	}
}

func TestKeypointMsgRoundTrip(t *testing.T) {
	m := &KeypointMsg{
		ClientID: 3,
		FrameIdx: 17,
		Stamp:    1.25,
		Delta: imu.FrameDelta{
			RotDelta: geom.QuatFromAxisAngle(geom.Vec3{Z: 1}, 0.02),
			PosDelta: geom.Vec3{X: 0.05},
			DT:       1.0 / 30,
		},
		SentNanos: 111,
		RTTNanos:  222,
		Kps: []feature.Keypoint{
			{X: 31.5, Y: 64.25, Level: 3, Angle: 0.7, Score: 55,
				Desc: feature.Descriptor{10, 20, 30, 40}, Right: 28.5, Depth: 2.4},
			{X: 4, Y: 9, Level: 0, Angle: -1.2, Score: 90,
				Desc: feature.Descriptor{^uint64(0), 1, 2, 3}, Right: -1, Depth: 0},
		},
		Prior:    geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{Y: 2}},
		HasPrior: true,
	}
	got, err := DecodeKeypointMsg(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ClientID != 3 || got.FrameIdx != 17 || got.Stamp != 1.25 ||
		got.SentNanos != 111 || got.RTTNanos != 222 || !got.HasPrior {
		t.Errorf("header fields wrong: %+v", got)
	}
	if len(got.Kps) != 2 {
		t.Fatalf("keypoint count %d", len(got.Kps))
	}
	// Keypoints must survive bit-identically: split-mode tracking
	// equivalence depends on it.
	for i := range m.Kps {
		if got.Kps[i] != m.Kps[i] {
			t.Errorf("keypoint %d corrupted: %+v != %+v", i, got.Kps[i], m.Kps[i])
		}
	}

	// Sync-only ping round-trips with no keypoints.
	ping := &KeypointMsg{ClientID: 3, FrameIdx: 18, Stamp: 1.3,
		Delta: imu.FrameDelta{RotDelta: geom.IdentityQuat(), DT: 0.05},
		Flags: KeypointSyncOnly}
	gp, err := DecodeKeypointMsg(ping.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if gp.Flags&KeypointSyncOnly == 0 || len(gp.Kps) != 0 {
		t.Errorf("sync ping fields wrong: %+v", gp)
	}

	// Truncation and trailing garbage are errors (strict decoder).
	data := m.Encode()
	if _, err := DecodeKeypointMsg(data[:len(data)-5]); err == nil {
		t.Error("truncated keypoint message accepted")
	}
	if _, err := DecodeKeypointMsg(append(data, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestModeSwitchMsgRoundTrip(t *testing.T) {
	m := &ModeSwitchMsg{Mode: 2, Epoch: 7, Reason: 1, SentNanos: 12345}
	got, err := DecodeModeSwitchMsg(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Errorf("round trip: %+v != %+v", got, m)
	}
	// A legacy 6-byte message (no send-timestamp tail) still decodes.
	legacy, err := DecodeModeSwitchMsg(m.Encode()[:modeSwitchLen])
	if err != nil {
		t.Fatal(err)
	}
	if legacy.SentNanos != 0 || legacy.Epoch != 7 || legacy.Mode != 2 {
		t.Errorf("legacy decode: %+v", legacy)
	}
	if _, err := DecodeModeSwitchMsg([]byte{1, 2}); err == nil {
		t.Error("short mode switch accepted")
	}
	if _, err := DecodeModeSwitchMsg([]byte{3, 0, 0, 0, 0, 0}); err == nil {
		t.Error("out-of-range mode accepted")
	}
}

func TestFrameMsgTimingTail(t *testing.T) {
	m := &FrameMsg{Video: []byte{1, 2, 3},
		Delta:     imu.FrameDelta{RotDelta: geom.IdentityQuat()},
		SentNanos: 5000, RTTNanos: 6000}
	data := m.Encode()
	got, err := DecodeFrameMsg(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.SentNanos != 5000 || got.RTTNanos != 6000 {
		t.Errorf("timing tail wrong: %+v", got)
	}
	// Legacy frames (no 16-byte tail) still decode with zero timing.
	old, err := DecodeFrameMsg(data[:len(data)-16])
	if err != nil {
		t.Fatalf("legacy frame rejected: %v", err)
	}
	if old.SentNanos != 0 || old.RTTNanos != 0 {
		t.Errorf("legacy frame grew timing: %+v", old)
	}
}

func TestFramingOverSocket(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	m := &FrameMsg{ClientID: 1, Video: bytes.Repeat([]byte{0xAB}, 10000),
		Delta: imu.FrameDelta{RotDelta: geom.IdentityQuat()}}
	go func() {
		WriteMessage(a, TypeFrame, m.Encode())
	}()
	mt, payload, err := ReadMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	if mt != TypeFrame {
		t.Fatalf("type = %d", mt)
	}
	got, err := DecodeFrameMsg(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Video) != 10000 {
		t.Errorf("video length %d", len(got.Video))
	}
}
