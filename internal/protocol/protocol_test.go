package protocol

import (
	"bytes"
	"net"
	"testing"

	"slamshare/internal/geom"
	"slamshare/internal/imu"
)

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("frame data here")
	if err := WriteMessage(&buf, TypeFrame, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&buf, TypePose, nil); err != nil {
		t.Fatal(err)
	}
	mt, got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != TypeFrame || !bytes.Equal(got, payload) {
		t.Errorf("first message wrong: %d %q", mt, got)
	}
	mt, got, err = ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != TypePose || len(got) != 0 {
		t.Errorf("second message wrong: %d %q", mt, got)
	}
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Error("read from empty stream should fail")
	}
}

func TestMessageTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, TypeFrame, make([]byte, MaxMessageSize+1)); err != ErrTooLarge {
		t.Errorf("oversized write: %v", err)
	}
	// Forged oversized header must be rejected on read.
	buf.Write([]byte{TypeFrame, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadMessage(&buf); err != ErrTooLarge {
		t.Errorf("oversized read: %v", err)
	}
}

func TestFrameMsgRoundTrip(t *testing.T) {
	m := &FrameMsg{
		ClientID: 7,
		FrameIdx: 1234,
		Stamp:    41.125,
		Delta: imu.FrameDelta{
			RotDelta: geom.QuatFromAxisAngle(geom.Vec3{Z: 1}, 0.01),
			PosDelta: geom.Vec3{X: 0.03, Y: -0.001, Z: 0.002},
			VelDelta: geom.Vec3{X: 0.9},
			DT:       1.0 / 30,
		},
		Video:      []byte{1, 2, 3, 4, 5},
		VideoRight: []byte{9, 8},
	}
	got, err := DecodeFrameMsg(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ClientID != 7 || got.FrameIdx != 1234 || got.Stamp != 41.125 {
		t.Errorf("header fields wrong: %+v", got)
	}
	if got.Delta.RotDelta.AngleTo(m.Delta.RotDelta) > 1e-12 {
		t.Error("rotation delta corrupted")
	}
	if got.Delta.PosDelta != m.Delta.PosDelta || got.Delta.DT != m.Delta.DT {
		t.Error("IMU delta corrupted")
	}
	if !bytes.Equal(got.Video, m.Video) || !bytes.Equal(got.VideoRight, m.VideoRight) {
		t.Error("video payload corrupted")
	}
}

func TestFrameMsgMonoEmptyRight(t *testing.T) {
	m := &FrameMsg{Video: []byte{1}, Delta: imu.FrameDelta{RotDelta: geom.IdentityQuat()}}
	got, err := DecodeFrameMsg(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VideoRight) != 0 {
		t.Error("mono frame grew a right eye")
	}
}

func TestFrameMsgCorrupt(t *testing.T) {
	m := &FrameMsg{Video: []byte{1, 2, 3}}
	data := m.Encode()
	if _, err := DecodeFrameMsg(data[:10]); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := DecodeFrameMsg(nil); err == nil {
		t.Error("empty frame accepted")
	}
}

func TestPoseMsgRoundTrip(t *testing.T) {
	m := &PoseMsg{
		FrameIdx: 99,
		Pose: geom.SE3{
			R: geom.QuatFromAxisAngle(geom.Vec3{X: 1, Y: -1, Z: 0.5}, 1.1),
			T: geom.Vec3{X: 2, Y: 3, Z: -1},
		},
		Tracked: true,
	}
	got, err := DecodePoseMsg(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameIdx != 99 || !got.Tracked {
		t.Errorf("fields wrong: %+v", got)
	}
	if got.Pose.T.Dist(m.Pose.T) > 1e-9 || got.Pose.R.AngleTo(m.Pose.R) > 1e-9 {
		t.Error("pose corrupted")
	}
	if _, err := DecodePoseMsg([]byte{1, 2}); err == nil {
		t.Error("short pose accepted")
	}
}

func TestPoseMsgShed(t *testing.T) {
	m := &PoseMsg{FrameIdx: 12, Pose: geom.IdentitySE3(), Shed: true}
	data := m.Encode()
	if len(data) != 4+16*8+2 {
		t.Fatalf("shed pose encodes to %d bytes", len(data))
	}
	got, err := DecodePoseMsg(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shed || got.Tracked || got.FrameIdx != 12 {
		t.Errorf("shed fields wrong: %+v", got)
	}

	// A non-shed pose keeps the legacy byte layout, and legacy bytes
	// (no shed flag) still decode.
	legacy := (&PoseMsg{FrameIdx: 3, Pose: geom.IdentitySE3(), Tracked: true}).Encode()
	if len(legacy) != 4+16*8+1 {
		t.Fatalf("non-shed pose encodes to %d bytes", len(legacy))
	}
	old, err := DecodePoseMsg(legacy)
	if err != nil {
		t.Fatalf("legacy pose rejected: %v", err)
	}
	if old.Shed || !old.Tracked {
		t.Errorf("legacy fields wrong: %+v", old)
	}

	// A trailing zero flag byte is non-canonical and rejected.
	if _, err := DecodePoseMsg(append(legacy, 0)); err == nil {
		t.Error("non-canonical shed byte accepted")
	}
}

func TestFramingOverSocket(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	m := &FrameMsg{ClientID: 1, Video: bytes.Repeat([]byte{0xAB}, 10000),
		Delta: imu.FrameDelta{RotDelta: geom.IdentityQuat()}}
	go func() {
		WriteMessage(a, TypeFrame, m.Encode())
	}()
	mt, payload, err := ReadMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	if mt != TypeFrame {
		t.Fatalf("type = %d", mt)
	}
	got, err := DecodeFrameMsg(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Video) != 10000 {
		t.Errorf("video length %d", len(got.Video))
	}
}
