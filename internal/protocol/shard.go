// Shard-to-shard and front-to-shard control plane. Cluster mode runs N
// slamshare-server shard processes behind a slamshare-front router: the
// front admits device sessions on the legacy message types (1-8, which
// cluster mode never changes — old clients speak to the front door
// unmodified) and speaks these messages to the shards: an identifying
// hello on every control connection, two-phase session handoff when a
// device's trajectory crosses a shard boundary, boundary-region
// exchange (the evicted-region codec's blob plus the hologram anchors
// riding along), and the invariant/ownership probes the cluster checker
// polls. Every decoder is strict — length-gated counts, canonical
// flags, no trailing bytes — and fuzzed like the device-facing types.
package protocol

import (
	"encoding/binary"
	"fmt"
	"math"

	"slamshare/internal/geom"
)

// Cluster message types, continuing the device-facing sequence (1-8 in
// protocol.go). Values are explicit so a renumbering can never silently
// change the wire format.
const (
	// TypeShardHello identifies a cluster peer on a fresh connection:
	// the front door, another shard, or an admin/checker. It carries the
	// cluster token; a connection opening with anything else is a device.
	TypeShardHello = byte(9)
	// TypeBoundaryRegion carries an exported boundary region: the
	// covisibility cluster around a migrating session's newest keyframe
	// (wire.EncodeRegion blob) plus the session's hologram anchors.
	TypeBoundaryRegion = byte(10)
	// TypeHandoff drives the two-phase session handoff state machine
	// (begin/ack/nack/commit/commit-ack), epoch-stamped per session.
	TypeHandoff = byte(11)
	// TypeShardControl is an admin probe: ping, invariant check,
	// ownership dump, or stats poll.
	TypeShardControl = byte(12)
	// TypeShardStatus answers a TypeShardControl probe.
	TypeShardStatus = byte(13)
)

// ShardHello roles.
const (
	// ShardRoleFront is the session router (handoff coordinator).
	ShardRoleFront = byte(1)
	// ShardRolePeer is another shard exchanging boundary regions.
	ShardRolePeer = byte(2)
	// ShardRoleAdmin is a checker/operator connection (control probes
	// only; it may never initiate handoffs).
	ShardRoleAdmin = byte(3)
)

// ShardHelloMsg opens a cluster control connection.
type ShardHelloMsg struct {
	Role     byte
	SenderID uint32 // front instance or peer shard ID
	Token    uint64 // shared cluster secret; a mismatch drops the conn
}

// shardHelloLen is the exact ShardHelloMsg encoding size.
const shardHelloLen = 1 + 4 + 8

// Encode serializes the shard hello.
func (m *ShardHelloMsg) Encode() []byte {
	buf := make([]byte, 0, shardHelloLen)
	buf = append(buf, m.Role)
	buf = appendU32p(buf, m.SenderID)
	buf = appendU64p(buf, m.Token)
	return buf
}

// DecodeShardHelloMsg reverses ShardHelloMsg.Encode. Exact-length with
// a validated role byte, so a device payload never parses as a peer.
func DecodeShardHelloMsg(data []byte) (*ShardHelloMsg, error) {
	if len(data) != shardHelloLen {
		return nil, fmt.Errorf("protocol: bad shard hello length %d", len(data))
	}
	r := &byteReader{buf: data}
	m := &ShardHelloMsg{}
	m.Role = r.u8()
	m.SenderID = r.u32()
	m.Token = r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if m.Role < ShardRoleFront || m.Role > ShardRoleAdmin {
		return nil, fmt.Errorf("protocol: bad shard hello role %d", m.Role)
	}
	return m, nil
}

// Handoff phases.
const (
	// HandoffBegin (front -> source shard): export the session's
	// boundary region; answered with a TypeBoundaryRegion.
	HandoffBegin = byte(1)
	// HandoffAck (target shard -> front): the boundary region was
	// imported and committed; the session may move.
	HandoffAck = byte(2)
	// HandoffNack (target shard -> front): the import was refused or
	// rolled back; the session stays on the source shard.
	HandoffNack = byte(3)
	// HandoffCommit (front -> source shard): the target owns the region
	// now; erase the exported cluster.
	HandoffCommit = byte(4)
	// HandoffCommitAck (source shard -> front): the erase completed;
	// ownership is disjoint again.
	HandoffCommitAck = byte(5)
)

// maxHandoffReason bounds the Nack reason string.
const maxHandoffReason = 4096

// HandoffMsg is one step of the two-phase session handoff. Epoch is a
// per-session counter the front increments on every handoff attempt;
// it is strictly monotonic on the wire, so a stale or replayed step is
// detectable by both shards.
type HandoffMsg struct {
	Phase     byte
	ClientID  uint32
	Epoch     uint64
	FromShard uint32
	ToShard   uint32
	Reason    string // advisory, set on Nack
}

// Encode serializes the handoff message.
func (m *HandoffMsg) Encode() []byte {
	buf := make([]byte, 0, 1+4+8+4+4+4+len(m.Reason))
	buf = append(buf, m.Phase)
	buf = appendU32p(buf, m.ClientID)
	buf = appendU64p(buf, m.Epoch)
	buf = appendU32p(buf, m.FromShard)
	buf = appendU32p(buf, m.ToShard)
	buf = appendU32p(buf, uint32(len(m.Reason)))
	buf = append(buf, m.Reason...)
	return buf
}

// DecodeHandoffMsg reverses HandoffMsg.Encode. Strict: the phase byte
// must be canonical, the reason length gated, and no trailing bytes.
func DecodeHandoffMsg(data []byte) (*HandoffMsg, error) {
	r := &byteReader{buf: data}
	m := &HandoffMsg{}
	m.Phase = r.u8()
	m.ClientID = r.u32()
	m.Epoch = r.u64()
	m.FromShard = r.u32()
	m.ToShard = r.u32()
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if m.Phase < HandoffBegin || m.Phase > HandoffCommitAck {
		return nil, fmt.Errorf("protocol: bad handoff phase %d", m.Phase)
	}
	if n > maxHandoffReason || n > len(data)-r.off {
		return nil, fmt.Errorf("protocol: handoff reason length %d exceeds payload", n)
	}
	m.Reason = string(data[r.off : r.off+n])
	r.off += n
	if r.off != len(data) {
		return nil, fmt.Errorf("protocol: %d trailing bytes in handoff", len(data)-r.off)
	}
	return m, nil
}

// BoundaryRegionMsg carries an exported boundary region between shards
// (via the front): the wire.EncodeRegion blob of the covisibility
// cluster around the migrating session's newest keyframe, plus the
// session's hologram anchors (holo.EncodeAnchors). Both blobs have
// their own magic/CRC framing; this envelope only length-gates them.
type BoundaryRegionMsg struct {
	ClientID uint32
	Epoch    uint64
	RegionID uint64
	Region   []byte // wire.EncodeRegion payload
	Anchors  []byte // holo.EncodeAnchors payload (may be empty)
}

// Encode serializes the boundary-region message.
func (m *BoundaryRegionMsg) Encode() []byte {
	buf := make([]byte, 0, 4+8+8+4+len(m.Region)+4+len(m.Anchors))
	buf = appendU32p(buf, m.ClientID)
	buf = appendU64p(buf, m.Epoch)
	buf = appendU64p(buf, m.RegionID)
	buf = appendU32p(buf, uint32(len(m.Region)))
	buf = append(buf, m.Region...)
	buf = appendU32p(buf, uint32(len(m.Anchors)))
	buf = append(buf, m.Anchors...)
	return buf
}

// DecodeBoundaryRegionMsg reverses BoundaryRegionMsg.Encode. Both blob
// lengths are gated against the bytes actually present and trailing
// bytes are an error; the blobs' own CRCs are checked by their
// decoders, not here.
func DecodeBoundaryRegionMsg(data []byte) (*BoundaryRegionMsg, error) {
	r := &byteReader{buf: data}
	m := &BoundaryRegionMsg{}
	m.ClientID = r.u32()
	m.Epoch = r.u64()
	m.RegionID = r.u64()
	m.Region = r.bytes()
	m.Anchors = r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("protocol: %d trailing bytes in boundary region", len(data)-r.off)
	}
	return m, nil
}

// Shard control ops.
const (
	// ShardOpPing checks liveness.
	ShardOpPing = byte(1)
	// ShardOpCheck runs smap.CheckInvariants on the shard's map and
	// returns the violations. Meaningful at quiescent points only.
	ShardOpCheck = byte(2)
	// ShardOpOwnership dumps the shard's owned keyframe IDs and anchor
	// poses, for the cluster-level cross-shard invariant check.
	ShardOpOwnership = byte(3)
	// ShardOpStats returns counters read with atomics only — it never
	// takes the global-map lock, so a harness can poll it while an
	// import is stalled under that lock.
	ShardOpStats = byte(4)
	// ShardOpResume asks the shard for one client's resume state (the
	// answered-frame watermark, newest handoff epoch, and last offload
	// mode it recorded) so an adopting front can validate a presented
	// session token and continue its epoch sequence. Reads atomically
	// published per-client state, never the global-map lock.
	ShardOpResume = byte(5)
)

// ShardControlMsg is one admin probe. Only ShardOpResume carries the
// ClientID operand; the other ops keep their exact 9-byte form.
type ShardControlMsg struct {
	Op       byte
	Token    uint64
	ClientID uint32 // resume probes only
}

// shardControlLen is the exact ShardControlMsg encoding size for the
// operand-less ops; a resume probe appends the 4-byte ClientID.
const shardControlLen = 1 + 8

// Encode serializes the control probe.
func (m *ShardControlMsg) Encode() []byte {
	buf := make([]byte, 0, shardControlLen+4)
	buf = append(buf, m.Op)
	buf = appendU64p(buf, m.Token)
	if m.Op == ShardOpResume {
		buf = appendU32p(buf, m.ClientID)
	}
	return buf
}

// DecodeShardControlMsg reverses ShardControlMsg.Encode. The length is
// exact per op: 9 bytes for the operand-less ops, 13 for resume.
func DecodeShardControlMsg(data []byte) (*ShardControlMsg, error) {
	if len(data) != shardControlLen && len(data) != shardControlLen+4 {
		return nil, fmt.Errorf("protocol: bad shard control length %d", len(data))
	}
	r := &byteReader{buf: data}
	m := &ShardControlMsg{}
	m.Op = r.u8()
	m.Token = r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if m.Op < ShardOpPing || m.Op > ShardOpResume {
		return nil, fmt.Errorf("protocol: bad shard control op %d", m.Op)
	}
	if m.Op == ShardOpResume {
		m.ClientID = r.u32()
		if r.err != nil {
			return nil, r.err
		}
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("protocol: %d trailing bytes in shard control", len(data)-r.off)
	}
	return m, nil
}

// AnchorState is one hologram anchor's identity and pose as owned by a
// shard — what the cross-shard consistency check compares.
type AnchorState struct {
	ID   uint64
	Pose geom.SE3
}

// ShardStats are the atomically-readable shard counters.
type ShardStats struct {
	KeyFrames       uint64
	MapPoints       uint64
	Sessions        uint64
	ImportsInFlight uint64
	Imports         uint64 // boundary imports committed
	ImportRollbacks uint64 // boundary imports rolled back or refused
	ImportsStalled  uint64 // imports that entered the crash-window failpoint
}

// Bounds on the variable-length ShardStatusMsg sections.
const (
	maxStatusViolations   = 4096
	maxStatusViolationLen = 4096
)

// anchorStateBytes is the serialized size of one AnchorState.
const anchorStateBytes = 8 + 7*8

// ShardStatusMsg answers a ShardControlMsg. Every section is always
// present (empty for ops that do not fill it), so there is exactly one
// wire shape to decode and fuzz.
type ShardStatusMsg struct {
	Op         byte // echoes the probe
	OK         bool
	Violations []string
	KFIDs      []uint64
	Anchors    []AnchorState
	Stats      ShardStats
	// Resume section, filled for ShardOpResume: whether the shard has
	// ever answered this client, the highest answered frame index, the
	// newest handoff epoch it has seen for the session, and the last
	// offload mode it recorded. Zero-valued for every other op.
	ResumeKnown bool
	ResumeFrame uint32
	ResumeEpoch uint64
	ResumeMode  byte
}

// Encode serializes the status answer.
func (m *ShardStatusMsg) Encode() []byte {
	buf := make([]byte, 0, 2+4+4+len(m.KFIDs)*8+4+len(m.Anchors)*anchorStateBytes+6*8)
	buf = append(buf, m.Op)
	if m.OK {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendU32p(buf, uint32(len(m.Violations)))
	for _, v := range m.Violations {
		buf = appendU32p(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	buf = appendU32p(buf, uint32(len(m.KFIDs)))
	for _, id := range m.KFIDs {
		buf = appendU64p(buf, id)
	}
	buf = appendU32p(buf, uint32(len(m.Anchors)))
	for _, a := range m.Anchors {
		buf = appendU64p(buf, a.ID)
		buf = appendPoseP(buf, a.Pose)
	}
	buf = appendU64p(buf, m.Stats.KeyFrames)
	buf = appendU64p(buf, m.Stats.MapPoints)
	buf = appendU64p(buf, m.Stats.Sessions)
	buf = appendU64p(buf, m.Stats.ImportsInFlight)
	buf = appendU64p(buf, m.Stats.Imports)
	buf = appendU64p(buf, m.Stats.ImportRollbacks)
	buf = appendU64p(buf, m.Stats.ImportsStalled)
	if m.ResumeKnown {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendU32p(buf, m.ResumeFrame)
	buf = appendU64p(buf, m.ResumeEpoch)
	buf = append(buf, m.ResumeMode)
	return buf
}

// DecodeShardStatusMsg reverses ShardStatusMsg.Encode. Every count is
// gated against the bytes remaining, the OK flag must be canonical,
// and trailing bytes are an error.
func DecodeShardStatusMsg(data []byte) (*ShardStatusMsg, error) {
	r := &byteReader{buf: data}
	m := &ShardStatusMsg{}
	m.Op = r.u8()
	okFlag := r.u8()
	if r.err != nil {
		return nil, r.err
	}
	if m.Op < ShardOpPing || m.Op > ShardOpResume {
		return nil, fmt.Errorf("protocol: bad shard status op %d", m.Op)
	}
	if okFlag > 1 {
		return nil, fmt.Errorf("protocol: bad shard status ok flag %d", okFlag)
	}
	m.OK = okFlag == 1
	nv := int(r.u32())
	if r.err != nil || nv > maxStatusViolations || nv*4 > len(data)-r.off {
		return nil, fmt.Errorf("protocol: shard status violation count %d exceeds payload", nv)
	}
	for i := 0; i < nv; i++ {
		ln := int(r.u32())
		if r.err != nil || ln > maxStatusViolationLen || ln > len(data)-r.off {
			return nil, fmt.Errorf("protocol: shard status violation length exceeds payload")
		}
		m.Violations = append(m.Violations, string(data[r.off:r.off+ln]))
		r.off += ln
	}
	nk := int(r.u32())
	if r.err != nil || nk*8 > len(data)-r.off {
		return nil, fmt.Errorf("protocol: shard status keyframe count %d exceeds payload", nk)
	}
	if nk > 0 {
		m.KFIDs = make([]uint64, nk)
		for i := range m.KFIDs {
			m.KFIDs[i] = r.u64()
		}
	}
	na := int(r.u32())
	if r.err != nil || na*anchorStateBytes > len(data)-r.off {
		return nil, fmt.Errorf("protocol: shard status anchor count %d exceeds payload", na)
	}
	if na > 0 {
		m.Anchors = make([]AnchorState, na)
		for i := range m.Anchors {
			m.Anchors[i].ID = r.u64()
			m.Anchors[i].Pose = readPoseP(r)
		}
	}
	m.Stats.KeyFrames = r.u64()
	m.Stats.MapPoints = r.u64()
	m.Stats.Sessions = r.u64()
	m.Stats.ImportsInFlight = r.u64()
	m.Stats.Imports = r.u64()
	m.Stats.ImportRollbacks = r.u64()
	m.Stats.ImportsStalled = r.u64()
	knownFlag := r.u8()
	m.ResumeFrame = r.u32()
	m.ResumeEpoch = r.u64()
	m.ResumeMode = r.u8()
	if r.err != nil {
		return nil, r.err
	}
	if knownFlag > 1 {
		return nil, fmt.Errorf("protocol: bad shard status resume flag %d", knownFlag)
	}
	m.ResumeKnown = knownFlag == 1
	if m.ResumeMode > 2 {
		return nil, fmt.Errorf("protocol: bad shard status resume mode %d", m.ResumeMode)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("protocol: %d trailing bytes in shard status", len(data)-r.off)
	}
	return m, nil
}

// ---- little-endian append helpers (shard messages) ----

func appendU32p(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64p(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64p(b []byte, v float64) []byte {
	return appendU64p(b, math.Float64bits(v))
}

func appendPoseP(b []byte, p geom.SE3) []byte {
	b = appendF64p(b, p.R.W)
	b = appendF64p(b, p.R.X)
	b = appendF64p(b, p.R.Y)
	b = appendF64p(b, p.R.Z)
	b = appendF64p(b, p.T.X)
	b = appendF64p(b, p.T.Y)
	return appendF64p(b, p.T.Z)
}

func readPoseP(r *byteReader) geom.SE3 {
	var p geom.SE3
	p.R.W = r.f64()
	p.R.X = r.f64()
	p.R.Y = r.f64()
	p.R.Z = r.f64()
	p.T.X = r.f64()
	p.T.Y = r.f64()
	p.T.Z = r.f64()
	return p
}
