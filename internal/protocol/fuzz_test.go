package protocol

import (
	"testing"

	"slamshare/internal/camera"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/imu"
)

// FuzzDecodeFrameMsg hammers the uplink frame decoder with arbitrary
// bytes: it must return an error or a structurally sound message —
// never panic, and never alias slices beyond the input.
func FuzzDecodeFrameMsg(f *testing.F) {
	// Seed corpus: valid round-trip encodings of varied shapes plus
	// classic corruptions of each.
	seeds := []*FrameMsg{
		{ClientID: 1, FrameIdx: 0, Stamp: 0.05,
			Delta: imu.FrameDelta{RotDelta: geom.IdentityQuat(), DT: 0.05},
			Video: []byte("intra-frame")},
		{ClientID: 7, FrameIdx: 42, Stamp: 2.1,
			Delta:      imu.FrameDelta{RotDelta: geom.IdentityQuat(), PosDelta: geom.Vec3{X: 0.1}, DT: 0.05},
			Video:      make([]byte, 256),
			VideoRight: make([]byte, 256),
			Prior:      geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{Z: 1}},
			HasPrior:   true},
	}
	for _, m := range seeds {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:len(data)/2])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/3] ^= 0xFF
		f.Add(flipped)
		// Absurd video length with no backing bytes.
		huge := append([]byte(nil), data[:120]...)
		huge[116], huge[117], huge[118], huge[119] = 0xFF, 0xFF, 0xFF, 0x7F
		f.Add(huge)
	}
	f.Add([]byte{})
	f.Add([]byte("not a frame message"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeFrameMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		// Decoded slices alias the input; they can never exceed it.
		if len(m.Video)+len(m.VideoRight) > len(data) {
			t.Fatalf("decoded %d video bytes from a %d-byte message",
				len(m.Video)+len(m.VideoRight), len(data))
		}
	})
}

// FuzzDecodePoseMsg covers the downlink pose decoder: the legacy
// form, the shed-flagged form, the RTT-echo form, the session-token
// tail, and their combinations.
func FuzzDecodePoseMsg(f *testing.F) {
	token := (&SessionTokenMsg{ClientID: 4, Shard: 1, Epoch: 3, Mode: 1,
		ModeEpoch: 2, PosX: 91.5, Marks: []ShardMark{{Shard: 0, MaxFrame: 7}}}).Encode()
	seeds := []*PoseMsg{
		{FrameIdx: 0, Pose: geom.IdentitySE3(), Tracked: true},
		{FrameIdx: 99, Pose: geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{X: 1, Y: 2, Z: 3}}},
		{FrameIdx: 7, Pose: geom.IdentitySE3(), Shed: true},
		{FrameIdx: 8, Pose: geom.IdentitySE3(), Tracked: true, HasEcho: true, EchoNanos: 123456789},
		{FrameIdx: 9, Pose: geom.IdentitySE3(), Shed: true, HasEcho: true, EchoNanos: ^uint64(0)},
		{FrameIdx: 10, Pose: geom.IdentitySE3(), Tracked: true, Token: token},
		{FrameIdx: 11, Pose: geom.IdentitySE3(), Shed: true, HasEcho: true,
			EchoNanos: 5, Token: token},
	}
	for _, m := range seeds {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:len(data)-1])
		f.Add(append(append([]byte(nil), data...), 0))
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/2] ^= 0xFF
		f.Add(flipped)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodePoseMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		if len(m.Token) > len(data) {
			t.Fatalf("decoded %d token bytes from a %d-byte message", len(m.Token), len(data))
		}
		// The encoding is canonical (each tail present exactly when its
		// field is set, flags ascending), so any accepted message must
		// re-encode to the same length with byte-identical tails. (The
		// matrix body may differ: SE3FromMat4 re-orthonormalizes a
		// corrupted rotation.)
		got := m.Encode()
		if len(got) != len(data) {
			t.Fatalf("round-trip length mismatch: %d -> %d", len(data), len(got))
		}
		if string(got[poseMsgLegacyLen:]) != string(data[poseMsgLegacyLen:]) {
			t.Fatalf("round-trip tail mismatch: %x -> %x",
				data[poseMsgLegacyLen:], got[poseMsgLegacyLen:])
		}
	})
}

// FuzzDecodeSessionToken covers the resumable-session-token decoder:
// strict mark-count gating, canonical mode, no trailing bytes.
func FuzzDecodeSessionToken(f *testing.F) {
	for _, m := range []*SessionTokenMsg{
		{ClientID: 1, Shard: 0, Epoch: 0, Mode: 0},
		{ClientID: 9, Shard: 1, Epoch: 12, Mode: 2, ModeEpoch: 4, PosX: -44.25,
			Marks: []ShardMark{{Shard: 0, MaxFrame: 100}, {Shard: 1, MaxFrame: 40}}},
	} {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:len(data)-1])
		f.Add(append(append([]byte(nil), data...), 0))
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/3] ^= 0xFF
		f.Add(flipped)
		// Absurd mark count with no backing bytes (count sits at the
		// last 4 bytes of the 33-byte fixed prefix).
		huge := append([]byte(nil), data[:33]...)
		huge[29], huge[30], huge[31], huge[32] = 0xFF, 0xFF, 0xFF, 0x7F
		f.Add(huge)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeSessionTokenMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		if len(m.Marks) > maxTokenMarks {
			t.Fatalf("decoder accepted %d marks", len(m.Marks))
		}
		if got := m.Encode(); string(got) != string(data) {
			t.Fatalf("round-trip mismatch: %x -> %x", data, got)
		}
	})
}

// FuzzDecodeHelloMsg covers the session-opening hello decoder, in both
// the legacy 5-byte and extended-calibration forms.
func FuzzDecodeHelloMsg(f *testing.F) {
	legacy := &HelloMsg{ClientID: 3, Mode: camera.Stereo}
	ext := &HelloMsg{ClientID: 9, Mode: camera.Mono, HasRig: true,
		Intr: camera.EuRoCIntrinsics(), Baseline: 0.11}
	qos := &HelloMsg{ClientID: 4, Mode: camera.Stereo, HasQoS: true,
		QoS: 1, Caps: CapSplit | CapShadow}
	full := &HelloMsg{ClientID: 5, Mode: camera.Stereo, HasRig: true,
		Intr: camera.EuRoCIntrinsics(), Baseline: 0.11,
		HasQoS: true, QoS: 2, Caps: CapSplit}
	for _, m := range []*HelloMsg{legacy, ext, qos, full} {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(append(append([]byte(nil), data...), 0xAB))
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeHelloMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		// Whatever decoded must re-encode to the same bytes (the format
		// has no redundancy).
		if got := m.Encode(); string(got) != string(data) {
			t.Fatalf("round-trip mismatch: %x -> %x", data, got)
		}
	})
}

// FuzzDecodeKeypointMsg covers the split-mode uplink decoder. The
// encoding is canonical and the decoder strict, so any accepted
// message must re-encode byte-exactly; a forged keypoint count must
// never cause a panic or an outsized allocation.
func FuzzDecodeKeypointMsg(f *testing.F) {
	kps := []feature.Keypoint{
		{X: 10.5, Y: 20.25, Level: 2, Angle: 1.5, Score: 80,
			Desc: feature.Descriptor{1, 2, 3, 4}, Right: 8.75, Depth: 1.2},
		{X: 99, Y: 1, Level: 0, Angle: -0.5, Score: 40,
			Desc: feature.Descriptor{^uint64(0), 0, 5, 9}, Right: -1},
	}
	seeds := []*KeypointMsg{
		{ClientID: 1, FrameIdx: 3, Stamp: 0.15,
			Delta:     imu.FrameDelta{RotDelta: geom.IdentityQuat(), DT: 0.05},
			SentNanos: 1234, RTTNanos: 5678, Kps: kps,
			Prior: geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{Z: 1}}, HasPrior: true},
		{ClientID: 2, FrameIdx: 0, Stamp: 0.05,
			Delta: imu.FrameDelta{RotDelta: geom.IdentityQuat(), DT: 0.05},
			Flags: KeypointSyncOnly},
	}
	for _, m := range seeds {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(append(append([]byte(nil), data...), 0))
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/3] ^= 0xFF
		f.Add(flipped)
		// Absurd keypoint count with no backing bytes.
		if len(data) >= 121+4 {
			huge := append([]byte(nil), data[:125]...)
			huge[121], huge[122], huge[123], huge[124] = 0xFF, 0xFF, 0xFF, 0x7F
			f.Add(huge)
		}
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeKeypointMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		if len(m.Kps)*keypointWireBytes > len(data) {
			t.Fatalf("decoded %d keypoints from a %d-byte message", len(m.Kps), len(data))
		}
		if got := m.Encode(); string(got) != string(data) {
			t.Fatalf("round-trip mismatch: %d -> %d bytes", len(data), len(got))
		}
	})
}

// FuzzDecodeModeSwitchMsg covers the fixed-size mode-switch decoder.
func FuzzDecodeModeSwitchMsg(f *testing.F) {
	for _, m := range []*ModeSwitchMsg{
		{Mode: 0, Epoch: 1},
		{Mode: 2, Epoch: 40, Reason: 1, SentNanos: 1 << 40},
	} {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:modeSwitchLen]) // legacy: no send-timestamp tail
		f.Add(data[:len(data)-1])
		f.Add(append(append([]byte(nil), data...), 7))
	}
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0, 0, 0, 0}) // out-of-range mode

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeModeSwitchMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		if m.Mode > 2 {
			t.Fatalf("decoder accepted offload mode %d", m.Mode)
		}
		// Canonical stability: re-encoding (which always emits the
		// timestamp tail, zero for legacy input) must decode identically.
		m2, err := DecodeModeSwitchMsg(m.Encode())
		if err != nil || *m2 != *m {
			t.Fatalf("round-trip mismatch: %+v -> %+v (%v)", m, m2, err)
		}
	})
}
