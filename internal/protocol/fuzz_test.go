package protocol

import (
	"testing"

	"slamshare/internal/camera"
	"slamshare/internal/geom"
	"slamshare/internal/imu"
)

// FuzzDecodeFrameMsg hammers the uplink frame decoder with arbitrary
// bytes: it must return an error or a structurally sound message —
// never panic, and never alias slices beyond the input.
func FuzzDecodeFrameMsg(f *testing.F) {
	// Seed corpus: valid round-trip encodings of varied shapes plus
	// classic corruptions of each.
	seeds := []*FrameMsg{
		{ClientID: 1, FrameIdx: 0, Stamp: 0.05,
			Delta: imu.FrameDelta{RotDelta: geom.IdentityQuat(), DT: 0.05},
			Video: []byte("intra-frame")},
		{ClientID: 7, FrameIdx: 42, Stamp: 2.1,
			Delta:      imu.FrameDelta{RotDelta: geom.IdentityQuat(), PosDelta: geom.Vec3{X: 0.1}, DT: 0.05},
			Video:      make([]byte, 256),
			VideoRight: make([]byte, 256),
			Prior:      geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{Z: 1}},
			HasPrior:   true},
	}
	for _, m := range seeds {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:len(data)/2])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/3] ^= 0xFF
		f.Add(flipped)
		// Absurd video length with no backing bytes.
		huge := append([]byte(nil), data[:120]...)
		huge[116], huge[117], huge[118], huge[119] = 0xFF, 0xFF, 0xFF, 0x7F
		f.Add(huge)
	}
	f.Add([]byte{})
	f.Add([]byte("not a frame message"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeFrameMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		// Decoded slices alias the input; they can never exceed it.
		if len(m.Video)+len(m.VideoRight) > len(data) {
			t.Fatalf("decoded %d video bytes from a %d-byte message",
				len(m.Video)+len(m.VideoRight), len(data))
		}
	})
}

// FuzzDecodePoseMsg covers the downlink pose decoder, in both the
// legacy form and the extended shed-flagged form.
func FuzzDecodePoseMsg(f *testing.F) {
	seeds := []*PoseMsg{
		{FrameIdx: 0, Pose: geom.IdentitySE3(), Tracked: true},
		{FrameIdx: 99, Pose: geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{X: 1, Y: 2, Z: 3}}},
		{FrameIdx: 7, Pose: geom.IdentitySE3(), Shed: true},
	}
	for _, m := range seeds {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:len(data)-1])
		f.Add(append(append([]byte(nil), data...), 0))
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/2] ^= 0xFF
		f.Add(flipped)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodePoseMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		if len(data) != poseMsgLegacyLen && len(data) != poseMsgLegacyLen+1 {
			t.Fatalf("decoder accepted %d-byte pose message", len(data))
		}
		// The encoding is canonical (shed byte only when set), so any
		// accepted message must re-encode to the same length.
		if got := m.Encode(); len(got) != len(data) {
			t.Fatalf("round-trip length mismatch: %d -> %d", len(data), len(got))
		}
	})
}

// FuzzDecodeHelloMsg covers the session-opening hello decoder, in both
// the legacy 5-byte and extended-calibration forms.
func FuzzDecodeHelloMsg(f *testing.F) {
	legacy := &HelloMsg{ClientID: 3, Mode: camera.Stereo}
	ext := &HelloMsg{ClientID: 9, Mode: camera.Mono, HasRig: true,
		Intr: camera.EuRoCIntrinsics(), Baseline: 0.11}
	for _, m := range []*HelloMsg{legacy, ext} {
		data := m.Encode()
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(append(append([]byte(nil), data...), 0xAB))
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeHelloMsg(data)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil message returned with error")
			}
			return
		}
		// Whatever decoded must re-encode to the same bytes (the format
		// has no redundancy).
		if got := m.Encode(); string(got) != string(data) {
			t.Fatalf("round-trip mismatch: %x -> %x", data, got)
		}
	})
}
