// Package lifecycle keeps the shared map's resident size bounded on a
// server that runs forever. Three mechanisms, all driven off the map's
// version counters and activity clock so the tracking hot path never
// stalls behind them:
//
//   - Keyframe culling: a keyframe whose tracked points are almost all
//     (RedundantRatio, default 90%) observed by at least RedundantObs
//     other keyframes at the same or a finer pyramid scale is
//     redundant — erasing it loses no coverage. Erases go through
//     smap.EraseKeyFrame under the pin protocol, and flow to the WAL
//     through the map observer, so crash recovery replays the same
//     compact map.
//
//   - Map-point sparsification: points that no tracker ever re-found
//     after triangulation and that almost nothing observes are noise;
//     they are erased once their neighbourhood has gone cold.
//
//   - Cold-region eviction: a covisibility-connected cluster no
//     session has touched for EvictAfter frames is serialized to a
//     region checkpoint file (wire.EncodeRegion), journaled, and
//     dropped from memory. A ghost BoW index remembers what the
//     evicted keyframes looked like; when a session relocalizes into
//     the region, or a merge's place recognition lands there, the
//     region is transparently reloaded before the caller queries the
//     live map.
//
// The manager owns no locks of the map; the server serializes Step,
// MaybeReload, and RestoreEvicted against merges with its global merge
// mutex, and the manager's own mutex makes them safe against each
// other regardless.
package lifecycle

import (
	"sort"
	"sync"

	"slamshare/internal/bow"
	"slamshare/internal/metrics"
	"slamshare/internal/persist"
	"slamshare/internal/smap"
	"slamshare/internal/wire"
)

// Config tunes the lifecycle policies. The zero value disables
// everything; Defaults fills the scoring knobs most callers keep.
type Config struct {
	// MaxKeyFrames is the resident keyframe budget. Culling and
	// sparsification run only while the map exceeds it; 0 disables
	// both (and eviction, which exists to serve the same budget).
	MaxKeyFrames int
	// EvictAfter is the age, in activity-clock ticks (handled frames,
	// across all sessions), after which an untouched covisibility
	// cluster is cold enough to evict. 0 disables eviction.
	EvictAfter uint64
	// Dir is where region checkpoint files live — normally the persist
	// checkpoint directory. Empty disables eviction.
	Dir string

	// RedundantObs is how many *other* keyframes must observe a point
	// at equal-or-finer scale for the observation to be redundant.
	RedundantObs int
	// RedundantRatio is the fraction of a keyframe's tracked points
	// that must be redundant before the keyframe is culled.
	RedundantRatio float64
	// MinObs: a never-re-found point with at most this many observers
	// is sparsified. 0 disables sparsification.
	MinObs int
	// ProtectRecent shields anything touched within this many ticks
	// from culling and sparsification (fresh triangulations and the
	// windows trackers sit in are off limits).
	ProtectRecent uint64
	// CullBatch bounds keyframes culled per Step.
	CullBatch int
	// SparsifyBatch bounds map points sparsified per Step.
	SparsifyBatch int
	// ClusterMax / ClusterMin bound an evicted region's keyframe
	// count: clusters smaller than ClusterMin are not worth a file.
	ClusterMax int
	ClusterMin int
	// ReloadScore is the minimum BoW similarity against a ghost
	// keyframe for MaybeReload to pull its region back in.
	ReloadScore float64
}

// Defaults returns cfg with every unset scoring knob at its default.
func (cfg Config) Defaults() Config {
	if cfg.RedundantObs == 0 {
		cfg.RedundantObs = 3
	}
	if cfg.RedundantRatio == 0 {
		cfg.RedundantRatio = 0.9
	}
	if cfg.MinObs == 0 {
		cfg.MinObs = 1
	}
	if cfg.ProtectRecent == 0 {
		cfg.ProtectRecent = 30
	}
	if cfg.CullBatch == 0 {
		cfg.CullBatch = 8
	}
	if cfg.SparsifyBatch == 0 {
		cfg.SparsifyBatch = 64
	}
	if cfg.ClusterMax == 0 {
		cfg.ClusterMax = 40
	}
	if cfg.ClusterMin == 0 {
		cfg.ClusterMin = 3
	}
	if cfg.ReloadScore == 0 {
		cfg.ReloadScore = 0.05
	}
	return cfg
}

// Journal is the slice of the WAL the manager records boundaries to;
// *persist.Journal implements it. The entity erases and re-inserts
// themselves flow through the map observer.
type Journal interface {
	RegionEvicted(id uint64, kfIDs, mpIDs []smap.ID)
	RegionReloaded(id uint64)
}

// Stats are the manager's monotonic counters, exported on /debug/vars.
type Stats struct {
	CulledKeyFrames  metrics.Counter
	SparsifiedPoints metrics.Counter
	EvictedRegions   metrics.Counter
	EvictedKeyFrames metrics.Counter
	ReloadedRegions  metrics.Counter
	DroppedRegions   metrics.Counter // corrupt/unreadable region files abandoned
	Steps            metrics.Counter
}

// region is one evicted cluster the manager can bring back.
type region struct {
	id    uint64
	kfIDs []smap.ID
	mpIDs []smap.ID
}

// Manager runs the lifecycle policies over one shared map.
type Manager struct {
	cfg     Config
	m       *smap.Map
	journal Journal // may be nil (no persistence)

	mu      sync.Mutex
	regions map[uint64]*region
	ghostKF map[smap.ID]uint64 // evicted keyframe -> region holding it
	ghosts  *bow.Database      // BoW index over evicted keyframes
	nextID  uint64
	lastVer uint64 // map version at the previous Step (skip idle steps)

	stats Stats
}

// New builds a manager over m. journal may be nil when the server runs
// without persistence (eviction then requires only cfg.Dir).
func New(cfg Config, m *smap.Map, journal Journal) *Manager {
	return &Manager{
		cfg:     cfg.Defaults(),
		m:       m,
		journal: journal,
		regions: make(map[uint64]*region),
		ghostKF: make(map[smap.ID]uint64),
		ghosts:  bow.NewDatabase(),
		nextID:  1,
	}
}

// Stats returns the manager's counters.
func (lm *Manager) Stats() *Stats { return &lm.stats }

// EvictedRegionCount returns how many regions are currently on disk
// instead of in memory.
func (lm *Manager) EvictedRegionCount() int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return len(lm.regions)
}

// EvictedKeyFrameCount returns how many keyframes the evicted regions
// hold between them.
func (lm *Manager) EvictedKeyFrameCount() int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return len(lm.ghostKF)
}

// Step runs one bounded maintenance pass: cull redundant keyframes
// while over budget, sparsify dead points, evict at most one cold
// region. The caller (the mapper's post-BA hook) invokes it off the
// frame hot path and serializes it against merges; now is the current
// activity-clock tick. It returns true if it mutated the map.
func (lm *Manager) Step(now uint64) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if lm.cfg.MaxKeyFrames <= 0 {
		return false
	}
	if v := lm.m.Version(); v == lm.lastVer {
		return false // map unchanged since last pass; nothing new to score
	}
	lm.stats.Steps.Inc()

	mutated := false
	if lm.m.NKeyFrames() > lm.cfg.MaxKeyFrames {
		if lm.cullPass(now) {
			mutated = true
		}
		if lm.sparsifyPass(now) {
			mutated = true
		}
	}
	if lm.cfg.EvictAfter > 0 && lm.cfg.Dir != "" {
		if lm.evictPass(now) {
			mutated = true
		}
	}
	lm.m.PruneTouch(func(id smap.ID) bool {
		_, ok := lm.m.KeyFrame(id)
		return ok
	})
	// Record the post-pass version so our own mutations don't make the
	// next Step look like new activity.
	lm.lastVer = lm.m.Version()
	return mutated
}

// ---- culling ----

type cullCand struct {
	id    smap.ID
	score float64
}

// cullPass erases up to CullBatch redundant keyframes, never dropping
// the map below budget.
func (lm *Manager) cullPass(now uint64) bool {
	cands := make([]cullCand, 0, 32)
	for _, kf := range lm.m.KeyFrames() {
		if lm.protected(kf.ID, now) {
			continue
		}
		if score, ok := lm.redundancy(kf); ok && score >= lm.cfg.RedundantRatio {
			cands = append(cands, cullCand{kf.ID, score})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].id < cands[j].id
	})
	culled := 0
	for _, c := range cands {
		if culled >= lm.cfg.CullBatch || lm.m.NKeyFrames() <= lm.cfg.MaxKeyFrames {
			break
		}
		lm.m.EraseKeyFrame(c.id)
		if _, still := lm.m.KeyFrame(c.id); still {
			continue // pinned by an in-flight reader; retry next pass
		}
		culled++
		lm.stats.CulledKeyFrames.Inc()
	}
	return culled > 0
}

// redundancy returns the fraction of kf's tracked points that at least
// RedundantObs other keyframes observe at equal-or-finer scale.
// ok is false when the keyframe tracks too few points to judge.
func (lm *Manager) redundancy(kf *smap.KeyFrame) (float64, bool) {
	_, bindings, ok := lm.m.KeyFrameState(kf.ID)
	if !ok {
		return 0, false
	}
	tracked, redundant := 0, 0
	for i, mpID := range bindings {
		if mpID == 0 || i >= len(kf.Keypoints) {
			continue
		}
		tracked++
		level := kf.Keypoints[i].Level
		_, obs, ok := lm.m.PointObs(mpID)
		if !ok {
			continue
		}
		n := 0
		for _, o := range obs {
			if o.KF == kf.ID {
				continue
			}
			// Keypoints are immutable after insert, so reading the
			// observer's pyramid level off the live pointer is safe.
			okf, ok := lm.m.KeyFrame(o.KF)
			if !ok || o.Idx < 0 || o.Idx >= len(okf.Keypoints) {
				continue
			}
			if okf.Keypoints[o.Idx].Level <= level {
				n++
			}
		}
		if n >= lm.cfg.RedundantObs {
			redundant++
		}
	}
	if tracked < 10 {
		return 0, false // too sparse to call anything redundant
	}
	return float64(redundant) / float64(tracked), true
}

// ---- sparsification ----

// sparsifyPass erases up to SparsifyBatch map points that were never
// re-found by any tracker, have at most MinObs observers, and whose
// observers have all gone cold.
func (lm *Manager) sparsifyPass(now uint64) bool {
	if lm.cfg.MinObs <= 0 {
		return false
	}
	erased := 0
	for _, mp := range lm.m.MapPoints() {
		if erased >= lm.cfg.SparsifyBatch {
			break
		}
		found, nobs, _, ok := lm.m.PointStats(mp.ID)
		if !ok || found > 0 || nobs > lm.cfg.MinObs {
			continue
		}
		_, obs, ok := lm.m.PointObs(mp.ID)
		if !ok {
			continue
		}
		hot := false
		for _, o := range obs {
			if !lm.cold(o.KF, now, lm.cfg.ProtectRecent) {
				hot = true
				break
			}
		}
		if hot {
			continue
		}
		lm.m.EraseMapPoint(mp.ID)
		erased++
		lm.stats.SparsifiedPoints.Inc()
	}
	return erased > 0
}

// ---- eviction ----

// evictPass finds the coldest unprotected keyframe, grows the cold
// covisibility cluster around it, and evicts the cluster to a region
// file. At most one region per Step keeps the pause bounded.
func (lm *Manager) evictPass(now uint64) bool {
	if now < lm.cfg.EvictAfter {
		return false
	}
	seed, seedTouch := smap.ID(0), now
	for _, kf := range lm.m.KeyFrames() {
		t := lm.m.LastTouch(kf.ID)
		if !lm.evictable(kf.ID, now) {
			continue
		}
		if seed == 0 || t < seedTouch || (t == seedTouch && kf.ID < seed) {
			seed, seedTouch = kf.ID, t
		}
	}
	if seed == 0 {
		return false
	}
	cluster := lm.m.CovisCluster(seed, lm.cfg.ClusterMax, func(id smap.ID) bool {
		return lm.evictable(id, now)
	})
	if len(cluster) < lm.cfg.ClusterMin {
		return false
	}
	return lm.evictCluster(cluster)
}

// evictCluster erases the cluster from the map and parks it in a
// region file. Keyframes that an in-flight reader pinned between the
// scan and the erase simply stay resident and are left out of the
// region.
func (lm *Manager) evictCluster(cluster []smap.ID) bool {
	var (
		kfObjs []*smap.KeyFrame
		kfIDs  []smap.ID
	)
	for _, id := range cluster {
		kf, ok := lm.m.KeyFrame(id)
		if !ok {
			continue
		}
		lm.m.EraseKeyFrame(id)
		if _, still := lm.m.KeyFrame(id); still {
			continue // pin race: the reader keeps it; skip
		}
		// Erased from every table, so the object is quiescent (all map
		// mutators go through ID lookups); safe to serialize directly.
		kfObjs = append(kfObjs, kf)
		kfIDs = append(kfIDs, id)
	}
	if len(kfIDs) < lm.cfg.ClusterMin {
		// The pins won; reinsert what we did erase and give up.
		lm.reinsert(kfObjs, nil)
		return false
	}

	// Cluster-private map points: after the keyframe erases detached
	// their observations, a point observed only inside the cluster has
	// no observers left. Shared points keep their resident observers
	// and stay.
	var (
		mpObjs []*smap.MapPoint
		mpIDs  []smap.ID
		seen   = make(map[smap.ID]bool)
	)
	for _, kf := range kfObjs {
		for _, mpID := range kf.MapPoints {
			if mpID == 0 || seen[mpID] {
				continue
			}
			seen[mpID] = true
			if n, ok := lm.m.PointObsCount(mpID); ok && n == 0 {
				if mp, ok := lm.m.MapPoint(mpID); ok {
					lm.m.EraseMapPoint(mpID)
					mpObjs = append(mpObjs, mp)
					mpIDs = append(mpIDs, mpID)
				}
			}
		}
	}

	id := lm.nextID
	blob := wire.EncodeRegion(id, kfObjs, mpObjs)
	if err := persist.WriteRegion(lm.cfg.Dir, id, blob); err != nil {
		// Disk refused the region: the entities are already out of the
		// map, so put them back rather than lose them.
		lm.reinsert(kfObjs, mpObjs)
		return false
	}
	lm.nextID++
	if lm.journal != nil {
		lm.journal.RegionEvicted(id, kfIDs, mpIDs)
	}
	lm.regions[id] = &region{id: id, kfIDs: kfIDs, mpIDs: mpIDs}
	for _, kf := range kfObjs {
		lm.ghostKF[kf.ID] = id
		lm.ghosts.Add(uint64(kf.ID), kf.Bow)
	}
	lm.stats.EvictedRegions.Inc()
	lm.stats.EvictedKeyFrames.Add(int64(len(kfIDs)))
	return true
}

// ---- reload ----

// MaybeReload checks a query BoW vector against the ghost index and
// reloads any region a strong match points into. Trackers call it just
// before relocalization candidate search, the merger just before
// common-region detection, so the subsequent live QueryBow sees the
// reloaded keyframes. Returns the number of regions brought back.
func (lm *Manager) MaybeReload(bv bow.Vec) int {
	if len(bv) == 0 {
		return 0
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if len(lm.regions) == 0 {
		return 0
	}
	hits := lm.ghosts.Query(bv, 3, nil)
	want := make([]uint64, 0, 2)
	for _, h := range hits {
		if h.Score < lm.cfg.ReloadScore {
			continue
		}
		rid, ok := lm.ghostKF[smap.ID(h.ID)]
		if !ok {
			continue
		}
		dup := false
		for _, w := range want {
			if w == rid {
				dup = true
			}
		}
		if !dup {
			want = append(want, rid)
		}
	}
	n := 0
	for _, rid := range want {
		if lm.reload(rid) {
			n++
		}
	}
	return n
}

// ReloadAll brings every evicted region back into memory (used by
// shutdown checkpoints and tests that want the whole world resident).
func (lm *Manager) ReloadAll() int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	ids := make([]uint64, 0, len(lm.regions))
	for id := range lm.regions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	n := 0
	for _, id := range ids {
		if lm.reload(id) {
			n++
		}
	}
	return n
}

// reload (mu held) reads one region file back into the live map. A
// corrupt or missing file abandons the region — the area is re-mapped
// from scratch next time a session goes there — never a panic.
func (lm *Manager) reload(id uint64) bool {
	reg, ok := lm.regions[id]
	if !ok {
		return false
	}
	blob, err := persist.ReadRegion(lm.cfg.Dir, id)
	var (
		kfs []*smap.KeyFrame
		mps []*smap.MapPoint
	)
	if err == nil {
		var gotID uint64
		gotID, kfs, mps, err = wire.DecodeRegion(blob)
		if err == nil && gotID != id {
			err = wire.ErrCorrupt
		}
	}
	lm.forget(reg)
	if err != nil {
		lm.stats.DroppedRegions.Inc()
		persist.RemoveRegion(lm.cfg.Dir, id)
		return false
	}

	present := make(map[smap.ID]bool, len(mps))
	for _, mp := range mps {
		present[mp.ID] = true
	}
	for _, mp := range mps {
		// Observations were detached at eviction; the bindings in the
		// keyframes below re-establish them.
		mp.Obs = make(map[smap.ID]int)
		lm.m.AddMapPoint(mp)
	}
	var kfIDs []smap.ID
	for _, kf := range kfs {
		// Bindings to points sparsified while the region slept would
		// dangle; clear them. Covisibility is recomputed below.
		for i, mpID := range kf.MapPoints {
			if mpID == 0 {
				continue
			}
			if _, ok := lm.m.MapPoint(mpID); !ok && !present[mpID] {
				kf.MapPoints[i] = 0
			}
		}
		kf.Conns = make(map[smap.ID]int)
		lm.m.AddKeyFrame(kf)
		kfIDs = append(kfIDs, kf.ID)
	}
	for _, kf := range kfs {
		for i, mpID := range kf.MapPoints {
			if mpID == 0 {
				continue
			}
			if err := lm.m.AddObservation(kf.ID, mpID, i); err != nil {
				kf.MapPoints[i] = 0 // point vanished mid-reload
			}
		}
	}
	for _, kfID := range kfIDs {
		lm.m.UpdateConnections(kfID, 15)
	}
	lm.m.TouchKeyFrames(kfIDs)
	if lm.journal != nil {
		lm.journal.RegionReloaded(id)
	}
	persist.RemoveRegion(lm.cfg.Dir, id)
	lm.stats.ReloadedRegions.Inc()
	return true
}

// forget (mu held) drops a region from the reload index.
func (lm *Manager) forget(reg *region) {
	for _, kfID := range reg.kfIDs {
		delete(lm.ghostKF, kfID)
		lm.ghosts.Remove(uint64(kfID))
	}
	delete(lm.regions, reg.id)
}

// ---- recovery ----

// RestoreEvicted seeds the reload index after crash recovery: evicted
// is persist.Recovery.EvictedRegions (region id -> keyframe ids still
// on disk at crash time). Region files the WAL does not vouch for are
// deleted — a crash between the file write and the WAL record left the
// entities live in the replayed map, so the file is stale. Unreadable
// vouched-for files are abandoned (and journaled as reloaded so the
// next recovery forgets them too).
func (lm *Manager) RestoreEvicted(evicted map[uint64][]smap.ID) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if lm.cfg.Dir == "" {
		return
	}
	onDisk, _ := persist.ListRegions(lm.cfg.Dir)
	for _, id := range onDisk {
		if id >= lm.nextID {
			lm.nextID = id + 1
		}
		if _, ok := evicted[id]; !ok {
			persist.RemoveRegion(lm.cfg.Dir, id)
		}
	}
	ids := make([]uint64, 0, len(evicted))
	for id := range evicted {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if id >= lm.nextID {
			lm.nextID = id + 1
		}
		blob, err := persist.ReadRegion(lm.cfg.Dir, id)
		var (
			kfs []*smap.KeyFrame
			mps []*smap.MapPoint
		)
		if err == nil {
			var gotID uint64
			gotID, kfs, mps, err = wire.DecodeRegion(blob)
			if err == nil && gotID != id {
				err = wire.ErrCorrupt
			}
		}
		if err != nil {
			lm.stats.DroppedRegions.Inc()
			persist.RemoveRegion(lm.cfg.Dir, id)
			if lm.journal != nil {
				lm.journal.RegionReloaded(id)
			}
			continue
		}
		reg := &region{id: id}
		for _, kf := range kfs {
			reg.kfIDs = append(reg.kfIDs, kf.ID)
			lm.ghostKF[kf.ID] = id
			lm.ghosts.Add(uint64(kf.ID), kf.Bow)
		}
		for _, mp := range mps {
			reg.mpIDs = append(reg.mpIDs, mp.ID)
		}
		lm.regions[id] = reg
	}
}

// ---- helpers ----

// reinsert undoes a partially performed eviction after a disk error:
// the erased entities go back through the normal insert paths (which
// re-journal them, neutralizing the journaled erases).
func (lm *Manager) reinsert(kfs []*smap.KeyFrame, mps []*smap.MapPoint) {
	for _, mp := range mps {
		mp.Obs = make(map[smap.ID]int)
		lm.m.AddMapPoint(mp)
	}
	for _, kf := range kfs {
		kf.Conns = make(map[smap.ID]int)
		lm.m.AddKeyFrame(kf)
	}
	for _, kf := range kfs {
		for i, mpID := range kf.MapPoints {
			if mpID == 0 {
				continue
			}
			if err := lm.m.AddObservation(kf.ID, mpID, i); err != nil {
				kf.MapPoints[i] = 0
			}
		}
		lm.m.UpdateConnections(kf.ID, 15)
	}
}

// protected reports whether the keyframe must not be culled: recently
// touched, pinned by a reader, or currently unknown.
func (lm *Manager) protected(id smap.ID, now uint64) bool {
	if lm.m.PinCount(id) > 0 {
		return true
	}
	return !lm.cold(id, now, lm.cfg.ProtectRecent)
}

// evictable reports whether the keyframe is cold enough to leave
// memory.
func (lm *Manager) evictable(id smap.ID, now uint64) bool {
	if lm.m.PinCount(id) > 0 {
		return false
	}
	if _, ghost := lm.ghostKF[id]; ghost {
		return false // already parked in a region file
	}
	return lm.cold(id, now, lm.cfg.EvictAfter)
}

// EstimateResidentBytes approximates the map's in-memory footprint
// for the /debug/vars gauge: per-entity struct overheads plus the
// dominant per-keypoint payload (descriptor, geometry, binding). It
// reads only immutable fields and atomic counters, so it is safe to
// call concurrently with tracking.
func EstimateResidentBytes(m *smap.Map) int64 {
	const (
		kfFixed = 256 // struct, pose, bow map overhead
		kpBytes = 104 // keypoint fields + descriptor + binding slot
		mpBytes = 224 // struct, descriptor, position, obs map overhead
	)
	var b int64
	for _, kf := range m.KeyFrames() {
		b += kfFixed + int64(len(kf.Keypoints))*kpBytes
	}
	b += int64(m.NMapPoints()) * mpBytes
	return b
}

// cold reports whether the keyframe's last touch is at least age ticks
// ago. An unknown stamp (zero) counts as cold only when the clock has
// itself advanced past age, so a fresh map is never evicted wholesale.
func (lm *Manager) cold(id smap.ID, now, age uint64) bool {
	t := lm.m.LastTouch(id)
	return now >= age && t <= now-age
}
