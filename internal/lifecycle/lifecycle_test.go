package lifecycle

import (
	"math/rand"
	"os"
	"testing"

	"slamshare/internal/bow"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/persist"
	"slamshare/internal/smap"
)

// fakeJournal records the lifecycle boundary records a real WAL would.
type fakeJournal struct {
	evicted  map[uint64][]smap.ID
	reloaded []uint64
}

func newFakeJournal() *fakeJournal {
	return &fakeJournal{evicted: make(map[uint64][]smap.ID)}
}

func (j *fakeJournal) RegionEvicted(id uint64, kfIDs, mpIDs []smap.ID) {
	j.evicted[id] = append([]smap.ID(nil), kfIDs...)
}

func (j *fakeJournal) RegionReloaded(id uint64) {
	delete(j.evicted, id)
	j.reloaded = append(j.reloaded, id)
}

// clusterMap builds nClusters covisibility-connected neighbourhoods of
// kfPer keyframes each. Within a cluster every keyframe observes every
// one of ptsPer shared points (at matching keypoint indices and equal
// pyramid levels), so each observation has kfPer-1 same-scale
// co-observers: with kfPer >= RedundantObs+1 every keyframe scores
// fully redundant. Clusters share nothing, so the covisibility graph
// splits into nClusters components.
func clusterMap(t testing.TB, seed int64, nClusters, kfPer, ptsPer int) (*smap.Map, [][]smap.ID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := smap.NewMap(bow.Default())
	alloc := smap.NewIDAllocator(1)
	clusters := make([][]smap.ID, nClusters)
	for c := 0; c < nClusters; c++ {
		kfIDs := make([]smap.ID, kfPer)
		for k := 0; k < kfPer; k++ {
			kps := make([]feature.Keypoint, ptsPer)
			for i := range kps {
				var d feature.Descriptor
				for w := range d {
					d[w] = rng.Uint64()
				}
				kps[i] = feature.Keypoint{
					X: rng.Float64() * 700, Y: rng.Float64() * 400,
					Level: 2, Right: -1, Desc: d,
				}
			}
			kf := &smap.KeyFrame{
				ID: alloc.Next(), Client: 1,
				Stamp:     float64(c*kfPer + k),
				Tcw:       geom.SE3{R: geom.Quat{W: 1}, T: geom.Vec3{X: float64(c) * 100}},
				Keypoints: kps,
			}
			m.AddKeyFrame(kf)
			kfIDs[k] = kf.ID
		}
		for p := 0; p < ptsPer; p++ {
			var d feature.Descriptor
			for w := range d {
				d[w] = rng.Uint64()
			}
			mp := &smap.MapPoint{
				ID: alloc.Next(), Client: 1,
				Pos:    geom.Vec3{X: float64(c)*100 + rng.NormFloat64(), Y: rng.NormFloat64(), Z: 5},
				Desc:   d,
				Normal: geom.Vec3{Z: 1},
				RefKF:  kfIDs[0],
			}
			m.AddMapPoint(mp)
			for _, kfID := range kfIDs {
				if err := m.AddObservation(kfID, mp.ID, p); err != nil {
					t.Fatalf("AddObservation: %v", err)
				}
			}
		}
		for _, id := range kfIDs {
			m.UpdateConnections(id, 1)
		}
		clusters[c] = kfIDs
	}
	return m, clusters
}

func advance(m *smap.Map, n int) uint64 {
	var now uint64
	for i := 0; i < n; i++ {
		now = m.Tick()
	}
	return now
}

func checkClean(t *testing.T, m *smap.Map, when string) {
	t.Helper()
	if rep := m.CheckInvariants(); !rep.OK() {
		t.Fatalf("%s: %s", when, rep.Summary())
	}
}

func TestCullRedundantKeyFrames(t *testing.T) {
	m, _ := clusterMap(t, 1, 3, 6, 30)
	lm := New(Config{MaxKeyFrames: 10, CullBatch: 32, ProtectRecent: 5}, m, nil)
	now := advance(m, 50) // everything long untouched

	if !lm.Step(now) {
		t.Fatal("Step reported no mutation on an over-budget map")
	}
	if got := m.NKeyFrames(); got > 10 {
		t.Fatalf("NKeyFrames = %d after cull, want <= 10", got)
	}
	if got := lm.Stats().CulledKeyFrames.Load(); got != 8 {
		t.Fatalf("culled %d keyframes, want 8 (18 minus budget 10)", got)
	}
	checkClean(t, m, "after cull")

	// Idle map: the version gate must skip the pass entirely.
	steps := lm.Stats().Steps.Load()
	if lm.Step(advance(m, 1)) {
		t.Fatal("Step mutated an idle map")
	}
	if lm.Stats().Steps.Load() != steps {
		t.Fatal("version gate did not skip the idle step")
	}
}

func TestCullRespectsPinsAndRecency(t *testing.T) {
	m, clusters := clusterMap(t, 2, 2, 6, 30)
	lm := New(Config{MaxKeyFrames: 1, CullBatch: 64, ProtectRecent: 10}, m, nil)
	now := advance(m, 50)

	pinned := lm.m.Pin([]smap.ID{clusters[0][0]})
	if len(pinned) != 1 {
		t.Fatal("pin refused")
	}
	m.TouchKeyFrames(clusters[0][1:2]) // hot: touched this tick

	lm.Step(now)
	if _, ok := m.KeyFrame(clusters[0][0]); !ok {
		t.Fatal("pinned keyframe was culled")
	}
	if _, ok := m.KeyFrame(clusters[0][1]); !ok {
		t.Fatal("recently touched keyframe was culled")
	}
	m.Unpin(pinned)
	checkClean(t, m, "after pinned cull")
}

func TestSparsifyDeadPoints(t *testing.T) {
	m, clusters := clusterMap(t, 3, 1, 6, 12)
	alloc := smap.NewIDAllocatorFrom(1, 10_000)
	// Two extra singleton points: one never re-found (dead), one the
	// tracker bumped (alive).
	var dead, alive smap.ID
	for i := 0; i < 2; i++ {
		mp := &smap.MapPoint{
			ID: alloc.Next(), Client: 1, Pos: geom.Vec3{Z: 3},
			Normal: geom.Vec3{Z: 1}, RefKF: clusters[0][0],
		}
		m.AddMapPoint(mp)
		if i == 0 {
			dead = mp.ID
		} else {
			alive = mp.ID
			m.BumpPointFound(mp.ID)
		}
	}
	lm := New(Config{MaxKeyFrames: 1, ProtectRecent: 5}, m, nil)
	now := advance(m, 40)

	lm.Step(now)
	if _, ok := m.MapPoint(dead); ok {
		t.Fatal("dead point survived sparsification")
	}
	if _, ok := m.MapPoint(alive); !ok {
		t.Fatal("re-found point was sparsified")
	}
	checkClean(t, m, "after sparsify")
}

func TestEvictReloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, clusters := clusterMap(t, 4, 2, 6, 30)
	jn := newFakeJournal()
	lm := New(Config{
		MaxKeyFrames: 1000, // under budget: eviction only
		EvictAfter:   20,
		Dir:          dir,
		ClusterMax:   16,
	}, m, jn)
	advance(m, 40)
	m.TouchKeyFrames(clusters[1]) // cluster 1 hot, cluster 0 cold
	now := m.CurrentTick()

	coldKF, _ := m.KeyFrame(clusters[0][0])
	coldBow := coldKF.Bow
	nkf0, nmp0 := m.NKeyFrames(), m.NMapPoints()

	if !lm.Step(now) {
		t.Fatal("Step did not evict the cold cluster")
	}
	if got := m.NKeyFrames(); got != nkf0-6 {
		t.Fatalf("NKeyFrames = %d after evict, want %d", got, nkf0-6)
	}
	if got := m.NMapPoints(); got != nmp0-30 {
		t.Fatalf("NMapPoints = %d after evict, want %d (cluster-private points)", got, nmp0-30)
	}
	if lm.EvictedRegionCount() != 1 || lm.EvictedKeyFrameCount() != 6 {
		t.Fatalf("evicted index: %d regions / %d keyframes, want 1/6",
			lm.EvictedRegionCount(), lm.EvictedKeyFrameCount())
	}
	regions, _ := persist.ListRegions(dir)
	if len(regions) != 1 {
		t.Fatalf("region files on disk = %d, want 1", len(regions))
	}
	if len(jn.evicted) != 1 {
		t.Fatalf("journaled evictions = %d, want 1", len(jn.evicted))
	}
	for _, id := range clusters[1] {
		if _, ok := m.KeyFrame(id); !ok {
			t.Fatal("hot cluster was evicted")
		}
	}
	checkClean(t, m, "while evicted")

	// A query that looks like the evicted area pulls the region back.
	if n := lm.MaybeReload(coldBow); n != 1 {
		t.Fatalf("MaybeReload = %d regions, want 1", n)
	}
	if m.NKeyFrames() != nkf0 || m.NMapPoints() != nmp0 {
		t.Fatalf("after reload: %d KFs / %d MPs, want %d / %d",
			m.NKeyFrames(), m.NMapPoints(), nkf0, nmp0)
	}
	for _, id := range clusters[0] {
		kf, ok := m.KeyFrame(id)
		if !ok {
			t.Fatalf("keyframe %d missing after reload", id)
		}
		if kf.TrackedPoints() != 30 {
			t.Fatalf("keyframe %d tracks %d points after reload, want 30", id, kf.TrackedPoints())
		}
		if len(kf.Conns) == 0 {
			t.Fatalf("keyframe %d has no covisibility edges after reload", id)
		}
	}
	if lm.EvictedRegionCount() != 0 {
		t.Fatal("region still indexed after reload")
	}
	if regions, _ := persist.ListRegions(dir); len(regions) != 0 {
		t.Fatal("region file not removed after reload")
	}
	if len(jn.evicted) != 0 || len(jn.reloaded) != 1 {
		t.Fatal("journal did not net out the eviction")
	}
	checkClean(t, m, "after reload")

	// The evicted stretch stays queryable: relocalization against the
	// reloaded keyframes works.
	if res := m.QueryBow(coldBow, 3, nil); len(res) == 0 || res[0].ID != uint64(clusters[0][0]) {
		t.Fatal("reloaded keyframe not findable by BoW query")
	}
}

func TestRestoreEvictedAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	m, clusters := clusterMap(t, 5, 2, 6, 30)
	jn := newFakeJournal()
	lm := New(Config{MaxKeyFrames: 1000, EvictAfter: 20, Dir: dir, ClusterMax: 16}, m, jn)
	advance(m, 40)
	m.TouchKeyFrames(clusters[1])
	if !lm.Step(m.CurrentTick()) {
		t.Fatal("eviction did not run")
	}
	coldKF := clusters[0][0]
	var coldBow bow.Vec
	{
		// The keyframe is gone from memory; recover its BoW from the fake
		// journal's region record via the file itself on reload below.
		blob, err := persist.ReadRegion(dir, regionIDOf(t, jn))
		if err != nil {
			t.Fatal(err)
		}
		_ = blob
	}

	// A stale region file the WAL does not vouch for (crash between
	// file write and WAL record) must be deleted on restore.
	if err := persist.WriteRegion(dir, 99, []byte("garbage")); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh manager over the surviving map, seeded from
	// what recovery would hand it.
	lm2 := New(Config{MaxKeyFrames: 1000, EvictAfter: 20, Dir: dir, ClusterMax: 16}, m, jn)
	lm2.RestoreEvicted(jn.evicted)
	if lm2.EvictedRegionCount() != 1 {
		t.Fatalf("restored %d regions, want 1", lm2.EvictedRegionCount())
	}
	if regions, _ := persist.ListRegions(dir); len(regions) != 1 {
		t.Fatalf("stale region file survived restore: %v", regions)
	}

	// Reload through the restored index brings the keyframes back.
	n := lm2.ReloadAll()
	if n != 1 {
		t.Fatalf("ReloadAll = %d, want 1", n)
	}
	kf, ok := m.KeyFrame(coldKF)
	if !ok {
		t.Fatal("keyframe missing after restored reload")
	}
	coldBow = kf.Bow
	if res := m.QueryBow(coldBow, 3, nil); len(res) == 0 {
		t.Fatal("restored keyframe not indexed for place recognition")
	}
	checkClean(t, m, "after restored reload")
}

func regionIDOf(t *testing.T, jn *fakeJournal) uint64 {
	t.Helper()
	for id := range jn.evicted {
		return id
	}
	t.Fatal("no evicted region journaled")
	return 0
}

func TestReloadDropsCorruptRegion(t *testing.T) {
	dir := t.TempDir()
	m, clusters := clusterMap(t, 6, 2, 6, 30)
	lm := New(Config{MaxKeyFrames: 1000, EvictAfter: 20, Dir: dir, ClusterMax: 16}, m, nil)
	advance(m, 40)
	m.TouchKeyFrames(clusters[1])
	if !lm.Step(m.CurrentTick()) {
		t.Fatal("eviction did not run")
	}
	regions, _ := persist.ListRegions(dir)
	if len(regions) != 1 {
		t.Fatal("expected one region file")
	}
	// Corrupt the file: reload must abandon the region (re-map), not
	// panic or half-insert.
	path := persist.RegionPath(dir, regions[0])
	blob, _ := os.ReadFile(path)
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	nkf := m.NKeyFrames()
	if n := lm.ReloadAll(); n != 0 {
		t.Fatalf("ReloadAll reloaded %d corrupt regions", n)
	}
	if m.NKeyFrames() != nkf {
		t.Fatal("corrupt reload mutated the map")
	}
	if lm.EvictedRegionCount() != 0 {
		t.Fatal("corrupt region still indexed")
	}
	if got := lm.Stats().DroppedRegions.Load(); got != 1 {
		t.Fatalf("DroppedRegions = %d, want 1", got)
	}
	if regions, _ := persist.ListRegions(dir); len(regions) != 0 {
		t.Fatal("corrupt region file not removed")
	}
	checkClean(t, m, "after dropped region")
}

// BenchmarkLifecycleCull measures one maintenance pass over an
// over-budget map: the redundancy scan plus a batch of erases.
func BenchmarkLifecycleCull(b *testing.B) {
	build := func() (*smap.Map, *Manager, uint64) {
		m, _ := clusterMap(b, 7, 10, 6, 30) // 60 keyframes
		lm := New(Config{MaxKeyFrames: 12, CullBatch: 8, ProtectRecent: 5}, m, nil)
		now := advance(m, 50)
		return m, lm, now
	}
	m, lm, now := build()
	dirty := func() {
		// Real servers mutate the map between maintenance passes; an
		// untouched pose write defeats the version gate so every
		// iteration pays for the full redundancy scan.
		kf := m.KeyFrames()[0]
		m.SetKeyFramePose(kf.ID, kf.Tcw)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.NKeyFrames() <= 12 {
			b.StopTimer()
			m, lm, now = build()
			b.StartTimer()
		}
		dirty()
		lm.Step(now)
	}
}
