// Package gpu simulates the edge server's accelerator (an NVIDIA V100
// in the paper's testbed): a device with a fixed number of parallel
// lanes, kernel-launch overhead, per-stream queues, and GSlice-style
// spatio-temporal sharing so multiple client processes extract
// features and search local points concurrently (§4.2.1).
//
// Substitution note (DESIGN.md): the "kernels" execute the same Go
// loops as the CPU path, genuinely in parallel across a worker pool,
// so the CPU-vs-GPU latency shape of Figs. 5 and 8 is reproduced by
// real concurrency rather than a fabricated constant.
package gpu

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes the simulated device.
type Config struct {
	// Lanes is the number of concurrently executing lanes (worker
	// goroutines). 0 means all available cores.
	Lanes int
	// LaunchOverhead models the fixed cost of a kernel launch
	// (host-device handoff). The V100-class default is ~10 us.
	LaunchOverhead time.Duration
	// MinGrain is the smallest number of work items per lane dispatch;
	// it models thread-block granularity.
	MinGrain int
}

// DefaultConfig returns a V100-like device sized to the host.
func DefaultConfig() Config {
	return Config{
		Lanes:          0,
		LaunchOverhead: 10 * time.Microsecond,
		MinGrain:       8,
	}
}

// Stats aggregates device activity.
type Stats struct {
	Kernels   uint64
	WorkItems uint64
	BusyTime  time.Duration
}

// Device is a simulated GPU. It implements feature.Parallelizer, so a
// tracker hands it directly to the extraction and search-local-points
// stages.
type Device struct {
	cfg   Config
	sem   chan struct{} // lane tokens (spatial sharing)
	mu    sync.Mutex
	stats Stats

	kernels   atomic.Uint64
	workItems atomic.Uint64
	wallNS    atomic.Int64 // cumulative wall-clock kernel time
	modelNS   atomic.Int64 // cumulative modeled device time
}

// NewDevice creates a device with the given config.
func NewDevice(cfg Config) *Device {
	if cfg.Lanes <= 0 {
		cfg.Lanes = runtime.NumCPU()
	}
	if cfg.MinGrain <= 0 {
		cfg.MinGrain = 8
	}
	d := &Device{cfg: cfg, sem: make(chan struct{}, cfg.Lanes)}
	for i := 0; i < cfg.Lanes; i++ {
		d.sem <- struct{}{}
	}
	return d
}

// Lanes returns the number of parallel lanes.
func (d *Device) Lanes() int { return d.cfg.Lanes }

// Run executes n work items as one kernel launch: items are split into
// lane-sized grains that execute concurrently, bounded by the device's
// lane count (shared with all other streams on the device). It
// implements feature.Parallelizer.
//
// Besides executing the work, Run keeps a modeled-time ledger: the
// kernel's serial busy time (sum of per-grain execution times) divided
// by the effective parallelism, plus the launch overhead. On a
// multicore host the modeled time tracks the measured wall time; on a
// constrained host it is what a device with the configured lane count
// would have taken. Counters exposes both so callers can report
// device-accurate stage latencies (see feature.ModeledParallelizer).
func (d *Device) Run(n int, f func(i int)) {
	d.RunTimed(n, f)
}

// RunTimed executes one kernel like Run and returns its (wall,
// modeled) cost, so a scheduler multiplexing the device across many
// streams can attribute the batch's time to the stream that submitted
// it (feature.TimedParallelizer). The cumulative Counters ledger is
// still updated.
func (d *Device) RunTimed(n int, f func(i int)) (wallDur, modeledDur time.Duration) {
	if n <= 0 {
		return 0, 0
	}
	start := time.Now()
	d.kernels.Add(1)
	d.workItems.Add(uint64(n))
	if d.cfg.LaunchOverhead > 0 {
		// Model the launch handoff as real latency: a calibrated spin
		// (sleep granularity on Linux is too coarse for ~10 us).
		spinFor(d.cfg.LaunchOverhead)
	}
	grain := (n + d.cfg.Lanes - 1) / d.cfg.Lanes
	if grain < d.cfg.MinGrain {
		grain = d.cfg.MinGrain
	}
	var wg sync.WaitGroup
	var busyNS atomic.Int64
	grains := 0
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		grains++
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Acquire a lane (spatial sharing across streams).
			<-d.sem
			defer func() { d.sem <- struct{}{} }()
			g0 := time.Now()
			for i := lo; i < hi; i++ {
				f(i)
			}
			busyNS.Add(int64(time.Since(g0)))
		}(lo, hi)
	}
	wg.Wait()
	wall := time.Since(start)
	factor := grains
	if factor > d.cfg.Lanes {
		factor = d.cfg.Lanes
	}
	if factor < 1 {
		factor = 1
	}
	modeled := int64(d.cfg.LaunchOverhead) + busyNS.Load()/int64(factor)
	d.wallNS.Add(int64(wall))
	d.modelNS.Add(modeled)
	d.mu.Lock()
	d.stats.BusyTime += wall
	d.mu.Unlock()
	return wall, time.Duration(modeled)
}

// Counters returns the cumulative (wall, modeled) kernel time. It
// implements feature.ModeledParallelizer.
func (d *Device) Counters() (wall, modeled time.Duration) {
	return time.Duration(d.wallNS.Load()), time.Duration(d.modelNS.Load())
}

// Stats returns a snapshot of device activity.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Kernels = d.kernels.Load()
	s.WorkItems = d.workItems.Load()
	return s
}

func (d *Device) String() string {
	return fmt.Sprintf("gpu(lanes=%d, launch=%v)", d.cfg.Lanes, d.cfg.LaunchOverhead)
}

// spinFor busy-waits for approximately the given duration.
func spinFor(dur time.Duration) {
	end := time.Now().Add(dur)
	for time.Now().Before(end) {
	}
}

// Slice is a GSlice-style fractional share of a device: a stream that
// may use at most a fraction of the device's lanes at once, giving
// each client process predictable service while sharing the hardware
// (the paper cites GSlice [19] for this spatio-temporal sharing).
type Slice struct {
	dev     *Device
	lanes   int
	sem     chan struct{}
	wallNS  atomic.Int64
	modelNS atomic.Int64
}

// NewSlice carves a share of the device with the given number of
// lanes (clamped to [1, device lanes]).
func (d *Device) NewSlice(lanes int) *Slice {
	if lanes < 1 {
		lanes = 1
	}
	if lanes > d.cfg.Lanes {
		lanes = d.cfg.Lanes
	}
	s := &Slice{dev: d, lanes: lanes, sem: make(chan struct{}, lanes)}
	for i := 0; i < lanes; i++ {
		s.sem <- struct{}{}
	}
	return s
}

// Lanes returns the slice's lane budget.
func (s *Slice) Lanes() int { return s.lanes }

// Run executes a kernel within the slice's lane budget; the underlying
// device lanes are still shared with other slices, so contention
// appears as queueing, exactly like temporal sharing on a real GPU.
func (s *Slice) Run(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	start := time.Now()
	s.dev.kernels.Add(1)
	s.dev.workItems.Add(uint64(n))
	if s.dev.cfg.LaunchOverhead > 0 {
		spinFor(s.dev.cfg.LaunchOverhead)
	}
	grain := (n + s.lanes - 1) / s.lanes
	if grain < s.dev.cfg.MinGrain {
		grain = s.dev.cfg.MinGrain
	}
	var wg sync.WaitGroup
	var busyNS atomic.Int64
	grains := 0
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		grains++
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			<-s.sem // slice budget
			defer func() { s.sem <- struct{}{} }()
			<-s.dev.sem // physical lane
			defer func() { s.dev.sem <- struct{}{} }()
			g0 := time.Now()
			for i := lo; i < hi; i++ {
				f(i)
			}
			busyNS.Add(int64(time.Since(g0)))
		}(lo, hi)
	}
	wg.Wait()
	factor := grains
	if factor > s.lanes {
		factor = s.lanes
	}
	if factor < 1 {
		factor = 1
	}
	s.wallNS.Add(int64(time.Since(start)))
	s.modelNS.Add(int64(s.dev.cfg.LaunchOverhead) + busyNS.Load()/int64(factor))
}

// Counters returns the slice's cumulative (wall, modeled) kernel time.
func (s *Slice) Counters() (wall, modeled time.Duration) {
	return time.Duration(s.wallNS.Load()), time.Duration(s.modelNS.Load())
}
