package gpu

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"slamshare/internal/dataset"

	"slamshare/internal/camera"
	"slamshare/internal/feature"
)

func TestRunExecutesAllItems(t *testing.T) {
	d := NewDevice(Config{Lanes: 4, LaunchOverhead: 0, MinGrain: 2})
	var hits [100]int32
	d.Run(100, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d executed %d times", i, h)
		}
	}
	d.Run(0, func(i int) { t.Error("zero-item kernel ran work") })
}

func TestRunActuallyParallel(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("single-core host")
	}

	d := NewDevice(Config{Lanes: runtime.NumCPU(), LaunchOverhead: 0, MinGrain: 1})
	var peak, cur atomic.Int32
	d.Run(runtime.NumCPU()*2, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
	})
	if peak.Load() < 2 {
		t.Errorf("peak concurrency %d, expected >= 2", peak.Load())
	}
}

func TestDeviceSpeedsUpExtraction(t *testing.T) {
	seq := dataset.MH04(camera.Stereo)
	frame := seq.Frame(0)
	cfg := feature.DefaultConfig()
	cpu := &feature.Extractor{Cfg: cfg, Par: feature.SerialRunner{}}
	dev := NewDevice(Config{Lanes: 8, LaunchOverhead: 10 * time.Microsecond, MinGrain: 8})
	gpuEx := &feature.Extractor{Cfg: cfg, Par: dev}

	// Warm up both paths.
	cpu.Extract(frame)
	gpuEx.Extract(frame)

	const reps = 5
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		cpu.Extract(frame)
	}
	cpuDur := time.Since(t0) / reps

	w0, m0 := dev.Counters()
	t1 := time.Now()
	for i := 0; i < reps; i++ {
		gpuEx.Extract(frame)
	}
	wall := time.Since(t1) / reps
	w1, m1 := dev.Counters()
	// Device-accurate extraction time: wall outside kernels + modeled
	// kernel time (what the tracker's stage timer reports).
	modeled := wall - (w1-w0)/reps + (m1-m0)/reps
	t.Logf("extraction: cpu %v, gpu modeled %v (%.1fx)", cpuDur, modeled, float64(cpuDur)/float64(modeled))
	// The paper reports a >50%% reduction on stereo; the modeled device
	// must at least show a clear win.
	if float64(modeled) > 0.75*float64(cpuDur) {
		t.Errorf("GPU path not faster: cpu %v vs modeled %v", cpuDur, modeled)
	}
	// Results must be identical regardless of execution order.
	a := cpu.Extract(frame)
	b := gpuEx.Extract(frame)
	if len(a) != len(b) {
		t.Fatalf("cpu %d keypoints vs gpu %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("keypoint %d differs between cpu and gpu paths", i)
		}
	}
}

func TestCountersMonotonic(t *testing.T) {
	d := NewDevice(Config{Lanes: 4, LaunchOverhead: 0, MinGrain: 1})
	w0, m0 := d.Counters()
	d.Run(50, func(i int) { time.Sleep(10 * time.Microsecond) })
	w1, m1 := d.Counters()
	if w1 <= w0 || m1 <= m0 {
		t.Errorf("counters did not advance: wall %v->%v modeled %v->%v", w0, w1, m0, m1)
	}
	// With 4 lanes the modeled time must be well under the serial time
	// (50 x 10us = 500us serial; modeled ~125us + overheads).
	if m1-m0 > (w1 - w0) {
		t.Errorf("modeled %v exceeds wall %v", m1-m0, w1-w0)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := NewDevice(Config{Lanes: 2, LaunchOverhead: 0, MinGrain: 1})
	d.Run(10, func(i int) {})
	d.Run(5, func(i int) {})
	s := d.Stats()
	if s.Kernels != 2 {
		t.Errorf("kernels = %d", s.Kernels)
	}
	if s.WorkItems != 15 {
		t.Errorf("work items = %d", s.WorkItems)
	}
}

func TestSliceBoundsConcurrency(t *testing.T) {
	d := NewDevice(Config{Lanes: 8, LaunchOverhead: 0, MinGrain: 1})
	s := d.NewSlice(2)
	var peak, cur atomic.Int32
	s.Run(16, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	})
	if peak.Load() > 2 {
		t.Errorf("slice exceeded its lane budget: peak %d", peak.Load())
	}
}

func TestSliceClamping(t *testing.T) {
	d := NewDevice(Config{Lanes: 4, LaunchOverhead: 0, MinGrain: 1})
	if s := d.NewSlice(0); s.Lanes() != 1 {
		t.Errorf("zero-lane slice = %d lanes", s.Lanes())
	}
	if s := d.NewSlice(100); s.Lanes() != 4 {
		t.Errorf("oversized slice = %d lanes", s.Lanes())
	}
}

func TestSlicesShareDevice(t *testing.T) {
	// Two slices running concurrently must both finish — no deadlock on
	// the shared physical lanes.
	d := NewDevice(Config{Lanes: 2, LaunchOverhead: 0, MinGrain: 1})
	s1 := d.NewSlice(2)
	s2 := d.NewSlice(2)
	done := make(chan struct{}, 2)
	for _, s := range []*Slice{s1, s2} {
		go func(s *Slice) {
			s.Run(20, func(i int) { time.Sleep(100 * time.Microsecond) })
			done <- struct{}{}
		}(s)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("slices deadlocked on shared device")
		}
	}
}

func TestDefaultConfigSized(t *testing.T) {
	d := NewDevice(DefaultConfig())
	if d.Lanes() != runtime.NumCPU() {
		t.Errorf("default lanes = %d, want NumCPU", d.Lanes())
	}
	if d.String() == "" {
		t.Error("empty String()")
	}
}
