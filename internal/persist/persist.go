package persist

import (
	"os"
	"sync"
	"time"

	"slamshare/internal/holo"
	"slamshare/internal/metrics"
	"slamshare/internal/obs"
	"slamshare/internal/smap"
	"slamshare/internal/wire"
)

// Options configures a persistence manager.
type Options struct {
	// Dir is the checkpoint + journal directory.
	Dir string
	// CheckpointEvery is the background snapshot interval. Zero means
	// the 30 s default; negative disables the ticker (checkpoints then
	// happen only through CheckpointNow).
	CheckpointEvery time.Duration
	// Fsync syncs every journal batch to disk. Off by default: the
	// journal write itself survives a process crash, and AR sessions
	// care about server crashes far more than kernel ones.
	Fsync bool
	// KeepCheckpoints is how many recent checkpoints survive pruning
	// (default 2, so a corrupt newest snapshot still has a fallback).
	KeepCheckpoints int
	// Obs, when non-nil, records persistence spans: "wal.append" per
	// drained journal batch (on the writer goroutine, never the hot
	// path) and "persist.checkpoint" per snapshot rotation.
	Obs *obs.Tracer
}

// DefaultCheckpointEvery is the background snapshot interval when
// Options leaves it zero.
const DefaultCheckpointEvery = 30 * time.Second

// Stats exposes the persistence counters and latency recorders the
// evaluation reads: checkpoint duration, journal throughput, replay
// time, and the recovery-time ATE delta.
type Stats struct {
	Checkpoints      metrics.Counter
	CheckpointBytes  metrics.Counter
	JournalRecords   metrics.Counter
	JournalBytes     metrics.Counter
	ReplayedRecords  metrics.Counter
	CheckpointLat    metrics.Latencies
	ReplayLat        metrics.Latencies
	RecoveryATEDelta metrics.Gauge
}

// Manager owns the durability machinery of one server: it observes the
// global map through the journal and snapshots it on a background
// goroutine. All I/O is off the tracking/merge hot path — mutation
// callbacks only encode into an in-memory batch.
type Manager struct {
	opts    Options
	m       *smap.Map
	anchors *holo.Registry
	lock    *sync.RWMutex
	journal *Journal
	stats   *Stats
	start   time.Time
	stCkpt  *obs.Stage

	// cpMu serializes checkpoints (ticker vs explicit CheckpointNow).
	cpMu sync.Mutex

	tick *time.Ticker
	quit chan struct{}
	done chan struct{}
}

// Open starts persistence for the given map and anchor registry,
// journaling from lastSeq (the LastSeq of a preceding Recover, or 0
// for a fresh session). lock, when non-nil, is read-held while the
// checkpoint snapshot is encoded — pass the same mutex that guards map
// compound operations (the server's global-map lock) so snapshots
// never interleave with a half-applied merge.
func Open(opts Options, m *smap.Map, anchors *holo.Registry, lastSeq uint64, lock *sync.RWMutex) (*Manager, error) {
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	if opts.KeepCheckpoints <= 0 {
		opts.KeepCheckpoints = 2
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	stats := &Stats{}
	j, err := openJournal(opts.Dir, lastSeq, opts.Fsync, stats)
	if err != nil {
		return nil, err
	}
	if opts.Obs != nil {
		j.stWAL = opts.Obs.Stage("wal.append")
	}
	mgr := &Manager{
		opts:    opts,
		m:       m,
		anchors: anchors,
		lock:    lock,
		journal: j,
		stats:   stats,
		start:   time.Now(),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if opts.Obs != nil {
		mgr.stCkpt = opts.Obs.Stage("persist.checkpoint")
	}
	m.SetObserver(j)
	if opts.CheckpointEvery > 0 {
		mgr.tick = time.NewTicker(opts.CheckpointEvery)
		go mgr.tickLoop()
	} else {
		close(mgr.done)
	}
	return mgr, nil
}

func (mgr *Manager) tickLoop() {
	defer close(mgr.done)
	for {
		select {
		case <-mgr.tick.C:
			mgr.CheckpointNow()
		case <-mgr.quit:
			return
		}
	}
}

// Journal returns the manager's write-ahead journal, for wiring into a
// merge.Merger (it implements merge.Journal) or flushing in tests.
func (mgr *Manager) Journal() *Journal { return mgr.journal }

// Stats returns the persistence counters.
func (mgr *Manager) Stats() *Stats { return mgr.stats }

// JournalRate returns average journal throughput in bytes/sec since
// the manager opened.
func (mgr *Manager) JournalRate() float64 {
	elapsed := time.Since(mgr.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(mgr.stats.JournalBytes.Load()) / elapsed
}

// CheckpointNow takes a snapshot: rotate the journal at the current
// sequence, encode the map and anchors, durably write the checkpoint,
// then prune journals and checkpoints the snapshot supersedes. Safe to
// call concurrently with map mutations; callers on the hot path should
// not call it (the ticker does).
func (mgr *Manager) CheckpointNow() error {
	mgr.cpMu.Lock()
	defer mgr.cpMu.Unlock()
	t0 := time.Now()
	sp := mgr.stCkpt.Start(0, uint64(mgr.stats.Checkpoints.Load()+1))
	defer sp.End()

	// Drain the map's async observer queue first so the rotation
	// sequence covers every mutation the snapshot will contain.
	mgr.m.FlushEvents()
	seq, err := mgr.journal.rotate()
	if err != nil {
		return err
	}
	if mgr.lock != nil {
		mgr.lock.RLock()
	}
	mapBlob := wire.EncodeMap(mgr.m)
	var holoBlob []byte
	if mgr.anchors != nil {
		holoBlob = mgr.anchors.Encode()
	}
	if mgr.lock != nil {
		mgr.lock.RUnlock()
	}

	n, err := writeCheckpoint(mgr.opts.Dir, seq, mapBlob, holoBlob)
	if err != nil {
		return err
	}
	mgr.stats.Checkpoints.Inc()
	mgr.stats.CheckpointBytes.Add(int64(n))
	mgr.stats.CheckpointLat.Add(time.Since(t0))
	mgr.prune(seq)
	return nil
}

// prune deletes checkpoints beyond the retention count and journal
// files wholly covered by the newest checkpoint. Best effort: an
// undeletable file only wastes disk.
func (mgr *Manager) prune(newSeq uint64) {
	if ckpts, err := listCheckpoints(mgr.opts.Dir); err == nil {
		for i := 0; i < len(ckpts)-mgr.opts.KeepCheckpoints; i++ {
			os.Remove(checkpointPath(mgr.opts.Dir, ckpts[i]))
		}
	}
	if wals, err := listJournals(mgr.opts.Dir); err == nil {
		for _, base := range wals {
			if base < newSeq {
				os.Remove(journalPath(mgr.opts.Dir, base))
			}
		}
	}
}

// Flush synchronously drains the map's observer event queue and the
// queued journal records to disk. Tests and graceful shutdown use it;
// the hot path never waits on it.
func (mgr *Manager) Flush() error {
	mgr.m.FlushEvents()
	return mgr.journal.Flush()
}

// Close detaches the observer, stops the checkpoint ticker, and
// flushes and closes the journal. It deliberately does NOT write a
// final checkpoint: restart then always exercises the journal replay
// path, and the on-disk state matches what a crash at the same moment
// would have left.
func (mgr *Manager) Close() error {
	mgr.m.SetObserver(nil)
	if mgr.tick != nil {
		mgr.tick.Stop()
	}
	close(mgr.quit)
	<-mgr.done
	return mgr.journal.close()
}
