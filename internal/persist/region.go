package persist

import (
	"fmt"
	"os"
	"path/filepath"

	"slamshare/internal/smap"
)

// Evicted-region files. When the lifecycle manager drops a cold
// covisibility cluster from memory it serializes the cluster with
// wire.EncodeRegion and parks the blob here, next to the checkpoints
// and journals, as region-<id>.rgn. The write is atomic (temp, fsync,
// rename) like a checkpoint: a crash mid-eviction leaves either no
// region file — the WAL never recorded the eviction, so recovery keeps
// the entities live — or a complete one.

// RegionPath returns the on-disk path of an evicted region file.
func RegionPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("region-%016d.rgn", id))
}

// WriteRegion durably writes one evicted-region blob.
func WriteRegion(dir string, id uint64, blob []byte) error {
	tmp, err := os.CreateTemp(dir, "region-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), RegionPath(dir, id))
}

// ReadRegion reads one evicted-region blob; validation is the
// decoder's job (wire.DecodeRegion).
func ReadRegion(dir string, id uint64) ([]byte, error) {
	return os.ReadFile(RegionPath(dir, id))
}

// RemoveRegion deletes a region file after a successful reload. Best
// effort: a leftover file only wastes disk, and recovery trusts the
// WAL's evicted-region set over the directory contents.
func RemoveRegion(dir string, id uint64) {
	os.Remove(RegionPath(dir, id))
}

// ListRegions returns the region ids with files on disk, ascending.
func ListRegions(dir string) ([]uint64, error) {
	return listSeqFiles(dir, "region-", ".rgn")
}

// ---- journal records ----

// RegionEvicted journals a cold-region eviction boundary: the region
// file id plus the erased entity ids. The erases themselves flow
// through the observer as their own records (so replay compacts the
// map identically); this record is what lets recovery rebuild the
// lifecycle manager's evicted-region set and serve reloads after a
// restart.
func (j *Journal) RegionEvicted(id uint64, kfIDs, mpIDs []smap.ID) {
	b := make([]byte, 0, 8+4+len(kfIDs)*8+4+len(mpIDs)*8)
	b = appendU64(b, id)
	b = appendU32(b, uint32(len(kfIDs)))
	for _, kf := range kfIDs {
		b = appendU64(b, kf)
	}
	b = appendU32(b, uint32(len(mpIDs)))
	for _, mp := range mpIDs {
		b = appendU64(b, mp)
	}
	j.append(opEvictRegion, b)
}

// RegionReloaded journals that a region returned to memory; the
// re-inserted entities follow as their own records.
func (j *Journal) RegionReloaded(id uint64) {
	j.append(opReloadRegion, appendU64(nil, id))
}
