// Package persist makes the shared-memory global map durable without
// touching the zero-copy hot path: an append-only write-ahead journal
// of map mutations (keyframe insert, map-point add/fuse/cull, merge
// applied, pose-graph correction) feeds crash recovery, and periodic
// asynchronous checkpoints (internal/wire snapshots of the arena-
// resident map plus the hologram anchor registry) bound replay time
// and let the journal be truncated.
//
// The paper's design (§4.3) keeps the global map in shared memory with
// zero serialization on the merge path — which also means one server
// crash destroys the map every client spent minutes building. This
// package restores the map on restart: load the latest checkpoint,
// replay the journal tail, rebuild the covisibility and BoW indexes,
// and returning clients resume by BoW relocalization against the
// restored map instead of starting from scratch.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"

	"slamshare/internal/geom"
	"slamshare/internal/obs"
	"slamshare/internal/smap"
	"slamshare/internal/wire"
)

// ErrCorrupt reports an undecodable journal or checkpoint.
var ErrCorrupt = errors.New("persist: corrupt file")

// Journal file layout:
//
//	header: u32 magic "SLWJ" | u8 version | u64 baseSeq
//	record: u32 len | u32 crc32(rest) | u64 seq | u8 op | body
//
// Records are appended asynchronously: the map delivers mutation
// snapshots to the observer callbacks on its notifier goroutine
// (outside every map lock), the callbacks encode records into memory,
// and a writer goroutine drains batches to disk, so the tracking/merge
// hot path never blocks on encoding or I/O. A torn tail (crash
// mid-write) fails the CRC and replay stops there — exactly the WAL
// contract.
const (
	journalMagic        = 0x534C574A // "SLWJ"
	journalVersion byte = 1

	journalHeaderBytes = 4 + 1 + 8
	recordHeaderBytes  = 4 + 4 + 8 + 1
	maxRecordBytes     = 64 << 20
)

// Journal record op codes.
const (
	opKeyFrame byte = iota + 1
	opMapPoint
	opEraseKeyFrame
	opEraseMapPoint
	opObservation
	opFuse
	opPoses
	opMerge
	opEvictRegion
	opReloadRegion
	// opShardImport / opShardImportEnd bracket a cross-shard boundary
	// import. The insert records between them are ordinary entity
	// records; the bracket is what recovery needs to tell a committed
	// import from a half-merge the crash interrupted (see Recover).
	opShardImport
	opShardImportEnd
)

// Journal is the write-ahead log of global-map mutations. It
// implements smap.Observer (per-entity inserts, erases, observation
// bindings) and merge.Journal (fusions, merge boundaries, pose
// corrections); records are sequenced under an internal mutex and
// flushed by a background goroutine.
type Journal struct {
	dir   string
	fsync bool
	stats *Stats
	// stWAL, when non-nil, records a "wal.append" span per drained
	// batch (seq = latest record sequence covered by the batch). The
	// spans live on the writer goroutine: the hot-path append only
	// queues bytes.
	stWAL *obs.Stage

	mu      sync.Mutex // guards seq, pending, f, closed
	f       *os.File
	seq     uint64
	pending []byte
	closed  bool
	err     error

	// wmu serializes the actual file writes so Flush and the writer
	// goroutine drain batches in order.
	wmu  sync.Mutex
	wake chan struct{}
	quit chan struct{}
	done chan struct{}
}

// openJournal starts a new journal file in dir whose records continue
// from lastSeq.
func openJournal(dir string, lastSeq uint64, fsync bool, stats *Stats) (*Journal, error) {
	j := &Journal{
		dir:   dir,
		fsync: fsync,
		stats: stats,
		seq:   lastSeq,
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if err := j.openFileLocked(lastSeq); err != nil {
		return nil, err
	}
	go j.writeLoop()
	return j, nil
}

func journalPath(dir string, baseSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%016d.wal", baseSeq))
}

// openFileLocked creates the journal file for baseSeq and writes its
// header. Callers hold j.mu (or have exclusive access during init).
func (j *Journal) openFileLocked(baseSeq uint64) error {
	f, err := os.OpenFile(journalPath(j.dir, baseSeq), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [journalHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], journalMagic)
	hdr[4] = journalVersion
	binary.LittleEndian.PutUint64(hdr[5:], baseSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	j.f = f
	return nil
}

// Seq returns the sequence number of the latest record.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Err returns the first write error the journal hit, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// append sequences one record and queues it for the writer goroutine.
// It does no I/O: this is the only work mutation hot paths pay.
func (j *Journal) append(op byte, body []byte) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.seq++
	n := uint32(8 + 1 + len(body))
	var rec [recordHeaderBytes]byte
	binary.LittleEndian.PutUint32(rec[0:], n)
	binary.LittleEndian.PutUint64(rec[8:], j.seq)
	rec[16] = op
	crc := crc32.ChecksumIEEE(rec[8:])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	binary.LittleEndian.PutUint32(rec[4:], crc)
	j.pending = append(j.pending, rec[:]...)
	j.pending = append(j.pending, body...)
	j.mu.Unlock()
	if j.stats != nil {
		j.stats.JournalRecords.Inc()
		j.stats.JournalBytes.Add(int64(recordHeaderBytes + len(body)))
	}
	select {
	case j.wake <- struct{}{}:
	default:
	}
}

// writeLoop drains pending batches to the journal file.
func (j *Journal) writeLoop() {
	defer close(j.done)
	for {
		select {
		case <-j.wake:
			j.drain()
		case <-j.quit:
			j.drain()
			return
		}
	}
}

// drain writes everything queued so far. Write order is preserved by
// taking wmu before snapshotting pending.
func (j *Journal) drain() {
	j.wmu.Lock()
	defer j.wmu.Unlock()
	j.mu.Lock()
	buf := j.pending
	j.pending = nil
	f := j.f
	seq := j.seq
	j.mu.Unlock()
	if len(buf) == 0 || f == nil {
		return
	}
	sp := j.stWAL.Start(0, seq)
	defer sp.End()
	_, err := f.Write(buf)
	if err == nil && j.fsync {
		err = f.Sync()
	}
	if err != nil {
		j.mu.Lock()
		if j.err == nil {
			j.err = err
		}
		j.mu.Unlock()
	}
}

// Flush synchronously writes all queued records to disk.
func (j *Journal) Flush() error {
	j.drain()
	return j.Err()
}

// rotate flushes and switches to a fresh journal file based at the
// current sequence number, returning that base. The checkpointer calls
// it so the old file can be deleted once the snapshot is durable.
func (j *Journal) rotate() (uint64, error) {
	j.wmu.Lock()
	defer j.wmu.Unlock()
	j.mu.Lock()
	buf := j.pending
	j.pending = nil
	f := j.f
	base := j.seq
	j.mu.Unlock()
	if f != nil {
		if len(buf) > 0 {
			if _, err := f.Write(buf); err != nil {
				return 0, err
			}
		}
		if j.fsync {
			f.Sync()
		}
		f.Close()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return base, nil
	}
	if err := j.openFileLocked(base); err != nil {
		j.f = nil
		if j.err == nil {
			j.err = err
		}
		return 0, err
	}
	return base, nil
}

// close stops the writer goroutine and closes the file after a final
// drain. Queued records are durable on return.
func (j *Journal) close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	close(j.quit)
	<-j.done
	j.mu.Lock()
	f := j.f
	j.f = nil
	err := j.err
	j.mu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ---- encoding helpers ----

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
func appendPose(b []byte, p geom.SE3) []byte {
	b = appendF64(b, p.R.W)
	b = appendF64(b, p.R.X)
	b = appendF64(b, p.R.Y)
	b = appendF64(b, p.R.Z)
	return appendVec3(b, p.T)
}
func appendVec3(b []byte, v geom.Vec3) []byte {
	b = appendF64(b, v.X)
	b = appendF64(b, v.Y)
	return appendF64(b, v.Z)
}

type byteReader struct {
	buf []byte
	off int
	err bool
}

func (r *byteReader) u32() uint32 {
	if r.err || r.off+4 > len(r.buf) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}
func (r *byteReader) u64() uint64 {
	if r.err || r.off+8 > len(r.buf) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}
func (r *byteReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *byteReader) pose() geom.SE3 {
	var p geom.SE3
	p.R.W = r.f64()
	p.R.X = r.f64()
	p.R.Y = r.f64()
	p.R.Z = r.f64()
	p.T = r.vec3()
	return p
}
func (r *byteReader) vec3() geom.Vec3 {
	return geom.Vec3{X: r.f64(), Y: r.f64(), Z: r.f64()}
}

// ---- smap.Observer ----

// KeyFrameAdded journals a keyframe insert with its full payload.
func (j *Journal) KeyFrameAdded(kf *smap.KeyFrame) { j.append(opKeyFrame, wire.EncodeKeyFrame(kf)) }

// MapPointAdded journals a map-point insert with its full payload.
func (j *Journal) MapPointAdded(mp *smap.MapPoint) { j.append(opMapPoint, wire.EncodeMapPoint(mp)) }

// KeyFrameErased journals a keyframe cull.
func (j *Journal) KeyFrameErased(id smap.ID) { j.append(opEraseKeyFrame, appendU64(nil, id)) }

// MapPointErased journals a map-point cull.
func (j *Journal) MapPointErased(id smap.ID) { j.append(opEraseMapPoint, appendU64(nil, id)) }

// ObservationAdded journals a keypoint-to-map-point binding.
func (j *Journal) ObservationAdded(kfID, mpID smap.ID, kpIdx int) {
	b := make([]byte, 0, 20)
	b = appendU64(b, kfID)
	b = appendU64(b, mpID)
	b = appendU32(b, uint32(kpIdx))
	j.append(opObservation, b)
}

// ---- merge.Journal ----

// MergeApplied journals a merge boundary (informational: the transform
// and insert sizes; the inserted entities follow as their own records).
func (j *Journal) MergeApplied(tf geom.Sim3, insertedKFs, insertedMPs int) {
	b := make([]byte, 0, 8*8+8)
	b = appendF64(b, tf.R.W)
	b = appendF64(b, tf.R.X)
	b = appendF64(b, tf.R.Y)
	b = appendF64(b, tf.R.Z)
	b = appendVec3(b, tf.T)
	b = appendF64(b, tf.S)
	b = appendU32(b, uint32(insertedKFs))
	b = appendU32(b, uint32(insertedMPs))
	j.append(opMerge, b)
}

// PointsFused journals a duplicate-point fusion; replay redirects the
// client point's bindings to the global point before erasing it.
func (j *Journal) PointsFused(clientPt, globalPt smap.ID) {
	b := make([]byte, 0, 16)
	b = appendU64(b, clientPt)
	b = appendU64(b, globalPt)
	j.append(opFuse, b)
}

// ---- cross-shard import brackets ----

// ShardImportBegin journals the start of a cross-shard boundary
// import: the handoff epoch and the migrating client. Every entity
// record that follows, up to the matching ShardImportEnd, belongs to
// the import transaction; if the server dies before the end record is
// durable, recovery rolls the whole import back by discarding the
// journal from this record on (see Recover's import horizon).
func (j *Journal) ShardImportBegin(epoch uint64, client uint32) {
	b := make([]byte, 0, 12)
	b = appendU64(b, epoch)
	b = appendU32(b, client)
	j.append(opShardImport, b)
}

// ShardImportEnd journals the end of a cross-shard boundary import,
// committed or rolled back live. Either way the bracket is closed: the
// records between the markers are an accurate history (a live rollback
// journals its own compensating erase/restore records), so recovery
// must NOT discard them.
func (j *Journal) ShardImportEnd(epoch uint64, committed bool) {
	b := make([]byte, 0, 9)
	b = appendU64(b, epoch)
	if committed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	j.append(opShardImportEnd, b)
}

// PosesCorrected journals the post-adjustment poses of a merge's seam
// BA and essential-graph optimization.
func (j *Journal) PosesCorrected(kfPoses map[smap.ID]geom.SE3, mpPositions map[smap.ID]geom.Vec3) {
	b := make([]byte, 0, 8+len(kfPoses)*64+len(mpPositions)*32)
	b = appendU32(b, uint32(len(kfPoses)))
	for id, p := range kfPoses {
		b = appendU64(b, id)
		b = appendPose(b, p)
	}
	b = appendU32(b, uint32(len(mpPositions)))
	for id, v := range mpPositions {
		b = appendU64(b, id)
		b = appendVec3(b, v)
	}
	j.append(opPoses, b)
}
