package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"slamshare/internal/holo"
	"slamshare/internal/smap"
	"slamshare/internal/wire"

	"slamshare/internal/bow"
)

// Checkpoint file layout:
//
//	u32 magic "SLCP" | u8 version | u64 seq
//	u32 mapLen  | wire.EncodeMap blob
//	u32 holoLen | holo.Registry.Encode blob
//	u32 crc32 over everything before it
//
// seq is the journal sequence number the snapshot is consistent with:
// recovery replays only journal records with seq greater than it.
// Because the map keeps mutating while the snapshot is encoded, the
// snapshot may already include a few records with later sequence
// numbers; replaying those is harmless (inserts and pose writes are
// idempotent, erases of absent entities are no-ops).
const (
	ckptMagic        = 0x534C4350 // "SLCP"
	ckptVersion byte = 1

	maxCheckpointBytes = 1 << 32
)

func checkpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016d.ckpt", seq))
}

// writeCheckpoint atomically persists a snapshot: write to a temp file,
// fsync, rename. A crash mid-write leaves no partial checkpoint behind
// under the durable name.
func writeCheckpoint(dir string, seq uint64, mapBlob, holoBlob []byte) (int, error) {
	buf := make([]byte, 0, 4+1+8+4+len(mapBlob)+4+len(holoBlob)+4)
	buf = binary.LittleEndian.AppendUint32(buf, ckptMagic)
	buf = append(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(mapBlob)))
	buf = append(buf, mapBlob...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(holoBlob)))
	buf = append(buf, holoBlob...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	tmp, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), checkpointPath(dir, seq)); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// readCheckpoint validates and decodes one checkpoint file.
func readCheckpoint(path string, voc *bow.Vocabulary) (m *smap.Map, anchors *holo.Registry, seq uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(data) < 4+1+8+4+4+4 || len(data) > maxCheckpointBytes {
		return nil, nil, 0, fmt.Errorf("%w: checkpoint %s: bad size %d", ErrCorrupt, filepath.Base(path), len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, nil, 0, fmt.Errorf("%w: checkpoint %s: crc mismatch", ErrCorrupt, filepath.Base(path))
	}
	if binary.LittleEndian.Uint32(body) != ckptMagic {
		return nil, nil, 0, fmt.Errorf("%w: checkpoint %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	if body[4] != ckptVersion {
		return nil, nil, 0, fmt.Errorf("%w: checkpoint %s: version %d", wire.ErrVersion, filepath.Base(path), body[4])
	}
	seq = binary.LittleEndian.Uint64(body[5:])
	off := 4 + 1 + 8
	mapLen := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if mapLen < 0 || off+mapLen > len(body) {
		return nil, nil, 0, fmt.Errorf("%w: checkpoint %s: map blob overruns file", ErrCorrupt, filepath.Base(path))
	}
	m, err = wire.DecodeMap(body[off:off+mapLen], voc)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("checkpoint %s: %w", filepath.Base(path), err)
	}
	off += mapLen
	if off+4 > len(body) {
		return nil, nil, 0, fmt.Errorf("%w: checkpoint %s: missing anchor section", ErrCorrupt, filepath.Base(path))
	}
	holoLen := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if holoLen < 0 || off+holoLen > len(body) {
		return nil, nil, 0, fmt.Errorf("%w: checkpoint %s: anchor blob overruns file", ErrCorrupt, filepath.Base(path))
	}
	if holoLen == 0 {
		// Sessions without an anchor registry checkpoint an empty blob.
		anchors = holo.NewRegistry()
	} else if anchors, err = holo.Decode(body[off : off+holoLen]); err != nil {
		return nil, nil, 0, fmt.Errorf("checkpoint %s: %w", filepath.Base(path), err)
	}
	return m, anchors, seq, nil
}

// listSeqFiles returns the sequence numbers of files in dir matching
// prefix<16-digit-seq>ext, ascending.
func listSeqFiles(dir, prefix, ext string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
			continue
		}
		mid := name[len(prefix) : len(name)-len(ext)]
		seq, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func listCheckpoints(dir string) ([]uint64, error) { return listSeqFiles(dir, "checkpoint-", ".ckpt") }
func listJournals(dir string) ([]uint64, error)    { return listSeqFiles(dir, "journal-", ".wal") }
