package persist

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"slamshare/internal/bow"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/holo"
	"slamshare/internal/smap"
)

func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		Dir:             t.TempDir(),
		CheckpointEvery: -1, // no ticker; tests checkpoint explicitly
	}
}

func randomKeyFrame(rng *rand.Rand, alloc *smap.IDAllocator, client, nkp int, stamp float64) *smap.KeyFrame {
	kps := make([]feature.Keypoint, nkp)
	for i := range kps {
		var d feature.Descriptor
		for w := range d {
			d[w] = rng.Uint64()
		}
		kps[i] = feature.Keypoint{
			X: rng.Float64() * 700, Y: rng.Float64() * 400,
			Level: rng.Intn(4), Angle: rng.Float64(),
			Score: rng.Float64() * 100, Right: -1, Desc: d,
		}
	}
	return &smap.KeyFrame{
		ID: alloc.Next(), Client: client, Stamp: stamp,
		Tcw: geom.SE3{
			R: geom.QuatFromAxisAngle(geom.Vec3{X: 1, Y: 2, Z: 3}, rng.Float64()),
			T: geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
		},
		Keypoints: kps,
	}
}

func randomMapPoint(rng *rand.Rand, alloc *smap.IDAllocator, client int, ref smap.ID) *smap.MapPoint {
	var d feature.Descriptor
	for w := range d {
		d[w] = rng.Uint64()
	}
	return &smap.MapPoint{
		ID: alloc.Next(), Client: client,
		Pos:    geom.Vec3{X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5, Z: rng.NormFloat64() * 5},
		Desc:   d,
		Normal: geom.Vec3{Z: 1},
		RefKF:  ref,
	}
}

// populate drives nkf keyframes with bound points into a journaled map.
func populate(rng *rand.Rand, m *smap.Map, alloc *smap.IDAllocator, client, nkf, nkp, pointsPer int) {
	for k := 0; k < nkf; k++ {
		kf := randomKeyFrame(rng, alloc, client, nkp, float64(k)/30)
		m.AddKeyFrame(kf)
		for p := 0; p < pointsPer; p++ {
			mp := randomMapPoint(rng, alloc, client, kf.ID)
			m.AddMapPoint(mp)
			m.AddObservation(kf.ID, mp.ID, (p*3)%nkp)
		}
	}
}

// assertMapsEqual compares entity sets, poses, bindings, observations.
func assertMapsEqual(t *testing.T, want, got *smap.Map) {
	t.Helper()
	if got.NKeyFrames() != want.NKeyFrames() || got.NMapPoints() != want.NMapPoints() {
		t.Fatalf("size mismatch: got %d kf / %d mp, want %d kf / %d mp",
			got.NKeyFrames(), got.NMapPoints(), want.NKeyFrames(), want.NMapPoints())
	}
	for _, kf := range want.KeyFrames() {
		g, ok := got.KeyFrame(kf.ID)
		if !ok {
			t.Fatalf("keyframe %d missing", kf.ID)
		}
		if g.Tcw.T.Dist(kf.Tcw.T) > 1e-12 || g.Tcw.R.AngleTo(kf.Tcw.R) > 1e-12 {
			t.Fatalf("keyframe %d pose mismatch", kf.ID)
		}
		if len(g.Keypoints) != len(kf.Keypoints) {
			t.Fatalf("keyframe %d keypoint count", kf.ID)
		}
		for i := range g.MapPoints {
			if g.MapPoints[i] != kf.MapPoints[i] {
				t.Fatalf("keyframe %d binding %d: got %d want %d", kf.ID, i, g.MapPoints[i], kf.MapPoints[i])
			}
		}
	}
	for _, mp := range want.MapPoints() {
		g, ok := got.MapPoint(mp.ID)
		if !ok {
			t.Fatalf("map point %d missing", mp.ID)
		}
		if g.Pos.Dist(mp.Pos) > 1e-12 {
			t.Fatalf("map point %d position", mp.ID)
		}
		if len(g.Obs) != len(mp.Obs) {
			t.Fatalf("map point %d: %d obs, want %d", mp.ID, len(g.Obs), len(mp.Obs))
		}
	}
}

func TestJournalReplayRebuildsMap(t *testing.T) {
	opts := testOptions(t)
	rng := rand.New(rand.NewSource(1))
	m := smap.NewMap(bow.Default())
	mgr, err := Open(opts, m, holo.NewRegistry(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc := smap.NewIDAllocator(1)
	populate(rng, m, alloc, 1, 6, 40, 8)
	// Mix in erases and a fuse so replay covers every op.
	pts := m.MapPoints()
	m.EraseMapPoint(pts[0].ID)
	mgr.Journal().PointsFused(pts[1].ID, pts[2].ID)
	applyFuse(m, pts[1].ID, pts[2].ID)
	kfs := m.KeyFrames()
	m.EraseKeyFrame(kfs[len(kfs)-1].ID)
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close: crash semantics.
	rec, err := Recover(opts.Dir, bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointLoaded {
		t.Error("no checkpoint was written, yet one loaded")
	}
	if rec.ReplayedRecords == 0 {
		t.Fatal("nothing replayed")
	}
	if rec.LastSeq != mgr.Journal().Seq() {
		t.Errorf("LastSeq %d, journal wrote %d", rec.LastSeq, mgr.Journal().Seq())
	}
	assertMapsEqual(t, m, rec.Map)
	mgr.Close()
}

func TestCheckpointAndJournalTail(t *testing.T) {
	opts := testOptions(t)
	rng := rand.New(rand.NewSource(2))
	m := smap.NewMap(bow.Default())
	anchors := holo.NewRegistry()
	anchors.Place("turbine", geom.SE3{T: geom.Vec3{X: 1, Y: 2, Z: 3}}, 1, 0.5)
	anchors.Place("valve", geom.SE3{T: geom.Vec3{X: -2}}, 2, 1.25)
	mgr, err := Open(opts, m, anchors, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc := smap.NewIDAllocator(1)
	populate(rng, m, alloc, 1, 4, 30, 6)
	if err := mgr.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations live only in the journal tail.
	populate(rng, m, alloc, 1, 3, 30, 6)
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(opts.Dir, bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.CheckpointLoaded {
		t.Fatal("checkpoint not loaded")
	}
	if rec.ReplayedRecords == 0 {
		t.Fatal("journal tail not replayed")
	}
	assertMapsEqual(t, m, rec.Map)

	// Anchor registry roundtrips through the checkpoint.
	if rec.Anchors.Len() != 2 {
		t.Fatalf("anchors: got %d, want 2", rec.Anchors.Len())
	}
	a, ok := rec.Anchors.Get(1)
	if !ok || a.Label != "turbine" || a.Pose.T.Dist(geom.Vec3{X: 1, Y: 2, Z: 3}) > 1e-12 {
		t.Fatalf("anchor 1 corrupted: %+v", a)
	}
	// New anchor IDs continue past the restored ones.
	if id := rec.Anchors.Place("new", geom.SE3{}, 1, 2.0); id != 3 {
		t.Errorf("next anchor id = %d, want 3", id)
	}
	mgr.Close()
}

func TestRecoverToleratesTornTail(t *testing.T) {
	opts := testOptions(t)
	rng := rand.New(rand.NewSource(3))
	m := smap.NewMap(bow.Default())
	mgr, err := Open(opts, m, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc := smap.NewIDAllocator(1)
	populate(rng, m, alloc, 1, 5, 30, 6)
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	// Simulate a crash mid-write: chop bytes off the journal tail.
	wals, err := listJournals(opts.Dir)
	if err != nil || len(wals) == 0 {
		t.Fatal("no journal written")
	}
	path := journalPath(opts.Dir, wals[len(wals)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(opts.Dir, bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	// Everything but the torn record survives.
	if rec.Map.NKeyFrames() < m.NKeyFrames()-1 {
		t.Errorf("lost more than the torn record: %d of %d keyframes", rec.Map.NKeyFrames(), m.NKeyFrames())
	}
	if rec.LastSeq >= mgr.Journal().Seq() && rec.Map.NMapPoints() == m.NMapPoints() {
		t.Log("tail cut landed between records; still a valid recovery")
	}
}

func TestRecoverFallsBackPastCorruptCheckpoint(t *testing.T) {
	opts := testOptions(t)
	rng := rand.New(rand.NewSource(4))
	m := smap.NewMap(bow.Default())
	mgr, err := Open(opts, m, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc := smap.NewIDAllocator(1)
	populate(rng, m, alloc, 1, 3, 30, 5)
	if err := mgr.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	firstKFs := m.NKeyFrames()
	populate(rng, m, alloc, 1, 2, 30, 5)
	if err := mgr.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	// Corrupt the newest checkpoint; recovery must fall back to the
	// older one (pruning keeps two).
	ckpts, err := listCheckpoints(opts.Dir)
	if err != nil || len(ckpts) != 2 {
		t.Fatalf("want 2 checkpoints, have %v (err %v)", ckpts, err)
	}
	path := checkpointPath(opts.Dir, ckpts[1])
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	rec, err := Recover(opts.Dir, bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.CheckpointLoaded {
		t.Fatal("fallback checkpoint not loaded")
	}
	if rec.CheckpointSeq != ckpts[0] {
		t.Errorf("loaded checkpoint %d, want fallback %d", rec.CheckpointSeq, ckpts[0])
	}
	if rec.Map.NKeyFrames() < firstKFs {
		t.Errorf("fallback lost data: %d keyframes, want >= %d", rec.Map.NKeyFrames(), firstKFs)
	}
}

func TestRecoverRejectsStaleVersion(t *testing.T) {
	opts := testOptions(t)
	m := smap.NewMap(bow.Default())
	mgr, err := Open(opts, m, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc := smap.NewIDAllocator(1)
	populate(rand.New(rand.NewSource(5)), m, alloc, 1, 2, 20, 4)
	if err := mgr.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	ckpts, _ := listCheckpoints(opts.Dir)
	path := checkpointPath(opts.Dir, ckpts[len(ckpts)-1])
	if _, _, _, err := readCheckpoint(path, bow.Default()); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	data, _ := os.ReadFile(path)
	data[4] = ckptVersion + 1 // version byte after magic; CRC now stale too
	os.WriteFile(path, data, 0o644)
	if _, _, _, err := readCheckpoint(path, bow.Default()); err == nil {
		t.Fatal("future-version checkpoint accepted")
	}

	// Recover treats it as corrupt and starts empty (no fallback left).
	for _, base := range mustJournals(t, opts.Dir) {
		os.Remove(journalPath(opts.Dir, base))
	}
	rec, err := Recover(opts.Dir, bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointLoaded || rec.Map.NKeyFrames() != 0 {
		t.Error("stale checkpoint should be skipped")
	}
}

func mustJournals(t *testing.T, dir string) []uint64 {
	t.Helper()
	wals, err := listJournals(dir)
	if err != nil {
		t.Fatal(err)
	}
	return wals
}

func TestRecoverEmptyDir(t *testing.T) {
	rec, err := Recover(t.TempDir(), bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Map.NKeyFrames() != 0 || rec.CheckpointLoaded || rec.LastSeq != 0 {
		t.Error("empty dir should recover to an empty session")
	}
	if rec.Anchors == nil || rec.Anchors.Len() != 0 {
		t.Error("empty dir should yield an empty registry")
	}
}

func TestCheckpointPrunesOldFiles(t *testing.T) {
	opts := testOptions(t)
	rng := rand.New(rand.NewSource(6))
	m := smap.NewMap(bow.Default())
	mgr, err := Open(opts, m, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc := smap.NewIDAllocator(1)
	for i := 0; i < 4; i++ {
		populate(rng, m, alloc, 1, 1, 20, 4)
		if err := mgr.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	mgr.Close()
	ckpts, _ := listCheckpoints(opts.Dir)
	if len(ckpts) != 2 {
		t.Errorf("pruning kept %d checkpoints, want 2", len(ckpts))
	}
	wals, _ := listJournals(opts.Dir)
	if len(wals) != 1 {
		t.Errorf("pruning kept %d journals, want 1", len(wals))
	}
	if mgr.Stats().Checkpoints.Load() != 4 {
		t.Errorf("checkpoint counter = %d", mgr.Stats().Checkpoints.Load())
	}
}

func TestBackgroundTickerCheckpoints(t *testing.T) {
	opts := testOptions(t)
	opts.CheckpointEvery = 20 * time.Millisecond
	m := smap.NewMap(bow.Default())
	mgr, err := Open(opts, m, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	populate(rand.New(rand.NewSource(7)), m, smap.NewIDAllocator(1), 1, 3, 20, 4)
	deadline := time.Now().Add(2 * time.Second)
	for mgr.Stats().Checkpoints.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if mgr.Stats().Checkpoints.Load() == 0 {
		t.Fatal("ticker never checkpointed")
	}
	rec, err := Recover(opts.Dir, bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	assertMapsEqual(t, m, rec.Map)
}
