package persist

import (
	"math/rand"
	"testing"

	"slamshare/internal/bow"
	"slamshare/internal/holo"
	"slamshare/internal/smap"
)

// TestRecoverRollsBackOpenImportBracket proves cross-shard import
// atomicity at the WAL level: a ShardImportBegin with no matching end
// marker (the server was killed mid boundary-import) makes recovery
// discard the journal from the begin marker on — the half-merge's
// inserts are gone, the pre-import map is intact.
func TestRecoverRollsBackOpenImportBracket(t *testing.T) {
	opts := testOptions(t)
	rng := rand.New(rand.NewSource(7))
	m := smap.NewMap(bow.Default())
	mgr, err := Open(opts, m, holo.NewRegistry(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc := smap.NewIDAllocator(1)
	populate(rng, m, alloc, 1, 3, 40, 6)
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	baseKF, baseMP := m.NKeyFrames(), m.NMapPoints()

	// An import transaction that never completes: begin marker, two
	// keyframes' worth of inserts, then the "crash" (abandon, no Close,
	// no end marker).
	mgr.Journal().ShardImportBegin(5, 2)
	imp := smap.NewIDAllocator(9)
	populate(rng, m, imp, 9, 2, 40, 6)
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(opts.Dir, bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.ImportRolledBack || rec.ImportEpoch != 5 {
		t.Fatalf("ImportRolledBack=%v epoch=%d, want true epoch 5", rec.ImportRolledBack, rec.ImportEpoch)
	}
	if rec.Map.NKeyFrames() != baseKF || rec.Map.NMapPoints() != baseMP {
		t.Fatalf("recovered %d kf / %d mp, want pre-import %d / %d",
			rec.Map.NKeyFrames(), rec.Map.NMapPoints(), baseKF, baseMP)
	}
	if chk := smap.CheckInvariants(rec.Map); !chk.OK() {
		t.Fatalf("recovered map violates invariants: %v", chk.Violations)
	}

	// Double-crash: the rollback must be physical, not just skipped
	// during this one replay. A new session journals on top of the
	// recovered state; a second recovery must see its records (if the
	// half-merge tail were still on disk, replay would stop at it and
	// never reach the new journal file).
	mgr2, err := Open(opts, rec.Map, rec.Anchors, rec.LastSeq, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc2 := smap.NewIDAllocatorFrom(1, 1000)
	populate(rng, rec.Map, alloc2, 1, 1, 40, 6)
	if err := mgr2.Flush(); err != nil {
		t.Fatal(err)
	}
	wantKF, wantMP := rec.Map.NKeyFrames(), rec.Map.NMapPoints()

	rec2, err := Recover(opts.Dir, bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	if rec2.ImportRolledBack {
		t.Error("second recovery re-reported a rolled-back import")
	}
	if rec2.Map.NKeyFrames() != wantKF || rec2.Map.NMapPoints() != wantMP {
		t.Fatalf("second recovery: %d kf / %d mp, want %d / %d",
			rec2.Map.NKeyFrames(), rec2.Map.NMapPoints(), wantKF, wantMP)
	}
	mgr.Close()
	mgr2.Close()
}

// TestRecoverKeepsClosedImportBracket proves the converse: a completed
// import (begin + end markers around its inserts) survives recovery in
// full, whether it committed or recorded a live rollback.
func TestRecoverKeepsClosedImportBracket(t *testing.T) {
	opts := testOptions(t)
	rng := rand.New(rand.NewSource(8))
	m := smap.NewMap(bow.Default())
	mgr, err := Open(opts, m, holo.NewRegistry(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc := smap.NewIDAllocator(1)
	populate(rng, m, alloc, 1, 2, 40, 6)
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}

	mgr.Journal().ShardImportBegin(3, 4)
	imp := smap.NewIDAllocator(4)
	populate(rng, m, imp, 4, 2, 40, 6)
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	mgr.Journal().ShardImportEnd(3, true)
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(opts.Dir, bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	if rec.ImportRolledBack {
		t.Error("closed bracket reported as rolled back")
	}
	assertMapsEqual(t, m, rec.Map)
	mgr.Close()
}
