package persist_test

// End-to-end crash recovery: two clients build a shared map, the
// server dies mid-session — after the merge hit the journal but before
// any checkpoint — and a fresh server recovers the map from the
// journal alone. The returning client resumes by BoW relocalization
// and its post-recovery accuracy matches an uninterrupted run.

import (
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/geom"
	"slamshare/internal/metrics"
	"slamshare/internal/persist"
	"slamshare/internal/server"
)

const (
	crashExtraFrames  = 40  // frames driven after both merges, pre-crash
	resumeFrames      = 120 // frames driven after the restart
	recoveryTolerance = 0.15
)

// twoClientRun drives clients A (MH04) and B (displaced MH05) through
// their sessions until both merged, then extra more frames. Returns
// the frame index the run stopped at.
func twoClientRun(t *testing.T, sessA, sessB *server.Session, devA, devB *client.Client, startFrame, extra int) int {
	t.Helper()
	i := startFrame
	remaining := -1
	for ; i < 1200; i += 2 {
		msgA := devA.BuildFrame(i)
		ra, err := sessA.HandleFrame(msgA)
		if err != nil {
			t.Fatal(err)
		}
		devA.ApplyPose(i, ra.Pose, ra.Tracked)
		msgB := devB.BuildFrame(i)
		rb, err := sessB.HandleFrame(msgB)
		if err != nil {
			t.Fatal(err)
		}
		devB.ApplyPose(i, rb.Pose, rb.Tracked)
		if remaining < 0 && sessA.Merged() && sessB.Merged() {
			remaining = extra
		}
		if remaining >= 0 {
			if remaining == 0 {
				break
			}
			remaining -= 2
		}
	}
	if remaining < 0 {
		t.Fatalf("sessions never both merged (stopped at frame %d)", i)
	}
	return i
}

func groundTruth(seq *dataset.Sequence, upTo int) metrics.Trajectory {
	var tr metrics.Trajectory
	for i := 0; i < upTo && i < seq.FrameCount(); i += 2 {
		tr.Append(seq.FrameTime(i), seq.GroundTruth(i).T)
	}
	return tr
}

func TestCrashRecoveryMatchesUninterruptedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute end-to-end run")
	}

	newDevices := func() (*client.Client, *client.Client) {
		seqA := dataset.MH04(camera.Stereo)
		seqB := dataset.MH05(camera.Stereo)
		return client.New(1, seqA), client.NewDisplaced(2, seqB, 0.07, geom.Vec3{X: 0.5, Y: -0.3})
	}

	// ---- Reference: the same session with no crash. ----
	refSrv, err := server.New(server.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	refA, refB := newDevices()
	refSessA, err := refSrv.OpenSession(1, refA.Seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	refSessB, err := refSrv.OpenSession(2, refB.Seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	refCrashFrame := twoClientRun(t, refSessA, refSessB, refA, refB, 0, crashExtraFrames)
	// Keep going through what will be the post-crash window below.
	for i := refCrashFrame + 2; i < refCrashFrame+resumeFrames; i += 2 {
		msg := refA.BuildFrame(i)
		r, err := refSessA.HandleFrame(msg)
		if err != nil {
			t.Fatal(err)
		}
		refA.ApplyPose(i, r.Pose, r.Tracked)
	}
	refSrv.Close()

	// ---- Crash run: journal on, no checkpoint ticker. ----
	dir := t.TempDir()
	cfg := server.DefaultConfig()
	cfg.Persist = persist.Options{Dir: dir, CheckpointEvery: -1}
	srv1, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	devA, devB := newDevices()
	sessA1, err := srv1.OpenSession(1, devA.Seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	sessB1, err := srv1.OpenSession(2, devB.Seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	crashFrame := twoClientRun(t, sessA1, sessB1, devA, devB, 0, crashExtraFrames)
	wantKFs, wantMPs := srv1.Global().NKeyFrames(), srv1.Global().NMapPoints()
	if wantKFs == 0 || wantMPs == 0 {
		t.Fatal("crash run built no map")
	}
	// Kill: flush the journal (the records were appended before the
	// crash) and abandon the server. Close writes no checkpoint, so the
	// on-disk state is exactly a mid-merge crash: journal only.
	srv1.Close()

	// ---- Restart and recover. ----
	srv2, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	rec := srv2.Recovery()
	if rec == nil || rec.CheckpointLoaded {
		t.Fatalf("expected journal-only recovery, got %+v", rec)
	}
	if rec.ReplayedRecords == 0 {
		t.Fatal("no journal records replayed")
	}
	// The baseline system reloads a serialized map in ~8 s (Table 4);
	// journal replay must be well under that.
	if rec.ReplayTime > 4*time.Second {
		t.Errorf("replay took %v, want well under the baseline's ~8s", rec.ReplayTime)
	}
	gotKFs, gotMPs := srv2.Global().NKeyFrames(), srv2.Global().NMapPoints()
	if gotKFs != wantKFs || gotMPs != wantMPs {
		t.Fatalf("restored map: %d keyframes / %d points, want %d / %d",
			gotKFs, gotMPs, wantKFs, wantMPs)
	}

	// ---- Returning client resumes by relocalization. ----
	sessA2, err := srv2.OpenSession(1, devA.Seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	if !sessA2.Merged() {
		t.Fatal("returning client was not resumed onto the recovered map")
	}
	devA.Reconnect() // restart the video stream with an intra frame
	tracked := 0
	frames := 0
	for i := crashFrame + 2; i < crashFrame+resumeFrames; i += 2 {
		msg := devA.BuildFrame(i)
		r, err := sessA2.HandleFrame(msg)
		if err != nil {
			t.Fatal(err)
		}
		devA.ApplyPose(i, r.Pose, r.Tracked)
		frames++
		if r.Tracked {
			tracked++
		}
	}
	if tracked == 0 {
		t.Fatal("client never relocalized against the recovered map")
	}
	if tracked < frames/2 {
		t.Errorf("only %d/%d frames tracked after recovery", tracked, frames)
	}

	// ---- Post-relocalization accuracy vs the uninterrupted run. ----
	truth := groundTruth(devA.Seq, crashFrame+resumeFrames)
	t0 := devA.Seq.FrameTime(crashFrame)
	t1 := devA.Seq.FrameTime(crashFrame + resumeFrames)
	refATE := metrics.ATEWindow(refA.Trajectory(), truth, t0, t1)
	recATE := metrics.ATEWindow(devA.Trajectory(), truth, t0, t1)
	delta := recATE - refATE
	if delta > recoveryTolerance {
		t.Errorf("post-recovery ATE %.3f m vs uninterrupted %.3f m (delta %.3f > %.2f)",
			recATE, refATE, delta, recoveryTolerance)
	}
	srv2.Persist().Stats().RecoveryATEDelta.Set(delta)
	if got := srv2.Persist().Stats().RecoveryATEDelta.Load(); got != delta {
		t.Errorf("RecoveryATEDelta gauge: got %v, want %v", got, delta)
	}
	t.Logf("recovery: %d records in %v; ATE %.3f m (ref %.3f m, delta %+.3f m); %d/%d tracked",
		rec.ReplayedRecords, rec.ReplayTime, recATE, refATE, delta, tracked, frames)
}
