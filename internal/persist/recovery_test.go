package persist_test

// End-to-end crash recovery: two clients build a shared map, the
// server dies mid-session — after the merge hit the journal but before
// any checkpoint — and a fresh server recovers the map from the
// journal alone. The returning client resumes by BoW relocalization
// and its post-recovery accuracy matches an uninterrupted run.

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"slamshare/internal/bow"
	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/holo"
	"slamshare/internal/lifecycle"
	"slamshare/internal/metrics"
	"slamshare/internal/persist"
	"slamshare/internal/server"
	"slamshare/internal/smap"
	"slamshare/internal/wire"
)

const (
	crashExtraFrames  = 40  // frames driven after both merges, pre-crash
	resumeFrames      = 120 // frames driven after the restart
	recoveryTolerance = 0.15
)

// twoClientRun drives clients A (MH04) and B (displaced MH05) through
// their sessions until both merged, then extra more frames. Returns
// the frame index the run stopped at.
func twoClientRun(t *testing.T, sessA, sessB *server.Session, devA, devB *client.Client, startFrame, extra int) int {
	t.Helper()
	i := startFrame
	remaining := -1
	for ; i < 1200; i += 2 {
		msgA := devA.BuildFrame(i)
		ra, err := sessA.HandleFrame(msgA)
		if err != nil {
			t.Fatal(err)
		}
		devA.ApplyPose(i, ra.Pose, ra.Tracked)
		msgB := devB.BuildFrame(i)
		rb, err := sessB.HandleFrame(msgB)
		if err != nil {
			t.Fatal(err)
		}
		devB.ApplyPose(i, rb.Pose, rb.Tracked)
		if remaining < 0 && sessA.Merged() && sessB.Merged() {
			remaining = extra
		}
		if remaining >= 0 {
			if remaining == 0 {
				break
			}
			remaining -= 2
		}
	}
	if remaining < 0 {
		t.Fatalf("sessions never both merged (stopped at frame %d)", i)
	}
	return i
}

func groundTruth(seq *dataset.Sequence, upTo int) metrics.Trajectory {
	var tr metrics.Trajectory
	for i := 0; i < upTo && i < seq.FrameCount(); i += 2 {
		tr.Append(seq.FrameTime(i), seq.GroundTruth(i).T)
	}
	return tr
}

func TestCrashRecoveryMatchesUninterruptedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute end-to-end run")
	}

	newDevices := func() (*client.Client, *client.Client) {
		seqA := dataset.MH04(camera.Stereo)
		seqB := dataset.MH05(camera.Stereo)
		return client.New(1, seqA), client.NewDisplaced(2, seqB, 0.07, geom.Vec3{X: 0.5, Y: -0.3})
	}

	// ---- Reference: the same session with no crash. ----
	refSrv, err := server.New(server.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	refA, refB := newDevices()
	refSessA, err := refSrv.OpenSession(1, refA.Seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	refSessB, err := refSrv.OpenSession(2, refB.Seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	refCrashFrame := twoClientRun(t, refSessA, refSessB, refA, refB, 0, crashExtraFrames)
	// Keep going through what will be the post-crash window below.
	for i := refCrashFrame + 2; i < refCrashFrame+resumeFrames; i += 2 {
		msg := refA.BuildFrame(i)
		r, err := refSessA.HandleFrame(msg)
		if err != nil {
			t.Fatal(err)
		}
		refA.ApplyPose(i, r.Pose, r.Tracked)
	}
	refSrv.Close()

	// ---- Crash run: journal on, no checkpoint ticker. ----
	dir := t.TempDir()
	cfg := server.DefaultConfig()
	cfg.Persist = persist.Options{Dir: dir, CheckpointEvery: -1}
	srv1, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	devA, devB := newDevices()
	sessA1, err := srv1.OpenSession(1, devA.Seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	sessB1, err := srv1.OpenSession(2, devB.Seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	crashFrame := twoClientRun(t, sessA1, sessB1, devA, devB, 0, crashExtraFrames)
	wantKFs, wantMPs := srv1.Global().NKeyFrames(), srv1.Global().NMapPoints()
	if wantKFs == 0 || wantMPs == 0 {
		t.Fatal("crash run built no map")
	}
	// Kill: flush the journal (the records were appended before the
	// crash) and abandon the server. Close writes no checkpoint, so the
	// on-disk state is exactly a mid-merge crash: journal only.
	srv1.Close()

	// ---- Restart and recover. ----
	srv2, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	rec := srv2.Recovery()
	if rec == nil || rec.CheckpointLoaded {
		t.Fatalf("expected journal-only recovery, got %+v", rec)
	}
	if rec.ReplayedRecords == 0 {
		t.Fatal("no journal records replayed")
	}
	// The baseline system reloads a serialized map in ~8 s (Table 4);
	// journal replay must be well under that.
	if rec.ReplayTime > 4*time.Second {
		t.Errorf("replay took %v, want well under the baseline's ~8s", rec.ReplayTime)
	}
	gotKFs, gotMPs := srv2.Global().NKeyFrames(), srv2.Global().NMapPoints()
	if gotKFs != wantKFs || gotMPs != wantMPs {
		t.Fatalf("restored map: %d keyframes / %d points, want %d / %d",
			gotKFs, gotMPs, wantKFs, wantMPs)
	}

	// ---- Returning client resumes by relocalization. ----
	sessA2, err := srv2.OpenSession(1, devA.Seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	if !sessA2.Merged() {
		t.Fatal("returning client was not resumed onto the recovered map")
	}
	devA.Reconnect() // restart the video stream with an intra frame
	tracked := 0
	frames := 0
	for i := crashFrame + 2; i < crashFrame+resumeFrames; i += 2 {
		msg := devA.BuildFrame(i)
		r, err := sessA2.HandleFrame(msg)
		if err != nil {
			t.Fatal(err)
		}
		devA.ApplyPose(i, r.Pose, r.Tracked)
		frames++
		if r.Tracked {
			tracked++
		}
	}
	if tracked == 0 {
		t.Fatal("client never relocalized against the recovered map")
	}
	if tracked < frames/2 {
		t.Errorf("only %d/%d frames tracked after recovery", tracked, frames)
	}

	// ---- Post-relocalization accuracy vs the uninterrupted run. ----
	truth := groundTruth(devA.Seq, crashFrame+resumeFrames)
	t0 := devA.Seq.FrameTime(crashFrame)
	t1 := devA.Seq.FrameTime(crashFrame + resumeFrames)
	refATE := metrics.ATEWindow(refA.Trajectory(), truth, t0, t1)
	recATE := metrics.ATEWindow(devA.Trajectory(), truth, t0, t1)
	delta := recATE - refATE
	if delta > recoveryTolerance {
		t.Errorf("post-recovery ATE %.3f m vs uninterrupted %.3f m (delta %.3f > %.2f)",
			recATE, refATE, delta, recoveryTolerance)
	}
	srv2.Persist().Stats().RecoveryATEDelta.Set(delta)
	if got := srv2.Persist().Stats().RecoveryATEDelta.Load(); got != delta {
		t.Errorf("RecoveryATEDelta gauge: got %v, want %v", got, delta)
	}
	t.Logf("recovery: %d records in %v; ATE %.3f m (ref %.3f m, delta %+.3f m); %d/%d tracked",
		rec.ReplayedRecords, rec.ReplayTime, recATE, refATE, delta, tracked, frames)
}

// ---- lifecycle records in the WAL ----

// populateClusters fills an already-journaled map with nClusters
// disjoint covisibility neighbourhoods (kfPer keyframes sharing ptsPer
// points each, all pair weights = ptsPer) plus two junk points no
// keyframe observes — sparsification fodder. Pair weights stay >= 15
// so the live covisibility graph matches Recover's minShared-15
// recompute edge for edge.
func populateClusters(t *testing.T, m *smap.Map, seed int64, nClusters, kfPer, ptsPer int) [][]smap.ID {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	alloc := smap.NewIDAllocator(1)
	clusters := make([][]smap.ID, nClusters)
	for c := 0; c < nClusters; c++ {
		kfIDs := make([]smap.ID, kfPer)
		for k := 0; k < kfPer; k++ {
			kps := make([]feature.Keypoint, ptsPer)
			for i := range kps {
				var d feature.Descriptor
				for w := range d {
					d[w] = rng.Uint64()
				}
				kps[i] = feature.Keypoint{
					X: rng.Float64() * 700, Y: rng.Float64() * 400,
					Level: 2, Right: -1, Desc: d,
				}
			}
			kf := &smap.KeyFrame{
				ID: alloc.Next(), Client: 1,
				Stamp:     float64(c*kfPer + k),
				Tcw:       geom.SE3{R: geom.Quat{W: 1}, T: geom.Vec3{X: float64(c) * 100}},
				Keypoints: kps,
			}
			m.AddKeyFrame(kf)
			kfIDs[k] = kf.ID
		}
		for p := 0; p < ptsPer; p++ {
			var d feature.Descriptor
			for w := range d {
				d[w] = rng.Uint64()
			}
			mp := &smap.MapPoint{
				ID: alloc.Next(), Client: 1,
				Pos:    geom.Vec3{X: float64(c)*100 + rng.NormFloat64(), Y: rng.NormFloat64(), Z: 5},
				Desc:   d,
				Normal: geom.Vec3{Z: 1},
				RefKF:  kfIDs[0],
			}
			m.AddMapPoint(mp)
			for _, kfID := range kfIDs {
				if err := m.AddObservation(kfID, mp.ID, p); err != nil {
					t.Fatalf("AddObservation: %v", err)
				}
			}
		}
		for _, id := range kfIDs {
			m.UpdateConnections(id, 15)
		}
		clusters[c] = kfIDs
	}
	for i := 0; i < 2; i++ {
		m.AddMapPoint(&smap.MapPoint{
			ID: alloc.Next(), Client: 1, Pos: geom.Vec3{Z: 3},
			Normal: geom.Vec3{Z: 1}, RefKF: clusters[0][0],
		})
	}
	return clusters
}

// TestRecoveryReplaysLifecycleRecords drives the full lifecycle record
// vocabulary — entity erases from culling and sparsification, region
// eviction, region reload — through a real WAL and asserts the
// replayed map is byte-for-byte the compacted map the server held at
// crash time, with the still-evicted region restored to the reload
// index and servable from its file.
func TestRecoveryReplaysLifecycleRecords(t *testing.T) {
	dir := t.TempDir()
	m := smap.NewMap(bow.Default())
	mgr, err := persist.Open(persist.Options{Dir: dir, CheckpointEvery: -1}, m, holo.NewRegistry(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	clusters := populateClusters(t, m, 11, 3, 6, 30)

	lcfg := lifecycle.Config{
		MaxKeyFrames: 12, CullBatch: 6, ProtectRecent: 5,
		EvictAfter: 20, Dir: dir, ClusterMax: 16,
	}
	lm := lifecycle.New(lcfg, m, mgr.Journal())
	var now uint64
	for i := 0; i < 40; i++ {
		now = m.Tick()
	}
	m.TouchKeyFrames(clusters[2]) // cluster 2 hot; 0 and 1 cold

	// A cluster-1 BoW vector, captured while the keyframe is resident:
	// the relocalization query that will pull the region back in.
	kf1, ok := m.KeyFrame(clusters[1][0])
	if !ok {
		t.Fatal("cluster 1 keyframe missing")
	}
	bow1 := kf1.Bow

	// Pass 1: over budget by 6 -> cull cluster 0, sparsify the junk
	// points, evict cold cluster 1 to a region file.
	if !lm.Step(now) {
		t.Fatal("first Step mutated nothing")
	}
	st := lm.Stats()
	if st.CulledKeyFrames.Load() == 0 || st.SparsifiedPoints.Load() == 0 || st.EvictedRegions.Load() != 1 {
		t.Fatalf("pass 1: culled=%d sparsified=%d evicted=%d, want >0 / >0 / 1",
			st.CulledKeyFrames.Load(), st.SparsifiedPoints.Load(), st.EvictedRegions.Load())
	}

	// Relocalize into the evicted area: region comes back, journaling a
	// reload record.
	if n := lm.MaybeReload(bow1); n != 1 {
		t.Fatalf("MaybeReload = %d regions, want 1", n)
	}

	// Pass 2: everything has gone cold again; the coldest cluster (the
	// reloaded one — lowest IDs on the tie) is evicted a second time,
	// so the crash happens with one region on disk.
	kf2, _ := m.KeyFrame(clusters[2][0])
	m.SetKeyFramePose(kf2.ID, kf2.Tcw) // defeat the idle-version gate
	for i := 0; i < 60; i++ {
		now = m.Tick()
	}
	if !lm.Step(now) {
		t.Fatal("second Step mutated nothing")
	}
	if lm.EvictedRegionCount() != 1 {
		t.Fatalf("evicted regions at crash = %d, want 1", lm.EvictedRegionCount())
	}

	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	want := wire.EncodeMap(m)
	wantKFs, wantMPs := m.NKeyFrames(), m.NMapPoints()
	// Abandon mgr without Close: on-disk state is journal + region file.

	rec, err := persist.Recover(dir, bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	if rec.ReplayedRecords == 0 {
		t.Fatal("no journal records replayed")
	}
	if got := wire.EncodeMap(rec.Map); !bytes.Equal(got, want) {
		t.Fatalf("replayed map differs from crash-time map: %d bytes vs %d (KFs %d/%d, MPs %d/%d)",
			len(got), len(want), rec.Map.NKeyFrames(), wantKFs, rec.Map.NMapPoints(), wantMPs)
	}
	if len(rec.EvictedRegions) != 1 {
		t.Fatalf("EvictedRegions = %v, want exactly the crash-time region", rec.EvictedRegions)
	}
	for id, kfIDs := range rec.EvictedRegions {
		if len(kfIDs) != len(clusters[1]) {
			t.Fatalf("region %d holds %d keyframes, want %d", id, len(kfIDs), len(clusters[1]))
		}
	}
	if regions, _ := persist.ListRegions(dir); len(regions) != 1 {
		t.Fatalf("region files on disk = %d, want 1", len(regions))
	}

	// A restarted lifecycle manager serves the pre-crash region.
	lm2 := lifecycle.New(lcfg, rec.Map, nil)
	lm2.RestoreEvicted(rec.EvictedRegions)
	if n := lm2.ReloadAll(); n != 1 {
		t.Fatalf("ReloadAll after recovery = %d, want 1", n)
	}
	for _, id := range clusters[1] {
		if _, ok := rec.Map.KeyFrame(id); !ok {
			t.Fatalf("keyframe %d missing after post-recovery reload", id)
		}
	}
	if rep := rec.Map.CheckInvariants(); !rep.OK() {
		t.Fatalf("after post-recovery reload: %s", rep.Summary())
	}
	if res := rec.Map.QueryBow(bow1, 3, nil); len(res) == 0 {
		t.Fatal("reloaded keyframe not findable by BoW query after recovery")
	}
}

// TestRecoverySweepsUnvouchedRegionFile crashes between the region
// file write and its WAL record reaching disk: replay leaves the
// cluster live (its erases were lost with the record), so the orphan
// file is stale and RestoreEvicted must delete it rather than serve a
// second copy of live keyframes.
func TestRecoverySweepsUnvouchedRegionFile(t *testing.T) {
	dir := t.TempDir()
	m := smap.NewMap(bow.Default())
	mgr, err := persist.Open(persist.Options{Dir: dir, CheckpointEvery: -1}, m, holo.NewRegistry(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	clusters := populateClusters(t, m, 12, 2, 4, 20)
	lcfg := lifecycle.Config{MaxKeyFrames: 1000, EvictAfter: 20, Dir: dir, ClusterMax: 16}
	lm := lifecycle.New(lcfg, m, mgr.Journal())
	var now uint64
	for i := 0; i < 40; i++ {
		now = m.Tick()
	}
	m.TouchKeyFrames(clusters[1])
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	wals, err := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("journal files = %v (err %v), want exactly one", wals, err)
	}
	fi, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	preEvict := fi.Size()

	nkf := m.NKeyFrames()
	if !lm.Step(now) {
		t.Fatal("eviction did not run")
	}
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	if regions, _ := persist.ListRegions(dir); len(regions) != 1 {
		t.Fatalf("region files = %d, want 1", len(regions))
	}
	// The crash: every record from the eviction batch is lost, the
	// region file survives.
	if err := os.Truncate(wals[0], preEvict); err != nil {
		t.Fatal(err)
	}

	rec, err := persist.Recover(dir, bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Map.NKeyFrames() != nkf {
		t.Fatalf("replayed map has %d keyframes, want %d (erases were lost with the WAL tail)",
			rec.Map.NKeyFrames(), nkf)
	}
	if len(rec.EvictedRegions) != 0 {
		t.Fatalf("EvictedRegions = %v, want none", rec.EvictedRegions)
	}

	lm2 := lifecycle.New(lcfg, rec.Map, nil)
	lm2.RestoreEvicted(rec.EvictedRegions)
	if regions, _ := persist.ListRegions(dir); len(regions) != 0 {
		t.Fatalf("stale region file survived restore: %v", regions)
	}
	if lm2.EvictedRegionCount() != 0 {
		t.Fatal("unvouched region entered the reload index")
	}
	if n := lm2.ReloadAll(); n != 0 {
		t.Fatalf("ReloadAll = %d on an empty index", n)
	}
	if rep := rec.Map.CheckInvariants(); !rep.OK() {
		t.Fatalf("replayed map: %s", rep.Summary())
	}
}
