package persist

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"time"

	"slamshare/internal/bow"
	"slamshare/internal/holo"
	"slamshare/internal/smap"
	"slamshare/internal/wire"
)

// Recovery is the result of rebuilding a session from disk.
type Recovery struct {
	// Map is the restored global map with covisibility and BoW indexes
	// rebuilt; returning clients relocalize against it.
	Map *smap.Map
	// Anchors is the restored hologram anchor registry.
	Anchors *holo.Registry
	// CheckpointLoaded reports whether a checkpoint seeded the map (as
	// opposed to a pure journal replay from empty).
	CheckpointLoaded bool
	// CheckpointSeq is the journal sequence the checkpoint covered.
	CheckpointSeq uint64
	// LastSeq is the highest journal sequence applied; a new journal
	// must continue from it.
	LastSeq uint64
	// ReplayedRecords counts journal records applied on top of the
	// checkpoint.
	ReplayedRecords int
	// ReplayTime is the wall time spent loading and replaying.
	ReplayTime time.Duration
	// EvictedRegions maps the region ids still evicted at crash time to
	// the keyframe ids each region holds on disk. The lifecycle manager
	// seeds its reload index from this set, so sessions can relocalize
	// into regions evicted before the crash.
	EvictedRegions map[uint64][]smap.ID
	// ImportRolledBack reports that the crash interrupted a cross-shard
	// boundary import (an opShardImport bracket was never closed) and
	// recovery discarded the journal from that point: the half-merge is
	// rolled back and the peer shard still owns the region.
	ImportRolledBack bool
	// ImportEpoch is the handoff epoch of the rolled-back import.
	ImportEpoch uint64
}

// Recover rebuilds the global map and anchor registry from the
// checkpoint directory: load the newest valid checkpoint (corrupt ones
// are skipped, falling back to older snapshots), replay every journal
// record with a later sequence number, stop at the first torn or
// corrupt record, and rebuild the covisibility graph. An empty or
// missing directory yields an empty map, so servers can pass their
// checkpoint dir unconditionally.
func Recover(dir string, voc *bow.Vocabulary) (*Recovery, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rec := &Recovery{EvictedRegions: make(map[uint64][]smap.ID)}

	ckpts, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	for i := len(ckpts) - 1; i >= 0; i-- {
		m, anchors, seq, err := readCheckpoint(checkpointPath(dir, ckpts[i]), voc)
		if err != nil {
			continue // corrupt or stale-format checkpoint: fall back
		}
		rec.Map, rec.Anchors = m, anchors
		rec.CheckpointSeq = seq
		rec.CheckpointLoaded = true
		break
	}
	if rec.Map == nil {
		rec.Map = smap.NewMap(voc)
	}
	if rec.Anchors == nil {
		rec.Anchors = holo.NewRegistry()
	}
	rec.LastSeq = rec.CheckpointSeq

	journals, err := listJournals(dir)
	if err != nil {
		return nil, err
	}

	// Cross-shard import atomicity: an opShardImport bracket that was
	// never closed means the crash landed mid boundary-import — the
	// journal tail holds a half-merge. Committed imports flush their
	// end marker before acking the peer, so an open bracket is by
	// definition unacknowledged and safe to discard: physically
	// truncate the journal at the begin marker and drop the later
	// files. Physical truncation (not just skipping during this
	// replay) matters: replay stops at the first file that does not
	// end cleanly, so a merely-skipped tail would mask the journal
	// written after this recovery from the *next* recovery.
	if h, ok := scanImportHorizon(dir, journals); ok && h.seq > rec.CheckpointSeq {
		if err := os.Truncate(journalPath(dir, journals[h.fileIdx]), h.off); err != nil {
			return nil, err
		}
		for _, base := range journals[h.fileIdx+1:] {
			if err := os.Remove(journalPath(dir, base)); err != nil {
				return nil, err
			}
		}
		journals = journals[:h.fileIdx+1]
		rec.ImportRolledBack = true
		rec.ImportEpoch = h.epoch
	}

	for _, base := range journals {
		ok := replayJournal(journalPath(dir, base), rec)
		if !ok {
			// A corrupt record means everything after it is suspect;
			// the torn tail of the crash-time journal ends replay.
			break
		}
	}

	// The journal captures observations as they happened, but the
	// covisibility edges of replayed keyframes reflect insert-time
	// state. Recompute them all (minShared 15, the system-wide default)
	// so merge candidate search and local-map tracking see the same
	// graph the live map had. The BoW index was rebuilt incrementally
	// by AddKeyFrame during checkpoint decode and replay.
	for _, kf := range rec.Map.KeyFrames() {
		rec.Map.UpdateConnections(kf.ID, 15)
	}
	rec.ReplayTime = time.Since(start)
	return rec, nil
}

// importHorizon locates an unclosed cross-shard import bracket: the
// sequence, file, byte offset, and epoch of the last opShardImport
// with no matching opShardImportEnd. Everything from that record on
// must be discarded.
type importHorizon struct {
	seq     uint64
	epoch   uint64
	fileIdx int
	off     int64
}

// scanImportHorizon walks the journal files (read-only, same record
// validation as replay, stopping at the first torn or corrupt record
// exactly where replay would) and reports the open import bracket, if
// any. Imports are serialized under the server's global-map lock, so
// at most one bracket can be open.
func scanImportHorizon(dir string, journals []uint64) (importHorizon, bool) {
	var open *importHorizon
	for idx, base := range journals {
		data, err := os.ReadFile(journalPath(dir, base))
		if err != nil {
			break
		}
		if len(data) < journalHeaderBytes ||
			binary.LittleEndian.Uint32(data) != journalMagic || data[4] != journalVersion {
			break
		}
		off := journalHeaderBytes
		clean := true
		for off+recordHeaderBytes <= len(data) {
			n := int(binary.LittleEndian.Uint32(data[off:]))
			if n < 9 || n > maxRecordBytes || off+8+n > len(data) {
				clean = false
				break
			}
			crc := binary.LittleEndian.Uint32(data[off+4:])
			payload := data[off+8 : off+8+n]
			if crc32.ChecksumIEEE(payload) != crc {
				clean = false
				break
			}
			seq := binary.LittleEndian.Uint64(payload)
			body := payload[9:]
			switch payload[8] {
			case opShardImport:
				h := importHorizon{seq: seq, fileIdx: idx, off: int64(off)}
				if len(body) >= 8 {
					h.epoch = binary.LittleEndian.Uint64(body)
				}
				open = &h
			case opShardImportEnd:
				open = nil
			}
			off += 8 + n
		}
		if !clean {
			break // replay stops here too; an earlier open bracket still counts
		}
	}
	if open == nil {
		return importHorizon{}, false
	}
	return *open, true
}

// replayJournal applies one journal file's records with seq beyond the
// checkpoint. Returns false if it hit a corrupt record (replay must
// stop — later files would have sequence gaps).
func replayJournal(path string, rec *Recovery) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	if len(data) < journalHeaderBytes ||
		binary.LittleEndian.Uint32(data) != journalMagic || data[4] != journalVersion {
		return false
	}
	off := journalHeaderBytes
	for off+recordHeaderBytes <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n < 9 || n > maxRecordBytes || off+8+n > len(data) {
			return false // torn tail
		}
		crc := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return false // torn or corrupt record
		}
		seq := binary.LittleEndian.Uint64(payload)
		op := payload[8]
		body := payload[9:]
		off += 8 + n
		if seq <= rec.CheckpointSeq {
			continue // already in the checkpoint snapshot
		}
		applyRecord(rec, op, body)
		if seq > rec.LastSeq {
			rec.LastSeq = seq
		}
		rec.ReplayedRecords++
	}
	return off == len(data)
}

// applyRecord replays one journal record onto the map. All operations
// are idempotent or tolerant of missing entities, because the
// checkpoint snapshot may already include mutations journaled just
// after the snapshot's sequence point.
func applyRecord(rec *Recovery, op byte, body []byte) {
	m := rec.Map
	switch op {
	case opKeyFrame:
		if kf, _, err := wire.DecodeKeyFrame(body); err == nil {
			m.AddKeyFrame(kf)
		}
	case opMapPoint:
		if mp, _, err := wire.DecodeMapPoint(body); err == nil {
			m.AddMapPoint(mp)
		}
	case opEraseKeyFrame:
		if len(body) >= 8 {
			m.EraseKeyFrame(binary.LittleEndian.Uint64(body))
		}
	case opEraseMapPoint:
		if len(body) >= 8 {
			m.EraseMapPoint(binary.LittleEndian.Uint64(body))
		}
	case opObservation:
		r := &byteReader{buf: body}
		kfID, mpID, kpIdx := r.u64(), r.u64(), int(r.u32())
		if !r.err {
			_ = m.AddObservation(kfID, mpID, kpIdx) // entities may be gone
		}
	case opFuse:
		r := &byteReader{buf: body}
		from, to := r.u64(), r.u64()
		if !r.err {
			applyFuse(m, from, to)
		}
	case opPoses:
		applyPoses(m, body)
	case opMerge:
		// Informational boundary marker; the inserted entities and
		// corrections follow as their own records.
	case opShardImport, opShardImportEnd:
		// Closed import brackets are informational here: the entities
		// between them are ordinary records. Open brackets never reach
		// applyRecord — Recover truncated the journal at the begin
		// marker before replay.
	case opEvictRegion:
		// The erases were journaled as their own records (the map is
		// already compact); this marker restores the evicted-region set
		// so the lifecycle manager can serve reloads after the restart.
		r := &byteReader{buf: body}
		id := r.u64()
		nkf := int(r.u32())
		if r.err || nkf < 0 || nkf > (len(body)-r.off)/8 {
			return
		}
		kfIDs := make([]smap.ID, 0, nkf)
		for i := 0; i < nkf; i++ {
			kfIDs = append(kfIDs, r.u64())
		}
		if !r.err {
			rec.EvictedRegions[id] = kfIDs
		}
	case opReloadRegion:
		if len(body) >= 8 {
			delete(rec.EvictedRegions, binary.LittleEndian.Uint64(body))
		}
	}
}

// applyFuse mirrors merge.Merger's point fusion: redirect the client
// point's keypoint bindings to the surviving global point, then erase
// it. The subsequent journaled erase record becomes a no-op.
func applyFuse(m *smap.Map, from, to smap.ID) {
	m.FusePoint(from, to)
}

// applyPoses replays a pose-graph correction: overwrite keyframe poses
// and map point positions with the optimized values.
func applyPoses(m *smap.Map, body []byte) {
	r := &byteReader{buf: body}
	nkf := int(r.u32())
	for i := 0; i < nkf && !r.err; i++ {
		id := r.u64()
		p := r.pose()
		if r.err {
			return
		}
		m.SetKeyFramePose(id, p)
	}
	nmp := int(r.u32())
	for i := 0; i < nmp && !r.err; i++ {
		id := r.u64()
		v := r.vec3()
		if r.err {
			return
		}
		m.SetMapPointPos(id, v)
	}
}
