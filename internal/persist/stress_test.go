package persist

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"slamshare/internal/bow"
	"slamshare/internal/geom"
	"slamshare/internal/holo"
	"slamshare/internal/smap"
)

// TestStressConcurrentMutationWithWAL hammers a journaled map from
// eight goroutines mixing inserts, observation wiring, erases, pose
// writes, snapshot views, and BoW queries — the workload mix of N
// tracking sessions plus a mapper sharing one global map. Run it under
// -race. It asserts two things no schedule may violate:
//
//  1. Snapshot views never expose a torn pose. Writers only ever store
//     translations with equal components (k,k,k), so any view keyframe
//     whose components differ leaked a half-written SE3.
//  2. WAL replay reconstructs the same entity counts the live map
//     ended with, i.e. the async event hand-off loses no mutations.
func TestStressConcurrentMutationWithWAL(t *testing.T) {
	const (
		workers  = 8
		opsPer   = 300
		seedKFs  = 16
		ptsPerKF = 12
		kpsPerKF = 48
	)
	opts := testOptions(t)
	voc := bow.Default()
	m := smap.NewMap(voc)
	mgr, err := Open(opts, m, holo.NewRegistry(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Seed keyframes every worker reads and rewrites; their IDs are the
	// shared contention surface.
	seedRng := rand.New(rand.NewSource(42))
	seedAlloc := smap.NewIDAllocator(1)
	var seedIDs []smap.ID
	for k := 0; k < seedKFs; k++ {
		kf := randomKeyFrame(seedRng, seedAlloc, 1, kpsPerKF, float64(k)/30)
		kf.Tcw = geom.IdentitySE3()
		m.AddKeyFrame(kf)
		seedIDs = append(seedIDs, kf.ID)
		for p := 0; p < ptsPerKF; p++ {
			mp := randomMapPoint(seedRng, seedAlloc, 1, kf.ID)
			m.AddMapPoint(mp)
			m.AddObservation(kf.ID, mp.ID, (p*3)%kpsPerKF)
		}
	}

	var torn atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			// Per-worker client IDs keep allocations disjoint without
			// coordination, like real sessions.
			alloc := smap.NewIDAllocator(2 + w)
			var myPoints []smap.ID
			lastKF := seedIDs[w%len(seedIDs)]
			for i := 0; i < opsPer; i++ {
				switch i % 6 {
				case 0: // insert a keyframe and bind fresh points
					kf := randomKeyFrame(rng, alloc, 2+w, kpsPerKF, float64(i)/30)
					m.AddKeyFrame(kf)
					lastKF = kf.ID
					for p := 0; p < 4; p++ {
						mp := randomMapPoint(rng, alloc, 2+w, kf.ID)
						m.AddMapPoint(mp)
						m.AddObservation(kf.ID, mp.ID, rng.Intn(kpsPerKF))
						myPoints = append(myPoints, mp.ID)
					}
				case 1: // cross-wire an observation onto a shared seed KF
					if len(myPoints) > 0 {
						_ = m.AddObservation(seedIDs[rng.Intn(len(seedIDs))],
							myPoints[rng.Intn(len(myPoints))], rng.Intn(kpsPerKF))
					}
				case 2: // cull one of our own points
					if len(myPoints) > 4 {
						j := rng.Intn(len(myPoints))
						m.EraseMapPoint(myPoints[j])
						myPoints = append(myPoints[:j], myPoints[j+1:]...)
					}
				case 3: // pose write with the equal-component pattern
					k := float64(i%97) + float64(w)/8
					m.SetKeyFramePose(seedIDs[rng.Intn(len(seedIDs))], geom.SE3{
						R: geom.IdentityQuat(), T: geom.Vec3{X: k, Y: k, Z: k},
					})
				case 4: // snapshot view over a shared window; check tearing
					v := m.LocalView(seedIDs[rng.Intn(len(seedIDs))], 8)
					for _, kf := range v.KFs {
						if kf.Tcw.T.X != kf.Tcw.T.Y || kf.Tcw.T.Y != kf.Tcw.T.Z {
							torn.Store(true)
							return
						}
					}
				case 5: // place-recognition query against the shared index
					if kf, ok := m.KeyFrame(lastKF); ok {
						_ = m.QueryBow(kf.Bow, 3, func(id smap.ID) bool { return id == kf.ID })
					}
				}
				if i%30 == 0 {
					m.UpdateConnections(lastKF, 5)
				}
			}
		}(w)
	}
	wg.Wait()
	if torn.Load() {
		t.Fatal("a snapshot view observed a torn pose")
	}

	// Pose writes are not observer events — the live pipeline journals
	// them explicitly after each adjustment (see mapping/merge). Mirror
	// that contract for the seed keyframes the workers rewrote.
	finalPoses := make(map[smap.ID]geom.SE3, len(seedIDs))
	for _, id := range seedIDs {
		if kf, ok := m.KeyFrame(id); ok {
			finalPoses[id] = kf.Tcw
		}
	}
	mgr.Journal().PosesCorrected(finalPoses, nil)

	// Close drains the event queue and flushes the journal; replay must
	// land on exactly the entity counts the live map settled at.
	wantKF, wantMP := m.NKeyFrames(), m.NMapPoints()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(opts.Dir, voc)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Map.NKeyFrames() != wantKF || rec.Map.NMapPoints() != wantMP {
		t.Fatalf("replay rebuilt %d kf / %d mp, live map had %d kf / %d mp",
			rec.Map.NKeyFrames(), rec.Map.NMapPoints(), wantKF, wantMP)
	}
	assertMapsEqual(t, m, rec.Map)
}
