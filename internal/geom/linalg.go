package geom

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by CholeskySolve when the system
// matrix is not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("geom: matrix not positive definite")

// CholeskySolve solves A*x = b in place for a dense symmetric
// positive-definite matrix A of size n x n stored row-major. A and b
// are overwritten; on success b holds the solution.
func CholeskySolve(a []float64, b []float64, n int) error {
	if len(a) != n*n || len(b) != n {
		return errors.New("geom: dimension mismatch")
	}
	// In-place Cholesky factorization A = L*L^T (lower triangle of a).
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			l := a[j*n+k]
			d -= l * l
		}
		if d <= 0 {
			return ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = s * inv
		}
	}
	// Forward substitution L*y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i*n+k] * b[k]
		}
		b[i] = s / a[i*n+i]
	}
	// Back substitution L^T*x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[k*n+i] * b[k]
		}
		b[i] = s / a[i*n+i]
	}
	return nil
}

// SymmetricEigen computes the eigenvalues and eigenvectors of a dense
// symmetric n x n matrix (row-major) using cyclic Jacobi rotations.
// It returns eigenvalues in descending order and the matrix whose
// columns (vecs[i*n+j] = component i of eigenvector j) are the
// corresponding unit eigenvectors. The input is not modified.
func SymmetricEigen(a []float64, n int) (vals []float64, vecs []float64) {
	m := make([]float64, n*n)
	copy(m, a)
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += m[p*n+q] * m[p*n+q]
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m[p*n+p], m[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation G(p,q,theta) on both sides of m.
				for k := 0; k < n; k++ {
					mkp, mkq := m[k*n+p], m[k*n+q]
					m[k*n+p] = c*mkp - s*mkq
					m[k*n+q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p*n+k], m[q*n+k]
					m[p*n+k] = c*mpk - s*mqk
					m[q*n+k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k*n+p], v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i*n+i]
	}
	// Sort eigenpairs by descending eigenvalue (selection sort keeps
	// columns in sync; n is tiny).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[j] > vals[best] {
				best = j
			}
		}
		if best != i {
			vals[i], vals[best] = vals[best], vals[i]
			for k := 0; k < n; k++ {
				v[k*n+i], v[k*n+best] = v[k*n+best], v[k*n+i]
			}
		}
	}
	return vals, v
}

// Clamp limits x to the range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
