package geom

import (
	"errors"
	"math"
)

// ErrDegenerate is returned by the alignment solvers when the point
// configuration does not determine a unique transform (fewer than
// three non-collinear correspondences).
var ErrDegenerate = errors.New("geom: degenerate point configuration")

// AlignHorn computes the similarity transform (scale, rotation,
// translation) that maps src[i] onto dst[i] in the least-squares
// sense, using Horn's closed-form quaternion method. It is the 3D
// alignment step of the paper's map-merging algorithm (Alg. 2, line
// "3DAlign"). If withScale is false the scale is fixed to 1 (the
// stereo / visual-inertial case where scale is observable).
func AlignHorn(src, dst []Vec3, withScale bool) (Sim3, error) {
	n := len(src)
	if n != len(dst) || n < 3 {
		return IdentitySim3(), ErrDegenerate
	}
	// Centroids.
	var cs, cd Vec3
	for i := 0; i < n; i++ {
		cs = cs.Add(src[i])
		cd = cd.Add(dst[i])
	}
	inv := 1 / float64(n)
	cs = cs.Scale(inv)
	cd = cd.Scale(inv)

	// Cross-covariance of the centered clouds.
	var m Mat3
	var srcVar float64
	for i := 0; i < n; i++ {
		a := src[i].Sub(cs)
		b := dst[i].Sub(cd)
		m = m.Add(OuterProduct(a, b))
		srcVar += a.NormSq()
	}
	if srcVar < 1e-18 {
		return IdentitySim3(), ErrDegenerate
	}

	// Horn's symmetric 4x4 matrix; the unit eigenvector of its largest
	// eigenvalue is the optimal rotation quaternion.
	sxx, sxy, sxz := m.At(0, 0), m.At(0, 1), m.At(0, 2)
	syx, syy, syz := m.At(1, 0), m.At(1, 1), m.At(1, 2)
	szx, szy, szz := m.At(2, 0), m.At(2, 1), m.At(2, 2)
	nmat := []float64{
		sxx + syy + szz, syz - szy, szx - sxz, sxy - syx,
		syz - szy, sxx - syy - szz, sxy + syx, szx + sxz,
		szx - sxz, sxy + syx, -sxx + syy - szz, syz + szy,
		sxy - syx, szx + sxz, syz + szy, -sxx - syy + szz,
	}
	_, vecs := SymmetricEigen(nmat, 4)
	q := Quat{W: vecs[0*4+0], X: vecs[1*4+0], Y: vecs[2*4+0], Z: vecs[3*4+0]}.Normalized()

	scale := 1.0
	if withScale {
		// Symmetric scale estimate: sum(b . R(a)) / sum(|a|^2).
		num := 0.0
		for i := 0; i < n; i++ {
			a := src[i].Sub(cs)
			b := dst[i].Sub(cd)
			num += b.Dot(q.Rotate(a))
		}
		if num <= 0 {
			return IdentitySim3(), ErrDegenerate
		}
		scale = num / srcVar
	}

	t := cd.Sub(q.Rotate(cs).Scale(scale))
	return Sim3{S: scale, R: q, T: t}, nil
}

// AlignmentRMSE returns the root-mean-square residual of the
// similarity transform applied to the correspondences.
func AlignmentRMSE(tf Sim3, src, dst []Vec3) float64 {
	if len(src) == 0 || len(src) != len(dst) {
		return 0
	}
	sum := 0.0
	for i := range src {
		d := tf.Apply(src[i]).Sub(dst[i])
		sum += d.NormSq()
	}
	return math.Sqrt(sum / float64(len(src)))
}
