package geom

import "math"

// Mat3 is a row-major 3x3 matrix.
type Mat3 [9]float64

// Identity3 returns the 3x3 identity matrix.
func Identity3() Mat3 {
	return Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// At returns element (r, c).
func (m Mat3) At(r, c int) float64 { return m[3*r+c] }

// Set stores v at element (r, c).
func (m *Mat3) Set(r, c int, v float64) { m[3*r+c] = v }

// Mul returns the matrix product m*n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[3*r+k] * n[3*k+c]
			}
			out[3*r+c] = s
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		m[3]*v.X + m[4]*v.Y + m[5]*v.Z,
		m[6]*v.X + m[7]*v.Y + m[8]*v.Z,
	}
}

// Transpose returns the matrix transpose.
func (m Mat3) Transpose() Mat3 {
	return Mat3{
		m[0], m[3], m[6],
		m[1], m[4], m[7],
		m[2], m[5], m[8],
	}
}

// Add returns m + n elementwise.
func (m Mat3) Add(n Mat3) Mat3 {
	var out Mat3
	for i := range m {
		out[i] = m[i] + n[i]
	}
	return out
}

// Sub returns m - n elementwise.
func (m Mat3) Sub(n Mat3) Mat3 {
	var out Mat3
	for i := range m {
		out[i] = m[i] - n[i]
	}
	return out
}

// Scale returns s*m elementwise.
func (m Mat3) Scale(s float64) Mat3 {
	var out Mat3
	for i := range m {
		out[i] = s * m[i]
	}
	return out
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// Trace returns the sum of the diagonal elements.
func (m Mat3) Trace() float64 { return m[0] + m[4] + m[8] }

// Inverse returns the matrix inverse and whether it exists (the
// determinant is not numerically zero).
func (m Mat3) Inverse() (Mat3, bool) {
	d := m.Det()
	if math.Abs(d) < 1e-300 {
		return Mat3{}, false
	}
	inv := 1 / d
	return Mat3{
		(m[4]*m[8] - m[5]*m[7]) * inv,
		(m[2]*m[7] - m[1]*m[8]) * inv,
		(m[1]*m[5] - m[2]*m[4]) * inv,
		(m[5]*m[6] - m[3]*m[8]) * inv,
		(m[0]*m[8] - m[2]*m[6]) * inv,
		(m[2]*m[3] - m[0]*m[5]) * inv,
		(m[3]*m[7] - m[4]*m[6]) * inv,
		(m[1]*m[6] - m[0]*m[7]) * inv,
		(m[0]*m[4] - m[1]*m[3]) * inv,
	}, true
}

// OuterProduct returns the 3x3 matrix v*w^T.
func OuterProduct(v, w Vec3) Mat3 {
	return Mat3{
		v.X * w.X, v.X * w.Y, v.X * w.Z,
		v.Y * w.X, v.Y * w.Y, v.Y * w.Z,
		v.Z * w.X, v.Z * w.Y, v.Z * w.Z,
	}
}

// Mat4 is a row-major 4x4 matrix, used for homogeneous transforms
// (the "small 4x4 matrix" poses the paper ships from server to client).
type Mat4 [16]float64

// Identity4 returns the 4x4 identity matrix.
func Identity4() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// At returns element (r, c).
func (m Mat4) At(r, c int) float64 { return m[4*r+c] }

// Set stores v at element (r, c).
func (m *Mat4) Set(r, c int, v float64) { m[4*r+c] = v }

// Mul returns the matrix product m*n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += m[4*r+k] * n[4*k+c]
			}
			out[4*r+c] = s
		}
	}
	return out
}
