package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return a.Sub(b).Norm() <= tol
}

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if got := a.Add(b); got != (Vec3{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); !almostEq(got, -4+10+1.5, eps) {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Norm(); !almostEq(got, math.Sqrt(14), eps) {
		t.Errorf("Norm = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clampf(ax), clampf(ay), clampf(az)}
		b := Vec3{clampf(bx), clampf(by), clampf(bz)}
		c := a.Cross(b)
		return math.Abs(c.Dot(a)) < 1e-6*(1+a.NormSq()*b.NormSq()) &&
			math.Abs(c.Dot(b)) < 1e-6*(1+a.NormSq()*b.NormSq())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampf maps arbitrary float64 inputs from testing/quick into a
// well-conditioned range.
func clampf(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 100)
}

func TestHatMatchesCross(t *testing.T) {
	a := Vec3{0.3, -1.2, 2.5}
	b := Vec3{-0.7, 0.1, 0.9}
	if got, want := a.Hat().MulVec(b), a.Cross(b); !vecAlmostEq(got, want, eps) {
		t.Errorf("Hat*b = %v, want %v", got, want)
	}
}

func TestMat3MulIdentity(t *testing.T) {
	m := Mat3{1, 2, 3, 4, 5, 6, 7, 8, 10}
	if got := m.Mul(Identity3()); got != m {
		t.Errorf("m*I = %v", got)
	}
	if got := Identity3().Mul(m); got != m {
		t.Errorf("I*m = %v", got)
	}
}

func TestMat3Inverse(t *testing.T) {
	m := Mat3{2, 0, 1, 0, 3, 0, 1, 0, 2}
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("matrix should be invertible")
	}
	p := m.Mul(inv)
	id := Identity3()
	for i := range p {
		if !almostEq(p[i], id[i], 1e-12) {
			t.Fatalf("m*inv = %v", p)
		}
	}
	if _, ok := (Mat3{}).Inverse(); ok {
		t.Error("zero matrix must not invert")
	}
}

func TestMat3TransposeInvolution(t *testing.T) {
	f := func(vals [9]float64) bool {
		var m Mat3
		for i, v := range vals {
			m[i] = clampf(v)
		}
		return m.Transpose().Transpose() == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuatRotateMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		q := randomQuat(rng)
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if got, want := q.Rotate(v), q.Mat().MulVec(v); !vecAlmostEq(got, want, 1e-9) {
			t.Fatalf("Rotate %v vs Mat %v", got, want)
		}
	}
}

func randomQuat(rng *rand.Rand) Quat {
	axis := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	return QuatFromAxisAngle(axis, rng.Float64()*2*math.Pi)
}

func TestQuatMatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		q := randomQuat(rng)
		r := QuatFromMat(q.Mat())
		// q and -q encode the same rotation.
		if !almostEq(math.Abs(q.W*r.W+q.X*r.X+q.Y*r.Y+q.Z*r.Z), 1, 1e-9) {
			t.Fatalf("round trip %v -> %v", q, r)
		}
	}
}

func TestQuatExpLogRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		w := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Scale(0.5)
		got := QuatFromRotVec(w).RotVec()
		if !vecAlmostEq(got, w, 1e-9) {
			t.Fatalf("exp/log %v -> %v", w, got)
		}
	}
	// Near-zero branch.
	w := Vec3{1e-14, -1e-14, 1e-15}
	if got := QuatFromRotVec(w).RotVec(); got.Norm() > 1e-12 {
		t.Errorf("near-zero log = %v", got)
	}
}

func TestQuatRotationPreservesNorm(t *testing.T) {
	f := func(ax, ay, az, angle, vx, vy, vz float64) bool {
		q := QuatFromAxisAngle(Vec3{clampf(ax), clampf(ay), clampf(az)}, clampf(angle))
		v := Vec3{clampf(vx), clampf(vy), clampf(vz)}
		return almostEq(q.Rotate(v).Norm(), v.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuatSlerpEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := randomQuat(rng)
	r := randomQuat(rng)
	if got := q.Slerp(r, 0); got.AngleTo(q) > 1e-9 {
		t.Errorf("slerp(0) angle = %v", got.AngleTo(q))
	}
	if got := q.Slerp(r, 1); got.AngleTo(r) > 1e-9 {
		t.Errorf("slerp(1) angle = %v", got.AngleTo(r))
	}
	// Nearly-parallel branch must stay normalized.
	r2 := q.Mul(QuatFromRotVec(Vec3{1e-5, 0, 0}))
	if got := q.Slerp(r2, 0.5).Norm(); !almostEq(got, 1, 1e-12) {
		t.Errorf("near-parallel slerp norm = %v", got)
	}
}

func TestSE3ComposeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		a := randomSE3(rng)
		b := randomSE3(rng)
		p := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		// Composition applies b first.
		if got, want := a.Compose(b).Apply(p), a.Apply(b.Apply(p)); !vecAlmostEq(got, want, 1e-9) {
			t.Fatalf("compose: %v vs %v", got, want)
		}
		// Inverse round-trips points.
		if got := a.Inverse().Apply(a.Apply(p)); !vecAlmostEq(got, p, 1e-9) {
			t.Fatalf("inverse round trip: %v vs %v", got, p)
		}
	}
}

func randomSE3(rng *rand.Rand) SE3 {
	return SE3{
		R: randomQuat(rng),
		T: Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Scale(3),
	}
}

func TestSE3Mat4RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		s := randomSE3(rng)
		r := SE3FromMat4(s.Mat4())
		p := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if !vecAlmostEq(s.Apply(p), r.Apply(p), 1e-9) {
			t.Fatalf("Mat4 round trip mismatch: %v vs %v", s, r)
		}
	}
}

func TestSE3Delta(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSE3(rng)
	b := randomSE3(rng)
	d := a.Delta(b)
	p := Vec3{1, -2, 0.5}
	if got, want := d.Compose(a).Apply(p), b.Apply(p); !vecAlmostEq(got, want, 1e-9) {
		t.Errorf("delta: %v vs %v", got, want)
	}
}

func TestSim3ComposeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		a := randomSim3(rng)
		b := randomSim3(rng)
		p := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if got, want := a.Compose(b).Apply(p), a.Apply(b.Apply(p)); !vecAlmostEq(got, want, 1e-6) {
			t.Fatalf("sim3 compose: %v vs %v", got, want)
		}
		if got := a.Inverse().Apply(a.Apply(p)); !vecAlmostEq(got, p, 1e-6) {
			t.Fatalf("sim3 inverse: %v vs %v", got, p)
		}
	}
}

func randomSim3(rng *rand.Rand) Sim3 {
	return Sim3{
		S: 0.5 + rng.Float64()*2,
		R: randomQuat(rng),
		T: Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
	}
}

func TestCholeskySolve(t *testing.T) {
	// A = M^T*M + I is SPD for any M.
	rng := rand.New(rand.NewSource(9))
	n := 12
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += m[k*n+i] * m[k*n+j]
			}
			if i == j {
				s++
			}
			a[i*n+j] = s
		}
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i] += a[i*n+j] * want[j]
		}
	}
	aCopy := make([]float64, len(a))
	copy(aCopy, a)
	if err := CholeskySolve(aCopy, b, n); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEq(b[i], want[i], 1e-8) {
			t.Fatalf("x[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := []float64{1, 0, 0, -1} // eigenvalues 1, -1
	b := []float64{1, 1}
	if err := CholeskySolve(a, b, 2); err == nil {
		t.Error("expected failure for indefinite matrix")
	}
	if err := CholeskySolve([]float64{1}, []float64{1, 2}, 2); err == nil {
		t.Error("expected dimension error")
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	a := []float64{
		3, 0, 0,
		0, -1, 0,
		0, 0, 7,
	}
	vals, _ := SymmetricEigen(a, 3)
	want := []float64{7, 3, -1}
	for i := range want {
		if !almostEq(vals[i], want[i], 1e-9) {
			t.Fatalf("vals = %v", vals)
		}
	}
}

func TestSymmetricEigenReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 5
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	vals, vecs := SymmetricEigen(a, n)
	// Check A*v_j = lambda_j*v_j for each eigenpair.
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			av := 0.0
			for k := 0; k < n; k++ {
				av += a[i*n+k] * vecs[k*n+j]
			}
			if !almostEq(av, vals[j]*vecs[i*n+j], 1e-8) {
				t.Fatalf("eigenpair %d violated: %v vs %v", j, av, vals[j]*vecs[i*n+j])
			}
		}
	}
}

func TestAlignHornExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		truth := randomSim3(rng)
		src := make([]Vec3, 20)
		dst := make([]Vec3, 20)
		for i := range src {
			src[i] = Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Scale(5)
			dst[i] = truth.Apply(src[i])
		}
		got, err := AlignHorn(src, dst, true)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got.S, truth.S, 1e-6) {
			t.Fatalf("scale %v want %v", got.S, truth.S)
		}
		if rmse := AlignmentRMSE(got, src, dst); rmse > 1e-6 {
			t.Fatalf("rmse = %v", rmse)
		}
	}
}

func TestAlignHornRigid(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	truth := Sim3FromSE3(randomSE3(rng))
	src := make([]Vec3, 30)
	dst := make([]Vec3, 30)
	for i := range src {
		src[i] = Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Scale(4)
		// Small noise keeps the problem realistic.
		noise := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Scale(0.001)
		dst[i] = truth.Apply(src[i]).Add(noise)
	}
	got, err := AlignHorn(src, dst, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.S != 1 {
		t.Errorf("rigid alignment changed scale: %v", got.S)
	}
	if rmse := AlignmentRMSE(got, src, dst); rmse > 0.01 {
		t.Errorf("rmse = %v", rmse)
	}
}

func TestAlignHornDegenerate(t *testing.T) {
	if _, err := AlignHorn([]Vec3{{1, 0, 0}}, []Vec3{{0, 1, 0}}, true); err == nil {
		t.Error("expected error for too few points")
	}
	same := []Vec3{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}
	if _, err := AlignHorn(same, same, true); err == nil {
		t.Error("expected error for coincident points")
	}
}

func TestSim3ApplyPoseConsistent(t *testing.T) {
	// Transforming a camera-to-world pose through a Sim3 must move the
	// camera center the same way it moves ordinary points.
	rng := rand.New(rand.NewSource(13))
	tf := randomSim3(rng)
	pose := randomSE3(rng) // camera-to-world: center = pose.T
	moved := tf.ApplyPose(pose)
	if !vecAlmostEq(moved.T, tf.Apply(pose.T), 1e-9) {
		t.Errorf("pose center %v, expected %v", moved.T, tf.Apply(pose.T))
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestVec2(t *testing.T) {
	a := Vec2{3, 4}
	if a.Norm() != 5 {
		t.Errorf("Norm = %v", a.Norm())
	}
	if a.NormSq() != 25 {
		t.Errorf("NormSq = %v", a.NormSq())
	}
	if got := a.Add(Vec2{1, 1}).Sub(Vec2{1, 1}); got != a {
		t.Errorf("Add/Sub = %v", got)
	}
	if got := a.Scale(2).Dot(a); got != 50 {
		t.Errorf("Dot = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vec3{1, 2, 3}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vec3{math.NaN(), 0, 0}).IsFinite() {
		t.Error("NaN not caught")
	}
	if (Vec3{0, math.Inf(1), 0}).IsFinite() {
		t.Error("Inf not caught")
	}
}
