// Package geom provides the small fixed-size linear algebra used
// throughout the SLAM pipeline: 2- and 3-vectors, 3x3 and 4x4 matrices,
// quaternions, rigid-body transforms (SE3), similarity transforms
// (Sim3), and the dense solvers (Cholesky, Jacobi eigendecomposition)
// needed by pose optimization, bundle adjustment and Horn alignment.
//
// All types are plain value types with no hidden allocation so they can
// live inside shared-memory arenas (see internal/shm) and be copied
// freely between goroutines.
package geom

import "math"

// Vec2 is a 2D vector, used for pixel coordinates and image-plane
// measurements.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s*v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Dot returns the inner product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// NormSq returns the squared Euclidean length of v.
func (v Vec2) NormSq() float64 { return v.X*v.X + v.Y*v.Y }

// Vec3 is a 3D vector, used for positions, velocities, angular rates
// and translation components.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the inner product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.NormSq()) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.X*v.X + v.Y*v.Y + v.Z*v.Z }

// Normalized returns v scaled to unit length. The zero vector is
// returned unchanged.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Hat returns the skew-symmetric matrix [v]_x such that
// Hat(v)*w == v.Cross(w).
func (v Vec3) Hat() Mat3 {
	return Mat3{
		0, -v.Z, v.Y,
		v.Z, 0, -v.X,
		-v.Y, v.X, 0,
	}
}

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return v.Add(w.Sub(v).Scale(t))
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}
