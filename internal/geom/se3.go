package geom

import "fmt"

// SE3 is a rigid-body transform (rotation followed by translation):
// p' = R*p + T. In SLAM it represents both camera poses (world-to-
// camera) and their inverses (camera-to-world), depending on context.
type SE3 struct {
	R Quat
	T Vec3
}

// IdentitySE3 returns the identity transform.
func IdentitySE3() SE3 { return SE3{R: IdentityQuat()} }

// Apply transforms point p.
func (s SE3) Apply(p Vec3) Vec3 { return s.R.Rotate(p).Add(s.T) }

// Compose returns the transform equivalent to applying t first,
// then s: (s*t)(p) = s(t(p)).
func (s SE3) Compose(t SE3) SE3 {
	return SE3{
		R: s.R.Mul(t.R).Normalized(),
		T: s.R.Rotate(t.T).Add(s.T),
	}
}

// Inverse returns the inverse transform.
func (s SE3) Inverse() SE3 {
	ri := s.R.Conj()
	return SE3{R: ri, T: ri.Rotate(s.T).Neg()}
}

// Mat4 returns the homogeneous 4x4 matrix of the transform — the
// representation the paper's server returns to clients.
func (s SE3) Mat4() Mat4 {
	r := s.R.Mat()
	return Mat4{
		r[0], r[1], r[2], s.T.X,
		r[3], r[4], r[5], s.T.Y,
		r[6], r[7], r[8], s.T.Z,
		0, 0, 0, 1,
	}
}

// SE3FromMat4 extracts the rigid transform from a homogeneous matrix.
// The upper-left 3x3 block must be a rotation.
func SE3FromMat4(m Mat4) SE3 {
	r := Mat3{
		m[0], m[1], m[2],
		m[4], m[5], m[6],
		m[8], m[9], m[10],
	}
	return SE3{R: QuatFromMat(r), T: Vec3{m[3], m[7], m[11]}}
}

// Delta returns the transform d such that d.Compose(s) == t, i.e. the
// relative motion from s to t expressed in the common outer frame.
func (s SE3) Delta(t SE3) SE3 { return t.Compose(s.Inverse()) }

// TranslationTo returns the Euclidean distance between the translation
// parts of s and t.
func (s SE3) TranslationTo(t SE3) float64 { return s.T.Dist(t.T) }

// Interpolate interpolates rigid transforms: slerp on rotation and
// lerp on translation, with u in [0, 1].
func (s SE3) Interpolate(t SE3, u float64) SE3 {
	return SE3{R: s.R.Slerp(t.R, u), T: s.T.Lerp(t.T, u)}
}

func (s SE3) String() string {
	return fmt.Sprintf("SE3{R:(%.4f,%.4f,%.4f,%.4f) T:(%.4f,%.4f,%.4f)}",
		s.R.W, s.R.X, s.R.Y, s.R.Z, s.T.X, s.T.Y, s.T.Z)
}

// Sim3 is a similarity transform p' = s*R*p + T. Map merging between
// monocular clients aligns maps up to scale, which Sim3 captures.
type Sim3 struct {
	S float64
	R Quat
	T Vec3
}

// IdentitySim3 returns the identity similarity.
func IdentitySim3() Sim3 { return Sim3{S: 1, R: IdentityQuat()} }

// Apply transforms point p.
func (s Sim3) Apply(p Vec3) Vec3 { return s.R.Rotate(p).Scale(s.S).Add(s.T) }

// Compose returns the similarity equivalent to applying t first, then s.
func (s Sim3) Compose(t Sim3) Sim3 {
	return Sim3{
		S: s.S * t.S,
		R: s.R.Mul(t.R).Normalized(),
		T: s.R.Rotate(t.T).Scale(s.S).Add(s.T),
	}
}

// Inverse returns the inverse similarity.
func (s Sim3) Inverse() Sim3 {
	ri := s.R.Conj()
	si := 1 / s.S
	return Sim3{S: si, R: ri, T: ri.Rotate(s.T).Scale(-si)}
}

// SE3 drops the scale component (valid when S is approximately 1, the
// stereo / inertial case where scale is observable).
func (s Sim3) SE3() SE3 { return SE3{R: s.R, T: s.T} }

// Sim3FromSE3 lifts a rigid transform into a similarity with unit scale.
func Sim3FromSE3(t SE3) Sim3 { return Sim3{S: 1, R: t.R, T: t.T} }

// ApplyPose maps a camera-to-world pose through the similarity: the
// rotated/translated/scaled pose a keyframe assumes after its map is
// merged into another map's coordinate frame.
func (s Sim3) ApplyPose(p SE3) SE3 {
	return SE3{
		R: s.R.Mul(p.R).Normalized(),
		T: s.R.Rotate(p.T).Scale(s.S).Add(s.T),
	}
}
