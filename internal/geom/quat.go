package geom

import "math"

// Quat is a unit quaternion representing a 3D rotation, stored as
// (W, X, Y, Z) with W the scalar part.
type Quat struct {
	W, X, Y, Z float64
}

// IdentityQuat returns the identity rotation.
func IdentityQuat() Quat { return Quat{W: 1} }

// QuatFromAxisAngle returns the rotation of angle radians about the
// given axis. The axis need not be normalized; a zero axis yields the
// identity rotation.
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	n := axis.Norm()
	if n == 0 {
		return IdentityQuat()
	}
	s := math.Sin(angle/2) / n
	return Quat{
		W: math.Cos(angle / 2),
		X: axis.X * s,
		Y: axis.Y * s,
		Z: axis.Z * s,
	}
}

// QuatFromRotVec returns the rotation encoded by the rotation vector
// w (axis * angle), i.e. the exponential map of so(3).
func QuatFromRotVec(w Vec3) Quat {
	angle := w.Norm()
	if angle < 1e-12 {
		// First-order expansion keeps the map smooth near zero.
		q := Quat{W: 1, X: w.X / 2, Y: w.Y / 2, Z: w.Z / 2}
		return q.Normalized()
	}
	return QuatFromAxisAngle(w, angle)
}

// RotVec returns the rotation vector (axis * angle) of q, the
// logarithmic map into so(3).
func (q Quat) RotVec() Vec3 {
	qq := q
	if qq.W < 0 { // keep the short rotation
		qq = Quat{-qq.W, -qq.X, -qq.Y, -qq.Z}
	}
	vn := math.Sqrt(qq.X*qq.X + qq.Y*qq.Y + qq.Z*qq.Z)
	if vn < 1e-12 {
		return Vec3{2 * qq.X, 2 * qq.Y, 2 * qq.Z}
	}
	angle := 2 * math.Atan2(vn, qq.W)
	s := angle / vn
	return Vec3{qq.X * s, qq.Y * s, qq.Z * s}
}

// Mul returns the Hamilton product q*r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Norm returns the quaternion norm.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalized returns q scaled to unit norm. A zero quaternion becomes
// the identity.
func (q Quat) Normalized() Quat {
	n := q.Norm()
	if n == 0 {
		return IdentityQuat()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Rotate applies the rotation to v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = v + 2*u x (u x v + w*v), u = (X,Y,Z)
	u := Vec3{q.X, q.Y, q.Z}
	t := u.Cross(v).Scale(2)
	return v.Add(t.Scale(q.W)).Add(u.Cross(t))
}

// Mat returns the 3x3 rotation matrix of q.
func (q Quat) Mat() Mat3 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y),
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x),
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y),
	}
}

// QuatFromMat converts a rotation matrix to a unit quaternion using
// Shepperd's method (numerically stable branch selection).
func QuatFromMat(m Mat3) Quat {
	tr := m.Trace()
	var q Quat
	switch {
	case tr > 0:
		s := math.Sqrt(tr+1) * 2
		q = Quat{
			W: s / 4,
			X: (m.At(2, 1) - m.At(1, 2)) / s,
			Y: (m.At(0, 2) - m.At(2, 0)) / s,
			Z: (m.At(1, 0) - m.At(0, 1)) / s,
		}
	case m.At(0, 0) > m.At(1, 1) && m.At(0, 0) > m.At(2, 2):
		s := math.Sqrt(1+m.At(0, 0)-m.At(1, 1)-m.At(2, 2)) * 2
		q = Quat{
			W: (m.At(2, 1) - m.At(1, 2)) / s,
			X: s / 4,
			Y: (m.At(0, 1) + m.At(1, 0)) / s,
			Z: (m.At(0, 2) + m.At(2, 0)) / s,
		}
	case m.At(1, 1) > m.At(2, 2):
		s := math.Sqrt(1+m.At(1, 1)-m.At(0, 0)-m.At(2, 2)) * 2
		q = Quat{
			W: (m.At(0, 2) - m.At(2, 0)) / s,
			X: (m.At(0, 1) + m.At(1, 0)) / s,
			Y: s / 4,
			Z: (m.At(1, 2) + m.At(2, 1)) / s,
		}
	default:
		s := math.Sqrt(1+m.At(2, 2)-m.At(0, 0)-m.At(1, 1)) * 2
		q = Quat{
			W: (m.At(1, 0) - m.At(0, 1)) / s,
			X: (m.At(0, 2) + m.At(2, 0)) / s,
			Y: (m.At(1, 2) + m.At(2, 1)) / s,
			Z: s / 4,
		}
	}
	return q.Normalized()
}

// Slerp spherically interpolates from q (t=0) to r (t=1).
func (q Quat) Slerp(r Quat, t float64) Quat {
	dot := q.W*r.W + q.X*r.X + q.Y*r.Y + q.Z*r.Z
	if dot < 0 {
		r = Quat{-r.W, -r.X, -r.Y, -r.Z}
		dot = -dot
	}
	if dot > 0.9995 {
		// Nearly parallel: linear interpolation avoids division by a
		// vanishing sine.
		return Quat{
			q.W + t*(r.W-q.W),
			q.X + t*(r.X-q.X),
			q.Y + t*(r.Y-q.Y),
			q.Z + t*(r.Z-q.Z),
		}.Normalized()
	}
	theta := math.Acos(dot)
	sin := math.Sin(theta)
	a := math.Sin((1-t)*theta) / sin
	b := math.Sin(t*theta) / sin
	return Quat{
		a*q.W + b*r.W,
		a*q.X + b*r.X,
		a*q.Y + b*r.Y,
		a*q.Z + b*r.Z,
	}.Normalized()
}

// AngleTo returns the absolute rotation angle in radians between q and r.
func (q Quat) AngleTo(r Quat) float64 {
	d := q.Conj().Mul(r)
	return d.RotVec().Norm()
}
