// Package render synthesizes the camera frames an AR device would
// capture: it projects the world's landmarks through a pinhole camera
// and draws each one as a unique, high-contrast screen-aligned patch
// whose appearance is deterministic in the landmark's seed. The result
// is that a real FAST detector finds a corner at every visible
// landmark and a real BRIEF descriptor of it is stable across views —
// the property that makes the full SLAM pipeline (extraction, matching,
// triangulation, merging) run end-to-end on genuinely synthetic pixels.
//
// Substitution note (see DESIGN.md): patches are drawn screen-aligned
// and depth-sorted (painter's algorithm) but not occluded by geometry,
// and do not scale with perspective. This preserves the code paths the
// paper exercises while keeping the generator tractable.
package render

import (
	"slamshare/internal/camera"
	"slamshare/internal/geom"
	"slamshare/internal/img"
	"slamshare/internal/worldgen"
)

// Config controls frame synthesis.
type Config struct {
	PatchRadius int     // half-size of the landmark patch in pixels
	CellSize    int     // pixels per random intensity cell inside a patch
	NoiseSigma  float64 // per-frame additive pixel noise stddev
	MinDepth    float64 // metres
	MaxDepth    float64 // metres
	Background  byte    // background intensity
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		PatchRadius: 10,
		CellSize:    3,
		NoiseSigma:  1.0,
		MinDepth:    0.3,
		MaxDepth:    35,
		Background:  96,
	}
}

// VehicularConfig extends the visibility range for street scenes.
func VehicularConfig() Config {
	c := DefaultConfig()
	c.MaxDepth = 70
	return c
}

// Projection records where a landmark landed in a rendered frame —
// ground truth used by tests and metrics, never by the SLAM path.
type Projection struct {
	Landmark worldgen.Landmark
	Px       geom.Vec2
	Depth    float64
}

// Renderer draws frames of one world through one camera rig.
type Renderer struct {
	World *worldgen.World
	Rig   camera.Rig
	Cfg   Config

	patches map[uint64][]byte // appearance cache keyed by landmark seed
}

// New returns a renderer.
func New(w *worldgen.World, rig camera.Rig, cfg Config) *Renderer {
	if cfg.PatchRadius <= 0 {
		cfg = DefaultConfig()
	}
	return &Renderer{World: w, Rig: rig, Cfg: cfg, patches: make(map[uint64][]byte)}
}

// Render synthesizes the left-eye frame at the given camera-to-world
// pose. frameSeed varies the additive noise between frames.
func (r *Renderer) Render(pose geom.SE3, frameSeed uint64) *img.Gray {
	return r.renderEye(pose, frameSeed)
}

// RenderStereo synthesizes a rectified stereo pair. The right eye is
// displaced by the rig baseline along the camera +X axis.
func (r *Renderer) RenderStereo(pose geom.SE3, frameSeed uint64) (left, right *img.Gray) {
	left = r.renderEye(pose, frameSeed)
	rp := geom.SE3{R: pose.R, T: pose.Apply(geom.Vec3{X: r.Rig.Baseline})}
	right = r.renderEye(rp, frameSeed^0xABCDEF)
	return left, right
}

func (r *Renderer) renderEye(pose geom.SE3, frameSeed uint64) *img.Gray {
	in := r.Rig.Intr
	frame := img.New(in.Width, in.Height)
	frame.Fill(r.Cfg.Background)

	vis := r.World.Visible(pose, r.Rig, r.Cfg.MinDepth, r.Cfg.MaxDepth)
	tcw := pose.Inverse()
	// Painter's algorithm: draw farthest first so near patches win.
	for i := len(vis) - 1; i >= 0; i-- {
		lm := vis[i]
		pc := tcw.Apply(lm.Pos)
		px, ok := in.Project(pc)
		if !ok {
			continue
		}
		r.drawPatch(frame, int(px.X+0.5), int(px.Y+0.5), lm.Seed)
	}
	if r.Cfg.NoiseSigma > 0 {
		addNoise(frame, r.Cfg.NoiseSigma, frameSeed)
	}
	return frame
}

// Truth returns the ground-truth projections of the left eye at pose,
// nearest first. SLAM never sees this; tests and metrics do.
func (r *Renderer) Truth(pose geom.SE3) []Projection {
	vis := r.World.Visible(pose, r.Rig, r.Cfg.MinDepth, r.Cfg.MaxDepth)
	tcw := pose.Inverse()
	out := make([]Projection, 0, len(vis))
	for _, lm := range vis {
		pc := tcw.Apply(lm.Pos)
		px, ok := r.Rig.Intr.Project(pc)
		if !ok {
			continue
		}
		out = append(out, Projection{Landmark: lm, Px: px, Depth: pc.Z})
	}
	return out
}

// patch returns (and caches) the appearance of a landmark: a square of
// random intensity cells with a guaranteed FAST-corner structure at the
// center (dark center pixel inside a bright radius-3 ring).
func (r *Renderer) patch(seed uint64) []byte {
	if p, ok := r.patches[seed]; ok {
		return p
	}
	rad := r.Cfg.PatchRadius
	side := 2*rad + 1
	p := make([]byte, side*side)
	cell := r.Cfg.CellSize
	if cell < 1 {
		cell = 3
	}
	s := seed
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	// Random cells spanning the full intensity range.
	cells := (side + cell - 1) / cell
	vals := make([]byte, cells*cells)
	for i := range vals {
		vals[i] = byte(40 + next()%176) // 40..215, avoids clipping with noise
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			p[y*side+x] = vals[(y/cell)*cells+(x/cell)]
		}
	}
	// Corner structure at the center: bright ring of radius 3 around a
	// dark center so FAST-9 fires with a wide threshold margin, with
	// the interior brightened to keep the ring contiguous in intensity.
	set := func(dx, dy int, v byte) {
		p[(rad+dy)*side+(rad+dx)] = v
	}
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			if dx*dx+dy*dy <= 4 {
				set(dx, dy, 15)
			}
		}
	}
	for _, o := range fastCircle {
		set(o[0], o[1], 235)
	}
	set(0, 0, 10)
	r.patches[seed] = p
	return p
}

// fastCircle is the 16-pixel Bresenham circle of radius 3 used by
// FAST-9 (same offsets as internal/feature).
var fastCircle = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1},
	{3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1},
	{-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

func (r *Renderer) drawPatch(frame *img.Gray, cx, cy int, seed uint64) {
	rad := r.Cfg.PatchRadius
	side := 2*rad + 1
	p := r.patch(seed)
	for dy := -rad; dy <= rad; dy++ {
		y := cy + dy
		if y < 0 || y >= frame.H {
			continue
		}
		row := frame.Row(y)
		prow := p[(dy+rad)*side:]
		for dx := -rad; dx <= rad; dx++ {
			x := cx + dx
			if x < 0 || x >= frame.W {
				continue
			}
			row[x] = prow[dx+rad]
		}
	}
}

// addNoise perturbs every pixel with an approximately Gaussian value of
// the given stddev, deterministically in seed.
func addNoise(frame *img.Gray, sigma float64, seed uint64) {
	s := seed
	for i := range frame.Pix {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		// Sum of four uniform bytes approximates a Gaussian (CLT):
		// mean 510, stddev ~147; normalize to a unit normal.
		sum := float64(byte(z)) + float64(byte(z>>8)) + float64(byte(z>>16)) + float64(byte(z>>24))
		v := float64(frame.Pix[i]) + (sum-510)/147*sigma
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		frame.Pix[i] = byte(v)
	}
}
