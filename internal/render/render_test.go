package render

import (
	"math"
	"testing"

	"slamshare/internal/camera"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/img"
	"slamshare/internal/worldgen"
)

func testRenderer() (*Renderer, geom.SE3) {
	world := worldgen.MachineHall(11, 120)
	rig := camera.NewStereoRig(camera.EuRoCIntrinsics(), 0.11)
	r := New(world, rig, DefaultConfig())
	pose := geom.SE3{
		R: worldgen.LookRotation(geom.Vec3{X: 1}, geom.Vec3{Z: 1}),
		T: geom.Vec3{X: -4, Y: 0, Z: 2},
	}
	return r, pose
}

func TestRenderDeterministic(t *testing.T) {
	r, pose := testRenderer()
	a := r.Render(pose, 5)
	b := r.Render(pose, 5)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("rendering is not deterministic")
		}
	}
	c := r.Render(pose, 6)
	if img.AbsDiff(a, c) == 0 {
		t.Error("different frame seeds produced identical noise")
	}
}

func TestRenderHasContent(t *testing.T) {
	r, pose := testRenderer()
	f := r.Render(pose, 1)
	if f.W != r.Rig.Intr.Width || f.H != r.Rig.Intr.Height {
		t.Fatalf("frame size %dx%d", f.W, f.H)
	}
	// The frame must contain patch pixels darker and brighter than the
	// background.
	var lo, hi int
	for _, p := range f.Pix {
		if p < 50 {
			lo++
		}
		if p > 200 {
			hi++
		}
	}
	if lo < 100 || hi < 100 {
		t.Errorf("frame lacks patch contrast: lo=%d hi=%d", lo, hi)
	}
}

func TestTruthMatchesProjection(t *testing.T) {
	r, pose := testRenderer()
	truth := r.Truth(pose)
	if len(truth) < 30 {
		t.Fatalf("too few visible landmarks: %d", len(truth))
	}
	tcw := pose.Inverse()
	for _, pr := range truth {
		px, ok := r.Rig.Intr.Project(tcw.Apply(pr.Landmark.Pos))
		if !ok {
			t.Fatal("truth projection out of frustum")
		}
		if px.Sub(pr.Px).Norm() > 1e-9 {
			t.Fatal("truth pixel mismatch")
		}
	}
}

// TestDetectionCoversLandmarks is the load-bearing integration check:
// a real FAST detector must find a corner within 2 px of (almost)
// every rendered landmark.
func TestDetectionCoversLandmarks(t *testing.T) {
	r, pose := testRenderer()
	f := r.Render(pose, 3)
	truth := r.Truth(pose)
	ex := feature.NewExtractor(feature.DefaultConfig())
	kps := ex.Extract(f)
	if len(kps) == 0 {
		t.Fatal("no keypoints extracted")
	}
	covered, total := 0, 0
	for _, pr := range unoccluded(truth) {
		if !r.Rig.Intr.InBounds(pr.Px, feature.Border+2) {
			continue
		}
		total++
		for _, k := range kps {
			if math.Abs(k.X-pr.Px.X) <= 2 && math.Abs(k.Y-pr.Px.Y) <= 2 {
				covered++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no in-bounds landmarks")
	}
	if frac := float64(covered) / float64(total); frac < 0.8 {
		t.Errorf("only %.0f%% of landmarks detected (%d/%d)", frac*100, covered, total)
	}
}

// unoccluded filters truth (sorted nearest-first) down to landmarks
// whose patch center was not overdrawn by a nearer landmark's patch.
func unoccluded(truth []Projection) []Projection {
	var out []Projection
	for i, pr := range truth {
		clear := true
		for j := 0; j < i; j++ {
			if math.Abs(truth[j].Px.X-pr.Px.X) < 12 && math.Abs(truth[j].Px.Y-pr.Px.Y) < 12 {
				clear = false
				break
			}
		}
		if clear {
			out = append(out, pr)
		}
	}
	return out
}

// TestDescriptorsMatchAcrossViews verifies the same landmark yields
// matchable descriptors from two different camera positions — the
// property tracking and merging depend on.
func TestDescriptorsMatchAcrossViews(t *testing.T) {
	r, pose := testRenderer()
	pose2 := geom.SE3{
		R: pose.R.Mul(geom.QuatFromAxisAngle(geom.Vec3{Y: 1}, 0.03)),
		T: pose.T.Add(geom.Vec3{X: 0.15, Y: 0.1, Z: 0.02}),
	}
	ex := feature.NewExtractor(feature.DefaultConfig())
	k1 := ex.Extract(r.Render(pose, 1))
	k2 := ex.Extract(r.Render(pose2, 2))
	matches := feature.MatchBrute(k1, k2, feature.MatchThresholdStrict, feature.RatioTest)
	if len(matches) < 30 {
		t.Fatalf("too few cross-view matches: %d (k1=%d k2=%d)", len(matches), len(k1), len(k2))
	}
	// Verify matches are geometrically consistent using ground truth:
	// keypoints near the same landmark in both views.
	t1 := r.Truth(pose)
	t2 := r.Truth(pose2)
	nearest := func(truth []Projection, x, y float64) (uint32, bool) {
		bestD := 3.0
		var id uint32
		ok := false
		for _, pr := range truth {
			d := math.Hypot(pr.Px.X-x, pr.Px.Y-y)
			if d < bestD {
				bestD = d
				id = pr.Landmark.ID
				ok = true
			}
		}
		return id, ok
	}
	good, checked := 0, 0
	for _, m := range matches {
		id1, ok1 := nearest(t1, k1[m.A].X, k1[m.A].Y)
		id2, ok2 := nearest(t2, k2[m.B].X, k2[m.B].Y)
		if !ok1 || !ok2 {
			continue
		}
		checked++
		if id1 == id2 {
			good++
		}
	}
	if checked < 20 {
		t.Fatalf("too few verifiable matches: %d", checked)
	}
	if frac := float64(good) / float64(checked); frac < 0.9 {
		t.Errorf("match purity %.0f%% (%d/%d)", frac*100, good, checked)
	}
}

func TestStereoPairDisparity(t *testing.T) {
	r, pose := testRenderer()
	left, right := r.RenderStereo(pose, 4)
	ex := feature.NewExtractor(feature.DefaultConfig())
	kl := ex.Extract(left)
	kr := ex.Extract(right)
	n := feature.StereoMatch(kl, kr, r.Rig.Intr.Fx, r.Rig.Baseline, 2)
	if n < 20 {
		t.Fatalf("too few stereo matches: %d", n)
	}
	// Triangulated depths must agree with ground truth landmark depths.
	truth := r.Truth(pose)
	good, checked := 0, 0
	for _, k := range kl {
		if k.Depth <= 0 {
			continue
		}
		for _, pr := range truth {
			if math.Hypot(pr.Px.X-k.X, pr.Px.Y-k.Y) < 2 {
				checked++
				if math.Abs(k.Depth-pr.Depth)/pr.Depth < 0.15 {
					good++
				}
				break
			}
		}
	}
	if checked < 15 {
		t.Fatalf("too few depth checks: %d", checked)
	}
	if frac := float64(good) / float64(checked); frac < 0.8 {
		t.Errorf("stereo depth accuracy %.0f%% (%d/%d)", frac*100, good, checked)
	}
}

func TestConfigDefaults(t *testing.T) {
	w := worldgen.ViconRoom(1, 50)
	rig := camera.NewMonoRig(camera.TUMIntrinsics())
	r := New(w, rig, Config{}) // zero config must be replaced by defaults
	if r.Cfg.PatchRadius <= 0 || r.Cfg.MaxDepth <= 0 {
		t.Error("defaults not applied")
	}
	if v := VehicularConfig(); v.MaxDepth <= DefaultConfig().MaxDepth {
		t.Error("vehicular config should see farther")
	}
}

func TestPatchCacheReuse(t *testing.T) {
	r, pose := testRenderer()
	r.Render(pose, 1)
	n := len(r.patches)
	r.Render(pose, 2)
	if len(r.patches) != n {
		t.Error("patch cache grew on identical view")
	}
	if n == 0 {
		t.Error("patch cache unused")
	}
}
