// Package worldgen procedurally generates the 3D environments and
// device trajectories that substitute for the EuRoC and KITTI
// recordings used in the paper. A World is a set of visually unique
// landmarks (points with deterministic appearance seeds); a Trajectory
// is a smooth, twice-differentiable-enough path through it from which
// camera poses and IMU measurements are derived.
package worldgen

import (
	"math"

	"slamshare/internal/geom"
)

// Spline is a centripetal-flavoured Catmull-Rom spline through
// waypoints with uniform time spacing. It provides the C1-continuous
// positions needed for realistic IMU simulation.
type Spline struct {
	Points []geom.Vec3
	Dt     float64 // time between consecutive waypoints, seconds
}

// NewSpline builds a spline visiting points with dt seconds between
// consecutive waypoints. At least two points are required.
func NewSpline(points []geom.Vec3, dt float64) *Spline {
	return &Spline{Points: points, Dt: dt}
}

// Duration returns the total traversal time.
func (s *Spline) Duration() float64 {
	if len(s.Points) < 2 {
		return 0
	}
	return float64(len(s.Points)-1) * s.Dt
}

// At evaluates the spline position at time t. Times outside the range
// clamp to the endpoints.
func (s *Spline) At(t float64) geom.Vec3 {
	n := len(s.Points)
	if n == 0 {
		return geom.Vec3{}
	}
	if n == 1 {
		return s.Points[0]
	}
	u := t / s.Dt
	if u <= 0 {
		return s.Points[0]
	}
	if u >= float64(n-1) {
		return s.Points[n-1]
	}
	i := int(u)
	f := u - float64(i)
	p0 := s.point(i - 1)
	p1 := s.point(i)
	p2 := s.point(i + 1)
	p3 := s.point(i + 2)
	return catmullRom(p0, p1, p2, p3, f)
}

// Velocity returns the spline velocity at time t via central
// differences.
func (s *Spline) Velocity(t float64) geom.Vec3 {
	const h = 1e-4
	return s.At(t + h).Sub(s.At(t - h)).Scale(1 / (2 * h))
}

func (s *Spline) point(i int) geom.Vec3 {
	if i < 0 {
		i = 0
	}
	if i >= len(s.Points) {
		i = len(s.Points) - 1
	}
	return s.Points[i]
}

func catmullRom(p0, p1, p2, p3 geom.Vec3, t float64) geom.Vec3 {
	t2 := t * t
	t3 := t2 * t
	a := p1.Scale(2)
	b := p2.Sub(p0).Scale(t)
	c := p0.Scale(2).Sub(p1.Scale(5)).Add(p2.Scale(4)).Sub(p3).Scale(t2)
	d := p1.Scale(3).Sub(p0).Sub(p2.Scale(3)).Add(p3).Scale(t3)
	return a.Add(b).Add(c).Add(d).Scale(0.5)
}

// LookRotation returns the rotation of a camera whose optical axis
// (+Z) points along forward with the image "down" (+Y) roughly aligned
// against the world up vector. Falls back gracefully when forward is
// parallel to up.
func LookRotation(forward, up geom.Vec3) geom.Quat {
	f := forward.Normalized()
	if f.Norm() == 0 {
		return geom.IdentityQuat()
	}
	r := f.Cross(up)
	if r.Norm() < 1e-6 {
		r = f.Cross(geom.Vec3{Y: 1})
		if r.Norm() < 1e-6 {
			r = f.Cross(geom.Vec3{X: 1})
		}
	}
	r = r.Normalized()
	d := f.Cross(r) // camera down
	// Rotation matrix with columns (right, down, forward): maps camera
	// coordinates to world coordinates.
	m := geom.Mat3{
		r.X, d.X, f.X,
		r.Y, d.Y, f.Y,
		r.Z, d.Z, f.Z,
	}
	return geom.QuatFromMat(m)
}

// Trajectory is a time-parameterized body-to-world pose path. It
// implements imu.PoseSampler.
type Trajectory interface {
	PoseAt(t float64) geom.SE3
	Duration() float64
}

// SplineTrajectory follows a spline, orienting the camera along the
// smoothed direction of travel with an optional fixed pitch-down, the
// way a drone or vehicle camera is mounted.
type SplineTrajectory struct {
	Spline    *Spline
	PitchDown float64 // radians of downward pitch applied to the view
	Smooth    float64 // look-ahead horizon for the forward direction, seconds
}

// NewSplineTrajectory wraps a spline with default orientation
// smoothing.
func NewSplineTrajectory(s *Spline) *SplineTrajectory {
	return &SplineTrajectory{Spline: s, Smooth: 0.5}
}

// Duration returns the trajectory duration.
func (st *SplineTrajectory) Duration() float64 { return st.Spline.Duration() }

// PoseAt returns the camera-to-world pose at time t.
func (st *SplineTrajectory) PoseAt(t float64) geom.SE3 {
	pos := st.Spline.At(t)
	// Forward direction from a short look-ahead; smoother than raw
	// velocity and well defined at the endpoints.
	horizon := st.Smooth
	if horizon <= 0 {
		horizon = 0.5
	}
	ahead := st.Spline.At(t + horizon)
	f := ahead.Sub(pos)
	if f.Norm() < 1e-9 {
		f = st.Spline.Velocity(t)
	}
	if f.Norm() < 1e-9 {
		f = geom.Vec3{X: 1}
	}
	r := LookRotation(f, geom.Vec3{Z: 1})
	if st.PitchDown != 0 {
		r = r.Mul(geom.QuatFromAxisAngle(geom.Vec3{X: 1}, st.PitchDown))
	}
	return geom.SE3{R: r, T: pos}
}

// OrbitTrajectory circles a center point at fixed radius and height,
// always looking at the center — the motion of a drone inspecting a
// room, used by the V202-style sequences.
type OrbitTrajectory struct {
	Center geom.Vec3
	Radius float64
	Height float64
	Omega  float64 // angular rate, rad/s
	Dur    float64
	Phase  float64
}

// Duration returns the trajectory duration.
func (o *OrbitTrajectory) Duration() float64 { return o.Dur }

// PoseAt returns the orbiting camera pose at time t.
func (o *OrbitTrajectory) PoseAt(t float64) geom.SE3 {
	a := o.Phase + o.Omega*t
	pos := geom.Vec3{
		X: o.Center.X + o.Radius*math.Cos(a),
		Y: o.Center.Y + o.Radius*math.Sin(a),
		Z: o.Center.Z + o.Height,
	}
	look := o.Center.Sub(pos)
	return geom.SE3{R: LookRotation(look, geom.Vec3{Z: 1}), T: pos}
}

// SegmentTrajectory exposes a time window [T0, T1] of an inner
// trajectory re-based to start at t=0 — how the KITTI-05 sequence is
// split into three per-client segments in Fig. 10c.
type SegmentTrajectory struct {
	Inner  Trajectory
	T0, T1 float64
}

// Duration returns the segment duration.
func (s *SegmentTrajectory) Duration() float64 { return s.T1 - s.T0 }

// PoseAt returns the inner trajectory pose at segment-local time t.
func (s *SegmentTrajectory) PoseAt(t float64) geom.SE3 {
	return s.Inner.PoseAt(s.T0 + geom.Clamp(t, 0, s.T1-s.T0))
}
