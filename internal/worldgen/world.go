package worldgen

import (
	"math"
	"math/rand"

	"slamshare/internal/camera"
	"slamshare/internal/geom"
)

// Landmark is a visually distinctive 3D point in the world. Seed
// determines its rendered appearance deterministically, so the same
// landmark produces (nearly) the same ORB descriptor from any viewpoint
// — the property real corner features have that makes SLAM matching
// possible.
type Landmark struct {
	ID   uint32
	Pos  geom.Vec3
	Seed uint64
}

// World is a set of landmarks plus a coarse spatial grid for fast
// frustum queries during rendering.
type World struct {
	Landmarks []Landmark
	cell      float64
	grid      map[[3]int32][]int32
}

// NewWorld builds a world from landmark positions, assigning IDs and
// appearance seeds derived from worldSeed.
func NewWorld(positions []geom.Vec3, worldSeed uint64) *World {
	w := &World{
		Landmarks: make([]Landmark, len(positions)),
		cell:      4.0,
		grid:      make(map[[3]int32][]int32),
	}
	for i, p := range positions {
		w.Landmarks[i] = Landmark{
			ID:   uint32(i),
			Pos:  p,
			Seed: splitmix64(worldSeed + uint64(i)*0x9E3779B97F4A7C15),
		}
		w.grid[w.cellOf(p)] = append(w.grid[w.cellOf(p)], int32(i))
	}
	return w
}

func (w *World) cellOf(p geom.Vec3) [3]int32 {
	return [3]int32{
		int32(math.Floor(p.X / w.cell)),
		int32(math.Floor(p.Y / w.cell)),
		int32(math.Floor(p.Z / w.cell)),
	}
}

// splitmix64 is the SplitMix64 mixing function, used to derive
// independent per-landmark appearance seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Visible returns the landmarks inside the camera frustum at pose
// (camera-to-world) between minDepth and maxDepth, nearest first.
func (w *World) Visible(pose geom.SE3, rig camera.Rig, minDepth, maxDepth float64) []Landmark {
	tcw := pose.Inverse()
	// Gather candidate grid cells around the camera within maxDepth.
	reach := int32(maxDepth/w.cell) + 1
	c0 := w.cellOf(pose.T)
	var out []Landmark
	for dx := -reach; dx <= reach; dx++ {
		for dy := -reach; dy <= reach; dy++ {
			for dz := -reach; dz <= reach; dz++ {
				ids, ok := w.grid[[3]int32{c0[0] + dx, c0[1] + dy, c0[2] + dz}]
				if !ok {
					continue
				}
				for _, id := range ids {
					lm := w.Landmarks[id]
					if rig.FrustumCheck(tcw, lm.Pos, minDepth, maxDepth) {
						out = append(out, lm)
					}
				}
			}
		}
	}
	// Sort nearest first so the renderer can paint far-to-near by
	// iterating in reverse.
	camPos := pose.T
	sortByDistance(out, camPos)
	return out
}

func sortByDistance(ls []Landmark, from geom.Vec3) {
	// Insertion-friendly small-n sort is not enough here; use a simple
	// in-place quicksort keyed by squared distance.
	var qs func(lo, hi int)
	key := func(i int) float64 { return ls[i].Pos.Sub(from).NormSq() }
	qs = func(lo, hi int) {
		for lo < hi {
			p := key((lo + hi) / 2)
			i, j := lo, hi
			for i <= j {
				for key(i) < p {
					i++
				}
				for key(j) > p {
					j--
				}
				if i <= j {
					ls[i], ls[j] = ls[j], ls[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j)
				lo = i
			} else {
				qs(i, hi)
				hi = j
			}
		}
	}
	if len(ls) > 1 {
		qs(0, len(ls)-1)
	}
}

// MachineHall generates an EuRoC-machine-hall-like indoor space: a
// large room with landmark-rich walls, floor clutter and internal
// structures. All MH sequences share one world so multiple clients
// observe the same environment and their maps can merge.
func MachineHall(seed uint64, density int) *World {
	rng := rand.New(rand.NewSource(int64(seed)))
	var pts []geom.Vec3
	const (
		xMin, xMax = -12.0, 12.0
		yMin, yMax = -9.0, 9.0
		zMin, zMax = 0.0, 7.0
	)
	// Four walls.
	for i := 0; i < density*4; i++ {
		switch i % 4 {
		case 0:
			pts = append(pts, geom.Vec3{X: xMin, Y: lerp(yMin, yMax, rng.Float64()), Z: lerp(zMin, zMax, rng.Float64())})
		case 1:
			pts = append(pts, geom.Vec3{X: xMax, Y: lerp(yMin, yMax, rng.Float64()), Z: lerp(zMin, zMax, rng.Float64())})
		case 2:
			pts = append(pts, geom.Vec3{X: lerp(xMin, xMax, rng.Float64()), Y: yMin, Z: lerp(zMin, zMax, rng.Float64())})
		default:
			pts = append(pts, geom.Vec3{X: lerp(xMin, xMax, rng.Float64()), Y: yMax, Z: lerp(zMin, zMax, rng.Float64())})
		}
	}
	// Floor clutter (machinery, crates).
	for i := 0; i < density*2; i++ {
		pts = append(pts, geom.Vec3{
			X: lerp(xMin, xMax, rng.Float64()),
			Y: lerp(yMin, yMax, rng.Float64()),
			Z: lerp(0, 2.5, rng.Float64()*rng.Float64()),
		})
	}
	// A few internal pillar structures.
	for p := 0; p < 6; p++ {
		cx := lerp(xMin+3, xMax-3, rng.Float64())
		cy := lerp(yMin+2, yMax-2, rng.Float64())
		for i := 0; i < density/2; i++ {
			a := rng.Float64() * 2 * math.Pi
			pts = append(pts, geom.Vec3{
				X: cx + 0.6*math.Cos(a),
				Y: cy + 0.6*math.Sin(a),
				Z: lerp(0, 5, rng.Float64()),
			})
		}
	}
	return NewWorld(pts, seed)
}

// ViconRoom generates a small V2-style room.
func ViconRoom(seed uint64, density int) *World {
	rng := rand.New(rand.NewSource(int64(seed)))
	var pts []geom.Vec3
	const half, height = 4.0, 3.5
	for i := 0; i < density*4; i++ {
		switch i % 4 {
		case 0:
			pts = append(pts, geom.Vec3{X: -half, Y: lerp(-half, half, rng.Float64()), Z: lerp(0, height, rng.Float64())})
		case 1:
			pts = append(pts, geom.Vec3{X: half, Y: lerp(-half, half, rng.Float64()), Z: lerp(0, height, rng.Float64())})
		case 2:
			pts = append(pts, geom.Vec3{X: lerp(-half, half, rng.Float64()), Y: -half, Z: lerp(0, height, rng.Float64())})
		default:
			pts = append(pts, geom.Vec3{X: lerp(-half, half, rng.Float64()), Y: half, Z: lerp(0, height, rng.Float64())})
		}
	}
	for i := 0; i < density; i++ {
		pts = append(pts, geom.Vec3{
			X: lerp(-half, half, rng.Float64()),
			Y: lerp(-half, half, rng.Float64()),
			Z: lerp(0, 1.2, rng.Float64()),
		})
	}
	return NewWorld(pts, seed)
}

// StreetCorridor generates a KITTI-like urban canyon: building facades
// flanking the given path at lateral offset, plus roadside clutter.
// spacing controls landmark density along the path (metres between
// facade columns).
func StreetCorridor(seed uint64, path *Spline, spacing float64) *World {
	rng := rand.New(rand.NewSource(int64(seed)))
	if spacing <= 0 {
		spacing = 1.5
	}
	var pts []geom.Vec3
	dur := path.Duration()
	step := spacing // approximate metres per sample at ~1 m/s param speed
	for d := 0.0; d < dur; d += step / math.Max(path.Velocity(d).Norm(), 0.5) {
		p := path.At(d)
		v := path.Velocity(d).Normalized()
		if v.Norm() == 0 {
			v = geom.Vec3{X: 1}
		}
		left := geom.Vec3{Z: 1}.Cross(v).Normalized()
		for side := -1.0; side <= 1.0; side += 2 {
			off := left.Scale(side * (7 + rng.Float64()*3))
			// Facade column: several landmarks stacked vertically.
			for h := 0; h < 4; h++ {
				pts = append(pts, p.Add(off).Add(geom.Vec3{
					X: rng.NormFloat64() * 0.4,
					Y: rng.NormFloat64() * 0.4,
					Z: 0.5 + float64(h)*1.8 + rng.Float64(),
				}))
			}
			// Roadside clutter (poles, parked cars).
			if rng.Float64() < 0.3 {
				pts = append(pts, p.Add(left.Scale(side*(3+rng.Float64()*2))).Add(geom.Vec3{Z: 0.5 + rng.Float64()}))
			}
		}
	}
	return NewWorld(pts, seed)
}

// CityGrid builds an urban street grid: (blocks+1) streets in each
// direction spaced blockM metres apart, with building facades lining
// both sides of every street and clutter near the intersections. Any
// route along the grid lines (see GridRoute) sees facades all the way,
// and two routes sharing a street observe the same landmarks — which
// is what lets a fleet of vehicles and pedestrians merge into one map
// and what gives the lifecycle soak distinct regions to go cold.
func CityGrid(seed uint64, blocks int, blockM float64) *World {
	rng := rand.New(rand.NewSource(int64(seed)))
	if blocks < 1 {
		blocks = 1
	}
	if blockM <= 0 {
		blockM = 60
	}
	extent := float64(blocks) * blockM
	var pts []geom.Vec3
	// facadesAlong lines one street: p walks the centerline, dir is the
	// street direction, left its horizontal normal.
	facadesAlong := func(at func(d float64) geom.Vec3, dir geom.Vec3) {
		left := geom.Vec3{Z: 1}.Cross(dir).Normalized()
		for d := 0.0; d <= extent; d += 2.0 {
			p := at(d)
			for side := -1.0; side <= 1.0; side += 2 {
				off := left.Scale(side * (8 + rng.Float64()*3))
				for h := 0; h < 4; h++ {
					pts = append(pts, p.Add(off).Add(geom.Vec3{
						X: rng.NormFloat64() * 0.4,
						Y: rng.NormFloat64() * 0.4,
						Z: 0.5 + float64(h)*1.9 + rng.Float64(),
					}))
				}
				// Sparse roadside clutter, kept at facade-like lateral
				// distance: points much nearer the roadway sweep too
				// fast across a vehicular camera to match frame to
				// frame, and a cluttered foreground starves the
				// tracker of the stable mid-range features it needs.
				if rng.Float64() < 0.15 {
					pts = append(pts, p.Add(left.Scale(side*(6+rng.Float64()*2))).
						Add(geom.Vec3{Z: 0.5 + rng.Float64()*2}))
				}
			}
		}
	}
	for i := 0; i <= blocks; i++ {
		c := float64(i) * blockM
		facadesAlong(func(d float64) geom.Vec3 { return geom.Vec3{X: d, Y: c} }, geom.Vec3{X: 1})
		facadesAlong(func(d float64) geom.Vec3 { return geom.Vec3{X: c, Y: d} }, geom.Vec3{Y: 1})
	}
	return NewWorld(pts, seed)
}

// GridRoute turns a sequence of CityGrid intersection coordinates
// (i, j) — street indices, not metres — into a spline along the
// streets, dt seconds per leg. Routes sharing grid edges see the same
// facades.
func GridRoute(route [][2]int, blockM, dt float64, height float64) *Spline {
	wp := make([]geom.Vec3, len(route))
	for k, ij := range route {
		wp[k] = geom.Vec3{
			X: float64(ij[0]) * blockM,
			Y: float64(ij[1]) * blockM,
			Z: height,
		}
	}
	return NewSpline(wp, dt)
}

func lerp(a, b, t float64) float64 { return a + (b-a)*t }
