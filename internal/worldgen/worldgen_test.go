package worldgen

import (
	"math"
	"testing"

	"slamshare/internal/camera"
	"slamshare/internal/geom"
)

func TestSplineEndpointsAndClamp(t *testing.T) {
	pts := []geom.Vec3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 2, Y: 1, Z: 0}, {X: 3, Y: 1, Z: 1}}
	s := NewSpline(pts, 2)
	if s.Duration() != 6 {
		t.Errorf("duration = %v", s.Duration())
	}
	if s.At(-1) != pts[0] || s.At(0) != pts[0] {
		t.Error("start clamp failed")
	}
	if s.At(100) != pts[3] {
		t.Error("end clamp failed")
	}
	// Interpolation passes through interior waypoints.
	if s.At(2).Dist(pts[1]) > 1e-9 {
		t.Errorf("waypoint 1 missed: %v", s.At(2))
	}
	if s.At(4).Dist(pts[2]) > 1e-9 {
		t.Errorf("waypoint 2 missed: %v", s.At(4))
	}
}

func TestSplineContinuity(t *testing.T) {
	pts := []geom.Vec3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 2, Z: 0}, {X: 3, Y: 2, Z: 1}, {X: 4, Y: 0, Z: 1}, {X: 5, Y: -1, Z: 0}}
	s := NewSpline(pts, 1)
	// Position must be continuous: small dt, small motion.
	prev := s.At(0)
	for tt := 0.01; tt < s.Duration(); tt += 0.01 {
		cur := s.At(tt)
		if cur.Dist(prev) > 0.2 {
			t.Fatalf("discontinuity at %v: %v", tt, cur.Dist(prev))
		}
		prev = cur
	}
}

func TestSplineDegenerate(t *testing.T) {
	if (&Spline{}).At(1) != (geom.Vec3{}) {
		t.Error("empty spline should return zero")
	}
	one := NewSpline([]geom.Vec3{{X: 1, Y: 2, Z: 3}}, 1)
	if one.At(5) != (geom.Vec3{X: 1, Y: 2, Z: 3}) {
		t.Error("single-point spline should be constant")
	}
	if one.Duration() != 0 {
		t.Error("single-point duration should be 0")
	}
}

func TestLookRotationForward(t *testing.T) {
	// Camera looking along +X with world up +Z: optical axis (+Z cam)
	// must map to +X world.
	q := LookRotation(geom.Vec3{X: 1}, geom.Vec3{Z: 1})
	f := q.Rotate(geom.Vec3{Z: 1})
	if f.Sub(geom.Vec3{X: 1}).Norm() > 1e-9 {
		t.Errorf("forward maps to %v", f)
	}
	// Camera "down" (+Y cam) should map to world -Z (level camera).
	d := q.Rotate(geom.Vec3{Y: 1})
	if d.Sub(geom.Vec3{Z: -1}).Norm() > 1e-9 {
		t.Errorf("down maps to %v", d)
	}
}

func TestLookRotationDegenerate(t *testing.T) {
	// Forward parallel to up must still return a valid rotation.
	q := LookRotation(geom.Vec3{Z: 1}, geom.Vec3{Z: 1})
	if math.Abs(q.Norm()-1) > 1e-9 {
		t.Errorf("quaternion norm %v", q.Norm())
	}
	if q2 := LookRotation(geom.Vec3{}, geom.Vec3{Z: 1}); q2 != geom.IdentityQuat() {
		t.Error("zero forward should give identity")
	}
}

func TestSplineTrajectoryFollowsPath(t *testing.T) {
	pts := []geom.Vec3{{X: 0, Y: 0, Z: 1}, {X: 5, Y: 0, Z: 1}, {X: 10, Y: 0, Z: 1}}
	st := NewSplineTrajectory(NewSpline(pts, 5))
	p := st.PoseAt(5)
	if p.T.Dist(geom.Vec3{X: 5, Y: 0, Z: 1}) > 1e-9 {
		t.Errorf("position = %v", p.T)
	}
	// Moving along +X: optical axis should point roughly +X.
	f := p.R.Rotate(geom.Vec3{Z: 1})
	if f.Dot(geom.Vec3{X: 1}) < 0.9 {
		t.Errorf("forward = %v", f)
	}
	if st.Duration() != 10 {
		t.Errorf("duration = %v", st.Duration())
	}
}

func TestOrbitTrajectoryLooksAtCenter(t *testing.T) {
	o := &OrbitTrajectory{Center: geom.Vec3{X: 1, Y: 2, Z: 0}, Radius: 3, Height: 1.5, Omega: 0.5, Dur: 10}
	for _, tt := range []float64{0, 2.5, 7} {
		p := o.PoseAt(tt)
		look := p.R.Rotate(geom.Vec3{Z: 1})
		want := o.Center.Sub(p.T).Normalized()
		if look.Dot(want) < 0.999 {
			t.Errorf("t=%v: looking %v, want %v", tt, look, want)
		}
		if math.Abs(p.T.Dist(geom.Vec3{X: 1, Y: 2, Z: p.T.Z})-3) > 1e-9 {
			t.Errorf("t=%v: radius broken", tt)
		}
	}
}

func TestSegmentTrajectory(t *testing.T) {
	o := &OrbitTrajectory{Radius: 2, Omega: 1, Dur: 20}
	seg := &SegmentTrajectory{Inner: o, T0: 5, T1: 10}
	if seg.Duration() != 5 {
		t.Errorf("duration = %v", seg.Duration())
	}
	if seg.PoseAt(0).T.Dist(o.PoseAt(5).T) > 1e-12 {
		t.Error("segment start mismatched")
	}
	if seg.PoseAt(999).T.Dist(o.PoseAt(10).T) > 1e-12 {
		t.Error("segment end not clamped")
	}
}

func TestMachineHallDeterministic(t *testing.T) {
	w1 := MachineHall(42, 100)
	w2 := MachineHall(42, 100)
	if len(w1.Landmarks) != len(w2.Landmarks) {
		t.Fatal("nondeterministic landmark count")
	}
	for i := range w1.Landmarks {
		if w1.Landmarks[i] != w2.Landmarks[i] {
			t.Fatalf("landmark %d differs", i)
		}
	}
	w3 := MachineHall(43, 100)
	same := true
	for i := range w1.Landmarks {
		if w1.Landmarks[i].Seed != w3.Landmarks[i].Seed {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical appearance seeds")
	}
}

func TestLandmarkSeedsUnique(t *testing.T) {
	w := MachineHall(7, 200)
	seen := make(map[uint64]bool, len(w.Landmarks))
	for _, lm := range w.Landmarks {
		if seen[lm.Seed] {
			t.Fatalf("duplicate appearance seed %x", lm.Seed)
		}
		seen[lm.Seed] = true
	}
}

func TestVisibleFrustum(t *testing.T) {
	w := MachineHall(1, 300)
	rig := camera.NewMonoRig(camera.EuRoCIntrinsics())
	// Camera at room center looking at the +X wall.
	pose := geom.SE3{R: LookRotation(geom.Vec3{X: 1}, geom.Vec3{Z: 1}), T: geom.Vec3{Z: 2}}
	vis := w.Visible(pose, rig, 0.3, 40)
	if len(vis) < 50 {
		t.Fatalf("too few visible landmarks: %d", len(vis))
	}
	tcw := pose.Inverse()
	prevDist := -1.0
	for _, lm := range vis {
		pc := tcw.Apply(lm.Pos)
		if pc.Z < 0.3 || pc.Z > 40 {
			t.Fatalf("landmark outside depth range: z=%v", pc.Z)
		}
		d := lm.Pos.Sub(pose.T).NormSq()
		if d < prevDist-1e-9 {
			t.Fatal("landmarks not sorted nearest-first")
		}
		prevDist = d
	}
}

func TestVisibleEmptyBehindWall(t *testing.T) {
	w := ViconRoom(1, 100)
	rig := camera.NewMonoRig(camera.EuRoCIntrinsics())
	// Far outside the room, looking away from it: nothing visible.
	pose := geom.SE3{
		R: LookRotation(geom.Vec3{X: 1}, geom.Vec3{Z: 1}),
		T: geom.Vec3{X: 1000, Y: 1000, Z: 2},
	}
	if vis := w.Visible(pose, rig, 0.3, 30); len(vis) != 0 {
		t.Errorf("phantom landmarks: %d", len(vis))
	}
}

func TestStreetCorridor(t *testing.T) {
	path := NewSpline([]geom.Vec3{{X: 0, Y: 0, Z: 1.6}, {X: 50, Y: 0, Z: 1.6}, {X: 100, Y: 20, Z: 1.6}, {X: 150, Y: 20, Z: 1.6}}, 10)
	w := StreetCorridor(3, path, 2)
	if len(w.Landmarks) < 200 {
		t.Fatalf("sparse street: %d landmarks", len(w.Landmarks))
	}
	// Landmarks should flank the path, not sit on it.
	onPath := 0
	for _, lm := range w.Landmarks {
		if math.Abs(lm.Pos.Y) < 1 && lm.Pos.X < 50 {
			onPath++
		}
	}
	if onPath > len(w.Landmarks)/10 {
		t.Errorf("too many landmarks on the roadway: %d", onPath)
	}
}
