package offload

import (
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		SplitLoad:   2,
		ShadowLoad:  6,
		SplitRTT:    150 * time.Millisecond,
		Hysteresis:  time.Second,
		UpgradeFrac: 0.5,
	}
}

func TestControllerStartsFull(t *testing.T) {
	c := NewController(testConfig(), QoSHandheld, CapSplit|CapShadow)
	if c.Mode() != ModeFull || c.Epoch() != 0 {
		t.Fatalf("fresh controller: mode=%v epoch=%d", c.Mode(), c.Epoch())
	}
}

func TestDowngradeOnLoad(t *testing.T) {
	c := NewController(testConfig(), QoSHandheld, CapSplit|CapShadow)
	t0 := time.Unix(100, 0)

	// Light load: stays full.
	if m, sw := c.Decide(t0, Inputs{QueueDepth: 1, Workers: 4}); sw || m != ModeFull {
		t.Fatalf("light load switched: %v %v", m, sw)
	}
	// Load past SplitLoad: degrades to split.
	if m, sw := c.Decide(t0, Inputs{QueueDepth: 12, Workers: 4}); !sw || m != ModeSplit {
		t.Fatalf("split downgrade: %v %v", m, sw)
	}
	// Load past ShadowLoad (after the dwell): degrades to shadow.
	t1 := t0.Add(2 * time.Second)
	if m, sw := c.Decide(t1, Inputs{QueueDepth: 40, Workers: 4}); !sw || m != ModeShadow {
		t.Fatalf("shadow downgrade: %v %v", m, sw)
	}
	if c.Epoch() != 2 {
		t.Fatalf("epoch = %d after two switches", c.Epoch())
	}
}

func TestDowngradeOnRTT(t *testing.T) {
	c := NewController(testConfig(), QoSHandheld, CapSplit)
	m, sw := c.Decide(time.Unix(100, 0), Inputs{RTT: 200 * time.Millisecond})
	if !sw || m != ModeSplit {
		t.Fatalf("rtt downgrade: %v %v", m, sw)
	}
}

func TestHysteresisDwell(t *testing.T) {
	c := NewController(testConfig(), QoSHandheld, CapSplit|CapShadow)
	t0 := time.Unix(100, 0)
	c.Decide(t0, Inputs{QueueDepth: 12, Workers: 4}) // -> split

	// Inside the dwell nothing moves, in either direction.
	if m, sw := c.Decide(t0.Add(500*time.Millisecond), Inputs{QueueDepth: 40, Workers: 4}); sw || m != ModeSplit {
		t.Fatalf("switched inside dwell: %v %v", m, sw)
	}
	if m, sw := c.Decide(t0.Add(999*time.Millisecond), Inputs{}); sw || m != ModeSplit {
		t.Fatalf("upgraded inside dwell: %v %v", m, sw)
	}
	// Past the dwell the pending downgrade lands.
	if m, sw := c.Decide(t0.Add(time.Second), Inputs{QueueDepth: 40, Workers: 4}); !sw || m != ModeShadow {
		t.Fatalf("downgrade after dwell: %v %v", m, sw)
	}
}

func TestUpgradeNeedsClearMargin(t *testing.T) {
	c := NewController(testConfig(), QoSHandheld, CapSplit)
	t0 := time.Unix(100, 0)
	c.Decide(t0, Inputs{QueueDepth: 12, Workers: 4}) // -> split at load 3

	// Load dipped just under the downgrade threshold (2): not enough,
	// the upgrade needs to clear UpgradeFrac x threshold = 1.
	t1 := t0.Add(2 * time.Second)
	if m, sw := c.Decide(t1, Inputs{QueueDepth: 6, Workers: 4}); sw || m != ModeSplit {
		t.Fatalf("borderline upgrade taken: %v %v", m, sw)
	}
	// Load well clear: upgrade lands.
	if m, sw := c.Decide(t1, Inputs{QueueDepth: 1, Workers: 4}); !sw || m != ModeFull {
		t.Fatalf("clear upgrade refused: %v %v", m, sw)
	}
}

func TestHeadsetNeverShadows(t *testing.T) {
	c := NewController(testConfig(), QoSHeadset, CapSplit|CapShadow)
	t0 := time.Unix(100, 0)
	m, _ := c.Decide(t0, Inputs{QueueDepth: 1000, Workers: 1})
	if m != ModeSplit {
		t.Fatalf("headset under extreme load: %v", m)
	}
	m, sw := c.Decide(t0.Add(time.Hour), Inputs{QueueDepth: 1000, Workers: 1})
	if sw || m != ModeShadow {
		if m == ModeShadow {
			t.Fatal("headset degraded to shadow")
		}
	}
}

func TestQoSScalesThresholds(t *testing.T) {
	// The same moderate load downgrades a drone but not a headset:
	// drone threshold is 2*0.6=1.2, headset 2*1.5=3.
	in := Inputs{QueueDepth: 8, Workers: 4} // load 2
	drone := NewController(testConfig(), QoSDrone, CapSplit|CapShadow)
	headset := NewController(testConfig(), QoSHeadset, CapSplit|CapShadow)
	t0 := time.Unix(100, 0)
	if m, _ := drone.Decide(t0, in); m != ModeSplit {
		t.Fatalf("drone at load 2: %v", m)
	}
	if m, _ := headset.Decide(t0, in); m != ModeFull {
		t.Fatalf("headset at load 2: %v", m)
	}
}

func TestCapsGateModes(t *testing.T) {
	// No capabilities: pinned to full no matter what.
	c := NewController(testConfig(), QoSDrone, 0)
	if m, sw := c.Decide(time.Unix(100, 0), Inputs{QueueDepth: 1000, Workers: 1}); sw || m != ModeFull {
		t.Fatalf("capless session moved: %v %v", m, sw)
	}
	// Shadow-only client skips split and goes straight to shadow.
	c2 := NewController(testConfig(), QoSDrone, CapShadow)
	if m, _ := c2.Decide(time.Unix(100, 0), Inputs{QueueDepth: 1000, Workers: 1}); m != ModeShadow {
		t.Fatalf("shadow-only session: %v", m)
	}
}

func TestBacklogCountsAsLoad(t *testing.T) {
	c := NewController(testConfig(), QoSHandheld, CapSplit)
	if m, _ := c.Decide(time.Unix(100, 0), Inputs{Backlog: 3}); m != ModeSplit {
		t.Fatalf("backlogged session: %v", m)
	}
}

func TestConfigFill(t *testing.T) {
	c := NewController(Config{}, QoSHandheld, CapSplit)
	d := DefaultConfig()
	if c.cfg != d {
		t.Fatalf("zero config not filled: %+v", c.cfg)
	}
}
