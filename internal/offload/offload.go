// Package offload decides, per session, how much of the SLAM pipeline
// runs on the edge server. SLAM-share assumes full offload — every
// client uploads video and the server does everything — but the
// paper's Table 2 RTT sweep shows the win collapsing when the uplink
// or the server saturates. Following the joint offloading/scheduling
// line of work, each session negotiates one of three modes:
//
//	full   — video upload, the status quo (§4.1)
//	split  — the client runs FAST/ORB extraction and uploads
//	         keypoints + descriptors, skipping video encode/decode
//	         and the server's extract stage
//	shadow — client-local dead reckoning with map-only sync, for
//	         sessions the server cannot afford to track at all
//
// The controller picks a mode from measured RTT, server load
// (trackpool queue depth per worker plus the session's own uplink
// backlog), and the session's QoS class, with hysteresis so modes
// don't flap: a switch is only taken after a minimum dwell, and an
// upgrade additionally requires the load to clear the tighter
// UpgradeFrac-scaled thresholds, not merely dip below the downgrade
// ones.
package offload

import "time"

// Mode is a session's offload mode. Higher values are more degraded.
type Mode uint8

const (
	// ModeFull is full offload: the client uplinks encoded video.
	ModeFull Mode = iota
	// ModeSplit is split offload: the client extracts keypoints and
	// uplinks them instead of video.
	ModeSplit
	// ModeShadow is map-only sync: the client tracks locally on IMU
	// dead reckoning and the server just keeps its motion model warm.
	ModeShadow
)

func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeSplit:
		return "split"
	case ModeShadow:
		return "shadow"
	}
	return "unknown"
}

// QoS is a session's service class. Lower values outrank higher ones
// everywhere: in the trackpool's EDF ordering and in how much server
// load the class tolerates before being downgraded.
type QoS uint8

const (
	// QoSHeadset: an AR headset rendering world-locked holograms; the
	// most latency-sensitive class. Never downgraded to shadow mode.
	QoSHeadset QoS = iota
	// QoSHandheld: a phone/tablet AR viewer.
	QoSHandheld
	// QoSDrone: a mapping drone contributing coverage; throughput
	// matters, latency does not. First to degrade under load.
	QoSDrone
)

func (q QoS) String() string {
	switch q {
	case QoSHeadset:
		return "headset"
	case QoSHandheld:
		return "handheld"
	case QoSDrone:
		return "drone"
	}
	return "unknown"
}

// loadScale is the per-class multiplier on the load thresholds: a
// headset tolerates 1.5x the nominal load before degrading, a drone
// only 0.6x, so under ramping load drones shed first and headsets
// last.
func (q QoS) loadScale() float64 {
	switch q {
	case QoSHeadset:
		return 1.5
	case QoSDrone:
		return 0.6
	}
	return 1.0
}

// Caps are the offload modes a client can run locally, advertised in
// its hello. A session without a capability can never be switched
// into that mode.
type Caps uint8

const (
	// CapSplit: the client can extract FAST/ORB keypoints itself.
	CapSplit Caps = 1 << iota
	// CapShadow: the client can dead-reckon locally on map-only sync.
	CapShadow
)

// Config tunes the mode-decision policy.
type Config struct {
	// SplitLoad is the load (queued frames per trackpool worker plus
	// session backlog) at which a full session degrades to split.
	SplitLoad float64
	// ShadowLoad is the load at which a split session degrades to
	// shadow (headsets are exempt).
	ShadowLoad float64
	// SplitRTT is the measured round-trip time beyond which full
	// offload degrades to split regardless of load: past it the
	// motion-to-pose budget is already blown on the wire, so the
	// encode/decode/extract stages split mode removes from the
	// critical path are worth more than the video stream.
	SplitRTT time.Duration
	// Hysteresis is the minimum dwell between mode switches.
	Hysteresis time.Duration
	// UpgradeFrac scales the thresholds an upgrade must clear: moving
	// to a less degraded mode requires the signals to fit under
	// UpgradeFrac x the downgrade thresholds, so a session sitting at
	// the boundary does not flap.
	UpgradeFrac float64
}

// DefaultConfig returns the policy defaults.
func DefaultConfig() Config {
	return Config{
		SplitLoad:   2,
		ShadowLoad:  6,
		SplitRTT:    150 * time.Millisecond,
		Hysteresis:  2 * time.Second,
		UpgradeFrac: 0.5,
	}
}

// fill replaces zero fields with defaults.
func (c Config) fill() Config {
	d := DefaultConfig()
	if c.SplitLoad == 0 {
		c.SplitLoad = d.SplitLoad
	}
	if c.ShadowLoad == 0 {
		c.ShadowLoad = d.ShadowLoad
	}
	if c.SplitRTT == 0 {
		c.SplitRTT = d.SplitRTT
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = d.Hysteresis
	}
	if c.UpgradeFrac == 0 {
		c.UpgradeFrac = d.UpgradeFrac
	}
	return c
}

// Inputs are the measured signals one decision is made from.
type Inputs struct {
	// RTT is the client-reported round-trip estimate (0 if unknown).
	RTT time.Duration
	// QueueDepth is the number of frames queued or waiting for
	// admission at the trackpool.
	QueueDepth int
	// Workers is the trackpool worker count.
	Workers int
	// Backlog is this session's own queued uplink frames.
	Backlog int
}

// Load folds the trackpool pressure and the session backlog into one
// queued-frames-per-worker figure.
func (in Inputs) Load() float64 {
	w := in.Workers
	if w < 1 {
		w = 1
	}
	return float64(in.QueueDepth)/float64(w) + float64(in.Backlog)
}

// Controller holds one session's mode state. It is not safe for
// concurrent use; the server drives it from the session's connection
// goroutine.
type Controller struct {
	cfg        Config
	qos        QoS
	caps       Caps
	mode       Mode
	epoch      uint32
	lastSwitch time.Time
	switched   bool
}

// NewController starts a session in full offload.
func NewController(cfg Config, qos QoS, caps Caps) *Controller {
	return &Controller{cfg: cfg.fill(), qos: qos, caps: caps}
}

// Mode returns the current mode.
func (c *Controller) Mode() Mode { return c.mode }

// Epoch returns the switch epoch (increments on every switch).
func (c *Controller) Epoch() uint32 { return c.epoch }

// QoS returns the session's service class.
func (c *Controller) QoS() QoS { return c.qos }

// target picks the least degraded mode whose entry conditions hold
// with the thresholds scaled by frac (frac=1 for downgrades; frac =
// UpgradeFrac when vetting an upgrade, making the thresholds tighter
// so borderline load does not flap).
func (c *Controller) target(in Inputs, frac float64) Mode {
	scale := c.qos.loadScale() * frac
	load := in.Load()
	m := ModeFull
	if c.caps&CapSplit != 0 &&
		(load >= c.cfg.SplitLoad*scale ||
			in.RTT >= time.Duration(float64(c.cfg.SplitRTT)*frac)) {
		m = ModeSplit
	}
	if c.caps&CapShadow != 0 && c.qos != QoSHeadset && load >= c.cfg.ShadowLoad*scale {
		m = ModeShadow
	}
	return m
}

// Decide runs one policy step at the given time and returns the
// session's mode plus whether this call switched it.
func (c *Controller) Decide(now time.Time, in Inputs) (Mode, bool) {
	if c.switched && now.Sub(c.lastSwitch) < c.cfg.Hysteresis {
		return c.mode, false
	}
	want := c.target(in, 1)
	switch {
	case want > c.mode:
		// Downgrade: take it immediately (past the dwell).
	case want < c.mode:
		// Upgrade: only when the signals also clear the tighter
		// UpgradeFrac-scaled thresholds.
		if c.target(in, c.cfg.UpgradeFrac) != want {
			return c.mode, false
		}
	default:
		return c.mode, false
	}
	c.mode = want
	c.epoch++
	c.lastSwitch = now
	c.switched = true
	return c.mode, true
}
