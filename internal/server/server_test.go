package server

import (
	"net"
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/metrics"
	"slamshare/internal/netem"
	"slamshare/internal/protocol"
)

// lockstep drives a client against its server session synchronously
// (frame-accurate virtual time) for n frames with the given stride,
// applying poses with an artificial lag of lagFrames frames.
func lockstep(t *testing.T, sess *Session, c *client.Client, n, stride, lagFrames int) []Result {
	t.Helper()
	type pending struct {
		idx int
		res Result
		due int
	}
	var queue []pending
	var results []Result
	step := 0
	for i := 0; i < n; i += stride {
		msg := c.BuildFrame(i)
		res, err := sess.HandleFrame(msg)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		results = append(results, res)
		queue = append(queue, pending{idx: i, res: res, due: step + lagFrames})
		for len(queue) > 0 && queue[0].due <= step {
			p := queue[0]
			queue = queue[1:]
			c.ApplyPose(p.idx, p.res.Pose, p.res.Tracked)
		}
		step++
	}
	for _, p := range queue {
		c.ApplyPose(p.idx, p.res.Pose, p.res.Tracked)
	}
	return results
}

func truthTrajectory(seq *dataset.Sequence, n, stride int) metrics.Trajectory {
	var tr metrics.Trajectory
	for i := 0; i < n; i += stride {
		tr.Append(seq.FrameTime(i), seq.GroundTruth(i).T)
	}
	return tr
}

func TestSingleClientEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full system test")
	}
	srv, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	seq := dataset.MH04(camera.Stereo)
	sess, err := srv.OpenSession(1, seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(1, seq)
	const n = 120
	results := lockstep(t, sess, cl, n, 1, 2)
	tracked := 0
	for _, r := range results {
		if r.Tracked {
			tracked++
		}
	}
	if tracked < n*8/10 {
		t.Fatalf("only %d/%d frames tracked", tracked, n)
	}
	// The client's experienced trajectory must match ground truth.
	ate := metrics.ATE(cl.Trajectory(), truthTrajectory(seq, n, 1))
	t.Logf("single client end-to-end ATE: %.3f m (uplink %.2f KB/frame)",
		ate, float64(cl.UplinkBytes())/float64(cl.FramesSent())/1024)
	if ate > 0.15 {
		t.Errorf("client ATE %.3f m too high", ate)
	}
	// The merge into the empty global map must have happened (founding
	// insert).
	if srv.Global().NKeyFrames() == 0 {
		t.Error("global map empty after run")
	}
	st := sess.Stats()
	if st.Frames != n || st.AvgStages.Total <= 0 {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestTwoClientsMergeIntoGlobalMap(t *testing.T) {
	if testing.Short() {
		t.Skip("full system test")
	}
	srv, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	seqA := dataset.MH04(camera.Stereo)
	seqB := dataset.MH05(camera.Stereo)
	sessA, err := srv.OpenSession(1, seqA.Rig)
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := srv.OpenSession(2, seqB.Rig)
	if err != nil {
		t.Fatal(err)
	}
	clA := client.New(1, seqA)
	clB := client.New(2, seqB)

	const n = 150
	// Interleave the two clients frame by frame, as the server would
	// see them arrive, returning each pose to its client.
	for i := 0; i < n; i++ {
		resA, err := sessA.HandleFrame(clA.BuildFrame(i))
		if err != nil {
			t.Fatalf("A frame %d: %v", i, err)
		}
		clA.ApplyPose(i, resA.Pose, resA.Tracked)
		resB, err := sessB.HandleFrame(clB.BuildFrame(i))
		if err != nil {
			t.Fatalf("B frame %d: %v", i, err)
		}
		clB.ApplyPose(i, resB.Pose, resB.Tracked)
	}
	if !sessA.Stats().Merged {
		t.Error("client A never merged")
	}
	if !sessB.Stats().Merged {
		t.Error("client B never merged into the shared map")
	}
	reports := srv.MergeReports()
	if len(reports) < 2 {
		t.Fatalf("merge reports = %d", len(reports))
	}
	// First report is the founding insert; the second is a real merge
	// with alignment.
	real := reports[1]
	if real.Alignment == nil {
		t.Fatal("second merge has no alignment")
	}
	t.Logf("merge: detect %v, insert %v, fuse %v (%d pts), BA %v, total %v",
		real.Detect, real.Insert, real.Fuse, real.FusedPts, real.BA, real.Total)
	// The paper's headline: merges complete within ~200 ms.
	if real.Total.Seconds() > 2.0 {
		t.Errorf("merge took %v", real.Total)
	}
	// Both clients' keyframes must coexist in the global map.
	global := srv.Global()
	clients := map[int]bool{}
	for _, kf := range global.KeyFrames() {
		clients[kf.Client] = true
	}
	if !clients[1] || !clients[2] {
		t.Errorf("global map missing a client: %v", clients)
	}
	// Accuracy of both clients after merging.
	ateA := metrics.ATE(clA.Trajectory(), truthTrajectory(seqA, n, 1))
	ateB := metrics.ATE(clB.Trajectory(), truthTrajectory(seqB, n, 1))
	t.Logf("post-merge ATE: A %.3f m, B %.3f m", ateA, ateB)
	if ateA > 0.2 || ateB > 0.2 {
		t.Errorf("post-merge ATE too high: %.3f / %.3f", ateA, ateB)
	}
	if srv.Region().Used() == 0 {
		t.Error("shared-memory accounting shows no usage")
	}
}

func TestServeOverTCPWithNetem(t *testing.T) {
	if testing.Short() {
		t.Skip("full system test")
	}
	srv, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := netem.Wrap(raw, netem.DelayOnly(5e6)) // 5 ms each way
	defer conn.Close()

	seq := dataset.MH04(camera.Stereo)
	cl := client.New(7, seq)
	frames := make([]int, 40)
	for i := range frames {
		frames[i] = i
	}
	if err := cl.RunTCP(conn, frames); err != nil {
		t.Fatal(err)
	}
	ate := metrics.ATE(cl.Trajectory(), truthTrajectory(seq, 40, 1))
	t.Logf("TCP end-to-end ATE over shaped link: %.3f m", ate)
	if ate > 0.2 {
		t.Errorf("ATE %.3f m over TCP", ate)
	}
}

func TestOpenSessionDuplicate(t *testing.T) {
	srv, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rig := camera.NewMonoRig(camera.EuRoCIntrinsics())
	if _, err := srv.OpenSession(1, rig); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.OpenSession(1, rig); err == nil {
		t.Error("duplicate session accepted")
	}
	srv.CloseSession(1)
	if _, err := srv.OpenSession(1, rig); err != nil {
		t.Errorf("reopen after close failed: %v", err)
	}
}

// serveTestListener starts a Serve loop and returns the dial address.
func serveTestListener(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)
	return l.Addr().String()
}

// waitCounter polls a counter until it reaches want or the deadline
// expires (serveConn runs asynchronously).
func waitCounter(t *testing.T, c *metrics.Counter, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Load() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("counter stuck at %d, want %d", c.Load(), want)
}

func TestServeRejectsDuplicateHello(t *testing.T) {
	srv, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := serveTestListener(t, srv)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := protocol.HelloMsg{ClientID: 5, Mode: camera.Mono}
	if err := protocol.WriteMessage(conn, protocol.TypeHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, &srv.NetStats().SessionsOpened, 1)
	if n := srv.NSessions(); n != 1 {
		t.Fatalf("%d sessions after hello", n)
	}
	// The regression: a second hello on the same connection used to
	// reassign the session and leak the first one past the deferred
	// close. It must now drop the connection and release the session.
	if err := protocol.WriteMessage(conn, protocol.TypeHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, &srv.NetStats().DupHello, 1)
	waitCounter(t, &srv.NetStats().SessionsClosed, 1)
	if n := srv.NSessions(); n != 0 {
		t.Fatalf("%d sessions leaked after duplicate hello", n)
	}
	// Dropped (no Bye), and the client ID is reusable immediately.
	if got := srv.NetStats().SessionsDropped.Load(); got != 1 {
		t.Errorf("SessionsDropped = %d, want 1", got)
	}
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := protocol.WriteMessage(conn2, protocol.TypeHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, &srv.NetStats().SessionsOpened, 2)
}

func TestServeCountsBadHelloAndRejects(t *testing.T) {
	srv, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := serveTestListener(t, srv)

	// Malformed hello payload.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := protocol.WriteMessage(conn, protocol.TypeHello, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, &srv.NetStats().BadHello, 1)

	// Same client ID on two live connections: the second is refused.
	hello := protocol.HelloMsg{ClientID: 9, Mode: camera.Mono}
	a, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := protocol.WriteMessage(a, protocol.TypeHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, &srv.NetStats().SessionsOpened, 1)
	b, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := protocol.WriteMessage(b, protocol.TypeHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, &srv.NetStats().BadHello, 2)
	if n := srv.NSessions(); n != 1 {
		t.Fatalf("%d sessions, want 1", n)
	}
}

// TestPooledTrackingMatchesIndependent is the whole-pipeline half of
// the batching equivalence contract: the same sequence tracked through
// the shared pool must match a server with batching disabled
// (TrackWorkers < 0). The pool's kernels are bit-identical to serial
// (covered at the extraction layer by trackpool's
// TestStreamExtractionMatchesSerial), but mapping's float accumulation
// order already varies run-to-run at ~1e-15, so the pipeline-level
// comparison is tolerance-based: identical tracking decisions, poses
// within micrometers.
func TestPooledTrackingMatchesIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("full system test")
	}
	const n = 40
	run := func(trackWorkers int) ([]Result, int, int) {
		cfg := DefaultConfig()
		cfg.TrackWorkers = trackWorkers
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		seq := dataset.MH04(camera.Stereo)
		sess, err := srv.OpenSession(1, seq.Rig)
		if err != nil {
			t.Fatal(err)
		}
		cl := client.New(1, seq)
		res := lockstep(t, sess, cl, n, 1, 2)
		return res, srv.Global().NKeyFrames(), srv.Global().NMapPoints()
	}
	indep, ikf, imp := run(-1)
	pooled, pkf, pmp := run(2)
	if len(indep) != len(pooled) {
		t.Fatalf("result count differs: %d vs %d", len(indep), len(pooled))
	}
	const tol = 1e-6
	for i := range indep {
		a, b := indep[i], pooled[i]
		if a.Tracked != b.Tracked || a.Degraded != b.Degraded {
			t.Fatalf("frame %d tracking decision diverges:\nindependent %+v\npooled      %+v", i, a, b)
		}
		if d := a.Inliers - b.Inliers; d < -2 || d > 2 {
			t.Fatalf("frame %d inliers diverge: independent %d, pooled %d", i, a.Inliers, b.Inliers)
		}
		dt := a.Pose.T.Sub(b.Pose.T)
		if dt.Norm() > tol {
			t.Fatalf("frame %d pose diverges by %g m:\nindependent %+v\npooled      %+v",
				i, dt.Norm(), a.Pose, b.Pose)
		}
	}
	if ikf != pkf || imp != pmp {
		t.Errorf("map growth diverges: independent %d KFs/%d MPs, pooled %d KFs/%d MPs", ikf, imp, pkf, pmp)
	}
}
