package server

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/obs"
	"slamshare/internal/offload"
	"slamshare/internal/protocol"
)

// runOffloadRun drives one single-session run in the given mode via
// the direct session API and returns the per-frame results. Split
// frames round-trip through the wire encoding, so the comparison also
// covers bit-exactness of the keypoint serialization.
func runOffloadRun(t *testing.T, split bool, n int) ([]Result, *Server) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TrackWorkers = -1 // serial: bit-for-bit deterministic
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	seq := dataset.MH04(camera.Stereo)
	sess, err := srv.OpenSession(1, seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(1, seq)
	if !split {
		// Intra frames are lossless, so the server decodes exactly the
		// pixels the split client extracts from. This makes the two
		// modes' inputs identical; inter coding would diverge them.
		cl.UseImageTransfer()
	}
	var out []Result
	for i := 0; i < n; i++ {
		var res Result
		if split {
			msg, err := protocol.DecodeKeypointMsg(cl.BuildKeypointFrame(i).Encode())
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if res, err = sess.HandleKeypoints(msg); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
		} else {
			var err error
			if res, err = sess.HandleFrame(cl.BuildFrame(i)); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
		}
		cl.ApplyPose(i, res.Pose, res.Tracked)
		out = append(out, res)
	}
	return out, srv
}

// TestSplitModeMatchesFull is the split-offload equivalence contract:
// a session whose client extracts keypoints on-device (same
// feature.Extractor code path, bit-identical keypoints) must produce
// the same tracked poses as a full-offload session fed losslessly
// coded video of the same frames.
func TestSplitModeMatchesFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full system test")
	}
	const n = 60
	full, _ := runOffloadRun(t, false, n)
	split, srv := runOffloadRun(t, true, n)
	if len(full) != len(split) {
		t.Fatalf("result count differs: %d vs %d", len(full), len(split))
	}
	const tol = 1e-9
	tracked := 0
	for i := range full {
		f, s := full[i], split[i]
		if f.Tracked != s.Tracked || f.Degraded != s.Degraded {
			t.Fatalf("frame %d decision diverges:\nfull  %+v\nsplit %+v", i, f, s)
		}
		if f.Inliers != s.Inliers {
			t.Fatalf("frame %d inliers diverge: full %d, split %d", i, f.Inliers, s.Inliers)
		}
		if d := f.Pose.T.Sub(s.Pose.T).Norm(); d > tol {
			t.Fatalf("frame %d pose diverges by %g m:\nfull  %+v\nsplit %+v", i, d, f.Pose, s.Pose)
		}
		if f.Tracked {
			tracked++
		}
		// Split frames never ran the server-side extract/match stages.
		if s.Timing.Extract != 0 || s.Timing.Match != 0 {
			t.Fatalf("frame %d split timing has extract/match: %+v", i, s.Timing)
		}
	}
	if tracked < n*8/10 {
		t.Fatalf("only %d/%d frames tracked", tracked, n)
	}
	if got := srv.NetStats().FramesSplit.Load(); got != n {
		t.Errorf("FramesSplit = %d, want %d", got, n)
	}
}

// TestSplitSpanTraceSkipsStages scrapes /debug/spans after a pure
// split-mode run: the trace must contain no video decode, no
// track.extract, and no track.match spans — those stages moved to the
// device — while the remaining pipeline (track.total, frame.total)
// still reports.
func TestSplitSpanTraceSkipsStages(t *testing.T) {
	if testing.Short() {
		t.Skip("full system test")
	}
	_, srv := runOffloadRun(t, true, 30)

	ts := httptest.NewServer(srv.DebugHandler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/spans?n=500")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/spans: %v", err)
	}
	if len(doc.Spans) == 0 {
		t.Fatal("no spans recorded after a 30-frame split run")
	}
	seen := map[string]int{}
	for _, sp := range doc.Spans {
		seen[sp.Stage]++
	}
	for _, gone := range []string{"decode", "track.extract", "track.match", "client.encode"} {
		if n := seen[gone]; n != 0 {
			t.Errorf("split-mode trace contains %d %q spans", n, gone)
		}
	}
	for _, want := range []string{"track.total", "frame.total"} {
		if seen[want] == 0 {
			t.Errorf("split-mode trace missing %q spans (saw %v)", want, seen)
		}
	}
}

// TestAdaptiveSessionDowngradesOverTCP drives the full adaptive wire
// path: a drone-class client with aggressive thresholds is pushed off
// full offload by its own uplink backlog, receives the ModeSwitch
// downlink, and switches its uplink format mid-run.
func TestAdaptiveSessionDowngradesOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("full system test")
	}
	cfg := DefaultConfig()
	// Any backlog at all downgrades, and the dwell outlasts the run so
	// the downgrade sticks: every frame after it must arrive as a
	// keypoint upload.
	cfg.Offload = offload.Config{
		SplitLoad:  0.5,
		ShadowLoad: 100,
		SplitRTT:   time.Hour,
		Hysteresis: time.Minute,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := serveTestListener(t, srv)

	seq := dataset.MH04(camera.Stereo)
	cl := client.New(3, seq)
	// Camera-rate pacing: without it the firehose sender finishes
	// before the first ModeSwitch downlink arrives.
	cl.Pace = 30 * time.Millisecond
	cl.EnableAdaptive(offload.QoSDrone, offload.CapSplit|offload.CapShadow)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frames := make([]int, 60)
	for i := range frames {
		frames[i] = i
	}
	if err := cl.RunTCPAdaptive(conn, frames); err != nil {
		t.Fatal(err)
	}
	if got := srv.NetStats().ModeSwitches.Load(); got == 0 {
		t.Error("server pushed no mode switches")
	}
	log := cl.ModeLog()
	if len(log) == 0 {
		t.Fatal("client applied no mode switches")
	}
	if log[0].Mode != offload.ModeSplit {
		t.Errorf("first switch = %v, want split", log[0].Mode)
	}
	if got := srv.NetStats().FramesSplit.Load() + srv.NetStats().SyncPings.Load(); got == 0 {
		t.Error("no split frames or sync pings reached the server after the switch")
	}
	if cl.RTTEstimate() <= 0 {
		t.Error("client has no RTT estimate despite echoed poses")
	}
}
