// Package server implements the SLAM-Share edge server (Fig. 3): an
// orchestrator that allocates the shared-memory region holding the
// global map, per-client SLAM processes (tracking + local mapping)
// that attach to it, a GPU shared across clients GSlice-style, and the
// merge process M that folds each client's map into the global map.
package server

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"slamshare/internal/bow"
	"slamshare/internal/camera"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/gpu"
	"slamshare/internal/holo"
	"slamshare/internal/img"
	"slamshare/internal/imu"
	"slamshare/internal/lifecycle"
	"slamshare/internal/mapping"
	"slamshare/internal/merge"
	"slamshare/internal/metrics"
	"slamshare/internal/obs"
	"slamshare/internal/offload"
	"slamshare/internal/overload"
	"slamshare/internal/persist"
	"slamshare/internal/protocol"
	"slamshare/internal/shm"
	"slamshare/internal/smap"
	"slamshare/internal/tracking"
	"slamshare/internal/trackpool"
	"slamshare/internal/video"
	"slamshare/internal/wire"
)

// Config parameterizes the server.
type Config struct {
	// RegionName is the shared-memory segment name; empty picks a
	// unique name.
	RegionName string
	// RegionCapacity is the shared-memory budget (default 2 GiB, as in
	// §4.3.2).
	RegionCapacity int64
	// GPU is the accelerator shared by all client processes; nil runs
	// every stage on the CPU (the ORB-SLAM3 baseline configuration of
	// Figs. 5/8).
	GPU *gpu.Device
	// LanesPerClient is each client process's GSlice share. It applies
	// only when the tracking pool is disabled (TrackWorkers < 0): with
	// the pool on, sessions share the device through the pool's
	// deadline-aware queue instead of static slices.
	LanesPerClient int
	// TrackWorkers sizes the shared batched tracking service
	// (internal/trackpool): every session's extraction and
	// search-local-points batches drain through one server-wide worker
	// pool scheduled earliest-deadline-first. 0 (the default) enables
	// the pool with GOMAXPROCS workers, > 0 sets the worker count, and
	// < 0 disables batching — each session fans out per-call, the
	// pre-pool behavior.
	TrackWorkers int
	// TrackReservedSlots holds back admission slots in the tracking
	// pool for QoS-0 (headset) frames, so a headset frame arriving at
	// a saturated pool is admitted immediately instead of waiting out
	// a lower-class frame already in service. 0 reserves nothing; see
	// trackpool.Config.ReservedSlots.
	TrackReservedSlots int
	// MergeAfterKFs triggers the first merge attempt once a client's
	// local map holds this many keyframes.
	MergeAfterKFs int
	// Vocabulary for BoW indexing; nil uses bow.Default().
	Vocabulary *bow.Vocabulary
	// TrackCfg, MapCfg, MergeCfg tune the pipeline.
	TrackCfg tracking.Config
	MapCfg   mapping.Config
	MergeCfg merge.Config
	// Persist enables durable checkpoints + write-ahead journaling of
	// the global map when Persist.Dir is non-empty. On startup the
	// server recovers the map from that directory (latest checkpoint +
	// journal replay); returning clients then resume by relocalization.
	Persist persist.Options
	// Obs is the observability layer every pipeline stage reports
	// into. Nil gets a private tracer — the instrumentation is always
	// on (its hot-path cost is a few atomics per stage, see
	// internal/obs).
	Obs *obs.Tracer
	// Overload bounds the server's load (admission ceilings, frame
	// shedding, connection timeouts, merge retry/quarantine policy).
	// Zero fields are filled from DefaultOverloadConfig; negative
	// timeouts disable that timeout.
	Overload OverloadConfig
	// MergeHook, when non-nil, is called with the merger before every
	// merge attempt. It exists for fault injection — the chaos harness
	// installs a Sabotage failpoint through it — and for tests that
	// need to observe attempt numbers.
	MergeHook func(clientID uint32, attempt int, mg *merge.Merger)
	// Lifecycle bounds the resident size of the shared map on a server
	// that runs forever: redundancy-scored keyframe culling, dead-point
	// sparsification, and cold-region eviction to disk with transparent
	// reload (see internal/lifecycle). Lifecycle.MaxKeyFrames == 0
	// disables all of it. Lifecycle.Dir defaults to Persist.Dir, so
	// evicted regions live next to the checkpoints and journals.
	Lifecycle lifecycle.Config
	// Offload tunes the per-session adaptive offload policy: mode
	// negotiation between full (video upload), split (keypoint upload),
	// and shadow (map-only sync) driven by measured RTT, server load,
	// and the session's QoS class (see internal/offload). Zero fields
	// take offload.DefaultConfig. It only applies to sessions whose
	// hello advertises offload capabilities; legacy clients are pinned
	// to full offload.
	Offload offload.Config
	// Shard identifies this server inside a cluster (internal/cluster):
	// cluster peers and the front door authenticate with Shard.Token on
	// the same listener device sessions use, and boundary regions are
	// exported to / imported from peer shards through the handoff
	// handlers in shard.go. A zero value runs the server standalone;
	// the shard message types are still answered (token 0) so a
	// single-shard front door needs no configuration.
	Shard ShardConfig
}

// ShardConfig is the server's identity and tuning inside a cluster.
type ShardConfig struct {
	// ID is this shard's index in the cluster partition.
	ID uint32
	// Token is the shared cluster secret; every ShardHello must carry
	// it.
	Token uint64
	// ImportStall is a crash-window failpoint for the chaos tier: hold
	// the boundary import open this long after the merge transaction
	// commits but before the ShardImportEnd marker is journaled (the
	// journal is flushed first, so the half-merge is durably open).
	// A SIGKILL inside the stall leaves exactly the on-disk state a
	// mid-import crash would: recovery must roll the import back.
	// Never set in production.
	ImportStall time.Duration
}

// OverloadConfig is the server's overload-protection policy.
type OverloadConfig struct {
	// MaxSessions caps concurrently open sessions; OpenSession returns
	// overload.ErrOverloaded beyond it.
	MaxSessions int
	// MaxMergesInFlight caps concurrent merge attempts across all
	// sessions. A saturated gate skips the attempt without a backoff
	// penalty — the session simply retries on a later frame.
	MaxMergesInFlight int
	// ShedBudget is the wall-clock uplink backlog a session may
	// accumulate before the server sheds stale frames (process-latest
	// semantics): shed frames are answered immediately with a PoseMsg
	// flagged Shed, and the client covers the gap with IMU
	// dead-reckoning (Alg. 1). Zero disables shedding.
	ShedBudget time.Duration
	// IdleTimeout evicts a connection that sends no message header for
	// this long. ReadTimeout evicts one that stalls mid-message (the
	// frozen-peer case). WriteTimeout bounds pose writes to a client
	// that stopped reading. Negative disables each.
	IdleTimeout  time.Duration
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// Retry* parameterize the merge retry backoff, in keyframes of
	// local-map growth: attempt n waits ~Base*Factor^n (capped at Max,
	// jittered ±Jitter) more keyframes before the next attempt.
	RetryBase   float64
	RetryFactor float64
	RetryMax    float64
	RetryJitter float64
	// MaxMergeRollbacks quarantines a session once this many of its
	// merge attempts were rolled back by pre-commit validation: a map
	// that keeps failing validation is poisonous, not unlucky.
	MaxMergeRollbacks int
	// Seed fixes the deterministic backoff jitter.
	Seed int64
}

// DefaultOverloadConfig returns conservative production defaults;
// shedding stays off until a budget is configured.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		MaxSessions:       64,
		MaxMergesInFlight: 2,
		IdleTimeout:       2 * time.Minute,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		RetryBase:         3,
		RetryFactor:       2,
		RetryMax:          24,
		RetryJitter:       0.25,
		MaxMergeRollbacks: 3,
		Seed:              0x51A87A5E,
	}
}

// DefaultConfig returns the experiment configuration.
func DefaultConfig() Config {
	return Config{
		RegionCapacity: 2 << 30,
		LanesPerClient: 8,
		MergeAfterKFs:  8,
		TrackCfg:       tracking.DefaultConfig(),
		MapCfg:         mapping.DefaultConfig(),
		MergeCfg:       merge.DefaultConfig(),
	}
}

var regionSeq struct {
	sync.Mutex
	n int
}

// Server is the SLAM-Share edge server.
type Server struct {
	cfg    Config
	voc    *bow.Vocabulary
	region *shm.Region
	global *smap.Map
	// gmu is the named shareable mutex serializing compound global-map
	// operations: merges (multi-step transform + insert + fuse + BA)
	// and checkpoint snapshots. Per-entity reads and writes do NOT take
	// it — the map's internal striped locks make those safe — so N
	// sessions track concurrently while a merge is the only operation
	// that drains the writers.
	gmu     *sync.RWMutex
	anchors *holo.Registry
	pmgr    *persist.Manager
	rec     *persist.Recovery
	// lm, when non-nil, is the map-lifecycle manager. Its mutating
	// passes (Step, MaybeReload) run under gmu like merges do.
	lm *lifecycle.Manager
	// tpool, when non-nil, is the shared batched tracking service every
	// session's data-parallel stages drain through (Config.TrackWorkers).
	tpool *trackpool.Pool

	obs      *obs.Tracer
	stDecode *obs.Stage
	stFrame  *obs.Stage

	mu       sync.Mutex
	sessions map[uint32]*Session
	merges   []merge.Report

	gate    *overload.Gate
	backoff overload.Backoff

	net NetStats

	// Cluster-mode state (shard.go). pendingExports holds boundary
	// regions offered in a HandoffBegin and not yet committed or
	// superseded; importBlocked tracks per-peer rollback counts for
	// import quarantine. The atomic counters feed the ShardOpStats
	// probe, which must stay off gmu (a stalled import holds it).
	shardMu         sync.Mutex
	pendingExports  map[exportKey]*exportRecord
	importBlocked   map[uint32]int
	importsInFlight atomic.Int64
	importsDone     atomic.Int64
	importsRolled   atomic.Int64
	importsStalled  atomic.Int64

	// resume is per-client resume state published for the ShardOpResume
	// probe: the highest frame index answered on this shard, the newest
	// handoff epoch seen for the client, and the last offload mode. It
	// survives session close — that is the point: a replacement front
	// adopting a session probes it to validate the presented token and
	// continue the epoch sequence. Its own mutex, never gmu.
	resumeMu sync.Mutex
	resume   map[uint32]*resumeState
}

// resumeState is one client's shard-side resume record.
type resumeState struct {
	frame uint32
	epoch uint64
	mode  byte
}

// NetStats counts per-connection protocol events on the Serve path.
// serveConn historically swallowed every failure; these counters make
// dropped frames and rejected sessions observable (the chaos harness
// asserts them after fault scenarios).
type NetStats struct {
	// BadHello counts malformed hello payloads and hellos the server
	// refused (e.g. a client ID already in session).
	BadHello metrics.Counter
	// DupHello counts second hellos on an already-established
	// connection, which are rejected to avoid leaking the first session.
	DupHello metrics.Counter
	// FramesRejected counts frame payloads that failed to decode.
	FramesRejected metrics.Counter
	// FramesFailed counts decoded frames the pipeline failed to process.
	FramesFailed metrics.Counter
	// SessionsOpened / SessionsClosed count session lifecycle on the
	// Serve path; SessionsDropped is the subset of closes caused by a
	// connection dying without a Bye.
	SessionsOpened  metrics.Counter
	SessionsClosed  metrics.Counter
	SessionsDropped metrics.Counter
	// SessionsRejected counts opens refused by the admission gate
	// (overload.ErrOverloaded).
	SessionsRejected metrics.Counter
	// FramesShed counts uplink frames answered with a Shed pose instead
	// of being tracked (deadline-aware process-latest shedding).
	FramesShed metrics.Counter
	// TrackLost counts frames the tracker processed but could not
	// localize.
	TrackLost metrics.Counter
	// KFRejected counts keyframes whose shared-memory reservation
	// failed (region exhausted) — the mapper-rejection path.
	KFRejected metrics.Counter
	// MergeRollbacks counts merge attempts undone by pre-commit
	// invariant validation; MergeQuarantines counts sessions barred
	// from further merging after MaxMergeRollbacks of them.
	MergeRollbacks   metrics.Counter
	MergeQuarantines metrics.Counter
	// IdleEvicted counts connections evicted by the read watchdog
	// (idle or frozen mid-message).
	IdleEvicted metrics.Counter
	// ModeSwitches counts offload mode changes pushed to clients.
	// FramesSplit counts split-mode keypoint frames tracked, and
	// SyncPings counts shadow-mode map-sync pings absorbed.
	ModeSwitches metrics.Counter
	FramesSplit  metrics.Counter
	SyncPings    metrics.Counter
}

// NetStats returns the Serve-path counters.
func (s *Server) NetStats() *NetStats { return &s.net }

// NSessions returns the number of currently open sessions.
func (s *Server) NSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// noteAnswered records that a pose for frame was written to clientID's
// connection, with the session's offload mode at that moment. The
// watermark is monotone: answers can race only across reconnects, and
// a stale reconnect must never roll it back.
func (s *Server) noteAnswered(clientID, frame uint32, mode byte) {
	s.resumeMu.Lock()
	defer s.resumeMu.Unlock()
	st := s.resume[clientID]
	if st == nil {
		st = &resumeState{}
		s.resume[clientID] = st
	}
	if frame > st.frame {
		st.frame = frame
	}
	st.mode = mode
}

// noteHandoffEpoch records the newest handoff epoch seen for a client,
// from either side of a handoff (export begin or boundary import).
func (s *Server) noteHandoffEpoch(clientID uint32, epoch uint64) {
	s.resumeMu.Lock()
	defer s.resumeMu.Unlock()
	st := s.resume[clientID]
	if st == nil {
		st = &resumeState{}
		s.resume[clientID] = st
	}
	if epoch > st.epoch {
		st.epoch = epoch
	}
}

// resumeStateFor answers the ShardOpResume probe.
func (s *Server) resumeStateFor(clientID uint32) (resumeState, bool) {
	s.resumeMu.Lock()
	defer s.resumeMu.Unlock()
	if st := s.resume[clientID]; st != nil {
		return *st, true
	}
	return resumeState{}, false
}

// New creates the server: it allocates the shared-memory region,
// places an empty global map in it, and publishes it for client
// processes to attach.
func New(cfg Config) (*Server, error) {
	if cfg.RegionCapacity == 0 {
		cfg.RegionCapacity = 2 << 30
	}
	if cfg.MergeAfterKFs == 0 {
		cfg.MergeAfterKFs = 8
	}
	if cfg.LanesPerClient == 0 {
		cfg.LanesPerClient = 8
	}
	fillOverloadDefaults(&cfg.Overload)
	voc := cfg.Vocabulary
	if voc == nil {
		voc = bow.Default()
	}
	tracer := cfg.Obs
	if tracer == nil {
		tracer = obs.NewTracer(obs.NewRegistry(), obs.DefaultRingSize)
	}
	// Persistence spans (WAL drains, checkpoint rotations) report into
	// the same tracer as the frame pipeline.
	cfg.Persist.Obs = tracer
	name := cfg.RegionName
	if name == "" {
		regionSeq.Lock()
		regionSeq.n++
		name = fmt.Sprintf("slamshare-%d-%d", time.Now().UnixNano(), regionSeq.n)
		regionSeq.Unlock()
	}
	region, err := shm.Create(name, cfg.RegionCapacity)
	if err != nil {
		return nil, err
	}

	// With persistence enabled the global map is recovered from disk
	// (empty directory → empty map) instead of starting fresh, and a
	// manager journals every mutation from here on.
	global := smap.NewMap(voc)
	anchors := holo.NewRegistry()
	var rec *persist.Recovery
	var pmgr *persist.Manager
	if cfg.Persist.Dir != "" {
		rec, err = persist.Recover(cfg.Persist.Dir, voc)
		if err != nil {
			shm.Unlink(region.Name())
			return nil, fmt.Errorf("server: recover: %w", err)
		}
		global = rec.Map
		anchors = rec.Anchors
	}
	region.Publish("globalmap", global)
	gmu := region.NamedMutex("globalmap")
	if cfg.Persist.Dir != "" {
		pmgr, err = persist.Open(cfg.Persist, global, anchors, rec.LastSeq, gmu)
		if err != nil {
			shm.Unlink(region.Name())
			return nil, fmt.Errorf("server: persist: %w", err)
		}
		pmgr.Stats().ReplayedRecords.Add(int64(rec.ReplayedRecords))
		pmgr.Stats().ReplayLat.Add(rec.ReplayTime)
	}
	s := &Server{
		cfg:            cfg,
		voc:            voc,
		region:         region,
		global:         global,
		gmu:            gmu,
		anchors:        anchors,
		pmgr:           pmgr,
		rec:            rec,
		obs:            tracer,
		stDecode:       tracer.Stage("decode"),
		stFrame:        tracer.Stage("frame.total"),
		sessions:       make(map[uint32]*Session),
		pendingExports: make(map[exportKey]*exportRecord),
		importBlocked:  make(map[uint32]int),
		resume:         make(map[uint32]*resumeState),
		gate:           overload.NewGate(cfg.Overload.MaxSessions, cfg.Overload.MaxMergesInFlight),
		backoff: overload.Backoff{
			Base:   cfg.Overload.RetryBase,
			Factor: cfg.Overload.RetryFactor,
			Max:    cfg.Overload.RetryMax,
			Jitter: cfg.Overload.RetryJitter,
			Seed:   cfg.Overload.Seed,
		},
	}
	if cfg.TrackWorkers >= 0 {
		// The batched tracking service is the default path: the modeled
		// GPU, when configured, becomes the pool's backend so sessions
		// share it through the deadline-aware queue instead of static
		// per-session slices.
		var dev feature.TimedParallelizer
		if cfg.GPU != nil {
			dev = cfg.GPU
		}
		s.tpool = trackpool.New(trackpool.Config{
			Workers:       cfg.TrackWorkers,
			ReservedSlots: cfg.TrackReservedSlots,
			Device:        dev,
		})
	}
	if lcfg := cfg.Lifecycle; lcfg.MaxKeyFrames > 0 || lcfg.EvictAfter > 0 {
		if lcfg.Dir == "" {
			lcfg.Dir = cfg.Persist.Dir
		}
		var jn lifecycle.Journal
		if pmgr != nil {
			jn = pmgr.Journal()
		}
		s.lm = lifecycle.New(lcfg, global, jn)
		if rec != nil {
			// Re-arm the reload index with the regions still evicted at
			// crash time, and sweep region files the WAL does not vouch
			// for (a crash between file write and WAL record left those
			// entities live in the replayed map).
			s.lm.RestoreEvicted(rec.EvictedRegions)
		}
	}
	reg := tracer.Registry()
	reg.RegisterFunc("map.keyframes", func() any { return s.global.NKeyFrames() })
	reg.RegisterFunc("map.points", func() any { return s.global.NMapPoints() })
	reg.RegisterFunc("map.resident_bytes", func() any { return lifecycle.EstimateResidentBytes(s.global) })
	if s.lm != nil {
		st := s.lm.Stats()
		reg.RegisterCounter("lifecycle.culled_keyframes", &st.CulledKeyFrames)
		reg.RegisterCounter("lifecycle.sparsified_points", &st.SparsifiedPoints)
		reg.RegisterCounter("lifecycle.evictions", &st.EvictedRegions)
		reg.RegisterCounter("lifecycle.evicted_keyframes_total", &st.EvictedKeyFrames)
		reg.RegisterCounter("lifecycle.reloads", &st.ReloadedRegions)
		reg.RegisterCounter("lifecycle.dropped_regions", &st.DroppedRegions)
		reg.RegisterFunc("lifecycle.evicted_regions", func() any { return s.lm.EvictedRegionCount() })
		reg.RegisterFunc("lifecycle.evicted_keyframes", func() any { return s.lm.EvictedKeyFrameCount() })
	}
	reg.RegisterFunc("sessions.open", func() any { return s.NSessions() })
	reg.RegisterCounter("net.bad_hello", &s.net.BadHello)
	reg.RegisterCounter("net.dup_hello", &s.net.DupHello)
	reg.RegisterCounter("net.frames_rejected", &s.net.FramesRejected)
	reg.RegisterCounter("net.frames_failed", &s.net.FramesFailed)
	reg.RegisterCounter("net.sessions_opened", &s.net.SessionsOpened)
	reg.RegisterCounter("net.sessions_closed", &s.net.SessionsClosed)
	reg.RegisterCounter("net.sessions_dropped", &s.net.SessionsDropped)
	reg.RegisterCounter("net.sessions_rejected", &s.net.SessionsRejected)
	reg.RegisterCounter("net.frames_shed", &s.net.FramesShed)
	reg.RegisterCounter("net.track_lost", &s.net.TrackLost)
	reg.RegisterCounter("net.kf_rejected", &s.net.KFRejected)
	reg.RegisterCounter("net.idle_evicted", &s.net.IdleEvicted)
	reg.RegisterCounter("merge.rollback", &s.net.MergeRollbacks)
	reg.RegisterCounter("merge.quarantine", &s.net.MergeQuarantines)
	reg.RegisterCounter("offload.mode_switches", &s.net.ModeSwitches)
	reg.RegisterCounter("offload.split_frames", &s.net.FramesSplit)
	reg.RegisterCounter("offload.sync_pings", &s.net.SyncPings)
	reg.RegisterFunc("overload.sessions", func() any { return s.gate.Sessions() })
	reg.RegisterFunc("overload.merges_inflight", func() any { return s.gate.Merges() })
	if s.tpool != nil {
		reg.RegisterFunc("trackpool.workers", func() any { return s.tpool.Workers() })
		reg.RegisterFunc("trackpool.streams", func() any { return s.tpool.Stats().Streams })
		reg.RegisterFunc("trackpool.queue_depth", func() any { return s.tpool.Stats().QueueDepth })
		reg.RegisterFunc("trackpool.batches", func() any { return s.tpool.Stats().Batches })
		reg.RegisterFunc("trackpool.items", func() any { return s.tpool.Stats().Items })
		reg.RegisterFunc("trackpool.queue_wait_ns", func() any { return int64(s.tpool.Stats().QueueWait) })
	}
	return s, nil
}

// fillOverloadDefaults replaces zero fields with the defaults so a
// zero-valued Config keeps working; negative timeouts mean "disabled"
// and are preserved.
func fillOverloadDefaults(ov *OverloadConfig) {
	def := DefaultOverloadConfig()
	if ov.MaxSessions == 0 {
		ov.MaxSessions = def.MaxSessions
	}
	if ov.MaxMergesInFlight == 0 {
		ov.MaxMergesInFlight = def.MaxMergesInFlight
	}
	if ov.IdleTimeout == 0 {
		ov.IdleTimeout = def.IdleTimeout
	}
	if ov.ReadTimeout == 0 {
		ov.ReadTimeout = def.ReadTimeout
	}
	if ov.WriteTimeout == 0 {
		ov.WriteTimeout = def.WriteTimeout
	}
	if ov.RetryBase == 0 {
		ov.RetryBase = def.RetryBase
	}
	if ov.RetryFactor == 0 {
		ov.RetryFactor = def.RetryFactor
	}
	if ov.RetryMax == 0 {
		ov.RetryMax = def.RetryMax
	}
	if ov.RetryJitter == 0 {
		ov.RetryJitter = def.RetryJitter
	}
	if ov.MaxMergeRollbacks == 0 {
		ov.MaxMergeRollbacks = def.MaxMergeRollbacks
	}
	if ov.Seed == 0 {
		ov.Seed = def.Seed
	}
}

// timeout maps the "negative disables" convention onto the protocol
// layer's "zero disables".
func timeout(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// Obs returns the server's tracer (the one every pipeline stage
// reports into).
func (s *Server) Obs() *obs.Tracer { return s.obs }

// DebugHandler returns the live debug endpoint: registry JSON at
// /debug/vars, recent spans at /debug/spans, and net/http/pprof under
// /debug/pprof/. Mount it on a side listener, never the client port.
func (s *Server) DebugHandler() http.Handler { return obs.Handler(s.obs) }

// Close releases the shared-memory region name and, when persistence
// is enabled, flushes and closes the journal (without a final
// checkpoint, so restart always exercises recovery).
func (s *Server) Close() {
	if s.pmgr != nil {
		s.pmgr.Close()
	}
	if s.tpool != nil {
		// Drain and stop the batched tracking service. Sessions racing
		// the shutdown fall back to inline execution for their remaining
		// batches.
		s.tpool.Close()
	}
	shm.Unlink(s.region.Name())
}

// TrackPool returns the shared batched tracking service, or nil when
// disabled (Config.TrackWorkers < 0).
func (s *Server) TrackPool() *trackpool.Pool { return s.tpool }

// Anchors returns the session's hologram anchor registry. It is
// included in checkpoints when persistence is enabled.
func (s *Server) Anchors() *holo.Registry { return s.anchors }

// Persist returns the persistence manager, or nil when disabled.
func (s *Server) Persist() *persist.Manager { return s.pmgr }

// Recovery returns the startup recovery summary, or nil when the
// server started without persistence.
func (s *Server) Recovery() *persist.Recovery { return s.rec }

// Global returns the shared global map.
func (s *Server) Global() *smap.Map { return s.global }

// Lifecycle returns the map-lifecycle manager, or nil when disabled.
func (s *Server) Lifecycle() *lifecycle.Manager { return s.lm }

// Region returns the shared-memory region (for capacity accounting).
func (s *Server) Region() *shm.Region { return s.region }

// MergeReports returns the merge timing breakdowns recorded so far
// (the SLAM-Share column of Table 4).
func (s *Server) MergeReports() []merge.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]merge.Report, len(s.merges))
	copy(out, s.merges)
	return out
}

// Session is one client's server-side process (Process A/B in Fig. 3):
// it attaches the shared region, decodes the client's video, tracks
// with the GPU slice, maps locally, and hands its map to the merge
// process.
type Session struct {
	ID  uint32
	srv *Server
	rig camera.Rig

	tracker  *tracking.Tracker
	mapper   *mapping.Mapper
	localMap *smap.Map
	merged   bool

	decL, decR *video.Decoder
	mm         *imu.MotionModel
	mmReady    bool
	prevTwc    geom.SE3
	prevStamp  float64
	havePrev   bool
	// mergeAttempts numbers this session's merge attempts (the backoff
	// schedule is keyed on it); mergeBarrier is the extra local-map
	// growth (keyframes) failed attempts demand before the next one.
	// rollbacks counts attempts undone by pre-commit validation;
	// quarantined bars the session from merging once that hits
	// Overload.MaxMergeRollbacks. All four belong to the session's
	// single processing goroutine.
	mergeAttempts int
	mergeBarrier  int
	rollbacks     int
	quarantined   bool
	// lag is the uplink backlog accounting behind frame shedding. Owned
	// by the serveConn loop.
	lag *overload.LagTracker
	// stream is the session's handle on the shared tracking pool (nil
	// when Config.TrackWorkers < 0 disabled batching).
	stream *trackpool.Stream
	// qos and ctrl are the adaptive-offload state; a nil ctrl is a
	// legacy session pinned to full offload. rttNanos is the latest
	// client-reported round-trip estimate. All three are owned by the
	// serveConn loop (direct-API tests drive them single-threaded).
	qos      offload.QoS
	ctrl     *offload.Controller
	rttNanos uint64

	// trackHist is this session's end-to-end tracking latency
	// histogram. It is private to the session (the registry's
	// "track.total" aggregates all sessions); Stats summarizes it.
	trackHist *obs.Histogram
	stages    tracking.Stages
	frames    int
	kfBytes   int64 // shared-memory accounting of this client's inserts

	// Traj records the server-side pose estimates (camera centers).
	Traj metrics.Trajectory
}

// OpenSession registers a client process. Each session attaches the
// shared-memory region and a stream on the shared tracking pool (or
// its own GPU slice when the pool is disabled).
func (s *Server) OpenSession(clientID uint32, rig camera.Rig) (*Session, error) {
	// Admission control: beyond the session ceiling the server refuses
	// outright (typed overload.ErrOverloaded) instead of degrading
	// every existing session's tracking rate.
	if err := s.gate.AcquireSession(); err != nil {
		s.net.SessionsRejected.Inc()
		return nil, err
	}
	admitted := false
	defer func() {
		if !admitted {
			s.gate.ReleaseSession()
		}
	}()
	if _, err := shm.Attach(s.region.Name()); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[clientID]; ok {
		return nil, fmt.Errorf("server: client %d already connected", clientID)
	}
	// A returning client — whether after a server recovery or a mid-run
	// disconnect — already has keyframes in the global map: seed its
	// allocator past the highest sequence it used before so fresh IDs
	// never collide, and resume directly on the global map below.
	resumeSeq := s.global.MaxSeq(int(clientID))
	alloc := smap.NewIDAllocatorFrom(int(clientID), resumeSeq)
	localMap := smap.NewMap(s.voc)
	ex := feature.NewExtractor(feature.DefaultConfig())
	var searchPar feature.Parallelizer
	var stream *trackpool.Stream
	switch {
	case s.tpool != nil:
		// Batched tracking: the session's data-parallel stages submit to
		// the server-wide pool through a per-session stream (which also
		// carries the frame deadline tags and queue-wait ledger).
		stream = s.tpool.NewStream()
		ex.Par = stream
		searchPar = stream
	case s.cfg.GPU != nil:
		slice := s.cfg.GPU.NewSlice(s.cfg.LanesPerClient)
		ex.Par = slice
		searchPar = slice
	}
	tr := tracking.New(localMap, rig, ex, alloc, int(clientID), s.cfg.TrackCfg)
	tr.SearchPar = searchPar
	tr.Obs = s.obs
	mapper := mapping.New(localMap, rig, alloc, int(clientID), s.cfg.MapCfg)
	mapper.Obs = s.obs
	if s.lm != nil {
		// Lost trackers offer their frame's BoW signature to the
		// lifecycle manager before relocalizing: if the client is
		// standing in an evicted region, it is reloaded (under gmu,
		// like a merge) so candidate search sees it.
		tr.Reload = func(bv bow.Vec) {
			s.gmu.Lock()
			s.lm.MaybeReload(bv)
			s.gmu.Unlock()
		}
		// Maintenance rides the local-BA cadence: the mapper already
		// pauses for BA every BAEvery keyframes, and the lifecycle pass
		// is version-gated so idle calls cost two atomic loads.
		mapper.AfterBA = func() {
			s.gmu.Lock()
			s.lm.Step(s.global.CurrentTick())
			s.gmu.Unlock()
		}
	}
	sess := &Session{
		ID:        clientID,
		srv:       s,
		rig:       rig,
		tracker:   tr,
		mapper:    mapper,
		localMap:  localMap,
		decL:      video.NewDecoder(),
		decR:      video.NewDecoder(),
		lag:       overload.NewLagTracker(s.cfg.Overload.ShedBudget),
		trackHist: obs.NewHistogram("track.session"),
		stream:    stream,
	}
	if resumeSeq > 0 {
		// Resume the session directly on the recovered global map: the
		// tracker starts Lost and relocalizes by BoW against the map it
		// helped build, skipping the local-map + merge bootstrap.
		sess.merged = true
		sess.tracker.Map = s.global
		sess.mapper.Map = s.global
		sess.tracker.ResumeLost()
	}
	s.sessions[clientID] = sess
	admitted = true
	return sess, nil
}

// CloseSession removes a client process.
func (s *Server) CloseSession(clientID uint32) {
	s.mu.Lock()
	sess, ok := s.sessions[clientID]
	delete(s.sessions, clientID)
	s.mu.Unlock()
	if ok {
		if sess.stream != nil {
			sess.stream.Close()
		}
		s.gate.ReleaseSession()
	}
}

// Result reports one processed frame.
type Result struct {
	Pose    geom.SE3 // world-to-camera
	Tracked bool
	Merged  bool // true if this frame triggered a successful map merge
	// Degraded marks a frame the tracker answered past its deadline
	// budget with motion-model tracking only (local-point search
	// skipped).
	Degraded bool
	Timing   tracking.Stages
	Inliers  int
}

// HandleFrame processes one uplink frame message end to end: video
// decode, IMU-prior tracking, local mapping, and (once the local map
// is large enough) the merge into the global map.
func (sess *Session) HandleFrame(msg *protocol.FrameMsg) (Result, error) {
	var res Result
	// ord is this session's frame ordinal: the trace ID linking the
	// decode/track/frame spans of one frame across stage histograms.
	// The tracker numbers frames with the same counter, so its spans
	// join the trace without any plumbing.
	ord := uint64(sess.frames)
	fsp := sess.srv.stFrame.Start(sess.ID, ord)
	defer fsp.End()

	// Advance the map-lifecycle activity clock: eviction ages ("cold
	// for N frames") are measured in frames handled across all
	// sessions, so a quiet server never evicts by wall clock alone.
	sess.srv.global.Tick()

	dsp := sess.srv.stDecode.Start(sess.ID, ord)
	left, err := sess.decL.Decode(msg.Video)
	if err != nil {
		dsp.End()
		sess.srv.net.FramesFailed.Inc()
		return res, fmt.Errorf("server: left video: %w", err)
	}
	var rightImg *img.Gray
	if len(msg.VideoRight) > 0 {
		rightImg, err = sess.decR.Decode(msg.VideoRight)
		if err != nil {
			dsp.End()
			sess.srv.net.FramesFailed.Inc()
			return res, fmt.Errorf("server: right video: %w", err)
		}
	}
	dsp.End()

	// IMU-assisted prior: advance the server-side motion model by the
	// client's preintegrated delta (§4.2.2). The first frame's prior
	// (if the client sent one) anchors the map in the client's frame.
	var prior *geom.SE3
	if sess.mmReady {
		bodyToWorld := sess.mm.ApproxPoseUpdateMM(msg.Delta)
		p := bodyToWorld.Inverse()
		prior = &p
	} else if msg.HasPrior {
		p := msg.Prior.Inverse()
		prior = &p
	}

	t0 := time.Now()
	tr := sess.tracker.ProcessFrame(left, rightImg, msg.Stamp, prior)
	sess.trackHist.Observe(time.Since(t0))
	return sess.completeFrame(tr, msg.Stamp), nil
}

// completeFrame folds one tracking result into the session: stage
// accounting, motion-model correction, trajectory append, keyframe
// insertion with shared-memory accounting, and the merge trigger.
// Shared by the full-offload (HandleFrame) and split-offload
// (HandleKeypoints) paths, which differ only in how the frame's
// keypoints came to exist.
func (sess *Session) completeFrame(tr tracking.Result, stamp float64) Result {
	sess.stages.Add(tr.Timing)
	sess.frames++

	res := Result{
		Pose:     tr.Pose,
		Tracked:  tr.State == tracking.OK,
		Degraded: tr.Degraded,
		Timing:   tr.Timing,
		Inliers:  tr.Inliers,
	}
	if tr.State == tracking.Lost {
		sess.srv.net.TrackLost.Inc()
	}

	if res.Tracked {
		twc := tr.Pose.Inverse()
		if !sess.mmReady {
			sess.mm = imu.NewMotionModel(twc, geom.Vec3{})
			sess.mmReady = true
		} else {
			sess.mm.RecvSLAMPose(twc, sess.mm.Len()-1)
			// Correct the motion model's velocity from consecutive SLAM
			// fixes; the anchor velocity was unknown and IMU deltas only
			// carry velocity increments.
			if sess.havePrev && stamp > sess.prevStamp {
				v := twc.T.Sub(sess.prevTwc.T).Scale(1 / (stamp - sess.prevStamp))
				sess.mm.SetVelocity(v)
			}
		}
		sess.prevTwc = twc
		sess.prevStamp = stamp
		sess.havePrev = true
		sess.Traj.Append(stamp, twc.T)
	}

	if tr.NewKF != nil {
		sess.mapper.ProcessKeyFrame(tr.NewKF)
		// Account the keyframe's footprint against the 2 GiB region.
		sz := int64(len(tr.NewKF.Keypoints))*80 + 4096
		if _, err := sess.srv.region.Alloc(sz); err == nil {
			sess.kfBytes += sz
		} else {
			sess.srv.net.KFRejected.Inc()
		}
	}

	// Merge process M: once the local map has substance, fold it into
	// the shared global map and rebind this process to it. A
	// quarantined session (repeated merge rollbacks) keeps tracking on
	// its local map but never merges again.
	if !sess.merged && !sess.quarantined &&
		sess.localMap.NKeyFrames() >= sess.srv.cfg.MergeAfterKFs+sess.mergeBarrier {
		if sess.tryMerge() {
			res.Merged = true
		}
	}
	return res
}

// HandleKeypoints processes one split-offload uplink frame: the
// client already ran feature extraction and stereo matching (through
// the same feature.Extractor code path the server uses, so the
// keypoints are bit-identical to what the server would have produced
// from the same pixels), and the pipeline enters at pose prediction —
// no video decode span, no track.extract, no track.match.
func (sess *Session) HandleKeypoints(msg *protocol.KeypointMsg) (Result, error) {
	ord := uint64(sess.frames)
	fsp := sess.srv.stFrame.Start(sess.ID, ord)
	defer fsp.End()
	sess.srv.global.Tick()

	// IMU-assisted prior, same as the full path.
	var prior *geom.SE3
	if sess.mmReady {
		bodyToWorld := sess.mm.ApproxPoseUpdateMM(msg.Delta)
		p := bodyToWorld.Inverse()
		prior = &p
	} else if msg.HasPrior {
		p := msg.Prior.Inverse()
		prior = &p
	}

	t0 := time.Now()
	tr := sess.tracker.ProcessExtracted(msg.Kps, msg.Stamp, prior)
	sess.trackHist.Observe(time.Since(t0))
	sess.srv.net.FramesSplit.Inc()
	return sess.completeFrame(tr, msg.Stamp), nil
}

// HandleSync absorbs a shadow-mode map-sync ping: only the motion
// model integrates the IMU delta, so a later mode upgrade re-enters
// tracking with a prior spanning the shadow period. No tracking work
// runs and the lifecycle clock does not advance.
func (sess *Session) HandleSync(msg *protocol.KeypointMsg) {
	if sess.mmReady {
		sess.mm.ApproxPoseUpdateMM(msg.Delta)
	}
	sess.srv.net.SyncPings.Inc()
}

// ConfigureOffload arms per-session adaptive offloading from the
// client's hello: the QoS class orders the session's frames in the
// shared trackpool (between the urgent class and the EDF key), and
// together with the advertised capabilities it parameterizes the
// mode controller. Without this call the session stays a legacy
// full-offload one: no echoes, no mode switches.
func (sess *Session) ConfigureOffload(qos offload.QoS, caps offload.Caps) {
	sess.qos = qos
	sess.ctrl = offload.NewController(sess.srv.cfg.Offload, qos, caps)
	if sess.stream != nil {
		sess.stream.SetQoS(int(qos))
	}
}

// OffloadMode returns the session's current offload mode (always full
// for a legacy session without a controller).
func (sess *Session) OffloadMode() offload.Mode {
	if sess.ctrl == nil {
		return offload.ModeFull
	}
	return sess.ctrl.Mode()
}

// QoS returns the session's service class (headset for legacy
// sessions, which never negotiated one).
func (sess *Session) QoS() offload.QoS { return sess.qos }

// ShedFrame consumes a shed uplink frame's stream side effects without
// running the tracking pipeline: the video decoders must see every
// encoded frame (inter frames predict from the previous decoded one)
// and the motion model integrates the IMU delta so the next tracked
// frame's prior spans the gap. It costs a decode — cheap next to the
// feature extraction and map search that shedding skips.
func (sess *Session) ShedFrame(msg *protocol.FrameMsg) {
	if _, err := sess.decL.Decode(msg.Video); err == nil && len(msg.VideoRight) > 0 {
		sess.decR.Decode(msg.VideoRight)
	}
	if sess.mmReady {
		sess.mm.ApproxPoseUpdateMM(msg.Delta)
	}
}

// tryMerge runs the merge under the named global-map mutex. On
// success the session's tracker and mapper operate directly on the
// global map afterwards; on failure (no overlap yet, or a validation
// rollback) the session keeps its local map and retries after the
// backoff's worth of further growth.
func (sess *Session) tryMerge() bool {
	s := sess.srv
	// In-flight merge ceiling: a saturated gate skips the attempt with
	// no backoff penalty — the session was not at fault, so it retries
	// on the next qualifying frame.
	if !s.gate.TryAcquireMerge() {
		return false
	}
	defer s.gate.ReleaseMerge()
	attempt := sess.mergeAttempts
	sess.mergeAttempts++
	s.gmu.Lock()
	merger := merge.New(s.global, sess.rig.Intr, s.cfg.MergeCfg)
	merger.Obs = s.obs
	merger.ObsClient = sess.ID
	merger.ObsSeq = uint64(sess.frames - 1) // frame ordinal that triggered the merge
	if s.pmgr != nil {
		merger.Journal = s.pmgr.Journal()
	}
	if s.lm != nil {
		// gmu is already held here, so the reload commits before the
		// merge transaction starts — an aborted merge rolls back its
		// own inserts, never a freshly reloaded region.
		merger.Reload = func(bv bow.Vec) { s.lm.MaybeReload(bv) }
	}
	if s.cfg.MergeHook != nil {
		s.cfg.MergeHook(sess.ID, attempt, merger)
	}
	rep, err := merger.Merge(sess.localMap)
	if err == nil && rep.Alignment != nil {
		// Transform this session's live tracking state into global
		// coordinates along with its map: the tracker's last frame and
		// velocity, the motion model, and the previous-pose anchor the
		// velocity correction uses (otherwise the first post-merge
		// velocity estimate would span the coordinate-frame jump).
		tf := rep.Alignment.Transform
		sess.tracker.ApplyTransform(tf)
		if sess.mmReady {
			last := sess.tracker.LastFrame()
			sess.mm.RecvSLAMPose(last.Tcw.Inverse(), sess.mm.Len()-1)
		}
		if sess.havePrev {
			sess.prevTwc = geom.SE3{
				R: tf.R.Mul(sess.prevTwc.R).Normalized(),
				T: tf.Apply(sess.prevTwc.T),
			}
		}
	}
	s.gmu.Unlock()
	if err != nil {
		var rbe *merge.RollbackError
		if errors.As(err, &rbe) {
			// The merge mutated the global map, failed validation, and
			// was rolled back. Count it toward quarantine: a client map
			// that keeps producing invalid merges is poisonous.
			s.net.MergeRollbacks.Inc()
			sess.rollbacks++
			if sess.rollbacks >= s.cfg.Overload.MaxMergeRollbacks {
				sess.quarantined = true
				s.net.MergeQuarantines.Inc()
			}
		}
		// Retry after the local map has grown by the backoff schedule's
		// worth of keyframes (jittered exponential, deterministic per
		// client and attempt).
		sess.mergeBarrier += s.backoff.DelaySteps(uint64(sess.ID), attempt)
		return false
	}
	s.mu.Lock()
	s.merges = append(s.merges, rep)
	s.mu.Unlock()
	sess.merged = true
	sess.tracker.Map = s.global
	sess.mapper.Map = s.global
	return true
}

// Quarantined reports whether the session was barred from merging
// after repeated validation rollbacks.
func (sess *Session) Quarantined() bool { return sess.quarantined }

// MergeAttempts returns how many merge attempts the session has made.
func (sess *Session) MergeAttempts() int { return sess.mergeAttempts }

// Stats summarizes a session.
type Stats struct {
	Frames     int
	AvgStages  tracking.Stages
	TrackStats obs.Summary
	Merged     bool
}

// Stats returns the session's aggregate statistics. Quantiles come
// from the session's latency histogram, so they are O(buckets) to
// read regardless of how many frames the session has processed.
func (sess *Session) Stats() Stats {
	return Stats{
		Frames:     sess.frames,
		AvgStages:  sess.stages.Scale(sess.frames),
		TrackStats: sess.trackHist.Summary(),
		Merged:     sess.merged,
	}
}

// GlobalMapSize returns the serialized size of the global map in
// bytes (Table 1 instrumentation).
func (s *Server) GlobalMapSize() int {
	s.gmu.RLock()
	defer s.gmu.RUnlock()
	return wire.MapSize(s.global)
}

// Serve accepts client connections on l and runs a session per
// connection until the listener closes. Each connection speaks the
// protocol package's framing.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.serveConn(conn)
	}
}

// inbound is one decoded-framing message handed from the connection's
// reader goroutine to its processing loop.
type inbound struct {
	mt      byte
	payload []byte
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	ov := s.cfg.Overload
	var sess *Session
	clean := false
	defer func() {
		if sess != nil {
			s.CloseSession(sess.ID)
			s.net.SessionsClosed.Inc()
			if !clean {
				s.net.SessionsDropped.Inc()
			}
		}
	}()

	// A reader goroutine decouples the socket from the pipeline: the
	// processing loop observes its own backlog (len(in)) for frame
	// shedding, and the per-message deadlines evict idle connections
	// and frozen peers (a peer that sends a partial message and stalls
	// used to wedge this goroutine forever).
	in := make(chan inbound, 64)
	rdErr := make(chan error, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(in)
		for {
			mt, payload, err := protocol.ReadMessageDeadlines(conn,
				timeout(ov.IdleTimeout), timeout(ov.ReadTimeout))
			if err != nil {
				rdErr <- err
				return
			}
			select {
			case in <- inbound{mt, payload}:
			case <-done:
				return
			}
		}
	}()

	// Pose (and mode-switch) writes are bounded too: a client that
	// stopped reading must not pin this goroutine (and its session
	// slot) on a full socket buffer.
	writeMsg := func(mt byte, payload []byte) bool {
		if wt := timeout(ov.WriteTimeout); wt > 0 {
			conn.SetWriteDeadline(time.Now().Add(wt))
			defer conn.SetWriteDeadline(time.Time{})
		}
		return protocol.WriteMessage(conn, mt, payload) == nil
	}
	writePose := func(pm protocol.PoseMsg) bool {
		if !writeMsg(protocol.TypePose, pm.Encode()) {
			return false
		}
		// The answer left this process, so the client (or its front) may
		// hold it: advance the shard-side resume watermark the adoption
		// probe reads. Shed answers count — the client's ledger treats
		// them as answered too.
		if sess != nil {
			s.noteAnswered(sess.ID, pm.FrameIdx, byte(sess.OffloadMode()))
		}
		return true
	}
	// echo stamps the client's send time onto the reply so the client
	// can measure round-trip time (RTT = receive time - echoed stamp).
	// Only adaptive sessions get the extended PoseMsg; legacy clients
	// would reject the longer encoding.
	echo := func(pm protocol.PoseMsg, sent uint64) protocol.PoseMsg {
		if sess != nil && sess.ctrl != nil && sent != 0 {
			pm.HasEcho = true
			pm.EchoNanos = sent
		}
		return pm
	}
	// maybeSwitchMode runs one offload-policy step after a frame is
	// answered and pushes a mode switch downlink when the controller
	// moves. Inputs: client-reported RTT, trackpool pressure, and this
	// connection's own uplink backlog. Returns false on a dead socket.
	maybeSwitchMode := func(backlog int) bool {
		if sess == nil || sess.ctrl == nil {
			return true
		}
		din := offload.Inputs{RTT: time.Duration(sess.rttNanos), Backlog: backlog}
		if s.tpool != nil {
			st := s.tpool.Stats()
			din.QueueDepth = st.QueueDepth + st.AdmitWaiting
			din.Workers = st.Workers
		}
		mode, switched := sess.ctrl.Decide(time.Now(), din)
		if !switched {
			return true
		}
		s.net.ModeSwitches.Inc()
		reason := byte(1) // server load
		if din.Load() == 0 {
			reason = 2 // RTT
		}
		return writeMsg(protocol.TypeModeSwitch, (&protocol.ModeSwitchMsg{
			Mode:      byte(mode),
			Epoch:     sess.ctrl.Epoch(),
			Reason:    reason,
			SentNanos: uint64(time.Now().UnixNano()),
		}).Encode())
	}

	// peer is set once the connection identifies itself as a cluster
	// peer (front door, another shard, or an admin probe) via a
	// ShardHello. A connection is either a device session or a cluster
	// peer, never both.
	var peer *shardPeer

	for m := range in {
		switch m.mt {
		case protocol.TypeShardHello:
			if sess != nil || peer != nil {
				s.net.DupHello.Inc()
				return
			}
			hm, err := protocol.DecodeShardHelloMsg(m.payload)
			if err != nil || hm.Token != s.cfg.Shard.Token {
				s.net.BadHello.Inc()
				return
			}
			peer = &shardPeer{role: hm.Role, sender: hm.SenderID}
		case protocol.TypeHandoff:
			if peer == nil || peer.role == protocol.ShardRoleAdmin {
				return
			}
			if !s.handleHandoff(peer, m.payload, writeMsg) {
				return
			}
		case protocol.TypeBoundaryRegion:
			if peer == nil || peer.role == protocol.ShardRoleAdmin {
				return
			}
			if !s.handleBoundaryRegion(peer, m.payload, writeMsg) {
				return
			}
		case protocol.TypeShardControl:
			if peer == nil {
				return
			}
			if !s.handleShardControl(m.payload, writeMsg) {
				return
			}
		case protocol.TypeHello:
			// One session per connection: a second hello would reassign
			// sess and leak the first session past the deferred close.
			if sess != nil || peer != nil {
				s.net.DupHello.Inc()
				return
			}
			hello, err := protocol.DecodeHelloMsg(m.payload)
			if err != nil {
				s.net.BadHello.Inc()
				return
			}
			sess, err = s.OpenSession(hello.ClientID, hello.Rig())
			if err != nil {
				s.net.BadHello.Inc()
				return
			}
			if hello.HasQoS {
				sess.ConfigureOffload(offload.QoS(hello.QoS), offload.Caps(hello.Caps))
			}
			s.net.SessionsOpened.Inc()
		case protocol.TypeFrame:
			if sess == nil {
				return
			}
			msg, err := protocol.DecodeFrameMsg(m.payload)
			if err != nil {
				s.net.FramesRejected.Inc()
				return
			}
			sess.lag.Note(msg.Stamp)
			if msg.RTTNanos != 0 {
				sess.rttNanos = msg.RTTNanos
			}
			// Deadline-aware shedding (process-latest): when the frames
			// queued behind this one represent more wall-clock lag than
			// the budget, answer it immediately with a Shed pose — the
			// client's IMU dead-reckoning covers the gap (Alg. 1) — and
			// spend the tracking time on a fresher frame. Frames are
			// only shed while tracking is OK: during initialization and
			// relocalization every frame is keyframe-critical.
			if len(in) > 0 && sess.lag.ShouldShed(len(in)) &&
				sess.tracker.State() == tracking.OK {
				sess.ShedFrame(msg)
				s.net.FramesShed.Inc()
				if !writePose(echo(protocol.PoseMsg{
					FrameIdx: msg.FrameIdx, Pose: geom.IdentitySE3(), Shed: true,
				}, msg.SentNanos)) {
					return
				}
				if !maybeSwitchMode(len(in)) {
					return
				}
				continue
			}
			res, err := sess.HandleFrame(msg)
			if err != nil {
				return
			}
			pm := echo(protocol.PoseMsg{
				FrameIdx: msg.FrameIdx, Pose: res.Pose, Tracked: res.Tracked,
			}, msg.SentNanos)
			if !writePose(pm) {
				return
			}
			if !maybeSwitchMode(len(in)) {
				return
			}
		case protocol.TypeKeypoint:
			if sess == nil {
				return
			}
			msg, err := protocol.DecodeKeypointMsg(m.payload)
			if err != nil {
				s.net.FramesRejected.Inc()
				return
			}
			sess.lag.Note(msg.Stamp)
			if msg.RTTNanos != 0 {
				sess.rttNanos = msg.RTTNanos
			}
			// Shadow-mode sync ping: absorb the IMU delta, answer with a
			// Shed pose (the client is tracking locally and only needs
			// the echo for its RTT estimate), and run the policy so the
			// session can be upgraded once load clears.
			if msg.Flags&protocol.KeypointSyncOnly != 0 {
				sess.HandleSync(msg)
				if !writePose(echo(protocol.PoseMsg{
					FrameIdx: msg.FrameIdx, Pose: geom.IdentitySE3(), Shed: true,
				}, msg.SentNanos)) {
					return
				}
				if !maybeSwitchMode(len(in)) {
					return
				}
				continue
			}
			// Split-mode frames shed by the same wall-clock budget as
			// full ones — no decoders to feed here, just the motion
			// model so the next tracked frame's prior spans the gap.
			if len(in) > 0 && sess.lag.ShouldShed(len(in)) &&
				sess.tracker.State() == tracking.OK {
				if sess.mmReady {
					sess.mm.ApproxPoseUpdateMM(msg.Delta)
				}
				s.net.FramesShed.Inc()
				if !writePose(echo(protocol.PoseMsg{
					FrameIdx: msg.FrameIdx, Pose: geom.IdentitySE3(), Shed: true,
				}, msg.SentNanos)) {
					return
				}
				if !maybeSwitchMode(len(in)) {
					return
				}
				continue
			}
			res, err := sess.HandleKeypoints(msg)
			if err != nil {
				return
			}
			pm := echo(protocol.PoseMsg{
				FrameIdx: msg.FrameIdx, Pose: res.Pose, Tracked: res.Tracked,
			}, msg.SentNanos)
			if !writePose(pm) {
				return
			}
			if !maybeSwitchMode(len(in)) {
				return
			}
		case protocol.TypeBye:
			clean = true
			return
		}
	}
	// The reader stopped. A timeout means the watchdog evicted an idle
	// or frozen peer rather than the peer hanging up.
	select {
	case err := <-rdErr:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			s.net.IdleEvicted.Inc()
		}
	default:
	}
}

// LocalMap returns the session's pre-merge local map (after a merge it
// still holds the same keyframes, which then also live in the global
// map).
func (sess *Session) LocalMap() *smap.Map { return sess.localMap }

// Merged reports whether this session's map has been folded into the
// global map.
func (sess *Session) Merged() bool { return sess.merged }
