// Package server implements the SLAM-Share edge server (Fig. 3): an
// orchestrator that allocates the shared-memory region holding the
// global map, per-client SLAM processes (tracking + local mapping)
// that attach to it, a GPU shared across clients GSlice-style, and the
// merge process M that folds each client's map into the global map.
package server

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"slamshare/internal/bow"
	"slamshare/internal/camera"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/gpu"
	"slamshare/internal/holo"
	"slamshare/internal/img"
	"slamshare/internal/imu"
	"slamshare/internal/mapping"
	"slamshare/internal/merge"
	"slamshare/internal/metrics"
	"slamshare/internal/obs"
	"slamshare/internal/persist"
	"slamshare/internal/protocol"
	"slamshare/internal/shm"
	"slamshare/internal/smap"
	"slamshare/internal/tracking"
	"slamshare/internal/video"
	"slamshare/internal/wire"
)

// Config parameterizes the server.
type Config struct {
	// RegionName is the shared-memory segment name; empty picks a
	// unique name.
	RegionName string
	// RegionCapacity is the shared-memory budget (default 2 GiB, as in
	// §4.3.2).
	RegionCapacity int64
	// GPU is the accelerator shared by all client processes; nil runs
	// every stage on the CPU (the ORB-SLAM3 baseline configuration of
	// Figs. 5/8).
	GPU *gpu.Device
	// LanesPerClient is each client process's GSlice share.
	LanesPerClient int
	// MergeAfterKFs triggers the first merge attempt once a client's
	// local map holds this many keyframes.
	MergeAfterKFs int
	// Vocabulary for BoW indexing; nil uses bow.Default().
	Vocabulary *bow.Vocabulary
	// TrackCfg, MapCfg, MergeCfg tune the pipeline.
	TrackCfg tracking.Config
	MapCfg   mapping.Config
	MergeCfg merge.Config
	// Persist enables durable checkpoints + write-ahead journaling of
	// the global map when Persist.Dir is non-empty. On startup the
	// server recovers the map from that directory (latest checkpoint +
	// journal replay); returning clients then resume by relocalization.
	Persist persist.Options
	// Obs is the observability layer every pipeline stage reports
	// into. Nil gets a private tracer — the instrumentation is always
	// on (its hot-path cost is a few atomics per stage, see
	// internal/obs).
	Obs *obs.Tracer
}

// DefaultConfig returns the experiment configuration.
func DefaultConfig() Config {
	return Config{
		RegionCapacity: 2 << 30,
		LanesPerClient: 8,
		MergeAfterKFs:  8,
		TrackCfg:       tracking.DefaultConfig(),
		MapCfg:         mapping.DefaultConfig(),
		MergeCfg:       merge.DefaultConfig(),
	}
}

var regionSeq struct {
	sync.Mutex
	n int
}

// Server is the SLAM-Share edge server.
type Server struct {
	cfg    Config
	voc    *bow.Vocabulary
	region *shm.Region
	global *smap.Map
	// gmu is the named shareable mutex serializing compound global-map
	// operations: merges (multi-step transform + insert + fuse + BA)
	// and checkpoint snapshots. Per-entity reads and writes do NOT take
	// it — the map's internal striped locks make those safe — so N
	// sessions track concurrently while a merge is the only operation
	// that drains the writers.
	gmu     *sync.RWMutex
	anchors *holo.Registry
	pmgr    *persist.Manager
	rec     *persist.Recovery

	obs      *obs.Tracer
	stDecode *obs.Stage
	stFrame  *obs.Stage

	mu       sync.Mutex
	sessions map[uint32]*Session
	merges   []merge.Report

	net NetStats
}

// NetStats counts per-connection protocol events on the Serve path.
// serveConn historically swallowed every failure; these counters make
// dropped frames and rejected sessions observable (the chaos harness
// asserts them after fault scenarios).
type NetStats struct {
	// BadHello counts malformed hello payloads and hellos the server
	// refused (e.g. a client ID already in session).
	BadHello metrics.Counter
	// DupHello counts second hellos on an already-established
	// connection, which are rejected to avoid leaking the first session.
	DupHello metrics.Counter
	// FramesRejected counts frame payloads that failed to decode.
	FramesRejected metrics.Counter
	// FramesFailed counts decoded frames the pipeline failed to process.
	FramesFailed metrics.Counter
	// SessionsOpened / SessionsClosed count session lifecycle on the
	// Serve path; SessionsDropped is the subset of closes caused by a
	// connection dying without a Bye.
	SessionsOpened  metrics.Counter
	SessionsClosed  metrics.Counter
	SessionsDropped metrics.Counter
}

// NetStats returns the Serve-path counters.
func (s *Server) NetStats() *NetStats { return &s.net }

// NSessions returns the number of currently open sessions.
func (s *Server) NSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// New creates the server: it allocates the shared-memory region,
// places an empty global map in it, and publishes it for client
// processes to attach.
func New(cfg Config) (*Server, error) {
	if cfg.RegionCapacity == 0 {
		cfg.RegionCapacity = 2 << 30
	}
	if cfg.MergeAfterKFs == 0 {
		cfg.MergeAfterKFs = 8
	}
	if cfg.LanesPerClient == 0 {
		cfg.LanesPerClient = 8
	}
	voc := cfg.Vocabulary
	if voc == nil {
		voc = bow.Default()
	}
	tracer := cfg.Obs
	if tracer == nil {
		tracer = obs.NewTracer(obs.NewRegistry(), obs.DefaultRingSize)
	}
	// Persistence spans (WAL drains, checkpoint rotations) report into
	// the same tracer as the frame pipeline.
	cfg.Persist.Obs = tracer
	name := cfg.RegionName
	if name == "" {
		regionSeq.Lock()
		regionSeq.n++
		name = fmt.Sprintf("slamshare-%d-%d", time.Now().UnixNano(), regionSeq.n)
		regionSeq.Unlock()
	}
	region, err := shm.Create(name, cfg.RegionCapacity)
	if err != nil {
		return nil, err
	}

	// With persistence enabled the global map is recovered from disk
	// (empty directory → empty map) instead of starting fresh, and a
	// manager journals every mutation from here on.
	global := smap.NewMap(voc)
	anchors := holo.NewRegistry()
	var rec *persist.Recovery
	var pmgr *persist.Manager
	if cfg.Persist.Dir != "" {
		rec, err = persist.Recover(cfg.Persist.Dir, voc)
		if err != nil {
			shm.Unlink(region.Name())
			return nil, fmt.Errorf("server: recover: %w", err)
		}
		global = rec.Map
		anchors = rec.Anchors
	}
	region.Publish("globalmap", global)
	gmu := region.NamedMutex("globalmap")
	if cfg.Persist.Dir != "" {
		pmgr, err = persist.Open(cfg.Persist, global, anchors, rec.LastSeq, gmu)
		if err != nil {
			shm.Unlink(region.Name())
			return nil, fmt.Errorf("server: persist: %w", err)
		}
		pmgr.Stats().ReplayedRecords.Add(int64(rec.ReplayedRecords))
		pmgr.Stats().ReplayLat.Add(rec.ReplayTime)
	}
	s := &Server{
		cfg:      cfg,
		voc:      voc,
		region:   region,
		global:   global,
		gmu:      gmu,
		anchors:  anchors,
		pmgr:     pmgr,
		rec:      rec,
		obs:      tracer,
		stDecode: tracer.Stage("decode"),
		stFrame:  tracer.Stage("frame.total"),
		sessions: make(map[uint32]*Session),
	}
	reg := tracer.Registry()
	reg.RegisterFunc("map.keyframes", func() any { return s.global.NKeyFrames() })
	reg.RegisterFunc("map.points", func() any { return s.global.NMapPoints() })
	reg.RegisterFunc("sessions.open", func() any { return s.NSessions() })
	reg.RegisterCounter("net.bad_hello", &s.net.BadHello)
	reg.RegisterCounter("net.dup_hello", &s.net.DupHello)
	reg.RegisterCounter("net.frames_rejected", &s.net.FramesRejected)
	reg.RegisterCounter("net.frames_failed", &s.net.FramesFailed)
	reg.RegisterCounter("net.sessions_opened", &s.net.SessionsOpened)
	reg.RegisterCounter("net.sessions_closed", &s.net.SessionsClosed)
	reg.RegisterCounter("net.sessions_dropped", &s.net.SessionsDropped)
	return s, nil
}

// Obs returns the server's tracer (the one every pipeline stage
// reports into).
func (s *Server) Obs() *obs.Tracer { return s.obs }

// DebugHandler returns the live debug endpoint: registry JSON at
// /debug/vars, recent spans at /debug/spans, and net/http/pprof under
// /debug/pprof/. Mount it on a side listener, never the client port.
func (s *Server) DebugHandler() http.Handler { return obs.Handler(s.obs) }

// Close releases the shared-memory region name and, when persistence
// is enabled, flushes and closes the journal (without a final
// checkpoint, so restart always exercises recovery).
func (s *Server) Close() {
	if s.pmgr != nil {
		s.pmgr.Close()
	}
	shm.Unlink(s.region.Name())
}

// Anchors returns the session's hologram anchor registry. It is
// included in checkpoints when persistence is enabled.
func (s *Server) Anchors() *holo.Registry { return s.anchors }

// Persist returns the persistence manager, or nil when disabled.
func (s *Server) Persist() *persist.Manager { return s.pmgr }

// Recovery returns the startup recovery summary, or nil when the
// server started without persistence.
func (s *Server) Recovery() *persist.Recovery { return s.rec }

// Global returns the shared global map.
func (s *Server) Global() *smap.Map { return s.global }

// Region returns the shared-memory region (for capacity accounting).
func (s *Server) Region() *shm.Region { return s.region }

// MergeReports returns the merge timing breakdowns recorded so far
// (the SLAM-Share column of Table 4).
func (s *Server) MergeReports() []merge.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]merge.Report, len(s.merges))
	copy(out, s.merges)
	return out
}

// Session is one client's server-side process (Process A/B in Fig. 3):
// it attaches the shared region, decodes the client's video, tracks
// with the GPU slice, maps locally, and hands its map to the merge
// process.
type Session struct {
	ID  uint32
	srv *Server
	rig camera.Rig

	tracker  *tracking.Tracker
	mapper   *mapping.Mapper
	localMap *smap.Map
	merged   bool

	decL, decR *video.Decoder
	mm         *imu.MotionModel
	mmReady    bool
	prevTwc    geom.SE3
	prevStamp  float64
	havePrev   bool
	// mergeBackoff raises the keyframe threshold after failed merge
	// attempts so the session does not retry every frame.
	mergeBackoff int

	// trackHist is this session's end-to-end tracking latency
	// histogram. It is private to the session (the registry's
	// "track.total" aggregates all sessions); Stats summarizes it.
	trackHist *obs.Histogram
	stages    tracking.Stages
	frames    int
	kfBytes   int64 // shared-memory accounting of this client's inserts

	// Traj records the server-side pose estimates (camera centers).
	Traj metrics.Trajectory
}

// OpenSession registers a client process. Each session attaches the
// shared-memory region and gets its own GPU slice.
func (s *Server) OpenSession(clientID uint32, rig camera.Rig) (*Session, error) {
	if _, err := shm.Attach(s.region.Name()); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[clientID]; ok {
		return nil, fmt.Errorf("server: client %d already connected", clientID)
	}
	// A returning client — whether after a server recovery or a mid-run
	// disconnect — already has keyframes in the global map: seed its
	// allocator past the highest sequence it used before so fresh IDs
	// never collide, and resume directly on the global map below.
	resumeSeq := s.global.MaxSeq(int(clientID))
	alloc := smap.NewIDAllocatorFrom(int(clientID), resumeSeq)
	localMap := smap.NewMap(s.voc)
	ex := feature.NewExtractor(feature.DefaultConfig())
	var searchPar feature.Parallelizer
	if s.cfg.GPU != nil {
		slice := s.cfg.GPU.NewSlice(s.cfg.LanesPerClient)
		ex.Par = slice
		searchPar = slice
	}
	tr := tracking.New(localMap, rig, ex, alloc, int(clientID), s.cfg.TrackCfg)
	tr.SearchPar = searchPar
	tr.Obs = s.obs
	mapper := mapping.New(localMap, rig, alloc, int(clientID), s.cfg.MapCfg)
	mapper.Obs = s.obs
	sess := &Session{
		ID:        clientID,
		srv:       s,
		rig:       rig,
		tracker:   tr,
		mapper:    mapper,
		localMap:  localMap,
		decL:      video.NewDecoder(),
		decR:      video.NewDecoder(),
		trackHist: obs.NewHistogram("track.session"),
	}
	if resumeSeq > 0 {
		// Resume the session directly on the recovered global map: the
		// tracker starts Lost and relocalizes by BoW against the map it
		// helped build, skipping the local-map + merge bootstrap.
		sess.merged = true
		sess.tracker.Map = s.global
		sess.mapper.Map = s.global
		sess.tracker.ResumeLost()
	}
	s.sessions[clientID] = sess
	return sess, nil
}

// CloseSession removes a client process.
func (s *Server) CloseSession(clientID uint32) {
	s.mu.Lock()
	delete(s.sessions, clientID)
	s.mu.Unlock()
}

// Result reports one processed frame.
type Result struct {
	Pose    geom.SE3 // world-to-camera
	Tracked bool
	Merged  bool // true if this frame triggered a successful map merge
	Timing  tracking.Stages
	Inliers int
}

// HandleFrame processes one uplink frame message end to end: video
// decode, IMU-prior tracking, local mapping, and (once the local map
// is large enough) the merge into the global map.
func (sess *Session) HandleFrame(msg *protocol.FrameMsg) (Result, error) {
	var res Result
	// ord is this session's frame ordinal: the trace ID linking the
	// decode/track/frame spans of one frame across stage histograms.
	// The tracker numbers frames with the same counter, so its spans
	// join the trace without any plumbing.
	ord := uint64(sess.frames)
	fsp := sess.srv.stFrame.Start(sess.ID, ord)
	defer fsp.End()

	dsp := sess.srv.stDecode.Start(sess.ID, ord)
	left, err := sess.decL.Decode(msg.Video)
	if err != nil {
		dsp.End()
		return res, fmt.Errorf("server: left video: %w", err)
	}
	var rightImg *img.Gray
	if len(msg.VideoRight) > 0 {
		rightImg, err = sess.decR.Decode(msg.VideoRight)
		if err != nil {
			dsp.End()
			return res, fmt.Errorf("server: right video: %w", err)
		}
	}
	dsp.End()

	// IMU-assisted prior: advance the server-side motion model by the
	// client's preintegrated delta (§4.2.2). The first frame's prior
	// (if the client sent one) anchors the map in the client's frame.
	var prior *geom.SE3
	if sess.mmReady {
		bodyToWorld := sess.mm.ApproxPoseUpdateMM(msg.Delta)
		p := bodyToWorld.Inverse()
		prior = &p
	} else if msg.HasPrior {
		p := msg.Prior.Inverse()
		prior = &p
	}

	t0 := time.Now()
	tr := sess.tracker.ProcessFrame(left, rightImg, msg.Stamp, prior)
	sess.trackHist.Observe(time.Since(t0))
	sess.stages.Add(tr.Timing)
	sess.frames++

	res.Pose = tr.Pose
	res.Tracked = tr.State == tracking.OK
	res.Timing = tr.Timing
	res.Inliers = tr.Inliers

	if res.Tracked {
		twc := tr.Pose.Inverse()
		if !sess.mmReady {
			sess.mm = imu.NewMotionModel(twc, geom.Vec3{})
			sess.mmReady = true
		} else {
			sess.mm.RecvSLAMPose(twc, sess.mm.Len()-1)
			// Correct the motion model's velocity from consecutive SLAM
			// fixes; the anchor velocity was unknown and IMU deltas only
			// carry velocity increments.
			if sess.havePrev && msg.Stamp > sess.prevStamp {
				v := twc.T.Sub(sess.prevTwc.T).Scale(1 / (msg.Stamp - sess.prevStamp))
				sess.mm.SetVelocity(v)
			}
		}
		sess.prevTwc = twc
		sess.prevStamp = msg.Stamp
		sess.havePrev = true
		sess.Traj.Append(msg.Stamp, twc.T)
	}

	if tr.NewKF != nil {
		sess.mapper.ProcessKeyFrame(tr.NewKF)
		// Account the keyframe's footprint against the 2 GiB region.
		sz := int64(len(tr.NewKF.Keypoints))*80 + 4096
		if _, err := sess.srv.region.Alloc(sz); err == nil {
			sess.kfBytes += sz
		}
	}

	// Merge process M: once the local map has substance, fold it into
	// the shared global map and rebind this process to it.
	if !sess.merged && sess.localMap.NKeyFrames() >= sess.srv.cfg.MergeAfterKFs+sess.mergeBackoff {
		if sess.tryMerge() {
			res.Merged = true
		}
	}
	return res, nil
}

// tryMerge runs the merge under the named global-map mutex. On
// success the session's tracker and mapper operate directly on the
// global map afterwards; on failure (no overlap yet) the session keeps
// its local map and retries when it has grown.
func (sess *Session) tryMerge() bool {
	s := sess.srv
	s.gmu.Lock()
	merger := merge.New(s.global, sess.rig.Intr, s.cfg.MergeCfg)
	merger.Obs = s.obs
	merger.ObsClient = sess.ID
	merger.ObsSeq = uint64(sess.frames - 1) // frame ordinal that triggered the merge
	if s.pmgr != nil {
		merger.Journal = s.pmgr.Journal()
	}
	rep, err := merger.Merge(sess.localMap)
	if err == nil && rep.Alignment != nil {
		// Transform this session's live tracking state into global
		// coordinates along with its map: the tracker's last frame and
		// velocity, the motion model, and the previous-pose anchor the
		// velocity correction uses (otherwise the first post-merge
		// velocity estimate would span the coordinate-frame jump).
		tf := rep.Alignment.Transform
		sess.tracker.ApplyTransform(tf)
		if sess.mmReady {
			last := sess.tracker.LastFrame()
			sess.mm.RecvSLAMPose(last.Tcw.Inverse(), sess.mm.Len()-1)
		}
		if sess.havePrev {
			sess.prevTwc = geom.SE3{
				R: tf.R.Mul(sess.prevTwc.R).Normalized(),
				T: tf.Apply(sess.prevTwc.T),
			}
		}
	}
	s.gmu.Unlock()
	if err != nil {
		// No overlap yet: retry after the local map has grown by a few
		// more keyframes.
		sess.srv.mu.Lock()
		sess.srv.cfgRetry(sess)
		sess.srv.mu.Unlock()
		return false
	}
	s.mu.Lock()
	s.merges = append(s.merges, rep)
	s.mu.Unlock()
	sess.merged = true
	sess.tracker.Map = s.global
	sess.mapper.Map = s.global
	return true
}

// cfgRetry postpones the next merge attempt (simple backoff by
// requiring more keyframes). Caller holds s.mu.
func (s *Server) cfgRetry(sess *Session) {
	// Each failed attempt raises this session's threshold.
	sess.mergeBackoff += 3
}

// Stats summarizes a session.
type Stats struct {
	Frames     int
	AvgStages  tracking.Stages
	TrackStats obs.Summary
	Merged     bool
}

// Stats returns the session's aggregate statistics. Quantiles come
// from the session's latency histogram, so they are O(buckets) to
// read regardless of how many frames the session has processed.
func (sess *Session) Stats() Stats {
	return Stats{
		Frames:     sess.frames,
		AvgStages:  sess.stages.Scale(sess.frames),
		TrackStats: sess.trackHist.Summary(),
		Merged:     sess.merged,
	}
}

// GlobalMapSize returns the serialized size of the global map in
// bytes (Table 1 instrumentation).
func (s *Server) GlobalMapSize() int {
	s.gmu.RLock()
	defer s.gmu.RUnlock()
	return wire.MapSize(s.global)
}

// Serve accepts client connections on l and runs a session per
// connection until the listener closes. Each connection speaks the
// protocol package's framing.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var sess *Session
	clean := false
	defer func() {
		if sess != nil {
			s.CloseSession(sess.ID)
			s.net.SessionsClosed.Inc()
			if !clean {
				s.net.SessionsDropped.Inc()
			}
		}
	}()
	for {
		mt, payload, err := protocol.ReadMessage(conn)
		if err != nil {
			return
		}
		switch mt {
		case protocol.TypeHello:
			// One session per connection: a second hello would reassign
			// sess and leak the first session past the deferred close.
			if sess != nil {
				s.net.DupHello.Inc()
				return
			}
			hello, err := protocol.DecodeHelloMsg(payload)
			if err != nil {
				s.net.BadHello.Inc()
				return
			}
			sess, err = s.OpenSession(hello.ClientID, hello.Rig())
			if err != nil {
				s.net.BadHello.Inc()
				return
			}
			s.net.SessionsOpened.Inc()
		case protocol.TypeFrame:
			if sess == nil {
				return
			}
			msg, err := protocol.DecodeFrameMsg(payload)
			if err != nil {
				s.net.FramesRejected.Inc()
				return
			}
			res, err := sess.HandleFrame(msg)
			if err != nil {
				s.net.FramesFailed.Inc()
				return
			}
			pm := protocol.PoseMsg{FrameIdx: msg.FrameIdx, Pose: res.Pose, Tracked: res.Tracked}
			if err := protocol.WriteMessage(conn, protocol.TypePose, pm.Encode()); err != nil {
				return
			}
		case protocol.TypeBye:
			clean = true
			return
		}
	}
}

// LocalMap returns the session's pre-merge local map (after a merge it
// still holds the same keyframes, which then also live in the global
// map).
func (sess *Session) LocalMap() *smap.Map { return sess.localMap }

// Merged reports whether this session's map has been folded into the
// global map.
func (sess *Session) Merged() bool { return sess.merged }
