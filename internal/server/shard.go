package server

// Cluster-mode message handlers: the shard side of the spatially
// sharded global map. A slamshare-front router owns session placement;
// shards own disjoint covisibility regions of the world map and move
// ownership between each other with a two-phase handoff the front
// coordinates:
//
//	front -> A  HandoffBegin       export the session's boundary region
//	A -> front  BoundaryRegion     deep-copied snapshot, map untouched
//	front -> B  BoundaryRegion     import: merge or adopt, WAL-bracketed
//	B -> front  HandoffAck/Nack    committed (end marker durable) or rolled back
//	front -> A  HandoffCommit      erase the exported cluster
//	A -> front  HandoffCommitAck   ownership disjoint again
//
// The export mutates nothing, so an abort at any step before the
// commit leaves shard A authoritative. The import journals an
// opShardImport bracket around the merge: a crash between Begin and
// End makes recovery truncate the WAL at the begin marker (see
// persist.Recover), so the half-merge never survives a restart and the
// peer — which only erases on HandoffCommit, sent strictly after the
// Ack — still owns the region. Between B's commit and A's erase the
// cluster transiently double-owns the exported keyframes; the
// cross-shard disjointness invariant is asserted at quiescent points
// only, never mid-handoff.

import (
	"errors"
	"fmt"
	"time"

	"slamshare/internal/bow"
	"slamshare/internal/camera"
	"slamshare/internal/holo"
	"slamshare/internal/merge"
	"slamshare/internal/protocol"
	"slamshare/internal/smap"
	"slamshare/internal/wire"
)

// shardPeer is the identity a connection assumes after a valid
// ShardHello: the front door, a sibling shard, or an admin probe.
type shardPeer struct {
	role   byte
	sender uint32
}

// boundaryClusterLimit caps how many keyframes one handoff exports.
// The covisibility cluster around the session's newest keyframe is
// what the target shard needs to keep tracking seamless; the rest of
// the trajectory stays behind and is reachable through relocalization.
const boundaryClusterLimit = 40

// exportKey identifies one offered-but-uncommitted boundary export.
type exportKey struct {
	client uint32
	epoch  uint64
}

// exportRecord remembers what a HandoffBegin exported so the later
// HandoffCommit erases exactly that — no more, no less — even if the
// map changed in between.
type exportRecord struct {
	kfIDs []smap.ID
	mpIDs []smap.ID
}

// handleHandoff serves the source-shard half of the protocol: Begin
// (export) and Commit (erase). Returns false to drop the connection.
func (s *Server) handleHandoff(peer *shardPeer, payload []byte, writeMsg func(byte, []byte) bool) bool {
	msg, err := protocol.DecodeHandoffMsg(payload)
	if err != nil {
		return false
	}
	switch msg.Phase {
	case protocol.HandoffBegin:
		return s.exportBoundary(msg, writeMsg)
	case protocol.HandoffCommit:
		return s.commitExport(msg, writeMsg)
	default:
		// Ack/Nack/CommitAck travel shard->front; receiving one here is
		// a protocol violation.
		return false
	}
}

// exportBoundary snapshots the covisibility cluster around the
// client's newest keyframe plus the client's anchors, remembers the
// exported IDs for the commit, and answers with a BoundaryRegionMsg.
// The map is not mutated: until HandoffCommit arrives this shard
// remains the region's owner.
func (s *Server) exportBoundary(msg *protocol.HandoffMsg, writeMsg func(byte, []byte) bool) bool {
	var (
		kfs []*smap.KeyFrame
		mps []*smap.MapPoint
	)
	s.gmu.RLock()
	// The client's newest keyframe seeds the cluster. smap.MaxSeq mixes
	// keyframe and map-point sequence numbers, so scan the keyframes.
	var seed smap.ID
	for _, kf := range s.global.KeyFrames() {
		if kf.Client == int(msg.ClientID) && (seed == 0 || smap.SeqOf(kf.ID) > smap.SeqOf(seed)) {
			seed = kf.ID
		}
	}
	if seed != 0 {
		ids := s.global.CovisCluster(seed, boundaryClusterLimit, nil)
		kfs, mps = s.global.SnapshotRegion(ids)
	}
	s.gmu.RUnlock()

	rec := &exportRecord{}
	for _, kf := range kfs {
		rec.kfIDs = append(rec.kfIDs, kf.ID)
	}
	for _, mp := range mps {
		rec.mpIDs = append(rec.mpIDs, mp.ID)
	}
	s.shardMu.Lock()
	// A re-offer for the same client supersedes any older pending
	// export: the front retries with a fresh epoch after an abort.
	for k := range s.pendingExports {
		if k.client == msg.ClientID {
			delete(s.pendingExports, k)
		}
	}
	s.pendingExports[exportKey{msg.ClientID, msg.Epoch}] = rec
	s.shardMu.Unlock()
	s.noteHandoffEpoch(msg.ClientID, msg.Epoch)

	reply := &protocol.BoundaryRegionMsg{
		ClientID: msg.ClientID,
		Epoch:    msg.Epoch,
		RegionID: msg.Epoch,
		Region:   wire.EncodeRegion(msg.Epoch, kfs, mps),
		Anchors:  holo.EncodeAnchors(s.anchors.OwnedBy(msg.ClientID)),
	}
	return writeMsg(protocol.TypeBoundaryRegion, reply.Encode())
}

// commitExport erases the previously exported cluster: the target
// shard has committed the import, so keeping the copy here would
// violate cross-shard ownership disjointness. Map points are erased
// only once orphaned — a point observed from a keyframe that stayed
// behind is still this shard's.
func (s *Server) commitExport(msg *protocol.HandoffMsg, writeMsg func(byte, []byte) bool) bool {
	s.shardMu.Lock()
	rec, ok := s.pendingExports[exportKey{msg.ClientID, msg.Epoch}]
	delete(s.pendingExports, exportKey{msg.ClientID, msg.Epoch})
	s.shardMu.Unlock()
	if !ok {
		// Unknown epoch: a duplicate or stale commit. Ack idempotently —
		// the erase it asks for already happened or was superseded.
		return s.writeHandoff(writeMsg, protocol.HandoffCommitAck, msg, "")
	}
	s.gmu.Lock()
	for _, id := range rec.kfIDs {
		// Journaled through the map's observer like every other erase.
		s.global.EraseKeyFrame(id)
	}
	for _, id := range rec.mpIDs {
		if n, ok := s.global.PointObsCount(id); ok && n == 0 {
			s.global.EraseMapPoint(id)
		}
	}
	s.gmu.Unlock()
	return s.writeHandoff(writeMsg, protocol.HandoffCommitAck, msg, "")
}

// handleBoundaryRegion serves the target-shard half: import the peer's
// boundary region under a WAL bracket and answer Ack or Nack. Returns
// false to drop the connection.
func (s *Server) handleBoundaryRegion(peer *shardPeer, payload []byte, writeMsg func(byte, []byte) bool) bool {
	msg, err := protocol.DecodeBoundaryRegionMsg(payload)
	if err != nil {
		return false
	}
	hm := &protocol.HandoffMsg{
		ClientID:  msg.ClientID,
		Epoch:     msg.Epoch,
		FromShard: peer.sender,
		ToShard:   s.cfg.Shard.ID,
	}
	// Import quarantine mirrors the per-session merge quarantine: a
	// peer whose exports keep failing validation stops being believed.
	s.shardMu.Lock()
	blocked := s.importBlocked[peer.sender] >= s.cfg.Overload.MaxMergeRollbacks
	s.shardMu.Unlock()
	if blocked {
		return s.writeHandoff(writeMsg, protocol.HandoffNack, hm, "peer quarantined after repeated import rollbacks")
	}
	_, kfs, mps, err := wire.DecodeRegion(msg.Region)
	if err != nil {
		return s.writeHandoff(writeMsg, protocol.HandoffNack, hm, "corrupt boundary region: "+err.Error())
	}
	anchors, err := holo.DecodeAnchors(msg.Anchors)
	if err != nil {
		return s.writeHandoff(writeMsg, protocol.HandoffNack, hm, "corrupt anchor payload: "+err.Error())
	}

	s.importsInFlight.Add(1)
	defer s.importsInFlight.Add(-1)
	s.gmu.Lock()
	mergeErr := s.importRegion(msg.Epoch, msg.ClientID, kfs, mps)
	if mergeErr != nil {
		s.gmu.Unlock()
		s.importsRolled.Add(1)
		s.net.MergeRollbacks.Inc()
		s.shardMu.Lock()
		s.importBlocked[peer.sender]++
		s.shardMu.Unlock()
		return s.writeHandoff(writeMsg, protocol.HandoffNack, hm, mergeErr.Error())
	}
	s.gmu.Unlock()
	// The end marker must be durable before the Ack: once the peer sees
	// the Ack it will erase its copy, so from that moment a crash here
	// must NOT roll the import back.
	if s.pmgr != nil {
		if err := s.pmgr.Flush(); err != nil {
			s.importsRolled.Add(1)
			return s.writeHandoff(writeMsg, protocol.HandoffNack, hm, "journal flush: "+err.Error())
		}
	}
	for _, a := range anchors {
		s.anchors.Restore(a)
	}
	s.importsDone.Add(1)
	s.noteHandoffEpoch(msg.ClientID, msg.Epoch)
	return s.writeHandoff(writeMsg, protocol.HandoffAck, hm, "")
}

// importRegion (gmu held) rebuilds the snapshot into a standalone map
// and runs it through the transactional merge machinery. Clients track
// against world-frame priors, so the imported region is already in the
// cluster's shared coordinate frame: if it overlaps this shard's map
// the merger aligns and fuses duplicates; if it is disjoint (the
// common case — regions are spatially sharded) it is adopted at
// identity. Either path validates pre-commit and rolls back through
// the undo log on violation. The whole import sits inside an
// opShardImport WAL bracket so a crash mid-import is rolled back by
// recovery.
func (s *Server) importRegion(epoch uint64, client uint32, kfs []*smap.KeyFrame, mps []*smap.MapPoint) error {
	var j merge.Journal
	if s.pmgr != nil {
		jj := s.pmgr.Journal()
		jj.ShardImportBegin(epoch, client)
		j = jj
	}
	cmap := buildImportMap(s.voc, kfs, mps)
	merger := merge.New(s.global, camera.EuRoCIntrinsics(), s.cfg.MergeCfg)
	merger.Journal = j
	var err error
	if s.global.NKeyFrames() > 0 {
		_, err = merger.Merge(cmap)
		if errors.Is(err, merge.ErrNoOverlap) {
			_, err = merger.Adopt(cmap)
		}
	} else {
		_, err = merger.Adopt(cmap)
	}
	committed := err == nil
	if committed && s.cfg.Shard.ImportStall > 0 {
		// Crash-window failpoint: make the open bracket and the merge's
		// inserts durable, then hold the import open (gmu still held).
		// A SIGKILL lands exactly in the state recovery must undo.
		if s.pmgr != nil {
			s.pmgr.Flush()
		}
		s.importsStalled.Add(1)
		time.Sleep(s.cfg.Shard.ImportStall)
	}
	if s.pmgr != nil {
		s.pmgr.Journal().ShardImportEnd(epoch, committed)
	}
	if err != nil {
		return fmt.Errorf("boundary import rolled back: %w", err)
	}
	return nil
}

// buildImportMap rebuilds a wire-decoded snapshot into a standalone
// map the merger can consume, re-establishing observations and
// covisibility exactly like the lifecycle manager's region reload.
func buildImportMap(voc *bow.Vocabulary, kfs []*smap.KeyFrame, mps []*smap.MapPoint) *smap.Map {
	m := smap.NewMap(voc)
	present := make(map[smap.ID]bool, len(mps))
	for _, mp := range mps {
		present[mp.ID] = true
	}
	for _, mp := range mps {
		mp.Obs = make(map[smap.ID]int)
		m.AddMapPoint(mp)
	}
	for _, kf := range kfs {
		for i, mpID := range kf.MapPoints {
			if mpID != 0 && !present[mpID] {
				kf.MapPoints[i] = 0 // cluster-private filter should prevent this; be safe
			}
		}
		kf.Conns = make(map[smap.ID]int)
		m.AddKeyFrame(kf)
	}
	for _, kf := range kfs {
		for i, mpID := range kf.MapPoints {
			if mpID == 0 {
				continue
			}
			if err := m.AddObservation(kf.ID, mpID, i); err != nil {
				kf.MapPoints[i] = 0
			}
		}
	}
	for _, kf := range kfs {
		m.UpdateConnections(kf.ID, 15)
	}
	return m
}

// handleShardControl answers admin probes. Returns false to drop the
// connection.
func (s *Server) handleShardControl(payload []byte, writeMsg func(byte, []byte) bool) bool {
	msg, err := protocol.DecodeShardControlMsg(payload)
	if err != nil || msg.Token != s.cfg.Shard.Token {
		return false
	}
	st := &protocol.ShardStatusMsg{Op: msg.Op, OK: true}
	switch msg.Op {
	case protocol.ShardOpPing:
		// Liveness only.
	case protocol.ShardOpCheck:
		s.gmu.RLock()
		rep := smap.CheckInvariants(s.global)
		s.gmu.RUnlock()
		st.OK = rep.OK()
		for _, v := range rep.Violations {
			st.Violations = append(st.Violations, v.String())
		}
	case protocol.ShardOpOwnership:
		s.gmu.RLock()
		for _, kf := range s.global.KeyFrames() {
			st.KFIDs = append(st.KFIDs, uint64(kf.ID))
		}
		s.gmu.RUnlock()
		for _, a := range s.anchors.All() {
			st.Anchors = append(st.Anchors, protocol.AnchorState{ID: a.ID, Pose: a.Pose})
		}
	case protocol.ShardOpResume:
		// Per-client resume state under its own mutex — never gmu, so an
		// adopting front can probe while an import stall holds the map.
		if rs, ok := s.resumeStateFor(msg.ClientID); ok {
			st.ResumeKnown = true
			st.ResumeFrame = rs.frame
			st.ResumeEpoch = rs.epoch
			st.ResumeMode = rs.mode
		}
	case protocol.ShardOpStats:
		// Atomics and striped counters only — never gmu, so this probe
		// works while an import stall holds the global-map lock.
		st.Stats = protocol.ShardStats{
			KeyFrames:       uint64(s.global.NKeyFrames()),
			MapPoints:       uint64(s.global.NMapPoints()),
			Sessions:        uint64(s.NSessions()),
			ImportsInFlight: uint64(s.importsInFlight.Load()),
			Imports:         uint64(s.importsDone.Load()),
			ImportRollbacks: uint64(s.importsRolled.Load()),
			ImportsStalled:  uint64(s.importsStalled.Load()),
		}
	}
	return writeMsg(protocol.TypeShardStatus, st.Encode())
}

// writeHandoff sends one handoff step with this shard's identity
// filled in.
func (s *Server) writeHandoff(writeMsg func(byte, []byte) bool, phase byte, base *protocol.HandoffMsg, reason string) bool {
	out := &protocol.HandoffMsg{
		Phase:     phase,
		ClientID:  base.ClientID,
		Epoch:     base.Epoch,
		FromShard: base.FromShard,
		ToShard:   base.ToShard,
		Reason:    reason,
	}
	return writeMsg(protocol.TypeHandoff, out.Encode())
}
