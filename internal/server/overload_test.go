package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/geom"
	"slamshare/internal/overload"
	"slamshare/internal/protocol"
	"slamshare/internal/video"
)

// buildRawFrame encodes a real stereo frame of seq as an uplink
// message using the given encoders (so decoder stream state matches).
func buildRawFrame(seq *dataset.Sequence, encL, encR *video.Encoder, i int, prior bool) *protocol.FrameMsg {
	left, right := seq.StereoFrame(i)
	msg := &protocol.FrameMsg{
		ClientID: 1,
		FrameIdx: uint32(i),
		Stamp:    seq.FrameTime(i),
		Video:    encL.Encode(left),
	}
	if right != nil {
		msg.VideoRight = encR.Encode(right)
	}
	if prior {
		msg.Prior = seq.GroundTruth(i).Inverse()
		msg.HasPrior = true
	}
	return msg
}

// Each HandleFrame failure mode must land on its own counter:
// undecodable video on FramesFailed, a processed-but-unlocalized frame
// on TrackLost, and a keyframe the shared-memory region cannot hold on
// KFRejected.
func TestHandleFrameErrorCounters(t *testing.T) {
	srv, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	seq := dataset.V202(camera.Stereo)
	sess, err := srv.OpenSession(1, seq.Rig)
	if err != nil {
		t.Fatal(err)
	}

	// Undecodable left stream.
	bad := &protocol.FrameMsg{ClientID: 1, Video: []byte{0xde, 0xad, 0xbe, 0xef}}
	if _, err := sess.HandleFrame(bad); err == nil {
		t.Fatal("garbage video decoded")
	}
	if got := srv.NetStats().FramesFailed.Load(); got != 1 {
		t.Errorf("FramesFailed = %d after bad left stream, want 1", got)
	}

	// Valid left, undecodable right: the stereo pair is unusable.
	encL := video.NewEncoder()
	left, _ := seq.StereoFrame(0)
	bad2 := &protocol.FrameMsg{ClientID: 1, Video: encL.Encode(left), VideoRight: []byte{1, 2, 3}}
	if _, err := sess.HandleFrame(bad2); err == nil {
		t.Fatal("garbage right video decoded")
	}
	if got := srv.NetStats().FramesFailed.Load(); got != 2 {
		t.Errorf("FramesFailed = %d after bad stereo pair, want 2", got)
	}

	// Initialize tracking, then feed a featureless frame: the tracker
	// loses the frame and TrackLost counts it.
	encL, encR := video.NewEncoder(), video.NewEncoder()
	if res, err := sess.HandleFrame(buildRawFrame(seq, encL, encR, 0, true)); err != nil || !res.Tracked {
		t.Fatalf("init frame: err=%v tracked=%v", err, res.Tracked)
	}
	blank := left.Clone()
	blank.Fill(128)
	lostMsg := &protocol.FrameMsg{
		ClientID: 1, FrameIdx: 1, Stamp: seq.FrameTime(1),
		Video: encL.Encode(blank), VideoRight: encR.Encode(blank),
	}
	res, err := sess.HandleFrame(lostMsg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tracked {
		t.Fatal("blank frame tracked")
	}
	if got := srv.NetStats().TrackLost.Load(); got < 1 {
		t.Errorf("TrackLost = %d after blank frame, want >= 1", got)
	}
}

func TestHandleFrameKFRejectedOnRegionExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	// A region too small to hold even one keyframe's footprint: every
	// keyframe insert is a mapper rejection.
	cfg.RegionCapacity = 1 << 12
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	seq := dataset.V202(camera.Stereo)
	sess, err := srv.OpenSession(1, seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	encL, encR := video.NewEncoder(), video.NewEncoder()
	for i := 0; i < 10; i++ {
		if _, err := sess.HandleFrame(buildRawFrame(seq, encL, encR, i, i == 0)); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if got := srv.NetStats().KFRejected.Load(); got < 1 {
		t.Errorf("KFRejected = %d over 10 frames in a 4 KiB region, want >= 1", got)
	}
}

func TestOpenSessionCeiling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Overload.MaxSessions = 2
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rig := camera.NewMonoRig(camera.EuRoCIntrinsics())
	for id := uint32(1); id <= 2; id++ {
		if _, err := srv.OpenSession(id, rig); err != nil {
			t.Fatalf("session %d: %v", id, err)
		}
	}
	if _, err := srv.OpenSession(3, rig); !errors.Is(err, overload.ErrOverloaded) {
		t.Fatalf("third session: err = %v, want ErrOverloaded", err)
	}
	if got := srv.NetStats().SessionsRejected.Load(); got != 1 {
		t.Errorf("SessionsRejected = %d, want 1", got)
	}
	// Closing a session frees its slot; a failed duplicate open while a
	// slot is free must report the duplicate and not consume it.
	srv.CloseSession(1)
	if _, err := srv.OpenSession(2, rig); err == nil || errors.Is(err, overload.ErrOverloaded) {
		t.Fatalf("duplicate open: err = %v, want duplicate error", err)
	}
	if _, err := srv.OpenSession(3, rig); err != nil {
		t.Errorf("slot leaked by failed duplicate open: %v", err)
	}
}

// A client that bursts frames faster than the pipeline tracks them
// must get every frame answered — stale ones with a Shed pose — and
// the connection must stay healthy throughout.
func TestServeShedsUnderBacklog(t *testing.T) {
	if testing.Short() {
		t.Skip("full system test")
	}
	cfg := DefaultConfig()
	cfg.Overload.ShedBudget = 10 * time.Millisecond
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := serveTestListener(t, srv)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	seq := dataset.V202(camera.Stereo)
	cl := client.New(1, seq)
	// Pre-build the uplink so the wire sees a genuine burst: building a
	// frame (render + encode) costs more than the server's tracking, so
	// a live build-send loop never accumulates a backlog.
	const n = 30
	msgs := make([][]byte, n)
	for i := 0; i < n; i++ {
		msgs[i] = cl.BuildFrame(i).Encode()
	}
	hello := protocol.HelloMsg{
		ClientID: 1, Mode: seq.Rig.Mode, HasRig: true,
		Intr: seq.Rig.Intr, Baseline: seq.Rig.Baseline,
	}
	if err := protocol.WriteMessage(conn, protocol.TypeHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	for i, m := range msgs {
		if err := protocol.WriteMessage(conn, protocol.TypeFrame, m); err != nil {
			t.Fatalf("send frame %d: %v", i, err)
		}
	}
	answered := make(map[uint32]bool)
	shed, tracked := 0, 0
	for len(answered) < n {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		mt, payload, err := protocol.ReadMessage(conn)
		if err != nil {
			t.Fatalf("after %d answers: %v", len(answered), err)
		}
		if mt != protocol.TypePose {
			continue
		}
		pm, err := protocol.DecodePoseMsg(payload)
		if err != nil {
			t.Fatal(err)
		}
		if answered[pm.FrameIdx] {
			t.Fatalf("frame %d answered twice", pm.FrameIdx)
		}
		answered[pm.FrameIdx] = true
		if pm.Shed {
			shed++
			if pm.Tracked {
				t.Error("shed pose claims tracked")
			}
		} else if pm.Tracked {
			tracked++
		}
	}
	if shed == 0 {
		t.Error("burst of 30 frames at a 10ms budget shed nothing")
	}
	if tracked == 0 {
		t.Error("no frame actually tracked")
	}
	if got := srv.NetStats().FramesShed.Load(); got != int64(shed) {
		t.Errorf("FramesShed = %d, wire saw %d", got, shed)
	}
	t.Logf("burst of %d: %d tracked, %d shed", n, tracked, shed)
	_ = protocol.WriteMessage(conn, protocol.TypeBye, nil)
}

// BenchmarkHandleFrameShedding measures the cost of answering a frame
// on the shed path (lag accounting + stream-sync decode + Shed pose
// encode) — the budget the server spends per frame it refuses to
// track.
func BenchmarkHandleFrameShedding(b *testing.B) {
	srv, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	seq := dataset.V202(camera.Stereo)
	sess, err := srv.OpenSession(1, seq.Rig)
	if err != nil {
		b.Fatal(err)
	}
	encL, encR := video.NewEncoder(), video.NewEncoder()
	encL.GOP, encR.GOP = 1, 1 // intra-only so replaying one frame stays decodable
	msg := buildRawFrame(seq, encL, encR, 0, false)
	lag := overload.NewLagTracker(50 * time.Millisecond)
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lag.Note(float64(i) * 0.05)
		if i > 0 && !lag.ShouldShed(4) {
			b.Fatal("4-frame backlog at 20 FPS must shed on a 50ms budget")
		}
		sess.ShedFrame(msg)
		pm := protocol.PoseMsg{FrameIdx: uint32(i), Pose: geom.IdentitySE3(), Shed: true}
		sink += len(pm.Encode())
	}
	if sink == 0 {
		b.Fatal("empty encodes")
	}
}
