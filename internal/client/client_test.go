package client

import (
	"fmt"
	"net"
	"testing"

	"slamshare/internal/camera"
	"slamshare/internal/dataset"
	"slamshare/internal/geom"
	"slamshare/internal/overload"
	"slamshare/internal/server"
)

func TestBuildFrameBasics(t *testing.T) {
	seq := dataset.V202(camera.Stereo)
	c := New(1, seq)
	msg := c.BuildFrame(0)
	if msg.ClientID != 1 || msg.FrameIdx != 0 {
		t.Errorf("header: %+v", msg)
	}
	if len(msg.Video) == 0 || len(msg.VideoRight) == 0 {
		t.Error("missing video payloads")
	}
	if !msg.HasPrior {
		t.Error("prior not attached")
	}
	if c.FramesSent() != 1 || c.UplinkBytes() == 0 {
		t.Error("accounting wrong")
	}
	if c.Meter().Busy() <= 0 {
		t.Error("client compute not metered")
	}
	// Second frame carries a non-trivial IMU delta.
	msg2 := c.BuildFrame(1)
	if msg2.Delta.DT <= 0 {
		t.Error("second frame has no IMU span")
	}
	if c.Mode() != camera.Stereo {
		t.Error("mode wrong")
	}
}

func TestMonoClientHasNoRightEye(t *testing.T) {
	seq := dataset.V202(camera.Mono)
	c := New(1, seq)
	if msg := c.BuildFrame(0); len(msg.VideoRight) != 0 {
		t.Error("mono client sent a right eye")
	}
}

func TestApplyPoseCorrectsTrajectory(t *testing.T) {
	seq := dataset.V202(camera.Stereo)
	c := New(1, seq)
	for i := 0; i < 10; i++ {
		c.BuildFrame(i)
	}
	// Apply a fake server pose for frame 5 displaced from the estimate.
	target := seq.GroundTruth(5)
	shifted := geom.SE3{R: target.R, T: target.T.Add(geom.Vec3{X: 2})}
	c.ApplyPose(5, shifted.Inverse(), true)
	est := c.Trajectory()
	// est[5] must now be at the shifted position and later samples
	// re-propagated from it.
	if est[5].Pos.Dist(shifted.T) > 1e-9 {
		t.Errorf("est[5] = %v, want %v", est[5].Pos, shifted.T)
	}
	if est[9].Pos.Dist(seq.GroundTruth(9).T) < 1 {
		t.Error("later samples not re-propagated from the shifted fix")
	}
	// Live trajectory must NOT be rewritten.
	live := c.LiveTrajectory()
	if live[5].Pos.Dist(shifted.T) < 1 {
		t.Error("live trajectory was retro-corrected")
	}
}

func TestApplyPoseIgnoresUntrackedAndUnknown(t *testing.T) {
	seq := dataset.V202(camera.Stereo)
	c := New(1, seq)
	c.BuildFrame(0)
	before := c.Trajectory()
	c.ApplyPose(0, geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{X: 50}}, false) // untracked
	c.ApplyPose(99, geom.IdentitySE3(), true)                                    // unknown frame
	after := c.Trajectory()
	if after[0].Pos != before[0].Pos {
		t.Error("untracked/unknown poses modified the trajectory")
	}
}

func TestDisplacedClientAnchor(t *testing.T) {
	seq := dataset.V202(camera.Stereo)
	plain := New(1, seq)
	disp := NewDisplaced(2, seq, 0.3, geom.Vec3{X: 2, Y: -1})
	p0 := plain.BuildFrame(0).Prior
	d0 := disp.BuildFrame(0).Prior
	if d0.T.Dist(p0.T) < 1 {
		t.Error("displaced anchor too close to plain anchor")
	}
	// Gravity alignment preserved: the displacement is yaw-only, so
	// the body Z axis in world coordinates matches.
	zPlain := p0.R.Rotate(geom.Vec3{Z: 1})
	zDisp := d0.R.Rotate(geom.Vec3{Z: 1})
	// Both rotated by yaw about world Z: their Z components agree.
	if zPlain.Z-zDisp.Z > 1e-9 {
		t.Error("displacement broke gravity alignment")
	}
}

// failingConn closes the underlying connection on its nth write,
// simulating a link that dies mid-session.
type failingConn struct {
	net.Conn
	writes int
	failAt int
}

func (f *failingConn) Write(p []byte) (int, error) {
	f.writes++
	if f.failAt > 0 && f.writes >= f.failAt {
		f.Conn.Close()
		return 0, fmt.Errorf("injected link failure on write %d", f.writes)
	}
	return f.Conn.Write(p)
}

// A connection that dies mid-run must not end the session: the client
// redials with backoff, restarts its video streams intra, and resumes
// from the first unanswered frame — every frame sent exactly once
// through BuildFrame (the IMU chain must not fork).
func TestRunTCPReconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("full system test")
	}
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	seq := dataset.V202(camera.Stereo)
	c := New(3, seq)
	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		nc, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, err
		}
		if dials == 1 {
			// Hello costs 2 writes, each frame 2 more: the link dies on
			// the 6th frame.
			return &failingConn{Conn: nc, failAt: 12}, nil
		}
		return nc, nil
	}
	pol := overload.Backoff{Base: 5, Factor: 2, Max: 50, Jitter: 0.2, MaxAttempts: 10, Seed: 42}
	frames := make([]int, 15)
	for i := range frames {
		frames[i] = i
	}
	if err := c.RunTCPReconnect(dial, frames, pol); err != nil {
		t.Fatal(err)
	}
	if dials < 2 {
		t.Fatalf("dials = %d, the injected failure never forced a reconnect", dials)
	}
	if got := c.FramesSent(); got != len(frames) {
		t.Errorf("FramesSent = %d, want %d (frames must be built exactly once)", got, len(frames))
	}
	if got := len(c.Trajectory()); got != len(frames) {
		t.Errorf("trajectory has %d samples, want %d", got, len(frames))
	}
	t.Logf("reconnected after dial 1 died; %d dials total", dials)
}

// Exhausting the retry budget surfaces an error instead of spinning.
func TestRunTCPReconnectExhaustsBudget(t *testing.T) {
	seq := dataset.V202(camera.Stereo)
	c := New(4, seq)
	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		return nil, fmt.Errorf("no route")
	}
	pol := overload.Backoff{Base: 0.1, Factor: 1, Max: 1, MaxAttempts: 3, Seed: 7}
	err := c.RunTCPReconnect(dial, []int{0}, pol)
	if err == nil {
		t.Fatal("unreachable server reported success")
	}
	if dials != 3 {
		t.Errorf("dials = %d, want exactly MaxAttempts = 3", dials)
	}
}

func TestUseImageTransfer(t *testing.T) {
	seq := dataset.V202(camera.Mono)
	vid := New(1, seq)
	img := New(2, seq)
	img.UseImageTransfer()
	// Warm both past the intra frame.
	vid.BuildFrame(0)
	img.BuildFrame(0)
	v1 := len(vid.BuildFrame(1).Video)
	i1 := len(img.BuildFrame(1).Video)
	if v1 >= i1 {
		t.Errorf("inter frame (%d B) not smaller than image transfer (%d B)", v1, i1)
	}
}
