// Package client implements the SLAM-Share AR device (Fig. 3, left):
// it integrates its IMU with the paper's Algorithm 1 for short-horizon
// pose prediction, encodes camera frames as video, uploads them to the
// edge server, and folds the returned SLAM poses back into its motion
// model. The client's compute is only IMU integration plus video
// encoding — the source of the ~35x CPU reduction of Fig. 13.
package client

import (
	"fmt"
	"net"
	"sync"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/dataset"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/imu"
	"slamshare/internal/metrics"
	"slamshare/internal/obs"
	"slamshare/internal/offload"
	"slamshare/internal/overload"
	"slamshare/internal/protocol"
	"slamshare/internal/video"
)

// Client is one AR device replaying a dataset sequence.
type Client struct {
	ID  uint32
	Seq *dataset.Sequence
	// Pace, when positive, spaces RunTCPAdaptive's uplinks by this
	// interval — a real device sends at camera rate, it does not
	// firehose the socket. Set before the run starts.
	Pace time.Duration
	// Obs, when non-nil, records a "client.encode" span per built
	// frame (the device's whole per-frame compute: IMU integration +
	// video encoding), completing the end-to-end frame trace the
	// server-side stages continue.
	Obs *obs.Tracer
	// OnAnswer, when non-nil, is called by RunTCPResumable after each
	// awaited frame's answer is applied — chaos harnesses use it to
	// keep concurrent sessions in lockstep. Set before the run starts;
	// it runs on the socket loop goroutine and may block.
	OnAnswer func(frameIdx uint32, tracked, shed bool)

	stEncode  *obs.Stage
	stExtract *obs.Stage
	mu        sync.Mutex
	mm        *imu.MotionModel
	encL      *video.Encoder
	encR      *video.Encoder
	meter     *metrics.CPUMeter
	encMeter  *metrics.CPUMeter
	est       metrics.Trajectory
	live      metrics.Trajectory
	sent      int
	applied   int
	shed      int
	lastFrame int
	upBytes   int64

	// Adaptive-offloading state (EnableAdaptive): the QoS class and
	// capabilities advertised in the hello, the current mode as
	// commanded by the server's ModeSwitch downlinks, the on-device
	// extractor split mode runs, and the RTT estimate folded from
	// echoed pose timestamps. forced pins the mode against server
	// switches (the -mode flag / A-B experiments).
	adaptive bool
	qos      offload.QoS
	caps     offload.Caps
	mode     offload.Mode
	epoch    uint32
	forced   bool
	ex       *feature.Extractor
	rttEWMA  float64 // nanoseconds
	modeLog  []ModeEvent

	// Resumable-session state (RunTCPResumable): the raw session token
	// from the most recent answered pose, presented to whichever front
	// the client lands on after a reconnect; tokenLog records the
	// distinct (epoch, shard, mode) states observed, in order, for
	// failover assertions; answers counts pose answers per frame index
	// as observed on the live socket (the exactly-once evidence).
	lastToken []byte
	tokenLog  []protocol.SessionTokenMsg
	answers   map[uint32]int
}

// ModeEvent records one offload-mode transition the client applied.
type ModeEvent struct {
	// At is when the client applied the switch; a starved reader can
	// apply queued switches back to back, so ServerNanos (the server's
	// send stamp, zero from legacy servers) is the authoritative
	// spacing between switches.
	At          time.Time
	ServerNanos uint64
	Mode        offload.Mode
	Epoch       uint32
}

// New returns a client for the given sequence. The motion model is
// anchored at the sequence's first ground-truth pose (the paper's
// clients likewise share an initial gravity-aligned origin via the
// first server fix).
func New(id uint32, seq *dataset.Sequence) *Client {
	const h = 1e-3
	v0 := seq.Traj.PoseAt(h).T.Sub(seq.Traj.PoseAt(0).T).Scale(1 / h)
	return &Client{
		ID:       id,
		Seq:      seq,
		mm:       imu.NewMotionModel(seq.GroundTruth(0), v0),
		encL:     video.NewEncoder(),
		encR:     video.NewEncoder(),
		meter:    metrics.NewCPUMeter(),
		encMeter: metrics.NewCPUMeter(),
	}
}

// Meter returns the client compute meter (Fig. 13).
func (c *Client) Meter() *metrics.CPUMeter { return c.meter }

// EncodeBusy returns the part of the client's busy time spent in
// software video encoding. Note it includes the synthetic frame
// rendering (a stand-in for the camera), so subtracting it from
// Meter().Busy() leaves the pure IMU + bookkeeping compute — the cost
// profile of a device with a hardware encoder, as in the paper.
func (c *Client) EncodeBusy() time.Duration { return c.encMeter.Busy() }

// Trajectory returns the client's own pose estimates over time — the
// IMU motion model continuously corrected by server poses. This is
// what the user experiences (hologram placement), so it is what the
// short-term ATE of Fig. 12 evaluates.
func (c *Client) Trajectory() metrics.Trajectory {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(metrics.Trajectory, len(c.est))
	copy(out, c.est)
	return out
}

// LiveTrajectory returns the as-experienced pose estimates: what the
// device believed at each frame time, without retroactive correction
// by later server answers. RTT and missed updates show up here.
func (c *Client) LiveTrajectory() metrics.Trajectory {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(metrics.Trajectory, len(c.live))
	copy(out, c.live)
	return out
}

// UplinkBytes returns the total encoded video bytes sent.
func (c *Client) UplinkBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.upBytes
}

// FramesSent returns the number of frames uploaded.
func (c *Client) FramesSent() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// ShedPoses returns how many of the server's answers were shed — the
// frames an overloaded server refused to track, leaving the device on
// IMU dead-reckoning until the next real fix.
func (c *Client) ShedPoses() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shed
}

func (c *Client) noteShed() {
	c.mu.Lock()
	c.shed++
	c.mu.Unlock()
}

// Reconnect prepares the device for a fresh server session (e.g.
// after a server restart): the video streams restart with intra
// frames so the server's new decoders have a reference.
func (c *Client) Reconnect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.encL.Reset()
	c.encR.Reset()
}

// BuildFrame prepares the uplink message for frame i: it advances the
// motion model with the IMU samples captured since the previous frame
// (Alg. 1 ApproxPose_UpdateMM) and encodes the camera frames. All the
// work here is the client's entire per-frame compute and is accounted
// against its CPU meter.
func (c *Client) BuildFrame(i int) *protocol.FrameMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Obs != nil && c.stEncode == nil {
		c.stEncode = c.Obs.Stage("client.encode")
	}
	sp := c.stEncode.Start(c.ID, uint64(c.sent))
	defer sp.End()
	msg := &protocol.FrameMsg{
		ClientID: c.ID,
		FrameIdx: uint32(i),
		Stamp:    c.Seq.FrameTime(i),
	}
	c.meter.Time(func() {
		delta, pred := c.advanceIMU(i)
		msg.Delta = delta
		// Ship the Alg. 1 prediction with the frame: it anchors the
		// server-side map in the client's local frame and carries the
		// tracker through initialization before the first SLAM fix.
		msg.Prior = pred
		msg.HasPrior = true

		// Video encoding (metered separately: the paper's devices use a
		// hardware encoder, so Fig. 13 reports compute with and without
		// this cost).
		c.encMeter.Time(func() {
			left, right := c.Seq.StereoFrame(i)
			msg.Video = c.encL.Encode(left)
			if right != nil {
				msg.VideoRight = c.encR.Encode(right)
			}
		})
	})
	c.upBytes += int64(len(msg.Video) + len(msg.VideoRight))
	c.sent++
	return msg
}

// advanceIMU integrates the IMU captured between the previous sent
// frame and frame i: it advances the motion model (Alg. 1
// ApproxPose_UpdateMM) and appends the prediction to both
// trajectories. The first sent frame is the motion model's anchor
// (entry 0), so est[k] always corresponds to motion-model entry k —
// regardless of which uplink mode carries the frame. Caller holds
// c.mu.
func (c *Client) advanceIMU(i int) (imu.FrameDelta, geom.SE3) {
	var delta imu.FrameDelta
	var pred geom.SE3
	if c.sent == 0 {
		delta = imu.FrameDelta{RotDelta: geom.IdentityQuat()}
		pred = c.mm.Latest()
	} else {
		span := c.Seq.IMUBetween(c.lastFrame, i)
		delta = imu.FrameDeltaFrom(imu.Preintegrate(span))
		pred = c.mm.ApproxPoseUpdateMM(delta)
	}
	c.lastFrame = i
	stamp := c.Seq.FrameTime(i)
	c.est.Append(stamp, pred.T)
	// The live trajectory records what the device believed at this
	// instant; unlike est it is never retro-corrected, so it is what
	// the user's display actually showed (Appendix C's "snapshot as it
	// is walked").
	c.live.Append(stamp, pred.T)
	return delta, pred
}

// BuildKeypointFrame prepares the split-offload uplink for frame i:
// IMU integration as in BuildFrame, then on-device FAST/ORB
// extraction and stereo matching through the same feature.Extractor
// code path the server runs — the keypoints are bit-identical to what
// the server would have produced from the same pixels, so split-mode
// tracking matches full-offload tracking exactly. No video is
// encoded.
func (c *Client) BuildKeypointFrame(i int) *protocol.KeypointMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Obs != nil && c.stExtract == nil {
		c.stExtract = c.Obs.Stage("client.extract")
	}
	sp := c.stExtract.Start(c.ID, uint64(c.sent))
	defer sp.End()
	if c.ex == nil {
		c.ex = feature.NewExtractor(feature.DefaultConfig())
	}
	msg := &protocol.KeypointMsg{
		ClientID: c.ID,
		FrameIdx: uint32(i),
		Stamp:    c.Seq.FrameTime(i),
	}
	c.meter.Time(func() {
		delta, pred := c.advanceIMU(i)
		msg.Delta = delta
		msg.Prior = pred
		msg.HasPrior = true
		left, right := c.Seq.StereoFrame(i)
		kps := c.ex.Extract(left)
		if right != nil && c.Seq.Rig.Mode == camera.Stereo {
			rkps := c.ex.Extract(right)
			feature.StereoMatchPar(kps, rkps, c.Seq.Rig.Intr.Fx, c.Seq.Rig.Baseline, 2, nil)
		}
		msg.Kps = kps
	})
	c.sent++
	return msg
}

// BuildSync prepares a shadow-mode map-sync ping for frame i: IMU
// integration only, so the server's motion model stays warm for a
// later upgrade while the device tracks locally. The device's pose
// estimate is pure dead reckoning between server fixes (and shadow
// replies carry no fix, so drift accumulates — the cost the QoS
// policy accepts for low classes under overload).
func (c *Client) BuildSync(i int) *protocol.KeypointMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	msg := &protocol.KeypointMsg{
		ClientID: c.ID,
		FrameIdx: uint32(i),
		Stamp:    c.Seq.FrameTime(i),
		Flags:    protocol.KeypointSyncOnly,
	}
	c.meter.Time(func() {
		delta, pred := c.advanceIMU(i)
		msg.Delta = delta
		msg.Prior = pred
		msg.HasPrior = true
	})
	c.sent++
	return msg
}

// ApplyPose folds a server pose answer into the motion model
// (Alg. 1 Recv_SLAMPose): the poses of every frame after frameIdx are
// re-propagated, and the trajectory estimate is updated from that
// frame on.
func (c *Client) ApplyPose(frameIdx int, pose geom.SE3, tracked bool) {
	if !tracked {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.meter.Time(func() {
		// The motion model indexes frames from 0 in lockstep with
		// BuildFrame calls; map the dataset frame index onto it.
		mmIdx := c.frameToMM(frameIdx)
		if mmIdx < 0 {
			return
		}
		c.mm.RecvSLAMPose(pose.Inverse(), mmIdx)
		// Rewrite the trajectory tail with the corrected poses:
		// est[k] corresponds to motion-model entry k.
		for j := mmIdx; j < c.mm.Len() && j < len(c.est); j++ {
			p, ok := c.mm.PoseOf(j)
			if !ok {
				continue
			}
			c.est[j].Pos = p.T
		}
	})
	c.applied++
}

// frameToMM maps a dataset frame index to a motion-model index. The
// client may replay frames with a stride, so the mapping is by
// arrival order: the n-th sent frame is motion-model entry n.
func (c *Client) frameToMM(frameIdx int) int {
	// The motion model has exactly `sent` entries (entry 0 is the
	// anchor = first sent frame). Find how many frames back frameIdx
	// was. With stride s, sent frames are i0, i0+s, ... — we recover
	// the offset from the most recent.
	if c.sent == 0 {
		return -1
	}
	// est[k] corresponds to mm entry k; frame indices were appended in
	// order, so search from the tail (answers are recent).
	stamp := c.Seq.FrameTime(frameIdx)
	for k := len(c.est) - 1; k >= 0; k-- {
		if c.est[k].T == stamp {
			return k
		}
		if c.est[k].T < stamp {
			break
		}
	}
	return -1
}

// RunTCP drives the full socket loop against a SLAM-Share server for
// the given frame indices: it sends a hello, streams frames, and
// applies pose answers as they return. Answers are consumed
// asynchronously, so added network delay shows up exactly as in §4.2.2
// (IMU covers the gap).
func (c *Client) RunTCP(conn net.Conn, frames []int) error {
	hello := protocol.HelloMsg{
		ClientID: c.ID,
		Mode:     c.Seq.Rig.Mode,
		HasRig:   true,
		Intr:     c.Seq.Rig.Intr,
		Baseline: c.Seq.Rig.Baseline,
	}
	if err := protocol.WriteMessage(conn, protocol.TypeHello, hello.Encode()); err != nil {
		return err
	}
	errCh := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			mt, payload, err := protocol.ReadMessage(conn)
			if err != nil {
				errCh <- err
				return
			}
			if mt != protocol.TypePose {
				continue
			}
			pm, err := protocol.DecodePoseMsg(payload)
			if err != nil {
				errCh <- err
				return
			}
			if pm.Shed {
				c.noteShed()
			}
			c.ApplyPose(int(pm.FrameIdx), pm.Pose, pm.Tracked)
			if int(pm.FrameIdx) == frames[len(frames)-1] {
				errCh <- nil
				return
			}
		}
	}()
	for _, i := range frames {
		msg := c.BuildFrame(i)
		if err := protocol.WriteMessage(conn, protocol.TypeFrame, msg.Encode()); err != nil {
			return fmt.Errorf("client: send frame %d: %w", i, err)
		}
	}
	<-done
	select {
	case err := <-errCh:
		if err != nil {
			return err
		}
	default:
	}
	_ = protocol.WriteMessage(conn, protocol.TypeBye, nil)
	return nil
}

// ReencodeFrame refreshes a built frame's video payloads after
// Reconnect, for callers that resend an already-built frame on a
// fresh connection: the new stream must open with intra frames, but
// the IMU state was already advanced by BuildFrame and must not move
// again.
func (c *Client) ReencodeFrame(msg *protocol.FrameMsg, i int) { c.reencode(msg, i) }

// reencode refreshes a built frame's video payloads after an encoder
// reset: the new stream must open with intra frames, but the motion
// model and trajectory were already advanced by BuildFrame and must
// not move again.
func (c *Client) reencode(msg *protocol.FrameMsg, i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	left, right := c.Seq.StereoFrame(i)
	msg.Video = c.encL.Encode(left)
	if right != nil {
		msg.VideoRight = c.encR.Encode(right)
	}
}

// awaitPose reads pose answers until the one for frameIdx arrives,
// applying every answer (and counting shed ones) along the way.
func (c *Client) awaitPose(conn net.Conn, frameIdx uint32) error {
	for {
		mt, payload, err := protocol.ReadMessage(conn)
		if err != nil {
			return err
		}
		if mt != protocol.TypePose {
			continue
		}
		pm, err := protocol.DecodePoseMsg(payload)
		if err != nil {
			return err
		}
		if pm.Shed {
			c.noteShed()
		}
		c.ApplyPose(int(pm.FrameIdx), pm.Pose, pm.Tracked)
		if pm.FrameIdx == frameIdx {
			return nil
		}
	}
}

// RunTCPReconnect drives the socket loop in lockstep (one frame sent,
// its answer awaited) and survives connection loss: on any socket
// error it redials with the jittered backoff policy, restarts the
// video streams, and resumes from the first unanswered frame. The
// retry budget (pol.MaxAttempts, 0 = unbounded) spans consecutive
// failures; any successfully answered frame resets it. Delays are
// read as milliseconds.
func (c *Client) RunTCPReconnect(dial func() (net.Conn, error), frames []int, pol overload.Backoff) error {
	hello := protocol.HelloMsg{
		ClientID: c.ID,
		Mode:     c.Seq.Rig.Mode,
		HasRig:   true,
		Intr:     c.Seq.Rig.Intr,
		Baseline: c.Seq.Rig.Baseline,
	}
	var conn net.Conn
	closeConn := func() {
		if conn != nil {
			conn.Close()
			conn = nil
		}
	}
	defer closeConn()
	attempt := 0
	connect := func() error {
		closeConn()
		for {
			if pol.Exhausted(attempt) {
				return fmt.Errorf("client %d: reconnect retries exhausted after %d attempts", c.ID, attempt)
			}
			nc, err := dial()
			if err == nil {
				if err = protocol.WriteMessage(nc, protocol.TypeHello, hello.Encode()); err == nil {
					conn = nc
					// Fresh server session, fresh decoders: restart the
					// video streams intra.
					c.Reconnect()
					return nil
				}
				nc.Close()
			}
			time.Sleep(pol.DelayDuration(uint64(c.ID), attempt))
			attempt++
		}
	}
	if err := connect(); err != nil {
		return err
	}
	for _, i := range frames {
		msg := c.BuildFrame(i)
		for {
			err := protocol.WriteMessage(conn, protocol.TypeFrame, msg.Encode())
			if err == nil {
				err = c.awaitPose(conn, uint32(i))
			}
			if err == nil {
				attempt = 0
				break
			}
			if cerr := connect(); cerr != nil {
				return cerr
			}
			// The frame was built once (IMU state advanced); only its
			// video needs re-encoding for the new stream.
			c.reencode(msg, i)
		}
	}
	_ = protocol.WriteMessage(conn, protocol.TypeBye, nil)
	return nil
}

// LastToken returns a copy of the most recent session token, nil
// before the first tokened answer.
func (c *Client) LastToken() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastToken == nil {
		return nil
	}
	return append([]byte(nil), c.lastToken...)
}

// SessionTokens returns the distinct session states observed through
// received tokens, in arrival order. Across a front failover the
// epochs must be non-decreasing — an adopted session never reuses a
// handoff epoch the dead front already spent.
func (c *Client) SessionTokens() []protocol.SessionTokenMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]protocol.SessionTokenMsg, len(c.tokenLog))
	copy(out, c.tokenLog)
	return out
}

// AnswerCounts returns how many pose answers arrived per frame index
// on the live socket. RunTCPResumable only resends a frame it has no
// answer for, so every count must be exactly one — the client-side
// proof of the exactly-once guarantee.
func (c *Client) AnswerCounts() map[uint32]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint32]int, len(c.answers))
	for k, v := range c.answers {
		out[k] = v
	}
	return out
}

// noteToken stores the session token carried by an answered pose and
// logs it when it represents a new (epoch, shard, mode) state.
func (c *Client) noteToken(raw []byte) {
	tok, err := protocol.DecodeSessionTokenMsg(raw)
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastToken = append(c.lastToken[:0], raw...)
	n := len(c.tokenLog)
	if n == 0 || c.tokenLog[n-1].Epoch != tok.Epoch ||
		c.tokenLog[n-1].Shard != tok.Shard || c.tokenLog[n-1].Mode != tok.Mode {
		c.tokenLog = append(c.tokenLog, *tok)
	}
}

func (c *Client) noteAnswer(idx uint32) {
	c.mu.Lock()
	if c.answers == nil {
		c.answers = make(map[uint32]int)
	}
	c.answers[idx]++
	c.mu.Unlock()
}

// awaitPoseResumable reads downlinks until the pose for frameIdx
// arrives: poses are applied (tokens captured, echoes folded, answers
// counted), mode switches applied.
func (c *Client) awaitPoseResumable(conn net.Conn, frameIdx uint32) error {
	for {
		mt, payload, err := protocol.ReadMessage(conn)
		if err != nil {
			return err
		}
		switch mt {
		case protocol.TypeModeSwitch:
			if ms, err := protocol.DecodeModeSwitchMsg(payload); err == nil {
				c.ApplyModeSwitch(ms)
			}
		case protocol.TypePose:
			pm, err := protocol.DecodePoseMsg(payload)
			if err != nil {
				return err
			}
			if pm.HasEcho {
				c.noteEcho(pm.EchoNanos, time.Now())
			}
			if pm.Shed {
				c.noteShed()
			}
			if pm.Token != nil {
				c.noteToken(pm.Token)
			}
			c.noteAnswer(pm.FrameIdx)
			c.ApplyPose(int(pm.FrameIdx), pm.Pose, pm.Tracked)
			if pm.FrameIdx == frameIdx {
				if c.OnAnswer != nil {
					c.OnAnswer(pm.FrameIdx, pm.Tracked, pm.Shed)
				}
				return nil
			}
		}
	}
}

// RunTCPResumable drives the socket loop against a list of redundant
// front addresses in lockstep, surviving the death of the front
// itself: the hello advertises CapResume (plus whatever EnableAdaptive
// armed), so every answered pose carries a session token; on any
// socket error the client rotates through the address list with
// jittered backoff, replays the hello, presents the stored token —
// letting the surviving front adopt the session with its routing
// state, offload mode, and handoff epoch intact — and resumes from the
// first unanswered frame. Delays are read as milliseconds;
// pol.MaxAttempts (0 = unbounded) spans consecutive failures and any
// answered frame resets it.
func (c *Client) RunTCPResumable(addrs []string, frames []int, pol overload.Backoff) error {
	if len(addrs) == 0 {
		return fmt.Errorf("client %d: no front addresses", c.ID)
	}
	c.mu.Lock()
	hello := protocol.HelloMsg{
		ClientID: c.ID,
		Mode:     c.Seq.Rig.Mode,
		HasRig:   true,
		Intr:     c.Seq.Rig.Intr,
		Baseline: c.Seq.Rig.Baseline,
		HasQoS:   true,
		QoS:      byte(c.qos),
		Caps:     byte(c.caps) | protocol.CapResume,
	}
	c.mu.Unlock()
	var conn net.Conn
	closeConn := func() {
		if conn != nil {
			conn.Close()
			conn = nil
		}
	}
	defer closeConn()
	attempt := 0
	next := 0
	connect := func() error {
		closeConn()
		for {
			if pol.Exhausted(attempt) {
				return fmt.Errorf("client %d: front retries exhausted after %d attempts", c.ID, attempt)
			}
			addr := addrs[next%len(addrs)]
			next++
			nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err == nil {
				err = protocol.WriteMessage(nc, protocol.TypeHello, hello.Encode())
				if err == nil {
					if tok := c.LastToken(); tok != nil {
						err = protocol.WriteMessage(nc, protocol.TypeSessionToken, tok)
					}
				}
				if err == nil {
					conn = nc
					// Fresh front, fresh transcoder: restart the video
					// stream intra.
					c.Reconnect()
					return nil
				}
				nc.Close()
			}
			time.Sleep(pol.DelayDuration(uint64(c.ID), attempt))
			attempt++
		}
	}
	if err := connect(); err != nil {
		return err
	}
	now := func() uint64 { return uint64(time.Now().UnixNano()) }
	for _, i := range frames {
		// Build once (the IMU state advances exactly once per frame) in
		// whatever mode the session is in; a reconnect only re-encodes
		// the video onto the restarted stream.
		var mt byte
		var payload []byte
		var fmsg *protocol.FrameMsg
		switch c.OffloadMode() {
		case offload.ModeSplit:
			msg := c.BuildKeypointFrame(i)
			msg.SentNanos, msg.RTTNanos = now(), uint64(c.RTTEstimate())
			mt, payload = protocol.TypeKeypoint, msg.Encode()
			c.addUplink(len(payload))
		case offload.ModeShadow:
			msg := c.BuildSync(i)
			msg.SentNanos, msg.RTTNanos = now(), uint64(c.RTTEstimate())
			mt, payload = protocol.TypeKeypoint, msg.Encode()
			c.addUplink(len(payload))
		default:
			fmsg = c.BuildFrame(i)
			fmsg.SentNanos, fmsg.RTTNanos = now(), uint64(c.RTTEstimate())
			mt, payload = protocol.TypeFrame, fmsg.Encode()
		}
		for {
			err := protocol.WriteMessage(conn, mt, payload)
			if err == nil {
				err = c.awaitPoseResumable(conn, uint32(i))
			}
			if err == nil {
				attempt = 0
				break
			}
			if cerr := connect(); cerr != nil {
				return cerr
			}
			if fmsg != nil {
				c.reencode(fmsg, i)
				payload = fmsg.Encode()
			}
		}
		if c.Pace > 0 {
			time.Sleep(c.Pace)
		}
	}
	_ = protocol.WriteMessage(conn, protocol.TypeBye, nil)
	return nil
}

// Mode returns the client's camera mode.
func (c *Client) Mode() camera.Mode { return c.Seq.Rig.Mode }

// NewDisplaced returns a client whose local frame differs from the
// world frame by a yaw rotation about gravity and a translation — the
// arbitrary per-client map origin that map merging must resolve
// (Fig. 7). Gravity stays aligned, so IMU dead-reckoning remains
// valid in the displaced frame.
func NewDisplaced(id uint32, seq *dataset.Sequence, yaw float64, offset geom.Vec3) *Client {
	c := New(id, seq)
	d := geom.SE3{R: geom.QuatFromAxisAngle(geom.Vec3{Z: 1}, yaw), T: offset}
	anchor := c.mm.Latest()
	displaced := geom.SE3{
		R: d.R.Mul(anchor.R).Normalized(),
		T: d.Apply(anchor.T),
	}
	const h = 1e-3
	v0 := seq.Traj.PoseAt(h).T.Sub(seq.Traj.PoseAt(0).T).Scale(1 / h)
	c.mm = imu.NewMotionModel(displaced, d.R.Rotate(v0))
	return c
}

// UseImageTransfer switches the client to standalone image coding
// (every frame intra) — the image-transfer baseline of Table 3.
func (c *Client) UseImageTransfer() {
	c.encL.GOP = 1
	c.encR.GOP = 1
}

// EnableAdaptive arms adaptive offloading: the hello advertises the
// QoS class and mode capabilities, pose answers are echo-stamped for
// RTT measurement, and the server may switch the session between
// full, split, and shadow modes at runtime.
func (c *Client) EnableAdaptive(qos offload.QoS, caps offload.Caps) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.adaptive = true
	c.qos = qos
	c.caps = caps
	if c.ex == nil && caps&offload.CapSplit != 0 {
		c.ex = feature.NewExtractor(feature.DefaultConfig())
	}
}

// ForceMode pins the offload mode, ignoring server switches (the
// client still advertises its capabilities, so the session remains
// adaptive on the wire — poses are echoed — but the uplink stays in
// the given mode). Used by the -mode flag and per-mode experiments.
func (c *Client) ForceMode(m offload.Mode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mode = m
	c.forced = true
	if m == offload.ModeSplit && c.ex == nil {
		c.ex = feature.NewExtractor(feature.DefaultConfig())
	}
}

// OffloadMode returns the client's current offload mode.
func (c *Client) OffloadMode() offload.Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// RTTEstimate returns the EWMA round-trip estimate folded from echoed
// pose timestamps (0 until the first echo).
func (c *Client) RTTEstimate() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rttEWMA)
}

// ModeLog returns the mode transitions applied so far, in order.
func (c *Client) ModeLog() []ModeEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ModeEvent, len(c.modeLog))
	copy(out, c.modeLog)
	return out
}

// noteEcho folds one echoed send-timestamp into the RTT estimate.
func (c *Client) noteEcho(echoNanos uint64, now time.Time) {
	rtt := float64(now.UnixNano() - int64(echoNanos))
	if rtt <= 0 {
		return
	}
	c.mu.Lock()
	const alpha = 0.2
	if c.rttEWMA == 0 {
		c.rttEWMA = rtt
	} else {
		c.rttEWMA += alpha * (rtt - c.rttEWMA)
	}
	c.mu.Unlock()
}

// ApplyModeSwitch applies a server mode-switch downlink. Epochs
// increment on every switch, so a stale or reordered command is
// discarded; a forced mode ignores switches entirely. RunTCPAdaptive
// calls this itself; custom socket loops call it for TypeModeSwitch
// downlinks.
func (c *Client) ApplyModeSwitch(m *protocol.ModeSwitchMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.forced || m.Epoch <= c.epoch {
		return
	}
	newMode := offload.Mode(m.Mode)
	if newMode == offload.ModeFull && c.mode != offload.ModeFull {
		// Upgrading back into video upload: the server's decoders
		// missed the split/shadow period, so the streams must restart
		// with intra frames.
		c.encL.Reset()
		c.encR.Reset()
	}
	c.mode = newMode
	c.epoch = m.Epoch
	c.modeLog = append(c.modeLog, ModeEvent{
		At: time.Now(), ServerNanos: m.SentNanos, Mode: newMode, Epoch: m.Epoch,
	})
}

// addUplink accounts non-video uplink payload bytes (keypoint frames
// and sync pings).
func (c *Client) addUplink(n int) {
	c.mu.Lock()
	c.upBytes += int64(n)
	c.mu.Unlock()
}

// RunTCPAdaptive drives the socket loop with adaptive offloading: the
// hello carries the QoS class and capabilities from EnableAdaptive,
// every uplink is send-stamped (the server echoes the stamp on its
// pose so the client measures RTT and reports it back), and the
// uplink format follows the server's mode switches frame by frame —
// encoded video in full mode, extracted keypoints in split mode, and
// IMU-only sync pings in shadow mode.
func (c *Client) RunTCPAdaptive(conn net.Conn, frames []int) error {
	c.mu.Lock()
	hello := protocol.HelloMsg{
		ClientID: c.ID,
		Mode:     c.Seq.Rig.Mode,
		HasRig:   true,
		Intr:     c.Seq.Rig.Intr,
		Baseline: c.Seq.Rig.Baseline,
		HasQoS:   true,
		QoS:      byte(c.qos),
		Caps:     byte(c.caps),
	}
	c.mu.Unlock()
	if err := protocol.WriteMessage(conn, protocol.TypeHello, hello.Encode()); err != nil {
		return err
	}
	errCh := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			mt, payload, err := protocol.ReadMessage(conn)
			if err != nil {
				errCh <- err
				return
			}
			switch mt {
			case protocol.TypePose:
				pm, err := protocol.DecodePoseMsg(payload)
				if err != nil {
					errCh <- err
					return
				}
				if pm.HasEcho {
					c.noteEcho(pm.EchoNanos, time.Now())
				}
				if pm.Shed {
					c.noteShed()
				}
				c.ApplyPose(int(pm.FrameIdx), pm.Pose, pm.Tracked)
				if int(pm.FrameIdx) == frames[len(frames)-1] {
					errCh <- nil
					return
				}
			case protocol.TypeModeSwitch:
				ms, err := protocol.DecodeModeSwitchMsg(payload)
				if err != nil {
					errCh <- err
					return
				}
				c.ApplyModeSwitch(ms)
			}
		}
	}()
	for _, i := range frames {
		var mt byte
		var payload []byte
		now := func() uint64 { return uint64(time.Now().UnixNano()) }
		rtt := uint64(c.RTTEstimate())
		switch c.OffloadMode() {
		case offload.ModeSplit:
			msg := c.BuildKeypointFrame(i)
			msg.SentNanos, msg.RTTNanos = now(), rtt
			mt, payload = protocol.TypeKeypoint, msg.Encode()
			c.addUplink(len(payload))
		case offload.ModeShadow:
			msg := c.BuildSync(i)
			msg.SentNanos, msg.RTTNanos = now(), rtt
			mt, payload = protocol.TypeKeypoint, msg.Encode()
			c.addUplink(len(payload))
		default:
			msg := c.BuildFrame(i)
			msg.SentNanos, msg.RTTNanos = now(), rtt
			mt, payload = protocol.TypeFrame, msg.Encode()
		}
		if err := protocol.WriteMessage(conn, mt, payload); err != nil {
			return fmt.Errorf("client: send frame %d: %w", i, err)
		}
		if c.Pace > 0 {
			time.Sleep(c.Pace)
		}
	}
	<-done
	select {
	case err := <-errCh:
		if err != nil {
			return err
		}
	default:
	}
	_ = protocol.WriteMessage(conn, protocol.TypeBye, nil)
	return nil
}
