// Package mapping implements the local-mapping half of SLAM (the
// paper's "Local Mapping" in Process A of Fig. 3): when tracking
// promotes a frame to a keyframe, the mapper triangulates new map
// points against covisible keyframes, fuses duplicate observations,
// culls weakly supported points, and refines the local window with
// bundle adjustment.
package mapping

import (
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/obs"
	"slamshare/internal/optimize"
	"slamshare/internal/smap"
)

// Config tunes the local mapper.
type Config struct {
	// TriangulateNeighbors is how many covisible keyframes to
	// triangulate new points against (monocular).
	TriangulateNeighbors int
	// ReprojTol is the reprojection acceptance tolerance in pixels.
	ReprojTol float64
	// BAWindow is the number of covisible keyframes adjusted together.
	BAWindow int
	// BAEvery runs local BA once per this many keyframes (1 = always).
	BAEvery int
	// BAIters caps LM iterations per local adjustment.
	BAIters int
	// CullMinObs: points observed by fewer keyframes than this, and
	// older than CullAgeKFs keyframes, are removed.
	CullMinObs int
	CullAgeKFs int
}

// DefaultConfig returns the mapper settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		TriangulateNeighbors: 3,
		ReprojTol:            2.5,
		BAWindow:             5,
		BAEvery:              2,
		BAIters:              8,
		CullMinObs:           2,
		CullAgeKFs:           3,
	}
}

// Stats reports what one ProcessKeyFrame call did.
type Stats struct {
	Created   int
	Fused     int
	Culled    int
	KFsCulled int
	RanBA     bool
	BADur     time.Duration
	TotalDur  time.Duration
}

// Mapper maintains one client's contribution to a map.
type Mapper struct {
	Map    *smap.Map
	Rig    camera.Rig
	Alloc  *smap.IDAllocator
	Client int
	Cfg    Config
	// Obs, when non-nil, records local-mapping spans (whole keyframe
	// integration and the local BA share) keyed by (client, keyframe
	// ordinal).
	Obs *obs.Tracer
	// AfterBA, when non-nil, runs after each local bundle adjustment —
	// the quiet moment the server hangs map-lifecycle maintenance
	// (keyframe culling, cold-region eviction) on, off the per-frame
	// hot path.
	AfterBA func()

	stKF, stBA *obs.Stage

	kfCount int
	// recent tracks recently created points for age-based culling:
	// point id -> keyframe count at creation.
	recent map[smap.ID]int
}

// New returns a mapper over the given (possibly shared) map.
func New(m *smap.Map, rig camera.Rig, alloc *smap.IDAllocator, client int, cfg Config) *Mapper {
	if cfg.BAWindow == 0 {
		cfg = DefaultConfig()
	}
	return &Mapper{Map: m, Rig: rig, Alloc: alloc, Client: client, Cfg: cfg, recent: make(map[smap.ID]int)}
}

// ProcessKeyFrame integrates a freshly inserted keyframe into the map.
func (mm *Mapper) ProcessKeyFrame(kf *smap.KeyFrame) Stats {
	t0 := time.Now()
	if mm.Obs != nil && mm.stKF == nil {
		mm.stKF = mm.Obs.Stage("mapping.keyframe")
		mm.stBA = mm.Obs.Stage("mapping.local_ba")
	}
	var st Stats
	mm.kfCount++
	st.Culled = mm.cullPoints()
	if mm.Rig.Mode == camera.Mono {
		st.Created = mm.triangulateNew(kf)
	}
	st.Fused = mm.fuse(kf)
	st.KFsCulled = mm.cullKeyFrames(kf)
	mm.Map.UpdateConnections(kf.ID, 15)
	if mm.Cfg.BAEvery > 0 && mm.kfCount%mm.Cfg.BAEvery == 0 {
		tb := time.Now()
		mm.localBA(kf)
		st.RanBA = true
		st.BADur = time.Since(tb)
		mm.stBA.Observe(tb, st.BADur, uint32(mm.Client), uint64(mm.kfCount))
		if mm.AfterBA != nil {
			mm.AfterBA()
		}
	}
	st.TotalDur = time.Since(t0)
	mm.stKF.Observe(t0, st.TotalDur, uint32(mm.Client), uint64(mm.kfCount))
	return st
}

// cullPoints removes recently created points that never gathered
// enough observations.
func (mm *Mapper) cullPoints() int {
	culled := 0
	for id, born := range mm.recent {
		age := mm.kfCount - born
		nobs, ok := mm.Map.PointObsCount(id)
		if !ok {
			delete(mm.recent, id)
			continue
		}
		if age >= mm.Cfg.CullAgeKFs {
			if nobs < mm.Cfg.CullMinObs {
				mm.Map.EraseMapPoint(id)
				culled++
			}
			delete(mm.recent, id)
		}
	}
	return culled
}

// cullKeyFrames removes redundant covisible keyframes: those whose
// tracked points are almost all observed by at least three other
// keyframes (ORB-SLAM's keyframe culling), keeping the map — and the
// shared-memory footprint the 2 GiB budget bounds — compact.
func (mm *Mapper) cullKeyFrames(kf *smap.KeyFrame) int {
	culled := 0
	for _, cand := range mm.Map.Covisible(kf.ID, mm.Cfg.BAWindow) {
		if cand.ID == kf.ID || cand.Client != mm.Client {
			continue
		}
		_, bindings, ok := mm.Map.KeyFrameState(cand.ID)
		if !ok {
			continue
		}
		total, redundant := 0, 0
		for _, mpID := range bindings {
			if mpID == 0 {
				continue
			}
			nobs, ok := mm.Map.PointObsCount(mpID)
			if !ok {
				continue
			}
			total++
			if nobs >= 4 {
				redundant++
			}
		}
		if total > 30 && float64(redundant) > 0.92*float64(total) {
			mm.Map.EraseKeyFrame(cand.ID)
			culled++
		}
	}
	return culled
}

// triangulateNew creates monocular map points by matching kf's unbound
// keypoints against its best covisible neighbours and triangulating.
func (mm *Mapper) triangulateNew(kf *smap.KeyFrame) int {
	// All pose/binding state is read through stripe-locked snapshots:
	// other sessions track against and adjust these keyframes
	// concurrently. Keypoints are immutable after insertion and safe to
	// share. The local binding copies are kept current as observations
	// are added so this pass never double-binds a keypoint.
	kfTcw, kfBind, ok := mm.Map.KeyFrameState(kf.ID)
	if !ok {
		return 0
	}
	kfCenter := kfTcw.Inverse().T
	neighbors := mm.Map.Covisible(kf.ID, mm.Cfg.TriangulateNeighbors)
	created := 0
	for _, nb := range neighbors {
		nbTcw, nbBind, ok := mm.Map.KeyFrameState(nb.ID)
		if !ok {
			continue
		}
		// Baseline check: skip neighbours too close for parallax.
		if kfCenter.Dist(nbTcw.Inverse().T) < 0.03 {
			continue
		}
		// Collect unbound keypoints on both sides.
		ai := unboundIdx(kfBind)
		bi := unboundIdx(nbBind)
		if len(ai) == 0 || len(bi) == 0 {
			continue
		}
		a := subset(kf.Keypoints, ai)
		b := subset(nb.Keypoints, bi)
		matches := feature.MatchBrute(a, b, feature.MatchThresholdStrict, feature.RatioTest)
		for _, m := range matches {
			ia, ib := ai[m.A], bi[m.B]
			if kfBind[ia] != 0 || nbBind[ib] != 0 {
				continue
			}
			pw, ok := optimize.Triangulate(mm.Rig.Intr, kfTcw, nbTcw, kf.Keypoints[ia].Pt(), nb.Keypoints[ib].Pt())
			if !ok {
				continue
			}
			if !mm.reprojectsWithin(kfTcw, pw, kf.Keypoints[ia].Pt()) ||
				!mm.reprojectsWithin(nbTcw, pw, nb.Keypoints[ib].Pt()) {
				continue
			}
			mp := &smap.MapPoint{
				ID:     mm.Alloc.Next(),
				Client: mm.Client,
				Pos:    pw,
				Desc:   kf.Keypoints[ia].Desc,
				Normal: pw.Sub(kfCenter).Normalized(),
				RefKF:  kf.ID,
			}
			mm.Map.AddMapPoint(mp)
			_ = mm.Map.AddObservation(kf.ID, mp.ID, ia)
			_ = mm.Map.AddObservation(nb.ID, mp.ID, ib)
			kfBind[ia], nbBind[ib] = mp.ID, mp.ID
			mm.recent[mp.ID] = mm.kfCount
			created++
		}
	}
	return created
}

func (mm *Mapper) reprojectsWithin(tcw geom.SE3, pw geom.Vec3, uv geom.Vec2) bool {
	px, ok := mm.Rig.Intr.Project(tcw.Apply(pw))
	return ok && px.Sub(uv).Norm() <= mm.Cfg.ReprojTol
}

func unboundIdx(bindings []smap.ID) []int {
	var out []int
	for i, id := range bindings {
		if id == 0 {
			out = append(out, i)
		}
	}
	return out
}

func subset(kps []feature.Keypoint, idx []int) []feature.Keypoint {
	out := make([]feature.Keypoint, len(idx))
	for i, j := range idx {
		out[i] = kps[j]
	}
	return out
}

// fuse projects the local map points of kf's neighbours into kf and
// binds unambiguous matches to unbound keypoints, densifying the
// covisibility graph.
func (mm *Mapper) fuse(kf *smap.KeyFrame) int {
	// The window points come from the immutable LocalView snapshot and
	// the keyframe's bindings from a stripe-locked copy; the live
	// MapPoints slice and Obs maps are written by other sessions
	// concurrently and must not be read here.
	view := mm.Map.LocalView(kf.ID, mm.Cfg.BAWindow)
	kfTcw, bindings, ok := mm.Map.KeyFrameState(kf.ID)
	if !ok {
		return 0
	}
	fused := 0
	bound := make(map[smap.ID]bool)
	for _, id := range bindings {
		if id != 0 {
			bound[id] = true
		}
	}
	for pi := range view.Points {
		mp := &view.Points[pi]
		if bound[mp.ID] {
			continue
		}
		if mm.Map.HasObservation(mp.ID, kf.ID) {
			continue
		}
		px, visible := mm.Rig.WorldToPixel(kfTcw, mp.Pos)
		if !visible {
			continue
		}
		bestI, bestD := -1, feature.MatchThresholdStrict+1
		for i, kp := range kf.Keypoints {
			if bindings[i] != 0 {
				continue
			}
			dx := kp.X - px.X
			dy := kp.Y - px.Y
			if dx*dx+dy*dy > mm.Cfg.ReprojTol*mm.Cfg.ReprojTol*4 {
				continue
			}
			if d := feature.Distance(mp.Desc, kp.Desc); d < bestD {
				bestI, bestD = i, d
			}
		}
		if bestI >= 0 {
			if err := mm.Map.AddObservation(kf.ID, mp.ID, bestI); err == nil {
				bindings[bestI] = mp.ID
				bound[mp.ID] = true
				fused++
			}
		}
	}
	return fused
}

// localBA bundle-adjusts the covisibility window around kf: the window
// keyframes and every map point they observe, with outside observers
// held fixed.
func (mm *Mapper) localBA(kf *smap.KeyFrame) {
	// The whole problem is built from stripe-locked snapshots —
	// poses/bindings via KeyFrameState, point positions and observation
	// lists via PointObs — because the window is shared with other
	// sessions' trackers and mappers. Keypoints are immutable and read
	// off the live pointer.
	winKFs := mm.Map.Covisible(kf.ID, mm.Cfg.BAWindow-1)
	winIDs := make([]smap.ID, 0, len(winKFs)+1)
	for _, w := range winKFs {
		winIDs = append(winIDs, w.ID)
	}
	winIDs = append(winIDs, kf.ID)
	inWindow := make(map[smap.ID]bool, len(winIDs))
	for _, id := range winIDs {
		inWindow[id] = true
	}
	// Gather the points observed by the window.
	type ptState struct {
		pos geom.Vec3
		obs []smap.ObsEntry
	}
	winPoses := make(map[smap.ID]geom.SE3, len(winIDs))
	ptSet := make(map[smap.ID]ptState)
	for _, wid := range winIDs {
		tcw, bindings, ok := mm.Map.KeyFrameState(wid)
		if !ok {
			continue
		}
		winPoses[wid] = tcw
		for _, mpID := range bindings {
			if mpID == 0 {
				continue
			}
			if _, seen := ptSet[mpID]; seen {
				continue
			}
			if pos, obs, ok := mm.Map.PointObs(mpID); ok {
				ptSet[mpID] = ptState{pos: pos, obs: obs}
			}
		}
	}
	// Fixed cameras: outside observers of those points (bounded).
	fixedPoses := make(map[smap.ID]geom.SE3)
	for _, st := range ptSet {
		for _, o := range st.obs {
			if inWindow[o.KF] {
				continue
			}
			if _, seen := fixedPoses[o.KF]; seen {
				continue
			}
			if tcw, _, ok := mm.Map.KeyFrameState(o.KF); ok {
				fixedPoses[o.KF] = tcw
				if len(fixedPoses) >= 8 {
					break
				}
			}
		}
		if len(fixedPoses) >= 8 {
			break
		}
	}
	prob := &optimize.BAProblem{Intr: mm.Rig.Intr}
	camIdx := make(map[smap.ID]int)
	addCam := func(id smap.ID, tcw geom.SE3, fixed bool) {
		camIdx[id] = len(prob.Cams)
		prob.Cams = append(prob.Cams, tcw)
		prob.FixedCam = append(prob.FixedCam, fixed)
	}
	// The oldest window keyframe is held fixed to anchor the gauge
	// when there are no outside observers yet.
	for i, wid := range winIDs {
		tcw, ok := winPoses[wid]
		if !ok {
			continue
		}
		addCam(wid, tcw, len(fixedPoses) == 0 && i == 0)
	}
	for fid, tcw := range fixedPoses {
		addCam(fid, tcw, true)
	}
	ptIdx := make(map[smap.ID]int)
	for id, st := range ptSet {
		ptIdx[id] = len(prob.Points)
		prob.Points = append(prob.Points, st.pos)
	}
	type obsRef struct {
		mpID smap.ID
		kfID smap.ID
		kpI  int
	}
	var refs []obsRef
	for id, st := range ptSet {
		for _, o := range st.obs {
			ci, ok := camIdx[o.KF]
			if !ok {
				continue
			}
			obsKF, ok := mm.Map.KeyFrame(o.KF)
			if !ok || o.Idx >= len(obsKF.Keypoints) {
				continue
			}
			prob.Obs = append(prob.Obs, optimize.Observation{
				Cam: ci, Pt: ptIdx[id],
				UV: obsKF.Keypoints[o.Idx].Pt(),
			})
			refs = append(refs, obsRef{mpID: id, kfID: o.KF, kpI: o.Idx})
		}
	}
	if len(prob.Obs) < 10 {
		return
	}
	res := prob.Solve(mm.Cfg.BAIters)
	// Write back poses and point positions through the map's setters:
	// stripe-locked writes that bump versions, so concurrent snapshot
	// readers never see a torn pose and stale views invalidate.
	for _, wid := range winIDs {
		if ci, ok := camIdx[wid]; ok {
			mm.Map.SetKeyFramePose(wid, prob.Cams[ci])
		}
	}
	for id := range ptSet {
		mm.Map.SetMapPointPos(id, prob.Points[ptIdx[id]])
	}
	// Detach observations flagged as outliers so they stop polluting
	// future tracking and adjustments.
	for i, out := range res.Outliers {
		if !out {
			continue
		}
		ref := refs[i]
		mm.Map.DetachObservation(ref.kfID, ref.mpID, ref.kpI)
	}
}
