// Package mapping implements the local-mapping half of SLAM (the
// paper's "Local Mapping" in Process A of Fig. 3): when tracking
// promotes a frame to a keyframe, the mapper triangulates new map
// points against covisible keyframes, fuses duplicate observations,
// culls weakly supported points, and refines the local window with
// bundle adjustment.
package mapping

import (
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/optimize"
	"slamshare/internal/smap"
)

// Config tunes the local mapper.
type Config struct {
	// TriangulateNeighbors is how many covisible keyframes to
	// triangulate new points against (monocular).
	TriangulateNeighbors int
	// ReprojTol is the reprojection acceptance tolerance in pixels.
	ReprojTol float64
	// BAWindow is the number of covisible keyframes adjusted together.
	BAWindow int
	// BAEvery runs local BA once per this many keyframes (1 = always).
	BAEvery int
	// BAIters caps LM iterations per local adjustment.
	BAIters int
	// CullMinObs: points observed by fewer keyframes than this, and
	// older than CullAgeKFs keyframes, are removed.
	CullMinObs int
	CullAgeKFs int
}

// DefaultConfig returns the mapper settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		TriangulateNeighbors: 3,
		ReprojTol:            2.5,
		BAWindow:             5,
		BAEvery:              2,
		BAIters:              8,
		CullMinObs:           2,
		CullAgeKFs:           3,
	}
}

// Stats reports what one ProcessKeyFrame call did.
type Stats struct {
	Created   int
	Fused     int
	Culled    int
	KFsCulled int
	RanBA     bool
	BADur     time.Duration
	TotalDur  time.Duration
}

// Mapper maintains one client's contribution to a map.
type Mapper struct {
	Map    *smap.Map
	Rig    camera.Rig
	Alloc  *smap.IDAllocator
	Client int
	Cfg    Config

	kfCount int
	// recent tracks recently created points for age-based culling:
	// point id -> keyframe count at creation.
	recent map[smap.ID]int
}

// New returns a mapper over the given (possibly shared) map.
func New(m *smap.Map, rig camera.Rig, alloc *smap.IDAllocator, client int, cfg Config) *Mapper {
	if cfg.BAWindow == 0 {
		cfg = DefaultConfig()
	}
	return &Mapper{Map: m, Rig: rig, Alloc: alloc, Client: client, Cfg: cfg, recent: make(map[smap.ID]int)}
}

// ProcessKeyFrame integrates a freshly inserted keyframe into the map.
func (mm *Mapper) ProcessKeyFrame(kf *smap.KeyFrame) Stats {
	t0 := time.Now()
	var st Stats
	mm.kfCount++
	st.Culled = mm.cullPoints()
	if mm.Rig.Mode == camera.Mono {
		st.Created = mm.triangulateNew(kf)
	}
	st.Fused = mm.fuse(kf)
	st.KFsCulled = mm.cullKeyFrames(kf)
	mm.Map.UpdateConnections(kf.ID, 15)
	if mm.Cfg.BAEvery > 0 && mm.kfCount%mm.Cfg.BAEvery == 0 {
		tb := time.Now()
		mm.localBA(kf)
		st.RanBA = true
		st.BADur = time.Since(tb)
	}
	st.TotalDur = time.Since(t0)
	return st
}

// cullPoints removes recently created points that never gathered
// enough observations.
func (mm *Mapper) cullPoints() int {
	culled := 0
	for id, born := range mm.recent {
		age := mm.kfCount - born
		mp, ok := mm.Map.MapPoint(id)
		if !ok {
			delete(mm.recent, id)
			continue
		}
		if age >= mm.Cfg.CullAgeKFs {
			if mp.NObs() < mm.Cfg.CullMinObs {
				mm.Map.EraseMapPoint(id)
				culled++
			}
			delete(mm.recent, id)
		}
	}
	return culled
}

// cullKeyFrames removes redundant covisible keyframes: those whose
// tracked points are almost all observed by at least three other
// keyframes (ORB-SLAM's keyframe culling), keeping the map — and the
// shared-memory footprint the 2 GiB budget bounds — compact.
func (mm *Mapper) cullKeyFrames(kf *smap.KeyFrame) int {
	culled := 0
	for _, cand := range mm.Map.Covisible(kf.ID, mm.Cfg.BAWindow) {
		if cand.ID == kf.ID || cand.Client != mm.Client {
			continue
		}
		total, redundant := 0, 0
		for _, mpID := range cand.MapPoints {
			if mpID == 0 {
				continue
			}
			mp, ok := mm.Map.MapPoint(mpID)
			if !ok {
				continue
			}
			total++
			if mp.NObs() >= 4 {
				redundant++
			}
		}
		if total > 30 && float64(redundant) > 0.92*float64(total) {
			mm.Map.EraseKeyFrame(cand.ID)
			culled++
		}
	}
	return culled
}

// triangulateNew creates monocular map points by matching kf's unbound
// keypoints against its best covisible neighbours and triangulating.
func (mm *Mapper) triangulateNew(kf *smap.KeyFrame) int {
	neighbors := mm.Map.Covisible(kf.ID, mm.Cfg.TriangulateNeighbors)
	created := 0
	for _, nb := range neighbors {
		// Baseline check: skip neighbours too close for parallax.
		if kf.Center().Dist(nb.Center()) < 0.03 {
			continue
		}
		// Collect unbound keypoints on both sides.
		ai := unboundIdx(kf)
		bi := unboundIdx(nb)
		if len(ai) == 0 || len(bi) == 0 {
			continue
		}
		a := subset(kf.Keypoints, ai)
		b := subset(nb.Keypoints, bi)
		matches := feature.MatchBrute(a, b, feature.MatchThresholdStrict, feature.RatioTest)
		for _, m := range matches {
			ia, ib := ai[m.A], bi[m.B]
			if kf.MapPoints[ia] != 0 || nb.MapPoints[ib] != 0 {
				continue
			}
			pw, ok := optimize.Triangulate(mm.Rig.Intr, kf.Tcw, nb.Tcw, kf.Keypoints[ia].Pt(), nb.Keypoints[ib].Pt())
			if !ok {
				continue
			}
			if !mm.reprojectsWithin(kf.Tcw, pw, kf.Keypoints[ia].Pt()) ||
				!mm.reprojectsWithin(nb.Tcw, pw, nb.Keypoints[ib].Pt()) {
				continue
			}
			mp := &smap.MapPoint{
				ID:     mm.Alloc.Next(),
				Client: mm.Client,
				Pos:    pw,
				Desc:   kf.Keypoints[ia].Desc,
				Normal: pw.Sub(kf.Center()).Normalized(),
				RefKF:  kf.ID,
			}
			mm.Map.AddMapPoint(mp)
			_ = mm.Map.AddObservation(kf.ID, mp.ID, ia)
			_ = mm.Map.AddObservation(nb.ID, mp.ID, ib)
			mm.recent[mp.ID] = mm.kfCount
			created++
		}
	}
	return created
}

func (mm *Mapper) reprojectsWithin(tcw geom.SE3, pw geom.Vec3, uv geom.Vec2) bool {
	px, ok := mm.Rig.Intr.Project(tcw.Apply(pw))
	return ok && px.Sub(uv).Norm() <= mm.Cfg.ReprojTol
}

func unboundIdx(kf *smap.KeyFrame) []int {
	var out []int
	for i, id := range kf.MapPoints {
		if id == 0 {
			out = append(out, i)
		}
	}
	return out
}

func subset(kps []feature.Keypoint, idx []int) []feature.Keypoint {
	out := make([]feature.Keypoint, len(idx))
	for i, j := range idx {
		out[i] = kps[j]
	}
	return out
}

// fuse projects the local map points of kf's neighbours into kf and
// binds unambiguous matches to unbound keypoints, densifying the
// covisibility graph.
func (mm *Mapper) fuse(kf *smap.KeyFrame) int {
	local := mm.Map.LocalPoints(kf.ID, mm.Cfg.BAWindow)
	fused := 0
	bound := make(map[smap.ID]bool)
	for _, id := range kf.MapPoints {
		if id != 0 {
			bound[id] = true
		}
	}
	for _, mp := range local {
		if bound[mp.ID] {
			continue
		}
		if _, seen := mp.Obs[kf.ID]; seen {
			continue
		}
		px, visible := mm.Rig.WorldToPixel(kf.Tcw, mp.Pos)
		if !visible {
			continue
		}
		bestI, bestD := -1, feature.MatchThresholdStrict+1
		for i, kp := range kf.Keypoints {
			if kf.MapPoints[i] != 0 {
				continue
			}
			dx := kp.X - px.X
			dy := kp.Y - px.Y
			if dx*dx+dy*dy > mm.Cfg.ReprojTol*mm.Cfg.ReprojTol*4 {
				continue
			}
			if d := feature.Distance(mp.Desc, kp.Desc); d < bestD {
				bestI, bestD = i, d
			}
		}
		if bestI >= 0 {
			_ = mm.Map.AddObservation(kf.ID, mp.ID, bestI)
			fused++
		}
	}
	return fused
}

// localBA bundle-adjusts the covisibility window around kf: the window
// keyframes and every map point they observe, with outside observers
// held fixed.
func (mm *Mapper) localBA(kf *smap.KeyFrame) {
	window := mm.Map.Covisible(kf.ID, mm.Cfg.BAWindow-1)
	window = append(window, kf)
	inWindow := make(map[smap.ID]bool, len(window))
	for _, w := range window {
		inWindow[w.ID] = true
	}
	// Gather the points observed by the window.
	ptSet := make(map[smap.ID]*smap.MapPoint)
	for _, w := range window {
		for _, mpID := range w.MapPoints {
			if mpID == 0 {
				continue
			}
			if mp, ok := mm.Map.MapPoint(mpID); ok {
				ptSet[mpID] = mp
			}
		}
	}
	// Fixed cameras: outside observers of those points (bounded).
	fixedSet := make(map[smap.ID]*smap.KeyFrame)
	for _, mp := range ptSet {
		for kfID := range mp.Obs {
			if inWindow[kfID] {
				continue
			}
			if other, ok := mm.Map.KeyFrame(kfID); ok {
				fixedSet[kfID] = other
				if len(fixedSet) >= 8 {
					break
				}
			}
		}
		if len(fixedSet) >= 8 {
			break
		}
	}
	prob := &optimize.BAProblem{Intr: mm.Rig.Intr}
	camIdx := make(map[smap.ID]int)
	addCam := func(k *smap.KeyFrame, fixed bool) {
		camIdx[k.ID] = len(prob.Cams)
		prob.Cams = append(prob.Cams, k.Tcw)
		prob.FixedCam = append(prob.FixedCam, fixed)
	}
	// The oldest window keyframe is held fixed to anchor the gauge
	// when there are no outside observers yet.
	for i, w := range window {
		addCam(w, len(fixedSet) == 0 && i == 0)
	}
	for _, f := range fixedSet {
		addCam(f, true)
	}
	ptIdx := make(map[smap.ID]int)
	for id, mp := range ptSet {
		ptIdx[id] = len(prob.Points)
		prob.Points = append(prob.Points, mp.Pos)
	}
	type obsRef struct {
		mpID smap.ID
		kfID smap.ID
		kpI  int
	}
	var refs []obsRef
	for id, mp := range ptSet {
		for kfID, kpI := range mp.Obs {
			ci, ok := camIdx[kfID]
			if !ok {
				continue
			}
			obsKF, ok := mm.Map.KeyFrame(kfID)
			if !ok || kpI >= len(obsKF.Keypoints) {
				continue
			}
			prob.Obs = append(prob.Obs, optimize.Observation{
				Cam: ci, Pt: ptIdx[id],
				UV: obsKF.Keypoints[kpI].Pt(),
			})
			refs = append(refs, obsRef{mpID: id, kfID: kfID, kpI: kpI})
		}
	}
	if len(prob.Obs) < 10 {
		return
	}
	res := prob.Solve(mm.Cfg.BAIters)
	// Write back poses and point positions through the map's setters:
	// stripe-locked writes that bump versions, so concurrent snapshot
	// readers never see a torn pose and stale views invalidate.
	for _, w := range window {
		mm.Map.SetKeyFramePose(w.ID, prob.Cams[camIdx[w.ID]])
	}
	for id := range ptSet {
		mm.Map.SetMapPointPos(id, prob.Points[ptIdx[id]])
	}
	// Detach observations flagged as outliers so they stop polluting
	// future tracking and adjustments.
	for i, out := range res.Outliers {
		if !out {
			continue
		}
		ref := refs[i]
		mm.Map.DetachObservation(ref.kfID, ref.mpID, ref.kpI)
	}
}
