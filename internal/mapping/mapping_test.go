package mapping

import (
	"testing"

	"slamshare/internal/bow"
	"slamshare/internal/camera"
	"slamshare/internal/dataset"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/smap"
	"slamshare/internal/tracking"
)

// buildWithMapper runs tracking+mapping over a sequence prefix and
// returns the map and mapper.
func buildWithMapper(t *testing.T, seq *dataset.Sequence, n int) (*smap.Map, *Mapper, []Stats) {
	t.Helper()
	m := smap.NewMap(bow.Default())
	alloc := smap.NewIDAllocator(1)
	tr := tracking.New(m, seq.Rig, feature.NewExtractor(feature.DefaultConfig()), alloc, 1, tracking.DefaultConfig())
	mp := New(m, seq.Rig, alloc, 1, DefaultConfig())
	var stats []Stats
	for i := 0; i < n; i++ {
		left, right := seq.StereoFrame(i)
		var prior *geom.SE3
		if i < 60 {
			p := seq.GroundTruth(i).Inverse()
			prior = &p
		}
		res := tr.ProcessFrame(left, right, seq.FrameTime(i), prior)
		if res.NewKF != nil {
			stats = append(stats, mp.ProcessKeyFrame(res.NewKF))
		}
	}
	return m, mp, stats
}

func TestMonoMapperCreatesPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline test")
	}
	seq := dataset.V202(camera.Mono)
	m, _, stats := buildWithMapper(t, seq, 100)
	if len(stats) < 2 {
		t.Fatalf("only %d keyframes processed", len(stats))
	}
	created := 0
	ranBA := false
	for _, s := range stats {
		created += s.Created
		if s.RanBA {
			ranBA = true
			if s.BADur <= 0 {
				t.Error("BA ran with zero duration")
			}
		}
		if s.TotalDur <= 0 {
			t.Error("missing total duration")
		}
	}
	if created == 0 {
		t.Error("mono mapper triangulated no new points")
	}
	if !ranBA {
		t.Error("local BA never ran")
	}
	if m.NMapPoints() == 0 {
		t.Error("map has no points")
	}
}

func TestStereoMapperFusesObservations(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline test")
	}
	seq := dataset.V202(camera.Stereo)
	m, _, stats := buildWithMapper(t, seq, 100)
	fused := 0
	for _, s := range stats {
		fused += s.Fused
	}
	if fused == 0 {
		t.Error("no observations fused across keyframes")
	}
	// Fusion must increase multi-view support: some points should be
	// observed by 3+ keyframes.
	multi := 0
	for _, mp := range m.MapPoints() {
		if mp.NObs() >= 3 {
			multi++
		}
	}
	if multi < 20 {
		t.Errorf("only %d points with 3+ observations", multi)
	}
}

func TestLocalBAReducesError(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline test")
	}
	// Build a map, perturb a window keyframe pose, and check localBA
	// pulls it back.
	seq := dataset.V202(camera.Stereo)
	m, mp, _ := buildWithMapper(t, seq, 80)
	kfs := m.KeyFrames()
	if len(kfs) < 3 {
		t.Skip("too few keyframes")
	}
	victim := kfs[len(kfs)-1]
	orig := victim.Tcw
	victim.Tcw = geom.SE3{
		R: geom.QuatFromAxisAngle(geom.Vec3{Y: 1}, 0.02).Mul(orig.R).Normalized(),
		T: orig.T.Add(geom.Vec3{X: 0.05, Y: -0.03}),
	}
	perturbed := victim.Tcw.T.Dist(orig.T)
	mp.localBA(victim)
	recovered := victim.Tcw.T.Dist(orig.T)
	if recovered >= perturbed {
		t.Errorf("BA did not reduce pose error: %.4f -> %.4f", perturbed, recovered)
	}
}

func TestCullRemovesWeakPoints(t *testing.T) {
	m := smap.NewMap(bow.Default())
	alloc := smap.NewIDAllocator(1)
	rig := camera.NewMonoRig(camera.EuRoCIntrinsics())
	mm := New(m, rig, alloc, 1, DefaultConfig())
	// A point with one observation, aged past the cull window.
	kf := &smap.KeyFrame{ID: alloc.Next(), Keypoints: make([]feature.Keypoint, 5)}
	m.AddKeyFrame(kf)
	weak := &smap.MapPoint{ID: alloc.Next()}
	m.AddMapPoint(weak)
	if err := m.AddObservation(kf.ID, weak.ID, 0); err != nil {
		t.Fatal(err)
	}
	mm.recent[weak.ID] = 0
	mm.kfCount = DefaultConfig().CullAgeKFs + 1
	if culled := mm.cullPoints(); culled != 1 {
		t.Errorf("culled = %d", culled)
	}
	if _, ok := m.MapPoint(weak.ID); ok {
		t.Error("weak point survived culling")
	}
}

func TestDefaultConfigApplied(t *testing.T) {
	m := smap.NewMap(bow.Default())
	mm := New(m, camera.NewMonoRig(camera.TUMIntrinsics()), smap.NewIDAllocator(1), 1, Config{})
	if mm.Cfg.BAWindow == 0 || mm.Cfg.ReprojTol == 0 {
		t.Error("zero config not defaulted")
	}
}
