// Package exp implements the paper's evaluation (§5): one runner per
// table and figure, each regenerating the same rows or series the
// paper reports. The cmd/experiments binary invokes them by id, and
// bench_test.go wraps them as benchmarks.
//
// Experiments run in frame-lockstep virtual time: each step is one
// frame period, network delay and bandwidth translate into pose-
// application lag and frame drops in virtual time, and compute
// latencies are measured on the real pipeline. This keeps the dynamics
// (merge timing, RTT effects, missed updates) faithful while running
// on hosts much slower than the paper's 40-core testbed.
package exp

import (
	"fmt"
	"io"
	"math"

	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/geom"
	"slamshare/internal/metrics"
	"slamshare/internal/server"
)

// Quick scales experiments down for fast runs (CI, benchmarks).
var Quick bool

// ScaleDiv is the quick-mode reduction factor (default 3). Benchmarks
// raise it further so a testing.B iteration stays in seconds.
var ScaleDiv = 3

// scale shrinks a frame count in quick mode.
func scale(n int) int {
	if Quick {
		d := ScaleDiv
		if d < 2 {
			d = 2
		}
		n /= d
		if n < 30 {
			n = 30
		}
	}
	return n
}

// Link models the client-server network in virtual time.
type Link struct {
	// DelaySec is the one-way propagation delay in (virtual) seconds.
	DelaySec float64
	// UplinkBps caps the uplink in bits per second (0 = unlimited).
	UplinkBps float64
}

// RTTFrames converts the round-trip delay into whole frame periods.
func (l Link) RTTFrames(framePeriod float64) int {
	if l.DelaySec <= 0 {
		return 0
	}
	return int(math.Ceil(2 * l.DelaySec / framePeriod))
}

// Participant is one client in a lockstep run.
type Participant struct {
	Name      string
	Dev       *client.Client
	Sess      *server.Session
	Seq       *dataset.Sequence
	JoinStep  int // virtual step at which the client starts
	LeaveStep int // step after which it stops (0 = never)
	Stride    int // dataset frames per step
	Link      Link

	// Results, populated by the run.
	Dropped int
	Steps   int
	Merged  bool
	MergeAt float64 // virtual time of the successful merge

	backlog  float64 // uplink queue, seconds of transmission pending
	frameIdx int
	pending  []pendingPose
}

type pendingPose struct {
	frameIdx int
	pose     geom.SE3
	tracked  bool
	dueStep  int
}

// Runner drives several participants against one server in lockstep.
type Runner struct {
	Srv         *server.Server
	Parts       []*Participant
	FramePeriod float64 // virtual seconds per step
	// OnStep, when non-nil, observes each completed virtual step.
	OnStep func(step int, virtualTime float64)
}

// Run executes the given number of virtual steps.
func (r *Runner) Run(steps int) {
	for s := 0; s < steps; s++ {
		vt := float64(s) * r.FramePeriod
		for _, p := range r.Parts {
			if s < p.JoinStep || (p.LeaveStep > 0 && s >= p.LeaveStep) {
				continue
			}
			r.stepParticipant(p, s)
		}
		if r.OnStep != nil {
			r.OnStep(s, vt)
		}
	}
	// Flush remaining pose answers.
	for _, p := range r.Parts {
		for _, pp := range p.pending {
			p.Dev.ApplyPose(pp.frameIdx, pp.pose, pp.tracked)
		}
		p.pending = nil
	}
}

func (r *Runner) stepParticipant(p *Participant, step int) {
	stride := p.Stride
	if stride < 1 {
		stride = 1
	}
	i := p.frameIdx
	p.frameIdx += stride
	if i >= p.Seq.FrameCount() {
		return
	}
	p.Steps++
	msg := p.Dev.BuildFrame(i)

	// Uplink model: transmission time accumulates into a backlog; if
	// the backlog exceeds two frame periods the frame is dropped
	// before transmission (the camera cannot buffer indefinitely).
	if p.Link.UplinkBps > 0 {
		bits := float64(len(msg.Video)+len(msg.VideoRight)) * 8
		tx := bits / p.Link.UplinkBps
		p.backlog += tx
		if p.backlog > 2*r.FramePeriod*float64(stride) {
			p.backlog -= tx // dropped before transmission
			p.Dropped++
			r.deliverDue(p, step)
			return
		}
	}
	res, err := p.Sess.HandleFrame(msg)
	if err != nil {
		p.Dropped++
		r.deliverDue(p, step)
		return
	}
	if res.Merged && !p.Merged {
		p.Merged = true
		p.MergeAt = float64(step) * r.FramePeriod
	}
	// Queue the pose answer with the link's round-trip lag plus any
	// uplink queueing delay.
	lag := p.Link.RTTFrames(r.FramePeriod * float64(stride))
	if p.Link.UplinkBps > 0 {
		lag += int(p.backlog / (r.FramePeriod * float64(stride)))
	}
	p.pending = append(p.pending, pendingPose{
		frameIdx: i, pose: res.Pose, tracked: res.Tracked, dueStep: step + lag,
	})
	// Drain the backlog by one frame period of service.
	if p.backlog > 0 {
		p.backlog -= r.FramePeriod * float64(stride)
		if p.backlog < 0 {
			p.backlog = 0
		}
	}
	r.deliverDue(p, step)
}

func (r *Runner) deliverDue(p *Participant, step int) {
	for len(p.pending) > 0 && p.pending[0].dueStep <= step {
		pp := p.pending[0]
		p.pending = p.pending[1:]
		p.Dev.ApplyPose(pp.frameIdx, pp.pose, pp.tracked)
	}
}

// truth returns a sequence's ground-truth trajectory over the frames a
// participant processed.
func truth(seq *dataset.Sequence, nFrames, stride int) metrics.Trajectory {
	var tr metrics.Trajectory
	for i := 0; i < nFrames && i < seq.FrameCount(); i += stride {
		tr.Append(seq.FrameTime(i), seq.GroundTruth(i).T)
	}
	return tr
}

// globalMapATE measures the ATE of the global map's keyframes against
// each owning client's ground truth, plus unmerged session fragments
// evaluated in their (misaligned) local frames — the "cumulative ATE
// of the global map" series of Fig. 10.
func globalMapATE(srv *server.Server, parts []*Participant) float64 {
	var sum float64
	n := 0
	add := func(center geom.Vec3, want geom.Vec3) {
		d := center.Sub(want).NormSq()
		sum += d
		n++
	}
	seqOf := make(map[int]*dataset.Sequence)
	for _, p := range parts {
		seqOf[int(p.Sess.ID)] = p.Seq
	}
	for _, kf := range srv.Global().KeyFrames() {
		seq, ok := seqOf[kf.Client]
		if !ok {
			continue
		}
		add(kf.Center(), seq.Traj.PoseAt(kf.Stamp).T)
	}
	// Unmerged fragments: their keyframes live in displaced local
	// frames, so they count against the global map exactly as the
	// paper describes ("two different fragments with different
	// origins").
	for _, p := range parts {
		if p.Merged || p.Steps == 0 {
			continue
		}
		for _, kf := range p.Sess.LocalMap().KeyFrames() {
			add(kf.Center(), p.Seq.Traj.PoseAt(kf.Stamp).T)
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// tablef prints an aligned row.
func tablef(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format+"\n", args...)
}
