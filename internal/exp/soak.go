package exp

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"slamshare/internal/camera"
	"slamshare/internal/chaos"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/lifecycle"
	"slamshare/internal/server"
)

// SoakSample is one point on a soak run's map-growth trajectory.
type SoakSample struct {
	VirtualSec    float64
	KeyFrames     int
	MapPoints     int
	ResidentBytes int64
}

// soakRunResult is the outcome of one server's soak run.
type soakRunResult struct {
	Samples  []SoakSample
	Merged   int
	Sessions int
	Culled   int64
	Sparse   int64
	Regions  int64 // regions evicted
	EvictKFs int64
	Reloads  int64
	Dropped  int64
	Invar    string // invariant audit summary at quiescence
}

// SoakResult compares the lifecycle-managed run against the unbounded
// control.
type SoakResult struct {
	On, Off soakRunResult
}

// soakSpec is one fleet member: a vehicle loop or a pedestrian stroll
// over the shared city grid.
type soakSpec struct {
	name   string
	seq    *dataset.Sequence
	join   int
	leave  int
	stride int
}

// soakFleet builds n staggered city-grid sessions: two vehicles for
// every pedestrian. Every route leaves the same west-end "depot" and
// drives the first main-street block eastbound — the block every
// session re-maps, which is what gives merge detection a guaranteed
// common region with the growing global map and the cull pass genuine
// redundancy — then turns off into a deterministic random walk, each
// tail visited by one session and then left to go cold (eviction
// fodder). Sequences run at half resolution, the chaos harness's
// trick for fitting many real-pipeline clients in a budget; vehicles
// move at urban speed (7 m/s), which half-resolution tracking holds
// through 90-degree turns.
func soakFleet(n, activeSteps, stagger int) []soakSpec {
	rng := rand.New(rand.NewSource(0x50AC))
	specs := make([]soakSpec, 0, n)
	for i := 0; i < n; i++ {
		vehicle := i%3 != 2
		speed, legs, stride := 7.0, 6, 2
		if !vehicle {
			// Pedestrian AR user: walking pace, larger stride so the
			// session still covers ground worth merging.
			speed, legs, stride = 1.4, 2, 4
		}
		route := soakRoute(rng, legs)
		kind := "veh"
		if !vehicle {
			kind = "ped"
		}
		name := fmt.Sprintf("%s%02d", kind, i)
		specs = append(specs, soakSpec{
			name:   name,
			seq:    chaos.HalfRes(dataset.CityRoute(name, route, speed, camera.Stereo, int64(200+i))),
			join:   i * stagger,
			leave:  i*stagger + activeSteps,
			stride: stride,
		})
	}
	return specs
}

// soakRoute builds one fleet route: leave the depot at the west end
// of the central east-west main street, drive its first block east,
// then random-walk the lattice, avoiding an immediate backtrack when
// any other direction stays on the grid.
func soakRoute(rng *rand.Rand, legs int) [][2]int {
	max := dataset.CityBlocks
	mid := max / 2
	cur := [2]int{1, mid}
	route := [][2]int{{0, mid}, cur}
	prev := [2]int{0, mid}
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for len(route) <= legs {
		perm := rng.Perm(4)
		next := prev // fallback: backtrack if boxed in
		for _, k := range perm {
			cand := [2]int{cur[0] + dirs[k][0], cur[1] + dirs[k][1]}
			if cand[0] < 0 || cand[0] > max || cand[1] < 0 || cand[1] > max {
				continue
			}
			if cand == prev {
				continue
			}
			next = cand
			break
		}
		prev, cur = cur, next
		route = append(route, cur)
	}
	return route
}

// soakRun drives the fleet against one server and samples map growth.
func soakRun(specs []soakSpec, steps, sampleEvery int, lcfg lifecycle.Config) (soakRunResult, error) {
	var res soakRunResult
	dir, err := os.MkdirTemp("", "slamshare-soak-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	cfg := server.DefaultConfig()
	cfg.Persist.Dir = dir
	cfg.Persist.CheckpointEvery = -1
	cfg.Lifecycle = lcfg
	// Vehicular profile: the default keyframe window (ratio 0.7 against
	// lost at 15 inliers) is too narrow for fast forward motion in a
	// sparse street scene — one steep inlier drop can cross both
	// thresholds in a single frame. Widen the insertion window and
	// lower the lost line so the map extends ahead of the vehicle.
	cfg.TrackCfg.KFTrackedRatio = 0.85
	cfg.TrackCfg.MinInliers = 10
	if cfg.Overload.MaxSessions < len(specs) {
		cfg.Overload.MaxSessions = len(specs) + 1
	}
	srv, err := server.New(cfg)
	if err != nil {
		return res, err
	}
	defer srv.Close()

	parts := make([]*Participant, 0, len(specs))
	for i, sp := range specs {
		sess, err := srv.OpenSession(uint32(i+1), sp.seq.Rig)
		if err != nil {
			return res, err
		}
		dev := client.New(uint32(i+1), sp.seq)
		parts = append(parts, &Participant{
			Name: sp.name, Dev: dev, Sess: sess, Seq: sp.seq,
			JoinStep: sp.join, LeaveStep: sp.leave, Stride: sp.stride,
		})
	}

	r := &Runner{
		Srv: srv, Parts: parts, FramePeriod: 2.0 / specs[0].seq.FPS,
		OnStep: func(step int, vt float64) {
			if (step+1)%sampleEvery != 0 && step != steps-1 {
				return
			}
			g := srv.Global()
			res.Samples = append(res.Samples, SoakSample{
				VirtualSec:    vt,
				KeyFrames:     g.NKeyFrames(),
				MapPoints:     g.NMapPoints(),
				ResidentBytes: lifecycle.EstimateResidentBytes(g),
			})
		},
	}
	r.Run(steps)

	res.Sessions = len(parts)
	for _, p := range parts {
		if p.Merged {
			res.Merged++
		}
	}
	if lm := srv.Lifecycle(); lm != nil {
		st := lm.Stats()
		res.Culled = st.CulledKeyFrames.Load()
		res.Sparse = st.SparsifiedPoints.Load()
		res.Regions = st.EvictedRegions.Load()
		res.EvictKFs = st.EvictedKeyFrames.Load()
		res.Reloads = st.ReloadedRegions.Load()
		res.Dropped = st.DroppedRegions.Load()
	}
	// Quiescent audit: once with regions evicted, once with everything
	// reloaded — the reload path must restore a structurally clean map.
	rep := srv.Global().CheckInvariants()
	res.Invar = rep.Summary()
	if rep.OK() {
		if lm := srv.Lifecycle(); lm != nil && lm.EvictedRegionCount() > 0 {
			lm.ReloadAll()
			if rep2 := srv.Global().CheckInvariants(); !rep2.OK() {
				res.Invar = "after reload-all: " + rep2.Summary()
			}
		}
	}
	return res, nil
}

// Soak runs the city-grid fleet twice — lifecycle on, then the
// unbounded control — and prints the map-growth trajectories side by
// side: the paper's "server that runs forever" claim is the left pair
// of columns flattening while the right pair keeps climbing. full
// scales up to a 50-session compressed hour.
func Soak(w io.Writer, full bool) (*SoakResult, error) {
	nSessions, activeSteps, stagger := 8, 160, 18
	budget, evictAfter := 60, uint64(200)
	if full {
		nSessions, activeSteps, stagger = 50, 280, 30
		budget, evictAfter = 400, 3000
	}
	steps := (nSessions-1)*stagger + activeSteps
	sampleEvery := steps / 10
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	specs := soakFleet(nSessions, activeSteps, stagger)
	vehicles := 0
	for _, sp := range specs {
		if sp.name[0] == 'v' {
			vehicles++
		}
	}

	on, err := soakRun(specs, steps, sampleEvery, lifecycle.Config{
		MaxKeyFrames: budget,
		EvictAfter:   evictAfter,
	})
	if err != nil {
		return nil, err
	}
	off, err := soakRun(specs, steps, sampleEvery, lifecycle.Config{})
	if err != nil {
		return nil, err
	}
	res := &SoakResult{On: on, Off: off}

	fmt.Fprintf(w, "City-grid soak: %d sessions (%d vehicles, %d pedestrians), %d steps, kf budget %d, evict after %d frames\n",
		nSessions, vehicles, nSessions-vehicles, steps, budget, evictAfter)
	tablef(w, "%8s  %-24s  %-24s", "", "lifecycle on", "lifecycle off (control)")
	tablef(w, "%8s  %8s %6s %8s  %8s %6s %8s",
		"t(s)", "KFs", "MB", "points", "KFs", "MB", "points")
	for i := range on.Samples {
		a := on.Samples[i]
		b := SoakSample{}
		if i < len(off.Samples) {
			b = off.Samples[i]
		}
		tablef(w, "%8.1f  %8d %6.1f %8d  %8d %6.1f %8d",
			a.VirtualSec, a.KeyFrames, mb(a.ResidentBytes), a.MapPoints,
			b.KeyFrames, mb(b.ResidentBytes), b.MapPoints)
	}
	tablef(w, "lifecycle: culled=%d sparsified=%d evicted=%d regions (%d KFs) reloads=%d dropped=%d",
		on.Culled, on.Sparse, on.Regions, on.EvictKFs, on.Reloads, on.Dropped)
	tablef(w, "merges   : on %d/%d  off %d/%d", on.Merged, on.Sessions, off.Merged, off.Sessions)
	tablef(w, "invariants: on %s | off %s", on.Invar, off.Invar)
	if n := len(on.Samples); n > 0 && len(off.Samples) == n {
		a, b := on.Samples[n-1], off.Samples[n-1]
		ratio := 0.0
		if a.KeyFrames > 0 {
			ratio = float64(b.KeyFrames) / float64(a.KeyFrames)
		}
		tablef(w, "final    : %d resident KFs bounded vs %d unbounded (%.1fx)",
			a.KeyFrames, b.KeyFrames, ratio)
	}
	return res, nil
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
