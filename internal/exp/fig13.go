package exp

import (
	"fmt"
	"io"
	"time"

	"slamshare/internal/baseline"
	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/server"
)

// Fig13Result compares client-side compute between the two systems.
type Fig13Result struct {
	BaselineBusyPerFrame  time.Duration
	SlamShareBusyPerFrame time.Duration // includes software video encoding
	SlamShareIMUPerFrame  time.Duration // excluding encode: hardware-encoder analogue
	ReductionX            float64       // baseline vs IMU-only (the paper's comparison)
	ReductionSWX          float64       // baseline vs software-codec total
}

// Fig13 reproduces the client CPU comparison over the MH05 trajectory:
// the baseline client runs full SLAM on-device; the SLAM-Share client
// only integrates its IMU and encodes video. The per-frame busy time
// ratio is the paper's CPU-utilization ratio (see DESIGN.md for the
// psutil substitution).
func Fig13(w io.Writer) (*Fig13Result, error) {
	seq := dataset.MH05(camera.Stereo)
	n := scale(200)
	stride := 2

	// Baseline client: full local SLAM.
	bcfg := baseline.DefaultConfig()
	bcfg.HoldDownFrames = 1 << 30
	bcl := baseline.NewClient(1, seq, bcfg)
	bFrames := 0
	for i := 0; i < n; i += stride {
		if !bcl.CanProcess(i) {
			continue
		}
		bcl.Step(i)
		bFrames++
	}

	// SLAM-Share client: IMU + video encode only; the SLAM runs on the
	// server (whose compute is not billed to the device).
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	seq2 := dataset.MH05(camera.Stereo)
	sess, err := srv.OpenSession(2, seq2.Rig)
	if err != nil {
		return nil, err
	}
	dev := client.New(2, seq2)
	sFrames := 0
	for i := 0; i < n; i += stride {
		msg := dev.BuildFrame(i)
		res, err := sess.HandleFrame(msg)
		if err != nil {
			return nil, err
		}
		dev.ApplyPose(i, res.Pose, res.Tracked)
		sFrames++
	}

	res := &Fig13Result{}
	if bFrames > 0 {
		res.BaselineBusyPerFrame = bcl.Meter().Busy() / time.Duration(bFrames)
	}
	if sFrames > 0 {
		res.SlamShareBusyPerFrame = dev.Meter().Busy() / time.Duration(sFrames)
		imu := dev.Meter().Busy() - dev.EncodeBusy()
		if imu < 0 {
			imu = 0
		}
		res.SlamShareIMUPerFrame = imu / time.Duration(sFrames)
	}
	if res.SlamShareIMUPerFrame > 0 {
		res.ReductionX = float64(res.BaselineBusyPerFrame) / float64(res.SlamShareIMUPerFrame)
	}
	if res.SlamShareBusyPerFrame > 0 {
		res.ReductionSWX = float64(res.BaselineBusyPerFrame) / float64(res.SlamShareBusyPerFrame)
	}
	fmt.Fprintln(w, "Fig 13: client compute per frame (MH05)")
	tablef(w, "%-44s %v", "baseline client (full SLAM)", res.BaselineBusyPerFrame.Round(time.Microsecond*100))
	tablef(w, "%-44s %v", "SLAM-Share client (software video codec)", res.SlamShareBusyPerFrame.Round(time.Microsecond*100))
	tablef(w, "%-44s %v", "SLAM-Share client (hardware-encoder analogue)", res.SlamShareIMUPerFrame.Round(time.Microsecond))
	tablef(w, "reduction vs hardware-encoder analogue: %.0fx (paper: ~35x)", res.ReductionX)
	tablef(w, "reduction with the pure-Go software codec: %.1fx", res.ReductionSWX)
	return res, nil
}
