package exp

import (
	"fmt"
	"io"
	"time"

	"slamshare/internal/bow"
	"slamshare/internal/camera"
	"slamshare/internal/dataset"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/gpu"
	"slamshare/internal/mapping"
	"slamshare/internal/smap"
	"slamshare/internal/tracking"
)

// TrackingRow is one bar of Figs. 5 and 8: the per-stage tracking
// latency of one dataset/mode configuration.
type TrackingRow struct {
	Dataset     string
	Mode        camera.Mode
	GPU         bool
	Extract     time.Duration
	Match       time.Duration
	PosePredict time.Duration
	SearchLocal time.Duration
	Total       time.Duration
	FPS         float64
}

// ExtractPct returns ORB extraction's share of the total.
func (r TrackingRow) ExtractPct() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Extract) / float64(r.Total)
}

// measureTracking runs the tracker over a sequence prefix and averages
// the per-stage latencies of the steady-state frames.
func measureTracking(seq *dataset.Sequence, dev *gpu.Device, nFrames int) TrackingRow {
	m := smap.NewMap(bow.Default())
	alloc := smap.NewIDAllocator(1)
	ex := feature.NewExtractor(feature.DefaultConfig())
	var searchPar feature.Parallelizer
	if dev != nil {
		ex.Par = dev
		searchPar = dev
	}
	tr := tracking.New(m, seq.Rig, ex, alloc, 1, tracking.DefaultConfig())
	tr.SearchPar = searchPar
	mp := mapping.New(m, seq.Rig, alloc, 1, mapping.DefaultConfig())

	var agg tracking.Stages
	counted := 0
	for i := 0; i < nFrames; i++ {
		left, right := seq.StereoFrame(i)
		var prior *geom.SE3
		if i < 12 {
			p := seq.GroundTruth(i).Inverse()
			prior = &p
		}
		res := tr.ProcessFrame(left, right, seq.FrameTime(i), prior)
		if res.NewKF != nil {
			mp.ProcessKeyFrame(res.NewKF)
		}
		// Skip the warm-up frames (map bootstrap) in the average.
		if i >= 5 {
			agg.Add(res.Timing)
			counted++
		}
	}
	avg := agg.Scale(counted)
	row := TrackingRow{
		Dataset: seq.Name, Mode: seq.Rig.Mode, GPU: dev != nil,
		Extract: avg.Extract, Match: avg.Match,
		PosePredict: avg.PosePredict, SearchLocal: avg.SearchLocal,
		Total: avg.Total,
	}
	if avg.Total > 0 {
		row.FPS = float64(time.Second) / float64(avg.Total)
	}
	return row
}

// fig5Configs are the dataset/mode pairs of Fig. 5 / Fig. 8.
func fig5Configs() []*dataset.Sequence {
	return []*dataset.Sequence{
		dataset.KITTI00(camera.Mono),
		dataset.KITTI00(camera.Stereo),
		dataset.V202(camera.Mono),
		dataset.V202(camera.Stereo),
		dataset.TUMfr1(camera.Mono),
	}
}

// Fig5 reproduces the CPU tracking-latency breakdown: ORB extraction
// dominates (>50%), search-local-points is the next largest share.
func Fig5(w io.Writer) ([]TrackingRow, error) {
	n := scale(45)
	var rows []TrackingRow
	for _, seq := range fig5Configs() {
		rows = append(rows, measureTracking(seq, nil, n))
	}
	fmt.Fprintln(w, "Fig 5: ORB-SLAM3 tracking latency with CPU (per-frame averages)")
	printTrackingRows(w, rows)
	return rows, nil
}

// Fig8 reproduces the CPU-versus-GPU comparison: the simulated
// accelerator cuts extraction and search-local-points latency, giving
// ~40% (mono) to >50% (stereo) total reductions.
func Fig8(w io.Writer) ([]TrackingRow, error) {
	n := scale(45)
	dev := gpu.NewDevice(gpu.Config{Lanes: 8, LaunchOverhead: 10 * time.Microsecond, MinGrain: 8})
	var rows []TrackingRow
	for _, seq := range fig5Configs() {
		rows = append(rows, measureTracking(seq, nil, n))
		// Fresh sequences to avoid renderer cache effects between runs.
		seq2, _ := dataset.ByName(seq.Name, seq.Rig.Mode)
		rows = append(rows, measureTracking(seq2, dev, n))
	}
	fmt.Fprintln(w, "Fig 8: ORB-SLAM3 (CPU) vs SLAM-Share (GPU) tracking latency")
	printTrackingRows(w, rows)
	// Summary reductions per config.
	fmt.Fprintln(w)
	tablef(w, "%-22s %-12s %-12s %-10s", "config", "OS3 total", "S-Sh total", "reduction")
	for i := 0; i+1 < len(rows); i += 2 {
		cpu, g := rows[i], rows[i+1]
		red := 100 * (1 - float64(g.Total)/float64(cpu.Total))
		tablef(w, "%-22s %-12v %-12v %8.1f%%",
			fmt.Sprintf("%s (%s)", cpu.Dataset, cpu.Mode), cpu.Total.Round(time.Microsecond*100),
			g.Total.Round(time.Microsecond*100), red)
	}
	return rows, nil
}

func printTrackingRows(w io.Writer, rows []TrackingRow) {
	tablef(w, "%-22s %-6s %-12s %-12s %-12s %-12s %-12s %-8s %-8s",
		"dataset", "gpu", "extract", "match", "pose-pred", "search-loc", "total", "FPS", "extr%")
	for _, r := range rows {
		gpuStr := "cpu"
		if r.GPU {
			gpuStr = "gpu"
		}
		tablef(w, "%-22s %-6s %-12v %-12v %-12v %-12v %-12v %-8.1f %-8.1f",
			fmt.Sprintf("%s (%s)", r.Dataset, r.Mode), gpuStr,
			r.Extract.Round(100*time.Microsecond), r.Match.Round(100*time.Microsecond),
			r.PosePredict.Round(100*time.Microsecond), r.SearchLocal.Round(100*time.Microsecond),
			r.Total.Round(100*time.Microsecond), r.FPS, r.ExtractPct())
	}
}
