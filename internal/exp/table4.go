package exp

import (
	"fmt"
	"io"
	"time"

	"slamshare/internal/baseline"
	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/geom"
	"slamshare/internal/server"
)

// Table4Result holds the merge-latency breakdown of both systems.
type Table4Result struct {
	// Baseline components (averaged over runs).
	Baseline baseline.UploadReport
	// SLAM-Share components.
	SSEncode time.Duration // client video encode for the frame batch
	SSXfer1  time.Duration // frame upload (tiny)
	SSMerge  time.Duration // shared-memory merge (Alg. 2)
	SSXfer2  time.Duration // pose return (tiny)
	SSTotal  time.Duration
	SpeedupX float64
}

// Table4 reproduces the merge-latency breakdown: the baseline pays
// hold-down batching, serialization, transfer and deserialization on
// every round, while SLAM-Share merges directly in shared memory.
// Averages over `runs` independent two-client EuRoC scenarios.
func Table4(w io.Writer, runs int) (*Table4Result, error) {
	if runs <= 0 {
		runs = 3
	}
	if Quick {
		runs = 1
	}
	res := &Table4Result{}
	nFrames := scale(420)

	// The link used for the baseline's exchanges: the testbed's fast
	// link (negligible propagation delay, 1 Gbit/s effective).
	const linkBps = 1e9

	for run := 0; run < runs; run++ {
		// ----- SLAM-Share side: two clients, shared-memory merge. -----
		srv, err := server.New(server.DefaultConfig())
		if err != nil {
			return nil, err
		}
		seqA := dataset.MH04(camera.Stereo)
		seqB := dataset.MH05(camera.Stereo)
		seqA.Seed += int64(run) * 13
		seqB.Seed += int64(run) * 13
		sessA, _ := srv.OpenSession(1, seqA.Rig)
		sessB, _ := srv.OpenSession(2, seqB.Rig)
		devA := client.New(1, seqA)
		devB := client.NewDisplaced(2, seqB, 0.07, geom.Vec3{X: 0.5, Y: -0.3})
		var encDur time.Duration
		var upBytes int64
		for i := 0; i < nFrames; i += 2 {
			t0 := time.Now()
			msgA := devA.BuildFrame(i)
			msgB := devB.BuildFrame(i)
			encDur += time.Since(t0)
			upBytes += int64(len(msgA.Video) + len(msgA.VideoRight) + len(msgB.Video) + len(msgB.VideoRight))
			ra, err := sessA.HandleFrame(msgA)
			if err != nil {
				return nil, err
			}
			devA.ApplyPose(i, ra.Pose, ra.Tracked)
			rb, err := sessB.HandleFrame(msgB)
			if err != nil {
				return nil, err
			}
			devB.ApplyPose(i, rb.Pose, rb.Tracked)
			if sessA.Merged() && sessB.Merged() {
				break
			}
		}
		reports := srv.MergeReports()
		for _, rep := range reports {
			if rep.Alignment != nil { // the real (non-founding) merge
				res.SSMerge += rep.Total
			}
		}
		frames := devA.FramesSent() + devB.FramesSent()
		if frames > 0 {
			res.SSEncode += encDur / time.Duration(frames)
		}
		// Per-frame transfer times on the fast link.
		res.SSXfer1 += time.Duration(float64(upBytes) / float64(frames) * 8 / linkBps * float64(time.Second))
		res.SSXfer2 += time.Duration(float64(protocolPoseBytes*8) / linkBps * float64(time.Second))
		srv.Close()

		// ----- Baseline side: serialized exchange. -----
		cfg := baseline.DefaultConfig()
		cfg.HoldDownFrames = 150
		seqA2 := dataset.MH04(camera.Stereo)
		seqB2 := dataset.MH05(camera.Stereo)
		seqA2.Seed += int64(run) * 17
		seqB2.Seed += int64(run) * 17
		bsrv := baseline.NewServer(cfg, seqA2.Rig.Intr)
		bclA := baseline.NewClient(1, seqA2, cfg)
		bclB := baseline.NewClient(2, seqB2, cfg)
		rep, err := baselineRound(bsrv, bclA, bclB, linkBps)
		if err != nil {
			return nil, err
		}
		res.Baseline.HoldDown += rep.HoldDown
		res.Baseline.Serialize += rep.Serialize
		res.Baseline.Transfer1 += rep.Transfer1
		res.Baseline.Deserialize += rep.Deserialize
		res.Baseline.Merge += rep.Merge
		res.Baseline.DataProc += rep.DataProc
		res.Baseline.Transfer2 += rep.Transfer2
		res.Baseline.Load += rep.Load
		res.Baseline.UploadBytes += rep.UploadBytes
		res.Baseline.ReturnBytes += rep.ReturnBytes
	}
	d := time.Duration(runs)
	res.Baseline.HoldDown /= d
	res.Baseline.Serialize /= d
	res.Baseline.Transfer1 /= d
	res.Baseline.Deserialize /= d
	res.Baseline.Merge /= d
	res.Baseline.DataProc /= d
	res.Baseline.Transfer2 /= d
	res.Baseline.Load /= d
	res.Baseline.UploadBytes /= runs
	res.Baseline.ReturnBytes /= runs
	res.SSEncode /= d
	res.SSMerge /= d
	res.SSXfer1 /= d
	res.SSXfer2 /= d
	res.SSTotal = res.SSEncode + res.SSXfer1 + res.SSMerge + res.SSXfer2
	if res.SSTotal > 0 {
		// The paper compares the merge-round latencies (its Total row
		// excludes nothing): hold-down through load for the baseline.
		res.SpeedupX = float64(res.Baseline.Total()) / float64(res.SSTotal)
	}

	fmt.Fprintln(w, "Table 4: average merge-latency breakdown")
	tablef(w, "%-22s %-16s %-16s", "Component", "Baseline", "SLAM-Share")
	tablef(w, "%-22s %-16v %-16s", "1. Hold-down time", res.Baseline.HoldDown, "N/A")
	tablef(w, "%-22s %-16v %-16s", "2. Serialization", res.Baseline.Serialize.Round(time.Millisecond/10), "N/A")
	tablef(w, "%-22s %-16s %-16v", "3. Encoding", "N/A", res.SSEncode.Round(time.Millisecond/10))
	tablef(w, "%-22s %-16v %-16v", "4. Data transfer 1", res.Baseline.Transfer1.Round(time.Millisecond/10), res.SSXfer1.Round(time.Microsecond*10))
	tablef(w, "%-22s %-16v %-16s", "5. Deserialization", res.Baseline.Deserialize.Round(time.Millisecond/10), "N/A")
	tablef(w, "%-22s %-16v %-16v", "6. Map merging", res.Baseline.Merge.Round(time.Millisecond), res.SSMerge.Round(time.Millisecond))
	tablef(w, "%-22s %-16v %-16s", "7. Data processing", res.Baseline.DataProc.Round(time.Millisecond/10), "N/A")
	tablef(w, "%-22s %-16v %-16v", "8. Data transfer 2", res.Baseline.Transfer2.Round(time.Millisecond/10), res.SSXfer2.Round(time.Microsecond))
	tablef(w, "%-22s %-16v %-16s", "9. Load map", res.Baseline.Load.Round(time.Millisecond/10), "N/A")
	tablef(w, "%-22s %-16v %-16v", "Total", res.Baseline.Total().Round(time.Millisecond), res.SSTotal.Round(time.Millisecond))
	tablef(w, "speedup: %.0fx", res.SpeedupX)
	tablef(w, "(baseline upload %d KB, portion %d KB)", res.Baseline.UploadBytes/1024, res.Baseline.ReturnBytes/1024)
	return res, nil
}

const protocolPoseBytes = 4 + 16*8 + 1

// baselineRound runs both baseline clients until B's first upload,
// performing A's founding round first, and returns B's full round
// breakdown with transfer times computed for the given link.
func baselineRound(bsrv *baseline.Server, bclA, bclB *baseline.Client, linkBps float64) (baseline.UploadReport, error) {
	var rep baseline.UploadReport
	doRound := func(cl *baseline.Client) (baseline.UploadReport, error) {
		var out baseline.UploadReport
		for i := 0; i < 4000; i++ {
			if !cl.CanProcess(i) {
				continue
			}
			st := cl.Step(i)
			if st.Upload == nil {
				continue
			}
			out.HoldDown = 5 * time.Second // 150 frames at 30 FPS
			out.Serialize = st.SerializeTime
			out.Transfer1 = time.Duration(float64(len(st.Upload)) * 8 / linkBps * float64(time.Second))
			portion, align, srvRep, err := bsrv.HandleUpload(st.Upload)
			if err != nil {
				return out, err
			}
			out.Deserialize = srvRep.Deserialize
			out.Merge = srvRep.Merge
			out.DataProc = srvRep.DataProc
			out.UploadBytes = srvRep.UploadBytes
			out.ReturnBytes = srvRep.ReturnBytes
			out.Transfer2 = time.Duration(float64(len(portion)) * 8 / linkBps * float64(time.Second))
			load, err := cl.Integrate(portion, align)
			if err != nil {
				return out, err
			}
			out.Load = load
			out.Merged = srvRep.Merged
			return out, nil
		}
		return out, fmt.Errorf("baseline client never produced an upload")
	}
	if _, err := doRound(bclA); err != nil {
		return rep, err
	}
	return doRound(bclB)
}
