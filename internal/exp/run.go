package exp

import (
	"fmt"
	"io"

	"slamshare/internal/chaos"
)

// All returns the experiment ids in paper order.
func All() []string {
	return []string{
		"table1", "fig5", "fig8", "table2", "table3",
		"fig10a", "fig10b", "fig10c", "table4",
		"fig11", "fig12a", "fig12b", "fig12c", "fig13",
		"latency", "offload", "soak", "chaos",
	}
}

// Run executes one experiment by id, printing the paper-style rows to
// w. full enables the most expensive variants.
func Run(w io.Writer, id string, full bool) error {
	var err error
	switch id {
	case "table1":
		_, err = Table1(w, full)
	case "fig5":
		_, err = Fig5(w)
	case "fig8":
		_, err = Fig8(w)
	case "table2":
		_, err = Table2(w)
	case "table3":
		_, err = Table3(w)
	case "fig10a":
		_, err = Fig10a(w)
	case "fig10b":
		_, err = Fig10b(w)
	case "fig10c":
		_, err = Fig10c(w)
	case "table4":
		_, err = Table4(w, 3)
	case "fig11":
		_, err = Fig11(w)
	case "fig12a":
		_, err = Fig12a(w)
	case "fig12b":
		_, err = Fig12b(w)
	case "fig12c":
		_, err = Fig12c(w)
	case "fig13":
		_, err = Fig13(w)
	case "latency":
		_, err = Latency(w)
	case "offload":
		_, err = Offload(w)
	case "soak":
		_, err = Soak(w, full)
	case "chaos":
		err = chaos.RunAll(w, full)
	default:
		return fmt.Errorf("exp: unknown experiment %q (known: %v)", id, All())
	}
	return err
}
