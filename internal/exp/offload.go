package exp

import (
	"fmt"
	"io"
	"math"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/metrics"
	"slamshare/internal/offload"
	"slamshare/internal/server"
)

// OffloadRow is one cell block of the adaptive-offloading sweep: one
// offload mode under one RTT, measured over a single-client lockstep
// run.
type OffloadRow struct {
	Mode       string
	RTTms      int
	ATEcm      float64 // live (as-experienced) trajectory error
	UplinkMbps float64 // uplink bitrate the mode actually needs
	Tracked    int     // frames the server answered with a tracked pose
	Steps      int
}

// printOffloadRows renders the sweep table. The format is covered by a
// byte-exact golden test, so changes here must update the golden.
func printOffloadRows(w io.Writer, rows []OffloadRow) {
	tablef(w, "%-8s %-10s %-12s %-14s %-10s", "mode", "RTT (ms)",
		"ATE (cm)", "uplink Mbit/s", "tracked")
	for _, r := range rows {
		tracked := fmt.Sprintf("%d/%d", r.Tracked, r.Steps)
		tablef(w, "%-8s %-10d %-12.2f %-14.2f %-10s",
			r.Mode, r.RTTms, r.ATEcm, r.UplinkMbps, tracked)
	}
}

// offloadRun measures one (mode, RTT) cell: a single MH04 stereo
// client in frame-lockstep virtual time. Full mode uploads video,
// split mode extracts on-device and uploads keypoint messages, shadow
// mode sends only map-sync pings and dead-reckons locally — its ATE
// is pure IMU drift, the floor the other modes are bought against.
func offloadRun(mode offload.Mode, rttMs, nFrames, stride int) (OffloadRow, error) {
	row := OffloadRow{Mode: mode.String(), RTTms: rttMs}
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		return row, err
	}
	defer srv.Close()
	seq := dataset.MH04(camera.Stereo)
	sess, err := srv.OpenSession(1, seq.Rig)
	if err != nil {
		return row, err
	}
	dev := client.New(1, seq)

	framePeriod := float64(stride) / seq.FPS
	lagSteps := 0
	if rttMs > 0 {
		lagSteps = int(math.Ceil(float64(rttMs) / 1000 / framePeriod))
	}
	var pending []pendingPose
	var upBytes int
	steps := nFrames / stride
	for k := 0; k < steps; k++ {
		i := k * stride
		if i >= seq.FrameCount() {
			break
		}
		row.Steps++
		switch mode {
		case offload.ModeSplit:
			msg := dev.BuildKeypointFrame(i)
			upBytes += len(msg.Encode())
			res, err := sess.HandleKeypoints(msg)
			if err != nil {
				return row, err
			}
			if res.Tracked {
				row.Tracked++
			}
			pending = append(pending, pendingPose{
				frameIdx: i, pose: res.Pose, tracked: res.Tracked, dueStep: k + lagSteps,
			})
		case offload.ModeShadow:
			msg := dev.BuildSync(i)
			upBytes += len(msg.Encode())
			sess.HandleSync(msg)
			// No pose comes back: the device stays on dead reckoning.
		default:
			msg := dev.BuildFrame(i)
			upBytes += len(msg.Video) + len(msg.VideoRight)
			res, err := sess.HandleFrame(msg)
			if err != nil {
				return row, err
			}
			if res.Tracked {
				row.Tracked++
			}
			pending = append(pending, pendingPose{
				frameIdx: i, pose: res.Pose, tracked: res.Tracked, dueStep: k + lagSteps,
			})
		}
		for len(pending) > 0 && pending[0].dueStep <= k {
			pp := pending[0]
			pending = pending[1:]
			dev.ApplyPose(pp.frameIdx, pp.pose, pp.tracked)
		}
	}
	// Poses still in flight when the run ends never reached the device:
	// the live trajectory already reflects that, so they are dropped.
	row.ATEcm = 100 * metrics.ATE(dev.LiveTrajectory(), truth(seq, nFrames, stride))
	virtualSec := float64(row.Steps) * framePeriod
	if virtualSec > 0 {
		row.UplinkMbps = float64(upBytes) * 8 / virtualSec / 1e6
	}
	return row, nil
}

// Offload sweeps the three offload modes across the Table 2 RTT range:
// per mode, the live-trajectory ATE, the uplink bitrate the mode
// needs, and how many frames the server tracked. Full and split track
// with the same accuracy — split trades the video stream for a
// descriptor upload, removing the codec and server extract stages
// from the critical path; shadow shows the dead-reckoning drift a
// session degrades to when the server cannot afford to track it.
func Offload(w io.Writer) ([]OffloadRow, error) {
	rtts := []int{0, 60, 167, 300}
	modes := []offload.Mode{offload.ModeFull, offload.ModeSplit, offload.ModeShadow}
	nFrames := scale(240)
	stride := 2
	var rows []OffloadRow
	for _, mode := range modes {
		for _, rtt := range rtts {
			if mode == offload.ModeShadow && rtt != 0 {
				// Shadow never waits on a pose, so RTT cannot change it.
				continue
			}
			row, err := offloadRun(mode, rtt, nFrames, stride)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	fmt.Fprintln(w, "Adaptive offloading: per-mode accuracy vs RTT (MH-04 stereo, single client)")
	printOffloadRows(w, rows)
	return rows, nil
}
