package exp

import (
	"fmt"
	"io"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/geom"
	"slamshare/internal/merge"
	"slamshare/internal/metrics"
	"slamshare/internal/server"
	"slamshare/internal/worldgen"
)

// TimelinePoint is one sample of the global-map-ATE-versus-time curve.
type TimelinePoint struct {
	T   float64
	ATE float64
}

// Fig10Result is the outcome of a multi-client merge timeline.
type Fig10Result struct {
	Series  []TimelinePoint
	Merges  []merge.Report
	MergeAt []float64 // virtual merge times per joining client
	// Final trajectories per client (estimate and ground truth), for
	// Fig. 10b.
	Est   map[string]metrics.Trajectory
	Truth map[string]metrics.Trajectory
	// FinalATE per client.
	FinalATE map[string]float64
}

// runTimeline drives the joining-clients scenario: each participant
// starts displaced into its own local frame (except the first, which
// founds the global frame); merges snap them together.
func runTimeline(srv *server.Server, parts []*Participant, framePeriod float64, steps int, sampleEvery int) (*Fig10Result, error) {
	res := &Fig10Result{
		Est:      map[string]metrics.Trajectory{},
		Truth:    map[string]metrics.Trajectory{},
		FinalATE: map[string]float64{},
	}
	r := &Runner{
		Srv:         srv,
		Parts:       parts,
		FramePeriod: framePeriod,
		OnStep: func(step int, vt float64) {
			if step%sampleEvery == 0 {
				res.Series = append(res.Series, TimelinePoint{T: vt, ATE: globalMapATE(srv, parts)})
			}
		},
	}
	r.Run(steps)
	res.Merges = srv.MergeReports()
	for _, p := range parts {
		if p.Merged {
			res.MergeAt = append(res.MergeAt, p.MergeAt)
		}
		res.Est[p.Name] = p.Dev.Trajectory()
		res.Truth[p.Name] = truth(p.Seq, p.frameIdx, p.Stride)
		res.FinalATE[p.Name] = metrics.ATE(res.Est[p.Name], res.Truth[p.Name])
	}
	return res, nil
}

// Fig10a reproduces the EuRoC three-client timeline: A founds the
// global map, B joins displaced at ~1/8 of the run, C joins displaced
// near the middle; the global-map ATE spikes while a fragment is
// unmerged and collapses after each merge.
func Fig10a(w io.Writer) (*Fig10Result, error) {
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	seqA := dataset.MH04(camera.Stereo)
	seqB := dataset.MH05(camera.Stereo)
	seqC := dataset.MH04(camera.Stereo) // C re-explores the hall later
	seqC.Seed += 991

	sessA, err := srv.OpenSession(1, seqA.Rig)
	if err != nil {
		return nil, err
	}
	sessB, err := srv.OpenSession(2, seqB.Rig)
	if err != nil {
		return nil, err
	}
	sessC, err := srv.OpenSession(3, seqC.Rig)
	if err != nil {
		return nil, err
	}

	stride := 2
	framePeriod := float64(stride) / seqA.FPS
	steps := scale(330)
	parts := []*Participant{
		{Name: "A", Dev: client.New(1, seqA), Sess: sessA, Seq: seqA, Stride: stride,
			LeaveStep: steps * 3 / 4}, // "after 40 seconds, user A stops"
		{Name: "B", Dev: client.NewDisplaced(2, seqB, 0.08, geom.Vec3{X: 0.5, Y: -0.35, Z: 0.1}),
			Sess: sessB, Seq: seqB, Stride: stride, JoinStep: steps / 8},
		{Name: "C", Dev: client.NewDisplaced(3, seqC, -0.1, geom.Vec3{X: -0.4, Y: 0.5, Z: -0.05}),
			Sess: sessC, Seq: seqC, Stride: stride, JoinStep: steps / 2},
	}
	res, err := runTimeline(srv, parts, framePeriod, steps, 4)
	if err != nil {
		return nil, err
	}
	printTimeline(w, "Fig 10a: cumulative global-map ATE vs time, 3 clients (EuRoC)", res)
	return res, nil
}

// Fig10b prints the final trajectories of the Fig. 10a scenario
// against ground truth.
func Fig10b(w io.Writer) (*Fig10Result, error) {
	res, err := Fig10a(io.Discard)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Fig 10b: final trajectories vs ground truth (sampled every 2 s)")
	tablef(w, "%-8s %-10s %-26s %-26s %-10s", "client", "t (s)", "estimate (x,y,z)", "truth (x,y,z)", "err (m)")
	for _, name := range []string{"A", "B", "C"} {
		est := res.Est[name]
		gt := res.Truth[name]
		for _, p := range est {
			if int(p.T*10)%20 != 0 { // every 2 s
				continue
			}
			tp, ok := gt.At(p.T)
			if !ok {
				continue
			}
			tablef(w, "%-8s %-10.1f (%7.2f,%7.2f,%6.2f)    (%7.2f,%7.2f,%6.2f)   %-10.3f",
				name, p.T, p.Pos.X, p.Pos.Y, p.Pos.Z, tp.X, tp.Y, tp.Z, p.Pos.Dist(tp))
		}
	}
	for _, name := range []string{"A", "B", "C"} {
		tablef(w, "client %s final ATE: %.3f m", name, res.FinalATE[name])
	}
	return res, nil
}

// Fig10c reproduces the vehicular timeline: KITTI-05 split into three
// per-client segments over the same streets, each joining displaced.
func Fig10c(w io.Writer) (*Fig10Result, error) {
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	full := dataset.KITTI05(camera.Stereo)
	stride := 2
	framePeriod := float64(stride) / full.FPS
	steps := scale(300)

	// Three vehicles covering overlapping stretches of the route
	// (the paper splits the full 92 s recording into thirds whose
	// boundaries adjoin; at reduced scale the segments must overlap
	// explicitly so each joining client's start lies on mapped road).
	segDur := float64(steps) * framePeriod
	var parts []*Participant
	for i := 0; i < 3; i++ {
		t0 := 0.45 * segDur * float64(i)
		seg := &dataset.Sequence{
			Name:      fmt.Sprintf("KITTI-05-v%d", i+1),
			World:     full.World,
			Traj:      &worldgen.SegmentTrajectory{Inner: full.Traj, T0: t0, T1: full.Duration()},
			Rig:       full.Rig,
			FPS:       full.FPS,
			IMURate:   full.IMURate,
			Noise:     full.Noise,
			RenderCfg: full.RenderCfg,
			Seed:      full.Seed + int64(i+1)*7919,
		}
		sess, err := srv.OpenSession(uint32(i+1), seg.Rig)
		if err != nil {
			return nil, err
		}
		var dev *client.Client
		if i == 0 {
			dev = client.New(uint32(i+1), seg)
		} else {
			dev = client.NewDisplaced(uint32(i+1), seg, 0.02*float64(i), geom.Vec3{X: 2 * float64(i), Y: -1.5})
		}
		parts = append(parts, &Participant{
			Name: fmt.Sprintf("K%d", i+1), Dev: dev, Sess: sess, Seq: seg,
			Stride: stride, JoinStep: i * steps / 3,
		})
	}
	res, err := runTimeline(srv, parts, framePeriod, steps, 4)
	if err != nil {
		return nil, err
	}
	printTimeline(w, "Fig 10c: cumulative global-map ATE vs time, 3 clients (KITTI-05)", res)
	return res, nil
}

func printTimeline(w io.Writer, title string, res *Fig10Result) {
	fmt.Fprintln(w, title)
	tablef(w, "%-10s %-12s", "t (s)", "ATE (m)")
	for _, p := range res.Series {
		tablef(w, "%-10.1f %-12.3f", p.T, p.ATE)
	}
	for i, m := range res.Merges {
		if m.Alignment == nil {
			tablef(w, "merge %d: founding insert (%d KFs) in %v", i+1, m.InsertKFs, m.Total.Round(time.Millisecond))
		} else {
			tablef(w, "merge %d: %d KFs aligned (%d inliers, %d fused) in %v", i+1,
				m.InsertKFs, m.Alignment.Inliers, m.FusedPts, m.Total.Round(time.Millisecond))
		}
	}
	for name, ate := range res.FinalATE {
		tablef(w, "client %s final ATE: %.3f m", name, ate)
	}
}
