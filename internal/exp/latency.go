package exp

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/geom"
	"slamshare/internal/obs"
	"slamshare/internal/server"
)

// LatencyRow is one stage of the end-to-end pipeline breakdown: the
// quantiles of that stage's latency histogram over a seeded run.
type LatencyRow struct {
	Stage string
	Count uint64
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
	// Share is this stage's percentage of the total frame.total time
	// (negative when frame.total was not recorded).
	Share float64
}

// latencyStageOrder lists the pipeline stages in processing order —
// the order Fig. 5/8 stack their bars. Stages absent from the registry
// are skipped; registered histograms not in this list are appended
// alphabetically.
var latencyStageOrder = []string{
	"client.encode",
	"decode",
	"track.queue",
	"track.extract",
	"track.match",
	"track.pose_predict",
	"track.search_local",
	"track.total",
	"mapping.keyframe",
	"mapping.local_ba",
	"merge.detect",
	"merge.align",
	"merge.insert",
	"merge.fuse",
	"merge.ba",
	"merge.total",
	"wal.append",
	"persist.checkpoint",
	"frame.total",
}

// LatencyRows extracts the per-stage breakdown from a registry in
// pipeline order.
func LatencyRows(reg *obs.Registry) []LatencyRow {
	names := reg.HistogramNames()
	present := make(map[string]bool, len(names))
	for _, n := range names {
		present[n] = true
	}
	ordered := make([]string, 0, len(names))
	for _, n := range latencyStageOrder {
		if present[n] {
			ordered = append(ordered, n)
			present[n] = false
		}
	}
	var extra []string
	for _, n := range names {
		if present[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	ordered = append(ordered, extra...)

	var frameSum time.Duration
	snaps := make(map[string]obs.HistogramSnapshot, len(ordered))
	for _, n := range ordered {
		s := reg.Histogram(n).Snapshot()
		snaps[n] = s
		if n == "frame.total" {
			frameSum = s.Sum
		}
	}
	rows := make([]LatencyRow, 0, len(ordered))
	for _, n := range ordered {
		s := snaps[n]
		if s.Count == 0 {
			continue
		}
		r := LatencyRow{
			Stage: n,
			Count: s.Count,
			P50:   s.Quantile(0.50),
			P90:   s.Quantile(0.90),
			P99:   s.Quantile(0.99),
			Max:   s.Max,
			Share: -1,
		}
		if frameSum > 0 {
			r.Share = 100 * float64(s.Sum) / float64(frameSum)
		}
		rows = append(rows, r)
	}
	return rows
}

// printLatencyRows renders the breakdown table. The format is covered
// by a byte-exact golden test, so changes here must update the golden.
func printLatencyRows(w io.Writer, rows []LatencyRow) {
	tablef(w, "%-20s %8s  %-11s %-11s %-11s %-11s %7s",
		"stage", "count", "p50", "p90", "p99", "max", "share")
	for _, r := range rows {
		share := "      -"
		if r.Share >= 0 {
			share = fmt.Sprintf("%6.1f%%", r.Share)
		}
		tablef(w, "%-20s %8d  %-11v %-11v %-11v %-11v %7s",
			r.Stage, r.Count,
			r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
			r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond),
			share)
	}
}

// Latency runs the two-client seeded scenario with the full pipeline
// instrumented (decode, tracking stages, mapping, merge, WAL,
// checkpoint) and prints the per-stage latency breakdown — the live
// counterpart of Figs. 5/8, read from the same histograms the
// -debug-addr endpoint serves.
func Latency(w io.Writer) ([]LatencyRow, error) {
	dir, err := os.MkdirTemp("", "slamshare-latency-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cfg := server.DefaultConfig()
	cfg.Persist.Dir = dir
	cfg.Persist.CheckpointEvery = -1 // checkpoint once, explicitly, below
	srv, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	seqA := dataset.MH04(camera.Stereo)
	seqB := dataset.MH05(camera.Stereo)
	sessA, err := srv.OpenSession(1, seqA.Rig)
	if err != nil {
		return nil, err
	}
	sessB, err := srv.OpenSession(2, seqB.Rig)
	if err != nil {
		return nil, err
	}
	devA := client.New(1, seqA)
	// B starts displaced so the run exercises the real merge path
	// (Fig. 7): its merge stages then appear in the breakdown.
	devB := client.NewDisplaced(2, seqB, 0.35, geom.Vec3{X: 1.5, Y: -0.8})
	devA.Obs = srv.Obs()
	devB.Obs = srv.Obs()

	stride := 2
	steps := scale(150)
	parts := []*Participant{
		{Name: "A", Dev: devA, Sess: sessA, Seq: seqA, Stride: stride},
		{Name: "B", Dev: devB, Sess: sessB, Seq: seqB, Stride: stride, JoinStep: steps / 10},
	}
	r := &Runner{Srv: srv, Parts: parts, FramePeriod: float64(stride) / seqA.FPS}
	r.Run(steps)

	// One explicit checkpoint so persist.checkpoint appears alongside
	// the wal.append spans the run already produced.
	if err := srv.Persist().CheckpointNow(); err != nil {
		return nil, err
	}

	rows := LatencyRows(srv.Obs().Registry())
	fmt.Fprintln(w, "Per-stage pipeline latency, 2 clients (MH04+MH05 stereo), quantiles over the run")
	printLatencyRows(w, rows)
	return rows, nil
}
