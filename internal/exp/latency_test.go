package exp

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/obs"
	"slamshare/internal/server"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestLatencyTableGolden locks the experiments-latency table format
// byte-for-byte: deterministic durations go into a registry, and the
// rendered table must match testdata/latency_golden.txt exactly.
// Regenerate with `go test ./internal/exp -run Golden -update` after a
// deliberate format change.
func TestLatencyTableGolden(t *testing.T) {
	reg := obs.NewRegistry()
	feed := func(stage string, ds ...time.Duration) {
		h := reg.Histogram(stage)
		for _, d := range ds {
			h.Observe(d)
		}
	}
	feed("frame.total", 10*time.Millisecond, 20*time.Millisecond, 30*time.Millisecond, 40*time.Millisecond)
	feed("decode", time.Millisecond, 2*time.Millisecond, 3*time.Millisecond, 4*time.Millisecond)
	feed("track.queue", 300*time.Microsecond, 500*time.Microsecond)
	feed("track.extract", 5*time.Millisecond, 5*time.Millisecond, 5*time.Millisecond, 5*time.Millisecond)
	feed("track.search_local", 700*time.Microsecond, 900*time.Microsecond)
	feed("track.total", 8*time.Millisecond, 16*time.Millisecond, 24*time.Millisecond, 32*time.Millisecond)
	feed("mapping.keyframe", 7*time.Millisecond)
	feed("wal.append", 100*time.Microsecond, 200*time.Microsecond)
	// A stage outside the pipeline order must append after the known
	// ones, alphabetically.
	feed("zz.custom", time.Millisecond)
	// Registered but never observed: must not appear at all.
	reg.Histogram("merge.total")

	var buf bytes.Buffer
	printLatencyRows(&buf, LatencyRows(reg))

	golden := filepath.Join("testdata", "latency_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("latency table drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestDebugEndpointLiveRun drives a short two-client run and scrapes
// the debug endpoint the way an operator would: the /debug/vars JSON
// must contain the pipeline's stage histograms, each with monotone
// quantiles, and /debug/spans must return well-formed span records.
func TestDebugEndpointLiveRun(t *testing.T) {
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	seqA := dataset.MH04(camera.Stereo)
	seqB := dataset.MH05(camera.Stereo)
	sessA, err := srv.OpenSession(1, seqA.Rig)
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := srv.OpenSession(2, seqB.Rig)
	if err != nil {
		t.Fatal(err)
	}
	devA := client.New(1, seqA)
	devB := client.New(2, seqB)
	devA.Obs = srv.Obs()
	devB.Obs = srv.Obs()
	stride := 3
	parts := []*Participant{
		{Name: "A", Dev: devA, Sess: sessA, Seq: seqA, Stride: stride},
		{Name: "B", Dev: devB, Sess: sessB, Seq: seqB, Stride: stride},
	}
	r := &Runner{Srv: srv, Parts: parts, FramePeriod: float64(stride) / seqA.FPS}
	r.Run(30)

	ts := httptest.NewServer(srv.DebugHandler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/vars: status %d", resp.StatusCode)
	}
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	wantStages := []string{
		"client.encode", "decode", "track.extract", "track.match",
		"track.search_local", "track.total", "frame.total",
	}
	for _, stage := range wantStages {
		h, ok := snap.Histograms[stage]
		if !ok {
			t.Errorf("histogram %q missing from /debug/vars", stage)
			continue
		}
		if h.Count == 0 {
			t.Errorf("histogram %q recorded no samples", stage)
		}
		if !(h.P50Ns <= h.P90Ns && h.P90Ns <= h.P99Ns && h.P99Ns <= h.MaxNs) {
			t.Errorf("histogram %q quantiles not monotone: p50=%d p90=%d p99=%d max=%d",
				stage, h.P50Ns, h.P90Ns, h.P99Ns, h.MaxNs)
		}
	}
	if n, ok := snap.Vars["sessions.open"]; !ok || n == nil {
		t.Errorf("sessions.open missing from vars: %v", snap.Vars)
	}

	resp2, err := ts.Client().Get(ts.URL + "/debug/spans?n=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var spanDoc struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&spanDoc); err != nil {
		t.Fatalf("/debug/spans: %v", err)
	}
	if len(spanDoc.Spans) == 0 {
		t.Fatal("no spans recorded after a 30-step two-client run")
	}
	for _, sp := range spanDoc.Spans {
		if sp.Stage == "" || sp.Dur < 0 {
			t.Errorf("malformed span: %+v", sp)
		}
	}
}
