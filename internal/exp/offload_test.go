package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"slamshare/internal/offload"
)

// TestOffloadTableGolden locks the experiments-offload table format
// byte-for-byte: deterministic rows go through the printer and the
// rendered table must match testdata/offload_golden.txt exactly.
// Regenerate with `go test ./internal/exp -run Golden -update` after a
// deliberate format change.
func TestOffloadTableGolden(t *testing.T) {
	rows := []OffloadRow{
		{Mode: "full", RTTms: 0, ATEcm: 3.21, UplinkMbps: 14.70, Tracked: 118, Steps: 120},
		{Mode: "full", RTTms: 167, ATEcm: 9.85, UplinkMbps: 14.70, Tracked: 118, Steps: 120},
		{Mode: "split", RTTms: 0, ATEcm: 3.21, UplinkMbps: 1.62, Tracked: 118, Steps: 120},
		{Mode: "split", RTTms: 167, ATEcm: 9.85, UplinkMbps: 1.62, Tracked: 118, Steps: 120},
		{Mode: "shadow", RTTms: 0, ATEcm: 41.07, UplinkMbps: 0.03, Tracked: 0, Steps: 120},
	}
	var buf bytes.Buffer
	printOffloadRows(&buf, rows)

	golden := filepath.Join("testdata", "offload_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("offload table drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestOffloadRunModes smoke-tests the sweep's per-mode physics on a
// short run: split tracks like full on a far lighter uplink, and
// shadow sends almost nothing, tracks nothing, and drifts the most.
func TestOffloadRunModes(t *testing.T) {
	if testing.Short() {
		t.Skip("system test")
	}
	const n, stride = 80, 2
	full, err := offloadRun(offload.ModeFull, 0, n, stride)
	if err != nil {
		t.Fatal(err)
	}
	split, err := offloadRun(offload.ModeSplit, 0, n, stride)
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := offloadRun(offload.ModeShadow, 0, n, stride)
	if err != nil {
		t.Fatal(err)
	}
	if full.Tracked == 0 || split.Tracked == 0 {
		t.Fatalf("no tracking: full %d, split %d", full.Tracked, split.Tracked)
	}
	if shadow.Tracked != 0 {
		t.Errorf("shadow mode tracked %d frames", shadow.Tracked)
	}
	// Split's uplink is descriptor-dominated (84 bytes per keypoint) —
	// in the same ballpark as video, not radically lighter; its win is
	// the removed encode/decode/extract stages. Shadow's sync pings
	// must be negligible next to either.
	if shadow.UplinkMbps >= split.UplinkMbps/10 || shadow.UplinkMbps >= full.UplinkMbps/10 {
		t.Errorf("shadow uplink %.2f Mbit/s not well below split %.2f / full %.2f",
			shadow.UplinkMbps, split.UplinkMbps, full.UplinkMbps)
	}
	if shadow.ATEcm <= full.ATEcm {
		t.Errorf("dead-reckoning ATE %.2f cm not above full offload %.2f",
			shadow.ATEcm, full.ATEcm)
	}
}
