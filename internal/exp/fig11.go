package exp

import (
	"fmt"
	"io"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/geom"
	"slamshare/internal/server"
)

// Fig11Result reports the hologram positions perceived by each user.
type Fig11Result struct {
	Truth        geom.Vec3 // where B actually placed the hologram
	BPerceived   geom.Vec3 // B's estimate of the hologram position
	CNoSharing   geom.Vec3 // C's estimate without map merging
	CWithSharing geom.Vec3 // C's estimate with SLAM-Share
	ErrNoShare   float64
	ErrShare     float64
	ErrB         float64
}

// Fig11 reproduces the hologram-consistency experiment: user B places
// a hologram 2 m in front of itself mid-run; user C, whose map frame
// is displaced from B's, later views it. Without merging, C interprets
// the hologram coordinates in its own frame and misplaces it by the
// inter-origin offset; with SLAM-Share the merge aligns the frames and
// both users agree to within the tracking error.
func Fig11(w io.Writer) (*Fig11Result, error) {
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	seqB := dataset.MH04(camera.Stereo)
	seqC := dataset.MH05(camera.Stereo)
	sessB, err := srv.OpenSession(1, seqB.Rig)
	if err != nil {
		return nil, err
	}
	sessC, err := srv.OpenSession(2, seqC.Rig)
	if err != nil {
		return nil, err
	}
	devB := client.New(1, seqB)
	// C's local frame is displaced by ~6.9 m, the paper's observed
	// inter-origin error.
	displacement := geom.SE3{
		R: geom.QuatFromAxisAngle(geom.Vec3{Z: 1}, 0.4),
		T: geom.Vec3{X: 5.5, Y: -4.2, Z: 0.0},
	}
	devC := client.NewDisplaced(2, seqC, 0.4, displacement.T)

	res := &Fig11Result{}
	n := scale(200)
	placeAt := n / 3
	var hologramShared geom.Vec3 // the only information exchanged
	for i := 0; i < n; i += 2 {
		rb, err := sessB.HandleFrame(devB.BuildFrame(i))
		if err != nil {
			return nil, err
		}
		devB.ApplyPose(i, rb.Pose, rb.Tracked)
		rc, err := sessC.HandleFrame(devC.BuildFrame(i))
		if err != nil {
			return nil, err
		}
		devC.ApplyPose(i, rc.Pose, rc.Tracked)

		if i == placeAt || (i == placeAt+1) && hologramShared.Norm() == 0 {
			// B places a hologram 2 m ahead of its current estimated
			// pose. The true position uses ground truth; B's shared
			// coordinates use its estimate (they differ by B's ATE).
			bodyTrue := seqB.GroundTruth(i)
			res.Truth = bodyTrue.Apply(geom.Vec3{Z: 2})
			est := rb.Pose.Inverse()
			hologramShared = est.Apply(geom.Vec3{Z: 2})
			res.BPerceived = hologramShared
		}
	}
	// Without sharing, C assumes its own origin coincides with B's:
	// the coordinates land in C's displaced frame.
	res.CNoSharing = displacement.Apply(hologramShared)
	// With SLAM-Share, C's frame was merged into the global frame, so
	// the shared coordinates are directly valid in C's corrected frame.
	res.CWithSharing = hologramShared

	res.ErrB = res.BPerceived.Dist(res.Truth)
	res.ErrNoShare = res.CNoSharing.Dist(res.Truth)
	res.ErrShare = res.CWithSharing.Dist(res.Truth)

	fmt.Fprintln(w, "Fig 11: hologram position as perceived by each user")
	tablef(w, "%-28s (%7.2f, %7.2f, %7.2f)", "ground truth", res.Truth.X, res.Truth.Y, res.Truth.Z)
	tablef(w, "%-28s (%7.2f, %7.2f, %7.2f)  err %.3f m", "user B (placer)",
		res.BPerceived.X, res.BPerceived.Y, res.BPerceived.Z, res.ErrB)
	tablef(w, "%-28s (%7.2f, %7.2f, %7.2f)  err %.3f m", "user C without sharing",
		res.CNoSharing.X, res.CNoSharing.Y, res.CNoSharing.Z, res.ErrNoShare)
	tablef(w, "%-28s (%7.2f, %7.2f, %7.2f)  err %.3f m", "user C with SLAM-Share",
		res.CWithSharing.X, res.CWithSharing.Y, res.CWithSharing.Z, res.ErrShare)
	return res, nil
}
