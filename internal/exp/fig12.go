package exp

import (
	"fmt"
	"io"
	"time"

	"slamshare/internal/baseline"
	"slamshare/internal/bow"
	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/mapping"
	"slamshare/internal/metrics"
	"slamshare/internal/server"
	"slamshare/internal/smap"
	"slamshare/internal/tracking"
)

// Fig12Series is a labelled ATE-versus-time curve.
type Fig12Series struct {
	Label  string
	Points []TimelinePoint
	Missed int // baseline: server updates missed
}

// runSlamShareB runs the two-client scenario of Fig. 10b from user B's
// perspective under the given link and returns B's trajectory plus
// ground truth.
func runSlamShareB(link Link, steps, stride int) (metrics.Trajectory, metrics.Trajectory, error) {
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	defer srv.Close()
	seqA := dataset.MH04(camera.Stereo)
	seqB := dataset.MH05(camera.Stereo)
	sessA, err := srv.OpenSession(1, seqA.Rig)
	if err != nil {
		return nil, nil, err
	}
	sessB, err := srv.OpenSession(2, seqB.Rig)
	if err != nil {
		return nil, nil, err
	}
	devA := client.New(1, seqA)
	// B is not displaced here: Fig. 12 isolates network effects, and
	// the baseline client it is compared against also starts in the
	// world frame (the merge dynamics live in Fig. 10).
	devB := client.New(2, seqB)
	parts := []*Participant{
		{Name: "A", Dev: devA, Sess: sessA, Seq: seqA, Stride: stride, Link: link},
		{Name: "B", Dev: devB, Sess: sessB, Seq: seqB, Stride: stride, JoinStep: steps / 8, Link: link},
	}
	r := &Runner{Srv: srv, Parts: parts, FramePeriod: float64(stride) / seqA.FPS}
	r.Run(steps)
	nB := parts[1].frameIdx
	// Short-term/cumulative curves reflect the experienced trajectory.
	return devB.LiveTrajectory(), truth(seqB, nB, stride), nil
}

// Fig12a reproduces the cumulative-ATE-under-network-conditions study:
// SLAM-Share under no constraint, +300 ms delay, 18.7 and 9.4 Mbit/s
// caps, against single-user ORB-SLAM3 on the same trajectory.
func Fig12a(w io.Writer) ([]Fig12Series, error) {
	stride := 2
	steps := scale(270)
	conds := []struct {
		label string
		link  Link
	}{
		{"SLAM-Share (no constraint)", Link{}},
		{"SLAM-Share (+300 ms delay)", Link{DelaySec: 0.15}},
		{"SLAM-Share (18.7 Mbit/s)", Link{UplinkBps: 18.7e6}},
		{"SLAM-Share (9.4 Mbit/s)", Link{UplinkBps: 9.4e6}},
	}
	var out []Fig12Series
	for _, c := range conds {
		est, gt, err := runSlamShareB(c.link, steps, stride)
		if err != nil {
			return nil, err
		}
		s := Fig12Series{Label: c.label}
		for _, p := range metrics.CumulativeSeries(est, gt, 1) {
			s.Points = append(s.Points, TimelinePoint{T: p.T, ATE: p.ATE})
		}
		out = append(out, s)
	}
	// Single-user vanilla ORB-SLAM3 (tracker+mapper, no offload).
	est, gt := singleUserORBSLAM(dataset.MH05(camera.Stereo), steps*stride, stride)
	s := Fig12Series{Label: "ORB-SLAM3 (single user)"}
	for _, p := range metrics.CumulativeSeries(est, gt, 1) {
		s.Points = append(s.Points, TimelinePoint{T: p.T, ATE: p.ATE})
	}
	out = append(out, s)

	fmt.Fprintln(w, "Fig 12a: cumulative ATE of user B (MH05) under network conditions")
	printSeries(w, out)
	return out, nil
}

// singleUserORBSLAM runs the plain tracker/mapper (the paper's
// "vanilla ORB-SLAM3" comparison line).
func singleUserORBSLAM(seq *dataset.Sequence, nFrames, stride int) (metrics.Trajectory, metrics.Trajectory) {
	m := smap.NewMap(bow.Default())
	alloc := smap.NewIDAllocator(1)
	tr := tracking.New(m, seq.Rig, feature.NewExtractor(feature.DefaultConfig()), alloc, 1, tracking.DefaultConfig())
	mp := mapping.New(m, seq.Rig, alloc, 1, mapping.DefaultConfig())
	var est metrics.Trajectory
	for i := 0; i < nFrames && i < seq.FrameCount(); i += stride {
		left, right := seq.StereoFrame(i)
		var prior *geom.SE3
		if i == 0 {
			p := seq.GroundTruth(i).Inverse()
			prior = &p
		}
		res := tr.ProcessFrame(left, right, seq.FrameTime(i), prior)
		if res.State == tracking.OK {
			est.Append(seq.FrameTime(i), res.Pose.Inverse().T)
		}
		if res.NewKF != nil {
			mp.ProcessKeyFrame(res.NewKF)
		}
	}
	return est, truth(seq, nFrames, stride)
}

// runBaselineB runs the baseline system from user B's perspective:
// full local SLAM on a constrained device, serialized map exchanges
// whose round-trip latency (in virtual time) comes from the link.
// Updates whose round would overlap the next one are missed, as in
// Fig. 12c's 38%-missed observation.
func runBaselineB(link Link, steps, stride int) (metrics.Trajectory, metrics.Trajectory, int, error) {
	cfg := baseline.DefaultConfig()
	cfg.HoldDownFrames = 120
	seqA := dataset.MH04(camera.Stereo)
	seqB := dataset.MH05(camera.Stereo)
	bsrv := baseline.NewServer(cfg, seqA.Rig.Intr)
	bclA := baseline.NewClient(1, seqA, cfg)
	bclB := baseline.NewClient(2, seqB, cfg)

	framePeriod := float64(stride) / seqA.FPS
	missed := 0
	// inFlightUntil: virtual time when B's current exchange completes.
	inFlightUntil := -1.0
	var pendingPortion []byte
	var pendingAlign geom.Sim3

	bps := link.UplinkBps
	if bps <= 0 {
		bps = 1e9
	}
	for s := 0; s < steps; s++ {
		vt := float64(s) * framePeriod
		i := s * stride
		// Deliver a completed exchange.
		if pendingPortion != nil && vt >= inFlightUntil {
			if _, err := bclB.Integrate(pendingPortion, pendingAlign); err != nil {
				return nil, nil, 0, err
			}
			pendingPortion = nil
		}
		for _, cl := range []*baseline.Client{bclA, bclB} {
			if !cl.CanProcess(i) {
				continue
			}
			st := cl.Step(i)
			if st.Upload == nil {
				continue
			}
			if cl == bclA {
				// A's rounds proceed out of band (they contend for the
				// same link in reality; modelled independently).
				portion, align, _, err := bsrv.HandleUpload(st.Upload)
				if err == nil {
					_, _ = bclA.Integrate(portion, align)
				}
				continue
			}
			// B's round: if the previous exchange is still in flight,
			// this update is missed entirely.
			if pendingPortion != nil || vt < inFlightUntil {
				missed++
				continue
			}
			portion, align, srvRep, err := bsrv.HandleUpload(st.Upload)
			if err != nil {
				missed++
				continue
			}
			xfer := float64(srvRep.UploadBytes+srvRep.ReturnBytes) * 8 / bps
			rtt := 2 * link.DelaySec
			inFlightUntil = vt + xfer + rtt +
				(srvRep.Deserialize + srvRep.Merge + srvRep.DataProc).Seconds()
			pendingPortion = portion
			pendingAlign = align
		}
	}
	nB := steps * stride
	return bclB.Trajectory(), truth(seqB, nB, stride), missed, nil
}

// Fig12b compares short-term ATE under +300 ms delay: baseline versus
// SLAM-Share.
func Fig12b(w io.Writer) ([]Fig12Series, error) {
	return fig12ShortTerm(w, "Fig 12b: short-term ATE under +300 ms delay",
		[]struct {
			label    string
			link     Link
			baseline bool
		}{
			{"Baseline (no delay)", Link{}, true},
			{"Baseline (+300 ms)", Link{DelaySec: 0.15}, true},
			{"SLAM-Share (no delay)", Link{}, false},
			{"SLAM-Share (+300 ms)", Link{DelaySec: 0.15}, false},
		})
}

// Fig12c compares short-term ATE under bandwidth caps.
func Fig12c(w io.Writer) ([]Fig12Series, error) {
	return fig12ShortTerm(w, "Fig 12c: short-term ATE under bandwidth caps",
		[]struct {
			label    string
			link     Link
			baseline bool
		}{
			{"Baseline (18.7 Mbit/s)", Link{UplinkBps: 18.7e6}, true},
			{"Baseline (9.4 Mbit/s)", Link{UplinkBps: 9.4e6}, true},
			{"SLAM-Share (18.7 Mbit/s)", Link{UplinkBps: 18.7e6}, false},
			{"SLAM-Share (9.4 Mbit/s)", Link{UplinkBps: 9.4e6}, false},
		})
}

func fig12ShortTerm(w io.Writer, title string, conds []struct {
	label    string
	link     Link
	baseline bool
}) ([]Fig12Series, error) {
	stride := 2
	steps := scale(270)
	var out []Fig12Series
	for _, c := range conds {
		var est, gt metrics.Trajectory
		var missed int
		var err error
		if c.baseline {
			est, gt, missed, err = runBaselineB(c.link, steps, stride)
		} else {
			est, gt, err = runSlamShareB(c.link, steps, stride)
		}
		if err != nil {
			return nil, err
		}
		s := Fig12Series{Label: c.label, Missed: missed}
		// Short-term window scaled to the quick runs (the paper uses
		// 5 s on minute-long trajectories).
		for _, p := range metrics.ShortTermSeries(est, gt, 1, 3) {
			s.Points = append(s.Points, TimelinePoint{T: p.T, ATE: p.ATE})
		}
		out = append(out, s)
	}
	fmt.Fprintln(w, title)
	printSeries(w, out)
	return out, nil
}

func printSeries(w io.Writer, series []Fig12Series) {
	for _, s := range series {
		var peak, sum float64
		for _, p := range s.Points {
			sum += p.ATE
			if p.ATE > peak {
				peak = p.ATE
			}
		}
		mean := 0.0
		if len(s.Points) > 0 {
			mean = sum / float64(len(s.Points))
		}
		extra := ""
		if s.Missed > 0 {
			extra = fmt.Sprintf("  (missed %d updates)", s.Missed)
		}
		tablef(w, "%-34s mean %.3f m, peak %.3f m%s", s.Label, mean, peak, extra)
		for _, p := range s.Points {
			tablef(w, "    t=%5.1f  ATE=%.3f", p.T, p.ATE)
		}
	}
	_ = time.Second
}
