package exp

import (
	"fmt"
	"io"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/metrics"
	"slamshare/internal/server"
	"slamshare/internal/video"
)

// Table2Row is one row of Table 2: ATE under a given RTT with
// IMU-compensated client tracking.
type Table2Row struct {
	RTTms       int
	WholeATEcm  map[string]float64 // per sequence
	RegionATEcm map[string]float64
}

// Table2 reproduces the IMU-assisted accuracy-versus-RTT study: the
// server's pose answers arrive RTT late; the client bridges the gap
// with Algorithm 1. ATE is measured over the whole run and over a
// "small map region" around a sharp turn (the paper's stress segment).
func Table2(w io.Writer) ([]Table2Row, error) {
	rtts := []int{0, 30, 60, 90, 167, 200, 300, 1000}
	seqs := []struct {
		name string
		mk   func() *dataset.Sequence
	}{
		{"KITTI-00 Stereo", func() *dataset.Sequence { return dataset.KITTI00(camera.Stereo) }},
		{"MH-05 Mono", func() *dataset.Sequence { return dataset.MH05(camera.Mono) }},
	}
	nFrames := scale(360)
	stride := 2
	rows := make([]Table2Row, len(rtts))
	for ri, rtt := range rtts {
		rows[ri] = Table2Row{
			RTTms:       rtt,
			WholeATEcm:  map[string]float64{},
			RegionATEcm: map[string]float64{},
		}
		for _, sc := range seqs {
			seq := sc.mk()
			srv, err := server.New(server.DefaultConfig())
			if err != nil {
				return nil, err
			}
			sess, err := srv.OpenSession(1, seq.Rig)
			if err != nil {
				srv.Close()
				return nil, err
			}
			dev := client.New(1, seq)
			framePeriod := float64(stride) / seq.FPS
			r := &Runner{
				Srv:         srv,
				FramePeriod: framePeriod,
				Parts: []*Participant{{
					Name: sc.name, Dev: dev, Sess: sess, Seq: seq, Stride: stride,
					Link: Link{DelaySec: float64(rtt) / 2000},
				}},
			}
			r.Run(nFrames / stride)
			gt := truth(seq, nFrames, stride)
			// The paper's Table 2 measures the experienced accuracy as
			// RTT grows: use the live (uncorrected-in-hindsight)
			// trajectory.
			est := dev.LiveTrajectory()
			rows[ri].WholeATEcm[sc.name] = 100 * metrics.ATE(est, gt)
			// "Small map region": the middle third of the run, which
			// crosses the trajectory's sharpest turn.
			t0 := seq.FrameTime(nFrames / 3)
			t1 := seq.FrameTime(2 * nFrames / 3)
			rows[ri].RegionATEcm[sc.name] = 100 * metrics.ATEWindow(est, gt, t0, t1)
			srv.Close()
		}
	}
	fmt.Fprintln(w, "Table 2: IMU-compensated accuracy vs RTT (ATE RMSE, cm)")
	tablef(w, "%-10s %-18s %-14s %-20s %-14s", "RTT (ms)",
		"Whole KITTI-00", "Whole MH-05", "Region KITTI-00", "Region MH-05")
	for _, r := range rows {
		tablef(w, "%-10d %-18.2f %-14.2f %-20.2f %-14.2f", r.RTTms,
			r.WholeATEcm["KITTI-00 Stereo"], r.WholeATEcm["MH-05 Mono"],
			r.RegionATEcm["KITTI-00 Stereo"], r.RegionATEcm["MH-05 Mono"])
	}
	return rows, nil
}

// Table3Row is one column pair of Table 3.
type Table3Row struct {
	Sequence      string
	ImageMbps     float64
	VideoMbps     float64
	EncodeMs      float64
	DecodeMs      float64
	ImageDecodeMs float64
	ATEImage      float64 // metres, tracking over raw/image-coded frames
	ATEVideo      float64 // metres, tracking over decoded video frames
}

// Table3 compares image transfer against SLAM-Share's video transfer:
// bitrate at 30 FPS, codec latencies, and the resulting ATE.
func Table3(w io.Writer) ([]Table3Row, error) {
	seqs := []struct {
		name string
		mk   func() *dataset.Sequence
	}{
		{"KITTI-00 Stereo", func() *dataset.Sequence { return dataset.KITTI00(camera.Stereo) }},
		{"MH-05 Mono", func() *dataset.Sequence { return dataset.MH05(camera.Mono) }},
	}
	n := scale(90)
	var rows []Table3Row
	for _, sc := range seqs {
		seq := sc.mk()
		row := Table3Row{Sequence: sc.name}
		enc := video.NewEncoder()
		encR := video.NewEncoder()
		dec := video.NewDecoder()
		var vidBytes, imgBytes int
		var encDur, decDur, imgDecDur time.Duration
		frames := 0
		for i := 0; i < n; i++ {
			left, right := seq.StereoFrame(i)
			t0 := time.Now()
			payload := enc.Encode(left)
			var payloadR []byte
			if right != nil {
				payloadR = encR.Encode(right)
			}
			encDur += time.Since(t0)
			vidBytes += len(payload) + len(payloadR)
			t1 := time.Now()
			if _, err := dec.Decode(payload); err != nil {
				return nil, err
			}
			decDur += time.Since(t1)
			ib := video.EncodeImage(left)
			imgBytes += len(ib)
			if right != nil {
				imgBytes += len(video.EncodeImage(right))
			}
			t2 := time.Now()
			if _, err := video.DecodeImage(ib); err != nil {
				return nil, err
			}
			imgDecDur += time.Since(t2)
			frames++
		}
		row.ImageMbps = video.StreamStats{Frames: frames, TotalBytes: imgBytes}.BitrateMbps(seq.FPS)
		row.VideoMbps = video.StreamStats{Frames: frames, TotalBytes: vidBytes}.BitrateMbps(seq.FPS)
		row.EncodeMs = float64(encDur.Milliseconds()) / float64(frames)
		row.DecodeMs = float64(decDur.Milliseconds()) / float64(frames)
		row.ImageDecodeMs = float64(imgDecDur.Milliseconds()) / float64(frames)

		// ATE: run the end-to-end system (which uses the video codec) —
		// the image path feeds identical pixels, so its ATE comes from
		// a lossless-image lockstep run.
		row.ATEVideo = trackingATE(sc.mk(), n, true)
		row.ATEImage = trackingATE(sc.mk(), n, false)
		rows = append(rows, row)
	}
	fmt.Fprintln(w, "Table 3: video vs image transfer (30 FPS)")
	tablef(w, "%-18s %-14s %-14s %-12s %-12s %-12s %-12s", "sequence",
		"img Mbit/s", "vid Mbit/s", "enc ms", "dec ms", "ATE img m", "ATE vid m")
	for _, r := range rows {
		tablef(w, "%-18s %-14.2f %-14.2f %-12.2f %-12.2f %-12.3f %-12.3f",
			r.Sequence, r.ImageMbps, r.VideoMbps, r.EncodeMs, r.DecodeMs, r.ATEImage, r.ATEVideo)
	}
	return rows, nil
}

// trackingATE runs a single-client lockstep and returns the ATE; when
// useVideo is false the client-to-server path carries lossless images
// (an encoder with an infinite intra interval degenerates to exactly
// the image codec).
func trackingATE(seq *dataset.Sequence, n int, useVideo bool) float64 {
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		return -1
	}
	defer srv.Close()
	sess, err := srv.OpenSession(1, seq.Rig)
	if err != nil {
		return -1
	}
	dev := client.New(1, seq)
	if !useVideo {
		dev.UseImageTransfer()
	}
	stride := 2
	r := &Runner{
		Srv:         srv,
		FramePeriod: float64(stride) / seq.FPS,
		Parts: []*Participant{{
			Dev: dev, Sess: sess, Seq: seq, Stride: stride,
		}},
	}
	r.Run(n / stride)
	return metrics.ATE(dev.Trajectory(), truth(seq, n, stride))
}
