package exp

import (
	"io"
	"math"
	"testing"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/server"
)

func init() { Quick = true }

func TestLinkRTTFrames(t *testing.T) {
	if (Link{}).RTTFrames(0.033) != 0 {
		t.Error("zero delay should give zero lag")
	}
	// 150 ms each way at 30 FPS = ceil(0.3/0.0333) = 10 frames.
	if got := (Link{DelaySec: 0.15}).RTTFrames(1.0 / 30); got != 9 && got != 10 {
		t.Errorf("RTTFrames = %d", got)
	}
}

func TestScaleQuick(t *testing.T) {
	if s := scale(300); s != 100 {
		t.Errorf("scale(300) = %d in quick mode", s)
	}
	if s := scale(60); s != 30 {
		t.Errorf("scale floor = %d", s)
	}
}

func TestAllIDsRun(t *testing.T) {
	if len(All()) != 18 {
		t.Errorf("experiment count = %d", len(All()))
	}
	if err := Run(io.Discard, "nope", false); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunnerDeliversDelayedPoses(t *testing.T) {
	if testing.Short() {
		t.Skip("system test")
	}
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	seq := dataset.V202(camera.Stereo)
	sess, err := srv.OpenSession(1, seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	dev := client.New(1, seq)
	p := &Participant{
		Dev: dev, Sess: sess, Seq: seq, Stride: 2,
		Link: Link{DelaySec: 0.2}, // 0.4 s RTT = 6 steps at 15 FPS
	}
	r := &Runner{Srv: srv, Parts: []*Participant{p}, FramePeriod: 2.0 / 30}
	r.Run(30)
	if p.Steps != 30 {
		t.Errorf("steps = %d", p.Steps)
	}
	if len(p.pending) != 0 {
		t.Error("pending poses not flushed at end of run")
	}
	// The corrected (hindsight) trajectory should be accurate even
	// though answers arrived late.
	est := dev.Trajectory()
	gt := truth(seq, 60, 2)
	if len(est) == 0 {
		t.Fatal("no trajectory")
	}
	sum := 0.0
	for _, pt := range est {
		g, _ := gt.At(pt.T)
		sum += pt.Pos.Dist(g)
	}
	if mean := sum / float64(len(est)); math.IsNaN(mean) || mean > 0.5 {
		t.Errorf("mean error %.3f m with delayed poses", mean)
	}
}

func TestRunnerBandwidthDropsFrames(t *testing.T) {
	if testing.Short() {
		t.Skip("system test")
	}
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	seq := dataset.V202(camera.Stereo)
	sess, err := srv.OpenSession(1, seq.Rig)
	if err != nil {
		t.Fatal(err)
	}
	dev := client.New(1, seq)
	// A 1 Mbit/s cap cannot carry ~45 KB stereo frames at 15 FPS.
	p := &Participant{
		Dev: dev, Sess: sess, Seq: seq, Stride: 2,
		Link: Link{UplinkBps: 1e6},
	}
	r := &Runner{Srv: srv, Parts: []*Participant{p}, FramePeriod: 2.0 / 30}
	r.Run(30)
	if p.Dropped == 0 {
		t.Error("starved uplink dropped no frames")
	}
}
