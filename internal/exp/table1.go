package exp

import (
	"fmt"
	"io"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/server"
	"slamshare/internal/wire"
)

// Table1Row is one row of Table 1: map size versus keyframe count on
// MH04.
type Table1Row struct {
	KeyFrames int
	MapPoints int
	SizeMB    float64
}

// Table1 runs a single client over MH04 and snapshots the map's
// serialized size at the paper's keyframe counts. full extends the run
// toward the paper's 210-keyframe final row (expensive).
func Table1(w io.Writer, full bool) ([]Table1Row, error) {
	seq := dataset.MH04(camera.Stereo)
	srv, err := server.New(server.DefaultConfig())
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	sess, err := srv.OpenSession(1, seq.Rig)
	if err != nil {
		return nil, err
	}
	dev := client.New(1, seq)

	checkpoints := []int{10, 20, 30, 40, 50}
	if full {
		checkpoints = append(checkpoints, 210)
	}
	var rows []Table1Row
	next := 0
	stride := 2
	maxFrames := seq.FrameCount()
	if !full {
		maxFrames = scale(1600)
	}
	for i := 0; i < maxFrames && next < len(checkpoints); i += stride {
		res, err := sess.HandleFrame(dev.BuildFrame(i))
		if err != nil {
			return nil, err
		}
		dev.ApplyPose(i, res.Pose, res.Tracked)
		g := srv.Global()
		if g.NKeyFrames() >= checkpoints[next] {
			rows = append(rows, Table1Row{
				KeyFrames: g.NKeyFrames(),
				MapPoints: g.NMapPoints(),
				SizeMB:    float64(wire.MapSize(g)) / (1 << 20),
			})
			next++
		}
	}
	fmt.Fprintln(w, "Table 1: EuRoC MH04 map size vs keyframes")
	tablef(w, "%-18s %-18s %-18s", "No. of Keyframes", "No. of Mappoints", "Map Size (MBytes)")
	for _, r := range rows {
		tablef(w, "%-18d %-18d %-18.2f", r.KeyFrames, r.MapPoints, r.SizeMB)
	}
	return rows, nil
}
