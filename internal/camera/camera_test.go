package camera

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"slamshare/internal/geom"
)

func TestProjectBackprojectRoundTrip(t *testing.T) {
	in := EuRoCIntrinsics()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		z := 0.5 + rng.Float64()*20
		px := geom.Vec2{
			X: rng.Float64() * float64(in.Width),
			Y: rng.Float64() * float64(in.Height),
		}
		p := in.Backproject(px, z)
		got, ok := in.Project(p)
		if !ok {
			t.Fatalf("backprojected point did not project: %v", p)
		}
		if got.Sub(px).Norm() > 1e-9 {
			t.Fatalf("round trip %v -> %v", px, got)
		}
	}
}

func TestProjectRejectsBehindCamera(t *testing.T) {
	in := EuRoCIntrinsics()
	if _, ok := in.Project(geom.Vec3{X: 0, Y: 0, Z: -1}); ok {
		t.Error("point behind camera projected")
	}
	if _, ok := in.Project(geom.Vec3{X: 0, Y: 0, Z: 0.001}); ok {
		t.Error("point at near plane projected")
	}
}

func TestProjectRejectsOutOfBounds(t *testing.T) {
	in := EuRoCIntrinsics()
	// A point far to the side at shallow depth lands outside the image.
	if _, ok := in.Project(geom.Vec3{X: 10, Y: 0, Z: 1}); ok {
		t.Error("out-of-bounds point accepted")
	}
}

func TestRayUnitLength(t *testing.T) {
	in := KITTIIntrinsics()
	f := func(u, v float64) bool {
		px := geom.Vec2{X: math.Mod(math.Abs(u), float64(in.Width)), Y: math.Mod(math.Abs(v), float64(in.Height))}
		r := in.Ray(px)
		return math.Abs(r.Norm()-1) < 1e-12 && r.Z > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStereoDisparityRoundTrip(t *testing.T) {
	rig := NewStereoRig(KITTIIntrinsics(), 0.54)
	for _, z := range []float64{1, 5, 10, 50} {
		d := rig.DisparityAtDepth(z)
		if got := rig.DepthFromDisparity(d); math.Abs(got-z) > 1e-9 {
			t.Errorf("depth %v -> disparity %v -> %v", z, d, got)
		}
	}
	if rig.DepthFromDisparity(0) != 0 {
		t.Error("zero disparity must map to zero depth")
	}
	if rig.DepthFromDisparity(-3) != 0 {
		t.Error("negative disparity must map to zero depth")
	}
	mono := NewMonoRig(KITTIIntrinsics())
	if mono.DepthFromDisparity(10) != 0 {
		t.Error("mono rig must not report stereo depth")
	}
}

func TestWorldToPixel(t *testing.T) {
	rig := NewMonoRig(EuRoCIntrinsics())
	// Camera at origin looking down +Z; point straight ahead lands on
	// the principal point.
	tcw := geom.IdentitySE3()
	px, ok := rig.WorldToPixel(tcw, geom.Vec3{X: 0, Y: 0, Z: 5})
	if !ok {
		t.Fatal("center point not visible")
	}
	if math.Abs(px.X-rig.Intr.Cx) > 1e-9 || math.Abs(px.Y-rig.Intr.Cy) > 1e-9 {
		t.Errorf("center projected to %v", px)
	}
}

func TestFrustumCheck(t *testing.T) {
	rig := NewMonoRig(EuRoCIntrinsics())
	tcw := geom.IdentitySE3()
	if !rig.FrustumCheck(tcw, geom.Vec3{X: 0, Y: 0, Z: 5}, 0.1, 100) {
		t.Error("visible point rejected")
	}
	if rig.FrustumCheck(tcw, geom.Vec3{X: 0, Y: 0, Z: 500}, 0.1, 100) {
		t.Error("too-far point accepted")
	}
	if rig.FrustumCheck(tcw, geom.Vec3{X: 0, Y: 0, Z: 0.01}, 0.1, 100) {
		t.Error("too-near point accepted")
	}
	if rig.FrustumCheck(tcw, geom.Vec3{X: 0, Y: 0, Z: -5}, 0.1, 100) {
		t.Error("behind-camera point accepted")
	}
}

func TestInBounds(t *testing.T) {
	in := TUMIntrinsics()
	if !in.InBounds(geom.Vec2{X: 320, Y: 240}, 16) {
		t.Error("center rejected")
	}
	if in.InBounds(geom.Vec2{X: 5, Y: 240}, 16) {
		t.Error("border point accepted with margin")
	}
	if in.InBounds(geom.Vec2{X: -1, Y: -1}, 0) {
		t.Error("negative coordinates accepted")
	}
}

func TestViewAngleCos(t *testing.T) {
	cw := geom.Vec3{X: 0, Y: 0, Z: 0}
	pw := geom.Vec3{X: 0, Y: 0, Z: 10}
	if got := ViewAngleCos(cw, pw, geom.Vec3{X: 0, Y: 0, Z: 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("aligned view cos = %v", got)
	}
	if got := ViewAngleCos(cw, pw, geom.Vec3{X: 1, Y: 0, Z: 0}); math.Abs(got) > 1e-12 {
		t.Errorf("orthogonal view cos = %v", got)
	}
}

func TestIntrinsicsPresets(t *testing.T) {
	for _, in := range []Intrinsics{EuRoCIntrinsics(), KITTIIntrinsics(), TUMIntrinsics()} {
		if in.Width <= 0 || in.Height <= 0 || in.Fx <= 0 || in.Fy <= 0 {
			t.Errorf("bad preset %+v", in)
		}
		if in.PixelAngle() <= 0 || in.PixelAngle() > 0.01 {
			t.Errorf("implausible pixel angle %v", in.PixelAngle())
		}
	}
}

func TestModeString(t *testing.T) {
	if Mono.String() != "mono" || Stereo.String() != "stereo" {
		t.Error("mode strings wrong")
	}
}
