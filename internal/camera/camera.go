// Package camera models the pinhole cameras carried by AR devices:
// intrinsics, monocular and stereo projection, and visibility checks
// used by tracking and mapping to decide which map points a frame can
// observe.
package camera

import (
	"fmt"
	"math"

	"slamshare/internal/geom"
)

// Intrinsics holds the pinhole camera parameters. Distortion is
// assumed rectified, as in the stereo-rectified EuRoC/KITTI setups the
// paper evaluates on.
type Intrinsics struct {
	Fx, Fy float64 // focal lengths in pixels
	Cx, Cy float64 // principal point in pixels
	Width  int     // image width in pixels
	Height int     // image height in pixels
}

// EuRoCIntrinsics mirrors the rectified EuRoC MAV camera
// (752x480, ~458 px focal length).
func EuRoCIntrinsics() Intrinsics {
	return Intrinsics{Fx: 458.0, Fy: 458.0, Cx: 376.0, Cy: 240.0, Width: 752, Height: 480}
}

// KITTIIntrinsics mirrors the rectified KITTI grayscale camera
// (1241x376, ~718 px focal length).
func KITTIIntrinsics() Intrinsics {
	return Intrinsics{Fx: 718.0, Fy: 718.0, Cx: 620.0, Cy: 188.0, Width: 1241, Height: 376}
}

// TUMIntrinsics mirrors the TUM RGB-D fr1 camera (640x480).
func TUMIntrinsics() Intrinsics {
	return Intrinsics{Fx: 517.3, Fy: 516.5, Cx: 318.6, Cy: 255.3, Width: 640, Height: 480}
}

// Project maps a point in camera coordinates (Z forward) to pixel
// coordinates. ok is false when the point is behind the camera or
// outside the image bounds.
func (in Intrinsics) Project(pc geom.Vec3) (px geom.Vec2, ok bool) {
	const minDepth = 0.05
	if pc.Z < minDepth {
		return geom.Vec2{}, false
	}
	u := in.Fx*pc.X/pc.Z + in.Cx
	v := in.Fy*pc.Y/pc.Z + in.Cy
	if u < 0 || v < 0 || u >= float64(in.Width) || v >= float64(in.Height) {
		return geom.Vec2{X: u, Y: v}, false
	}
	return geom.Vec2{X: u, Y: v}, true
}

// ProjectUnchecked maps a camera-frame point to pixel coordinates
// without bounds checking; the caller must ensure pc.Z > 0.
func (in Intrinsics) ProjectUnchecked(pc geom.Vec3) geom.Vec2 {
	return geom.Vec2{
		X: in.Fx*pc.X/pc.Z + in.Cx,
		Y: in.Fy*pc.Y/pc.Z + in.Cy,
	}
}

// Backproject returns the camera-frame point at pixel px with depth z.
func (in Intrinsics) Backproject(px geom.Vec2, z float64) geom.Vec3 {
	return geom.Vec3{
		X: (px.X - in.Cx) / in.Fx * z,
		Y: (px.Y - in.Cy) / in.Fy * z,
		Z: z,
	}
}

// Ray returns the unit ray through pixel px in camera coordinates.
func (in Intrinsics) Ray(px geom.Vec2) geom.Vec3 {
	return geom.Vec3{
		X: (px.X - in.Cx) / in.Fx,
		Y: (px.Y - in.Cy) / in.Fy,
		Z: 1,
	}.Normalized()
}

// InBounds reports whether pixel coordinates fall inside the image
// with the given border margin.
func (in Intrinsics) InBounds(px geom.Vec2, margin float64) bool {
	return px.X >= margin && px.Y >= margin &&
		px.X < float64(in.Width)-margin && px.Y < float64(in.Height)-margin
}

func (in Intrinsics) String() string {
	return fmt.Sprintf("camera(%dx%d f=%.1f)", in.Width, in.Height, in.Fx)
}

// Mode distinguishes monocular from stereo operation; the paper
// evaluates both (Figs. 5 and 8 have mono and stereo variants).
type Mode int

const (
	// Mono uses a single camera; absolute scale comes from the IMU.
	Mono Mode = iota
	// Stereo uses a horizontal stereo pair with known baseline, making
	// depth directly observable per frame.
	Stereo
)

func (m Mode) String() string {
	if m == Stereo {
		return "stereo"
	}
	return "mono"
}

// Rig is a camera rig: intrinsics shared by both eyes plus the stereo
// baseline (0 for monocular rigs).
type Rig struct {
	Intr     Intrinsics
	Mode     Mode
	Baseline float64 // metres between left and right camera centers
}

// NewMonoRig returns a monocular rig.
func NewMonoRig(in Intrinsics) Rig { return Rig{Intr: in, Mode: Mono} }

// NewStereoRig returns a stereo rig with the given baseline in metres.
func NewStereoRig(in Intrinsics, baseline float64) Rig {
	return Rig{Intr: in, Mode: Stereo, Baseline: baseline}
}

// DepthFromDisparity converts a stereo disparity (pixels) to depth.
// Returns 0 for non-positive disparities.
func (r Rig) DepthFromDisparity(d float64) float64 {
	if d <= 0 || r.Mode != Stereo {
		return 0
	}
	return r.Intr.Fx * r.Baseline / d
}

// DisparityAtDepth returns the stereo disparity of a point at depth z.
func (r Rig) DisparityAtDepth(z float64) float64 {
	if z <= 0 || r.Mode != Stereo {
		return 0
	}
	return r.Intr.Fx * r.Baseline / z
}

// WorldToPixel projects world point pw through world-to-camera pose
// tcw into pixel coordinates.
func (r Rig) WorldToPixel(tcw geom.SE3, pw geom.Vec3) (geom.Vec2, bool) {
	return r.Intr.Project(tcw.Apply(pw))
}

// ViewAngleCos returns the cosine of the angle between the viewing ray
// from camera center cw to point pw and the reference direction ref.
// Tracking uses it to reject map points seen from too different an
// angle for descriptor matching to be reliable.
func ViewAngleCos(cw, pw geom.Vec3, ref geom.Vec3) float64 {
	v := pw.Sub(cw).Normalized()
	return v.Dot(ref.Normalized())
}

// FrustumCheck reports whether world point pw is inside the viewing
// frustum of a camera at world-to-camera pose tcw, between minDepth
// and maxDepth.
func (r Rig) FrustumCheck(tcw geom.SE3, pw geom.Vec3, minDepth, maxDepth float64) bool {
	pc := tcw.Apply(pw)
	if pc.Z < minDepth || pc.Z > maxDepth {
		return false
	}
	_, ok := r.Intr.Project(pc)
	return ok
}

// FocalMean returns the average focal length, used to convert pixel
// thresholds to angular ones.
func (in Intrinsics) FocalMean() float64 { return (in.Fx + in.Fy) / 2 }

// PixelAngle returns the angle subtended by one pixel, in radians.
func (in Intrinsics) PixelAngle() float64 { return math.Atan(1 / in.FocalMean()) }
