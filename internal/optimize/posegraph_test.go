package optimize

import (
	"math/rand"
	"testing"

	"slamshare/internal/geom"
)

// chainGraph builds a chain of n poses along +X with exact relative
// measurements, then perturbs the free nodes.
func chainGraph(n int, rng *rand.Rand, perturb float64) (*PoseGraph, []geom.SE3) {
	truth := make([]geom.SE3, n)
	for i := range truth {
		truth[i] = geom.SE3{
			R: geom.QuatFromAxisAngle(geom.Vec3{Z: 1}, 0.1*float64(i)),
			T: geom.Vec3{X: float64(i)},
		}
	}
	g := &PoseGraph{
		Poses: make([]geom.SE3, n),
		Fixed: make([]bool, n),
	}
	copy(g.Poses, truth)
	g.Fixed[0] = true
	// Consecutive edges plus a few skip edges.
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, PoseEdge{
			I: i, J: i + 1,
			Z: truth[i].Inverse().Compose(truth[i+1]),
		})
	}
	for i := 0; i+2 < n; i += 2 {
		g.Edges = append(g.Edges, PoseEdge{
			I: i, J: i + 2,
			Z:      truth[i].Inverse().Compose(truth[i+2]),
			Weight: 2,
		})
	}
	for i := 1; i < n; i++ {
		g.Poses[i] = geom.SE3{
			R: geom.QuatFromAxisAngle(geom.Vec3{
				X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64(),
			}, perturb).Mul(truth[i].R).Normalized(),
			T: truth[i].T.Add(geom.Vec3{
				X: rng.NormFloat64() * perturb * 5,
				Y: rng.NormFloat64() * perturb * 5,
				Z: rng.NormFloat64() * perturb * 5,
			}),
		}
	}
	return g, truth
}

func TestPoseGraphConvergesToTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, truth := chainGraph(8, rng, 0.04)
	before := g.Chi2()
	after := g.Optimize(15)
	if after >= before {
		t.Fatalf("chi2 did not decrease: %v -> %v", before, after)
	}
	for i, p := range g.Poses {
		if d := p.T.Dist(truth[i].T); d > 0.01 {
			t.Errorf("node %d translation error %v", i, d)
		}
		if a := p.R.AngleTo(truth[i].R); a > 0.01 {
			t.Errorf("node %d rotation error %v", i, a)
		}
	}
}

func TestPoseGraphRespectsFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, truth := chainGraph(6, rng, 0.03)
	g.Fixed[5] = true
	g.Poses[5] = truth[5] // both ends anchored
	orig0, orig5 := g.Poses[0], g.Poses[5]
	g.Optimize(10)
	if g.Poses[0] != orig0 || g.Poses[5] != orig5 {
		t.Error("fixed nodes moved")
	}
}

func TestPoseGraphPropagatesCorrection(t *testing.T) {
	// The merge use case: a chain whose head is snapped to a corrected
	// pose (fixed); the correction must propagate down the free tail.
	n := 6
	truth := make([]geom.SE3, n)
	for i := range truth {
		truth[i] = geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{X: float64(i)}}
	}
	g := &PoseGraph{Poses: make([]geom.SE3, n), Fixed: make([]bool, n)}
	// All nodes displaced by a constant offset except node 0, which the
	// seam adjustment corrected.
	off := geom.Vec3{Y: 0.5}
	for i := range truth {
		g.Poses[i] = geom.SE3{R: truth[i].R, T: truth[i].T.Add(off)}
	}
	g.Poses[0] = truth[0]
	g.Fixed[0] = true
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, PoseEdge{I: i, J: i + 1, Z: truth[i].Inverse().Compose(truth[i+1])})
	}
	g.Optimize(15)
	for i, p := range g.Poses {
		if d := p.T.Dist(truth[i].T); d > 1e-4 {
			t.Errorf("node %d not corrected: err %v", i, d)
		}
	}
}

func TestPoseGraphDegenerate(t *testing.T) {
	g := &PoseGraph{}
	if got := g.Optimize(5); got != 0 {
		t.Errorf("empty graph chi2 = %v", got)
	}
	// All fixed: nothing to do.
	g2 := &PoseGraph{
		Poses: []geom.SE3{geom.IdentitySE3(), geom.IdentitySE3()},
		Fixed: []bool{true, true},
		Edges: []PoseEdge{{I: 0, J: 1, Z: geom.IdentitySE3()}},
	}
	g2.Optimize(5)
}

func TestApplyBodyDeltaZero(t *testing.T) {
	p := geom.SE3{R: geom.QuatFromAxisAngle(geom.Vec3{X: 1}, 0.4), T: geom.Vec3{X: 1, Y: 2, Z: 3}}
	q := applyBodyDelta(p, [6]float64{})
	if q.T.Dist(p.T) > 1e-12 || q.R.AngleTo(p.R) > 1e-12 {
		t.Error("zero delta changed pose")
	}
}
