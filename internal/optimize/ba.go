package optimize

import (
	"math"

	"slamshare/internal/camera"
	"slamshare/internal/geom"
)

// BAProblem is a bundle-adjustment problem: a set of world-to-camera
// poses and world points connected by pixel observations. Fixed
// cameras anchor the gauge (at least one camera should be fixed).
type BAProblem struct {
	Intr     camera.Intrinsics
	Cams     []geom.SE3 // world-to-camera
	FixedCam []bool
	Points   []geom.Vec3
	Obs      []Observation
}

// BAResult reports the outcome of bundle adjustment.
type BAResult struct {
	Iterations int
	InitChi2   float64
	FinalChi2  float64
	Outliers   []bool // per-observation classification after the solve
}

// chi2 returns the total squared normalized residual over
// observations, skipping entries marked as outliers.
func (p *BAProblem) chi2(outlier []bool) float64 {
	var sum float64
	for i, ob := range p.Obs {
		if outlier != nil && outlier[i] {
			continue
		}
		pc := p.Cams[ob.Cam].Apply(p.Points[ob.Pt])
		if pc.Z < 0.05 {
			sum += 1e4
			continue
		}
		px := p.Intr.ProjectUnchecked(pc)
		s := ob.Sigma
		if s <= 0 {
			s = 1
		}
		sum += px.Sub(ob.UV).NormSq() / (s * s)
	}
	return sum
}

// Solve runs Levenberg-Marquardt with Schur elimination of the point
// blocks for at most maxIters iterations. Cameras and points are
// updated in place.
func (p *BAProblem) Solve(maxIters int) BAResult {
	nc := len(p.Cams)
	np := len(p.Points)
	res := BAResult{Outliers: make([]bool, len(p.Obs))}
	if nc == 0 || np == 0 || len(p.Obs) == 0 {
		return res
	}
	// Map cameras to variable slots (-1 = fixed).
	camVar := make([]int, nc)
	nv := 0
	for i := 0; i < nc; i++ {
		if i < len(p.FixedCam) && p.FixedCam[i] {
			camVar[i] = -1
		} else {
			camVar[i] = nv
			nv++
		}
	}
	res.InitChi2 = p.chi2(nil)
	lambda := 1e-4
	cur := res.InitChi2
	for iter := 0; iter < maxIters; iter++ {
		res.Iterations = iter + 1
		// Assemble the normal equations in block form.
		hcc := make([]float64, (nv*6)*(nv*6)) // dense camera block (local windows are small)
		bc := make([]float64, nv*6)
		hpp := make([][9]float64, np)   // 3x3 per point
		bp := make([]geom.Vec3, np)     // rhs per point
		hcp := map[[2]int][18]float64{} // (camVar, pt) -> 6x3 block

		for oi, ob := range p.Obs {
			if res.Outliers[oi] {
				continue
			}
			cv := camVar[ob.Cam]
			tcw := p.Cams[ob.Cam]
			pc := tcw.Apply(p.Points[ob.Pt])
			if pc.Z < 0.05 {
				continue
			}
			px := p.Intr.ProjectUnchecked(pc)
			s := ob.Sigma
			if s <= 0 {
				s = 1
			}
			r := px.Sub(ob.UV)
			rn := r.Norm() / s
			w := huberWeight(rn) / (s * s)
			jp := projJacobian(p.Intr, pc)
			// Camera Jacobian rows (2x6).
			var jc [2][6]float64
			if cv >= 0 {
				hat := pc.Hat()
				for rr := 0; rr < 2; rr++ {
					jc[rr][0] = jp[rr][0]
					jc[rr][1] = jp[rr][1]
					jc[rr][2] = jp[rr][2]
					for c := 0; c < 3; c++ {
						jc[rr][3+c] = -(jp[rr][0]*hat[0*3+c] + jp[rr][1]*hat[1*3+c] + jp[rr][2]*hat[2*3+c])
					}
				}
			}
			// Point Jacobian rows (2x3): J_proj * R.
			rot := tcw.R.Mat()
			var jpt [2][3]float64
			for rr := 0; rr < 2; rr++ {
				for c := 0; c < 3; c++ {
					jpt[rr][c] = jp[rr][0]*rot[0*3+c] + jp[rr][1]*rot[1*3+c] + jp[rr][2]*rot[2*3+c]
				}
			}
			resv := [2]float64{r.X, r.Y}
			// Accumulate camera-camera block.
			if cv >= 0 {
				base := cv * 6
				for rr := 0; rr < 2; rr++ {
					for a := 0; a < 6; a++ {
						bc[base+a] -= w * jc[rr][a] * resv[rr]
						for c := 0; c < 6; c++ {
							hcc[(base+a)*(nv*6)+base+c] += w * jc[rr][a] * jc[rr][c]
						}
					}
				}
			}
			// Point-point block and rhs.
			pp := &hpp[ob.Pt]
			for rr := 0; rr < 2; rr++ {
				for a := 0; a < 3; a++ {
					switch a {
					case 0:
						bp[ob.Pt].X -= w * jpt[rr][a] * resv[rr]
					case 1:
						bp[ob.Pt].Y -= w * jpt[rr][a] * resv[rr]
					default:
						bp[ob.Pt].Z -= w * jpt[rr][a] * resv[rr]
					}
					for c := 0; c < 3; c++ {
						pp[a*3+c] += w * jpt[rr][a] * jpt[rr][c]
					}
				}
			}
			// Camera-point block.
			if cv >= 0 {
				key := [2]int{cv, ob.Pt}
				blk := hcp[key]
				for rr := 0; rr < 2; rr++ {
					for a := 0; a < 6; a++ {
						for c := 0; c < 3; c++ {
							blk[a*3+c] += w * jc[rr][a] * jpt[rr][c]
						}
					}
				}
				hcp[key] = blk
			}
		}
		// LM damping.
		for i := 0; i < nv*6; i++ {
			hcc[i*(nv*6)+i] *= 1 + lambda
			hcc[i*(nv*6)+i] += 1e-9
		}
		hppInv := make([][9]float64, np)
		for i := 0; i < np; i++ {
			m := hpp[i]
			for d := 0; d < 3; d++ {
				m[d*3+d] *= 1 + lambda
				m[d*3+d] += 1e-9
			}
			inv, ok := invert3(m)
			if !ok {
				// Unconstrained point: zero inverse freezes it.
				inv = [9]float64{}
			}
			hppInv[i] = inv
		}
		// Schur complement: S = Hcc - Hcp Hpp^-1 Hcp^T,
		// rhs = bc - Hcp Hpp^-1 bp.
		s := make([]float64, len(hcc))
		copy(s, hcc)
		rhs := make([]float64, len(bc))
		copy(rhs, bc)
		// Group hcp blocks by point for the pairwise products.
		type cpEntry struct {
			cv  int
			blk *[18]float64
		}
		byPoint := make(map[int][]cpEntry)
		for key, blk := range hcp {
			b := blk
			byPoint[key[1]] = append(byPoint[key[1]], cpEntry{key[0], &b})
		}
		for pt, ents := range byPoint {
			inv := hppInv[pt]
			bpv := [3]float64{bp[pt].X, bp[pt].Y, bp[pt].Z}
			// y = Hpp^-1 bp
			var y [3]float64
			for a := 0; a < 3; a++ {
				for c := 0; c < 3; c++ {
					y[a] += inv[a*3+c] * bpv[c]
				}
			}
			for _, e1 := range ents {
				cv1 := e1.cv
				b1 := e1.blk
				// rhs -= Hcp * y
				for a := 0; a < 6; a++ {
					for c := 0; c < 3; c++ {
						rhs[cv1*6+a] -= b1[a*3+c] * y[c]
					}
				}
				// W = Hcp * Hpp^-1 (6x3)
				var wblk [18]float64
				for a := 0; a < 6; a++ {
					for c := 0; c < 3; c++ {
						for k := 0; k < 3; k++ {
							wblk[a*3+c] += b1[a*3+k] * inv[k*3+c]
						}
					}
				}
				for _, e2 := range ents {
					cv2 := e2.cv
					b2 := e2.blk
					// S[cv1, cv2] -= W * Hcp2^T
					for a := 0; a < 6; a++ {
						for c := 0; c < 6; c++ {
							var acc float64
							for k := 0; k < 3; k++ {
								acc += wblk[a*3+k] * b2[c*3+k]
							}
							s[(cv1*6+a)*(nv*6)+cv2*6+c] -= acc
						}
					}
				}
			}
		}
		// Solve the reduced camera system.
		delta := make([]float64, len(rhs))
		copy(delta, rhs)
		sC := make([]float64, len(s))
		copy(sC, s)
		camOK := nv > 0 && geom.CholeskySolve(sC, delta, nv*6) == nil
		// Back-substitute points: dp = Hpp^-1 (bp - Hcp^T dc).
		newCams := make([]geom.SE3, nc)
		copy(newCams, p.Cams)
		if camOK {
			for i := 0; i < nc; i++ {
				if camVar[i] < 0 {
					continue
				}
				var d [6]float64
				copy(d[:], delta[camVar[i]*6:camVar[i]*6+6])
				newCams[i] = applySE3Delta(p.Cams[i], d)
			}
		}
		newPts := make([]geom.Vec3, np)
		copy(newPts, p.Points)
		for pt, ents := range byPoint {
			bpv := [3]float64{bp[pt].X, bp[pt].Y, bp[pt].Z}
			if camOK {
				for _, e := range ents {
					cv := e.cv
					b := e.blk
					for c := 0; c < 3; c++ {
						for a := 0; a < 6; a++ {
							bpv[c] -= b[a*3+c] * delta[cv*6+a]
						}
					}
				}
			}
			inv := hppInv[pt]
			var dp [3]float64
			for a := 0; a < 3; a++ {
				for c := 0; c < 3; c++ {
					dp[a] += inv[a*3+c] * bpv[c]
				}
			}
			newPts[pt] = p.Points[pt].Add(geom.Vec3{X: dp[0], Y: dp[1], Z: dp[2]})
		}
		// Accept or reject the step (LM).
		oldCams, oldPts := p.Cams, p.Points
		p.Cams, p.Points = newCams, newPts
		newChi := p.chi2(res.Outliers)
		if newChi < cur {
			cur = newChi
			lambda = math.Max(lambda*0.5, 1e-9)
			if (res.InitChi2 - newChi) < 1e-9*res.InitChi2 {
				break
			}
		} else {
			p.Cams, p.Points = oldCams, oldPts
			lambda *= 4
			if lambda > 1e6 {
				break
			}
		}
	}
	// Final outlier classification.
	for i, ob := range p.Obs {
		pc := p.Cams[ob.Cam].Apply(p.Points[ob.Pt])
		if pc.Z < 0.05 {
			res.Outliers[i] = true
			continue
		}
		px := p.Intr.ProjectUnchecked(pc)
		s := ob.Sigma
		if s <= 0 {
			s = 1
		}
		res.Outliers[i] = px.Sub(ob.UV).NormSq()/(s*s) > Chi2Inlier95
	}
	res.FinalChi2 = p.chi2(res.Outliers)
	return res
}

// invert3 inverts a 3x3 matrix stored row-major.
func invert3(m [9]float64) ([9]float64, bool) {
	det := m[0]*(m[4]*m[8]-m[5]*m[7]) - m[1]*(m[3]*m[8]-m[5]*m[6]) + m[2]*(m[3]*m[7]-m[4]*m[6])
	if math.Abs(det) < 1e-18 {
		return [9]float64{}, false
	}
	inv := 1 / det
	return [9]float64{
		(m[4]*m[8] - m[5]*m[7]) * inv,
		(m[2]*m[7] - m[1]*m[8]) * inv,
		(m[1]*m[5] - m[2]*m[4]) * inv,
		(m[5]*m[6] - m[3]*m[8]) * inv,
		(m[0]*m[8] - m[2]*m[6]) * inv,
		(m[2]*m[3] - m[0]*m[5]) * inv,
		(m[3]*m[7] - m[4]*m[6]) * inv,
		(m[1]*m[6] - m[0]*m[7]) * inv,
		(m[0]*m[4] - m[1]*m[3]) * inv,
	}, true
}

// Triangulate computes the world point minimizing reprojection from
// two views by the midpoint of the closest approach of the two rays.
// Returns false when the rays are near-parallel (insufficient
// parallax).
func Triangulate(in camera.Intrinsics, tcw1, tcw2 geom.SE3, uv1, uv2 geom.Vec2) (geom.Vec3, bool) {
	// Camera centers and ray directions in world frame.
	twc1 := tcw1.Inverse()
	twc2 := tcw2.Inverse()
	o1 := twc1.T
	o2 := twc2.T
	d1 := twc1.R.Rotate(in.Ray(uv1))
	d2 := twc2.R.Rotate(in.Ray(uv2))
	// Solve for s, t minimizing |o1 + s d1 - o2 - t d2|^2.
	w0 := o1.Sub(o2)
	a := d1.Dot(d1)
	b := d1.Dot(d2)
	c := d2.Dot(d2)
	d := d1.Dot(w0)
	e := d2.Dot(w0)
	den := a*c - b*b
	if den < 1e-9 { // near-parallel rays: no parallax
		return geom.Vec3{}, false
	}
	s := (b*e - c*d) / den
	t := (a*e - b*d) / den
	if s <= 0.05 || t <= 0.05 { // behind either camera
		return geom.Vec3{}, false
	}
	p1 := o1.Add(d1.Scale(s))
	p2 := o2.Add(d2.Scale(t))
	return p1.Add(p2).Scale(0.5), true
}
