package optimize

import (
	"math"

	"slamshare/internal/geom"
)

// PoseEdge is a relative-pose constraint between two graph nodes: the
// measured transform Z such that ideally Z = Pose_i^-1 ∘ Pose_j
// (poses are body/camera-to-world).
type PoseEdge struct {
	I, J int
	Z    geom.SE3
	// Weight scales the edge residual (covisibility strength).
	Weight float64
}

// PoseGraph is an essential-graph optimization problem as ORB-SLAM3
// runs after loop closures and map merges: node poses connected by
// relative-pose measurements, with some nodes held fixed (the already-
// corrected seam and the old map side).
type PoseGraph struct {
	Poses []geom.SE3 // body-to-world
	Fixed []bool
	Edges []PoseEdge
}

// residual computes the 6-vector residual of an edge: the log map of
// the discrepancy between the measured and current relative poses.
func (g *PoseGraph) residual(e PoseEdge) [6]float64 {
	rel := g.Poses[e.I].Inverse().Compose(g.Poses[e.J])
	d := e.Z.Inverse().Compose(rel)
	rot := d.R.RotVec()
	w := e.Weight
	if w <= 0 {
		w = 1
	}
	s := math.Sqrt(w)
	return [6]float64{
		s * d.T.X, s * d.T.Y, s * d.T.Z,
		s * rot.X, s * rot.Y, s * rot.Z,
	}
}

// Chi2 returns the total squared residual.
func (g *PoseGraph) Chi2() float64 {
	var sum float64
	for _, e := range g.Edges {
		r := g.residual(e)
		for _, v := range r {
			sum += v * v
		}
	}
	return sum
}

// Optimize runs Gauss-Newton with numeric Jacobians for at most
// maxIters iterations and returns the final chi-square. Node poses are
// updated in place. Graphs here are small (tens of keyframes), so the
// dense solve is cheap.
func (g *PoseGraph) Optimize(maxIters int) float64 {
	// Variable slots for free nodes.
	idx := make([]int, len(g.Poses))
	nv := 0
	for i := range g.Poses {
		if i < len(g.Fixed) && g.Fixed[i] {
			idx[i] = -1
		} else {
			idx[i] = nv
			nv++
		}
	}
	if nv == 0 || len(g.Edges) == 0 {
		return g.Chi2()
	}
	const eps = 1e-6
	dim := nv * 6
	for iter := 0; iter < maxIters; iter++ {
		h := make([]float64, dim*dim)
		b := make([]float64, dim)
		for _, e := range g.Edges {
			r0 := g.residual(e)
			// Numeric Jacobian wrt both endpoint nodes (6 params each:
			// translation then rotation perturbations on the left).
			var jac [2][6][6]float64
			nodes := [2]int{e.I, e.J}
			for ni, node := range nodes {
				if idx[node] < 0 {
					continue
				}
				orig := g.Poses[node]
				for p := 0; p < 6; p++ {
					var d [6]float64
					d[p] = eps
					g.Poses[node] = applyBodyDelta(orig, d)
					r1 := g.residual(e)
					for k := 0; k < 6; k++ {
						jac[ni][k][p] = (r1[k] - r0[k]) / eps
					}
					g.Poses[node] = orig
				}
			}
			// Accumulate the normal equations.
			for ni, node := range nodes {
				vi := idx[node]
				if vi < 0 {
					continue
				}
				for mj, nodeJ := range nodes {
					vj := idx[nodeJ]
					if vj < 0 {
						continue
					}
					for a := 0; a < 6; a++ {
						for c := 0; c < 6; c++ {
							var acc float64
							for k := 0; k < 6; k++ {
								acc += jac[ni][k][a] * jac[mj][k][c]
							}
							h[(vi*6+a)*dim+vj*6+c] += acc
						}
					}
				}
				for a := 0; a < 6; a++ {
					var acc float64
					for k := 0; k < 6; k++ {
						acc += jac[ni][k][a] * r0[k]
					}
					b[vi*6+a] -= acc
				}
			}
		}
		for i := 0; i < dim; i++ {
			h[i*dim+i] += 1e-8
		}
		if err := geom.CholeskySolve(h, b, dim); err != nil {
			break
		}
		step := 0.0
		for i := range g.Poses {
			vi := idx[i]
			if vi < 0 {
				continue
			}
			var d [6]float64
			copy(d[:], b[vi*6:vi*6+6])
			g.Poses[i] = applyBodyDelta(g.Poses[i], d)
			for _, v := range d {
				step += v * v
			}
		}
		if step < 1e-16 {
			break
		}
	}
	return g.Chi2()
}

// applyBodyDelta perturbs a body-to-world pose on the right (in the
// body frame): translation then rotation.
func applyBodyDelta(p geom.SE3, d [6]float64) geom.SE3 {
	dt := geom.Vec3{X: d[0], Y: d[1], Z: d[2]}
	dr := geom.QuatFromRotVec(geom.Vec3{X: d[3], Y: d[4], Z: d[5]})
	return geom.SE3{
		R: p.R.Mul(dr).Normalized(),
		T: p.T.Add(p.R.Rotate(dt)),
	}
}
