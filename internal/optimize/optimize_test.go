package optimize

import (
	"math"
	"math/rand"
	"testing"

	"slamshare/internal/camera"
	"slamshare/internal/geom"
)

// scene builds a random set of world points in front of a camera at
// the given ground-truth world-to-camera pose, with observations
// perturbed by pixel noise.
func scene(rng *rand.Rand, in camera.Intrinsics, tcwTrue geom.SE3, n int, noisePx float64) (pts []geom.Vec3, uvs []geom.Vec2) {
	twc := tcwTrue.Inverse()
	for len(pts) < n {
		// Sample in the camera frustum, then map to world.
		pc := geom.Vec3{
			X: (rng.Float64() - 0.5) * 6,
			Y: (rng.Float64() - 0.5) * 4,
			Z: 2 + rng.Float64()*10,
		}
		px, ok := in.Project(pc)
		if !ok {
			continue
		}
		pts = append(pts, twc.Apply(pc))
		uvs = append(uvs, geom.Vec2{
			X: px.X + rng.NormFloat64()*noisePx,
			Y: px.Y + rng.NormFloat64()*noisePx,
		})
	}
	return pts, uvs
}

func randPose(rng *rand.Rand) geom.SE3 {
	axis := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
	return geom.SE3{
		R: geom.QuatFromAxisAngle(axis, rng.Float64()),
		T: geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
	}
}

func perturbPose(p geom.SE3, rotRad, transM float64, rng *rand.Rand) geom.SE3 {
	axis := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Normalized()
	dt := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Normalized().Scale(transM)
	return geom.SE3{
		R: geom.QuatFromAxisAngle(axis, rotRad).Mul(p.R).Normalized(),
		T: p.T.Add(dt),
	}
}

func TestOptimizePoseConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := camera.EuRoCIntrinsics()
	for trial := 0; trial < 10; trial++ {
		truth := randPose(rng)
		pts, uvs := scene(rng, in, truth, 80, 0.5)
		init := perturbPose(truth, 0.05, 0.15, rng)
		res := OptimizePose(in, init, pts, uvs, nil)
		// Rotation within ~0.5 deg, translation within ~2 cm.
		if a := res.Pose.R.AngleTo(truth.R); a > 0.01 {
			t.Fatalf("trial %d: rotation error %v rad", trial, a)
		}
		if d := res.Pose.T.Dist(truth.T); d > 0.03 {
			t.Fatalf("trial %d: translation error %v m", trial, d)
		}
		if res.NInliers < 70 {
			t.Fatalf("trial %d: only %d inliers", trial, res.NInliers)
		}
	}
}

func TestOptimizePoseRejectsOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := camera.EuRoCIntrinsics()
	truth := randPose(rng)
	pts, uvs := scene(rng, in, truth, 100, 0.5)
	// Corrupt 20% of the observations badly.
	for i := 0; i < 20; i++ {
		uvs[i].X += 40 + rng.Float64()*100
		uvs[i].Y -= 35
	}
	init := perturbPose(truth, 0.03, 0.1, rng)
	res := OptimizePose(in, init, pts, uvs, nil)
	if d := res.Pose.T.Dist(truth.T); d > 0.05 {
		t.Fatalf("translation error %v m with outliers", d)
	}
	bad := 0
	for i := 0; i < 20; i++ {
		if res.Inliers[i] {
			bad++
		}
	}
	if bad > 3 {
		t.Errorf("%d corrupted observations still classified inliers", bad)
	}
}

func TestOptimizePoseTooFewPoints(t *testing.T) {
	in := camera.EuRoCIntrinsics()
	pose := geom.IdentitySE3()
	pts := []geom.Vec3{{X: 0, Y: 0, Z: 5}, {X: 1, Y: 0, Z: 5}}
	uvs := []geom.Vec2{{X: 376, Y: 240}, {X: 468, Y: 240}}
	res := OptimizePose(in, pose, pts, uvs, nil)
	// Must not blow up; pose should stay finite.
	if !res.Pose.T.IsFinite() {
		t.Error("pose diverged with insufficient constraints")
	}
}

func TestTriangulateExact(t *testing.T) {
	in := camera.EuRoCIntrinsics()
	tcw1 := geom.IdentitySE3()
	tcw2 := geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{X: -0.5}} // camera at world x=+0.5
	p := geom.Vec3{X: 0.3, Y: -0.2, Z: 6}
	uv1, ok1 := in.Project(tcw1.Apply(p))
	uv2, ok2 := in.Project(tcw2.Apply(p))
	if !ok1 || !ok2 {
		t.Fatal("test point not visible")
	}
	got, ok := Triangulate(in, tcw1, tcw2, uv1, uv2)
	if !ok {
		t.Fatal("triangulation failed")
	}
	if got.Dist(p) > 0.02 {
		t.Errorf("triangulated %v, want %v", got, p)
	}
}

func TestTriangulateRejectsNoParallax(t *testing.T) {
	in := camera.EuRoCIntrinsics()
	tcw := geom.IdentitySE3()
	// Same camera twice: parallel rays.
	if _, ok := Triangulate(in, tcw, tcw, geom.Vec2{X: 300, Y: 200}, geom.Vec2{X: 300, Y: 200}); ok {
		t.Error("no-parallax triangulation accepted")
	}
}

func TestBAConvergesFromNoisyInit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := camera.EuRoCIntrinsics()
	// Ground truth: 4 cameras viewing 60 shared points.
	var truthCams []geom.SE3
	for i := 0; i < 4; i++ {
		truthCams = append(truthCams, geom.SE3{
			R: geom.QuatFromAxisAngle(geom.Vec3{Y: 1}, 0.05*float64(i)),
			T: geom.Vec3{X: -0.3 * float64(i)},
		})
	}
	var truthPts []geom.Vec3
	for len(truthPts) < 60 {
		p := geom.Vec3{
			X: (rng.Float64() - 0.5) * 8,
			Y: (rng.Float64() - 0.5) * 5,
			Z: 4 + rng.Float64()*10,
		}
		vis := true
		for _, c := range truthCams {
			if _, ok := in.Project(c.Apply(p)); !ok {
				vis = false
				break
			}
		}
		if vis {
			truthPts = append(truthPts, p)
		}
	}
	prob := &BAProblem{Intr: in}
	prob.FixedCam = []bool{true, false, false, false}
	for i, c := range truthCams {
		if i == 0 {
			prob.Cams = append(prob.Cams, c)
		} else {
			prob.Cams = append(prob.Cams, perturbPose(c, 0.02, 0.05, rng))
		}
	}
	for _, p := range truthPts {
		prob.Points = append(prob.Points, p.Add(geom.Vec3{
			X: rng.NormFloat64() * 0.05,
			Y: rng.NormFloat64() * 0.05,
			Z: rng.NormFloat64() * 0.05,
		}))
	}
	for ci, c := range truthCams {
		for pi, p := range truthPts {
			px, _ := in.Project(c.Apply(p))
			prob.Obs = append(prob.Obs, Observation{
				Cam: ci, Pt: pi,
				UV: geom.Vec2{X: px.X + rng.NormFloat64()*0.4, Y: px.Y + rng.NormFloat64()*0.4},
			})
		}
	}
	res := prob.Solve(20)
	if res.FinalChi2 >= res.InitChi2 {
		t.Fatalf("BA did not reduce chi2: %v -> %v", res.InitChi2, res.FinalChi2)
	}
	for i := 1; i < 4; i++ {
		if d := prob.Cams[i].T.Dist(truthCams[i].T); d > 0.02 {
			t.Errorf("camera %d translation error %v m", i, d)
		}
		if a := prob.Cams[i].R.AngleTo(truthCams[i].R); a > 0.01 {
			t.Errorf("camera %d rotation error %v rad", i, a)
		}
	}
	// Points should be pulled near truth too.
	var worst float64
	for i := range truthPts {
		if d := prob.Points[i].Dist(truthPts[i]); d > worst {
			worst = d
		}
	}
	// Depth uncertainty of far points with a ~1 m camera span
	// legitimately reaches tens of cm; bound the worst case loosely.
	if worst > 1.0 {
		t.Errorf("worst point error %v m", worst)
	}
	// Fixed camera must not have moved.
	if prob.Cams[0].T.Dist(truthCams[0].T) > 0 || prob.Cams[0].R.AngleTo(truthCams[0].R) > 0 {
		t.Error("fixed camera moved")
	}
}

func TestBAEmptyProblem(t *testing.T) {
	prob := &BAProblem{Intr: camera.EuRoCIntrinsics()}
	res := prob.Solve(10)
	if res.Iterations != 0 || res.FinalChi2 != 0 {
		t.Errorf("empty problem did work: %+v", res)
	}
}

func TestBAMarksOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := camera.EuRoCIntrinsics()
	// Three cameras per point: with only two views a point can fit any
	// pixel pair exactly, so outliers need at least three observations
	// to be detectable.
	cams := []geom.SE3{
		geom.IdentitySE3(),
		{R: geom.IdentityQuat(), T: geom.Vec3{X: -0.4}},
		{R: geom.IdentityQuat(), T: geom.Vec3{X: -0.8}},
	}
	prob := &BAProblem{Intr: in, Cams: cams, FixedCam: []bool{true, false, false}}
	for i := 0; i < 40; i++ {
		p := geom.Vec3{X: (rng.Float64() - 0.5) * 4, Y: (rng.Float64() - 0.5) * 3, Z: 5 + rng.Float64()*5}
		prob.Points = append(prob.Points, p)
		for ci, c := range cams {
			px, ok := in.Project(c.Apply(p))
			if !ok {
				continue
			}
			uv := geom.Vec2{X: px.X, Y: px.Y}
			if i < 4 && ci == 1 {
				uv.X += 60 // gross outlier
			}
			prob.Obs = append(prob.Obs, Observation{Cam: ci, Pt: i, UV: uv})
		}
	}
	res := prob.Solve(15)
	nOut := 0
	for _, o := range res.Outliers {
		if o {
			nOut++
		}
	}
	if nOut < 3 {
		t.Errorf("only %d outliers flagged, want >= 3", nOut)
	}
}

func TestHuberWeight(t *testing.T) {
	if huberWeight(0.5) != 1 {
		t.Error("small residual should have unit weight")
	}
	w := huberWeight(10)
	if w >= 1 || math.Abs(w-HuberDelta/10) > 1e-12 {
		t.Errorf("large residual weight = %v", w)
	}
}

func TestApplySE3DeltaIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randPose(rng)
	q := applySE3Delta(p, [6]float64{})
	if q.T.Dist(p.T) > 1e-12 || q.R.AngleTo(p.R) > 1e-12 {
		t.Error("zero delta changed pose")
	}
}
