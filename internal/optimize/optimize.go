// Package optimize implements the nonlinear least-squares machinery of
// the SLAM back end: robust pose-only optimization used by tracking
// (the "pose prediction" step the paper times in Figs. 5 and 8) and
// local bundle adjustment over keyframe windows used by mapping and
// merging (Alg. 2's post-merge refinement). Both minimize Huber-robust
// reprojection error with Gauss-Newton / Levenberg-Marquardt; bundle
// adjustment eliminates the point blocks with a Schur complement, as
// real SLAM solvers do.
package optimize

import (
	"math"

	"slamshare/internal/camera"
	"slamshare/internal/geom"
)

// Chi2Inlier95 is the 95% chi-square threshold with 2 degrees of
// freedom, used to classify monocular reprojection residuals.
const Chi2Inlier95 = 5.991

// HuberDelta is the robust-kernel width in normalized pixels.
const HuberDelta = math.Sqrt2 * 1.2

// Observation links a camera and a point with a pixel measurement.
type Observation struct {
	Cam   int       // index into the problem's camera array
	Pt    int       // index into the problem's point array
	UV    geom.Vec2 // measured pixel position
	Sigma float64   // measurement stddev in pixels (>= 1)
}

// applySE3Delta perturbs a world-to-camera pose on the left by the
// 6-vector (translation, rotation) delta.
func applySE3Delta(tcw geom.SE3, d [6]float64) geom.SE3 {
	dr := geom.QuatFromRotVec(geom.Vec3{X: d[3], Y: d[4], Z: d[5]})
	return geom.SE3{
		R: dr.Mul(tcw.R).Normalized(),
		T: dr.Rotate(tcw.T).Add(geom.Vec3{X: d[0], Y: d[1], Z: d[2]}),
	}
}

// projJacobian returns the 2x3 Jacobian of pixel coordinates with
// respect to the camera-frame point, given intrinsics.
func projJacobian(in camera.Intrinsics, pc geom.Vec3) (j [2][3]float64) {
	iz := 1 / pc.Z
	iz2 := iz * iz
	j[0] = [3]float64{in.Fx * iz, 0, -in.Fx * pc.X * iz2}
	j[1] = [3]float64{0, in.Fy * iz, -in.Fy * pc.Y * iz2}
	return j
}

// huberWeight returns the IRLS weight for a residual of normalized
// magnitude e (already divided by sigma).
func huberWeight(e float64) float64 {
	if e <= HuberDelta {
		return 1
	}
	return HuberDelta / e
}

// PoseResult reports the outcome of pose-only optimization.
type PoseResult struct {
	Pose     geom.SE3 // optimized world-to-camera pose
	Inliers  []bool   // per-observation inlier classification
	NInliers int
	Chi2     float64 // final sum of squared normalized inlier residuals
}

// OptimizePose refines a world-to-camera pose against fixed 3D points
// by Gauss-Newton on Huber-robust reprojection error, re-classifying
// outliers between rounds as ORB-SLAM3's tracking does. points[i]
// corresponds to uvs[i]; sigmas may be nil (all 1 px).
func OptimizePose(in camera.Intrinsics, tcw geom.SE3, points []geom.Vec3, uvs []geom.Vec2, sigmas []float64) PoseResult {
	n := len(points)
	inlier := make([]bool, n)
	for i := range inlier {
		inlier[i] = true
	}
	sigma := func(i int) float64 {
		if sigmas == nil || sigmas[i] <= 0 {
			return 1
		}
		return sigmas[i]
	}
	const rounds = 4
	const itersPerRound = 6
	for round := 0; round < rounds; round++ {
		for iter := 0; iter < itersPerRound; iter++ {
			var h [36]float64
			var b [6]float64
			used := 0
			for i := 0; i < n; i++ {
				if !inlier[i] {
					continue
				}
				pc := tcw.Apply(points[i])
				if pc.Z < 0.05 {
					continue
				}
				px := in.ProjectUnchecked(pc)
				s := sigma(i)
				r := px.Sub(uvs[i])
				rn := r.Norm() / s
				w := huberWeight(rn) / (s * s)
				jp := projJacobian(in, pc)
				// Chain rule: d pc / d delta = [I | -[pc]x].
				var jrow [2][6]float64
				hat := pc.Hat()
				for rr := 0; rr < 2; rr++ {
					jrow[rr][0] = jp[rr][0]
					jrow[rr][1] = jp[rr][1]
					jrow[rr][2] = jp[rr][2]
					for c := 0; c < 3; c++ {
						jrow[rr][3+c] = -(jp[rr][0]*hat[0*3+c] + jp[rr][1]*hat[1*3+c] + jp[rr][2]*hat[2*3+c])
					}
				}
				res := [2]float64{r.X, r.Y}
				for rr := 0; rr < 2; rr++ {
					for a := 0; a < 6; a++ {
						b[a] -= w * jrow[rr][a] * res[rr]
						for c := a; c < 6; c++ {
							h[a*6+c] += w * jrow[rr][a] * jrow[rr][c]
						}
					}
				}
				used++
			}
			if used < 6 {
				break
			}
			// Mirror the upper triangle and add light damping.
			for a := 0; a < 6; a++ {
				h[a*6+a] += 1e-6
				for c := a + 1; c < 6; c++ {
					h[c*6+a] = h[a*6+c]
				}
			}
			hb := b
			if err := geom.CholeskySolve(h[:], hb[:], 6); err != nil {
				break
			}
			step := math.Sqrt(hb[0]*hb[0] + hb[1]*hb[1] + hb[2]*hb[2] + hb[3]*hb[3] + hb[4]*hb[4] + hb[5]*hb[5])
			tcw = applySE3Delta(tcw, hb)
			if step < 1e-8 {
				break
			}
		}
		// Re-classify inliers for the next round.
		for i := 0; i < n; i++ {
			pc := tcw.Apply(points[i])
			if pc.Z < 0.05 {
				inlier[i] = false
				continue
			}
			px := in.ProjectUnchecked(pc)
			s := sigma(i)
			r := px.Sub(uvs[i]).NormSq() / (s * s)
			inlier[i] = r <= Chi2Inlier95
		}
	}
	res := PoseResult{Pose: tcw, Inliers: inlier}
	for i := 0; i < n; i++ {
		if !inlier[i] {
			continue
		}
		res.NInliers++
		pc := tcw.Apply(points[i])
		if pc.Z < 0.05 {
			continue
		}
		px := in.ProjectUnchecked(pc)
		s := sigma(i)
		res.Chi2 += px.Sub(uvs[i]).NormSq() / (s * s)
	}
	return res
}
