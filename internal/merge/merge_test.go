package merge

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"slamshare/internal/bow"
	"slamshare/internal/camera"
	"slamshare/internal/dataset"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/mapping"
	"slamshare/internal/smap"
	"slamshare/internal/tracking"
)

// buildClientMap runs the full SLAM front end over a sequence segment
// and returns the resulting map plus the ground-truth camera centers of
// its keyframes (for verifying merge accuracy).
func buildClientMap(t *testing.T, seq *dataset.Sequence, client, nFrames, stride int) (*smap.Map, map[smap.ID]geom.Vec3) {
	t.Helper()
	m := smap.NewMap(bow.Default())
	alloc := smap.NewIDAllocator(client)
	tr := tracking.New(m, seq.Rig, feature.NewExtractor(feature.DefaultConfig()), alloc, client, tracking.DefaultConfig())
	mp := mapping.New(m, seq.Rig, alloc, client, mapping.DefaultConfig())
	truth := make(map[smap.ID]geom.Vec3)
	for i := 0; i < nFrames; i += stride {
		left, right := seq.StereoFrame(i)
		var prior *geom.SE3
		if i == 0 {
			p := seq.GroundTruth(i).Inverse()
			prior = &p
		}
		res := tr.ProcessFrame(left, right, seq.FrameTime(i), prior)
		if res.NewKF != nil {
			mp.ProcessKeyFrame(res.NewKF)
			truth[res.NewKF.ID] = seq.GroundTruth(i).T
		}
	}
	if m.NKeyFrames() < 3 {
		t.Fatalf("client %d map too small: %d keyframes", client, m.NKeyFrames())
	}
	return m, truth
}

func TestMergeRecoversDisplacedClientMap(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline test")
	}
	seqA := dataset.MH04(camera.Stereo)
	seqB := dataset.MH05(camera.Stereo)
	mapA, _ := buildClientMap(t, seqA, 1, 120, 2)
	mapB, truthB := buildClientMap(t, seqB, 2, 120, 2)

	// Displace B's map: in reality each client's map has its own
	// arbitrary origin. The merge must snap it back (Fig. 7).
	disp := geom.Sim3FromSE3(geom.SE3{
		R: geom.QuatFromAxisAngle(geom.Vec3{Z: 1}, 0.4),
		T: geom.Vec3{X: 3, Y: -2, Z: 0.5},
	})
	mapB.ApplyTransform(disp)

	global := smap.NewMap(bow.Default())
	mg := New(global, seqA.Rig.Intr, DefaultConfig())
	if _, err := mg.Merge(mapA); err != nil {
		t.Fatalf("founding merge: %v", err)
	}
	kfsBefore := global.NKeyFrames()

	rep, err := mg.Merge(mapB)
	if err != nil {
		t.Fatalf("merge failed: %v", err)
	}
	if rep.Alignment == nil {
		t.Fatal("no alignment recorded")
	}
	if global.NKeyFrames() != kfsBefore+mapB.NKeyFrames() {
		t.Errorf("keyframes: %d, want %d", global.NKeyFrames(), kfsBefore+mapB.NKeyFrames())
	}
	if rep.FusedPts == 0 {
		t.Error("no duplicate points fused")
	}
	if rep.Detect <= 0 || rep.Insert <= 0 || rep.Total <= 0 {
		t.Error("missing timing breakdown")
	}
	// B's keyframes must have snapped back near their ground truth.
	var worst, mean float64
	n := 0
	for id, want := range truthB {
		kf, ok := global.KeyFrame(id)
		if !ok {
			t.Fatalf("keyframe %d missing from global map", id)
		}
		d := kf.Center().Dist(want)
		mean += d
		if d > worst {
			worst = d
		}
		n++
	}
	mean /= float64(n)
	t.Logf("merge snap: mean %.3f m, worst %.3f m over %d KFs (fused %d pts, total %v)",
		mean, worst, n, rep.FusedPts, rep.Total)
	if mean > 0.30 {
		t.Errorf("mean post-merge error %.3f m", mean)
	}
	if worst > 1.0 {
		t.Errorf("worst post-merge error %.3f m", worst)
	}
}

// A sabotaged merge must leave no trace: the global map returns to its
// exact pre-merge state, the client map returns to its own coordinate
// frame, and a clean retry of the same merge succeeds.
func TestMergeRollbackRestoresGlobalMap(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline test")
	}
	seqA := dataset.MH04(camera.Stereo)
	seqB := dataset.MH05(camera.Stereo)
	mapA, _ := buildClientMap(t, seqA, 1, 120, 2)
	mapB, _ := buildClientMap(t, seqB, 2, 120, 2)

	global := smap.NewMap(bow.Default())
	mg := New(global, seqA.Rig.Intr, DefaultConfig())
	if _, err := mg.Merge(mapA); err != nil {
		t.Fatalf("founding merge: %v", err)
	}

	// Record the global map's exact state: entity sets, poses,
	// positions.
	preKF := make(map[smap.ID]geom.SE3)
	for _, kf := range global.KeyFrames() {
		tcw, _, _ := global.KeyFrameState(kf.ID)
		preKF[kf.ID] = tcw
	}
	preMP := make(map[smap.ID]geom.Vec3)
	for _, mp := range global.MapPoints() {
		pos, _, _ := global.PointMatchState(mp.ID)
		preMP[mp.ID] = pos
	}
	// And the client map's poses in its own frame.
	preB := make(map[smap.ID]geom.SE3)
	for _, kf := range mapB.KeyFrames() {
		preB[kf.ID] = kf.Tcw
	}

	nan := math.NaN()
	mg.Sabotage = func(tx SabotageContext) {
		ids := tx.InsertedKFs()
		if len(ids) == 0 {
			t.Fatal("sabotage hook saw no inserted keyframes")
		}
		tx.SetKeyFramePose(ids[0], geom.SE3{
			R: geom.IdentityQuat(), T: geom.Vec3{X: nan, Y: nan, Z: nan},
		})
	}
	rep, err := mg.Merge(mapB)
	var rbErr *RollbackError
	if !errors.As(err, &rbErr) {
		t.Fatalf("sabotaged merge: err = %v, want *RollbackError", err)
	}
	if !rep.RolledBack {
		t.Error("report does not mark the rollback")
	}
	if len(rbErr.Violations) == 0 {
		t.Error("rollback error carries no violations")
	}

	// Global map: same entities, same state, invariant-clean.
	if got := global.NKeyFrames(); got != len(preKF) {
		t.Errorf("global keyframes after rollback: %d, want %d", got, len(preKF))
	}
	if got := global.NMapPoints(); got != len(preMP) {
		t.Errorf("global map points after rollback: %d, want %d", got, len(preMP))
	}
	for id, want := range preKF {
		tcw, _, ok := global.KeyFrameState(id)
		if !ok {
			t.Fatalf("keyframe %d lost in rollback", id)
		}
		if tcw.T.Dist(want.T) > 1e-9 || tcw.R.AngleTo(want.R) > 1e-9 {
			t.Errorf("keyframe %d pose not restored", id)
		}
	}
	for id, want := range preMP {
		pos, _, ok := global.PointMatchState(id)
		if !ok {
			t.Fatalf("map point %d lost in rollback", id)
		}
		if pos.Dist(want) > 1e-9 {
			t.Errorf("map point %d position not restored", id)
		}
	}
	if chk := smap.CheckInvariants(global); !chk.OK() {
		t.Fatalf("global map dirty after rollback: %s", chk.Summary())
	}

	// Client map: back in its own coordinates (transform + inverse
	// round-trip), structurally clean, ready for a retry.
	for id, want := range preB {
		kf, ok := mapB.KeyFrame(id)
		if !ok {
			t.Fatalf("client keyframe %d lost in rollback", id)
		}
		if kf.Tcw.T.Dist(want.T) > 1e-6 || kf.Tcw.R.AngleTo(want.R) > 1e-6 {
			t.Errorf("client keyframe %d not returned to local frame", id)
		}
	}
	if chk := smap.CheckInvariants(mapB); !chk.OK() {
		t.Fatalf("client map dirty after rollback: %s", chk.Summary())
	}

	// The retry — same maps, no sabotage — must succeed.
	mg.Sabotage = nil
	rep2, err := mg.Merge(mapB)
	if err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if rep2.Alignment == nil || rep2.FusedPts == 0 {
		t.Errorf("retry did not produce a real merge: %+v", rep2)
	}
	if got, want := global.NKeyFrames(), len(preKF)+mapB.NKeyFrames(); got != want {
		t.Errorf("keyframes after retry: %d, want %d", got, want)
	}
	if chk := smap.CheckInvariants(global); !chk.OK() {
		t.Fatalf("global map dirty after retry: %s", chk.Summary())
	}
}

// The founding insert is transactional too: a corrupted founding map
// is rejected wholesale and the global map stays empty.
func TestFoundingMergeRollback(t *testing.T) {
	global := smap.NewMap(bow.Default())
	client := smap.NewMap(bow.Default())
	client.AddKeyFrame(&smap.KeyFrame{ID: 1<<41 | 1, Tcw: geom.IdentitySE3()})
	mg := New(global, camera.EuRoCIntrinsics(), DefaultConfig())
	mg.Sabotage = func(tx SabotageContext) {
		tx.SetKeyFramePose(tx.InsertedKFs()[0], geom.SE3{
			R: geom.IdentityQuat(), T: geom.Vec3{X: math.Inf(1)},
		})
	}
	rep, err := mg.Merge(client)
	var rbErr *RollbackError
	if !errors.As(err, &rbErr) {
		t.Fatalf("err = %v, want *RollbackError", err)
	}
	if !rep.RolledBack || global.NKeyFrames() != 0 {
		t.Fatalf("founding rollback left %d keyframes", global.NKeyFrames())
	}
	mg.Sabotage = nil
	if _, err := mg.Merge(client); err != nil {
		t.Fatalf("retry after founding rollback: %v", err)
	}
	if global.NKeyFrames() != 1 {
		t.Error("retry did not insert the founding keyframe")
	}
}

func TestMergeFailsAcrossWorlds(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline test")
	}
	seqA := dataset.MH04(camera.Stereo)
	seqC := dataset.KITTI05(camera.Stereo) // different world entirely
	mapA, _ := buildClientMap(t, seqA, 1, 60, 2)
	mapC, _ := buildClientMap(t, seqC, 2, 60, 2)

	global := smap.NewMap(bow.Default())
	mg := New(global, seqA.Rig.Intr, DefaultConfig())
	if _, err := mg.Merge(mapA); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Merge(mapC); err == nil {
		t.Error("merge across unrelated worlds should fail")
	}
}

func TestRansacAlignWithOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := geom.Sim3FromSE3(geom.SE3{
		R: geom.QuatFromAxisAngle(geom.Vec3{X: 1, Y: 2, Z: 3}, 0.7),
		T: geom.Vec3{X: 5, Y: -3, Z: 1},
	})
	n := 60
	src := make([]geom.Vec3, n)
	dst := make([]geom.Vec3, n)
	for i := 0; i < n; i++ {
		src[i] = geom.Vec3{X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5, Z: rng.NormFloat64() * 5}
		dst[i] = truth.Apply(src[i])
		if i < 20 { // 33% outliers
			dst[i] = dst[i].Add(geom.Vec3{X: 3 + rng.Float64()*5, Y: -4, Z: 2})
		}
	}
	cfg := DefaultConfig()
	tf, inl, ok := ransacAlign(src, dst, cfg, rng)
	if !ok {
		t.Fatal("ransac failed")
	}
	if len(inl) < 38 || len(inl) > 42 {
		t.Errorf("inliers = %d, want ~40", len(inl))
	}
	// Check recovered transform on clean points.
	for i := 20; i < n; i++ {
		if tf.Apply(src[i]).Dist(dst[i]) > 0.05 {
			t.Fatalf("transform error at %d: %v", i, tf.Apply(src[i]).Dist(dst[i]))
		}
	}
}

func TestRansacAlignDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig()
	if _, _, ok := ransacAlign(nil, nil, cfg, rng); ok {
		t.Error("empty input accepted")
	}
	two := []geom.Vec3{{X: 1}, {Y: 1}}
	if _, _, ok := ransacAlign(two, two, cfg, rng); ok {
		t.Error("two points accepted")
	}
}

func TestFoundingMergeIntoEmptyGlobal(t *testing.T) {
	global := smap.NewMap(bow.Default())
	client := smap.NewMap(bow.Default())
	kf := &smap.KeyFrame{ID: 1<<41 | 1, Tcw: geom.IdentitySE3()}
	client.AddKeyFrame(kf)
	mg := New(global, camera.EuRoCIntrinsics(), DefaultConfig())
	rep, err := mg.Merge(client)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alignment != nil {
		t.Error("founding merge should not align")
	}
	if global.NKeyFrames() != 1 {
		t.Error("keyframe not inserted")
	}
}

func TestFusePointRedirectsObservations(t *testing.T) {
	global := smap.NewMap(bow.Default())
	kf := &smap.KeyFrame{ID: 1, Keypoints: make([]feature.Keypoint, 3)}
	global.AddKeyFrame(kf)
	a := &smap.MapPoint{ID: 10}
	b := &smap.MapPoint{ID: 20}
	global.AddMapPoint(a)
	global.AddMapPoint(b)
	if err := global.AddObservation(1, 10, 2); err != nil {
		t.Fatal(err)
	}
	mg := New(global, camera.EuRoCIntrinsics(), DefaultConfig())
	tx := newTxn(mg.Global)
	if !tx.fusePoint(10, 20) {
		t.Fatal("fuse failed")
	}
	if kf.MapPoints[2] != 20 {
		t.Error("observation not redirected")
	}
	if _, ok := global.MapPoint(10); ok {
		t.Error("client point not erased")
	}
	if _, ok := b.Obs[1]; !ok {
		t.Error("global point did not gain observation")
	}
	// Self-fuse and unknown ids are no-ops.
	if tx.fusePoint(20, 20) {
		t.Error("self fuse succeeded")
	}
	if tx.fusePoint(99, 20) || tx.fusePoint(20, 99) {
		t.Error("unknown point fuse succeeded")
	}
}

// A keyframe observing both points must not end up with two bindings
// to the survivor: the duplicate binding is dropped, not rebound.
func TestFusePointDropsDuplicateObservation(t *testing.T) {
	global := smap.NewMap(bow.Default())
	kf := &smap.KeyFrame{ID: 1, Keypoints: make([]feature.Keypoint, 4)}
	global.AddKeyFrame(kf)
	global.AddMapPoint(&smap.MapPoint{ID: 10, RefKF: 1})
	b := &smap.MapPoint{ID: 20, RefKF: 1}
	global.AddMapPoint(b)
	if err := global.AddObservation(1, 10, 1); err != nil {
		t.Fatal(err)
	}
	if err := global.AddObservation(1, 20, 3); err != nil {
		t.Fatal(err)
	}
	mg := New(global, camera.EuRoCIntrinsics(), DefaultConfig())
	if !newTxn(mg.Global).fusePoint(10, 20) {
		t.Fatal("fuse failed")
	}
	if kf.MapPoints[1] != 0 {
		t.Errorf("duplicate binding kept: keypoint 1 -> %d", kf.MapPoints[1])
	}
	if kf.MapPoints[3] != 20 {
		t.Errorf("original binding lost: keypoint 3 -> %d", kf.MapPoints[3])
	}
	if idx := b.Obs[1]; idx != 3 {
		t.Errorf("survivor backref = %d, want 3", idx)
	}
	if rep := smap.CheckInvariants(global); len(rep.Violations) != 0 {
		t.Errorf("invariant violations after fuse: %v", rep.Violations)
	}
}
