// Package merge implements the paper's map-merging algorithm (Alg. 2
// and §4.3.1): given a client's map and the shared global map, it
// detects common regions with bag-of-words place recognition over ALL
// the client's keyframes (not just incoming ones — the paper's key
// extension for late-joining clients), estimates the 3D alignment with
// RANSAC over Horn's method, transforms the client map, inserts it
// into the global map without copying (shared memory), fuses duplicate
// map points, and refines the seam with bundle adjustment.
package merge

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"slamshare/internal/bow"
	"slamshare/internal/camera"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/obs"
	"slamshare/internal/optimize"
	"slamshare/internal/smap"
)

// Config tunes merging.
type Config struct {
	// CandidatesPerKF is how many BoW hits to geometrically verify for
	// each client keyframe.
	CandidatesPerKF int
	// MinMatches is the minimum 3D-3D inlier correspondences for an
	// alignment to be accepted.
	MinMatches int
	// RansacIters bounds the RANSAC loop.
	RansacIters int
	// InlierTol is the 3D alignment inlier distance in metres.
	InlierTol float64
	// MaxRMSE rejects alignments whose inlier residual exceeds this
	// (guards against geometrically wrong matches on small maps).
	MaxRMSE float64
	// WithScale aligns in Sim3 (monocular maps) instead of SE3.
	WithScale bool
	// SeamBAIters caps the post-merge bundle adjustment.
	SeamBAIters int
	// MaxSeamKFs bounds the keyframes adjusted after the merge.
	MaxSeamKFs int
}

// DefaultConfig returns the merge parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		CandidatesPerKF: 5,
		MinMatches:      25,
		RansacIters:     4000,
		InlierTol:       0.35,
		MaxRMSE:         0.22,
		WithScale:       false,
		SeamBAIters:     6,
		MaxSeamKFs:      8,
	}
}

// Alignment is a verified common-region detection.
type Alignment struct {
	Transform geom.Sim3 // maps client-map coordinates into global-map coordinates
	Inliers   int
	// Pairs are the inlier correspondences (client point ID, global
	// point ID) used to fuse duplicates.
	Pairs [][2]smap.ID
	// ClientKF / GlobalKF are the keyframes that anchored the match.
	ClientKF smap.ID
	GlobalKF smap.ID
}

// Report is the timing breakdown of one merge — the SLAM-Share rows of
// Table 4.
type Report struct {
	Detect time.Duration // DetectCommonRegion over all client keyframes
	Align  time.Duration // RANSAC + Horn refinement
	Insert time.Duration // zero-copy insertion into the global map
	Fuse   time.Duration // duplicate map point fusion
	BA     time.Duration // seam bundle adjustment
	Total  time.Duration

	Alignment *Alignment // nil if no overlap was found
	FusedPts  int
	InsertKFs int
	InsertMPs int
	// RolledBack marks a merge whose pre-commit validation failed: the
	// global map was restored and the returned error is a
	// *RollbackError carrying the violations.
	RolledBack bool
}

// Journal receives the merge-level mutations the per-entity map
// observer (smap.Observer) cannot see: which duplicate points were
// fused into which survivors, and the pose corrections the seam bundle
// adjustment and essential-graph optimization applied. The persistence
// layer (internal/persist) implements it to make merges replayable
// after a crash; a nil Journal disables the notifications.
type Journal interface {
	// MergeApplied marks a merge boundary: the similarity transform
	// that carried the client map into global coordinates, and how many
	// keyframes/map points the zero-copy insert contributed.
	MergeApplied(tf geom.Sim3, insertedKFs, insertedMPs int)
	// PointsFused fires before clientPt's observations are redirected
	// to globalPt and clientPt is erased.
	PointsFused(clientPt, globalPt smap.ID)
	// PosesCorrected reports the post-adjustment keyframe poses and map
	// point positions the seam BA / essential graph produced.
	PosesCorrected(kfPoses map[smap.ID]geom.SE3, mpPositions map[smap.ID]geom.Vec3)
}

// Merger merges client maps into a global map.
type Merger struct {
	Global *smap.Map
	Intr   camera.Intrinsics
	Cfg    Config
	// Journal, when non-nil, is notified of merge-level mutations for
	// durability (see internal/persist).
	Journal Journal
	// Obs, when non-nil, records the merge's phase spans (detect,
	// align, insert, fuse, BA, total — the Table 4 breakdown) under
	// the ObsClient/ObsSeq trace the caller sets before Merge.
	Obs       *obs.Tracer
	ObsClient uint32
	ObsSeq    uint64
	// Sabotage, when non-nil, runs after the pipeline's mutations and
	// before pre-commit validation — a failpoint that emulates a
	// map-corrupting merge bug so tests and the chaos harness can prove
	// the transaction rolls back. Never set in production.
	Sabotage func(tx SabotageContext)
	// Reload, when non-nil, is offered each client keyframe's BoW
	// vector before candidate search, so the lifecycle manager can
	// pull an evicted cold region back into memory when the common
	// region lies inside it. It runs before the merge transaction
	// begins: an aborted merge rolls back only the entities the
	// transaction inserted, never a reloaded region.
	Reload func(bv bow.Vec)
	rng    *rand.Rand
}

// New returns a merger for the given global map.
func New(global *smap.Map, intr camera.Intrinsics, cfg Config) *Merger {
	if cfg.MinMatches == 0 {
		cfg = DefaultConfig()
	}
	return &Merger{Global: global, Intr: intr, Cfg: cfg, rng: rand.New(rand.NewSource(0x6E12))}
}

// DetectCommonRegion searches the global map for the region any of
// the client map's keyframes observes, and returns the verified
// alignment. This is Alg. 2 lines 6-10, extended to iterate every
// client keyframe so a late-joining client merges immediately: the
// 3D-3D correspondences from all (client keyframe, BoW candidate)
// pairs are pooled, and a single RANSAC alignment over the pool keeps
// only transforms that many keyframes agree on — a false per-pair
// match cannot recruit inliers from the other pairs.
func (mg *Merger) DetectCommonRegion(cmap *smap.Map) (Alignment, bool) {
	type corr struct {
		src, dst geom.Vec3
		cID, gID smap.ID
		cKF, gKF smap.ID
	}
	var pool []corr
	seen := make(map[[2]smap.ID]bool)
	for _, kf := range cmap.KeyFrames() {
		cPts, cIDs, cPos := observedPoints(cmap, kf.ID)
		if len(cPts) < 3 {
			continue
		}
		if mg.Reload != nil {
			mg.Reload(kf.Bow)
		}
		cands := mg.Global.QueryBow(kf.Bow, mg.Cfg.CandidatesPerKF, nil)
		for _, cand := range cands {
			gPts, gIDs, gPos := observedPoints(mg.Global, cand.ID)
			if len(gPts) < 3 {
				continue
			}
			// Cross-client descriptors differ more than within-client
			// ones (viewpoint changes patch adjacency), so match
			// loosely; RANSAC over the pooled set rejects the junk.
			matches := feature.MatchBrute(cPts, gPts, feature.MatchThresholdLoose, 0.9)
			for _, m := range matches {
				key := [2]smap.ID{cIDs[m.A], gIDs[m.B]}
				if seen[key] {
					continue
				}
				seen[key] = true
				pool = append(pool, corr{
					src: cPos[m.A], dst: gPos[m.B],
					cID: cIDs[m.A], gID: gIDs[m.B],
					cKF: kf.ID, gKF: cand.ID,
				})
			}
		}
		if len(pool) > 4000 {
			break
		}
	}
	if len(pool) < mg.Cfg.MinMatches {
		return Alignment{}, false
	}
	src := make([]geom.Vec3, len(pool))
	dst := make([]geom.Vec3, len(pool))
	for i, c := range pool {
		src[i] = c.src
		dst[i] = c.dst
	}
	tf, inl, ok := ransacAlign(src, dst, mg.Cfg, mg.rng)
	if !ok || len(inl) < mg.Cfg.MinMatches {
		return Alignment{}, false
	}
	// Residual gate: a wrong alignment would move the whole client map
	// and corrupt the global map through the seam adjustment.
	if mg.Cfg.MaxRMSE > 0 {
		s := make([]geom.Vec3, len(inl))
		d := make([]geom.Vec3, len(inl))
		for i, mi := range inl {
			s[i] = src[mi]
			d[i] = dst[mi]
		}
		if geom.AlignmentRMSE(tf, s, d) > mg.Cfg.MaxRMSE {
			return Alignment{}, false
		}
	}
	// Anchor the seam adjustment at the keyframe pair contributing the
	// most inliers.
	pairCount := make(map[[2]smap.ID]int)
	pairs := make([][2]smap.ID, len(inl))
	for i, mi := range inl {
		c := pool[mi]
		pairs[i] = [2]smap.ID{c.cID, c.gID}
		pairCount[[2]smap.ID{c.cKF, c.gKF}]++
	}
	var bestPair [2]smap.ID
	bestN := 0
	for p, n := range pairCount {
		if n > bestN {
			bestPair, bestN = p, n
		}
	}
	return Alignment{
		Transform: tf,
		Inliers:   len(inl),
		Pairs:     pairs,
		ClientKF:  bestPair[0],
		GlobalKF:  bestPair[1],
	}, true
}

// observedPoints returns pseudo-keypoints (descriptor carriers), ids,
// and positions of the map points a keyframe observes. Everything is
// read through the snapshot accessors: the global map is concurrently
// mutated by other sessions' mappers while the merger scans it, so the
// live keyframe/point pointers must not be dereferenced here.
func observedPoints(m *smap.Map, kfID smap.ID) ([]feature.Keypoint, []smap.ID, []geom.Vec3) {
	_, bindings, ok := m.KeyFrameState(kfID)
	if !ok {
		return nil, nil, nil
	}
	var kps []feature.Keypoint
	var ids []smap.ID
	var pos []geom.Vec3
	for _, mpID := range bindings {
		if mpID == 0 {
			continue
		}
		p, desc, ok := m.PointMatchState(mpID)
		if !ok {
			continue
		}
		kps = append(kps, feature.Keypoint{Desc: desc})
		ids = append(ids, mpID)
		pos = append(pos, p)
	}
	return kps, ids, pos
}

// ransacAlign estimates the similarity transform mapping src onto dst,
// robust to outlier correspondences. Returns the refined transform and
// the inlier indices.
func ransacAlign(src, dst []geom.Vec3, cfg Config, rng *rand.Rand) (geom.Sim3, []int, bool) {
	n := len(src)
	if n < 3 {
		return geom.IdentitySim3(), nil, false
	}
	bestInl := []int{}
	for iter := 0; iter < cfg.RansacIters; iter++ {
		i, j, k := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		if i == j || j == k || i == k {
			continue
		}
		tf, err := geom.AlignHorn(
			[]geom.Vec3{src[i], src[j], src[k]},
			[]geom.Vec3{dst[i], dst[j], dst[k]},
			cfg.WithScale,
		)
		if err != nil {
			continue
		}
		var inl []int
		for m := 0; m < n; m++ {
			if tf.Apply(src[m]).Dist(dst[m]) <= cfg.InlierTol {
				inl = append(inl, m)
			}
		}
		if len(inl) > len(bestInl) {
			bestInl = inl
			if len(bestInl) > n*9/10 {
				break
			}
		}
	}
	if len(bestInl) < 3 {
		return geom.IdentitySim3(), nil, false
	}
	// Iterative refinement: refit on the inlier set and re-score until
	// the inlier set stabilizes (at most 4 rounds).
	inl := bestInl
	var tf geom.Sim3
	for round := 0; round < 4; round++ {
		s := make([]geom.Vec3, len(inl))
		d := make([]geom.Vec3, len(inl))
		for i, m := range inl {
			s[i] = src[m]
			d[i] = dst[m]
		}
		var err error
		tf, err = geom.AlignHorn(s, d, cfg.WithScale)
		if err != nil {
			return geom.IdentitySim3(), nil, false
		}
		var next []int
		for m := 0; m < len(src); m++ {
			if tf.Apply(src[m]).Dist(dst[m]) <= cfg.InlierTol {
				next = append(next, m)
			}
		}
		if len(next) == len(inl) {
			inl = next
			break
		}
		inl = next
		if len(inl) < 3 {
			return geom.IdentitySim3(), nil, false
		}
	}
	return tf, inl, true
}

// Merge runs the full Alg. 2 pipeline: detect, align, transform,
// insert (zero-copy), fuse, seam BA. When the global map is empty, the
// client map is inserted as the founding map with no alignment. The
// client map's contents are owned by the global map afterwards.
//
// The pipeline is transactional: entities are inserted staged (not yet
// discoverable by place recognition), every mutation goes through an
// undo log, and the touched subgraph is validated against the map
// invariants before commit. On a validation failure everything is
// rolled back — the global map is as it was, the client map is carried
// back to its own coordinates for a later retry — and a *RollbackError
// is returned.
func (mg *Merger) Merge(cmap *smap.Map) (rep Report, err error) {
	t0 := time.Now()
	defer func() { mg.observe(t0, rep) }()
	rep.InsertKFs = cmap.NKeyFrames()
	rep.InsertMPs = cmap.NMapPoints()
	tx := newTxn(mg.Global)
	if mg.Global.NKeyFrames() == 0 {
		ti := time.Now()
		tx.insertAll(cmap)
		rep.Insert = time.Since(ti)
		if mg.Sabotage != nil {
			mg.Sabotage(tx)
		}
		if bad := mg.validate(tx); bad != nil {
			tx.rollback(cmap, geom.IdentitySim3(), false, mg.Journal)
			rep.RolledBack = true
			rep.Total = time.Since(t0)
			return rep, bad
		}
		tx.commit()
		rep.Total = time.Since(t0)
		return rep, nil
	}
	td := time.Now()
	al, found := mg.DetectCommonRegion(cmap)
	rep.Detect = time.Since(td)
	if !found {
		rep.Total = time.Since(t0)
		return rep, fmt.Errorf("merge: %w between client map (%d KFs) and global map (%d KFs)",
			ErrNoOverlap, cmap.NKeyFrames(), mg.Global.NKeyFrames())
	}
	rep.Alignment = &al

	// Transform the client map into global coordinates.
	ta := time.Now()
	cmap.ApplyTransform(al.Transform)
	rep.Align = time.Since(ta)

	// Journal the merge boundary before the insert so replay sees the
	// transform ahead of the keyframe/map-point records the insert
	// emits through the global map's observer.
	if mg.Journal != nil {
		mg.Journal.MergeApplied(al.Transform, rep.InsertKFs, rep.InsertMPs)
	}

	// Zero-copy insert (the shared-memory step: pointers only). Staged:
	// the new keyframes stay out of the BoW index until commit, so no
	// other session can anchor to entities this merge may roll back.
	ti := time.Now()
	tx.insertAll(cmap)
	rep.Insert = time.Since(ti)

	// Fuse duplicate points: each inlier pair collapses the client
	// point into the global point. The fuse record must precede the
	// erase record the fuse emits, so replay redirects the bindings
	// before the point disappears.
	tf := time.Now()
	for _, pair := range al.Pairs {
		if mg.Journal != nil {
			mg.Journal.PointsFused(pair[0], pair[1])
		}
		if tx.fusePoint(pair[0], pair[1]) {
			rep.FusedPts++
		}
	}
	rep.Fuse = time.Since(tf)

	// Seam bundle adjustment around the matched keyframes (Alg. 2
	// lines 13-15), then essential-graph optimization to propagate the
	// seam correction through the rest of the client map.
	tb := time.Now()
	kfSeam, mpSeam := mg.seamBA(tx, al)
	kfGraph := mg.essentialGraph(tx, cmap, al)
	rep.BA = time.Since(tb)

	if mg.Sabotage != nil {
		mg.Sabotage(tx)
	}
	if bad := mg.validate(tx); bad != nil {
		tx.rollback(cmap, al.Transform, true, mg.Journal)
		rep.RolledBack = true
		rep.FusedPts = 0
		rep.Total = time.Since(t0)
		return rep, bad
	}
	tx.commit()

	if mg.Journal != nil {
		kfPoses := make(map[smap.ID]geom.SE3, len(kfSeam)+len(kfGraph))
		for _, id := range kfSeam {
			if kf, ok := mg.Global.KeyFrame(id); ok {
				kfPoses[id] = kf.Tcw
			}
		}
		for _, id := range kfGraph {
			if kf, ok := mg.Global.KeyFrame(id); ok {
				kfPoses[id] = kf.Tcw
			}
		}
		mpPos := make(map[smap.ID]geom.Vec3, len(mpSeam))
		for _, id := range mpSeam {
			if mp, ok := mg.Global.MapPoint(id); ok {
				mpPos[id] = mp.Pos
			}
		}
		if len(kfPoses) > 0 || len(mpPos) > 0 {
			mg.Journal.PosesCorrected(kfPoses, mpPos)
		}
	}

	rep.Total = time.Since(t0)
	return rep, nil
}

// ErrNoOverlap marks a merge that found no common region between the
// client map and the global map. Callers that know the two maps share
// a coordinate frame anyway (cross-shard boundary imports: every shard
// anchors at the clients' world-frame priors) can fall back to Adopt.
var ErrNoOverlap = errors.New("no common region")

// Adopt inserts a client map into the global map at identity — no
// place recognition, no alignment — for maps already expressed in the
// global coordinate frame. It runs under the same transaction
// machinery as Merge: staged insert, sabotage failpoint, pre-commit
// subgraph validation, full rollback on violation. This is the
// cross-shard import path: a boundary region arriving from a peer
// shard is already in world coordinates, and usually has no
// covisibility overlap with this shard's map at all.
func (mg *Merger) Adopt(cmap *smap.Map) (rep Report, err error) {
	t0 := time.Now()
	defer func() { mg.observe(t0, rep) }()
	rep.InsertKFs = cmap.NKeyFrames()
	rep.InsertMPs = cmap.NMapPoints()
	tx := newTxn(mg.Global)
	ti := time.Now()
	tx.insertAll(cmap)
	rep.Insert = time.Since(ti)
	if mg.Sabotage != nil {
		mg.Sabotage(tx)
	}
	if bad := mg.validate(tx); bad != nil {
		tx.rollback(cmap, geom.IdentitySim3(), false, mg.Journal)
		rep.RolledBack = true
		rep.Total = time.Since(t0)
		return rep, bad
	}
	tx.commit()
	rep.Total = time.Since(t0)
	return rep, nil
}

// observe emits the merge's phase breakdown as spans under the
// caller-set (ObsClient, ObsSeq) trace. Phase start times are
// reconstructed by accumulating the measured durations from t0; the
// small gaps between phases (journal encoding) are attributed to the
// total span only.
func (mg *Merger) observe(t0 time.Time, rep Report) {
	if mg.Obs == nil {
		return
	}
	at := t0
	rec := func(name string, d time.Duration) {
		if d > 0 {
			mg.Obs.Stage(name).Observe(at, d, mg.ObsClient, mg.ObsSeq)
			at = at.Add(d)
		}
	}
	rec("merge.detect", rep.Detect)
	rec("merge.align", rep.Align)
	rec("merge.insert", rep.Insert)
	rec("merge.fuse", rep.Fuse)
	rec("merge.ba", rep.BA)
	mg.Obs.Stage("merge.total").Observe(t0, rep.Total, mg.ObsClient, mg.ObsSeq)
}

// validate audits the merge's touched subgraph against the map
// invariants; a violation means the pipeline corrupted something and
// the transaction must abort.
func (mg *Merger) validate(tx *txn) error {
	kfs, mps := tx.touched()
	if chk := mg.Global.CheckSubgraph(kfs, mps); !chk.OK() {
		return &RollbackError{Violations: chk.Violations}
	}
	return nil
}

// essentialGraph propagates the seam adjustment to the client
// keyframes outside the seam window: a pose graph over the client map
// with covisibility edges (relative poses measured before the seam
// adjustment warped the seam), anchored at the seam keyframe — the
// "essential graph optimization" of Alg. 2 line 15. It returns the
// keyframes whose poses it rewrote.
func (mg *Merger) essentialGraph(tx *txn, cmap *smap.Map, al Alignment) []smap.ID {
	kfs := cmap.KeyFrames()
	if len(kfs) < 3 {
		return nil
	}
	nodeIdx := make(map[smap.ID]int, len(kfs))
	g := &optimize.PoseGraph{}
	for i, kf := range kfs {
		nodeIdx[kf.ID] = i
		g.Poses = append(g.Poses, kf.Tcw.Inverse()) // body-to-world
		g.Fixed = append(g.Fixed, kf.ID == al.ClientKF)
	}
	// If the anchor keyframe is not in this map (already consumed by
	// the global map object), fix the first node instead.
	if _, ok := nodeIdx[al.ClientKF]; !ok {
		g.Fixed[0] = true
	}
	seen := make(map[[2]int]bool)
	for _, kf := range kfs {
		i := nodeIdx[kf.ID]
		for other, w := range kf.Conns {
			j, ok := nodeIdx[other]
			if !ok || i == j {
				continue
			}
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			g.Edges = append(g.Edges, optimize.PoseEdge{
				I: a, J: b,
				Z:      g.Poses[a].Inverse().Compose(g.Poses[b]),
				Weight: float64(w) / 100,
			})
		}
	}
	if len(g.Edges) == 0 {
		return nil
	}
	g.Optimize(5)
	// The client keyframes are in the global map by now (the staged
	// insert ran before the graph), so the poses are written through
	// the transaction's recorded setter over the global map's
	// stripe-locked path: concurrent snapshot readers in other sessions
	// never see a torn pose, and a rollback can restore the originals.
	out := make([]smap.ID, len(kfs))
	for i, kf := range kfs {
		tx.SetKeyFramePose(kf.ID, g.Poses[i].Inverse())
		out[i] = kf.ID
	}
	return out
}

// seamBA bundle-adjusts the keyframes around the merge seam: the
// matched client and global keyframes plus their covisible neighbours,
// with the global side fixed (the paper's essential-graph-lite). It
// returns the keyframes and map points whose state it rewrote.
func (mg *Merger) seamBA(tx *txn, al Alignment) ([]smap.ID, []smap.ID) {
	// Poses, bindings and point positions are read through the
	// stripe-locked snapshot accessors: the seam neighbourhood is the
	// live global map, which other sessions track against and adjust
	// concurrently. Keypoints are immutable and shared.
	ckf, ok1 := mg.Global.KeyFrame(al.ClientKF)
	gkf, ok2 := mg.Global.KeyFrame(al.GlobalKF)
	if !ok1 || !ok2 {
		return nil, nil
	}
	free := append(mg.Global.Covisible(ckf.ID, mg.Cfg.MaxSeamKFs/2), ckf)
	fixed := append(mg.Global.Covisible(gkf.ID, mg.Cfg.MaxSeamKFs/2), gkf)

	prob := &optimize.BAProblem{Intr: mg.Intr}
	camIdx := make(map[smap.ID]int)
	add := func(kfID smap.ID, isFixed bool) {
		if _, dup := camIdx[kfID]; dup {
			return
		}
		tcw, _, ok := mg.Global.KeyFrameState(kfID)
		if !ok {
			return
		}
		camIdx[kfID] = len(prob.Cams)
		prob.Cams = append(prob.Cams, tcw)
		prob.FixedCam = append(prob.FixedCam, isFixed)
	}
	for _, kf := range fixed {
		add(kf.ID, true)
	}
	for _, kf := range free {
		add(kf.ID, false)
	}
	ptIdx := make(map[smap.ID]int)
	var ptIDs []smap.ID
	for kfID := range camIdx {
		kf, ok := mg.Global.KeyFrame(kfID)
		if !ok {
			continue
		}
		_, bindings, ok := mg.Global.KeyFrameState(kfID)
		if !ok {
			continue
		}
		for kpI, mpID := range bindings {
			if mpID == 0 || kpI >= len(kf.Keypoints) {
				continue
			}
			pos, _, ok := mg.Global.PointMatchState(mpID)
			if !ok {
				continue
			}
			pi, ok := ptIdx[mpID]
			if !ok {
				pi = len(prob.Points)
				ptIdx[mpID] = pi
				ptIDs = append(ptIDs, mpID)
				prob.Points = append(prob.Points, pos)
			}
			prob.Obs = append(prob.Obs, optimize.Observation{
				Cam: camIdx[kfID], Pt: pi,
				UV: kf.Keypoints[kpI].Pt(),
			})
		}
	}
	if len(prob.Obs) < 20 {
		return nil, nil
	}
	prob.Solve(mg.Cfg.SeamBAIters)
	var kfChanged []smap.ID
	for kfID, ci := range camIdx {
		if prob.FixedCam[ci] {
			continue
		}
		if _, ok := mg.Global.KeyFrame(kfID); ok {
			tx.SetKeyFramePose(kfID, prob.Cams[ci])
			kfChanged = append(kfChanged, kfID)
		}
	}
	for i, mpID := range ptIDs {
		tx.SetMapPointPos(mpID, prob.Points[i])
	}
	return kfChanged, ptIDs
}
