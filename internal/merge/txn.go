package merge

import (
	"fmt"

	"slamshare/internal/geom"
	"slamshare/internal/smap"
)

// RollbackError reports a merge whose pre-commit validation found the
// touched subgraph violating the map invariants: every mutation was
// rolled back and the global map is as it was before the attempt. The
// server treats it as evidence of a poisonous client map and counts it
// toward quarantine rather than retrying immediately.
type RollbackError struct {
	Violations []smap.Violation
}

func (e *RollbackError) Error() string {
	if len(e.Violations) == 0 {
		return "merge: validation failed; rolled back"
	}
	return fmt.Sprintf("merge: validation failed (%d violations, first: %s); rolled back",
		len(e.Violations), e.Violations[0])
}

// SabotageContext exposes the recorded mutation paths of an in-flight
// merge transaction. A Sabotage failpoint corrupts the map exactly the
// way a buggy pipeline stage would — through the undo log — so the
// rollback machinery it is exercising can also restore what it broke.
type SabotageContext interface {
	SetKeyFramePose(id smap.ID, pose geom.SE3)
	SetMapPointPos(id smap.ID, pos geom.Vec3)
	InsertedKFs() []smap.ID
}

// txn is the merge transaction's undo log. Every mutation the pipeline
// makes to the global map is routed through it: the staged insert
// records the inserted IDs, each fuse records the pre-fuse observation
// snapshots, and the seam BA / essential-graph pose writes record the
// first-write old values. rollback replays the log backwards; commit
// publishes the staged keyframes for place recognition.
type txn struct {
	g           *smap.Map
	insertedKFs []smap.ID
	insertedMPs []smap.ID
	kfPoses     map[smap.ID]geom.SE3  // first-write old poses
	mpPos       map[smap.ID]geom.Vec3 // first-write old positions
	fused       []fuseUndo
}

type fuseUndo struct {
	from, to smap.ID
	fromObs  []smap.ObsEntry
	toHad    map[smap.ID]bool // to's observers before the fuse
}

func newTxn(g *smap.Map) *txn {
	return &txn{
		g:       g,
		kfPoses: make(map[smap.ID]geom.SE3),
		mpPos:   make(map[smap.ID]geom.Vec3),
	}
}

func (tx *txn) insertAll(cmap *smap.Map) {
	tx.insertedKFs, tx.insertedMPs = tx.g.InsertAllStaged(cmap)
}

// fusePoint snapshots both points' observation state, then fuses.
func (tx *txn) fusePoint(from, to smap.ID) bool {
	_, fromObs, okF := tx.g.PointObs(from)
	_, toObs, okT := tx.g.PointObs(to)
	if !okF || !okT {
		// One side is already gone; FusePoint is a no-op with nothing
		// to undo.
		return tx.g.FusePoint(from, to)
	}
	toHad := make(map[smap.ID]bool, len(toObs))
	for _, o := range toObs {
		toHad[o.KF] = true
	}
	if !tx.g.FusePoint(from, to) {
		return false
	}
	tx.fused = append(tx.fused, fuseUndo{from: from, to: to, fromObs: fromObs, toHad: toHad})
	return true
}

// SetKeyFramePose writes a pose through the undo log (SabotageContext).
func (tx *txn) SetKeyFramePose(id smap.ID, pose geom.SE3) {
	if _, rec := tx.kfPoses[id]; !rec {
		if old, _, ok := tx.g.KeyFrameState(id); ok {
			tx.kfPoses[id] = old
		}
	}
	tx.g.SetKeyFramePose(id, pose)
}

// SetMapPointPos writes a position through the undo log.
func (tx *txn) SetMapPointPos(id smap.ID, pos geom.Vec3) {
	if _, rec := tx.mpPos[id]; !rec {
		if old, _, ok := tx.g.PointMatchState(id); ok {
			tx.mpPos[id] = old
		}
	}
	tx.g.SetMapPointPos(id, pos)
}

// InsertedKFs returns the keyframes the staged insert contributed.
func (tx *txn) InsertedKFs() []smap.ID { return tx.insertedKFs }

// touched returns the subgraph the pre-commit validation must audit:
// everything inserted plus every entity whose state the pipeline
// rewrote (BA'd keyframes, moved points, fuse survivors).
func (tx *txn) touched() (kfs, mps []smap.ID) {
	kfSet := make(map[smap.ID]bool, len(tx.insertedKFs)+len(tx.kfPoses))
	for _, id := range tx.insertedKFs {
		kfSet[id] = true
	}
	for id := range tx.kfPoses {
		kfSet[id] = true
	}
	mpSet := make(map[smap.ID]bool, len(tx.insertedMPs)+len(tx.mpPos))
	for _, id := range tx.insertedMPs {
		mpSet[id] = true
	}
	for id := range tx.mpPos {
		mpSet[id] = true
	}
	for _, f := range tx.fused {
		mpSet[f.to] = true
	}
	kfs = make([]smap.ID, 0, len(kfSet))
	for id := range kfSet {
		kfs = append(kfs, id)
	}
	mps = make([]smap.ID, 0, len(mpSet))
	for id := range mpSet {
		mps = append(mps, id)
	}
	return kfs, mps
}

// commit publishes the staged keyframes to the BoW index; the merge is
// now fully visible to other sessions' place recognition.
func (tx *txn) commit() { tx.g.PublishKeyFrames(tx.insertedKFs) }

// rollback restores the global map to its pre-merge state and, when
// the client map was transformed into global coordinates, carries it
// back so a later retry starts clean:
//
//  1. every recorded pose/position is restored (and journaled, so a
//     WAL replay of the aborted merge converges to the same state);
//  2. each fuse's binding redirects are reversed, newest first;
//  3. the inserted entities are unlinked from the global map without
//     detaching the shared objects' cross-references;
//  4. the client map is mapped through the inverse transform.
//
// In the WAL the aborted merge nets out: the staged insert's add
// records are cancelled by the unlink's erase records, and replay's
// detaching erase scrubs the observation entries the fuse redirects
// added to surviving global points.
func (tx *txn) rollback(cmap *smap.Map, tf geom.Sim3, transformed bool, j Journal) {
	for id, pose := range tx.kfPoses {
		tx.g.SetKeyFramePose(id, pose)
	}
	for id, pos := range tx.mpPos {
		tx.g.SetMapPointPos(id, pos)
	}
	if j != nil && (len(tx.kfPoses) > 0 || len(tx.mpPos) > 0) {
		j.PosesCorrected(tx.kfPoses, tx.mpPos)
	}
	for i := len(tx.fused) - 1; i >= 0; i-- {
		f := tx.fused[i]
		tx.g.UndoFuse(f.from, f.to, f.fromObs, f.toHad)
	}
	tx.g.RemoveEntities(tx.insertedKFs, tx.insertedMPs)
	if transformed {
		cmap.ApplyTransform(tf.Inverse())
	}
}
