package cluster

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/protocol"
)

// poseLegacyLen is the pre-extension pose answer: frame index + 4x4
// matrix + tracked byte. A legacy decoder rejects any other length, so
// the cluster front must never let a longer form reach a session that
// didn't advertise capability bits.
const poseLegacyLen = 4 + 16*8 + 1

// TestLegacyClientThroughFront proves an old client speaks to a
// cluster front door unchanged: the legacy 5-byte hello (no rig, no
// QoS block) is replayed verbatim to the shard, frames without the
// timing tail are accepted, and every pose answer comes back in the
// exact legacy byte layout the old decoder parses.
func TestLegacyClientThroughFront(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full-resolution frames through a cluster")
	}
	clu := startCluster(t, 1, Partition{})

	conn, err := net.Dial("tcp", clu.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The legacy hello: client ID + mode, nothing else. The shard must
	// fall back to the default EuRoC rig — which is exactly MH04's, so
	// the frames below track correctly.
	const legacyID = 42
	raw := make([]byte, 5)
	binary.LittleEndian.PutUint32(raw, legacyID)
	raw[4] = byte(camera.Stereo)
	if _, err := protocol.DecodeHelloMsg(raw); err != nil {
		t.Fatalf("legacy hello no longer decodes: %v", err)
	}
	if err := protocol.WriteMessage(conn, protocol.TypeHello, raw); err != nil {
		t.Fatal(err)
	}

	seq := dataset.MH04(camera.Stereo)
	cl := client.New(legacyID, seq)
	tracked := 0
	for r := 0; r < 8; r++ {
		msg := cl.BuildFrame(r * 3)
		enc := msg.Encode()
		// Legacy senders predate the 16-byte timing tail.
		enc = enc[:len(enc)-16]
		if err := protocol.WriteMessage(conn, protocol.TypeFrame, enc); err != nil {
			t.Fatalf("round %d: send: %v", r, err)
		}
		conn.SetReadDeadline(time.Now().Add(60 * time.Second))
		for {
			mt, payload, err := protocol.ReadMessage(conn)
			if err != nil {
				t.Fatalf("round %d: read: %v", r, err)
			}
			if mt != protocol.TypePose {
				continue
			}
			// The answer must be bytes an old decoder parses: the exact
			// legacy length (no shed/echo tails — this session never
			// advertised the capabilities that unlock them).
			if len(payload) != poseLegacyLen {
				t.Fatalf("round %d: pose answer is %d bytes, legacy decoders need %d",
					r, len(payload), poseLegacyLen)
			}
			pm, err := protocol.DecodePoseMsg(payload)
			if err != nil {
				t.Fatalf("round %d: decode pose: %v", r, err)
			}
			if pm.Shed || pm.HasEcho {
				t.Fatalf("round %d: non-legacy fields set on a legacy session", r)
			}
			if pm.FrameIdx != msg.FrameIdx {
				continue
			}
			cl.ApplyPose(int(pm.FrameIdx), pm.Pose, pm.Tracked)
			if pm.Tracked {
				tracked++
			}
			break
		}
	}
	protocol.WriteMessage(conn, protocol.TypeBye, nil)
	if tracked == 0 {
		t.Error("legacy session never tracked — default rig fallback broken?")
	}
	clu.waitSessions(t)
}
