package cluster

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/protocol"
)

// dialShardPeer opens an authenticated shard-plane connection the way
// the front router does.
func dialShardPeer(tb testing.TB, addr string, role byte, sender uint32) net.Conn {
	tb.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		tb.Fatal(err)
	}
	hello := protocol.ShardHelloMsg{Role: role, SenderID: sender, Token: testToken}
	if err := protocol.WriteMessage(conn, protocol.TypeShardHello, hello.Encode()); err != nil {
		tb.Fatal(err)
	}
	return conn
}

// awaitShardReply reads until a message of the wanted type arrives.
func awaitShardReply(tb testing.TB, conn net.Conn, want byte) []byte {
	tb.Helper()
	conn.SetReadDeadline(time.Now().Add(60 * time.Second))
	for i := 0; i < 16; i++ {
		mt, payload, err := protocol.ReadMessage(conn)
		if err != nil {
			tb.Fatalf("awaiting shard message %d: %v", want, err)
		}
		if mt == want {
			return payload
		}
	}
	tb.Fatalf("shard message %d never arrived", want)
	return nil
}

// buildSourceMap drives one session against the shard until it has a
// region worth handing off, and leaves the session open (an export
// needs the client's keyframes resident).
func buildSourceMap(tb testing.TB, addr string, id uint32, frames int) net.Conn {
	tb.Helper()
	seq := halfRes(dataset.CityRoute("bench-src", [][2]int{{1, 1}, {2, 1}}, 7, camera.Stereo, 921))
	cl := client.New(id, seq)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		tb.Fatal(err)
	}
	hello := protocol.HelloMsg{
		ClientID: id, Mode: seq.Rig.Mode,
		HasRig: true, Intr: seq.Rig.Intr, Baseline: seq.Rig.Baseline,
	}
	if err := protocol.WriteMessage(conn, protocol.TypeHello, hello.Encode()); err != nil {
		tb.Fatal(err)
	}
	for r := 0; r < frames; r++ {
		msg := cl.BuildFrame(r * 4)
		if err := protocol.WriteMessage(conn, protocol.TypeFrame, msg.Encode()); err != nil {
			tb.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(60 * time.Second))
		for {
			mt, payload, err := protocol.ReadMessage(conn)
			if err != nil {
				tb.Fatal(err)
			}
			if mt != protocol.TypePose {
				continue
			}
			pm, err := protocol.DecodePoseMsg(payload)
			if err != nil {
				tb.Fatal(err)
			}
			if pm.FrameIdx != msg.FrameIdx {
				continue
			}
			cl.ApplyPose(int(pm.FrameIdx), pm.Pose, pm.Tracked)
			break
		}
	}
	return conn
}

// BenchmarkClusterMerge measures one full cross-shard merge: boundary
// export on the source shard, the region's trip over the wire, and
// the transactional import (rebuild, merge/adopt, undo-log commit) on
// a fresh target shard. The handoff is never committed, so the source
// keeps its region and every iteration moves the same workload.
func BenchmarkClusterMerge(b *testing.B) {
	const clientID = 31
	srcLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	src, err := NewShard(ShardOptions{ID: 0, Token: testToken}, srcLn)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	defer srcLn.Close()
	sess := buildSourceMap(b, srcLn.Addr().String(), clientID, 48)
	defer sess.Close()

	front := dialShardPeer(b, srcLn.Addr().String(), protocol.ShardRoleFront, 0)
	defer front.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tgtLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		tgt, err := NewShard(ShardOptions{ID: 1, Token: testToken}, tgtLn)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		begin := protocol.HandoffMsg{Phase: protocol.HandoffBegin, ClientID: clientID, Epoch: uint64(i + 1)}
		if err := protocol.WriteMessage(front, protocol.TypeHandoff, begin.Encode()); err != nil {
			b.Fatal(err)
		}
		region := awaitShardReply(b, front, protocol.TypeBoundaryRegion)
		peer := dialShardPeer(b, tgtLn.Addr().String(), protocol.ShardRolePeer, 0)
		if err := protocol.WriteMessage(peer, protocol.TypeBoundaryRegion, region); err != nil {
			b.Fatal(err)
		}
		ack, err := protocol.DecodeHandoffMsg(awaitShardReply(b, peer, protocol.TypeHandoff))
		if err != nil {
			b.Fatal(err)
		}
		if ack.Phase != protocol.HandoffAck {
			b.Fatalf("import nacked: %s", ack.Reason)
		}

		b.StopTimer()
		peer.Close()
		tgtLn.Close()
		tgt.Close()
		b.StartTimer()
	}
}

// BenchmarkClusterScale drives one session per shard through the
// front at 1, 2 and 4 shards over the same world, reporting aggregate
// tracked-frame throughput. Sessions stay inside their own slab so the
// numbers measure sharding's parallelism, not handoff traffic.
func BenchmarkClusterScale(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			const rounds, stride = 24, 4
			part := Partition{Min: 0, Max: 240, N: n, Hysteresis: 5}
			clu := startCluster(b, n, part)
			slabW := 240 / n
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for s := 0; s < n; s++ {
					s := s
					wg.Add(1)
					go func() {
						defer wg.Done()
						gx := s * slabW / 60 // vertical street on the slab's west edge
						seq := halfRes(dataset.CityRoute(
							fmt.Sprintf("bench-scale-%d-%d", n, s),
							[][2]int{{gx, 1}, {gx, 2}}, 7, camera.Stereo, int64(931+s)))
						runSession(b, clu.addr, uint32(21+s), seq, rounds, stride)
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			elapsed := b.Elapsed()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*n*rounds)/elapsed.Seconds(), "frames/s")
			}
		})
	}
}
