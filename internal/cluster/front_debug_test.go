package cluster

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"slamshare/internal/obs"
	"slamshare/internal/protocol"
)

// TestFrontRegisterDebug scrapes the front's failover gauges off a
// real /debug/vars endpoint, the way the front-kill chaos killer and
// operators do.
func TestFrontRegisterDebug(t *testing.T) {
	f := NewFront(FrontConfig{Shards: []string{"127.0.0.1:1"}})
	f.stats.SessionsAdopted.Add(3)
	f.stats.ResumeFailures.Add(1)
	f.stats.LedgerEvictions.Add(7)
	f.record(HandoffEvent{Client: 9, Epoch: 1, Committed: true})

	reg := obs.NewRegistry()
	f.RegisterDebug(reg)
	srv := httptest.NewServer(obs.Handler(obs.NewTracer(reg, 16)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"front.sessions_adopted": 3,
		"front.resume_failures":  1,
		"front.ledger_evictions": 7,
		"front.handoff_stalls":   0,
	}
	for name, v := range want {
		got, ok := snap.Counters[name]
		if !ok {
			t.Errorf("counter %s missing from /debug/vars", name)
			continue
		}
		if got != v {
			t.Errorf("counter %s = %d, want %d", name, got, v)
		}
	}
	if got, ok := snap.Vars["front.handoffs"]; !ok {
		t.Error("front.handoffs missing from /debug/vars")
	} else if n, _ := got.(float64); n != 1 {
		t.Errorf("front.handoffs = %v, want 1", got)
	}
}

// BenchmarkFrontAdopt measures the session-adoption handshake a
// failed-over client triggers on the surviving front: token decode and
// validation plus the owning shard's resume probe over a fresh admin
// connection. This is the per-session cost of a front failover, to
// compare against the full relocalization a tokenless reconnect pays.
func BenchmarkFrontAdopt(b *testing.B) {
	const clientID = 51
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	sh, err := NewShard(ShardOptions{ID: 0, Token: testToken}, ln)
	if err != nil {
		b.Fatal(err)
	}
	defer sh.Close()
	defer ln.Close()
	// Give the shard real resume state for the client (the probe answers
	// from the per-client answered-frame watermark).
	sess := buildSourceMap(b, ln.Addr().String(), clientID, 8)
	defer sess.Close()

	f := NewFront(FrontConfig{Shards: []string{ln.Addr().String()}, Token: testToken})
	tok := protocol.SessionTokenMsg{
		ClientID: clientID, Shard: 0, Epoch: 2,
		Marks: []protocol.ShardMark{{Shard: 0, MaxFrame: 28}},
	}
	payload := tok.Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &session{f: f, clientID: clientID}
		if !s.adopt(payload) {
			b.Fatal("adopt rejected a valid token")
		}
		if s.epoch < 2 || s.cur != 0 {
			b.Fatalf("adopt state: epoch=%d cur=%d", s.epoch, s.cur)
		}
	}
}
