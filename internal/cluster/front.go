package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"slamshare/internal/img"
	"slamshare/internal/metrics"
	"slamshare/internal/obs"
	"slamshare/internal/overload"
	"slamshare/internal/protocol"
	"slamshare/internal/video"
)

// FrontConfig configures the session router.
type FrontConfig struct {
	// Shards lists the shard addresses; the index is the shard ID the
	// partition maps positions to.
	Shards []string
	// Token authenticates the front on shard listeners.
	Token uint64
	// Part is the spatial sharding function.
	Part Partition
	// FrontID identifies this front in ShardHello sender fields.
	FrontID uint32
	// HandoffCooldown is the minimum spacing between handoff attempts
	// for one session — an aborted handoff (target refused or died)
	// must not be retried on the very next frame.
	HandoffCooldown time.Duration
	// DialTimeout bounds each shard dial; RedialBudget bounds the total
	// time a session keeps retrying a dead shard before giving up and
	// dropping the client. The same budget bounds the dead-on-arrival
	// cooldown loop: a shard that accepts connections but kills them
	// during a slow restart (WAL replay) is retried with capped jittered
	// backoff until the outage outlives the budget.
	DialTimeout  time.Duration
	RedialBudget time.Duration
	// MaxUnacked caps the per-session unacked-frame ledger; beyond it
	// the oldest pending frame is dropped (counted in
	// front.ledger_evictions) so a stalled client cannot grow front
	// memory without bound. 0 means the 256 default; negative disables
	// the cap.
	MaxUnacked int
	// HandoffStall is a test failpoint: it holds every handoff open for
	// this long between the source's boundary export and the offer to
	// the target, so a chaos harness can land a front SIGKILL
	// mid-handoff deterministically.
	HandoffStall time.Duration
	// Dial overrides the shard dialer (netem wrapping, in-process
	// transports). nil means net.DialTimeout.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
}

// FrontStats counts the failover-relevant front events, published on
// /debug/vars by RegisterDebug.
type FrontStats struct {
	// SessionsAdopted counts sessions resumed from a presented token;
	// ResumeFailures counts presented tokens that failed validation or
	// whose owning-shard probe failed.
	SessionsAdopted metrics.Counter
	ResumeFailures  metrics.Counter
	// LedgerEvictions counts pending frames dropped by the MaxUnacked
	// cap.
	LedgerEvictions metrics.Counter
	// HandoffStalls counts handoffs that entered the HandoffStall
	// failpoint window.
	HandoffStalls metrics.Counter
}

// HandoffEvent records one ownership-handoff attempt, committed or
// aborted. The per-session Epoch is strictly increasing across
// attempts, so the event log doubles as the monotonicity proof.
type HandoffEvent struct {
	Client    uint32
	Epoch     uint64
	From, To  uint32
	Committed bool
	Reason    string // why an aborted handoff failed
}

// Front is the cluster's door: devices connect here with the ordinary
// device protocol (legacy clients included) and the front proxies each
// session to the shard owning its current position, moving map-region
// ownership between shards as the session travels.
//
// The video stream is the subtle part: the device codec is a stateful
// delta stream whose inter frames only decode against the frames
// before them, but a handoff (or shard crash) gives the session a
// fresh server-side decoder that needs an intra reference — and the
// device has no idea anything happened. The front therefore owns the
// stream: it decodes the device's video (its decoder sees every frame
// from the stream's start, so it always has the reference) and
// re-encodes each frame on a per-shard-connection encoder. On every
// shard (re)connect the encoder is reset, so the first frame the new
// session sees is an intra and tracking resumes immediately — no
// client cooperation, no GOP-length blind window.
type Front struct {
	cfg    FrontConfig
	ln     net.Listener
	closed atomic.Bool
	wg     sync.WaitGroup
	stats  FrontStats
	// redial schedules the dead-on-arrival cooldown sleeps: capped
	// jittered exponential backoff keyed per client, deterministic for
	// a fixed front ID.
	redial overload.Backoff

	mu     sync.Mutex
	events []HandoffEvent
}

// NewFront builds a front router over the given shard table.
func NewFront(cfg FrontConfig) *Front {
	if cfg.HandoffCooldown == 0 {
		cfg.HandoffCooldown = 500 * time.Millisecond
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RedialBudget == 0 {
		cfg.RedialBudget = 30 * time.Second
	}
	if cfg.MaxUnacked == 0 {
		cfg.MaxUnacked = 256
	}
	if cfg.Part.N == 0 {
		cfg.Part.N = len(cfg.Shards)
	}
	return &Front{cfg: cfg, redial: overload.Backoff{
		Base: 100, Factor: 2, Max: 2000, Jitter: 0.2, Seed: int64(cfg.FrontID),
	}}
}

// Stats exposes the failover counters.
func (f *Front) Stats() *FrontStats { return &f.stats }

// RegisterDebug publishes the front gauges on an obs registry (served
// at /debug/vars by obs.Handler).
func (f *Front) RegisterDebug(reg *obs.Registry) {
	reg.RegisterCounter("front.sessions_adopted", &f.stats.SessionsAdopted)
	reg.RegisterCounter("front.resume_failures", &f.stats.ResumeFailures)
	reg.RegisterCounter("front.ledger_evictions", &f.stats.LedgerEvictions)
	reg.RegisterCounter("front.handoff_stalls", &f.stats.HandoffStalls)
	reg.RegisterFunc("front.handoffs", func() any {
		f.mu.Lock()
		defer f.mu.Unlock()
		return len(f.events)
	})
}

// Serve accepts device sessions on ln until Close. Blocks.
func (f *Front) Serve(ln net.Listener) error {
	f.ln = ln
	for {
		conn, err := ln.Accept()
		if err != nil {
			if f.closed.Load() {
				return nil
			}
			return err
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			f.serveSession(conn)
		}()
	}
}

// Close stops accepting and waits for the proxied sessions to end.
func (f *Front) Close() {
	f.closed.Store(true)
	if f.ln != nil {
		f.ln.Close()
	}
	f.wg.Wait()
}

// Events returns the handoff log.
func (f *Front) Events() []HandoffEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]HandoffEvent, len(f.events))
	copy(out, f.events)
	return out
}

func (f *Front) record(ev HandoffEvent) {
	f.mu.Lock()
	f.events = append(f.events, ev)
	f.mu.Unlock()
}

func (f *Front) dial(addr string) (net.Conn, error) {
	if f.cfg.Dial != nil {
		return f.cfg.Dial(addr, f.cfg.DialTimeout)
	}
	return net.DialTimeout("tcp", addr, f.cfg.DialTimeout)
}

// dialPeer opens a shard control connection and identifies as a
// cluster peer. sender is what the receiving shard sees as the message
// origin — for a boundary import that is the *source shard's* ID, so
// the target's import quarantine is charged per source.
func (f *Front) dialPeer(shard uint32, role byte, sender uint32) (net.Conn, error) {
	c, err := f.dial(f.cfg.Shards[shard])
	if err != nil {
		return nil, err
	}
	hello := protocol.ShardHelloMsg{Role: role, SenderID: sender, Token: f.cfg.Token}
	if err := protocol.WriteMessage(c, protocol.TypeShardHello, hello.Encode()); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// message is one framed protocol message in transit.
type message struct {
	mt      byte
	payload []byte
}

// pendingFrame is an uplink frame forwarded to a shard but not yet
// answered with a pose. The decoded camera images ride along so the
// frame can be re-encoded onto a fresh video stream if the session
// has to move or reconnect before the answer arrives.
type pendingFrame struct {
	mt      byte
	idx     uint32 // FrameIdx, matching the answering pose
	payload []byte // as last forwarded
	fm      protocol.FrameMsg
	left    *img.Gray // nil when the frame carries no decodable video
	right   *img.Gray
}

// session is one proxied device connection.
type session struct {
	f        *Front
	client   net.Conn
	clientID uint32
	helloRaw []byte // replayed verbatim on every shard (re)connect
	cur      uint32 // shard currently owning the session
	epoch    uint64 // handoff epoch, strictly increasing per attempt

	shard net.Conn
	down  chan message // closed when the shard connection dies

	// Stream transcoding state: dec* follow the device's video stream,
	// enc* produce the per-shard-connection stream (reset on every
	// reconnect so new server sessions start on an intra frame).
	decL, decR *video.Decoder
	encL, encR *video.Encoder

	// unacked holds uplink frames forwarded to the shard but not yet
	// answered with a pose. On a shard death or handoff they are
	// re-encoded and re-sent, so every client frame is answered
	// exactly once.
	unacked []pendingFrame

	// caps are the hello capability bits; token is the session's
	// resumable state, re-issued on every answered pose when the client
	// advertised CapResume. Both are owned by the serveSession loop.
	caps  byte
	token protocol.SessionTokenMsg

	// connGot tracks whether the current shard connection delivered
	// anything; strikes counts consecutive connections that died
	// without a single downlink message, driving the cooldown backoff;
	// outageStart marks when the current dead-on-arrival streak began
	// (zero while healthy) so a slowly-restarting shard is retried up
	// to the redial budget instead of orphaning the session.
	connGot     bool
	strikes     int
	outageStart time.Time

	lastHandoff time.Time
}

// serveSession proxies one device connection for its lifetime.
func (f *Front) serveSession(client net.Conn) {
	defer client.Close()
	s := &session{
		f: f, client: client,
		decL: video.NewDecoder(), decR: video.NewDecoder(),
		encL: video.NewEncoder(), encR: video.NewEncoder(),
	}

	// The device protocol opens with a hello; the session is routed on
	// the first frame's world-frame prior, so buffer until it arrives.
	var pending []message
	routed := false
	for !routed {
		mt, payload, err := protocol.ReadMessage(client)
		if err != nil {
			return
		}
		switch mt {
		case protocol.TypeHello:
			if s.helloRaw != nil {
				return // duplicate hello: the shard would drop it anyway
			}
			hm, err := protocol.DecodeHelloMsg(payload)
			if err != nil {
				return
			}
			s.clientID = hm.ClientID
			if hm.HasQoS {
				s.caps = hm.Caps
			}
			s.helloRaw = payload
		case protocol.TypeSessionToken:
			// A reconnecting client presents the token from its last
			// answered pose: adopt the session — any front replica can,
			// the token plus the owning shard's resume probe carry all
			// the state the dead front held in memory.
			if s.helloRaw == nil || !s.adopt(payload) {
				return
			}
			routed = true
		case protocol.TypeBye:
			return
		case protocol.TypeFrame:
			if s.helloRaw == nil {
				return // frame before hello
			}
			if fm, err := protocol.DecodeFrameMsg(payload); err == nil && fm.HasPrior {
				s.cur = f.cfg.Part.Shard(fm.Prior.T.X)
			}
			pending = append(pending, message{mt, payload})
			routed = true
		case protocol.TypeKeypoint:
			// A session pinned to split mode opens with a keypoint frame,
			// never a video frame; route it by the same world-frame prior.
			if s.helloRaw == nil {
				return
			}
			if km, err := protocol.DecodeKeypointMsg(payload); err == nil && km.HasPrior {
				s.cur = f.cfg.Part.Shard(km.Prior.T.X)
			}
			pending = append(pending, message{mt, payload})
			routed = true
		default:
			if s.helloRaw == nil {
				return
			}
			pending = append(pending, message{mt, payload})
		}
	}
	if !s.connectShard() {
		return
	}
	defer func() {
		if s.shard != nil {
			s.shard.Close()
		}
	}()

	// Uplink pump: one goroutine owns the client read side.
	up := make(chan message, 64)
	go func() {
		defer close(up)
		for {
			mt, payload, err := protocol.ReadMessage(client)
			if err != nil {
				return
			}
			up <- message{mt, payload}
		}
	}()

	for _, m := range pending {
		if !s.uplink(m) {
			return
		}
	}
	for {
		select {
		case m, ok := <-up:
			if !ok {
				// Client went away. Tell the shard if we still can.
				if s.shard != nil {
					protocol.WriteMessage(s.shard, protocol.TypeBye, nil)
				}
				return
			}
			if m.mt == protocol.TypeBye {
				if s.shard != nil {
					protocol.WriteMessage(s.shard, protocol.TypeBye, nil)
				}
				return
			}
			if !s.uplink(m) {
				return
			}
		case m, ok := <-s.down:
			if !ok {
				// Shard died outside a handoff: re-dial (the chaos tier
				// restarts killed shards on the same address) and resume.
				if !s.noteConnDeath() || !s.reconnectShard() {
					return
				}
				continue
			}
			if !s.downlink(m) {
				return
			}
		}
	}
}

// adopt resumes a session from a presented token. The token seeds the
// routing state (owning shard, handoff epoch, offload mode, partition
// position) the dead front held in memory; the owning shard's resume
// probe then continues the epoch sequence past anything the shard saw
// — including a handoff the dead front had begun but never committed.
// The unacked ledger starts empty on purpose: the client's own ledger
// is authoritative (it resends exactly the frames it has no answer
// for), and the token's marks prove receipt up to the watermark, so
// every in-flight frame is re-answered once or cleanly superseded.
// Returns false when the token is unusable.
func (s *session) adopt(payload []byte) bool {
	tok, err := protocol.DecodeSessionTokenMsg(payload)
	if err != nil || tok.ClientID != s.clientID || int(tok.Shard) >= len(s.f.cfg.Shards) {
		s.f.stats.ResumeFailures.Inc()
		return false
	}
	s.token = *tok
	s.cur = tok.Shard
	s.epoch = tok.Epoch
	// Best-effort epoch continuation: the shard remembers the newest
	// handoff epoch per client, so even if the dead front crashed
	// mid-handoff (after Begin, before commit) the next attempt's epoch
	// still exceeds every wire epoch the shards have seen.
	if st, err := s.f.probeResume(s.cur, s.clientID); err == nil {
		if st.ResumeEpoch > s.epoch {
			s.epoch = st.ResumeEpoch
		}
		s.f.stats.SessionsAdopted.Inc()
	} else {
		// The shard may itself be restarting; the session still resumes
		// through the ordinary reconnect path, just without the probe.
		s.f.stats.ResumeFailures.Inc()
	}
	return true
}

// probeResume asks a shard for one client's resume state over a fresh
// admin connection.
func (f *Front) probeResume(shard, clientID uint32) (*protocol.ShardStatusMsg, error) {
	c, err := f.dialPeer(shard, protocol.ShardRoleAdmin, f.cfg.FrontID)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	probe := protocol.ShardControlMsg{
		Op: protocol.ShardOpResume, Token: f.cfg.Token, ClientID: clientID,
	}
	if err := protocol.WriteMessage(c, protocol.TypeShardControl, probe.Encode()); err != nil {
		return nil, err
	}
	raw, err := readReply(c, protocol.TypeShardStatus, f.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	return protocol.DecodeShardStatusMsg(raw)
}

// noteConnDeath applies the dead-on-arrival cooldown policy when a
// shard connection closes before delivering anything. Rather than
// dropping the session after a fixed strike count (which orphaned
// every session of a shard doing a slow WAL replay on restart), the
// session sleeps a capped jittered backoff and retries until the
// outage has outlived the redial budget. Returns false when the
// session should be dropped.
func (s *session) noteConnDeath() bool {
	if s.connGot {
		s.strikes = 0
		s.outageStart = time.Time{}
		return true
	}
	if s.outageStart.IsZero() {
		s.outageStart = time.Now()
	} else if time.Since(s.outageStart) > s.f.cfg.RedialBudget {
		return false
	}
	time.Sleep(s.f.redial.DelayDuration(uint64(s.clientID), s.strikes))
	s.strikes++
	return true
}

// isFrame reports whether an uplink message expects a pose answer.
func isFrame(mt byte) bool {
	return mt == protocol.TypeFrame || mt == protocol.TypeKeypoint
}

// uplink handles one client message: route check (possibly a handoff),
// then transcode and forward. Returns false when the session must end.
func (s *session) uplink(m message) bool {
	if m.mt == protocol.TypeFrame {
		fm, err := protocol.DecodeFrameMsg(m.payload)
		if err != nil {
			// Undecodable frame: forward untouched and let the shard
			// apply its own rejection policy. Not tracked as unacked —
			// the shard never answers frames it rejects.
			return s.forward(m.mt, m.payload)
		}
		if fm.HasPrior {
			s.token.PosX = fm.Prior.T.X
			tgt := s.f.cfg.Part.ShardFrom(s.cur, fm.Prior.T.X)
			if tgt != s.cur && time.Since(s.lastHandoff) >= s.f.cfg.HandoffCooldown {
				if !s.drain() {
					return false
				}
				if !s.handoff(tgt) {
					return false
				}
			}
		}
		p := pendingFrame{mt: m.mt, idx: fm.FrameIdx, payload: m.payload, fm: *fm}
		// Advance the device-stream decoders and re-encode onto the
		// shard-connection stream. A decode failure falls back to
		// forwarding the original bytes (the shard will fail the frame
		// exactly as it would without a front in the path).
		if left, err := s.decL.Decode(fm.Video); err == nil {
			var right *img.Gray
			if len(fm.VideoRight) > 0 {
				right, err = s.decR.Decode(fm.VideoRight)
			}
			if err == nil {
				p.left, p.right = left, right
				p.payload = s.transcode(&p)
			}
		}
		s.unacked = append(s.unacked, p)
		return s.forwardPending()
	}
	if m.mt == protocol.TypeKeypoint {
		// Split-mode frames carry no video; forward verbatim but track
		// them for the exactly-once answer guarantee. FrameMsg and
		// KeypointMsg both open with ClientID then FrameIdx.
		p := pendingFrame{mt: m.mt, payload: m.payload}
		if len(m.payload) >= 8 {
			p.idx = binary.LittleEndian.Uint32(m.payload[4:8])
		}
		s.unacked = append(s.unacked, p)
		return s.forwardPending()
	}
	return s.forward(m.mt, m.payload)
}

// capLedger enforces the MaxUnacked bound, dropping oldest-first. A
// dropped frame is never re-sent on a reconnect — the client's own
// ledger still covers it, at the cost of a relocalize-grade answer.
func (s *session) capLedger() {
	max := s.f.cfg.MaxUnacked
	if max <= 0 || len(s.unacked) <= max {
		return
	}
	dropped := len(s.unacked) - max
	n := copy(s.unacked, s.unacked[dropped:])
	for i := n; i < len(s.unacked); i++ {
		s.unacked[i] = pendingFrame{} // release image buffers
	}
	s.unacked = s.unacked[:n]
	s.f.stats.LedgerEvictions.Add(int64(dropped))
}

// transcode re-encodes a pending frame's images on the current
// shard-connection encoders and returns the refreshed wire payload.
func (s *session) transcode(p *pendingFrame) []byte {
	fm := p.fm
	fm.Video = s.encL.Encode(p.left)
	if p.right != nil {
		fm.VideoRight = s.encR.Encode(p.right)
	}
	return fm.Encode()
}

// forwardPending caps the ledger and sends the most recently queued
// pending frame (capLedger drops oldest-first, so the new frame always
// survives the cap).
func (s *session) forwardPending() bool {
	s.capLedger()
	p := &s.unacked[len(s.unacked)-1]
	return s.forward(p.mt, p.payload)
}

// forward writes one message to the shard, reconnecting on failure.
func (s *session) forward(mt byte, payload []byte) bool {
	if err := protocol.WriteMessage(s.shard, mt, payload); err != nil {
		return s.reconnectShard()
	}
	return true
}

// downlink forwards one shard message to the client, settles the frame
// bookkeeping, and (for resume-capable clients) re-issues the session
// token on the answering pose. Returns false when the client write
// fails.
func (s *session) downlink(m message) bool {
	s.connGot = true
	switch m.mt {
	case protocol.TypePose:
		// PoseMsg opens with FrameIdx; settle the matching ledger entry
		// (not the head — a reconnect replay can answer out of order).
		if len(m.payload) >= 4 {
			idx := binary.LittleEndian.Uint32(m.payload[:4])
			s.settle(idx)
			if s.caps&protocol.CapResume != 0 {
				if tagged := s.attachToken(m.payload, idx); tagged != nil {
					m.payload = tagged
				}
			}
		}
	case protocol.TypeModeSwitch:
		// Track the offload mode into the token so an adopting front
		// resumes the session in the mode the client is actually in.
		if ms, err := protocol.DecodeModeSwitchMsg(m.payload); err == nil &&
			ms.Epoch >= s.token.ModeEpoch {
			s.token.Mode = ms.Mode
			s.token.ModeEpoch = ms.Epoch
		}
	}
	return protocol.WriteMessage(s.client, m.mt, m.payload) == nil
}

// settle removes the ledger entry answered by pose idx. No match is
// fine: the answer belongs to a frame the cap evicted, or to a frame
// some earlier front forwarded (post-adoption replays).
func (s *session) settle(idx uint32) {
	for i := range s.unacked {
		if s.unacked[i].idx == idx {
			n := len(s.unacked)
			copy(s.unacked[i:], s.unacked[i+1:])
			s.unacked[n-1] = pendingFrame{} // release image buffers
			s.unacked = s.unacked[:n-1]
			return
		}
	}
}

// attachToken re-issues the session token on an answered pose. The
// mark for the owning shard is set to this pose's own FrameIdx before
// encoding, so mark=i rides on answer i: possession of the token
// proves the client received every answer up to the mark, which makes
// the mark a sound dedup floor for whoever adopts the session next.
// Returns nil when the pose payload cannot be decoded (forward as-is).
func (s *session) attachToken(payload []byte, idx uint32) []byte {
	pm, err := protocol.DecodePoseMsg(payload)
	if err != nil {
		return nil
	}
	s.token.ClientID = s.clientID
	s.token.Shard = s.cur
	s.token.Epoch = s.epoch
	s.token.SetMark(s.cur, idx)
	pm.Token = s.token.Encode()
	return pm.Encode()
}

// drain waits until every forwarded frame has been answered — the
// handoff precondition (outstanding == 0 means the boundary export
// cannot race an in-flight tracking answer). Downlink messages keep
// flowing to the client while draining.
func (s *session) drain() bool {
	deadline := time.Now().Add(s.f.cfg.RedialBudget)
	for len(s.unacked) > 0 {
		if time.Now().After(deadline) {
			return false
		}
		m, ok := <-s.down
		if !ok {
			if !s.noteConnDeath() || !s.reconnectShard() {
				return false
			}
			continue
		}
		if !s.downlink(m) {
			return false
		}
	}
	return true
}

// connectShard dials the session's current shard, replays the original
// hello verbatim (so legacy hello encodings survive the front
// untouched), restarts the video stream — the encoders reset so the
// new server-side decoders open on an intra frame — re-encodes and
// re-sends any unanswered frames, and restarts the downlink pump.
func (s *session) connectShard() bool {
	conn, err := s.f.dial(s.f.cfg.Shards[s.cur])
	if err != nil {
		return false
	}
	if err := protocol.WriteMessage(conn, protocol.TypeHello, s.helloRaw); err != nil {
		conn.Close()
		return false
	}
	s.encL.Reset()
	s.encR.Reset()
	for i := range s.unacked {
		p := &s.unacked[i]
		if p.left != nil {
			p.payload = s.transcode(p)
		}
		if err := protocol.WriteMessage(conn, p.mt, p.payload); err != nil {
			conn.Close()
			return false
		}
	}
	s.shard = conn
	s.connGot = false
	down := make(chan message, 64)
	s.down = down
	go func() {
		defer close(down)
		for {
			mt, payload, err := protocol.ReadMessage(conn)
			if err != nil {
				return
			}
			down <- message{mt, payload}
		}
	}()
	return true
}

// reconnectShard retries connectShard against the current shard until
// the redial budget runs out. The shard's session resume path
// (relocalization against the recovered map) takes it from there.
func (s *session) reconnectShard() bool {
	if s.shard != nil {
		s.shard.Close()
		s.shard = nil
	}
	deadline := time.Now().Add(s.f.cfg.RedialBudget)
	for time.Now().Before(deadline) {
		if s.connectShard() {
			return true
		}
		time.Sleep(100 * time.Millisecond)
	}
	return false
}

// handoff moves the session (and its boundary map region) from s.cur
// to tgt. Precondition: no unanswered frames. On any failure the
// handoff aborts without the commit step — the source shard keeps
// ownership — and the session reconnects to wherever it ended up
// owned. Returns false only when the session cannot continue at all.
func (s *session) handoff(tgt uint32) bool {
	s.epoch++
	ev := HandoffEvent{Client: s.clientID, Epoch: s.epoch, From: s.cur, To: tgt}
	abort := func(why string) bool {
		ev.Reason = why
		s.f.record(ev)
		s.lastHandoff = time.Now()
		// The source still owns the region; the Bye below may already
		// have closed the session there, so reconnect and resume.
		return s.reconnectShard()
	}

	// Close the session on the source cleanly so its tracking state is
	// settled before the export (no mapper can insert behind it).
	protocol.WriteMessage(s.shard, protocol.TypeBye, nil)
	s.shard.Close()
	s.shard = nil
	for range s.down {
		// Drain the dying downlink; nothing in it can be a pose (we
		// drained before the handoff started).
	}

	src, err := s.f.dialPeer(s.cur, protocol.ShardRoleFront, s.f.cfg.FrontID)
	if err != nil {
		return abort("source control dial: " + err.Error())
	}
	defer src.Close()
	hm := &protocol.HandoffMsg{
		Phase:     protocol.HandoffBegin,
		ClientID:  s.clientID,
		Epoch:     s.epoch,
		FromShard: s.cur,
		ToShard:   tgt,
	}
	if err := protocol.WriteMessage(src, protocol.TypeHandoff, hm.Encode()); err != nil {
		return abort("handoff begin: " + err.Error())
	}
	regionRaw, err := readReply(src, protocol.TypeBoundaryRegion, s.f.cfg.RedialBudget)
	if err != nil {
		return abort("boundary export: " + err.Error())
	}
	if s.f.cfg.HandoffStall > 0 {
		// Failpoint: the source has exported (and recorded the begun
		// epoch) but nothing has been offered to the target yet — the
		// widest window in which a front death strands a handoff.
		s.f.stats.HandoffStalls.Inc()
		time.Sleep(s.f.cfg.HandoffStall)
	}

	// Offer the region to the target, identified as the source shard so
	// import quarantine is charged to the right peer.
	dst, err := s.f.dialPeer(tgt, protocol.ShardRolePeer, s.cur)
	if err != nil {
		return abort("target control dial: " + err.Error())
	}
	defer dst.Close()
	if err := protocol.WriteMessage(dst, protocol.TypeBoundaryRegion, regionRaw); err != nil {
		return abort("boundary offer: " + err.Error())
	}
	ackRaw, err := readReply(dst, protocol.TypeHandoff, s.f.cfg.RedialBudget)
	if err != nil {
		return abort("import answer: " + err.Error())
	}
	ack, err := protocol.DecodeHandoffMsg(ackRaw)
	if err != nil || ack.Epoch != s.epoch {
		return abort("import answer: bad handoff reply")
	}
	if ack.Phase != protocol.HandoffAck {
		return abort("import refused: " + ack.Reason)
	}

	// The target committed (its WAL end marker is durable). Erase the
	// source's copy to restore ownership disjointness.
	hm.Phase = protocol.HandoffCommit
	if err := protocol.WriteMessage(src, protocol.TypeHandoff, hm.Encode()); err == nil {
		readReply(src, protocol.TypeHandoff, s.f.cfg.RedialBudget) // CommitAck, best effort
	}
	s.cur = tgt
	ev.Committed = true
	s.f.record(ev)
	s.lastHandoff = time.Now()
	return s.reconnectShard()
}

// readReply reads framed messages until one of the wanted type arrives
// (interleaved unrelated types are not expected on control
// connections, but a bounded skip is cheap insurance).
func readReply(conn net.Conn, want byte, timeout time.Duration) ([]byte, error) {
	conn.SetReadDeadline(time.Now().Add(timeout))
	defer conn.SetReadDeadline(time.Time{})
	for i := 0; i < 16; i++ {
		mt, payload, err := protocol.ReadMessage(conn)
		if err != nil {
			return nil, err
		}
		if mt == want {
			return payload, nil
		}
	}
	return nil, errors.New("no matching reply")
}

// ListenAndServe is the cmd/slamshare-front entry: listen on addr and
// serve until the process dies.
func (f *Front) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("LISTENING %s\n", ln.Addr().String())
	return f.Serve(ln)
}
