package cluster

import (
	"fmt"
	"math"
	"net"
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/geom"
	"slamshare/internal/protocol"
	"slamshare/internal/server"
)

// halfRes mirrors the chaos harness's resolution halving (the cluster
// package cannot import chaos — chaos imports cluster).
func halfRes(seq *dataset.Sequence) *dataset.Sequence {
	in := seq.Rig.Intr
	in.Fx /= 2
	in.Fy /= 2
	in.Cx /= 2
	in.Cy /= 2
	in.Width /= 2
	in.Height /= 2
	rig := camera.NewMonoRig(in)
	if seq.Rig.Mode == camera.Stereo {
		rig = camera.NewStereoRig(in, seq.Rig.Baseline)
	}
	return &dataset.Sequence{
		Name:      seq.Name + "-half",
		World:     seq.World,
		Traj:      seq.Traj,
		Rig:       rig,
		FPS:       seq.FPS,
		IMURate:   seq.IMURate,
		Noise:     seq.Noise,
		RenderCfg: seq.RenderCfg,
		Seed:      seq.Seed,
	}
}

const testToken = 0xC0FFEE

// testCluster is an in-process 2-shard cluster behind a front.
type testCluster struct {
	shards []*server.Server
	addrs  []string
	front  *Front
	addr   string // front address devices dial
	lns    []net.Listener
}

func startCluster(t testing.TB, nShards int, part Partition) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < nShards; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewShard(ShardOptions{ID: uint32(i), Token: testToken}, ln)
		if err != nil {
			t.Fatal(err)
		}
		tc.shards = append(tc.shards, srv)
		tc.addrs = append(tc.addrs, ln.Addr().String())
		tc.lns = append(tc.lns, ln)
	}
	tc.front = NewFront(FrontConfig{
		Shards:          tc.addrs,
		Token:           testToken,
		Part:            part,
		HandoffCooldown: 200 * time.Millisecond,
	})
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tc.addr = fln.Addr().String()
	go tc.front.Serve(fln)
	t.Cleanup(func() {
		tc.front.Close()
		for i, srv := range tc.shards {
			tc.lns[i].Close()
			srv.Close()
		}
	})
	return tc
}

// waitSessions polls until every shard has drained to zero sessions
// (session teardown is asynchronous with connection death).
func (tc *testCluster) waitSessions(t testing.TB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		n := 0
		for _, srv := range tc.shards {
			n += srv.NSessions()
		}
		if n == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("shard sessions did not drain")
}

// sessionResult is what one lockstep walk through the front produced.
type sessionResult struct {
	sent      int
	answered  map[uint32]int // poses per frame index
	tracked   int
	wildPoses int // tracked poses further than the continuity bound from the client's own estimate
}

// runSession drives one lockstep device session through the front:
// build frame, send, wait for its pose, apply. Every pose downlink is
// recorded so duplicate or dropped answers are visible.
func runSession(t testing.TB, addr string, id uint32, seq *dataset.Sequence, rounds, stride int) *sessionResult {
	t.Helper()
	cl := client.New(id, seq)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := protocol.HelloMsg{
		ClientID: id,
		Mode:     seq.Rig.Mode,
		HasRig:   true,
		Intr:     seq.Rig.Intr,
		Baseline: seq.Rig.Baseline,
	}
	if err := protocol.WriteMessage(conn, protocol.TypeHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	res := &sessionResult{answered: make(map[uint32]int)}
	frame := 0
	for r := 0; r < rounds; r++ {
		msg := cl.BuildFrame(frame)
		frame += stride
		if err := protocol.WriteMessage(conn, protocol.TypeFrame, msg.Encode()); err != nil {
			t.Fatalf("round %d: send: %v", r, err)
		}
		res.sent++
		// Handoffs stall the stream while ownership moves; a generous
		// per-frame deadline keeps the test deterministic, not fast.
		conn.SetReadDeadline(time.Now().Add(60 * time.Second))
		for {
			mt, payload, err := protocol.ReadMessage(conn)
			if err != nil {
				t.Fatalf("round %d: read: %v", r, err)
			}
			if mt != protocol.TypePose {
				continue
			}
			pm, err := protocol.DecodePoseMsg(payload)
			if err != nil {
				t.Fatalf("round %d: decode pose: %v", r, err)
			}
			res.answered[pm.FrameIdx]++
			if pm.FrameIdx != msg.FrameIdx {
				continue
			}
			cl.ApplyPose(int(pm.FrameIdx), pm.Pose, pm.Tracked)
			if pm.Tracked && !pm.Shed {
				res.tracked++
				// Continuity: a tracked pose must land near the client's
				// own world-frame estimate — a handoff must not teleport
				// the session (the shards share one world frame).
				got := pm.Pose.Inverse().T
				want := msg.Prior.T
				if dist(got, want) > 20 {
					res.wildPoses++
				}
			}
			break
		}
	}
	protocol.WriteMessage(conn, protocol.TypeBye, nil)
	return res
}

func dist(a, b geom.Vec3) float64 {
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// TestOwnershipHandoff walks scripted sessions across (or along) the
// shard boundary and asserts the handoff contract: every frame
// answered exactly once, no teleporting poses, handoff epochs strictly
// increasing, committed handoffs matching the trajectory, anchors
// following the session, and the cluster invariants clean at the final
// quiescent point.
func TestOwnershipHandoff(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster handoff walk is seconds-long")
	}
	// Boundary at x = 90 m. The walks run at the urban profile the
	// chaos tier is tuned for (7 m/s, stride 4 → ~0.93 m between
	// tracked frames); larger strides lose visual tracking and the
	// session falls back to dead-reckoned priors.
	part := Partition{Min: 0, Max: 180, N: 2, Hysteresis: 5}
	cases := []struct {
		name   string
		route  [][2]int
		seed   int64
		rounds int
		stride int
		// wantCrossings is the exact committed-handoff count; wantShard
		// the shard that must own the session at the end.
		wantCrossings int
		wantShard     uint32
	}{
		// x runs 60 -> 180: crosses the 90 m boundary once (~round 38).
		{name: "cross-once", route: [][2]int{{1, 1}, {3, 1}}, seed: 901,
			rounds: 70, stride: 4, wantCrossings: 1, wantShard: 1},
		// A loop around a city block: x runs 60 -> 120, holds while the
		// route turns two corners, then returns 120 -> 60. Out and back
		// across the boundary with right-angle turns only — a straight
		// U-turn cannot keep visual tracking (the return view shares no
		// features with the outbound keyframes).
		{name: "cross-twice", route: [][2]int{{1, 1}, {2, 1}, {2, 2}, {1, 2}, {1, 1}}, seed: 902,
			rounds: 190, stride: 4, wantCrossings: 2, wantShard: 0},
		// x stays within shard 0's slab: no handoff at all.
		{name: "no-cross", route: [][2]int{{0, 1}, {1, 1}}, seed: 903,
			rounds: 30, stride: 4, wantCrossings: 0, wantShard: 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			clu := startCluster(t, 2, part)
			const clientID = 7
			seq := halfRes(dataset.CityRoute("handoff-"+tc.name, tc.route, 7, camera.Stereo, tc.seed))

			// An anchor placed on the session's first shard must follow
			// the session across the boundary.
			home := part.Shard(60) // routes start at x=60 (or inside slab 0)
			anchorPose := geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{X: 61, Y: 1, Z: 1.5}}
			anchorID := clu.shards[home].Anchors().Place("poster", anchorPose, clientID, 1.0)

			res := runSession(t, clu.addr, clientID, seq, tc.rounds, tc.stride)
			clu.waitSessions(t)

			// Every sent frame answered exactly once, nothing invented.
			if len(res.answered) != res.sent {
				t.Errorf("%d distinct frames answered, sent %d", len(res.answered), res.sent)
			}
			for idx, n := range res.answered {
				if n != 1 {
					t.Errorf("frame %d answered %d times", idx, n)
				}
			}
			if res.tracked == 0 {
				t.Fatal("no tracked poses at all")
			}
			if res.wildPoses > 0 {
				t.Errorf("%d tracked poses broke the 20 m continuity bound", res.wildPoses)
			}

			// Handoff log: per-session epochs strictly increasing, the
			// committed crossings match the trajectory.
			events := clu.front.Events()
			var lastEpoch uint64
			committed := 0
			cur := home
			for _, ev := range events {
				if ev.Client != clientID {
					t.Errorf("handoff event for unknown client %d", ev.Client)
				}
				if ev.Epoch <= lastEpoch {
					t.Errorf("handoff epoch %d not strictly increasing (prev %d)", ev.Epoch, lastEpoch)
				}
				lastEpoch = ev.Epoch
				if ev.Committed {
					committed++
					if ev.From != cur {
						t.Errorf("handoff from shard %d, session was on %d", ev.From, cur)
					}
					cur = ev.To
				}
			}
			if committed != tc.wantCrossings {
				t.Errorf("%d committed handoffs, want %d (events: %+v)", committed, tc.wantCrossings, events)
			}
			if cur != tc.wantShard {
				t.Errorf("session ended on shard %d, want %d", cur, tc.wantShard)
			}

			// The anchor followed the session: whichever shard owns the
			// session now must hold the anchor at the exact same pose.
			if a, ok := clu.shards[cur].Anchors().Get(anchorID); !ok {
				t.Errorf("anchor %d missing on final shard %d", anchorID, cur)
			} else if got := a.Pose.T; dist(got, anchorPose.T) > 1e-9 {
				t.Errorf("anchor %d pose drifted: %+v", anchorID, got)
			}

			// Cluster invariants at the quiescent end state: per-shard
			// map invariants plus cross-shard ownership disjointness.
			rep, err := CheckCluster(clu.addrs, testToken)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Errorf("cluster invariants: %s", describe(rep))
			}
			// A committed crossing must actually have moved map material.
			if tc.wantCrossings > 0 && rep.Shards[tc.wantShard].KeyFrames == 0 {
				t.Errorf("shard %d owns the session but no keyframes", tc.wantShard)
			}
		})
	}
}

func describe(rep *ClusterReport) string {
	s := rep.Summary()
	for _, v := range rep.Violations {
		s += "\n  cross-shard: " + v
	}
	for _, sh := range rep.Shards {
		for _, v := range sh.Violations {
			s += fmt.Sprintf("\n  shard %d: %s", sh.ID, v)
		}
	}
	return s
}

// TestPartitionHysteresis pins the routing function's boundary
// behaviour: inside the band the session stays put, past it the
// session moves, and positions clamp to the edge slabs.
func TestPartitionHysteresis(t *testing.T) {
	p := Partition{Min: 0, Max: 240, N: 2, Hysteresis: 5}
	cases := []struct {
		cur  uint32
		x    float64
		want uint32
	}{
		{0, 0, 0}, {0, 119, 0}, {0, 121, 0}, {0, 124.9, 0}, // inside the band
		{0, 125.1, 1}, {0, 240, 1}, {0, 500, 1}, // past it (and clamped)
		{1, 121, 1}, {1, 115.1, 1}, {1, 114.9, 0}, // symmetric on the way back
		{1, -50, 0}, // clamped low
	}
	for _, tc := range cases {
		if got := p.ShardFrom(tc.cur, tc.x); got != tc.want {
			t.Errorf("ShardFrom(%d, %v) = %d, want %d", tc.cur, tc.x, got, tc.want)
		}
	}
	if p.Shard(-10) != 0 || p.Shard(250) != 1 || p.Shard(60) != 0 || p.Shard(130) != 1 {
		t.Error("Shard() clamping or slab mapping wrong")
	}
	one := Partition{Min: 0, Max: 240, N: 1}
	if one.Shard(9000) != 0 || one.ShardFrom(0, 9000) != 0 {
		t.Error("single-shard partition must pin everything to shard 0")
	}
}
