package cluster

import (
	"fmt"
	"math"
	"net"
	"time"

	"slamshare/internal/protocol"
	"slamshare/internal/smap"
)

// ShardReport is one shard's answer to the cluster audit.
type ShardReport struct {
	ID         uint32
	KeyFrames  int
	Anchors    int
	Violations []string // smap.CheckInvariants findings on that shard
}

// ClusterReport is the cluster-level invariant audit: per-shard map
// invariants plus the cross-shard conditions that make the sharded map
// a single consistent world — no keyframe owned by two shards, and
// anchors replicated across shards agree on their pose.
type ClusterReport struct {
	Shards     []ShardReport
	Violations []string // cross-shard findings
}

// OK reports whether the audit found nothing.
func (r *ClusterReport) OK() bool {
	if len(r.Violations) > 0 {
		return false
	}
	for _, s := range r.Shards {
		if len(s.Violations) > 0 {
			return false
		}
	}
	return true
}

// Summary renders the report as one line.
func (r *ClusterReport) Summary() string {
	if r.OK() {
		total := 0
		for _, s := range r.Shards {
			total += s.KeyFrames
		}
		return fmt.Sprintf("ok (%d shards, %d KFs total)", len(r.Shards), total)
	}
	n := len(r.Violations)
	for _, s := range r.Shards {
		n += len(s.Violations)
	}
	return fmt.Sprintf("%d violations across %d shards", n, len(r.Shards))
}

// anchorPoseTol is the cross-shard anchor pose agreement tolerance.
// Anchors move between shards as exact bit copies, so this only
// absorbs float formatting, not drift.
const anchorPoseTol = 1e-9

// CheckCluster audits the cluster at a quiescent point (no frames in
// flight, no handoff mid-protocol): every shard runs its own
// smap.CheckInvariants, then the ownership sets are compared across
// shards. Meaningful only when the caller has quiesced the cluster —
// mid-handoff there is a deliberate transient window where both shards
// hold the moving region.
func CheckCluster(addrs []string, token uint64) (*ClusterReport, error) {
	rep := &ClusterReport{}
	type shardState struct {
		kfs     []uint64
		anchors []protocol.AnchorState
	}
	states := make([]shardState, len(addrs))
	for i, addr := range addrs {
		sr := ShardReport{ID: uint32(i)}
		st, err := probe(addr, token, protocol.ShardOpCheck)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d check: %w", i, err)
		}
		sr.Violations = st.Violations
		own, err := probe(addr, token, protocol.ShardOpOwnership)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d ownership: %w", i, err)
		}
		sr.KeyFrames = len(own.KFIDs)
		sr.Anchors = len(own.Anchors)
		states[i] = shardState{kfs: own.KFIDs, anchors: own.Anchors}
		rep.Shards = append(rep.Shards, sr)
	}

	// Cross-shard: every keyframe has exactly one owner.
	owner := make(map[uint64]int)
	for i, st := range states {
		for _, id := range st.kfs {
			if prev, dup := owner[id]; dup {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"kf-owned-twice: keyframe %d (client %d) owned by shard %d and shard %d",
					id, smap.ClientOf(smap.ID(id)), prev, i))
				continue
			}
			owner[id] = i
		}
	}
	// Cross-shard: replicated anchors agree on pose.
	seen := make(map[uint64]struct {
		shard int
		a     protocol.AnchorState
	})
	for i, st := range states {
		for _, a := range st.anchors {
			prev, ok := seen[a.ID]
			if !ok {
				seen[a.ID] = struct {
					shard int
					a     protocol.AnchorState
				}{i, a}
				continue
			}
			if poseDist(prev.a, a) > anchorPoseTol {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"anchor-divergent: anchor %d pose differs between shard %d and shard %d",
					a.ID, prev.shard, i))
			}
		}
	}
	return rep, nil
}

// ShardStats probes one shard's atomic counters (safe mid-import).
func ShardStats(addr string, token uint64) (protocol.ShardStats, error) {
	st, err := probe(addr, token, protocol.ShardOpStats)
	if err != nil {
		return protocol.ShardStats{}, err
	}
	return st.Stats, nil
}

// Ping checks shard liveness.
func Ping(addr string, token uint64) error {
	_, err := probe(addr, token, protocol.ShardOpPing)
	return err
}

// probe runs one admin control round trip.
func probe(addr string, token uint64, op byte) (*protocol.ShardStatusMsg, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	hello := protocol.ShardHelloMsg{Role: protocol.ShardRoleAdmin, Token: token}
	if err := protocol.WriteMessage(conn, protocol.TypeShardHello, hello.Encode()); err != nil {
		return nil, err
	}
	cm := protocol.ShardControlMsg{Op: op, Token: token}
	if err := protocol.WriteMessage(conn, protocol.TypeShardControl, cm.Encode()); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	mt, payload, err := protocol.ReadMessage(conn)
	if err != nil {
		return nil, err
	}
	if mt != protocol.TypeShardStatus {
		return nil, fmt.Errorf("cluster: unexpected reply type %d to control op %d", mt, op)
	}
	return protocol.DecodeShardStatusMsg(payload)
}

// poseDist is the max absolute difference across the two poses'
// rotation and translation components.
func poseDist(a, b protocol.AnchorState) float64 {
	d := 0.0
	acc := func(x, y float64) {
		if v := math.Abs(x - y); v > d {
			d = v
		}
	}
	acc(a.Pose.R.W, b.Pose.R.W)
	acc(a.Pose.R.X, b.Pose.R.X)
	acc(a.Pose.R.Y, b.Pose.R.Y)
	acc(a.Pose.R.Z, b.Pose.R.Z)
	acc(a.Pose.T.X, b.Pose.T.X)
	acc(a.Pose.T.Y, b.Pose.T.Y)
	acc(a.Pose.T.Z, b.Pose.T.Z)
	return d
}
