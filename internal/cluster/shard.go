package cluster

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"slamshare/internal/obs"
	"slamshare/internal/persist"
	"slamshare/internal/server"
)

// ShardOptions configure one shard server process.
type ShardOptions struct {
	// ID is the shard's index in the front's shard table.
	ID uint32
	// Token authenticates cluster peers (front, sibling shards, admin
	// probes) on the shard's listener.
	Token uint64
	// Dir, when non-empty, enables WAL persistence rooted there —
	// required for crash/recovery scenarios.
	Dir string
	// ImportStall is the crash-window failpoint passed through to
	// server.ShardConfig (test harnesses only).
	ImportStall time.Duration
}

// ShardConfig builds the server configuration for a cluster shard:
// the chaos-tier pipeline tuning (half-resolution frames, urban
// vehicular tracking profile, fast map growth) plus the shard
// identity. City-grid routes are what cluster scenarios drive, so the
// urban profile is unconditional here.
func ShardConfig(opts ShardOptions) server.Config {
	cfg := server.DefaultConfig()
	cfg.MergeAfterKFs = 4
	cfg.TrackCfg.KFMinInterval = 2
	cfg.TrackCfg.MinInliers = 10
	cfg.TrackCfg.KFTrackedRatio = 0.85
	cfg.MergeCfg.MinMatches = 12
	cfg.MergeCfg.InlierTol = 0.5
	cfg.MergeCfg.MaxRMSE = 0.3
	cfg.Shard = server.ShardConfig{
		ID:          opts.ID,
		Token:       opts.Token,
		ImportStall: opts.ImportStall,
	}
	if opts.Dir != "" {
		// Journal-only persistence: recovery replays the WAL from the
		// last (absent) checkpoint, the hardest recovery path.
		cfg.Persist = persist.Options{Dir: opts.Dir, CheckpointEvery: -1}
	}
	return cfg
}

// NewShard builds and starts a shard server on the given listener.
func NewShard(opts ShardOptions, ln net.Listener) (*server.Server, error) {
	srv, err := server.New(ShardConfig(opts))
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	return srv, nil
}

// Environment variables the multi-process harness and slamshare-server
// use to parameterize a shard or front child process.
const (
	EnvProc        = "SLAMSHARE_PROC"
	EnvAddr        = "SLAMSHARE_ADDR"
	EnvShardID     = "SLAMSHARE_SHARD_ID"
	EnvToken       = "SLAMSHARE_TOKEN"
	EnvDir         = "SLAMSHARE_DIR"
	EnvImportStall = "SLAMSHARE_IMPORT_STALL"
	// EnvStartDelay (ms) makes ShardEnvMain listen and print its
	// address immediately but kill every accepted connection for the
	// delay window before starting the real server — a stand-in for a
	// shard doing a slow WAL replay on restart.
	EnvStartDelay = "SLAMSHARE_START_DELAY"
	// Front child parameters: the comma-separated shard address table,
	// the front ID, the partition edges, the handoff-stall failpoint,
	// and the debug (obs.Handler) listen address.
	EnvShards       = "SLAMSHARE_SHARDS"
	EnvFrontID      = "SLAMSHARE_FRONT_ID"
	EnvPartEdges    = "SLAMSHARE_PART_EDGES"
	EnvHandoffStall = "SLAMSHARE_HANDOFF_STALL"
	EnvDebugAddr    = "SLAMSHARE_DEBUG_ADDR"
)

// ShardEnvMain runs a shard server parameterized entirely by
// environment variables and blocks forever. The chaos harness re-execs
// the (race-instrumented) test binary with SLAMSHARE_PROC=shard to get
// real multi-process topologies; the harness learns the actual listen
// address from the "LISTENING <addr>" line on stdout.
func ShardEnvMain() {
	addr := os.Getenv(EnvAddr)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	id, _ := strconv.ParseUint(os.Getenv(EnvShardID), 10, 32)
	token, _ := strconv.ParseUint(os.Getenv(EnvToken), 10, 64)
	stallMs, _ := strconv.ParseInt(os.Getenv(EnvImportStall), 10, 64)
	delayMs, _ := strconv.ParseInt(os.Getenv(EnvStartDelay), 10, 64)
	opts := ShardOptions{
		ID:          uint32(id),
		Token:       token,
		Dir:         os.Getenv(EnvDir),
		ImportStall: time.Duration(stallMs) * time.Millisecond,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard %d: listen %s: %v\n", opts.ID, addr, err)
		os.Exit(1)
	}
	// The harness scrapes this exact line; keep the format stable.
	fmt.Printf("LISTENING %s\n", ln.Addr().String())
	os.Stdout.Sync()
	if delayMs > 0 {
		// Slow-restart failpoint: the port is open (the address is
		// already published) but the server is "replaying its WAL" —
		// every connection accepted in the window dies immediately,
		// which is exactly what a front's dial-then-dead reconnect
		// sees against a recovering shard.
		deadline := time.Now().Add(time.Duration(delayMs) * time.Millisecond)
		for time.Now().Before(deadline) {
			ln.(*net.TCPListener).SetDeadline(deadline)
			c, err := ln.Accept()
			if err != nil {
				break
			}
			c.Close()
		}
		ln.(*net.TCPListener).SetDeadline(time.Time{})
	}
	if _, err := NewShard(opts, ln); err != nil {
		fmt.Fprintf(os.Stderr, "shard %d: %v\n", opts.ID, err)
		os.Exit(1)
	}
	select {} // killed by the parent (SIGKILL is the point of the tier)
}

// FrontEnvMain runs a front router parameterized entirely by
// environment variables and blocks forever — the front-failover chaos
// tier re-execs the test binary with SLAMSHARE_PROC=front to get a
// real replicated-front topology it can SIGKILL. EnvShards is the
// comma-separated shard address table (identical across replicas),
// EnvPartEdges is "min,max,hysteresis" for the spatial partition, and
// EnvDebugAddr, when set, serves /debug/vars with the front gauges;
// its actual address is printed as "DEBUG <addr>" before the
// "LISTENING <addr>" line the harness scrapes.
func FrontEnvMain() {
	addr := os.Getenv(EnvAddr)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	id, _ := strconv.ParseUint(os.Getenv(EnvFrontID), 10, 32)
	token, _ := strconv.ParseUint(os.Getenv(EnvToken), 10, 64)
	stallMs, _ := strconv.ParseInt(os.Getenv(EnvHandoffStall), 10, 64)
	shards := strings.Split(os.Getenv(EnvShards), ",")
	cfg := FrontConfig{
		Shards:       shards,
		Token:        token,
		FrontID:      uint32(id),
		HandoffStall: time.Duration(stallMs) * time.Millisecond,
		Part:         Partition{N: len(shards)},
	}
	if edges := os.Getenv(EnvPartEdges); edges != "" {
		parts := strings.Split(edges, ",")
		if len(parts) == 3 {
			cfg.Part.Min, _ = strconv.ParseFloat(parts[0], 64)
			cfg.Part.Max, _ = strconv.ParseFloat(parts[1], 64)
			cfg.Part.Hysteresis, _ = strconv.ParseFloat(parts[2], 64)
		}
	}
	f := NewFront(cfg)
	if dbgAddr := os.Getenv(EnvDebugAddr); dbgAddr != "" {
		reg := obs.NewRegistry()
		f.RegisterDebug(reg)
		dln, err := net.Listen("tcp", dbgAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "front %d: debug listen %s: %v\n", id, dbgAddr, err)
			os.Exit(1)
		}
		fmt.Printf("DEBUG %s\n", dln.Addr().String())
		go http.Serve(dln, obs.Handler(obs.NewTracer(reg, obs.DefaultRingSize)))
	}
	if err := f.ListenAndServe(addr); err != nil {
		fmt.Fprintf(os.Stderr, "front %d: %v\n", id, err)
		os.Exit(1)
	}
}
