package cluster

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"time"

	"slamshare/internal/persist"
	"slamshare/internal/server"
)

// ShardOptions configure one shard server process.
type ShardOptions struct {
	// ID is the shard's index in the front's shard table.
	ID uint32
	// Token authenticates cluster peers (front, sibling shards, admin
	// probes) on the shard's listener.
	Token uint64
	// Dir, when non-empty, enables WAL persistence rooted there —
	// required for crash/recovery scenarios.
	Dir string
	// ImportStall is the crash-window failpoint passed through to
	// server.ShardConfig (test harnesses only).
	ImportStall time.Duration
}

// ShardConfig builds the server configuration for a cluster shard:
// the chaos-tier pipeline tuning (half-resolution frames, urban
// vehicular tracking profile, fast map growth) plus the shard
// identity. City-grid routes are what cluster scenarios drive, so the
// urban profile is unconditional here.
func ShardConfig(opts ShardOptions) server.Config {
	cfg := server.DefaultConfig()
	cfg.MergeAfterKFs = 4
	cfg.TrackCfg.KFMinInterval = 2
	cfg.TrackCfg.MinInliers = 10
	cfg.TrackCfg.KFTrackedRatio = 0.85
	cfg.MergeCfg.MinMatches = 12
	cfg.MergeCfg.InlierTol = 0.5
	cfg.MergeCfg.MaxRMSE = 0.3
	cfg.Shard = server.ShardConfig{
		ID:          opts.ID,
		Token:       opts.Token,
		ImportStall: opts.ImportStall,
	}
	if opts.Dir != "" {
		// Journal-only persistence: recovery replays the WAL from the
		// last (absent) checkpoint, the hardest recovery path.
		cfg.Persist = persist.Options{Dir: opts.Dir, CheckpointEvery: -1}
	}
	return cfg
}

// NewShard builds and starts a shard server on the given listener.
func NewShard(opts ShardOptions, ln net.Listener) (*server.Server, error) {
	srv, err := server.New(ShardConfig(opts))
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	return srv, nil
}

// Environment variables the multi-process harness and slamshare-server
// use to parameterize a shard child process.
const (
	EnvProc        = "SLAMSHARE_PROC"
	EnvAddr        = "SLAMSHARE_ADDR"
	EnvShardID     = "SLAMSHARE_SHARD_ID"
	EnvToken       = "SLAMSHARE_TOKEN"
	EnvDir         = "SLAMSHARE_DIR"
	EnvImportStall = "SLAMSHARE_IMPORT_STALL"
)

// ShardEnvMain runs a shard server parameterized entirely by
// environment variables and blocks forever. The chaos harness re-execs
// the (race-instrumented) test binary with SLAMSHARE_PROC=shard to get
// real multi-process topologies; the harness learns the actual listen
// address from the "LISTENING <addr>" line on stdout.
func ShardEnvMain() {
	addr := os.Getenv(EnvAddr)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	id, _ := strconv.ParseUint(os.Getenv(EnvShardID), 10, 32)
	token, _ := strconv.ParseUint(os.Getenv(EnvToken), 10, 64)
	stallMs, _ := strconv.ParseInt(os.Getenv(EnvImportStall), 10, 64)
	opts := ShardOptions{
		ID:          uint32(id),
		Token:       token,
		Dir:         os.Getenv(EnvDir),
		ImportStall: time.Duration(stallMs) * time.Millisecond,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard %d: listen %s: %v\n", opts.ID, addr, err)
		os.Exit(1)
	}
	if _, err := NewShard(opts, ln); err != nil {
		fmt.Fprintf(os.Stderr, "shard %d: %v\n", opts.ID, err)
		os.Exit(1)
	}
	// The harness scrapes this exact line; keep the format stable.
	fmt.Printf("LISTENING %s\n", ln.Addr().String())
	os.Stdout.Sync()
	select {} // killed by the parent (SIGKILL is the point of the tier)
}
