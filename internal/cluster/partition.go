// Package cluster is the multi-server edge deployment: a front router
// that admits device sessions and routes each one, by its position in
// the shared world frame, to the shard server owning that spatial
// region. Shards own disjoint covisibility regions of the global map;
// when a session's trajectory crosses a shard boundary the front
// coordinates a two-phase ownership handoff (export on the source,
// WAL-bracketed import on the target, erase on commit) over the shard
// control-plane messages in internal/protocol.
//
// Every client tracks against world-frame pose priors, so all shards
// share one world coordinate frame by construction — a boundary region
// imports either by covisibility merge (overlap near the boundary) or
// by identity adoption, never by re-alignment.
package cluster

// Partition is the spatial sharding function: the world's x extent is
// split into N equal slabs, one per shard. Slab boundaries are where
// handoffs happen, so the partition also carries the hysteresis band
// that keeps a session oscillating near a boundary from ping-ponging
// between shards.
type Partition struct {
	// Min/Max bound the world x coordinate (positions outside clamp to
	// the edge slabs).
	Min, Max float64
	// N is the shard count.
	N int
	// Hysteresis is how many metres past a boundary a session must
	// travel before the front initiates a handoff.
	Hysteresis float64
}

// Shard maps a world x position to its owning shard index.
func (p Partition) Shard(x float64) uint32 {
	if p.N <= 1 {
		return 0
	}
	w := (p.Max - p.Min) / float64(p.N)
	if w <= 0 {
		return 0
	}
	i := int((x - p.Min) / w)
	if i < 0 {
		i = 0
	}
	if i >= p.N {
		i = p.N - 1
	}
	return uint32(i)
}

// ShardFrom is Shard with hysteresis relative to the session's current
// placement: it returns cur unless x has travelled at least Hysteresis
// metres past the edge of cur's slab.
func (p Partition) ShardFrom(cur uint32, x float64) uint32 {
	tgt := p.Shard(x)
	if tgt == cur || p.N <= 1 {
		return cur
	}
	w := (p.Max - p.Min) / float64(p.N)
	lo := p.Min + float64(cur)*w
	hi := lo + w
	if x >= lo-p.Hysteresis && x <= hi+p.Hysteresis {
		return cur
	}
	return tgt
}
