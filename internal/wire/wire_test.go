package wire

import (
	"errors"
	"math/rand"
	"testing"

	"slamshare/internal/bow"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/smap"
)

func randomMap(seed int64, nkf, nkp, nmp int) *smap.Map {
	rng := rand.New(rand.NewSource(seed))
	m := smap.NewMap(bow.Default())
	alloc := smap.NewIDAllocator(3)
	var kfIDs []smap.ID
	for k := 0; k < nkf; k++ {
		kps := make([]feature.Keypoint, nkp)
		for i := range kps {
			var d feature.Descriptor
			for w := range d {
				d[w] = rng.Uint64()
			}
			kps[i] = feature.Keypoint{
				X: rng.Float64() * 700, Y: rng.Float64() * 400,
				Level: rng.Intn(4), Angle: rng.Float64(),
				Score: rng.Float64() * 100, Right: -1, Desc: d,
			}
		}
		kf := &smap.KeyFrame{
			ID: alloc.Next(), Client: 3, Stamp: float64(k) / 30,
			FrameIdx: k * 5,
			Tcw: geom.SE3{
				R: geom.QuatFromAxisAngle(geom.Vec3{X: 1, Y: 2, Z: 3}, rng.Float64()),
				T: geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
			},
			Keypoints: kps,
		}
		m.AddKeyFrame(kf)
		kfIDs = append(kfIDs, kf.ID)
	}
	for p := 0; p < nmp; p++ {
		var d feature.Descriptor
		for w := range d {
			d[w] = rng.Uint64()
		}
		mp := &smap.MapPoint{
			ID: alloc.Next(), Client: 3,
			Pos:    geom.Vec3{X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5, Z: rng.NormFloat64() * 5},
			Desc:   d,
			Normal: geom.Vec3{Z: 1},
			RefKF:  kfIDs[p%len(kfIDs)],
		}
		m.AddMapPoint(mp)
		_ = m.AddObservation(kfIDs[p%len(kfIDs)], mp.ID, p%nkp)
	}
	for _, id := range kfIDs {
		m.UpdateConnections(id, 1)
	}
	return m
}

func TestMapRoundTrip(t *testing.T) {
	m := randomMap(1, 5, 50, 80)
	data := EncodeMap(m)
	got, err := DecodeMap(data, bow.Default())
	if err != nil {
		t.Fatal(err)
	}
	if got.NKeyFrames() != m.NKeyFrames() || got.NMapPoints() != m.NMapPoints() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			got.NKeyFrames(), got.NMapPoints(), m.NKeyFrames(), m.NMapPoints())
	}
	for _, kf := range m.KeyFrames() {
		g, ok := got.KeyFrame(kf.ID)
		if !ok {
			t.Fatalf("keyframe %d missing", kf.ID)
		}
		if g.Tcw.T.Dist(kf.Tcw.T) > 1e-12 || g.Tcw.R.AngleTo(kf.Tcw.R) > 1e-12 {
			t.Fatal("pose corrupted")
		}
		if len(g.Keypoints) != len(kf.Keypoints) {
			t.Fatal("keypoint count corrupted")
		}
		for i := range g.Keypoints {
			if g.Keypoints[i].Desc != kf.Keypoints[i].Desc {
				t.Fatal("descriptor corrupted")
			}
			if g.MapPoints[i] != kf.MapPoints[i] {
				t.Fatal("binding corrupted")
			}
		}
		if len(g.Conns) != len(kf.Conns) {
			t.Fatal("covisibility corrupted")
		}
	}
	for _, mp := range m.MapPoints() {
		g, ok := got.MapPoint(mp.ID)
		if !ok {
			t.Fatalf("map point %d missing", mp.ID)
		}
		if g.Pos.Dist(mp.Pos) > 1e-12 {
			t.Fatal("position corrupted")
		}
		if len(g.Obs) != len(mp.Obs) {
			t.Fatal("observations corrupted")
		}
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	m := randomMap(2, 2, 20, 10)
	data := EncodeMap(m)
	if _, err := DecodeMap(data[:len(data)/2], bow.Default()); err == nil {
		t.Error("truncated map accepted")
	}
	if _, err := DecodeMap([]byte{1, 2, 3}, bow.Default()); err == nil {
		t.Error("garbage accepted")
	}
	bad := append([]byte{}, data...)
	bad[0] ^= 0xFF
	if _, err := DecodeMap(bad, bow.Default()); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestDecodeRejectsVersionMismatch(t *testing.T) {
	m := randomMap(12, 2, 20, 10)
	data := EncodeMap(m)
	// The version byte sits right after the 4-byte magic.
	stale := append([]byte{}, data...)
	stale[4] = FormatVersion + 1
	_, err := DecodeMap(stale, bow.Default())
	if !errors.Is(err, ErrVersion) {
		t.Errorf("future version accepted: %v", err)
	}
	stale[4] = 0
	if _, err := DecodeMap(stale, bow.Default()); !errors.Is(err, ErrVersion) {
		t.Errorf("version 0 accepted: %v", err)
	}

	p := geom.SE3{T: geom.Vec3{X: 1}}
	pd := EncodePose(7, p)
	pd[4] = FormatVersion + 9
	if _, _, err := DecodePose(pd); !errors.Is(err, ErrVersion) {
		t.Errorf("stale pose version accepted: %v", err)
	}
}

func TestDecodeBoundsAllocations(t *testing.T) {
	// A tiny input claiming millions of entries must be rejected by
	// the count guards, not over-allocated.
	m := randomMap(13, 1, 4, 2)
	data := EncodeMap(m)
	for _, off := range []int{5} { // the keyframe-count field
		bad := append([]byte{}, data[:off]...)
		bad = append(bad, 0xFF, 0xFF, 0x3F, 0x00) // ~4M entries
		if _, err := DecodeMap(bad, bow.Default()); err == nil {
			t.Errorf("oversized count at %d accepted", off)
		}
	}
}

func TestKeyFrameAndMapPointRoundTrip(t *testing.T) {
	m := randomMap(14, 3, 40, 60)
	for _, kf := range m.KeyFrames() {
		data := EncodeKeyFrame(kf)
		got, n, err := DecodeKeyFrame(data)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if got.ID != kf.ID || got.Tcw.T.Dist(kf.Tcw.T) > 1e-12 ||
			len(got.Keypoints) != len(kf.Keypoints) || len(got.Conns) != len(kf.Conns) {
			t.Fatalf("keyframe %d corrupted", kf.ID)
		}
		for i := range got.MapPoints {
			if got.MapPoints[i] != kf.MapPoints[i] {
				t.Fatal("binding corrupted")
			}
		}
	}
	for _, mp := range m.MapPoints() {
		data := EncodeMapPoint(mp)
		got, n, err := DecodeMapPoint(data)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(data) || got.ID != mp.ID || got.Pos.Dist(mp.Pos) > 1e-12 || len(got.Obs) != len(mp.Obs) {
			t.Fatalf("map point %d corrupted", mp.ID)
		}
	}
	if _, _, err := DecodeKeyFrame([]byte{1, 2, 3}); err == nil {
		t.Error("truncated keyframe accepted")
	}
	if _, _, err := DecodeMapPoint(nil); err == nil {
		t.Error("empty map point accepted")
	}
}

func TestMapSizeGrowsLinearly(t *testing.T) {
	// Table 1's shape: size grows roughly linearly with keyframes.
	s1 := MapSize(randomMap(3, 5, 100, 200))
	s2 := MapSize(randomMap(4, 10, 100, 400))
	s4 := MapSize(randomMap(5, 20, 100, 800))
	if s2 <= s1 || s4 <= s2 {
		t.Fatalf("sizes not growing: %d %d %d", s1, s2, s4)
	}
	ratio := float64(s4-s2) / float64(s2-s1)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("growth not linear-ish: %d %d %d (ratio %.2f)", s1, s2, s4, ratio)
	}
}

func TestPoseRoundTrip(t *testing.T) {
	p := geom.SE3{
		R: geom.QuatFromAxisAngle(geom.Vec3{X: 0.3, Y: 1, Z: -0.2}, 0.8),
		T: geom.Vec3{X: 1.5, Y: -2, Z: 0.25},
	}
	data := EncodePose(1234, p)
	idx, got, err := DecodePose(data)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1234 {
		t.Errorf("frame idx = %d", idx)
	}
	if got.T.Dist(p.T) > 1e-9 || got.R.AngleTo(p.R) > 1e-9 {
		t.Errorf("pose round trip failed: %v vs %v", got, p)
	}
	if _, _, err := DecodePose([]byte{1}); err == nil {
		t.Error("short pose accepted")
	}
}

func BenchmarkEncodeMap(b *testing.B) {
	m := randomMap(6, 20, 500, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeMap(m)
	}
}

func BenchmarkDecodeMap(b *testing.B) {
	m := randomMap(7, 20, 500, 2000)
	data := EncodeMap(m)
	voc := bow.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMap(data, voc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeNeverPanicsOnTruncation(t *testing.T) {
	// Any truncation of a valid encoding must fail cleanly, not panic.
	m := randomMap(8, 3, 30, 40)
	data := EncodeMap(m)
	step := len(data)/64 + 1
	for cut := 0; cut < len(data); cut += step {
		if _, err := DecodeMap(data[:cut], bow.Default()); err == nil && cut < len(data)-1 {
			t.Fatalf("truncation at %d/%d accepted", cut, len(data))
		}
	}
}

func TestDecodeNeverPanicsOnBitFlips(t *testing.T) {
	m := randomMap(9, 2, 20, 20)
	data := EncodeMap(m)
	for i := 4; i < len(data); i += len(data)/48 + 1 {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= 0xFF
		// Must not panic; error or a structurally valid (if wrong) map
		// are both acceptable outcomes.
		_, _ = DecodeMap(corrupted, bow.Default())
	}
}
