// Package wire implements binary serialization of SLAM maps, poses and
// frames. It is the cost the baseline pays on every merge round
// (serialize → transfer → deserialize, Table 4 rows 2/4/5) and what
// SLAM-Share's shared-memory design eliminates; it also measures the
// map sizes of Table 1, and provides the per-entity encoders the
// persistence journal (internal/persist) records map mutations with.
//
// Every top-level encoding starts with a magic number and a format
// version byte; decoders reject mismatches instead of misparsing stale
// or corrupt checkpoints, and bound every allocation by the bytes
// actually present in the input so corrupt counts can neither panic
// nor over-allocate.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"

	"slamshare/internal/bow"
	"slamshare/internal/feature"
	"slamshare/internal/geom"
	"slamshare/internal/smap"
)

// ErrCorrupt is returned when decoding fails.
var ErrCorrupt = errors.New("wire: corrupt map encoding")

// ErrVersion is returned when an encoding carries an unknown format
// version — a stale checkpoint or a newer writer.
var ErrVersion = errors.New("wire: unsupported format version")

// FormatVersion is the version byte every encoding carries after its
// magic number. Bump it whenever the layout changes.
const FormatVersion = 1

const (
	mapMagic  = 0x534C414D // "SLAM"
	poseMagic = 0x534C5053 // "SLPS"
)

// Minimum encoded sizes per entity, used to bound allocations against
// the remaining input before trusting a decoded count.
const (
	minKeypointBytes = 7*4 + feature.DescriptorBytes + 8
	minKeyFrameBytes = 8 + 4 + 8 + 4 + 7*8 + 3*4
	minMapPointBytes = 8 + 4 + 3*8 + feature.DescriptorBytes + 3*8 + 8 + 4
	minBowBytes      = 4 + 4
	minConnBytes     = 8 + 4
	minObsBytes      = 8 + 4
)

type writer struct {
	buf []byte
	// Scratch key slices for canonical (sorted-key) map emission,
	// reused across entities to keep EncodeMap allocation-flat.
	scr32 []uint32
	scr64 []uint64
}

func (w *writer) u8(v byte) { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}
func (w *writer) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) f32(v float64) {
	w.u32(math.Float32bits(float32(v)))
}
func (w *writer) pose(p geom.SE3) {
	w.f64(p.R.W)
	w.f64(p.R.X)
	w.f64(p.R.Y)
	w.f64(p.R.Z)
	w.f64(p.T.X)
	w.f64(p.T.Y)
	w.f64(p.T.Z)
}
func (w *writer) vec3(v geom.Vec3) {
	w.f64(v.X)
	w.f64(v.Y)
	w.f64(v.Z)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.err = ErrCorrupt
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}
func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.err = ErrCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}
func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.err = ErrCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) f32() float64 { return float64(math.Float32frombits(r.u32())) }
func (r *reader) pose() geom.SE3 {
	var p geom.SE3
	p.R.W = r.f64()
	p.R.X = r.f64()
	p.R.Y = r.f64()
	p.R.Z = r.f64()
	p.T.X = r.f64()
	p.T.Y = r.f64()
	p.T.Z = r.f64()
	return p
}
func (r *reader) vec3() geom.Vec3 {
	return geom.Vec3{X: r.f64(), Y: r.f64(), Z: r.f64()}
}

// count reads an element count and validates it against the remaining
// input: at least minBytes per element must still be present, so a
// corrupt count can never drive an over-allocation.
func (r *reader) count(minBytes int) (int, bool) {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > (len(r.buf)-r.off)/minBytes {
		r.err = ErrCorrupt
		return 0, false
	}
	return n, true
}

// checkHeader consumes and validates a magic + version header.
func (r *reader) checkHeader(magic uint32) error {
	if r.u32() != magic || r.err != nil {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := r.u8(); r.err != nil || v != FormatVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrVersion, v, FormatVersion)
	}
	return nil
}

func appendKeyFrame(w *writer, kf *smap.KeyFrame) {
	w.u64(kf.ID)
	w.u32(uint32(kf.Client))
	w.f64(kf.Stamp)
	w.u32(uint32(kf.FrameIdx))
	w.pose(kf.Tcw)
	w.u32(uint32(len(kf.Keypoints)))
	for i, kp := range kf.Keypoints {
		w.f32(kp.X)
		w.f32(kp.Y)
		w.u32(uint32(kp.Level))
		w.f32(kp.Angle)
		w.f32(kp.Score)
		w.f32(kp.Right)
		w.f32(kp.Depth)
		b := kp.Desc.Bytes()
		w.buf = append(w.buf, b[:]...)
		w.u64(kf.MapPoints[i])
	}
	// Map-valued fields are emitted in sorted key order so the same
	// map state always encodes to the same bytes — what lets crash
	// recovery be verified byte-for-byte and checkpoints be diffed.
	words := w.scr32[:0]
	for wid := range kf.Bow {
		words = append(words, uint32(wid))
	}
	slices.Sort(words)
	w.scr32 = words
	w.u32(uint32(len(words)))
	for _, wid := range words {
		w.u32(wid)
		w.f32(kf.Bow[bow.WordID(wid)])
	}
	conns := w.scr64[:0]
	for id := range kf.Conns {
		conns = append(conns, id)
	}
	slices.Sort(conns)
	w.scr64 = conns
	w.u32(uint32(len(conns)))
	for _, id := range conns {
		w.u64(id)
		w.u32(uint32(kf.Conns[id]))
	}
}

func readKeyFrame(r *reader) (*smap.KeyFrame, error) {
	kf := &smap.KeyFrame{}
	kf.ID = r.u64()
	kf.Client = int(r.u32())
	kf.Stamp = r.f64()
	kf.FrameIdx = int(r.u32())
	kf.Tcw = r.pose()
	nkp, ok := r.count(minKeypointBytes)
	if !ok {
		return nil, ErrCorrupt
	}
	kf.Keypoints = make([]feature.Keypoint, nkp)
	kf.MapPoints = make([]smap.ID, nkp)
	for i := 0; i < nkp; i++ {
		kp := &kf.Keypoints[i]
		kp.X = r.f32()
		kp.Y = r.f32()
		kp.Level = int(r.u32())
		kp.Angle = r.f32()
		kp.Score = r.f32()
		kp.Right = r.f32()
		kp.Depth = r.f32()
		if r.off+feature.DescriptorBytes > len(r.buf) {
			return nil, ErrCorrupt
		}
		var db [feature.DescriptorBytes]byte
		copy(db[:], r.buf[r.off:])
		r.off += feature.DescriptorBytes
		kp.Desc = feature.DescriptorFromBytes(db)
		kf.MapPoints[i] = r.u64()
	}
	nbow, ok := r.count(minBowBytes)
	if !ok {
		return nil, ErrCorrupt
	}
	kf.Bow = make(bow.Vec, nbow)
	for i := 0; i < nbow; i++ {
		wid := bow.WordID(r.u32())
		kf.Bow[wid] = r.f32()
	}
	nconn, ok := r.count(minConnBytes)
	if !ok {
		return nil, ErrCorrupt
	}
	kf.Conns = make(map[smap.ID]int, nconn)
	for i := 0; i < nconn; i++ {
		id := r.u64()
		kf.Conns[id] = int(r.u32())
	}
	if r.err != nil {
		return nil, r.err
	}
	return kf, nil
}

func appendMapPoint(w *writer, mp *smap.MapPoint) {
	w.u64(mp.ID)
	w.u32(uint32(mp.Client))
	w.vec3(mp.Pos)
	b := mp.Desc.Bytes()
	w.buf = append(w.buf, b[:]...)
	w.vec3(mp.Normal)
	w.u64(mp.RefKF)
	obs := w.scr64[:0]
	for kfID := range mp.Obs {
		obs = append(obs, kfID)
	}
	slices.Sort(obs)
	w.scr64 = obs
	w.u32(uint32(len(obs)))
	for _, kfID := range obs {
		w.u64(kfID)
		w.u32(uint32(mp.Obs[kfID]))
	}
}

func readMapPoint(r *reader) (*smap.MapPoint, error) {
	mp := &smap.MapPoint{Obs: make(map[smap.ID]int)}
	mp.ID = r.u64()
	mp.Client = int(r.u32())
	mp.Pos = r.vec3()
	if r.err != nil || r.off+feature.DescriptorBytes > len(r.buf) {
		return nil, ErrCorrupt
	}
	var db [feature.DescriptorBytes]byte
	copy(db[:], r.buf[r.off:])
	r.off += feature.DescriptorBytes
	mp.Desc = feature.DescriptorFromBytes(db)
	mp.Normal = r.vec3()
	mp.RefKF = r.u64()
	nobs, ok := r.count(minObsBytes)
	if !ok {
		return nil, ErrCorrupt
	}
	for i := 0; i < nobs; i++ {
		kfID := r.u64()
		mp.Obs[kfID] = int(r.u32())
	}
	if r.err != nil {
		return nil, r.err
	}
	return mp, nil
}

// EncodeKeyFrame serializes one keyframe (pose, keypoints with
// descriptors, BoW vector, bindings, covisibility) — a journal record
// payload for the persistence layer.
func EncodeKeyFrame(kf *smap.KeyFrame) []byte {
	w := &writer{buf: make([]byte, 0, 256+len(kf.Keypoints)*(minKeypointBytes+4))}
	appendKeyFrame(w, kf)
	return w.buf
}

// DecodeKeyFrame reconstructs a keyframe serialized by EncodeKeyFrame
// and reports the number of bytes consumed.
func DecodeKeyFrame(data []byte) (*smap.KeyFrame, int, error) {
	r := &reader{buf: data}
	kf, err := readKeyFrame(r)
	if err != nil {
		return nil, 0, err
	}
	return kf, r.off, nil
}

// EncodeMapPoint serializes one map point.
func EncodeMapPoint(mp *smap.MapPoint) []byte {
	w := &writer{buf: make([]byte, 0, minMapPointBytes+len(mp.Obs)*minObsBytes)}
	appendMapPoint(w, mp)
	return w.buf
}

// DecodeMapPoint reconstructs a map point serialized by EncodeMapPoint
// and reports the number of bytes consumed.
func DecodeMapPoint(data []byte) (*smap.MapPoint, int, error) {
	r := &reader{buf: data}
	mp, err := readMapPoint(r)
	if err != nil {
		return nil, 0, err
	}
	return mp, r.off, nil
}

// EncodeMap serializes a map: keyframes (poses, keypoints with
// descriptors, BoW vectors, bindings, covisibility) and map points
// (positions, descriptors, observations) — everything the baseline
// must ship to the server for merging.
func EncodeMap(m *smap.Map) []byte {
	w := &writer{buf: make([]byte, 0, 1<<20)}
	w.u32(mapMagic)
	w.u8(FormatVersion)
	kfs := m.KeyFrames()
	mps := m.MapPoints()
	// KeyFrames() is already deterministic (insertion order); the map
	// points come out of the stripes unordered, so sort them by ID to
	// keep the whole-map encoding canonical.
	slices.SortFunc(mps, func(a, b *smap.MapPoint) int {
		if a.ID < b.ID {
			return -1
		}
		if a.ID > b.ID {
			return 1
		}
		return 0
	})
	w.u32(uint32(len(kfs)))
	for _, kf := range kfs {
		appendKeyFrame(w, kf)
	}
	w.u32(uint32(len(mps)))
	for _, mp := range mps {
		appendMapPoint(w, mp)
	}
	return w.buf
}

// DecodeMap reconstructs a map serialized by EncodeMap, using voc for
// the new map's BoW index. It returns an error — never panics, never
// over-allocates — on truncated, corrupt, or version-mismatched input.
func DecodeMap(data []byte, voc *bow.Vocabulary) (*smap.Map, error) {
	r := &reader{buf: data}
	if err := r.checkHeader(mapMagic); err != nil {
		return nil, err
	}
	m := smap.NewMap(voc)
	nkf, ok := r.count(minKeyFrameBytes)
	if !ok {
		return nil, ErrCorrupt
	}
	for k := 0; k < nkf; k++ {
		kf, err := readKeyFrame(r)
		if err != nil {
			return nil, err
		}
		m.AddKeyFrame(kf)
	}
	nmp, ok := r.count(minMapPointBytes)
	if !ok {
		return nil, ErrCorrupt
	}
	for k := 0; k < nmp; k++ {
		mp, err := readMapPoint(r)
		if err != nil {
			return nil, err
		}
		m.AddMapPoint(mp)
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// MapSize returns the serialized size of the map in bytes — the rows
// of Table 1.
func MapSize(m *smap.Map) int { return len(EncodeMap(m)) }

// EncodePose packs the 4x4 homogeneous pose matrix the server returns
// to clients (the paper: "a small 4x4 matrix"), with the frame index
// it answers.
func EncodePose(frameIdx int, pose geom.SE3) []byte {
	w := &writer{buf: make([]byte, 0, 4+1+8+16*8)}
	w.u32(poseMagic)
	w.u8(FormatVersion)
	w.u64(uint64(frameIdx))
	m := pose.Mat4()
	for _, v := range m {
		w.f64(v)
	}
	return w.buf
}

// DecodePose reverses EncodePose.
func DecodePose(data []byte) (frameIdx int, pose geom.SE3, err error) {
	r := &reader{buf: data}
	if err := r.checkHeader(poseMagic); err != nil {
		return 0, geom.SE3{}, err
	}
	frameIdx = int(r.u64())
	var m geom.Mat4
	for i := range m {
		m[i] = r.f64()
	}
	if r.err != nil {
		return 0, geom.SE3{}, r.err
	}
	return frameIdx, geom.SE3FromMat4(m), nil
}
