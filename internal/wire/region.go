package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"slamshare/internal/smap"
)

// Region checkpoint codec. When the lifecycle manager evicts a cold
// covisibility cluster from the shared map, the cluster's keyframes
// and its cluster-private map points are serialized with the same
// per-entity encoders the journal uses, wrapped in a magic + version
// header and a trailing CRC so a truncated or corrupt evicted-region
// file is rejected on reload (the region is then re-mapped from
// scratch) rather than misparsed.

const regionMagic = 0x534C5247 // "SLRG"

// minRegionBytes is the smallest valid region encoding: header, region
// ID, two zero counts, CRC.
const minRegionBytes = 4 + 1 + 8 + 4 + 4 + 4

// EncodeRegion serializes one evicted region: its identifier, the
// cluster's keyframes, and the map points observed only inside the
// cluster.
func EncodeRegion(id uint64, kfs []*smap.KeyFrame, mps []*smap.MapPoint) []byte {
	w := &writer{buf: make([]byte, 0, 1<<16)}
	w.u32(regionMagic)
	w.u8(FormatVersion)
	w.u64(id)
	w.u32(uint32(len(kfs)))
	for _, kf := range kfs {
		appendKeyFrame(w, kf)
	}
	w.u32(uint32(len(mps)))
	for _, mp := range mps {
		appendMapPoint(w, mp)
	}
	w.u32(crc32.ChecksumIEEE(w.buf))
	return w.buf
}

// DecodeRegion reverses EncodeRegion. It returns an error — never
// panics, never over-allocates — on truncated, corrupt, or
// version-mismatched input; every allocation is bounded by the bytes
// actually present.
func DecodeRegion(data []byte) (id uint64, kfs []*smap.KeyFrame, mps []*smap.MapPoint, err error) {
	if len(data) < minRegionBytes {
		return 0, nil, nil, fmt.Errorf("%w: region too short (%d bytes)", ErrCorrupt, len(data))
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return 0, nil, nil, fmt.Errorf("%w: region checksum mismatch", ErrCorrupt)
	}
	r := &reader{buf: body}
	if err := r.checkHeader(regionMagic); err != nil {
		return 0, nil, nil, err
	}
	id = r.u64()
	nkf, ok := r.count(minKeyFrameBytes)
	if !ok {
		return 0, nil, nil, ErrCorrupt
	}
	kfs = make([]*smap.KeyFrame, 0, nkf)
	for i := 0; i < nkf; i++ {
		kf, err := readKeyFrame(r)
		if err != nil {
			return 0, nil, nil, err
		}
		kfs = append(kfs, kf)
	}
	nmp, ok := r.count(minMapPointBytes)
	if !ok {
		return 0, nil, nil, ErrCorrupt
	}
	mps = make([]*smap.MapPoint, 0, nmp)
	for i := 0; i < nmp; i++ {
		mp, err := readMapPoint(r)
		if err != nil {
			return 0, nil, nil, err
		}
		mps = append(mps, mp)
	}
	if r.err != nil {
		return 0, nil, nil, r.err
	}
	return id, kfs, mps, nil
}
