package wire

import (
	"encoding/binary"
	"testing"

	"slamshare/internal/bow"
)

// FuzzDecodeMap hammers the map decoder with arbitrary bytes: it must
// return an error or a structurally valid map — never panic and never
// over-allocate (the count guards bound every allocation by the bytes
// actually present, so even a 16 MiB fuzz input cannot request more
// than its own length in slices).
func FuzzDecodeMap(f *testing.F) {
	voc := bow.Default()
	// Seed corpus: valid encodings of varied shapes, plus classic
	// corruptions of each.
	for seed := int64(1); seed <= 3; seed++ {
		m := randomMap(seed, int(seed)+1, 10*int(seed), 8*int(seed))
		data := EncodeMap(m)
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(data[:5])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/3] ^= 0xFF
		f.Add(flipped)
		// Absurd keyframe count with no backing bytes.
		huge := append([]byte(nil), data[:9]...)
		huge = binary.LittleEndian.AppendUint32(huge, 1<<21)
		f.Add(huge)
	}
	f.Add([]byte{})
	f.Add([]byte("SLAMSLAMSLAMSLAM"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMap(data, voc)
		if err != nil {
			if m != nil {
				t.Fatal("non-nil map returned with error")
			}
			return
		}
		// A successfully decoded map must be internally consistent
		// enough to use: binding slices sized to keypoints.
		for _, kf := range m.KeyFrames() {
			if len(kf.MapPoints) != len(kf.Keypoints) {
				t.Fatalf("keyframe %d: %d bindings for %d keypoints",
					kf.ID, len(kf.MapPoints), len(kf.Keypoints))
			}
		}
	})
}

// FuzzDecodeRegion hammers the evicted-region checkpoint decoder: a
// truncated or corrupt region file must decode to an error — the
// lifecycle manager then degrades to a re-map — never a panic or an
// over-allocation.
func FuzzDecodeRegion(f *testing.F) {
	for seed := int64(1); seed <= 3; seed++ {
		m := randomMap(seed, int(seed)+1, 8*int(seed), 6*int(seed))
		data := EncodeRegion(uint64(seed), m.KeyFrames(), m.MapPoints())
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(data[:len(data)-4]) // CRC stripped
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/3] ^= 0xFF
		f.Add(flipped)
		// Absurd keyframe count with no backing bytes.
		huge := append([]byte(nil), data[:17]...)
		huge = binary.LittleEndian.AppendUint32(huge, 1<<21)
		f.Add(huge)
	}
	f.Add([]byte{})
	f.Add([]byte("SLRGSLRGSLRGSLRGSLRG"))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, kfs, mps, err := DecodeRegion(data)
		if err != nil {
			if kfs != nil || mps != nil {
				t.Fatal("non-nil entities returned with error")
			}
			return
		}
		// A successfully decoded region must be internally consistent
		// enough to reload: binding slices sized to keypoints.
		for _, kf := range kfs {
			if len(kf.MapPoints) != len(kf.Keypoints) {
				t.Fatalf("keyframe %d: %d bindings for %d keypoints",
					kf.ID, len(kf.MapPoints), len(kf.Keypoints))
			}
		}
	})
}

// FuzzDecodeKeyFrame covers the journal-record entity decoder the
// persistence layer replays on recovery.
func FuzzDecodeKeyFrame(f *testing.F) {
	m := randomMap(4, 2, 12, 6)
	for _, kf := range m.KeyFrames() {
		data := EncodeKeyFrame(kf)
		f.Add(data)
		f.Add(data[:len(data)-3])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		kf, n, err := DecodeKeyFrame(data)
		if err == nil {
			if n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			if len(kf.MapPoints) != len(kf.Keypoints) {
				t.Fatal("binding slice mismatch")
			}
		}
	})
}
