// Package bow implements a DBoW2-style hierarchical bag-of-binary-words
// vocabulary over ORB descriptors, the place-recognition machinery
// behind the paper's DetectCommonRegion (Alg. 2): keyframes are encoded
// as sparse word-frequency vectors, an inverted-index database returns
// candidate keyframes observing the same place, and geometric
// verification (in internal/merge) confirms them.
package bow

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"slamshare/internal/feature"
)

// WordID identifies a vocabulary leaf.
type WordID uint32

// Vec is a sparse, L1-normalized bag-of-words vector.
type Vec map[WordID]float64

// Vocabulary is a k-ary tree of binary centroids of the given depth;
// its leaves are the words.
type Vocabulary struct {
	K     int
	Depth int
	// Tree nodes in breadth-first order. Node i's children occupy
	// centroids[childStart[i] : childStart[i]+childCount[i]]; leaves
	// have childCount[i] == 0 and a word id in leafWord[i].
	centroids  []feature.Descriptor
	childStart []int32
	childCount []int32
	leafWord   []int32
	words      int
}

// Words returns the number of leaf words.
func (v *Vocabulary) Words() int { return v.words }

// Train builds a vocabulary by recursive k-medians clustering (Hamming
// metric, majority-bit centroids) of the training descriptors.
func Train(descs []feature.Descriptor, k, depth int, seed int64) *Vocabulary {
	if k < 2 {
		k = 2
	}
	if depth < 1 {
		depth = 1
	}
	v := &Vocabulary{K: k, Depth: depth}
	rng := rand.New(rand.NewSource(seed))
	// Root is a virtual node: its children are the first-level
	// clusters. Build breadth-first.
	v.centroids = append(v.centroids, feature.Descriptor{}) // root placeholder
	v.childStart = append(v.childStart, 0)
	v.childCount = append(v.childCount, 0)
	v.leafWord = append(v.leafWord, -1)
	type job struct {
		node  int
		descs []feature.Descriptor
		level int
	}
	queue := []job{{node: 0, descs: descs, level: 0}}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		if j.level >= depth || len(j.descs) <= 1 {
			// Leaf: assign a word id.
			v.leafWord[j.node] = int32(v.words)
			v.words++
			continue
		}
		cents, groups := kMedians(j.descs, k, rng)
		v.childStart[j.node] = int32(len(v.centroids))
		v.childCount[j.node] = int32(len(cents))
		for c := range cents {
			v.centroids = append(v.centroids, cents[c])
			v.childStart = append(v.childStart, 0)
			v.childCount = append(v.childCount, 0)
			v.leafWord = append(v.leafWord, -1)
			queue = append(queue, job{
				node:  len(v.centroids) - 1,
				descs: groups[c],
				level: j.level + 1,
			})
		}
	}
	return v
}

// kMedians clusters descs into at most k groups and returns the
// majority-bit centroids and member groups. Empty clusters are
// dropped.
func kMedians(descs []feature.Descriptor, k int, rng *rand.Rand) ([]feature.Descriptor, [][]feature.Descriptor) {
	if len(descs) <= k {
		groups := make([][]feature.Descriptor, len(descs))
		cents := make([]feature.Descriptor, len(descs))
		for i, d := range descs {
			cents[i] = d
			groups[i] = []feature.Descriptor{d}
		}
		return cents, groups
	}
	// Init: k distinct random members.
	cents := make([]feature.Descriptor, k)
	perm := rng.Perm(len(descs))
	for i := 0; i < k; i++ {
		cents[i] = descs[perm[i]]
	}
	assign := make([]int, len(descs))
	for iter := 0; iter < 8; iter++ {
		changed := false
		for i, d := range descs {
			best, bestD := 0, 1<<30
			for c := range cents {
				if dd := feature.Distance(d, cents[c]); dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Majority-bit recompute.
		bitCount := make([][]int, k)
		size := make([]int, k)
		for c := range bitCount {
			bitCount[c] = make([]int, 256)
		}
		for i, d := range descs {
			c := assign[i]
			size[c]++
			for b := 0; b < 256; b++ {
				if d[b>>6]&(1<<(uint(b)&63)) != 0 {
					bitCount[c][b]++
				}
			}
		}
		for c := range cents {
			if size[c] == 0 {
				// Re-seed empty cluster with a random member.
				cents[c] = descs[rng.Intn(len(descs))]
				continue
			}
			var nd feature.Descriptor
			for b := 0; b < 256; b++ {
				if bitCount[c][b]*2 >= size[c] {
					nd[b>>6] |= 1 << (uint(b) & 63)
				}
			}
			cents[c] = nd
		}
		if !changed && iter > 0 {
			break
		}
	}
	groups := make([][]feature.Descriptor, k)
	for i, d := range descs {
		groups[assign[i]] = append(groups[assign[i]], d)
	}
	outC := cents[:0]
	var outG [][]feature.Descriptor
	for c := range groups {
		if len(groups[c]) > 0 {
			outC = append(outC, cents[c])
			outG = append(outG, groups[c])
		}
	}
	return outC, outG
}

// WordOf quantizes a descriptor down the tree to its leaf word.
func (v *Vocabulary) WordOf(d feature.Descriptor) WordID {
	node := 0
	for {
		n := int(v.childCount[node])
		if n == 0 {
			w := v.leafWord[node]
			if w < 0 {
				return 0
			}
			return WordID(w)
		}
		first := int(v.childStart[node])
		best, bestD := first, feature.Distance(d, v.centroids[first])
		for c := first + 1; c < first+n; c++ {
			if dd := feature.Distance(d, v.centroids[c]); dd < bestD {
				best, bestD = c, dd
			}
		}
		node = best
	}
}

// BowOf encodes a descriptor set as an L1-normalized word-frequency
// vector.
func (v *Vocabulary) BowOf(descs []feature.Descriptor) Vec {
	bv := make(Vec)
	for _, d := range descs {
		bv[v.WordOf(d)]++
	}
	var sum float64
	for _, n := range bv {
		sum += n
	}
	if sum > 0 {
		for w := range bv {
			bv[w] /= sum
		}
	}
	return bv
}

// Score returns the DBoW2 L1 similarity between two normalized
// vectors: 1 - 0.5*|a - b|_1, in [0, 1].
func Score(a, b Vec) float64 {
	var l1 float64
	for w, va := range a {
		if vb, ok := b[w]; ok {
			l1 += math.Abs(va-vb) - va - vb
		}
	}
	// Terms absent from the intersection contribute |va| + |vb| = 2
	// total over both normalized vectors.
	l1 += 2
	s := 1 - 0.5*l1
	if s < 0 {
		return 0
	}
	return s
}

// Result is a database query hit.
type Result struct {
	ID    uint64
	Score float64
}

// Database is an inverted index from words to the keyframes containing
// them, used to shortlist merge/loop candidates.
type Database struct {
	index map[WordID][]uint64
	vecs  map[uint64]Vec
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{index: make(map[WordID][]uint64), vecs: make(map[uint64]Vec)}
}

// Add indexes a keyframe's bag-of-words vector under its id.
// Re-adding an id replaces its previous vector.
func (db *Database) Add(id uint64, bv Vec) {
	if _, ok := db.vecs[id]; ok {
		db.Remove(id)
	}
	db.vecs[id] = bv
	for w := range bv {
		db.index[w] = append(db.index[w], id)
	}
}

// Remove deletes a keyframe from the index.
func (db *Database) Remove(id uint64) {
	bv, ok := db.vecs[id]
	if !ok {
		return
	}
	delete(db.vecs, id)
	for w := range bv {
		list := db.index[w]
		for i, v := range list {
			if v == id {
				list[i] = list[len(list)-1]
				db.index[w] = list[:len(list)-1]
				break
			}
		}
		if len(db.index[w]) == 0 {
			delete(db.index, w)
		}
	}
}

// Len returns the number of indexed keyframes.
func (db *Database) Len() int { return len(db.vecs) }

// IDs returns the indexed keyframe ids (unspecified order). The
// invariant checker uses it to audit index <-> map agreement.
func (db *Database) IDs() []uint64 {
	out := make([]uint64, 0, len(db.vecs))
	for id := range db.vecs {
		out = append(out, id)
	}
	return out
}

// CheckIndex audits the inverted index against the vector table and
// returns the disagreements: orphans are ids that appear in some
// word's posting list but have no vector (an erase that tore the
// posting-list side), missing are id/word pairs a stored vector says
// should be posted but are not (an add that tore). Both slices are
// empty on a healthy database. The erase-heavy lifecycle paths make
// these leftovers the likeliest corruption, so the map invariant
// checker audits at this level rather than only comparing id sets.
func (db *Database) CheckIndex() (orphans, missing []uint64) {
	orphanSeen := make(map[uint64]bool)
	for _, list := range db.index {
		for _, id := range list {
			if _, ok := db.vecs[id]; !ok && !orphanSeen[id] {
				orphanSeen[id] = true
				orphans = append(orphans, id)
			}
		}
	}
	missingSeen := make(map[uint64]bool)
	for id, bv := range db.vecs {
		for w := range bv {
			posted := false
			for _, v := range db.index[w] {
				if v == id {
					posted = true
					break
				}
			}
			if !posted && !missingSeen[id] {
				missingSeen[id] = true
				missing = append(missing, id)
			}
		}
	}
	return orphans, missing
}

// Query returns the topN keyframes sharing words with bv, scored by
// L1 similarity, excluding ids for which exclude returns true.
func (db *Database) Query(bv Vec, topN int, exclude func(uint64) bool) []Result {
	seen := make(map[uint64]bool)
	var results []Result
	for w := range bv {
		for _, id := range db.index[w] {
			if seen[id] {
				continue
			}
			seen[id] = true
			if exclude != nil && exclude(id) {
				continue
			}
			results = append(results, Result{ID: id, Score: Score(bv, db.vecs[id])})
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	if len(results) > topN {
		results = results[:topN]
	}
	return results
}

// defaultVoc is the lazily trained shared vocabulary (see Default).
var (
	defaultOnce sync.Once
	defaultVoc  *Vocabulary
)

// Default returns the package's standard vocabulary: k=8, depth=4,
// trained once on a synthetic descriptor corpus drawn from the same
// distribution the renderer produces. Real ORB-SLAM ships a vocabulary
// pretrained offline on natural images; this is its analogue for the
// synthetic worlds (see DESIGN.md).
func Default() *Vocabulary {
	defaultOnce.Do(func() {
		rng := rand.New(rand.NewSource(0xB0CA))
		corpus := make([]feature.Descriptor, 6000)
		for i := range corpus {
			for w := 0; w < 4; w++ {
				corpus[i][w] = rng.Uint64()
			}
		}
		defaultVoc = Train(corpus, 8, 4, 0xB0CA)
	})
	return defaultVoc
}
