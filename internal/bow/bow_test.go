package bow

import (
	"math"
	"math/rand"
	"testing"

	"slamshare/internal/feature"
)

func randDesc(rng *rand.Rand) feature.Descriptor {
	var d feature.Descriptor
	for i := range d {
		d[i] = rng.Uint64()
	}
	return d
}

// perturb flips nBits random bits of d.
func perturb(d feature.Descriptor, nBits int, rng *rand.Rand) feature.Descriptor {
	for i := 0; i < nBits; i++ {
		b := rng.Intn(256)
		d[b>>6] ^= 1 << (uint(b) & 63)
	}
	return d
}

func corpus(n int, seed int64) []feature.Descriptor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]feature.Descriptor, n)
	for i := range out {
		out[i] = randDesc(rng)
	}
	return out
}

func TestTrainProducesWords(t *testing.T) {
	v := Train(corpus(2000, 1), 8, 3, 1)
	if v.Words() < 100 {
		t.Fatalf("vocabulary has only %d words", v.Words())
	}
	if v.Words() > 8*8*8 {
		t.Fatalf("too many words: %d", v.Words())
	}
}

func TestTrainDegenerateInputs(t *testing.T) {
	v := Train(corpus(1, 2), 8, 3, 1)
	if v.Words() != 1 {
		t.Errorf("single-descriptor vocabulary: %d words", v.Words())
	}
	v2 := Train(corpus(100, 3), 1, 0, 1) // k and depth get clamped
	if v2.Words() < 1 {
		t.Error("clamped vocabulary has no words")
	}
}

func TestWordOfDeterministic(t *testing.T) {
	v := Train(corpus(1000, 4), 8, 3, 2)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		d := randDesc(rng)
		if v.WordOf(d) != v.WordOf(d) {
			t.Fatal("word assignment not deterministic")
		}
	}
}

func TestSimilarDescriptorsOftenShareWords(t *testing.T) {
	v := Train(corpus(4000, 5), 8, 3, 3)
	rng := rand.New(rand.NewSource(10))
	same, diff := 0, 0
	const trials = 400
	for i := 0; i < trials; i++ {
		d := randDesc(rng)
		if v.WordOf(d) == v.WordOf(perturb(d, 15, rng)) {
			same++
		}
		if v.WordOf(d) == v.WordOf(randDesc(rng)) {
			diff++
		}
	}
	// A 15-bit perturbation keeps the word much more often than chance.
	if same <= diff*2 {
		t.Errorf("word stability too low: same=%d/%d vs random=%d/%d", same, trials, diff, trials)
	}
}

func TestBowOfNormalized(t *testing.T) {
	v := Train(corpus(1000, 6), 8, 3, 4)
	descs := corpus(300, 7)
	bv := v.BowOf(descs)
	var sum float64
	for _, x := range bv {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("BoW vector sums to %v", sum)
	}
	if len(v.BowOf(nil)) != 0 {
		t.Error("empty descriptor set should give empty vector")
	}
}

func TestScoreProperties(t *testing.T) {
	v := Train(corpus(2000, 8), 8, 3, 5)
	a := v.BowOf(corpus(200, 100))
	if s := Score(a, a); math.Abs(s-1) > 1e-9 {
		t.Errorf("self score = %v", s)
	}
	b := v.BowOf(corpus(200, 200))
	sAB := Score(a, b)
	sBA := Score(b, a)
	if math.Abs(sAB-sBA) > 1e-9 {
		t.Errorf("score not symmetric: %v vs %v", sAB, sBA)
	}
	if sAB < 0 || sAB > 1 {
		t.Errorf("score out of range: %v", sAB)
	}
	if s := Score(a, Vec{}); s != 0 {
		t.Errorf("score against empty = %v", s)
	}
}

func TestOverlappingSetsScoreHigher(t *testing.T) {
	v := Train(corpus(4000, 11), 8, 4, 6)
	rng := rand.New(rand.NewSource(42))
	base := corpus(250, 300)
	// View 2 shares 60% of view 1's descriptors (perturbed), the rest
	// are new — like two keyframes seeing the same place.
	view2 := make([]feature.Descriptor, 0, 250)
	for i := 0; i < 150; i++ {
		view2 = append(view2, perturb(base[i], 10, rng))
	}
	view2 = append(view2, corpus(100, 301)...)
	unrelated := corpus(250, 302)

	bvBase := v.BowOf(base)
	sOverlap := Score(bvBase, v.BowOf(view2))
	sRandom := Score(bvBase, v.BowOf(unrelated))
	if sOverlap <= sRandom*1.5 {
		t.Errorf("overlap score %v not well above random %v", sOverlap, sRandom)
	}
}

func TestDatabaseQueryRanksOverlapFirst(t *testing.T) {
	v := Train(corpus(4000, 12), 8, 4, 7)
	rng := rand.New(rand.NewSource(13))
	base := corpus(250, 400)
	overlap := make([]feature.Descriptor, 0, 250)
	for i := 0; i < 150; i++ {
		overlap = append(overlap, perturb(base[i], 10, rng))
	}
	overlap = append(overlap, corpus(100, 401)...)

	db := NewDatabase()
	db.Add(1, v.BowOf(overlap))
	for id := uint64(2); id < 12; id++ {
		db.Add(id, v.BowOf(corpus(250, 500+int64(id))))
	}
	res := db.Query(v.BowOf(base), 3, nil)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].ID != 1 {
		t.Errorf("best hit = %d (score %v), want 1", res[0].ID, res[0].Score)
	}
}

func TestDatabaseExcludeAndRemove(t *testing.T) {
	v := Train(corpus(1000, 14), 8, 3, 8)
	db := NewDatabase()
	bv := v.BowOf(corpus(100, 600))
	db.Add(1, bv)
	db.Add(2, bv)
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	res := db.Query(bv, 10, func(id uint64) bool { return id == 1 })
	for _, r := range res {
		if r.ID == 1 {
			t.Error("excluded id returned")
		}
	}
	db.Remove(1)
	if db.Len() != 1 {
		t.Errorf("Len after remove = %d", db.Len())
	}
	db.Remove(99) // unknown id must be a no-op
	res = db.Query(bv, 10, nil)
	if len(res) != 1 || res[0].ID != 2 {
		t.Errorf("post-remove query = %+v", res)
	}
}

func TestDatabaseReAddReplaces(t *testing.T) {
	v := Train(corpus(1000, 15), 8, 3, 9)
	db := NewDatabase()
	db.Add(1, v.BowOf(corpus(100, 700)))
	db.Add(1, v.BowOf(corpus(100, 701)))
	if db.Len() != 1 {
		t.Errorf("re-add duplicated entry: Len = %d", db.Len())
	}
}
