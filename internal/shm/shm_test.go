package shm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestCreateAttachUnlink(t *testing.T) {
	r, err := Create("t-basic", 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer Unlink("t-basic")
	if r.Name() != "t-basic" || r.Capacity() != 1024 {
		t.Error("metadata wrong")
	}
	if _, err := Create("t-basic", 1024); err == nil {
		t.Error("duplicate create allowed")
	}
	a, err := Attach("t-basic")
	if err != nil {
		t.Fatal(err)
	}
	if a != r {
		t.Error("attach returned a different region")
	}
	if r.Attachments() != 1 {
		t.Errorf("attachments = %d", r.Attachments())
	}
	Unlink("t-basic")
	if _, err := Attach("t-basic"); !errors.Is(err, ErrNotFound) {
		t.Error("attach after unlink should fail")
	}
}

func TestCreateInvalidCapacity(t *testing.T) {
	if _, err := Create("t-bad", 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Create("t-bad", -5); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestAllocFreeAccounting(t *testing.T) {
	r, _ := Create("t-alloc", 100)
	defer Unlink("t-alloc")
	off1, err := r.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := r.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	if off1 == off2 {
		t.Error("overlapping allocations")
	}
	if r.Used() != 80 {
		t.Errorf("used = %d", r.Used())
	}
	if _, err := r.Alloc(30); !errors.Is(err, ErrOutOfMemory) {
		t.Error("overcommit allowed")
	}
	r.Free(off1, 40)
	if r.Used() != 40 {
		t.Errorf("used after free = %d", r.Used())
	}
	// Freed space is reusable.
	if _, err := r.Alloc(40); err != nil {
		t.Errorf("reuse failed: %v", err)
	}
	if _, err := r.Alloc(0); err == nil {
		t.Error("zero alloc accepted")
	}
}

func TestFreeListSplitting(t *testing.T) {
	r, _ := Create("t-split", 100)
	defer Unlink("t-split")
	off, _ := r.Alloc(60)
	r.Free(off, 60)
	// Allocate a smaller block out of the freed one.
	if _, err := r.Alloc(20); err != nil {
		t.Fatal(err)
	}
	// The remainder must still be allocatable.
	if _, err := r.Alloc(40); err != nil {
		t.Fatalf("split remainder lost: %v", err)
	}
}

func TestNamedMutexShared(t *testing.T) {
	r, _ := Create("t-mutex", 1024)
	defer Unlink("t-mutex")
	m1 := r.NamedMutex("map")
	m2 := r.NamedMutex("map")
	if m1 != m2 {
		t.Error("same name gave different mutexes")
	}
	if r.NamedMutex("other") == m1 {
		t.Error("different names share a mutex")
	}
	// Concurrent readers must proceed while no writer holds it.
	m1.RLock()
	m2.RLock()
	m1.RUnlock()
	m2.RUnlock()
}

func TestPublishLookup(t *testing.T) {
	r, _ := Create("t-pub", 1024)
	defer Unlink("t-pub")
	obj := &struct{ X int }{42}
	r.Publish("globalmap", obj)
	got, err := r.Lookup("globalmap")
	if err != nil {
		t.Fatal(err)
	}
	if got != obj {
		t.Error("lookup returned a copy, want the same pointer (zero-copy)")
	}
	if _, err := r.Lookup("nope"); !errors.Is(err, ErrNotFound) {
		t.Error("missing object lookup should fail")
	}
}

func TestConcurrentAllocators(t *testing.T) {
	r, _ := Create("t-conc", 1<<20)
	defer Unlink("t-conc")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				off, err := r.Alloc(64)
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					r.Free(off, 64)
				}
			}
		}(w)
	}
	wg.Wait()
	want := int64(8 * 50 * 64)
	if r.Used() != want {
		t.Errorf("used = %d, want %d", r.Used(), want)
	}
}

func TestManyRegions(t *testing.T) {
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("t-many-%d", i)
		if _, err := Create(name, 128); err != nil {
			t.Fatal(err)
		}
		defer Unlink(name)
	}
	for i := 0; i < 10; i++ {
		if _, err := Attach(fmt.Sprintf("t-many-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
}
