// Package shm models the Boost.Interprocess shared-memory framework
// the paper builds on (§4.3.2): named regions that multiple "processes"
// (isolated goroutine domains, one per client) attach to, a
// fixed-capacity arena allocator backing the 2 GB global-map budget,
// named shareable (read/write) mutexes mediating access, and an object
// directory through which the global map is published.
//
// Substitution note (DESIGN.md): what Table 4 measures is the contract
// — zero serialization and zero copies on the SLAM-Share path versus
// serialize → transfer → deserialize on the baseline — and the arena
// + attach + named-mutex API enforces exactly that contract.
package shm

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOutOfMemory is returned when an allocation exceeds the region's
// remaining capacity.
var ErrOutOfMemory = errors.New("shm: region out of memory")

// ErrNotFound is returned when attaching to a region or object that
// does not exist.
var ErrNotFound = errors.New("shm: not found")

// registry emulates the OS namespace of named shared-memory segments.
var registry = struct {
	sync.Mutex
	regions map[string]*Region
}{regions: make(map[string]*Region)}

// Region is a named shared-memory segment with a fixed capacity.
type Region struct {
	name string
	cap  int64

	mu      sync.Mutex
	used    int64
	objects map[string]any
	mutexes map[string]*sync.RWMutex
	frees   map[int64]int64 // offset -> size of freed blocks
	next    int64
	attach  int
}

// Create allocates a new named region of the given capacity in bytes
// (the paper allocates 2 GB). Creating an existing name fails.
func Create(name string, capacity int64) (*Region, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("shm: invalid capacity %d", capacity)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, ok := registry.regions[name]; ok {
		return nil, fmt.Errorf("shm: region %q already exists", name)
	}
	r := &Region{
		name:    name,
		cap:     capacity,
		objects: make(map[string]any),
		mutexes: make(map[string]*sync.RWMutex),
		frees:   make(map[int64]int64),
	}
	registry.regions[name] = r
	return r, nil
}

// Attach opens an existing named region — the step each client process
// performs at startup ("it searches and attaches the shared memory
// buffer to its own virtual address space").
func Attach(name string) (*Region, error) {
	registry.Lock()
	defer registry.Unlock()
	r, ok := registry.regions[name]
	if !ok {
		return nil, fmt.Errorf("%w: region %q", ErrNotFound, name)
	}
	r.mu.Lock()
	r.attach++
	r.mu.Unlock()
	return r, nil
}

// Unlink removes a named region from the namespace (existing handles
// keep working, as with POSIX shm_unlink).
func Unlink(name string) {
	registry.Lock()
	delete(registry.regions, name)
	registry.Unlock()
}

// Name returns the region name.
func (r *Region) Name() string { return r.name }

// Capacity returns the region's fixed capacity in bytes.
func (r *Region) Capacity() int64 { return r.cap }

// Used returns the currently allocated bytes.
func (r *Region) Used() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// Attachments returns how many processes attached.
func (r *Region) Attachments() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attach
}

// Alloc reserves n bytes in the region and returns its offset. It
// fails with ErrOutOfMemory beyond capacity — the discipline the 2 GB
// budget imposes on the global map.
func (r *Region) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("shm: invalid allocation %d", n)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.used+n > r.cap {
		return 0, fmt.Errorf("%w: %d + %d > %d", ErrOutOfMemory, r.used, n, r.cap)
	}
	// First-fit over the free list, else bump.
	for off, size := range r.frees {
		if size >= n {
			delete(r.frees, off)
			if size > n {
				r.frees[off+n] = size - n
			}
			r.used += n
			return off, nil
		}
	}
	off := r.next
	r.next += n
	r.used += n
	return off, nil
}

// Free returns an allocation to the region.
func (r *Region) Free(off, n int64) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.used -= n
	if r.used < 0 {
		r.used = 0
	}
	r.frees[off] = n
}

// NamedMutex returns the shareable mutex with the given name, creating
// it on first use — the Boost named-upgradable-mutex analogue that
// allows concurrent readers from multiple processes while serializing
// writers (§4.3.2).
func (r *Region) NamedMutex(name string) *sync.RWMutex {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.mutexes[name]
	if !ok {
		m = &sync.RWMutex{}
		r.mutexes[name] = m
	}
	return m
}

// Publish stores an object in the region's directory under a name, so
// other attached processes can find it (the global map pointer). The
// object itself lives in the region conceptually; no copy is made.
func (r *Region) Publish(name string, obj any) {
	r.mu.Lock()
	r.objects[name] = obj
	r.mu.Unlock()
}

// Lookup finds a published object.
func (r *Region) Lookup(name string) (any, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	obj, ok := r.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: object %q", ErrNotFound, name)
	}
	return obj, nil
}
