package video

import (
	"testing"

	"slamshare/internal/camera"
	"slamshare/internal/dataset"
	"slamshare/internal/feature"
	"slamshare/internal/img"
)

func TestImageRoundTripLossless(t *testing.T) {
	seq := dataset.V202(camera.Mono)
	f := seq.Frame(0)
	data := EncodeImage(f)
	got, err := DecodeImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if img.AbsDiff(f, got) != 0 {
		t.Error("image codec is not lossless")
	}
	if len(data) >= len(f.Pix) {
		t.Errorf("no compression: %d >= %d", len(data), len(f.Pix))
	}
}

func TestVideoRoundTripBounded(t *testing.T) {
	seq := dataset.V202(camera.Mono)
	enc := NewEncoder()
	dec := NewDecoder()
	for i := 0; i < 10; i++ {
		f := seq.Frame(i)
		got, err := dec.Decode(enc.Encode(f))
		if err != nil {
			t.Fatal(err)
		}
		// Deadzone quantization bounds per-pixel error by the deadzone.
		var worst int
		for j := range f.Pix {
			d := int(f.Pix[j]) - int(got.Pix[j])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		if worst > enc.Deadzone {
			t.Fatalf("frame %d: error %d exceeds deadzone %d", i, worst, enc.Deadzone)
		}
	}
}

func TestVideoBeatsImagesOnBandwidth(t *testing.T) {
	// The substance of Table 3: the video stream must be far smaller
	// than independent image transfers of the same frames.
	seq := dataset.MH04(camera.Mono)
	enc := NewEncoder()
	var vid, im StreamStats
	for i := 0; i < 30; i++ {
		f := seq.Frame(i)
		vid.Frames++
		vid.TotalBytes += len(enc.Encode(f))
		im.Frames++
		im.TotalBytes += len(EncodeImage(f))
	}
	ratio := float64(im.TotalBytes) / float64(vid.TotalBytes)
	t.Logf("image %.1f Mbit/s vs video %.1f Mbit/s (%.1fx)",
		im.BitrateMbps(30), vid.BitrateMbps(30), ratio)
	if ratio < 5 {
		t.Errorf("video only %.1fx smaller than images", ratio)
	}
}

func TestVideoPreservesTracking(t *testing.T) {
	// The ATE row of Table 3: features extracted from decoded video
	// must match those from the raw frames.
	seq := dataset.V202(camera.Mono)
	enc := NewEncoder()
	dec := NewDecoder()
	ex := feature.NewExtractor(feature.DefaultConfig())
	f := seq.Frame(3)
	raw := ex.Extract(f)
	// Run a couple of frames through to land on an inter frame.
	dec.Decode(enc.Encode(seq.Frame(0)))
	dec.Decode(enc.Encode(seq.Frame(1)))
	dec.Decode(enc.Encode(seq.Frame(2)))
	decoded, err := dec.Decode(enc.Encode(f))
	if err != nil {
		t.Fatal(err)
	}
	viaVideo := ex.Extract(decoded)
	matches := feature.MatchBrute(raw, viaVideo, feature.MatchThresholdStrict, feature.RatioTest)
	if len(raw) == 0 || len(matches) < len(raw)*6/10 {
		t.Errorf("only %d/%d features survive the codec", len(matches), len(raw))
	}
}

func TestDecoderErrors(t *testing.T) {
	dec := NewDecoder()
	if _, err := dec.Decode([]byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := dec.Decode([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("unknown kind accepted")
	}
	// Inter frame without a reference must fail.
	enc := NewEncoder()
	f := img.New(64, 64)
	enc.Encode(f)          // intra, primes encoder
	inter := enc.Encode(f) // inter
	if inter[0] != frameInter {
		t.Fatal("expected inter frame")
	}
	fresh := NewDecoder()
	if _, err := fresh.Decode(inter); err == nil {
		t.Error("inter without reference accepted")
	}
}

func TestEncoderReintraAfterResize(t *testing.T) {
	enc := NewEncoder()
	a := img.New(64, 64)
	b := img.New(32, 32)
	enc.Encode(a)
	data := enc.Encode(b) // size change must force an intra frame
	if data[0] != frameIntra {
		t.Error("resize did not force intra frame")
	}
}

func TestStreamStats(t *testing.T) {
	s := StreamStats{Frames: 30, TotalBytes: 30 * 4167}
	// 4167 B/frame * 8 * 30 fps = ~1 Mbit/s.
	if m := s.BitrateMbps(30); m < 0.9 || m > 1.1 {
		t.Errorf("bitrate = %v", m)
	}
	if (StreamStats{}).BitrateMbps(30) != 0 {
		t.Error("empty stream bitrate nonzero")
	}
}
