package video

import (
	"testing"

	"slamshare/internal/camera"
	"slamshare/internal/dataset"
)

// BenchmarkCodecRoundTrip measures the steady-state per-frame cost of
// the video path (encode + decode) on a real sequence. Its allocs/op
// is the regression guard for the scratch pooling: one frame should
// cost a handful of allocations (the returned payload and frame), not
// fresh filter/residual/DEFLATE state.
func BenchmarkCodecRoundTrip(b *testing.B) {
	seq := dataset.V202(camera.Mono)
	const frames = 8
	enc := NewEncoder()
	dec := NewDecoder()
	// Warm the stream so the loop measures steady state.
	for i := 0; i < frames; i++ {
		if _, err := dec.Decode(enc.Encode(seq.Frame(i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := seq.Frame(i % frames)
		b.StartTimer()
		payload := enc.Encode(f)
		if _, err := dec.Decode(payload); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
	}
}

// BenchmarkEncodeImage measures the image-transfer baseline encoder.
func BenchmarkEncodeImage(b *testing.B) {
	seq := dataset.V202(camera.Mono)
	f := seq.Frame(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeImage(f)
	}
}
