// Package video implements the frame transport codecs of Table 3: a
// standalone image codec (the PNG-transfer baseline) and a motion-
// style video codec with intra frames and deadzone-quantized inter
// frames (the H.264 substitute — see DESIGN.md). Both are built on
// stdlib DEFLATE; what matters for the experiment is the bandwidth
// ratio between shipping independent images and shipping a redundancy-
// exploiting stream, which the inter coding reproduces.
package video

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"slamshare/internal/img"
)

// ErrCorrupt is returned when a payload cannot be decoded.
var ErrCorrupt = errors.New("video: corrupt payload")

const (
	frameIntra = 1
	frameInter = 2
)

// The codec runs per frame on every client stream, so its transient
// buffers — and above all the DEFLATE compressor state, which is far
// larger than any frame — are pooled rather than reallocated 30 times
// a second. Pools are safe for concurrent streams; the stateful
// per-stream scratch (prediction images, residuals) lives on the
// Encoder/Decoder instead.
var (
	scratchPool = sync.Pool{New: func() any { return new([]byte) }}
	deflFast    = sync.Pool{New: func() any {
		zw, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return zw
	}}
	deflDefault = sync.Pool{New: func() any {
		zw, _ := flate.NewWriter(io.Discard, flate.DefaultCompression)
		return zw
	}}
	inflPool = sync.Pool{New: func() any {
		return flate.NewReader(bytes.NewReader(nil))
	}}
)

// getBuf returns a length-n scratch slice; callers must fully
// overwrite it and hand it back with putBuf.
func getBuf(n int) *[]byte {
	p := scratchPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putBuf(p *[]byte) { scratchPool.Put(p) }

// EncodeImage compresses a single frame independently (the image-
// transfer baseline): horizontal-predictor filtering + DEFLATE,
// PNG-style.
func EncodeImage(f *img.Gray) []byte {
	fp := getBuf(len(f.Pix))
	filtered := *fp
	for y := 0; y < f.H; y++ {
		row := f.Row(y)
		out := filtered[y*f.W : (y+1)*f.W]
		prev := byte(0)
		for x, v := range row {
			out[x] = v - prev
			prev = v
		}
	}
	var buf bytes.Buffer
	header := make([]byte, 9)
	header[0] = frameIntra
	binary.LittleEndian.PutUint32(header[1:], uint32(f.W))
	binary.LittleEndian.PutUint32(header[5:], uint32(f.H))
	buf.Write(header)
	zw := deflFast.Get().(*flate.Writer)
	zw.Reset(&buf)
	zw.Write(filtered)
	zw.Close()
	deflFast.Put(zw)
	putBuf(fp)
	return buf.Bytes()
}

// DecodeImage reverses EncodeImage.
func DecodeImage(data []byte) (*img.Gray, error) {
	f, kind, err := decodePayload(data, nil)
	if err != nil {
		return nil, err
	}
	if kind != frameIntra {
		return nil, fmt.Errorf("%w: expected intra frame", ErrCorrupt)
	}
	return f, nil
}

// Encoder is a stateful video encoder: intra frames every GOP frames,
// deadzone-quantized difference frames in between. It keeps the
// decoder-side reconstruction so quantization error does not drift.
type Encoder struct {
	// GOP is the intra-frame interval (group of pictures length).
	GOP int
	// Deadzone zeroes inter-frame differences with magnitude <= this
	// value; it is what buys the video-versus-image bandwidth ratio by
	// discarding sensor noise while preserving scene structure.
	Deadzone int

	count int
	recon *img.Gray

	// Per-stream scratch reused across frames: the retired
	// reconstruction becomes the next frame's prediction buffer, and
	// the MV/residual slices keep their capacity.
	spare *img.Gray
	mvs   []byte
	diff  []byte
}

// NewEncoder returns an encoder with the experiment defaults
// (GOP 30 — one intra per second at 30 FPS — and a deadzone of 3x the
// renderer's noise sigma).
func NewEncoder() *Encoder {
	return &Encoder{GOP: 30, Deadzone: 5}
}

// Reset restarts the stream: the next frame encodes intra, with no
// reference to earlier frames. Clients call it when (re)connecting so
// a fresh server-side decoder has a reference to start from.
func (e *Encoder) Reset() {
	e.recon = nil
	e.count = 0
}

// blockSize is the motion-compensation block edge in pixels.
const blockSize = 8

// mvRange is the per-block motion search radius around the predictor.
const mvRange = 3

// Encode compresses the next frame of the stream.
func (e *Encoder) Encode(f *img.Gray) []byte {
	if e.GOP <= 0 {
		e.GOP = 30
	}
	isIntra := e.recon == nil || e.count%e.GOP == 0 ||
		e.recon.W != f.W || e.recon.H != f.H
	e.count++
	if isIntra {
		data := EncodeImage(f)
		if e.recon != nil && e.recon.W == f.W && e.recon.H == f.H {
			copy(e.recon.Pix, f.Pix)
		} else {
			e.recon = f.Clone()
		}
		return data
	}
	// Inter frame: per-block motion compensation against the
	// reconstruction, then a deadzone-quantized residual. Because the
	// renderer's landmark patches translate rigidly between frames,
	// block matching captures almost all the signal, leaving only
	// sensor noise (killed by the deadzone) and dis/occlusions.
	w, h := f.W, f.H
	bw := (w + blockSize - 1) / blockSize
	bh := (h + blockSize - 1) / blockSize
	gx, gy := globalMotion(e.recon, f)
	if cap(e.mvs) < bw*bh*2 {
		e.mvs = make([]byte, bw*bh*2)
	}
	mvs := e.mvs[:bw*bh*2] // per-block (dx+64, dy+64)
	pred := e.spare
	if pred == nil || pred.W != w || pred.H != h {
		pred = img.New(w, h)
	}
	e.spare = nil
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			x0, y0 := bx*blockSize, by*blockSize
			dx, dy := bestMV(e.recon, f, x0, y0, gx, gy)
			mvs[(by*bw+bx)*2] = byte(dx + 64)
			mvs[(by*bw+bx)*2+1] = byte(dy + 64)
			copyBlock(pred, e.recon, x0, y0, dx, dy)
		}
	}
	if cap(e.diff) < 2*len(f.Pix) {
		e.diff = make([]byte, 2*len(f.Pix))
	}
	diff := e.diff[:2*len(f.Pix)]
	dz := e.Deadzone
	for i, v := range f.Pix {
		d := int(v) - int(pred.Pix[i])
		if d <= dz && d >= -dz {
			d = 0
		}
		// Signed 16-bit residual: full range, so reconstruction error
		// is bounded by the deadzone everywhere.
		binary.LittleEndian.PutUint16(diff[2*i:], uint16(int16(d)))
		pred.Pix[i] = byte(int(pred.Pix[i]) + d)
	}
	e.spare = e.recon // retired reference becomes next frame's pred buffer
	e.recon = pred
	// Delta-code motion vectors against the previous block: panning
	// scenes have long runs of equal vectors, which DEFLATE then
	// collapses.
	for i := len(mvs) - 2; i >= 2; i -= 2 {
		mvs[i] -= mvs[i-2]
		mvs[i+1] -= mvs[i-1]
	}
	var buf bytes.Buffer
	header := make([]byte, 9)
	header[0] = frameInter
	binary.LittleEndian.PutUint32(header[1:], uint32(w))
	binary.LittleEndian.PutUint32(header[5:], uint32(h))
	buf.Write(header)
	zw := deflDefault.Get().(*flate.Writer)
	zw.Reset(&buf)
	zw.Write(mvs)
	zw.Write(diff)
	zw.Close()
	deflDefault.Put(zw)
	return buf.Bytes()
}

// globalMotion estimates the dominant integer translation between the
// previous reconstruction and the new frame by coarse SAD search on
// 4x-downsampled images.
func globalMotion(prev, cur *img.Gray) (int, int) {
	const ds = 4
	pw, ph := prev.W/ds, prev.H/ds
	ap, bp := getBuf(pw*ph), getBuf(pw*ph)
	defer putBuf(ap)
	defer putBuf(bp)
	small := func(src *img.Gray, out []byte) []byte {
		for y := 0; y < ph; y++ {
			for x := 0; x < pw; x++ {
				out[y*pw+x] = src.Pix[y*ds*src.W+x*ds]
			}
		}
		return out
	}
	a := small(prev, *ap)
	b := small(cur, *bp)
	bestDX, bestDY, bestSAD := 0, 0, 1<<62
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			sad := 0
			for y := 4; y < ph-4; y += 2 {
				for x := 4; x < pw-4; x += 2 {
					sx, sy := x+dx, y+dy
					d := int(a[sy*pw+sx]) - int(b[y*pw+x])
					if d < 0 {
						d = -d
					}
					sad += d
				}
			}
			if sad < bestSAD {
				bestSAD, bestDX, bestDY = sad, dx, dy
			}
		}
	}
	return bestDX * ds, bestDY * ds
}

// bestMV finds the block motion vector minimizing SAD, trying the
// global predictor, zero motion, and a local refinement window.
func bestMV(prev, cur *img.Gray, x0, y0, gx, gy int) (int, int) {
	type cand struct{ dx, dy int }
	best := cand{0, 0}
	bestSAD := blockSAD(prev, cur, x0, y0, 0, 0, 1<<30)
	try := func(dx, dy int) {
		if dx < -60 || dx > 60 || dy < -60 || dy > 60 {
			return
		}
		if s := blockSAD(prev, cur, x0, y0, dx, dy, bestSAD); s < bestSAD {
			bestSAD = s
			best = cand{dx, dy}
		}
	}
	try(gx, gy)
	// Refine around the current best.
	for r := 0; r < 2; r++ {
		b := best
		for dy := -mvRange; dy <= mvRange; dy++ {
			for dx := -mvRange; dx <= mvRange; dx++ {
				try(b.dx+dx, b.dy+dy)
			}
		}
		if b == best {
			break
		}
	}
	return best.dx, best.dy
}

// blockSAD computes the sum of absolute differences of the block at
// (x0, y0) in cur against prev displaced by (dx, dy), aborting early
// past limit. Out-of-bounds reference pixels are treated as 0.
func blockSAD(prev, cur *img.Gray, x0, y0, dx, dy, limit int) int {
	sad := 0
	for y := y0; y < y0+blockSize && y < cur.H; y++ {
		sy := y + dy
		for x := x0; x < x0+blockSize && x < cur.W; x++ {
			var pv byte
			sx := x + dx
			if sx >= 0 && sy >= 0 && sx < prev.W && sy < prev.H {
				pv = prev.Pix[sy*prev.W+sx]
			}
			d := int(pv) - int(cur.Pix[y*cur.W+x])
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if sad > limit {
			return sad
		}
	}
	return sad
}

// copyBlock writes the motion-compensated prediction of one block.
func copyBlock(dst, src *img.Gray, x0, y0, dx, dy int) {
	for y := y0; y < y0+blockSize && y < dst.H; y++ {
		sy := y + dy
		for x := x0; x < x0+blockSize && x < dst.W; x++ {
			var pv byte
			sx := x + dx
			if sx >= 0 && sy >= 0 && sx < src.W && sy < src.H {
				pv = src.Pix[sy*src.W+sx]
			}
			dst.Pix[y*dst.W+x] = pv
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Decoder reconstructs the frame stream produced by an Encoder.
type Decoder struct {
	recon *img.Gray
}

// NewDecoder returns a fresh decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// Decode reconstructs the next frame. Inter frames require that the
// preceding frames were decoded in order.
func (d *Decoder) Decode(data []byte) (*img.Gray, error) {
	f, _, err := decodePayload(data, d.recon)
	if err != nil {
		return nil, err
	}
	// The caller owns the returned frame, so the reference copy reuses
	// the previous reconstruction's storage instead of cloning.
	if d.recon != nil && d.recon.W == f.W && d.recon.H == f.H {
		copy(d.recon.Pix, f.Pix)
	} else {
		d.recon = f.Clone()
	}
	return f, nil
}

// decodePayload parses either frame kind. For inter frames, prev must
// be the current reconstruction.
func decodePayload(data []byte, prev *img.Gray) (*img.Gray, byte, error) {
	if len(data) < 9 {
		return nil, 0, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	kind := data[0]
	w := int(binary.LittleEndian.Uint32(data[1:]))
	h := int(binary.LittleEndian.Uint32(data[5:]))
	if w <= 0 || h <= 0 || w > 1<<14 || h > 1<<14 {
		return nil, 0, fmt.Errorf("%w: bad dimensions %dx%d", ErrCorrupt, w, h)
	}
	zr := inflPool.Get().(io.ReadCloser)
	zr.(flate.Resetter).Reset(bytes.NewReader(data[9:]), nil)
	defer func() {
		zr.Close()
		inflPool.Put(zr)
	}()
	out := img.New(w, h)
	switch kind {
	case frameIntra:
		rp := getBuf(w * h)
		defer putBuf(rp)
		raw := *rp
		if _, err := io.ReadFull(zr, raw); err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		for y := 0; y < h; y++ {
			prevV := byte(0)
			row := raw[y*w : (y+1)*w]
			orow := out.Row(y)
			for x, v := range row {
				prevV += v
				orow[x] = prevV
			}
		}
	case frameInter:
		if prev == nil || prev.W != w || prev.H != h {
			return nil, 0, fmt.Errorf("%w: inter frame without reference", ErrCorrupt)
		}
		bw := (w + blockSize - 1) / blockSize
		bh := (h + blockSize - 1) / blockSize
		pp := getBuf(bw*bh*2 + 2*w*h)
		defer putBuf(pp)
		payload := *pp
		if _, err := io.ReadFull(zr, payload); err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		mvs := payload[:bw*bh*2]
		for i := 2; i < len(mvs); i += 2 {
			mvs[i] += mvs[i-2]
			mvs[i+1] += mvs[i-1]
		}
		raw := payload[bw*bh*2:]
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				dx := int(mvs[(by*bw+bx)*2]) - 64
				dy := int(mvs[(by*bw+bx)*2+1]) - 64
				copyBlock(out, prev, bx*blockSize, by*blockSize, dx, dy)
			}
		}
		for i := 0; i < w*h; i++ {
			d := int(int16(binary.LittleEndian.Uint16(raw[2*i:])))
			out.Pix[i] = byte(int(out.Pix[i]) + d)
		}
	default:
		return nil, 0, fmt.Errorf("%w: unknown frame kind %d", ErrCorrupt, kind)
	}
	return out, kind, nil
}

// StreamStats summarizes an encoded stream.
type StreamStats struct {
	Frames     int
	TotalBytes int
}

// BitrateMbps returns the stream bitrate at the given frame rate in
// megabits per second.
func (s StreamStats) BitrateMbps(fps float64) float64 {
	if s.Frames == 0 {
		return 0
	}
	bytesPerFrame := float64(s.TotalBytes) / float64(s.Frames)
	return bytesPerFrame * 8 * fps / 1e6
}
