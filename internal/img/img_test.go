package img

import (
	"testing"
	"testing/quick"
)

func TestAtSetBounds(t *testing.T) {
	g := New(10, 5)
	g.Set(3, 2, 200)
	if g.At(3, 2) != 200 {
		t.Error("Set/At round trip failed")
	}
	if g.At(-1, 0) != 0 || g.At(10, 0) != 0 || g.At(0, 5) != 0 {
		t.Error("out-of-bounds read not zero")
	}
	g.Set(-1, -1, 99) // must not panic
	g.Set(100, 100, 99)
}

func TestCloneIndependent(t *testing.T) {
	g := New(4, 4)
	g.Fill(7)
	c := g.Clone()
	c.Set(0, 0, 99)
	if g.At(0, 0) != 7 {
		t.Error("clone shares storage")
	}
}

func TestMean(t *testing.T) {
	g := New(2, 2)
	g.Pix = []byte{0, 100, 100, 200}
	if got := g.Mean(); got != 100 {
		t.Errorf("Mean = %v", got)
	}
	empty := &Gray{}
	if empty.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestHalve(t *testing.T) {
	g := New(4, 4)
	g.Fill(80)
	h := g.Halve()
	if h.W != 2 || h.H != 2 {
		t.Fatalf("halved size %dx%d", h.W, h.H)
	}
	for _, p := range h.Pix {
		if p != 80 {
			t.Fatalf("uniform image changed value: %d", p)
		}
	}
}

func TestResizePreservesUniform(t *testing.T) {
	f := func(v byte) bool {
		g := New(64, 48)
		g.Fill(v)
		r := g.Resize(40, 30)
		for _, p := range r.Pix {
			if p != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestResizeIdentity(t *testing.T) {
	g := New(16, 16)
	for i := range g.Pix {
		g.Pix[i] = byte(i * 7)
	}
	r := g.Resize(16, 16)
	if AbsDiff(g, r) > 0.51 {
		t.Errorf("identity resize differs by %v", AbsDiff(g, r))
	}
}

func TestAbsDiff(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	if AbsDiff(a, b) != 0 {
		t.Error("identical images differ")
	}
	b.Fill(10)
	if AbsDiff(a, b) != 10 {
		t.Errorf("diff = %v", AbsDiff(a, b))
	}
	c := New(3, 3)
	if AbsDiff(a, c) != 255 {
		t.Error("size mismatch should report max diff")
	}
}

func TestPyramidLevels(t *testing.T) {
	g := New(752, 480)
	p := NewPyramid(g, 8, 1.2)
	if len(p.Levels) != 8 {
		t.Fatalf("levels = %d", len(p.Levels))
	}
	for i := 1; i < len(p.Levels); i++ {
		if p.Levels[i].W >= p.Levels[i-1].W {
			t.Fatalf("level %d not smaller", i)
		}
		if p.Scales[i] <= p.Scales[i-1] {
			t.Fatalf("scales not increasing at %d", i)
		}
	}
}

func TestPyramidStopsAtMinSize(t *testing.T) {
	g := New(64, 64)
	p := NewPyramid(g, 20, 1.5)
	if len(p.Levels) >= 20 {
		t.Error("pyramid should truncate before 20 levels on a 64px image")
	}
	last := p.Levels[len(p.Levels)-1]
	if last.W < 32 || last.H < 32 {
		t.Errorf("last level too small: %dx%d", last.W, last.H)
	}
}

func TestPyramidDefaults(t *testing.T) {
	g := New(100, 100)
	p := NewPyramid(g, 0, 0)
	if len(p.Levels) != 1 || p.Factor != 1.2 {
		t.Errorf("defaults not applied: %d levels, factor %v", len(p.Levels), p.Factor)
	}
}

func TestToLevel0(t *testing.T) {
	g := New(200, 200)
	p := NewPyramid(g, 3, 2.0)
	x, y := p.ToLevel0(10, 20, 1)
	if x != 20 || y != 40 {
		t.Errorf("ToLevel0 = (%v, %v)", x, y)
	}
}

func TestRowSlice(t *testing.T) {
	g := New(4, 3)
	r := g.Row(1)
	r[0] = 42
	if g.At(0, 1) != 42 {
		t.Error("Row should alias image storage")
	}
	if len(r) != 4 {
		t.Errorf("row length %d", len(r))
	}
}
