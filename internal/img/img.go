// Package img provides the 8-bit grayscale image type the vision
// pipeline operates on, plus the scale pyramid used by ORB feature
// extraction. Images are plain byte buffers so they can be shipped over
// the wire, fed to the video codec, and scanned by the FAST detector
// without conversions.
package img

// Gray is an 8-bit grayscale image with row-major pixel storage.
type Gray struct {
	W, H int
	Pix  []byte // len == W*H
}

// New returns a black image of the given size.
func New(w, h int) *Gray {
	return &Gray{W: w, H: h, Pix: make([]byte, w*h)}
}

// At returns the pixel at (x, y). Out-of-bounds reads return 0.
func (g *Gray) At(x, y int) byte {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return 0
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (g *Gray) Set(x, y int, v byte) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Row returns the pixel slice of row y.
func (g *Gray) Row(y int) []byte { return g.Pix[y*g.W : (y+1)*g.W] }

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	out := New(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v byte) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// Mean returns the average intensity.
func (g *Gray) Mean() float64 {
	if len(g.Pix) == 0 {
		return 0
	}
	var sum int64
	for _, p := range g.Pix {
		sum += int64(p)
	}
	return float64(sum) / float64(len(g.Pix))
}

// Halve returns the image downsampled by 2x with 2x2 box filtering,
// the pyramid step of ORB extraction.
func (g *Gray) Halve() *Gray {
	w2, h2 := g.W/2, g.H/2
	out := New(w2, h2)
	for y := 0; y < h2; y++ {
		src0 := g.Row(2 * y)
		src1 := g.Row(2*y + 1)
		dst := out.Row(y)
		for x := 0; x < w2; x++ {
			s := int(src0[2*x]) + int(src0[2*x+1]) + int(src1[2*x]) + int(src1[2*x+1])
			dst[x] = byte(s / 4)
		}
	}
	return out
}

// Resize returns the image scaled to (w, h) with bilinear sampling.
func (g *Gray) Resize(w, h int) *Gray {
	out := New(w, h)
	if g.W == 0 || g.H == 0 || w == 0 || h == 0 {
		return out
	}
	g.ResizeRows(out, 0, out.H)
	return out
}

// ResizeRows fills rows [y0, y1) of out with a bilinear resample of
// g. Rows are written independently, so disjoint ranges can be filled
// concurrently.
func (g *Gray) ResizeRows(out *Gray, rowLo, rowHi int) {
	w, h := out.W, out.H
	sx := float64(g.W) / float64(w)
	sy := float64(g.H) / float64(h)
	for y := rowLo; y < rowHi; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(fy)
		if y0 < 0 {
			y0 = 0
		}
		y1 := y0 + 1
		if y1 >= g.H {
			y1 = g.H - 1
		}
		wy := fy - float64(y0)
		if wy < 0 {
			wy = 0
		}
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(fx)
			if x0 < 0 {
				x0 = 0
			}
			x1 := x0 + 1
			if x1 >= g.W {
				x1 = g.W - 1
			}
			wx := fx - float64(x0)
			if wx < 0 {
				wx = 0
			}
			v := (1-wy)*((1-wx)*float64(g.At(x0, y0))+wx*float64(g.At(x1, y0))) +
				wy*((1-wx)*float64(g.At(x0, y1))+wx*float64(g.At(x1, y1)))
			out.Set(x, y, byte(v+0.5))
		}
	}
}

// AbsDiff returns the mean absolute pixel difference between two
// equally sized images, used by video-codec tests.
func AbsDiff(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H || len(a.Pix) == 0 {
		return 255
	}
	var sum int64
	for i := range a.Pix {
		d := int64(a.Pix[i]) - int64(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(len(a.Pix))
}

// Pyramid is a scale pyramid: level 0 is the input image, each level
// is scaled down by Factor from the previous one. ORB-SLAM3 uses 8
// levels with factor 1.2.
type Pyramid struct {
	Levels []*Gray
	Factor float64
	Scales []float64 // Scales[i] = Factor^i
}

// NewPyramid builds an n-level pyramid with the given scale factor.
func NewPyramid(base *Gray, n int, factor float64) *Pyramid {
	return NewPyramidWith(base, n, factor, nil)
}

// pyramidStrip is the row granularity of one parallel resample work
// item — coarse enough that per-item dispatch cost stays negligible.
const pyramidStrip = 32

// NewPyramidWith builds the pyramid with each level's resample rows
// executed through run (the feature package passes its Parallelizer
// here, so pyramid construction batches through the same scheduler as
// the detection kernels). Levels stay sequential — each is sampled
// from the previous — and rows are index-disjoint, so the result is
// identical for any execution order. run == nil resamples inline.
func NewPyramidWith(base *Gray, n int, factor float64, run func(n int, f func(i int))) *Pyramid {
	if n < 1 {
		n = 1
	}
	if factor <= 1 {
		factor = 1.2
	}
	p := &Pyramid{
		Levels: make([]*Gray, n),
		Factor: factor,
		Scales: make([]float64, n),
	}
	p.Levels[0] = base
	p.Scales[0] = 1
	for i := 1; i < n; i++ {
		p.Scales[i] = p.Scales[i-1] * factor
		w := int(float64(base.W)/p.Scales[i] + 0.5)
		h := int(float64(base.H)/p.Scales[i] + 0.5)
		if w < 32 || h < 32 {
			p.Levels = p.Levels[:i]
			p.Scales = p.Scales[:i]
			break
		}
		src := p.Levels[i-1]
		if run == nil {
			p.Levels[i] = src.Resize(w, h)
			continue
		}
		out := New(w, h)
		strips := (h + pyramidStrip - 1) / pyramidStrip
		run(strips, func(s int) {
			lo := s * pyramidStrip
			hi := lo + pyramidStrip
			if hi > h {
				hi = h
			}
			src.ResizeRows(out, lo, hi)
		})
		p.Levels[i] = out
	}
	return p
}

// ToLevel0 maps coordinates from pyramid level l back to level-0
// coordinates.
func (p *Pyramid) ToLevel0(x, y float64, l int) (float64, float64) {
	s := p.Scales[l]
	return x * s, y * s
}
