// Package holo implements the AR content layer on top of the shared
// map: holograms (virtual objects) anchored at positions and
// orientations in the global coordinate frame. This is the layer the
// paper's motivation (Figs. 1, 2 and 11) is about: because every
// client localizes in the same merged map, an anchor placed by one
// user renders at the same real-world spot for all of them, and "the
// only information shared between users is the coordinates of the
// hologram" (§5.6).
package holo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"slamshare/internal/geom"
)

// Anchor is a virtual object pinned to the shared map's frame.
type Anchor struct {
	ID    uint64
	Label string
	Pose  geom.SE3 // anchor-to-world in the shared frame
	Owner uint32   // client that placed it
	Stamp float64  // placement time, seconds
}

// Registry is the set of anchors of one AR session. It is safe for
// concurrent use by multiple client handlers.
type Registry struct {
	mu      sync.RWMutex
	anchors map[uint64]*Anchor
	next    uint64
}

// NewRegistry returns an empty anchor registry.
func NewRegistry() *Registry {
	return &Registry{anchors: make(map[uint64]*Anchor), next: 1}
}

// Place creates an anchor at the given pose in the shared frame and
// returns its id.
func (r *Registry) Place(label string, pose geom.SE3, owner uint32, stamp float64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.next
	r.next++
	r.anchors[id] = &Anchor{ID: id, Label: label, Pose: pose, Owner: owner, Stamp: stamp}
	return id
}

// PlaceAhead anchors an object at the given distance in front of a
// device pose (body-to-world) — how the examples and §5.6 place
// holograms.
func (r *Registry) PlaceAhead(label string, devicePose geom.SE3, distance float64, owner uint32, stamp float64) uint64 {
	pose := geom.SE3{
		R: devicePose.R,
		T: devicePose.Apply(geom.Vec3{Z: distance}),
	}
	return r.Place(label, pose, owner, stamp)
}

// Get returns an anchor by id.
func (r *Registry) Get(id uint64) (Anchor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.anchors[id]
	if !ok {
		return Anchor{}, false
	}
	return *a, true
}

// Remove deletes an anchor; only the owner may remove it (owner 0 is
// the session administrator and may remove anything).
func (r *Registry) Remove(id uint64, requester uint32) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.anchors[id]
	if !ok {
		return fmt.Errorf("holo: unknown anchor %d", id)
	}
	if requester != 0 && a.Owner != requester {
		return fmt.Errorf("holo: client %d does not own anchor %d", requester, id)
	}
	delete(r.anchors, id)
	return nil
}

// Move re-poses an anchor (e.g. a user refining an obstacle position,
// §4.1 step 3).
func (r *Registry) Move(id uint64, pose geom.SE3) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.anchors[id]
	if !ok {
		return fmt.Errorf("holo: unknown anchor %d", id)
	}
	a.Pose = pose
	return nil
}

// Len returns the number of anchors.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.anchors)
}

// All returns the anchors sorted by id.
func (r *Registry) All() []Anchor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Anchor, 0, len(r.anchors))
	for _, a := range r.anchors {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Visible is an anchor as seen from a device: its screen-space
// direction and distance.
type Visible struct {
	Anchor   Anchor
	Distance float64
	// Bearing is the angle between the device's optical axis and the
	// anchor direction, radians.
	Bearing float64
}

// VisibleFrom returns the anchors within maxDist of the device pose
// and within the given half field of view (radians), nearest first —
// what the device's display should render.
func (r *Registry) VisibleFrom(devicePose geom.SE3, maxDist, halfFOV float64) []Visible {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fwd := devicePose.R.Rotate(geom.Vec3{Z: 1})
	var out []Visible
	for _, a := range r.anchors {
		d := a.Pose.T.Sub(devicePose.T)
		dist := d.Norm()
		if dist > maxDist || dist == 0 {
			continue
		}
		cos := d.Scale(1 / dist).Dot(fwd)
		bearing := math.Acos(geom.Clamp(cos, -1, 1))
		if bearing > halfFOV {
			continue
		}
		out = append(out, Visible{Anchor: *a, Distance: dist, Bearing: bearing})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out
}

// ApplyTransform moves every anchor through a similarity transform —
// called if the shared frame itself is re-based (e.g. a global loop
// closure re-anchors the map).
func (r *Registry) ApplyTransform(s geom.Sim3) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range r.anchors {
		a.Pose = geom.SE3{
			R: s.R.Mul(a.Pose.R).Normalized(),
			T: s.Apply(a.Pose.T),
		}
	}
}

// ErrCorrupt reports an undecodable registry payload.
var ErrCorrupt = errors.New("holo: corrupt registry encoding")

// Encode serializes the registry (for session persistence or late-
// joining clients).
func (r *Registry) Encode() []byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	anchors := make([]*Anchor, 0, len(r.anchors))
	for _, a := range r.anchors {
		anchors = append(anchors, a)
	}
	sort.Slice(anchors, func(i, j int) bool { return anchors[i].ID < anchors[j].ID })
	var buf []byte
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(len(anchors)))
	u64(r.next)
	for _, a := range anchors {
		u64(a.ID)
		u64(uint64(len(a.Label)))
		buf = append(buf, a.Label...)
		f64(a.Pose.R.W)
		f64(a.Pose.R.X)
		f64(a.Pose.R.Y)
		f64(a.Pose.R.Z)
		f64(a.Pose.T.X)
		f64(a.Pose.T.Y)
		f64(a.Pose.T.Z)
		u64(uint64(a.Owner))
		f64(a.Stamp)
	}
	return buf
}

// EncodeAnchors serializes a bare anchor list — the boundary-exchange
// payload a shard sends alongside an exported map region. It reuses
// the registry encoding with a zero next-ID slot (the importer keeps
// its own allocator).
func EncodeAnchors(anchors []Anchor) []byte {
	tmp := NewRegistry()
	for i := range anchors {
		a := anchors[i]
		tmp.anchors[a.ID] = &a
	}
	tmp.next = 0
	return tmp.Encode()
}

// DecodeAnchors reverses EncodeAnchors.
func DecodeAnchors(data []byte) ([]Anchor, error) {
	if len(data) == 0 {
		return nil, nil
	}
	r, err := Decode(data)
	if err != nil {
		return nil, err
	}
	return r.All(), nil
}

// Restore upserts an anchor preserving its identity — used when a
// boundary import carries anchors from another shard. Unlike Place it
// never assigns a new ID; it bumps the allocator past the restored ID
// so later Place calls cannot collide with it.
func (r *Registry) Restore(a Anchor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := a
	r.anchors[a.ID] = &cp
	if a.ID >= r.next {
		r.next = a.ID + 1
	}
}

// OwnedBy returns the anchors placed by one client, sorted by ID —
// the set that migrates with that client's session in a handoff.
func (r *Registry) OwnedBy(owner uint32) []Anchor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Anchor
	for _, a := range r.anchors {
		if a.Owner == owner {
			out = append(out, *a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Decode reconstructs a registry serialized by Encode.
func Decode(data []byte) (*Registry, error) {
	off := 0
	u64 := func() uint64 {
		if off+8 > len(data) {
			off = len(data) + 1
			return 0
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	f64 := func() float64 { return math.Float64frombits(u64()) }
	n := u64()
	next := u64()
	if off > len(data) || n > 1<<20 {
		return nil, ErrCorrupt
	}
	r := NewRegistry()
	r.next = next
	for i := uint64(0); i < n; i++ {
		a := &Anchor{}
		a.ID = u64()
		ln := u64()
		if off > len(data) || off+int(ln) > len(data) || ln > 1<<16 {
			return nil, ErrCorrupt
		}
		a.Label = string(data[off : off+int(ln)])
		off += int(ln)
		a.Pose.R.W = f64()
		a.Pose.R.X = f64()
		a.Pose.R.Y = f64()
		a.Pose.R.Z = f64()
		a.Pose.T.X = f64()
		a.Pose.T.Y = f64()
		a.Pose.T.Z = f64()
		a.Owner = uint32(u64())
		a.Stamp = f64()
		if off > len(data) {
			return nil, ErrCorrupt
		}
		r.anchors[a.ID] = a
	}
	return r, nil
}
