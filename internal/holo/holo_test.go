package holo

import (
	"math"
	"testing"

	"slamshare/internal/geom"
)

func pose(x, y, z float64) geom.SE3 {
	return geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{X: x, Y: y, Z: z}}
}

func TestPlaceGetRemove(t *testing.T) {
	r := NewRegistry()
	id := r.Place("graffiti", pose(1, 2, 3), 7, 4.5)
	a, ok := r.Get(id)
	if !ok || a.Label != "graffiti" || a.Owner != 7 || a.Stamp != 4.5 {
		t.Fatalf("anchor = %+v", a)
	}
	if r.Len() != 1 {
		t.Error("Len wrong")
	}
	if err := r.Remove(id, 8); err == nil {
		t.Error("non-owner removal allowed")
	}
	if err := r.Remove(id, 7); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(id); ok {
		t.Error("anchor survived removal")
	}
	if err := r.Remove(99, 0); err == nil {
		t.Error("unknown removal succeeded")
	}
}

func TestAdminRemove(t *testing.T) {
	r := NewRegistry()
	id := r.Place("x", pose(0, 0, 0), 5, 0)
	if err := r.Remove(id, 0); err != nil {
		t.Errorf("admin removal failed: %v", err)
	}
}

func TestPlaceAhead(t *testing.T) {
	r := NewRegistry()
	// Device at origin looking down +Z (identity): 2 m ahead is (0,0,2).
	id := r.PlaceAhead("obstacle", geom.IdentitySE3(), 2, 1, 0)
	a, _ := r.Get(id)
	if a.Pose.T.Dist(geom.Vec3{Z: 2}) > 1e-12 {
		t.Errorf("ahead anchor at %v", a.Pose.T)
	}
}

func TestMove(t *testing.T) {
	r := NewRegistry()
	id := r.Place("x", pose(0, 0, 0), 1, 0)
	if err := r.Move(id, pose(5, 0, 0)); err != nil {
		t.Fatal(err)
	}
	a, _ := r.Get(id)
	if a.Pose.T.X != 5 {
		t.Error("move did not apply")
	}
	if err := r.Move(42, pose(0, 0, 0)); err == nil {
		t.Error("moving unknown anchor succeeded")
	}
}

func TestVisibleFrom(t *testing.T) {
	r := NewRegistry()
	r.Place("ahead-near", pose(0, 0, 2), 1, 0)
	r.Place("ahead-far", pose(0, 0, 8), 1, 0)
	r.Place("behind", pose(0, 0, -3), 1, 0)
	r.Place("side", pose(5, 0, 0.5), 1, 0)
	r.Place("too-far", pose(0, 0, 100), 1, 0)

	vis := r.VisibleFrom(geom.IdentitySE3(), 20, math.Pi/4)
	if len(vis) != 2 {
		t.Fatalf("visible = %d, want 2 (near+far ahead)", len(vis))
	}
	if vis[0].Anchor.Label != "ahead-near" || vis[1].Anchor.Label != "ahead-far" {
		t.Errorf("ordering wrong: %s, %s", vis[0].Anchor.Label, vis[1].Anchor.Label)
	}
	if vis[0].Distance != 2 || vis[0].Bearing > 1e-9 {
		t.Errorf("near anchor geometry: %+v", vis[0])
	}
	// Wide FOV picks up the side anchor too.
	vis = r.VisibleFrom(geom.IdentitySE3(), 20, math.Pi)
	if len(vis) != 4 {
		t.Errorf("wide FOV visible = %d, want 4", len(vis))
	}
}

func TestAllSorted(t *testing.T) {
	r := NewRegistry()
	r.Place("a", pose(0, 0, 0), 1, 0)
	r.Place("b", pose(0, 0, 0), 1, 0)
	r.Place("c", pose(0, 0, 0), 1, 0)
	all := r.All()
	if len(all) != 3 {
		t.Fatalf("All = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID <= all[i-1].ID {
			t.Error("not sorted by id")
		}
	}
}

func TestApplyTransform(t *testing.T) {
	r := NewRegistry()
	id := r.Place("x", pose(1, 0, 0), 1, 0)
	s := geom.Sim3{S: 1, R: geom.QuatFromAxisAngle(geom.Vec3{Z: 1}, math.Pi/2), T: geom.Vec3{X: 10}}
	r.ApplyTransform(s)
	a, _ := r.Get(id)
	if a.Pose.T.Dist(geom.Vec3{X: 10, Y: 1}) > 1e-9 {
		t.Errorf("transformed anchor at %v", a.Pose.T)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Place("graffiti", geom.SE3{
		R: geom.QuatFromAxisAngle(geom.Vec3{X: 1, Y: 2, Z: 3}, 0.7),
		T: geom.Vec3{X: 1.5, Y: -2.25, Z: 0.125},
	}, 7, 12.5)
	r.Place("obstacle", pose(4, 5, 6), 2, 20)

	got, err := Decode(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("decoded %d anchors", got.Len())
	}
	for _, want := range r.All() {
		a, ok := got.Get(want.ID)
		if !ok {
			t.Fatalf("anchor %d missing", want.ID)
		}
		if a.Label != want.Label || a.Owner != want.Owner || a.Stamp != want.Stamp {
			t.Errorf("metadata mismatch: %+v vs %+v", a, want)
		}
		if a.Pose.T.Dist(want.Pose.T) > 1e-12 || a.Pose.R.AngleTo(want.Pose.R) > 1e-12 {
			t.Error("pose mismatch")
		}
	}
	// New ids continue after the decoded ones.
	id := got.Place("new", pose(0, 0, 0), 1, 0)
	if id <= 2 {
		t.Errorf("id counter not restored: %d", id)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
	r := NewRegistry()
	r.Place("x", pose(0, 0, 0), 1, 0)
	data := r.Encode()
	if _, err := Decode(data[:len(data)-9]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			r.Place("a", pose(float64(i), 0, 0), 1, 0)
		}
	}()
	for i := 0; i < 500; i++ {
		r.All()
		r.VisibleFrom(geom.IdentitySE3(), 1e6, math.Pi)
		r.Len()
	}
	<-done
	if r.Len() != 500 {
		t.Errorf("Len = %d", r.Len())
	}
}
