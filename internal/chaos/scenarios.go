package chaos

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/dataset"
	"slamshare/internal/lifecycle"
	"slamshare/internal/netem"
)

// Scenarios returns the standard chaos matrix: every fault class the
// acceptance criteria name, each deterministic from its seed. The
// chaos tests run them as table-driven cases and `experiments chaos`
// prints the survival/invariant summary.
func Scenarios() []Scenario {
	link := netem.DelayOnly(2 * time.Millisecond)
	return []Scenario{
		{
			// Churn baseline: clients join at staggered rounds, both
			// merge into one global map, nothing goes wrong.
			Name: "staggered-join", Seed: 1, Rounds: 22, Stride: 4, CheckEvery: 8,
			Clients: []ClientScript{
				{ID: 1, JoinRound: 0, Shape: link},
				{ID: 2, JoinRound: 4, Shape: link},
			},
			Expect: Expect{Survivors: 2, MinMerges: 2},
		},
		{
			// A client dies mid-stream (link cut, no Bye) after its map
			// merged; the global map must stay sound without it.
			Name: "client-crash", Seed: 2, Rounds: 22, Stride: 4, CheckEvery: 8,
			Clients: []ClientScript{
				{ID: 1, JoinRound: 0, Shape: link},
				{ID: 2, JoinRound: 2, CrashAt: 16, Shape: link},
			},
			Expect: Expect{Survivors: 1, MinMerges: 2, MinDropped: 1},
		},
		{
			// Crash then reconnect with the same ID: the server resumes
			// the session on the global map and the tracker relocalizes.
			Name: "reconnect-resume", Seed: 3, Rounds: 30, Stride: 4, CheckEvery: 10,
			Clients: []ClientScript{
				{ID: 1, JoinRound: 0, Shape: link},
				{ID: 2, JoinRound: 2, CrashAt: 14, ReconnectAt: 18, Shape: link},
			},
			Expect: Expect{Survivors: 2, MinMerges: 2, MinReconnects: 1,
				ResumedTracking: true, MinDropped: 1},
		},
		{
			// The server is killed after merges are journaled but never
			// checkpointed, recovers from the WAL alone, and both
			// clients resume on the recovered map.
			Name: "server-kill-recovery", Seed: 4, Rounds: 30, Stride: 4,
			KillServerAt: 16, CheckEvery: 10,
			Clients: []ClientScript{
				{ID: 1, JoinRound: 0, AutoReconnect: true, Shape: link},
				{ID: 2, JoinRound: 2, AutoReconnect: true, Shape: link},
			},
			Expect: Expect{Survivors: 2, MinMerges: 2, MinReconnects: 2,
				ResumedTracking: true},
		},
		{
			// Transient partition: the link freezes for three rounds and
			// thaws; the client misses those rounds but survives on the
			// same connection.
			Name: "partition-stall", Seed: 5, Rounds: 24, Stride: 4, CheckEvery: 8,
			Clients: []ClientScript{
				{ID: 1, JoinRound: 0, Shape: link},
				{ID: 2, JoinRound: 2, FreezeAt: 12, ThawAt: 15, Shape: link},
			},
			Expect: Expect{Survivors: 2, MinMerges: 2},
		},
		{
			// Corrupt frame stream: an undecodable payload must be
			// counted, the connection dropped, and the client readmitted
			// on reconnect.
			Name: "corrupt-stream", Seed: 6, Rounds: 26, Stride: 4, CheckEvery: 8,
			Clients: []ClientScript{
				{ID: 1, JoinRound: 0, Shape: link},
				{ID: 2, JoinRound: 2, CorruptAt: 12, ReconnectAt: 15, Shape: link},
			},
			Expect: Expect{Survivors: 2, MinMerges: 2, MinReconnects: 1,
				MinFramesRejected: 1, MinDropped: 1},
		},
		{
			// Duplicate hello mid-session: the regression for the
			// serveConn session leak — rejected, dropped, reusable.
			Name: "duplicate-hello", Seed: 7, Rounds: 24, Stride: 4, CheckEvery: 8,
			Clients: []ClientScript{
				{ID: 1, JoinRound: 0, Shape: link},
				{ID: 2, JoinRound: 2, DupHelloAt: 12, ReconnectAt: 15, Shape: link},
			},
			Expect: Expect{Survivors: 2, MinMerges: 2, MinReconnects: 1,
				MinDupHello: 1, MinDropped: 1},
		},
		{
			// City-grid fleet under a map budget: three vehicles leave a
			// shared depot block (guaranteed merge overlap) and diverge,
			// the lifecycle manager culls the over-budget map and evicts
			// the streets everyone has left behind, and the server is
			// killed mid-run — recovery must replay the compacted map
			// from the WAL, restore the evicted-region index, and resume
			// every returning client by relocalization.
			Name: "city-lifecycle-kill", Seed: 9, Rounds: 52, Stride: 4,
			KillServerAt: 34, CheckEvery: 13, Urban: true,
			Lifecycle: lifecycle.Config{MaxKeyFrames: 12, EvictAfter: 30},
			Clients: []ClientScript{
				{ID: 1, AutoReconnect: true, Shape: link,
					Seq: dataset.CityRoute("chaos-veh1", [][2]int{{0, 2}, {1, 2}, {2, 2}}, 7, camera.Stereo, 301)},
				{ID: 2, AutoReconnect: true, Shape: link,
					Seq: dataset.CityRoute("chaos-veh2", [][2]int{{0, 2}, {1, 2}, {1, 3}}, 7, camera.Stereo, 302)},
				{ID: 3, AutoReconnect: true, Shape: link,
					Seq: dataset.CityRoute("chaos-veh3", [][2]int{{0, 2}, {1, 2}, {1, 1}}, 7, camera.Stereo, 303)},
			},
			Expect: Expect{Survivors: 3, MinMerges: 3, MinReconnects: 3,
				ResumedTracking: true, MinEvictions: 1},
		},
		{
			// Flaky link: the connection dies mid-message every ~700 KiB
			// of uplink (around 16 frames — after the merge, before the
			// end); the client auto-reconnects each time.
			Name: "flaky-resets", Seed: 8, Rounds: 26, Stride: 4, CheckEvery: 8,
			Clients: []ClientScript{
				{ID: 1, JoinRound: 0, Shape: link},
				{ID: 2, JoinRound: 0, AutoReconnect: true,
					Fault: netem.FaultConfig{ResetAfterBytes: 700 << 10}},
			},
			Expect: Expect{Survivors: 2, MinMerges: 2, MinReconnects: 1, MinDropped: 1},
		},
	}
}

// RunAll executes the full scenario matrix and prints the
// survival/invariant summary table. It returns an error if any
// scenario failed its expectations or reported invariant violations.
func RunAll(w io.Writer, full bool) error {
	dir, err := os.MkdirTemp("", "slamshare-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Fprintf(w, "Chaos scenario matrix (deterministic seeds, half-resolution rigs)\n")
	fmt.Fprintf(w, "%-22s %6s %6s %6s %6s %5s %5s %6s %6s %8s  %s\n",
		"scenario", "frames", "poses", "merges", "reconn", "surv", "chks", "KFs", "MPs", "elapsed", "verdict")
	failed := 0
	for _, sc := range Scenarios() {
		res, err := Run(sc, filepath.Join(dir, sc.Name))
		if err != nil {
			fmt.Fprintf(w, "%-22s %s\n", sc.Name, err)
			failed++
			continue
		}
		verdict := "ok"
		if len(res.Violations) > 0 {
			verdict = fmt.Sprintf("%d INVARIANT VIOLATIONS", len(res.Violations))
		} else if len(res.Failures) > 0 {
			verdict = "FAILED: " + res.Failures[0]
		}
		fmt.Fprintf(w, "%-22s %6d %6d %6d %6d %5d %5d %6d %6d %8s  %s\n",
			res.Scenario, res.FramesSent, res.Poses, res.Merges, res.Reconnects,
			res.Survivors, res.Checks, res.KeyFrames, res.MapPoints,
			res.Elapsed.Round(time.Millisecond), verdict)
		for _, v := range res.Violations {
			fmt.Fprintf(w, "    violation: %s\n", v)
		}
		if !res.OK() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("chaos: %d scenario(s) failed", failed)
	}
	return nil
}
