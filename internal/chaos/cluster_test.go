package chaos

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/cluster"
	"slamshare/internal/dataset"
	"slamshare/internal/offload"
	"slamshare/internal/protocol"
)

// TestMain doubles as the shard and front child entrypoint: SpawnShard
// and SpawnFront re-exec this test binary with SLAMSHARE_PROC set and
// the child's config in the environment, and the child runs a real
// shard server or front router instead of the test suite.
func TestMain(m *testing.M) {
	switch os.Getenv(cluster.EnvProc) {
	case "shard":
		cluster.ShardEnvMain() // never returns
	case "front":
		cluster.FrontEnvMain() // never returns
	}
	os.Exit(m.Run())
}

// TestScenarioThroughClusterFront runs an unmodified single-server
// scenario with every client dialing through a cluster front router
// instead of straight at the server. The harness's Dial hook is the
// only thing that changes — same script, same seeds, same
// expectations — proving chaos scenarios run unchanged against one
// process or a sharded topology.
func TestScenarioThroughClusterFront(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full chaos scenario")
	}
	var sc Scenario
	for _, s := range Scenarios() {
		if s.Name == "staggered-join" {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatal("staggered-join scenario missing from the matrix")
	}
	sc.Name = "staggered-join-through-front"

	// The server address is only known once the harness is listening,
	// so the front is built lazily on the first dial, with the
	// harness's server as the sole shard.
	var (
		mu    sync.Mutex
		front *cluster.Front
		fAddr string
	)
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		if front != nil {
			front.Close()
		}
	})
	sc.Dial = func(addr string) (net.Conn, error) {
		mu.Lock()
		if front == nil {
			f := cluster.NewFront(cluster.FrontConfig{Shards: []string{addr}})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				mu.Unlock()
				return nil, err
			}
			fAddr = ln.Addr().String()
			go f.Serve(ln)
			front = f
		}
		a := fAddr
		mu.Unlock()
		return net.Dial("tcp", a)
	}

	res, err := Run(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	for _, f := range res.Failures {
		t.Errorf("expectation failed: %s", f)
	}
	t.Logf("%s through front: %d frames, %d tracked, %d merges, %d survivors",
		res.Scenario, res.FramesSent, res.Tracked, res.Merges, res.Survivors)
}

// roundBarrier keeps the cluster walkers in lockstep rounds. hook runs
// under the barrier's lock by the last arriver of a round, while every
// other walker is parked between frames — a true quiescent point for
// cluster-wide invariant checks.
type roundBarrier struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
	arr  int
	gen  int
	hook func(round int)
}

func newRoundBarrier(n int, hook func(int)) *roundBarrier {
	b := &roundBarrier{n: n, hook: hook}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *roundBarrier) wait(round int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arr++
	if b.arr >= b.n {
		if b.hook != nil {
			b.hook(round)
		}
		b.arr = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	g := b.gen
	for b.gen == g {
		b.cond.Wait()
	}
}

// leave removes a walker that errored out so the survivors don't wait
// for it forever. The skipped round's check is dropped — the walker's
// recorded error fails the test anyway.
func (b *roundBarrier) leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n--
	if b.n > 0 && b.arr >= b.n {
		b.arr = 0
		b.gen++
		b.cond.Broadcast()
	}
}

// clusterWalker is one scripted device session driven through the
// front in lockstep with the other walkers.
type clusterWalker struct {
	id  uint32
	qos offload.QoS
	seq *dataset.Sequence

	sent             int
	answered         map[uint32]int
	dupes            int
	tracked          int
	trackedAfterKill int
	err              error
}

func (w *clusterWalker) walk(frontAddr string, rounds, stride int, bar *roundBarrier, killed *atomic.Bool) error {
	cl := client.New(w.id, w.seq)
	conn, err := net.Dial("tcp", frontAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	hello := protocol.HelloMsg{
		ClientID: w.id, Mode: w.seq.Rig.Mode,
		HasRig: true, Intr: w.seq.Rig.Intr, Baseline: w.seq.Rig.Baseline,
		HasQoS: true, QoS: byte(w.qos),
	}
	if err := protocol.WriteMessage(conn, protocol.TypeHello, hello.Encode()); err != nil {
		return err
	}
	frame := 0
	for r := 0; r < rounds; r++ {
		msg := cl.BuildFrame(frame)
		frame += stride
		if err := protocol.WriteMessage(conn, protocol.TypeFrame, msg.Encode()); err != nil {
			return fmt.Errorf("round %d: send: %w", r, err)
		}
		w.sent++
		// A frame in flight when its shard is SIGKILLed waits out the
		// respawn, WAL replay and relocalization before its answer
		// arrives; the deadline keeps the tier deterministic, not fast.
		conn.SetReadDeadline(time.Now().Add(120 * time.Second))
		for {
			mt, payload, err := protocol.ReadMessage(conn)
			if err != nil {
				return fmt.Errorf("round %d: read: %w", r, err)
			}
			if mt != protocol.TypePose {
				continue
			}
			pm, err := protocol.DecodePoseMsg(payload)
			if err != nil {
				return fmt.Errorf("round %d: decode pose: %w", r, err)
			}
			w.answered[pm.FrameIdx]++
			if w.answered[pm.FrameIdx] > 1 {
				w.dupes++
			}
			if pm.FrameIdx != msg.FrameIdx {
				continue
			}
			cl.ApplyPose(int(pm.FrameIdx), pm.Pose, pm.Tracked)
			if pm.Tracked && !pm.Shed {
				w.tracked++
				if killed.Load() {
					w.trackedAfterKill++
				}
			}
			break
		}
		bar.wait(r)
	}
	protocol.WriteMessage(conn, protocol.TypeBye, nil)
	return nil
}

// TestClusterShardKill is the cluster-shard-kill chaos scenario: two
// real shard processes behind an in-process front, four mixed-QoS
// sessions, and a SIGKILL landing on shard 1 exactly inside a
// cross-shard merge's crash window (the import-stall failpoint holds
// the WAL-journaled half-merge open). The respawned shard's WAL
// recovery must truncate the unmatched import bracket — rolling the
// half-merge back — the front must abort that handoff attempt and
// commit a later retry, sessions homed on the killed shard must
// relocalize, and the cluster invariants (per-shard map invariants,
// no keyframe owned by two shards, consistent anchors) must hold at
// every quiescent checkpoint. A surviving half-merge would surface as
// a kf-owned-twice violation, since the source shard kept its copy
// when the handoff aborted.
func TestClusterShardKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster chaos is minutes-long")
	}
	const (
		token      = uint64(0xBADC0DE)
		rounds     = 80
		stride     = 4
		checkEvery = 30 // quiescent checkpoints at rounds 30 and 60
	)
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	// Shard 1 gets the import-stall failpoint: its first cross-shard
	// import commits to the WAL and then holds the map lock, giving the
	// killer a 6 s window that SIGKILL is guaranteed to land in.
	dir0, dir1 := t.TempDir(), t.TempDir()
	sh0, err := SpawnShard(ShardSpec{Bin: bin, ID: 0, Token: token, Addr: "127.0.0.1:0", Dir: dir0})
	if err != nil {
		t.Fatal(err)
	}
	defer sh0.Kill()
	sh1, err := SpawnShard(ShardSpec{Bin: bin, ID: 1, Token: token, Addr: "127.0.0.1:0", Dir: dir1, StallMs: 6000})
	if err != nil {
		t.Fatal(err)
	}
	var procMu sync.Mutex
	defer func() {
		procMu.Lock()
		sh1.Kill()
		procMu.Unlock()
	}()
	addrs := []string{sh0.Addr, sh1.Addr}

	part := cluster.Partition{Min: 0, Max: 180, N: 2, Hysteresis: 5}
	front := cluster.NewFront(cluster.FrontConfig{
		Shards: addrs, Token: token, Part: part,
		HandoffCooldown: 300 * time.Millisecond,
	})
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go front.Serve(fln)
	defer front.Close()
	frontAddr := fln.Addr().String()

	// The killer waits for shard 1 to enter the crash window — the
	// ImportsStalled counter is served off atomics, never the map lock,
	// so the probe answers while the import holds gmu — then SIGKILLs
	// it and respawns on the same address with the same WAL directory
	// and no stall, forcing recovery to decide the half-merge's fate.
	killed := &atomic.Bool{}
	killErrCh := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(8 * time.Minute)
		for time.Now().Before(deadline) {
			st, err := cluster.ShardStats(sh1.Addr, token)
			if err == nil && st.ImportsStalled >= 1 {
				procMu.Lock()
				sh1.Kill()
				np, err := SpawnShard(ShardSpec{Bin: bin, ID: 1, Token: token, Addr: sh1.Addr, Dir: dir1})
				if err == nil {
					sh1 = np
				}
				procMu.Unlock()
				killed.Store(true)
				killErrCh <- err
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		killErrCh <- fmt.Errorf("import stall never observed on shard 1")
	}()

	// Quiescent checkpoints: with every walker parked at the barrier,
	// no frame or handoff is in flight. The retry loop absorbs the
	// kill/respawn window if the checkpoint lands inside it.
	var (
		hookMu   sync.Mutex
		hookErrs []string
	)
	hook := func(round int) {
		if round < 0 || (round+1)%checkEvery != 0 || round+1 >= rounds {
			return
		}
		deadline := time.Now().Add(90 * time.Second)
		for {
			rep, err := cluster.CheckCluster(addrs, token)
			if err == nil && rep.OK() {
				return
			}
			if time.Now().After(deadline) {
				hookMu.Lock()
				if err != nil {
					hookErrs = append(hookErrs, fmt.Sprintf("round %d: %v", round+1, err))
				} else {
					hookErrs = append(hookErrs, fmt.Sprintf("round %d: %s", round+1, clusterSummary(rep)))
				}
				hookMu.Unlock()
				return
			}
			time.Sleep(500 * time.Millisecond)
		}
	}

	// Four mixed-QoS sessions in the shared city grid. Client 11
	// crosses the x=90 boundary (~round 38), triggering the cross-shard
	// merge the killer is aimed at; 12 stays on shard 0 as the control;
	// 13 and 14 are homed on shard 1 and must survive its death by
	// redialing through the front and relocalizing against the
	// WAL-recovered map. Routes turn right angles only — a straight
	// U-turn cannot keep visual tracking.
	walkers := []*clusterWalker{
		{id: 11, qos: offload.QoSHeadset,
			seq: HalfRes(dataset.CityRoute("ck-cross", [][2]int{{1, 1}, {3, 1}}, 7, camera.Stereo, 911))},
		{id: 12, qos: offload.QoSHandheld,
			seq: HalfRes(dataset.CityRoute("ck-west", [][2]int{{0, 1}, {1, 1}, {1, 2}}, 7, camera.Stereo, 912))},
		{id: 13, qos: offload.QoSHeadset,
			seq: HalfRes(dataset.CityRoute("ck-east1", [][2]int{{2, 2}, {2, 1}, {3, 1}}, 7, camera.Stereo, 913))},
		{id: 14, qos: offload.QoSDrone,
			seq: HalfRes(dataset.CityRoute("ck-east2", [][2]int{{3, 2}, {3, 1}, {2, 1}}, 7, camera.Stereo, 914))},
	}
	for _, w := range walkers {
		w.answered = make(map[uint32]int)
	}
	bar := newRoundBarrier(len(walkers), hook)
	var wg sync.WaitGroup
	for _, w := range walkers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.walk(frontAddr, rounds, stride, bar, killed); err != nil {
				w.err = err
				bar.leave()
			}
		}()
	}
	wg.Wait()

	for _, w := range walkers {
		if w.err != nil {
			t.Errorf("client %d: %v", w.id, w.err)
		}
	}
	if err := <-killErrCh; err != nil {
		t.Fatalf("shard kill: %v", err)
	}
	if !killed.Load() {
		t.Fatal("shard 1 was never killed")
	}

	// Let the Byes drain so the final check is a true quiescent point.
	drainDeadline := time.Now().Add(30 * time.Second)
	for {
		var n uint64
		ok := true
		for _, a := range addrs {
			st, err := cluster.ShardStats(a, token)
			if err != nil {
				ok = false
				break
			}
			n += st.Sessions
		}
		if ok && n == 0 {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatal("shard sessions did not drain")
		}
		time.Sleep(100 * time.Millisecond)
	}

	hookMu.Lock()
	for _, e := range hookErrs {
		t.Errorf("mid-run invariant check: %s", e)
	}
	hookMu.Unlock()

	rep, err := cluster.CheckCluster(addrs, token)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("final cluster invariants: %s", clusterSummary(rep))
	}
	if len(rep.Shards) > 1 && rep.Shards[1].KeyFrames == 0 {
		t.Error("shard 1 recovered empty — WAL replay lost the map")
	}

	// Delivery contract: every frame answered exactly once, every
	// session tracking; the sessions touching shard 1 (11 crossing
	// into it, 13 and 14 homed on it) must track again after the kill.
	for _, w := range walkers {
		if w.err != nil {
			continue
		}
		if len(w.answered) != w.sent {
			t.Errorf("client %d: %d distinct frames answered, sent %d", w.id, len(w.answered), w.sent)
		}
		if w.dupes > 0 {
			t.Errorf("client %d: %d duplicate answers", w.id, w.dupes)
		}
		if w.tracked == 0 {
			t.Errorf("client %d: never tracked", w.id)
		}
	}
	// Clients 13 and 14 lost their home shard to the SIGKILL: tracking
	// again proves the WAL-recovered map relocalizes returning
	// sessions. (Client 11's post-handoff relocalization on the
	// recovered shard is timing-sensitive under load, so its merge is
	// proven by the committed handoff, shard 1's keyframes and the
	// ownership invariants instead.)
	for _, w := range walkers {
		if w.err == nil && (w.id == 13 || w.id == 14) && w.trackedAfterKill == 0 {
			t.Errorf("client %d: never tracked after the kill", w.id)
		}
	}

	// Handoff log: the kill lands inside client 11's first cross-shard
	// merge, so at least one attempt aborts with a reason, a retry
	// commits against the recovered shard, and epochs stay monotonic.
	var aborted, committed int
	var lastEpoch uint64
	for _, ev := range front.Events() {
		if ev.Client != 11 {
			t.Errorf("handoff event for unexpected client %d", ev.Client)
		}
		if ev.Epoch <= lastEpoch {
			t.Errorf("handoff epoch %d not strictly increasing (prev %d)", ev.Epoch, lastEpoch)
		}
		lastEpoch = ev.Epoch
		if ev.Committed {
			committed++
		} else {
			aborted++
			if ev.Reason == "" {
				t.Error("aborted handoff recorded without a reason")
			}
		}
	}
	if committed < 1 {
		t.Error("boundary crossing never committed a handoff")
	}
	if aborted < 1 {
		t.Error("the mid-merge kill should have aborted at least one handoff attempt")
	}
	t.Logf("handoffs: %d committed, %d aborted; trackedAfterKill: 11=%d 13=%d 14=%d",
		committed, aborted,
		walkers[0].trackedAfterKill, walkers[2].trackedAfterKill, walkers[3].trackedAfterKill)
}

func clusterSummary(rep *cluster.ClusterReport) string {
	s := rep.Summary()
	for _, v := range rep.Violations {
		s += "\n  cross-shard: " + v
	}
	for _, sh := range rep.Shards {
		for _, v := range sh.Violations {
			s += fmt.Sprintf("\n  shard %d: %s", sh.ID, v)
		}
	}
	return s
}
