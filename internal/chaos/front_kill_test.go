package chaos

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/cluster"
	"slamshare/internal/dataset"
	"slamshare/internal/obs"
	"slamshare/internal/offload"
	"slamshare/internal/overload"
	"slamshare/internal/protocol"
)

// scrapeFrontVars fetches a front child's /debug/vars snapshot.
func scrapeFrontVars(debugAddr string) (*obs.RegistrySnapshot, error) {
	resp, err := http.Get("http://" + debugAddr + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// resumableWalker is one CapResume device session driven through the
// replicated fronts in lockstep with the other walkers.
type resumableWalker struct {
	id    uint32
	qos   offload.QoS
	caps  offload.Caps
	split bool
	seq   *dataset.Sequence

	cl               *client.Client
	rounds           int
	tracked          int
	trackedAfterKill int
	err              error
}

// TestClusterFrontKill is the front-failover chaos scenario: two real
// shard processes, two real front processes sharing the shard table,
// four mixed-QoS resumable sessions — one crossing the shard boundary
// (its handoff held open by front 0's HandoffStall failpoint), one
// pinned to split mode — and a SIGKILL landing on front 0 exactly
// inside the stalled handoff, with every other session mid-stream.
// All sessions must resume on the surviving front by presenting their
// session tokens: every frame answered exactly once, token epochs
// never regressing (the begun-but-dead handoff epoch is not reused —
// the survivor learns it from the shard-side resume probe), tracking
// continuing after the kill, and the cluster invariants clean at the
// end.
func TestClusterFrontKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster chaos is minutes-long")
	}
	const (
		token  = uint64(0xF00DF00D)
		rounds = 60
		stride = 4
	)
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	sh0, err := SpawnShard(ShardSpec{Bin: bin, ID: 0, Token: token, Addr: "127.0.0.1:0", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sh0.Kill()
	sh1, err := SpawnShard(ShardSpec{Bin: bin, ID: 1, Token: token, Addr: "127.0.0.1:0", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sh1.Kill()
	shardAddrs := []string{sh0.Addr, sh1.Addr}

	// Front 0 carries the mid-handoff failpoint: every handoff it runs
	// is held open for 20 s between the source's boundary export and
	// the offer to the target — the killer is aimed into that window.
	// Front 1 is the survivor, identically configured minus the stall.
	fr0, err := SpawnFront(FrontSpec{
		Bin: bin, ID: 100, Token: token, Addr: "127.0.0.1:0",
		Shards: shardAddrs, PartMin: 0, PartMax: 180, PartHysteresis: 5,
		HandoffStallMs: 20000, Debug: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fr0.Kill()
	fr1, err := SpawnFront(FrontSpec{
		Bin: bin, ID: 101, Token: token, Addr: "127.0.0.1:0",
		Shards: shardAddrs, PartMin: 0, PartMax: 180, PartHysteresis: 5,
		Debug: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fr1.Kill()
	frontAddrs := []string{fr0.Addr, fr1.Addr}

	// The killer waits for front 0 to enter a handoff's stall window
	// (the handoff_stalls gauge is bumped before the sleep), then
	// SIGKILLs it — mid-handoff for the crossing session, mid-stream
	// for everyone else. Front 0 is never respawned: resuming must not
	// depend on the dead replica coming back.
	killed := &atomic.Bool{}
	killErrCh := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(8 * time.Minute)
		for time.Now().Before(deadline) {
			snap, err := scrapeFrontVars(fr0.DebugAddr)
			if err == nil && snap.Counters["front.handoff_stalls"] >= 1 {
				fr0.Kill()
				killed.Store(true)
				killErrCh <- nil
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		killErrCh <- fmt.Errorf("front 0 never entered a handoff stall")
	}()

	// Four mixed-QoS sessions. Client 21 crosses the x=90 boundary,
	// triggering the stalled handoff the killer fires into; 22 stays on
	// shard 0; 23 is pinned to split mode (keypoint uplinks only) on
	// shard 1; 24 is a plain full-mode session on shard 1.
	walkers := []*resumableWalker{
		{id: 21, qos: offload.QoSHeadset,
			seq: HalfRes(dataset.CityRoute("fk-cross", [][2]int{{1, 1}, {3, 1}}, 7, camera.Stereo, 921))},
		{id: 22, qos: offload.QoSHandheld,
			seq: HalfRes(dataset.CityRoute("fk-west", [][2]int{{0, 1}, {1, 1}, {1, 2}}, 7, camera.Stereo, 922))},
		{id: 23, qos: offload.QoSDrone, caps: offload.CapSplit, split: true,
			seq: HalfRes(dataset.CityRoute("fk-east1", [][2]int{{2, 2}, {2, 1}, {3, 1}}, 7, camera.Stereo, 923))},
		{id: 24, qos: offload.QoSHeadset,
			seq: HalfRes(dataset.CityRoute("fk-east2", [][2]int{{3, 2}, {3, 1}, {2, 1}}, 7, camera.Stereo, 924))},
	}
	frames := make([]int, rounds)
	for i := range frames {
		frames[i] = i * stride
	}
	bar := newRoundBarrier(len(walkers), nil)
	var wg sync.WaitGroup
	for _, w := range walkers {
		w := w
		w.cl = client.New(w.id, w.seq)
		w.cl.EnableAdaptive(w.qos, w.caps)
		if w.split {
			w.cl.ForceMode(offload.ModeSplit)
		}
		w.cl.OnAnswer = func(_ uint32, tracked, shed bool) {
			if tracked && !shed {
				w.tracked++
				if killed.Load() {
					w.trackedAfterKill++
				}
			}
			bar.wait(w.rounds)
			w.rounds++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			pol := overload.Backoff{Base: 50, Factor: 2, Max: 1000, Jitter: 0.2, Seed: int64(w.id)}
			if err := w.cl.RunTCPResumable(frontAddrs, frames, pol); err != nil {
				w.err = err
				bar.leave()
			}
		}()
	}
	wg.Wait()

	for _, w := range walkers {
		if w.err != nil {
			t.Errorf("client %d: %v", w.id, w.err)
		}
	}
	if err := <-killErrCh; err != nil {
		t.Fatalf("front kill: %v", err)
	}

	// Delivery contract: every frame answered exactly once on the live
	// socket (a resumable client only resends frames it has no answer
	// for), and the stationary full-mode sessions keep tracking after
	// the kill. (The crossing session's post-handoff relocalization on
	// shard 1 is timing-sensitive under load — as in TestClusterShardKill
	// — so its failover is proven by the epoch/adoption assertions below
	// and its unbroken exactly-once stream; likewise the split session.)
	for _, w := range walkers {
		if w.err != nil {
			continue
		}
		counts := w.cl.AnswerCounts()
		if len(counts) != rounds {
			t.Errorf("client %d: %d distinct frames answered, sent %d", w.id, len(counts), rounds)
		}
		for idx, n := range counts {
			if n != 1 {
				t.Errorf("client %d: frame %d answered %d times", w.id, idx, n)
			}
		}
		if (w.id == 22 || w.id == 24) && w.trackedAfterKill == 0 {
			t.Errorf("client %d: never tracked after the front kill", w.id)
		}
	}

	// Token log: epochs never regress across the failover, and the
	// crossing session's final epoch must exceed the epoch the dead
	// front burned on its stranded handoff (epoch 1) — proof the
	// survivor learned it from the shard-side probe and did not reuse
	// it.
	for _, w := range walkers {
		if w.err != nil {
			continue
		}
		toks := w.cl.SessionTokens()
		if len(toks) == 0 {
			t.Errorf("client %d: no session tokens observed", w.id)
			continue
		}
		for i := 1; i < len(toks); i++ {
			if toks[i].Epoch < toks[i-1].Epoch {
				t.Errorf("client %d: token epoch regressed %d -> %d",
					w.id, toks[i-1].Epoch, toks[i].Epoch)
			}
		}
		if w.id == 21 && toks[len(toks)-1].Epoch < 2 {
			t.Errorf("client 21: final token epoch %d, want >= 2 (stranded handoff epoch reused?)",
				toks[len(toks)-1].Epoch)
		}
		if w.split && toks[len(toks)-1].Shard != 1 {
			t.Errorf("client %d: split session token on shard %d, want 1",
				w.id, toks[len(toks)-1].Shard)
		}
	}

	// Adoption accounting on the survivor: all four sessions presented
	// tokens after the kill, every probe succeeded.
	snap, err := scrapeFrontVars(fr1.DebugAddr)
	if err != nil {
		t.Fatalf("scrape survivor: %v", err)
	}
	if got := snap.Counters["front.sessions_adopted"]; got < int64(len(walkers)) {
		t.Errorf("survivor adopted %d sessions, want >= %d", got, len(walkers))
	}
	if got := snap.Counters["front.resume_failures"]; got != 0 {
		t.Errorf("survivor recorded %d resume failures, want 0", got)
	}

	// Let the shard-side sessions drain, then check the cluster.
	drainDeadline := time.Now().Add(30 * time.Second)
	for {
		var n uint64
		ok := true
		for _, a := range shardAddrs {
			st, err := cluster.ShardStats(a, token)
			if err != nil {
				ok = false
				break
			}
			n += st.Sessions
		}
		if ok && n == 0 {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatal("shard sessions did not drain")
		}
		time.Sleep(100 * time.Millisecond)
	}
	rep, err := cluster.CheckCluster(shardAddrs, token)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("final cluster invariants: %s", clusterSummary(rep))
	}
	t.Logf("front failover: adopted=%d trackedAfterKill: 21=%d 22=%d 24=%d",
		snap.Counters["front.sessions_adopted"],
		walkers[0].trackedAfterKill, walkers[1].trackedAfterKill, walkers[3].trackedAfterKill)
}

// TestLegacyClientFrontKill proves the failover path degrades cleanly
// for a client that never advertised CapResume: when its front dies it
// redials the survivor with a plain hello — no token, no adoption —
// gets a fresh session that relocalizes against the shard's map, and
// never sees a duplicate answer or a token tail it cannot parse.
func TestLegacyClientFrontKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos")
	}
	const (
		token     = uint64(0xFEEDFACE)
		rounds    = 24
		stride    = 4
		killRound = 8
	)
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := SpawnShard(ShardSpec{Bin: bin, ID: 0, Token: token, Addr: "127.0.0.1:0", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Kill()
	spec := FrontSpec{
		Bin: bin, Token: token, Addr: "127.0.0.1:0",
		Shards: []string{sh.Addr}, PartMin: 0, PartMax: 240,
	}
	spec.ID = 100
	fr0, err := SpawnFront(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer fr0.Kill()
	spec.ID = 101
	fr1, err := SpawnFront(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer fr1.Kill()
	addrs := []string{fr0.Addr, fr1.Addr}

	seq := HalfRes(dataset.CityRoute("fk-legacy", [][2]int{{0, 1}, {1, 1}, {1, 2}}, 7, camera.Stereo, 931))
	cl := client.New(31, seq)
	hello := protocol.HelloMsg{
		ClientID: 31, Mode: seq.Rig.Mode,
		HasRig: true, Intr: seq.Rig.Intr, Baseline: seq.Rig.Baseline,
	}
	next := 0
	var conn net.Conn
	connect := func() error {
		if conn != nil {
			conn.Close()
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			c, err := net.DialTimeout("tcp", addrs[next%len(addrs)], 2*time.Second)
			next++
			if err == nil {
				if err = protocol.WriteMessage(c, protocol.TypeHello, hello.Encode()); err == nil {
					conn = c
					cl.Reconnect() // fresh front transcoder: restart intra
					return nil
				}
				c.Close()
			}
			if time.Now().After(deadline) {
				return err
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	if err := connect(); err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	answered := make(map[uint32]int)
	trackedAfterKill := 0
	for r := 0; r < rounds; r++ {
		msg := cl.BuildFrame(r * stride)
		err := protocol.WriteMessage(conn, protocol.TypeFrame, msg.Encode())
		if r == killRound {
			// Mid-frame kill: the frame is on the wire (or in the dead
			// front's buffers) when the SIGKILL lands; the read loop below
			// notices and redials the survivor.
			fr0.Kill()
		} else if err != nil {
			if err := connect(); err != nil {
				t.Fatalf("round %d: reconnect: %v", r, err)
			}
			cl.ReencodeFrame(msg, r*stride)
			if err := protocol.WriteMessage(conn, protocol.TypeFrame, msg.Encode()); err != nil {
				t.Fatalf("round %d: resend: %v", r, err)
			}
		}
		conn.SetReadDeadline(time.Now().Add(120 * time.Second))
		for {
			mt, payload, err := protocol.ReadMessage(conn)
			if err != nil {
				// The front died (or its sockets did): redial the list and
				// resend the unanswered frame into the fresh session.
				if cerr := connect(); cerr != nil {
					t.Fatalf("round %d: reconnect: %v (after %v)", r, cerr, err)
				}
				cl.ReencodeFrame(msg, r*stride)
				if err := protocol.WriteMessage(conn, protocol.TypeFrame, msg.Encode()); err != nil {
					t.Fatalf("round %d: resend: %v", r, err)
				}
				conn.SetReadDeadline(time.Now().Add(120 * time.Second))
				continue
			}
			if mt != protocol.TypePose {
				continue
			}
			pm, err := protocol.DecodePoseMsg(payload)
			if err != nil {
				t.Fatalf("round %d: decode pose: %v", r, err)
			}
			if pm.Token != nil {
				t.Errorf("round %d: legacy session received a token tail", r)
			}
			answered[pm.FrameIdx]++
			if pm.FrameIdx != msg.FrameIdx {
				continue
			}
			cl.ApplyPose(int(pm.FrameIdx), pm.Pose, pm.Tracked)
			if pm.Tracked && !pm.Shed && r > killRound {
				trackedAfterKill++
			}
			break
		}
	}
	protocol.WriteMessage(conn, protocol.TypeBye, nil)

	if len(answered) != rounds {
		t.Errorf("%d distinct frames answered, sent %d", len(answered), rounds)
	}
	for idx, n := range answered {
		if n != 1 {
			t.Errorf("frame %d answered %d times", idx, n)
		}
	}
	if trackedAfterKill == 0 {
		t.Error("legacy session never tracked after the front kill")
	}
	rep, err := cluster.CheckCluster([]string{sh.Addr}, token)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("final cluster invariants: %s", clusterSummary(rep))
	}
}

// TestFrontShardSlowRestart proves the front's dead-on-arrival
// cooldown policy: a shard that is killed and respawned with a slow
// start (the listener is up but every accepted connection dies for 5 s
// — a WAL replay stand-in) must not cost the session its front
// attachment. The old fixed strike limit dropped the session after ~20
// dead connections; the cooldown-then-retry policy keeps backing off
// until the redial budget, so the session resumes once the shard
// finishes starting.
func TestFrontShardSlowRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos")
	}
	const (
		token  = uint64(0xCAFE)
		rounds = 10
		stride = 4
	)
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sh, err := SpawnShard(ShardSpec{Bin: bin, ID: 0, Token: token, Addr: "127.0.0.1:0", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { sh.Kill() }()

	front := cluster.NewFront(cluster.FrontConfig{
		Shards: []string{sh.Addr}, Token: token,
		RedialBudget: 60 * time.Second,
	})
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go front.Serve(fln)
	defer front.Close()

	seq := HalfRes(dataset.CityRoute("fk-slow", [][2]int{{0, 1}, {1, 1}, {1, 2}}, 7, camera.Stereo, 941))
	w := &clusterWalker{id: 41, qos: offload.QoSHeadset, seq: seq, answered: make(map[uint32]int)}
	killed := &atomic.Bool{}
	bar := newRoundBarrier(1, func(round int) {
		if round != 2 {
			return
		}
		// Kill between rounds and respawn on the same address with the
		// slow-start window: every front redial inside it accepts and
		// immediately dies, exactly the dead-on-arrival pattern that
		// used to exhaust the strike limit.
		sh.Kill()
		np, err := SpawnShard(ShardSpec{
			Bin: bin, ID: 0, Token: token, Addr: sh.Addr, Dir: dir, StartDelayMs: 5000,
		})
		if err != nil {
			t.Errorf("respawn: %v", err)
			return
		}
		sh = np
		killed.Store(true)
	})
	if err := w.walk(fln.Addr().String(), rounds, stride, bar, killed); err != nil {
		t.Fatalf("walker: %v", err)
	}
	if len(w.answered) != rounds {
		t.Errorf("%d distinct frames answered, sent %d", len(w.answered), rounds)
	}
	for idx, n := range w.answered {
		if n > 1 {
			t.Errorf("frame %d answered %d times", idx, n)
		}
	}
	if w.trackedAfterKill == 0 {
		t.Error("session never tracked after the slow shard restart")
	}
	if !killed.Load() {
		t.Fatal("shard was never restarted")
	}
}
