package chaos

import (
	"fmt"
	"net"
	"os"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/lifecycle"
	"slamshare/internal/netem"
	"slamshare/internal/persist"
	"slamshare/internal/protocol"
	"slamshare/internal/server"
	"slamshare/internal/smap"
)

// ClientScript scripts one client's behaviour across a scenario's
// rounds. All events are keyed to round numbers, never wall-clock, so
// a scenario replays identically from its seed. The zero round value
// disables an event (round 0 events are therefore not expressible,
// which no scenario needs — clients join at 0 via JoinRound's zero).
type ClientScript struct {
	ID uint32
	// SeqName picks the dataset sequence (resolved at half resolution);
	// empty defaults to MH04 for odd IDs and MH05 for even ones, both
	// in the shared machine-hall world so maps can merge.
	SeqName string
	// Seq supplies a generated sequence directly (e.g. a city-grid
	// route), overriding SeqName. The harness still halves its
	// resolution.
	Seq *dataset.Sequence
	// JoinRound is the round this client first connects.
	JoinRound int
	// CrashAt hard-cuts the link at that round: the client goes away
	// without a Bye, mid-stream.
	CrashAt int
	// ReconnectAt rejoins with the same ID after a crash/drop; the
	// server resumes the session by relocalization on the global map.
	ReconnectAt int
	// AutoReconnect rejoins one round after any link death (used with
	// probabilistic faults and server kills, where the death round is
	// not scripted).
	AutoReconnect bool
	// CorruptAt sends an undecodable frame payload at that round; the
	// server must reject it and drop the connection.
	CorruptAt int
	// DupHelloAt sends a second hello at that round; the server must
	// drop the connection without leaking the session.
	DupHelloAt int
	// FreezeAt/ThawAt bracket a link partition: writes stall, the
	// client misses the rounds in between, then resumes on the same
	// connection.
	FreezeAt int
	ThawAt   int
	// Fault seeds probabilistic link faults (resets, stalls, reorder).
	Fault netem.FaultConfig
	// Shape is the netem shaping discipline for the link.
	Shape netem.Config
}

// Expect is a scenario's pass criteria beyond zero invariant
// violations.
type Expect struct {
	// Survivors is the exact number of clients alive at scenario end.
	Survivors int
	// MinMerges is the minimum successful merges (founding insert
	// included) across server lifetimes.
	MinMerges int
	// MinReconnects is the minimum client rejoin count.
	MinReconnects int
	// MinCulled / MinEvictions are floors on the lifecycle manager's
	// work across server lifetimes (scenarios with a map budget).
	MinCulled    int64
	MinEvictions int64
	// ResumedTracking requires at least one reconnected client to get
	// a tracked pose after resuming (relocalization worked).
	ResumedTracking bool
	// Counter floors, asserted against the server's NetStats.
	MinDupHello       int64
	MinBadHello       int64
	MinFramesRejected int64
	MinDropped        int64
}

// Scenario is one deterministic chaos run.
type Scenario struct {
	Name string
	// Seed drives every RNG in the scenario (link faults per client are
	// derived from it).
	Seed int64
	// Rounds is the number of lockstep send/reply rounds.
	Rounds int
	// Stride is the dataset frame step per round (larger = more motion
	// per round = faster map growth).
	Stride int
	// KillServerAt kills the server at that round and recovers it from
	// checkpoint + WAL (persistence is enabled iff non-zero).
	KillServerAt int
	// CheckEvery audits map invariants every k rounds (the final audit
	// always runs).
	CheckEvery int
	// Lifecycle bounds the resident map (zero disables). Its Dir
	// defaults to the scenario's persist dir inside the server.
	Lifecycle lifecycle.Config
	// Urban applies the vehicular tracking profile city-grid routes
	// need: a wider keyframe-insertion window and a lower lost line, so
	// fast forward motion cannot decay straight past both thresholds.
	Urban   bool
	Clients []ClientScript
	Expect  Expect
	// Dial overrides how clients reach the server under test; it
	// receives the in-process server's address. nil means a direct TCP
	// dial. Cluster tests point it at a front router (with the server
	// as the routed shard) so scenarios run unchanged against one
	// process or a sharded topology.
	Dial func(addr string) (net.Conn, error)
}

// Result summarizes one scenario run.
type Result struct {
	Scenario   string
	Rounds     int
	FramesSent int
	Poses      int // pose replies applied
	Tracked    int // replies with tracking OK
	Merges     int
	Reconnects int
	Survivors  int
	Checks     int // invariant audits run
	Violations []smap.Violation
	KeyFrames  int
	MapPoints  int
	DupHello   int64
	BadHello   int64
	FramesRej  int64
	Dropped    int64
	Culled     int64 // lifecycle: keyframes culled
	Evicted    int64 // lifecycle: regions evicted
	Reloaded   int64 // lifecycle: regions reloaded
	Elapsed    time.Duration
	// Failures lists expectation mismatches (empty = scenario passed).
	Failures []string
}

// OK reports whether the scenario met every expectation with zero
// invariant violations.
func (r *Result) OK() bool { return len(r.Violations) == 0 && len(r.Failures) == 0 }

// runtime state for one scripted client.
type rclient struct {
	sc  *ClientScript
	cl  *client.Client
	seq *dataset.Sequence

	conn net.Conn
	fc   *netem.FaultConn

	joined  bool
	dead    bool
	diedAt  int
	gen     int // connection generation (seeds fault RNG per life)
	frozen  bool
	busy    chan struct{} // non-nil while a send is in flight
	frame   int           // next dataset frame index
	sent    int
	poses   int
	tracked int
	// afterRejoin counts tracked poses received on a resumed session.
	afterRejoin int
	reconnects  int
}

type harness struct {
	sc   Scenario
	cfg  server.Config
	srv  *server.Server
	lis  net.Listener
	addr string

	clients []*rclient
	merges  int // accumulated across server lifetimes
	res     *Result
}

// serverConfig is the chaos pipeline tuning: half-resolution frames
// need looser merge gates, and churn scenarios need the map to grow in
// tens of rounds, not hundreds.
func serverConfig(sc Scenario, persistDir string) server.Config {
	cfg := server.DefaultConfig()
	cfg.MergeAfterKFs = 4
	cfg.TrackCfg.KFMinInterval = 2
	cfg.TrackCfg.MinInliers = 12
	cfg.MergeCfg.MinMatches = 12
	cfg.MergeCfg.InlierTol = 0.5
	cfg.MergeCfg.MaxRMSE = 0.3
	cfg.Lifecycle = sc.Lifecycle
	if sc.Urban {
		cfg.TrackCfg.KFTrackedRatio = 0.85
		cfg.TrackCfg.MinInliers = 10
	}
	if sc.KillServerAt > 0 {
		// Journal-only persistence: recovery replays the WAL from the
		// last (absent) checkpoint, the hardest recovery path.
		cfg.Persist = persist.Options{Dir: persistDir, CheckpointEvery: -1}
	}
	return cfg
}

// Run executes one scenario. persistDir backs the WAL for scenarios
// that kill and recover the server (ignored otherwise).
func Run(sc Scenario, persistDir string) (*Result, error) {
	start := time.Now()
	if sc.KillServerAt > 0 {
		if err := os.MkdirAll(persistDir, 0o755); err != nil {
			return nil, err
		}
	}
	h := &harness{
		sc:  sc,
		cfg: serverConfig(sc, persistDir),
		res: &Result{Scenario: sc.Name, Rounds: sc.Rounds},
	}
	srv, err := server.New(h.cfg)
	if err != nil {
		return nil, err
	}
	h.srv = srv
	defer func() { h.srv.Close() }()
	if err := h.listen(); err != nil {
		return nil, err
	}
	defer func() { h.lis.Close() }()

	for i := range sc.Clients {
		cs := &sc.Clients[i]
		name := cs.SeqName
		if name == "" {
			if cs.ID%2 == 1 {
				name = "MH04"
			} else {
				name = "MH05"
			}
		}
		seq := cs.Seq
		if seq == nil {
			var err error
			seq, err = dataset.ByName(name, camera.Stereo)
			if err != nil {
				return nil, err
			}
		}
		seq = HalfRes(seq)
		h.clients = append(h.clients, &rclient{
			sc:  cs,
			cl:  client.New(cs.ID, seq),
			seq: seq,
		})
	}

	for r := 0; r < sc.Rounds; r++ {
		if err := h.events(r); err != nil {
			return nil, err
		}
		h.sendRound(r)
		if sc.CheckEvery > 0 && (r+1)%sc.CheckEvery == 0 && r != sc.Rounds-1 {
			h.check()
		}
	}
	h.finish()
	h.res.Elapsed = time.Since(start)
	h.assess()
	return h.res, nil
}

// dialServer opens one client link to whatever fronts the server —
// the server itself by default, or the scenario's Dial override.
func (h *harness) dialServer() (net.Conn, error) {
	if h.sc.Dial != nil {
		return h.sc.Dial(h.addr)
	}
	return net.Dial("tcp", h.addr)
}

func (h *harness) listen() error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	h.lis = l
	h.addr = l.Addr().String()
	go h.srv.Serve(l)
	return nil
}

// events applies the scripted round-r events in deterministic order:
// server kill/recovery first, then per-client partitions, crashes and
// (re)joins.
func (h *harness) events(r int) error {
	if h.sc.KillServerAt > 0 && r == h.sc.KillServerAt {
		if err := h.killAndRecoverServer(r); err != nil {
			return err
		}
	}
	for _, rc := range h.clients {
		if rc.frozen && rc.busy != nil && rc.sc.ThawAt == r {
			rc.fc.Thaw()
			rc.frozen = false
			<-rc.busy // the stalled send completes deterministically now
			rc.busy = nil
		}
		// The round barrier guarantees busy == nil here for un-frozen
		// clients, so crash/freeze never race a send goroutine.
		if rc.joined && !rc.dead && rc.busy == nil && rc.sc.FreezeAt > 0 && r == rc.sc.FreezeAt {
			rc.fc.Freeze()
			rc.frozen = true
		}
		if rc.joined && !rc.dead && rc.busy == nil && rc.sc.CrashAt > 0 && r == rc.sc.CrashAt {
			rc.fc.Cut()
			rc.markDead(r)
		}
		join := false
		switch {
		case !rc.joined && r >= rc.sc.JoinRound:
			join = true
		case rc.dead && rc.sc.ReconnectAt > 0 && r == rc.sc.ReconnectAt:
			join = true
		case rc.dead && rc.sc.AutoReconnect && r > rc.diedAt:
			join = true
		}
		if join {
			if err := h.join(rc); err != nil {
				return fmt.Errorf("%s: client %d join at round %d: %w", h.sc.Name, rc.sc.ID, r, err)
			}
		}
	}
	return nil
}

func (rc *rclient) markDead(r int) {
	rc.dead = true
	rc.diedAt = r
	rc.frozen = false
	if rc.conn != nil {
		rc.conn.Close()
	}
}

// join dials, wraps the link with the scripted shaping + faults, and
// sends the hello (with the half-resolution rig calibration). Rejoins
// first wait for the server to have reaped the previous session, so
// the same client ID is accepted deterministically.
func (h *harness) join(rc *rclient) error {
	if rc.joined {
		if err := h.waitSessions(h.aliveSessions()); err != nil {
			return err
		}
	}
	raw, err := h.dialServer()
	if err != nil {
		return err
	}
	var inner net.Conn = raw
	if rc.sc.Shape != (netem.Config{}) {
		inner = netem.Wrap(raw, rc.sc.Shape)
	}
	fault := rc.sc.Fault
	fault.Seed = h.sc.Seed*1_000_003 + int64(rc.sc.ID)*8191 + int64(rc.gen)
	rc.fc = netem.WrapFault(inner, fault)
	rc.conn = rc.fc
	rc.gen++
	if rc.joined {
		rc.cl.Reconnect() // restart the video stream with an intra frame
		rc.reconnects++
	}
	hello := protocol.HelloMsg{
		ClientID: rc.sc.ID,
		Mode:     rc.seq.Rig.Mode,
		HasRig:   true,
		Intr:     rc.seq.Rig.Intr,
		Baseline: rc.seq.Rig.Baseline,
	}
	if err := protocol.WriteMessage(rc.conn, protocol.TypeHello, hello.Encode()); err != nil {
		return err
	}
	rc.joined = true
	rc.dead = false
	return nil
}

// sendRound runs the send/reply phase: every live, unblocked client
// concurrently sends its next frame and waits for the pose answer. A
// frozen client's send keeps blocking in the background; the round
// barrier skips it until the scripted thaw.
func (h *harness) sendRound(r int) {
	var launched []*rclient
	for _, rc := range h.clients {
		if !rc.joined || rc.dead || rc.busy != nil {
			continue
		}
		rc.busy = make(chan struct{})
		launched = append(launched, rc)
		go h.sendOne(rc, r)
	}
	for _, rc := range launched {
		if rc.frozen {
			continue // barrier excludes partitioned clients
		}
		<-rc.busy
		rc.busy = nil
	}
}

// garbageFrame is an undecodable TypeFrame payload (shorter than the
// fixed header DecodeFrameMsg requires).
var garbageFrame = []byte("this is not a frame message, reject me")

func (h *harness) sendOne(rc *rclient, r int) {
	defer close(rc.busy)
	switch {
	case rc.sc.CorruptAt > 0 && r == rc.sc.CorruptAt:
		// Corrupt stream: the server must reject the payload and drop
		// the connection; we observe the close on the read side.
		protocol.WriteMessage(rc.conn, protocol.TypeFrame, garbageFrame)
		h.expectDrop(rc, r)
		return
	case rc.sc.DupHelloAt > 0 && r == rc.sc.DupHelloAt:
		hello := protocol.HelloMsg{ClientID: rc.sc.ID, Mode: rc.seq.Rig.Mode}
		protocol.WriteMessage(rc.conn, protocol.TypeHello, hello.Encode())
		h.expectDrop(rc, r)
		return
	}
	msg := rc.cl.BuildFrame(rc.frame)
	rc.frame += h.sc.Stride
	if err := protocol.WriteMessage(rc.conn, protocol.TypeFrame, msg.Encode()); err != nil {
		rc.markDead(r)
		return
	}
	rc.sent++
	rc.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	for {
		mt, payload, err := protocol.ReadMessage(rc.conn)
		if err != nil {
			rc.markDead(r)
			return
		}
		if mt != protocol.TypePose {
			continue
		}
		pm, err := protocol.DecodePoseMsg(payload)
		if err != nil {
			rc.markDead(r)
			return
		}
		if pm.FrameIdx != msg.FrameIdx {
			continue
		}
		rc.cl.ApplyPose(int(pm.FrameIdx), pm.Pose, pm.Tracked)
		rc.poses++
		if pm.Tracked {
			rc.tracked++
			if rc.reconnects > 0 {
				rc.afterRejoin++
			}
		}
		return
	}
}

// expectDrop reads until the server closes the connection (it must,
// for both corrupt frames and duplicate hellos), then marks the client
// dead.
func (h *harness) expectDrop(rc *rclient, r int) {
	rc.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	for {
		if _, _, err := protocol.ReadMessage(rc.conn); err != nil {
			break
		}
	}
	rc.markDead(r)
}

// killAndRecoverServer emulates a server crash mid-run: every link
// dies, the process state is discarded, and a fresh server recovers
// the global map from the WAL. Clients come back via AutoReconnect and
// resume by relocalization.
func (h *harness) killAndRecoverServer(r int) error {
	h.merges += len(h.srv.MergeReports())
	for _, rc := range h.clients {
		if rc.joined && !rc.dead {
			if rc.frozen {
				rc.fc.Thaw()
				rc.frozen = false
			}
			if rc.busy != nil {
				<-rc.busy
				rc.busy = nil
			}
			rc.markDead(r)
		}
	}
	h.lis.Close()
	if err := h.waitSessions(0); err != nil {
		return err
	}
	h.snapshotNet() // bank the dying server's counters before discard
	h.srv.Close()   // flushes the journal; no final checkpoint
	srv, err := server.New(h.cfg)
	if err != nil {
		return err
	}
	h.srv = srv
	return h.listen()
}

// snapshotNet accumulates the current server's counters into the
// result (called once per server lifetime).
func (h *harness) snapshotNet() {
	ns := h.srv.NetStats()
	h.res.DupHello += ns.DupHello.Load()
	h.res.BadHello += ns.BadHello.Load()
	h.res.FramesRej += ns.FramesRejected.Load()
	h.res.Dropped += ns.SessionsDropped.Load()
	if lm := h.srv.Lifecycle(); lm != nil {
		st := lm.Stats()
		h.res.Culled += st.CulledKeyFrames.Load()
		h.res.Evicted += st.EvictedRegions.Load()
		h.res.Reloaded += st.ReloadedRegions.Load()
	}
}

// aliveSessions counts the clients whose server session should exist.
func (h *harness) aliveSessions() int {
	n := 0
	for _, rc := range h.clients {
		if rc.joined && !rc.dead {
			n++
		}
	}
	return n
}

// waitSessions polls until the server session count drops to want
// (session teardown is asynchronous with connection death).
func (h *harness) waitSessions(want int) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if h.srv.NSessions() <= want {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("chaos: %d sessions still open, want <= %d", h.srv.NSessions(), want)
}

// check audits the global map at a quiescent point: the round barrier
// guarantees no frames are in flight, and waitSessions that no
// serveConn is mid-teardown.
func (h *harness) check() {
	if err := h.waitSessions(h.aliveSessions()); err != nil {
		h.res.Failures = append(h.res.Failures, err.Error())
		return
	}
	rep := smap.CheckInvariants(h.srv.Global())
	h.res.Checks++
	h.res.Violations = append(h.res.Violations, rep.Violations...)
}

// finish closes every surviving client cleanly, runs the final audit,
// and fills the result.
func (h *harness) finish() {
	survivors := 0
	for _, rc := range h.clients {
		if rc.frozen {
			rc.fc.Thaw()
			rc.frozen = false
		}
		if rc.busy != nil {
			<-rc.busy
			rc.busy = nil
		}
		if rc.joined && !rc.dead {
			survivors++
			protocol.WriteMessage(rc.conn, protocol.TypeBye, nil)
			rc.conn.Close()
		}
		h.res.FramesSent += rc.sent
		h.res.Poses += rc.poses
		h.res.Tracked += rc.tracked
		h.res.Reconnects += rc.reconnects
	}
	h.res.Survivors = survivors
	if err := h.waitSessions(0); err != nil {
		h.res.Failures = append(h.res.Failures, err.Error())
	}
	rep := smap.CheckInvariants(h.srv.Global())
	h.res.Checks++
	h.res.Violations = append(h.res.Violations, rep.Violations...)
	h.res.KeyFrames = rep.KeyFrames
	h.res.MapPoints = rep.MapPoints
	h.res.Merges = h.merges + len(h.srv.MergeReports())
	h.snapshotNet()
}

// assess compares the result against the scenario's expectations.
func (h *harness) assess() {
	e := h.sc.Expect
	fail := func(format string, args ...any) {
		h.res.Failures = append(h.res.Failures, fmt.Sprintf(format, args...))
	}
	if h.res.Survivors != e.Survivors {
		fail("survivors = %d, want %d", h.res.Survivors, e.Survivors)
	}
	if h.res.Merges < e.MinMerges {
		fail("merges = %d, want >= %d", h.res.Merges, e.MinMerges)
	}
	if h.res.Reconnects < e.MinReconnects {
		fail("reconnects = %d, want >= %d", h.res.Reconnects, e.MinReconnects)
	}
	if e.ResumedTracking {
		resumed := false
		for _, rc := range h.clients {
			if rc.afterRejoin > 0 {
				resumed = true
			}
		}
		if !resumed {
			fail("no reconnected client regained tracking")
		}
	}
	if h.res.DupHello < e.MinDupHello {
		fail("DupHello = %d, want >= %d", h.res.DupHello, e.MinDupHello)
	}
	if h.res.BadHello < e.MinBadHello {
		fail("BadHello = %d, want >= %d", h.res.BadHello, e.MinBadHello)
	}
	if h.res.FramesRej < e.MinFramesRejected {
		fail("FramesRejected = %d, want >= %d", h.res.FramesRej, e.MinFramesRejected)
	}
	if h.res.Dropped < e.MinDropped {
		fail("SessionsDropped = %d, want >= %d", h.res.Dropped, e.MinDropped)
	}
	if h.res.Culled < e.MinCulled {
		fail("lifecycle culled = %d keyframes, want >= %d", h.res.Culled, e.MinCulled)
	}
	if h.res.Evicted < e.MinEvictions {
		fail("lifecycle evicted = %d regions, want >= %d", h.res.Evicted, e.MinEvictions)
	}
	if h.res.Poses == 0 {
		fail("no pose replies at all")
	}
}
