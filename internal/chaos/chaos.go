// Package chaos is the deterministic multi-client fault-injection
// harness: it spins up a real server.Serve listener, connects
// protocol-level clients through netem links with injected faults, and
// drives scripted churn — staggered joins, crashes, reconnects,
// partitions, corrupt streams, and server kill + recovery — while
// auditing the shared global map with smap.CheckInvariants at
// quiescent sync points. See DESIGN.md §9.
package chaos

import (
	"slamshare/internal/camera"
	"slamshare/internal/dataset"
)

// HalfRes returns a copy of seq with the rig scaled to half resolution
// in each dimension. The chaos scenarios run many frames per client;
// quarter-size images keep a full scenario matrix inside a CI budget
// while exercising the identical pipeline.
func HalfRes(seq *dataset.Sequence) *dataset.Sequence {
	in := seq.Rig.Intr
	in.Fx /= 2
	in.Fy /= 2
	in.Cx /= 2
	in.Cy /= 2
	in.Width /= 2
	in.Height /= 2
	rig := camera.NewMonoRig(in)
	if seq.Rig.Mode == camera.Stereo {
		rig = camera.NewStereoRig(in, seq.Rig.Baseline)
	}
	return &dataset.Sequence{
		Name:      seq.Name + "-half",
		World:     seq.World,
		Traj:      seq.Traj,
		Rig:       rig,
		FPS:       seq.FPS,
		IMURate:   seq.IMURate,
		Noise:     seq.Noise,
		RenderCfg: seq.RenderCfg,
		Seed:      seq.Seed,
	}
}
