package chaos

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/offload"
	"slamshare/internal/protocol"
	"slamshare/internal/server"
	"slamshare/internal/smap"
)

// flapStats is one adaptive client's outcome in the mode-flap
// scenario: frame accounting plus the mode transitions it applied.
type flapStats struct {
	id       uint32
	qos      offload.QoS
	sent     int
	answered int
	tracked  int
	shed     int
	lats     []time.Duration // uplink-send to pose-answer, per frame
	modes    []client.ModeEvent
}

// flapClient configures one adaptive session in the mode-flap
// scenario and the ramp benchmark.
type flapClient struct {
	id         uint32
	qos        offload.QoS
	caps       offload.Caps
	seq        *dataset.Sequence
	nFrames    int
	stride     int
	burstStart int // burst window [burstStart, burstEnd), frame counts
	burstEnd   int
	slow, fast time.Duration // pace outside/inside the burst window
	// prebuilt, when set, holds the pre-encoded full-mode uplink for
	// every frame; the sender writes bytes instead of encoding video at
	// send time. Used by the ramp benchmark so the background sessions'
	// load lands on the server's queues — what the QoS policy manages —
	// rather than on the benchmark process's CPU (prebuilt encoder
	// state cannot survive an upgrade back to full, so prebuilt clients
	// must not advertise CapSplit and must stay loaded to the end).
	prebuilt [][]byte
}

// runAdaptiveFlapClient drives one adaptive session through a load
// ramp: slow camera-paced frames, then a firehose burst, then slow
// again. The uplink format follows the server's mode switches frame
// by frame; every uplink must be answered (tracked, untracked, or
// shed).
func runAdaptiveFlapClient(addr string, o flapClient) (*flapStats, error) {
	id, qos, seq := o.id, o.qos, o.seq
	nFrames, stride := o.nFrames, o.stride
	cl := client.New(id, seq)
	cl.EnableAdaptive(qos, o.caps)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	hello := protocol.HelloMsg{
		ClientID: id, Mode: seq.Rig.Mode, HasRig: true,
		Intr: seq.Rig.Intr, Baseline: seq.Rig.Baseline,
		HasQoS: true, QoS: byte(qos), Caps: byte(o.caps),
	}
	if err := protocol.WriteMessage(conn, protocol.TypeHello, hello.Encode()); err != nil {
		return nil, err
	}
	st := &flapStats{id: id, qos: qos}

	// Reader: applies poses and mode switches as they arrive; reports
	// how many distinct frames were answered and the e2e latency of
	// each (uplink send to pose answer).
	pending := make(map[uint32]time.Time)
	var mu sync.Mutex
	readErr := make(chan error, 1)
	readDone := make(chan struct{})
	lastIdx := uint32((nFrames - 1) * stride)
	go func() {
		defer close(readDone)
		conn.SetReadDeadline(time.Now().Add(4 * time.Minute))
		for {
			mt, payload, err := protocol.ReadMessage(conn)
			if err != nil {
				readErr <- err
				return
			}
			switch mt {
			case protocol.TypePose:
				pm, err := protocol.DecodePoseMsg(payload)
				if err != nil {
					readErr <- err
					return
				}
				if pm.HasEcho {
					// RunTCPAdaptive folds echoes via its own reader; this
					// manual loop only needs the answer accounting.
					_ = pm.EchoNanos
				}
				mu.Lock()
				sentAt, was := pending[pm.FrameIdx]
				delete(pending, pm.FrameIdx)
				mu.Unlock()
				if was {
					st.answered++
					st.lats = append(st.lats, time.Since(sentAt))
					if pm.Shed {
						st.shed++
					} else if pm.Tracked {
						st.tracked++
						cl.ApplyPose(int(pm.FrameIdx), pm.Pose, pm.Tracked)
					}
				}
				if pm.FrameIdx == lastIdx {
					readErr <- nil
					return
				}
			case protocol.TypeModeSwitch:
				ms, err := protocol.DecodeModeSwitchMsg(payload)
				if err != nil {
					readErr <- err
					return
				}
				cl.ApplyModeSwitch(ms)
			}
		}
	}()

	for k := 0; k < nFrames; k++ {
		i := k * stride
		var mt byte
		var payload []byte
		switch cl.OffloadMode() {
		case offload.ModeSplit:
			mt, payload = protocol.TypeKeypoint, cl.BuildKeypointFrame(i).Encode()
		case offload.ModeShadow:
			mt, payload = protocol.TypeKeypoint, cl.BuildSync(i).Encode()
		default:
			if o.prebuilt != nil {
				mt, payload = protocol.TypeFrame, o.prebuilt[k]
			} else {
				mt, payload = protocol.TypeFrame, cl.BuildFrame(i).Encode()
			}
		}
		mu.Lock()
		pending[uint32(i)] = time.Now()
		mu.Unlock()
		if err := protocol.WriteMessage(conn, mt, payload); err != nil {
			return st, fmt.Errorf("client %d frame %d: %w", id, i, err)
		}
		st.sent++
		pace := o.slow
		if k >= o.burstStart && k < o.burstEnd {
			pace = o.fast
		}
		if pace > 0 {
			time.Sleep(pace)
		}
	}
	<-readDone
	if err := <-readErr; err != nil {
		return st, fmt.Errorf("client %d reader: %w", id, err)
	}
	st.modes = cl.ModeLog()
	_ = protocol.WriteMessage(conn, protocol.TypeBye, nil)
	return st, nil
}

// TestModeFlapUnderLoad is the mode-flap-under-load chaos scenario:
// six adaptive sessions at mixed QoS (2 headsets, 2 handhelds, 2
// mapping drones) ride a load ramp — camera-paced, then a mid-run
// firehose burst from every client, then camera-paced again. The
// burst must force downgrades (full -> split -> shadow by QoS) and
// the recovery must upgrade sessions back; every frame is answered,
// no session flaps faster than the hysteresis window, headsets never
// reach shadow mode, nobody is evicted, and the global map stays
// invariant-clean.
func TestModeFlapUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos run")
	}
	const hysteresis = 300 * time.Millisecond
	cfg := serverConfig(Scenario{}, "")
	cfg.TrackWorkers = 2 // constrain capacity so the burst saturates
	cfg.Overload.ShedBudget = 15 * time.Millisecond
	cfg.Offload = offload.Config{
		SplitLoad:   1,
		ShadowLoad:  3,
		SplitRTT:    time.Hour, // load-driven decisions only
		Hysteresis:  hysteresis,
		UpgradeFrac: 0.5,
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	addr := l.Addr().String()

	seqs := make(map[string]*dataset.Sequence)
	for _, name := range []string{"MH04", "MH05"} {
		s, err := dataset.ByName(name, camera.Stereo)
		if err != nil {
			t.Fatal(err)
		}
		seqs[name] = HalfRes(s)
	}

	classes := []offload.QoS{
		offload.QoSHeadset, offload.QoSHeadset,
		offload.QoSHandheld, offload.QoSHandheld,
		offload.QoSDrone, offload.QoSDrone,
	}
	const (
		nFrames    = 44
		stride     = 2
		burstStart = 12
		burstEnd   = 30
	)
	type outcome struct {
		st  *flapStats
		err error
	}
	outcomes := make(chan outcome, len(classes))
	var wg sync.WaitGroup
	for idx, qos := range classes {
		name := "MH04"
		if idx%2 == 1 {
			name = "MH05"
		}
		wg.Add(1)
		go func(id uint32, qos offload.QoS, seq *dataset.Sequence) {
			defer wg.Done()
			st, err := runAdaptiveFlapClient(addr, flapClient{
				id: id, qos: qos, caps: offload.CapSplit | offload.CapShadow,
				seq: seq, nFrames: nFrames, stride: stride,
				burstStart: burstStart, burstEnd: burstEnd,
				slow: 250 * time.Millisecond, fast: 2 * time.Millisecond,
			})
			outcomes <- outcome{st, err}
		}(uint32(idx+1), qos, seqs[name])
	}
	wg.Wait()
	close(outcomes)

	downgrades, upgrades := 0, 0
	for o := range outcomes {
		if o.err != nil {
			t.Fatal(o.err)
		}
		st := o.st
		if st.answered != st.sent {
			t.Errorf("client %d (%v): %d of %d frames answered", st.id, st.qos, st.answered, st.sent)
		}
		prev := offload.ModeFull
		for k, ev := range st.modes {
			if ev.Mode > prev {
				downgrades++
			} else if ev.Mode < prev {
				upgrades++
			}
			if st.qos == offload.QoSHeadset && ev.Mode == offload.ModeShadow {
				t.Errorf("client %d: headset degraded to shadow", st.id)
			}
			// No flapping faster than the dwell, measured on the server's
			// send stamps: client apply times compress when the reader
			// drains queued downlinks. Small margin for the gap between
			// the controller's decision clock and the write stamp.
			if k > 0 {
				prevEv := st.modes[k-1]
				if ev.Epoch <= prevEv.Epoch {
					t.Errorf("client %d: epochs not increasing: %d then %d",
						st.id, prevEv.Epoch, ev.Epoch)
				}
				dt := time.Duration(ev.ServerNanos - prevEv.ServerNanos)
				if dt < hysteresis-50*time.Millisecond {
					t.Errorf("client %d: switches %d->%d only %v apart (hysteresis %v)",
						st.id, k-1, k, dt, hysteresis)
				}
			}
			prev = ev.Mode
		}
		t.Logf("client %d (%v): sent %d tracked %d shed %d, %d switches",
			st.id, st.qos, st.sent, st.tracked, st.shed, len(st.modes))
	}
	if downgrades == 0 {
		t.Error("load ramp forced no downgrades")
	}
	if upgrades == 0 {
		t.Error("recovery produced no upgrades")
	}
	waitNoSessions(t, srv)

	ns := srv.NetStats()
	if got := ns.SessionsDropped.Load(); got != 0 {
		t.Errorf("%d sessions dropped; adaptive degradation must replace eviction", got)
	}
	if got := ns.IdleEvicted.Load(); got != 0 {
		t.Errorf("%d connections evicted under the ramp", got)
	}
	if got := ns.ModeSwitches.Load(); got == 0 {
		t.Error("server recorded no mode switches")
	}
	rep := smap.CheckInvariants(srv.Global())
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	t.Logf("mode-flap: %d downgrades, %d upgrades, %d switches pushed, %d split frames, %d sync pings, %d shed",
		downgrades, upgrades, ns.ModeSwitches.Load(), ns.FramesSplit.Load(),
		ns.SyncPings.Load(), ns.FramesShed.Load())
}

// rampServer starts a constrained adaptive server for the overload
// ramp and returns it with its listen address.
func rampServer(b *testing.B) (*server.Server, string) {
	b.Helper()
	cfg := serverConfig(Scenario{}, "")
	cfg.TrackWorkers = 2
	// One of the two admission slots is headset-only: a QoS-0 frame
	// never waits out a whole lower-class frame at the gate.
	cfg.TrackReservedSlots = 1
	cfg.Overload.ShedBudget = 15 * time.Millisecond
	cfg.Offload = offload.Config{
		SplitLoad:   1,
		ShadowLoad:  2,
		SplitRTT:    time.Hour,
		Hysteresis:  300 * time.Millisecond,
		UpgradeFrac: 0.5,
	}
	srv, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		b.Fatal(err)
	}
	go srv.Serve(l)
	b.Cleanup(func() { l.Close(); srv.Close() })
	return srv, l.Addr().String()
}

// BenchmarkOffloadAdaptiveRamp is the QoS-protection measurement: one
// headset session is benchmarked unloaded, then again while seven
// drone-class sessions ramp the same server into overload. The
// adaptive policy must push the drones toward shadow mode rather than
// evicting them, keeping the headset's end-to-end p99 close to its
// unloaded p99. Reported metrics: both p99s, their ratio, and how
// many sessions were degraded off full offload.
//
// The drones' full-mode uplinks are pre-encoded before the clock
// starts and their only degraded mode is shadow (CapShadow, no
// CapSplit — an upgrade back to full would invalidate the prebuilt
// encoder stream, so they stay bursting to the end): at send time a
// drone writes bytes or advances a cheap IMU sync. On a small CI box
// this matters — live drones spend more CPU encoding video and
// extracting keypoints than the server spends serving them, and with
// everything in one process that client-side cost timeslices against
// the headset's server work and drowns the signal. Prebuilding puts
// the overload where it belongs: on the server's queues, which is
// what the QoS policy manages.
func BenchmarkOffloadAdaptiveRamp(b *testing.B) {
	const nFrames, stride = 36, 2
	seq := HalfRes(mustSeq(b, "MH04"))
	// Pre-encode every drone's full-mode uplink stream (untimed; the
	// video codec is stateful, so each drone gets its own sequential
	// encode).
	prebuilt := make(map[uint32][][]byte)
	for id := uint32(2); id <= 8; id++ {
		enc := client.New(id, seq)
		frames := make([][]byte, nFrames)
		for k := 0; k < nFrames; k++ {
			frames[k] = enc.BuildFrame(k * stride).Encode()
		}
		prebuilt[id] = frames
	}
	for i := 0; i < b.N; i++ {
		// Unloaded baseline: the headset alone, camera-paced.
		_, addr := rampServer(b)
		solo, err := runAdaptiveFlapClient(addr, flapClient{
			id: 1, qos: offload.QoSHeadset, caps: offload.CapSplit | offload.CapShadow,
			seq: seq, nFrames: nFrames, stride: stride,
			slow: 60 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		baselineP99 := percentile(solo.lats, 0.99)

		// Loaded: the headset keeps the same camera pacing — it is the
		// victim, not a contributor — while 7 drones firehose from
		// frame 8 to the end of their runs.
		srv, addr := rampServer(b)
		var wg sync.WaitGroup
		outcomes := make(chan *flapStats, 8)
		errs := make(chan error, 8)
		for id := uint32(1); id <= 8; id++ {
			o := flapClient{
				id: id, qos: offload.QoSDrone, caps: offload.CapShadow,
				seq: seq, nFrames: nFrames, stride: stride,
				burstStart: 8, burstEnd: nFrames,
				slow: 60 * time.Millisecond, fast: 2 * time.Millisecond,
				prebuilt: prebuilt[id],
			}
			if id == 1 {
				o.qos, o.caps = offload.QoSHeadset, offload.CapSplit|offload.CapShadow
				o.burstStart, o.burstEnd = 0, 0
				o.prebuilt = nil
			}
			wg.Add(1)
			go func(o flapClient) {
				defer wg.Done()
				st, err := runAdaptiveFlapClient(addr, o)
				if err != nil {
					errs <- err
					return
				}
				outcomes <- st
			}(o)
		}
		wg.Wait()
		close(outcomes)
		close(errs)
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
		var loadedP99 time.Duration
		degraded := 0
		for st := range outcomes {
			if st.qos == offload.QoSHeadset {
				loadedP99 = percentile(st.lats, 0.99)
			} else if len(st.modes) > 0 {
				degraded++
			}
		}
		if got := srv.NetStats().SessionsDropped.Load(); got != 0 {
			b.Fatalf("%d sessions dropped under the ramp", got)
		}
		b.ReportMetric(float64(baselineP99.Microseconds())/1000, "unloaded-p99-ms")
		b.ReportMetric(float64(loadedP99.Microseconds())/1000, "hiqos-p99-ms")
		if baselineP99 > 0 {
			b.ReportMetric(float64(loadedP99)/float64(baselineP99), "p99-ratio")
		}
		b.ReportMetric(float64(degraded), "degraded-sessions")
	}
}

func mustSeq(b *testing.B, name string) *dataset.Sequence {
	b.Helper()
	s, err := dataset.ByName(name, camera.Stereo)
	if err != nil {
		b.Fatal(err)
	}
	return s
}
