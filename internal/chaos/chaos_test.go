package chaos

import (
	"testing"

	"slamshare/internal/camera"
	"slamshare/internal/dataset"
)

// TestChaosScenarios runs the standard scenario matrix as table-driven
// cases: each scenario must meet its expectations AND leave the shared
// global map with zero invariant violations at every audited sync
// point. The whole suite is deterministic from the scenario seeds.
func TestChaosScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(sc, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("invariant violation: %s", v)
			}
			for _, f := range res.Failures {
				t.Errorf("expectation failed: %s", f)
			}
			t.Logf("%s: %d frames, %d poses (%d tracked), %d merges, %d reconnects, %d survivors, %d checks, %d KFs / %d MPs in %v",
				res.Scenario, res.FramesSent, res.Poses, res.Tracked, res.Merges,
				res.Reconnects, res.Survivors, res.Checks, res.KeyFrames, res.MapPoints,
				res.Elapsed)
		})
	}
}

// TestChaosDeterminism replays one fault scenario twice from the same
// seed and requires the scripted outcomes to match exactly: frames
// sent, survivors, reconnects and dropped sessions are functions of
// the script + seeds, never the wall clock.
func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scenario twice")
	}
	sc := Scenarios()[1] // client-crash
	a, err := Run(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if a.FramesSent != b.FramesSent || a.Survivors != b.Survivors ||
		a.Reconnects != b.Reconnects || a.Dropped != b.Dropped {
		t.Errorf("replay diverged: frames %d/%d, survivors %d/%d, reconnects %d/%d, dropped %d/%d",
			a.FramesSent, b.FramesSent, a.Survivors, b.Survivors,
			a.Reconnects, b.Reconnects, a.Dropped, b.Dropped)
	}
}

// TestHalfRes sanity-checks the scaled rig.
func TestHalfRes(t *testing.T) {
	full, err := dataset.ByName("MH04", camera.Stereo)
	if err != nil {
		t.Fatal(err)
	}
	half := HalfRes(full)
	if got, want := half.Rig.Intr.Width, full.Rig.Intr.Width/2; got != want {
		t.Errorf("width %d, want %d", got, want)
	}
	if got, want := half.Rig.Intr.Fx, full.Rig.Intr.Fx/2; got != want {
		t.Errorf("fx %v, want %v", got, want)
	}
	if half.Rig.Mode != camera.Stereo || half.Rig.Baseline != full.Rig.Baseline {
		t.Errorf("stereo rig not preserved: mode %v baseline %v", half.Rig.Mode, half.Rig.Baseline)
	}
	if half.World != full.World || half.Traj == nil {
		t.Error("world/trajectory not carried over")
	}
}
