package chaos

// Multi-process topology support: the chaos tier's single-server
// scenarios fault one in-process server, but cluster scenarios need
// real processes — a SIGKILL mid cross-shard merge must lose every
// byte that was not yet durably in the WAL, which an in-process
// "kill" cannot reproduce (finalizers, shared memory and page cache
// all survive). Shards therefore run as re-exec'd copies of the test
// binary (TestMain dispatches on SLAMSHARE_PROC) and report their
// listen address on stdout for the parent to scrape.

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"slamshare/internal/cluster"
)

// ShardSpec parameterizes one shard child process.
type ShardSpec struct {
	Bin     string // binary to exec (os.Args[0] in tests)
	ID      uint32
	Token   uint64
	Addr    string // listen address; "127.0.0.1:0" picks a port
	Dir     string // WAL directory (persists across restarts)
	StallMs int    // import crash-window failpoint, milliseconds
	// StartDelayMs simulates a slow restart: the child listens (and
	// reports its address) immediately but kills every accepted
	// connection for this long before starting the real server.
	StartDelayMs int
}

// ShardProc is one shard server running as a real child process.
// Killing it is a true SIGKILL: no deferred cleanup, no flushes — the
// WAL on disk is all that survives, which is the point of the tier.
type ShardProc struct {
	Addr string
	cmd  *exec.Cmd
}

// SpawnShard starts a shard child process and waits for its LISTENING
// line. Respawns after a kill reuse the concrete address, so fronts
// and peers reconnect without reconfiguration; the retry loop absorbs
// the window where the killed process's port is still being released.
func SpawnShard(spec ShardSpec) (*ShardProc, error) {
	var lastErr error
	for attempt := 0; attempt < 15; attempt++ {
		p, err := trySpawn(spec)
		if err == nil {
			return p, nil
		}
		lastErr = err
		time.Sleep(200 * time.Millisecond)
	}
	return nil, fmt.Errorf("chaos: shard %d did not come up: %w", spec.ID, lastErr)
}

func trySpawn(spec ShardSpec) (*ShardProc, error) {
	cmd := exec.Command(spec.Bin)
	cmd.Env = append(os.Environ(),
		cluster.EnvProc+"=shard",
		fmt.Sprintf("%s=%s", cluster.EnvAddr, spec.Addr),
		fmt.Sprintf("%s=%d", cluster.EnvShardID, spec.ID),
		fmt.Sprintf("%s=%d", cluster.EnvToken, spec.Token),
		fmt.Sprintf("%s=%s", cluster.EnvDir, spec.Dir),
		fmt.Sprintf("%s=%d", cluster.EnvImportStall, spec.StallMs),
		fmt.Sprintf("%s=%d", cluster.EnvStartDelay, spec.StartDelayMs),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "LISTENING "); ok {
				addrCh <- a
				return
			}
		}
		addrCh <- "" // stdout closed: the process died before listening
	}()
	select {
	case a := <-addrCh:
		if a == "" {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, errors.New("shard exited before listening")
		}
		return &ShardProc{Addr: a, cmd: cmd}, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, errors.New("shard did not report listening")
	}
}

// Kill SIGKILLs the shard process and reaps it.
func (p *ShardProc) Kill() {
	if p == nil || p.cmd == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// FrontSpec parameterizes one front-router child process. Replicas
// share the Token and the Shards view; each gets its own FrontID.
type FrontSpec struct {
	Bin            string
	ID             uint32
	Token          uint64
	Addr           string   // device listen address; "127.0.0.1:0" picks a port
	Shards         []string // shard address table, identical across replicas
	PartMin        float64  // partition edges (N = len(Shards))
	PartMax        float64
	PartHysteresis float64
	HandoffStallMs int  // mid-handoff failpoint, milliseconds
	Debug          bool // serve /debug/vars (front gauges) on a private port
}

// FrontProc is one front router running as a real child process.
type FrontProc struct {
	Addr      string
	DebugAddr string // empty unless the spec asked for debug serving
	cmd       *exec.Cmd
}

// SpawnFront starts a front child process and waits for its LISTENING
// (and, when debug-enabled, DEBUG) lines.
func SpawnFront(spec FrontSpec) (*FrontProc, error) {
	var lastErr error
	for attempt := 0; attempt < 15; attempt++ {
		p, err := trySpawnFront(spec)
		if err == nil {
			return p, nil
		}
		lastErr = err
		time.Sleep(200 * time.Millisecond)
	}
	return nil, fmt.Errorf("chaos: front %d did not come up: %w", spec.ID, lastErr)
}

func trySpawnFront(spec FrontSpec) (*FrontProc, error) {
	cmd := exec.Command(spec.Bin)
	env := append(os.Environ(),
		cluster.EnvProc+"=front",
		fmt.Sprintf("%s=%s", cluster.EnvAddr, spec.Addr),
		fmt.Sprintf("%s=%d", cluster.EnvFrontID, spec.ID),
		fmt.Sprintf("%s=%d", cluster.EnvToken, spec.Token),
		fmt.Sprintf("%s=%s", cluster.EnvShards, strings.Join(spec.Shards, ",")),
		fmt.Sprintf("%s=%g,%g,%g", cluster.EnvPartEdges,
			spec.PartMin, spec.PartMax, spec.PartHysteresis),
		fmt.Sprintf("%s=%d", cluster.EnvHandoffStall, spec.HandoffStallMs),
	)
	if spec.Debug {
		env = append(env, fmt.Sprintf("%s=127.0.0.1:0", cluster.EnvDebugAddr))
	}
	cmd.Env = env
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	type report struct{ addr, debug string }
	repCh := make(chan report, 1)
	go func() {
		var rep report
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "DEBUG "); ok {
				rep.debug = a
				continue
			}
			if a, ok := strings.CutPrefix(sc.Text(), "LISTENING "); ok {
				rep.addr = a
				break
			}
		}
		repCh <- rep // addr empty when stdout closed before listening
	}()
	select {
	case rep := <-repCh:
		if rep.addr == "" {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, errors.New("front exited before listening")
		}
		return &FrontProc{Addr: rep.addr, DebugAddr: rep.debug, cmd: cmd}, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, errors.New("front did not report listening")
	}
}

// Kill SIGKILLs the front process and reaps it.
func (p *FrontProc) Kill() {
	if p == nil || p.cmd == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
}
