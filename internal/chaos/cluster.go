package chaos

// Multi-process topology support: the chaos tier's single-server
// scenarios fault one in-process server, but cluster scenarios need
// real processes — a SIGKILL mid cross-shard merge must lose every
// byte that was not yet durably in the WAL, which an in-process
// "kill" cannot reproduce (finalizers, shared memory and page cache
// all survive). Shards therefore run as re-exec'd copies of the test
// binary (TestMain dispatches on SLAMSHARE_PROC) and report their
// listen address on stdout for the parent to scrape.

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"slamshare/internal/cluster"
)

// ShardSpec parameterizes one shard child process.
type ShardSpec struct {
	Bin     string // binary to exec (os.Args[0] in tests)
	ID      uint32
	Token   uint64
	Addr    string // listen address; "127.0.0.1:0" picks a port
	Dir     string // WAL directory (persists across restarts)
	StallMs int    // import crash-window failpoint, milliseconds
}

// ShardProc is one shard server running as a real child process.
// Killing it is a true SIGKILL: no deferred cleanup, no flushes — the
// WAL on disk is all that survives, which is the point of the tier.
type ShardProc struct {
	Addr string
	cmd  *exec.Cmd
}

// SpawnShard starts a shard child process and waits for its LISTENING
// line. Respawns after a kill reuse the concrete address, so fronts
// and peers reconnect without reconfiguration; the retry loop absorbs
// the window where the killed process's port is still being released.
func SpawnShard(spec ShardSpec) (*ShardProc, error) {
	var lastErr error
	for attempt := 0; attempt < 15; attempt++ {
		p, err := trySpawn(spec)
		if err == nil {
			return p, nil
		}
		lastErr = err
		time.Sleep(200 * time.Millisecond)
	}
	return nil, fmt.Errorf("chaos: shard %d did not come up: %w", spec.ID, lastErr)
}

func trySpawn(spec ShardSpec) (*ShardProc, error) {
	cmd := exec.Command(spec.Bin)
	cmd.Env = append(os.Environ(),
		cluster.EnvProc+"=shard",
		fmt.Sprintf("%s=%s", cluster.EnvAddr, spec.Addr),
		fmt.Sprintf("%s=%d", cluster.EnvShardID, spec.ID),
		fmt.Sprintf("%s=%d", cluster.EnvToken, spec.Token),
		fmt.Sprintf("%s=%s", cluster.EnvDir, spec.Dir),
		fmt.Sprintf("%s=%d", cluster.EnvImportStall, spec.StallMs),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "LISTENING "); ok {
				addrCh <- a
				return
			}
		}
		addrCh <- "" // stdout closed: the process died before listening
	}()
	select {
	case a := <-addrCh:
		if a == "" {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, errors.New("shard exited before listening")
		}
		return &ShardProc{Addr: a, cmd: cmd}, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, errors.New("shard did not report listening")
	}
}

// Kill SIGKILLs the shard process and reaps it.
func (p *ShardProc) Kill() {
	if p == nil || p.cmd == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
}
