package chaos

import (
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"slamshare/internal/camera"
	"slamshare/internal/client"
	"slamshare/internal/dataset"
	"slamshare/internal/geom"
	"slamshare/internal/merge"
	"slamshare/internal/protocol"
	"slamshare/internal/server"
	"slamshare/internal/smap"
)

// burstStats is one overload client's outcome.
type burstStats struct {
	id       uint32
	sent     int
	answered int
	tracked  int
	shed     int
	lats     []time.Duration // uplink-to-answer latency per frame
}

// runBurstClient floods the server: frames are pre-built and written
// in back-to-back bursts of burstLen, then the burst's answers are
// awaited. Every frame must be answered — tracked, untracked or shed.
func runBurstClient(addr string, id uint32, seq *dataset.Sequence, nFrames, stride, burstLen int) (*burstStats, error) {
	cl := client.New(id, seq)
	msgs := make([][]byte, 0, nFrames)
	idxs := make([]uint32, 0, nFrames)
	for i := 0; i < nFrames; i++ {
		m := cl.BuildFrame(i * stride)
		msgs = append(msgs, m.Encode())
		idxs = append(idxs, m.FrameIdx)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	hello := protocol.HelloMsg{
		ClientID: id, Mode: seq.Rig.Mode, HasRig: true,
		Intr: seq.Rig.Intr, Baseline: seq.Rig.Baseline,
	}
	if err := protocol.WriteMessage(conn, protocol.TypeHello, hello.Encode()); err != nil {
		return nil, err
	}
	st := &burstStats{id: id}
	for base := 0; base < len(msgs); base += burstLen {
		end := base + burstLen
		if end > len(msgs) {
			end = len(msgs)
		}
		t0 := time.Now()
		pending := make(map[uint32]bool)
		for k := base; k < end; k++ {
			if err := protocol.WriteMessage(conn, protocol.TypeFrame, msgs[k]); err != nil {
				return st, fmt.Errorf("client %d frame %d: %w", id, k, err)
			}
			st.sent++
			pending[idxs[k]] = true
		}
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		for len(pending) > 0 {
			mt, payload, err := protocol.ReadMessage(conn)
			if err != nil {
				return st, fmt.Errorf("client %d awaiting burst: %w", id, err)
			}
			if mt != protocol.TypePose {
				continue
			}
			pm, err := protocol.DecodePoseMsg(payload)
			if err != nil {
				return st, err
			}
			if !pending[pm.FrameIdx] {
				continue
			}
			delete(pending, pm.FrameIdx)
			st.answered++
			st.lats = append(st.lats, time.Since(t0))
			switch {
			case pm.Shed:
				st.shed++
			case pm.Tracked:
				st.tracked++
				cl.ApplyPose(int(pm.FrameIdx), pm.Pose, pm.Tracked)
			}
		}
	}
	_ = protocol.WriteMessage(conn, protocol.TypeBye, nil)
	return st, nil
}

// runLockstepClient sends one frame at a time and waits for its
// answer — the well-behaved consumer (and the merge poisoner's
// vehicle: its map grows steadily, so the sabotaged merge gets its
// retry).
func runLockstepClient(addr string, id uint32, seq *dataset.Sequence, nFrames, stride int) (*burstStats, error) {
	return runBurstClient(addr, id, seq, nFrames, stride, 1)
}

func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	k := int(p * float64(len(s)-1))
	return s[k]
}

// waitNoSessions polls until every server session is reaped.
func waitNoSessions(t *testing.T, srv *server.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.NSessions() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%d sessions still open", srv.NSessions())
}

// TestOverloadScenario drives the server at ~4x its tracking capacity:
// four clients burst frames four at a time, one well-behaved client
// sends in lockstep, and that client's first merge attempt is
// sabotaged through the MergeHook failpoint. The server must answer
// every uplink frame (stale ones flagged Shed), roll the poisoned
// merge back, merge the same client successfully on retry, keep reply
// latency bounded, and leave the global map invariant-clean.
func TestOverloadScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full overload run")
	}
	const poisonerID = 5
	cfg := serverConfig(Scenario{}, "")
	cfg.Overload.ShedBudget = 15 * time.Millisecond
	cfg.Overload.MaxMergesInFlight = 1
	cfg.MergeHook = func(clientID uint32, attempt int, mg *merge.Merger) {
		if clientID == poisonerID && attempt == 0 {
			mg.Sabotage = func(tx merge.SabotageContext) {
				if kfs := tx.InsertedKFs(); len(kfs) > 0 {
					tx.SetKeyFramePose(kfs[0], geom.SE3{
						R: geom.IdentityQuat(), T: geom.Vec3{X: math.NaN()},
					})
				}
			}
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	addr := l.Addr().String()

	seqs := make(map[string]*dataset.Sequence)
	for _, name := range []string{"MH04", "MH05"} {
		s, err := dataset.ByName(name, camera.Stereo)
		if err != nil {
			t.Fatal(err)
		}
		seqs[name] = HalfRes(s)
	}

	type outcome struct {
		st  *burstStats
		err error
	}
	outcomes := make(chan outcome, 5)
	var wg sync.WaitGroup
	for id := uint32(1); id <= 4; id++ {
		name := "MH04"
		if id%2 == 0 {
			name = "MH05"
		}
		wg.Add(1)
		go func(id uint32, seq *dataset.Sequence) {
			defer wg.Done()
			st, err := runBurstClient(addr, id, seq, 40, 2, 4)
			outcomes <- outcome{st, err}
		}(id, seqs[name])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		st, err := runLockstepClient(addr, poisonerID, seqs["MH05"], 40, 2)
		outcomes <- outcome{st, err}
	}()
	wg.Wait()
	close(outcomes)

	var allLats []time.Duration
	totalShed, totalTracked := 0, 0
	for o := range outcomes {
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.st.answered != o.st.sent {
			t.Errorf("client %d: %d of %d frames answered", o.st.id, o.st.answered, o.st.sent)
		}
		totalShed += o.st.shed
		totalTracked += o.st.tracked
		allLats = append(allLats, o.st.lats...)
		if o.st.id == poisonerID && o.st.shed != 0 {
			t.Errorf("lockstep client was shed %d times with no backlog", o.st.shed)
		}
	}
	waitNoSessions(t, srv)

	ns := srv.NetStats()
	if totalShed == 0 || ns.FramesShed.Load() == 0 {
		t.Errorf("4x overload shed nothing (wire %d, counter %d)", totalShed, ns.FramesShed.Load())
	}
	if totalTracked == 0 {
		t.Error("nothing tracked under overload")
	}
	if got := ns.MergeRollbacks.Load(); got < 1 {
		t.Errorf("MergeRollbacks = %d, want >= 1 (sabotaged merge)", got)
	}
	if got := ns.MergeQuarantines.Load(); got != 0 {
		t.Errorf("MergeQuarantines = %d; one sabotaged attempt must not quarantine", got)
	}
	// The poisoner's retry must have succeeded: its keyframes are in
	// the global map despite the first attempt being rolled back.
	poisonerKFs := 0
	for _, kf := range srv.Global().KeyFrames() {
		if kf.Client == poisonerID {
			poisonerKFs++
		}
	}
	if poisonerKFs == 0 {
		t.Error("poisoner's map never merged after the rollback")
	}
	if p99 := percentile(allLats, 0.99); p99 > 5*time.Second {
		t.Errorf("p99 answer latency %v exceeds 5s bound", p99)
	}
	rep := smap.CheckInvariants(srv.Global())
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	t.Logf("overload: %d tracked, %d shed, %d merges, %d rollbacks, p50 %v p99 %v, %d KFs / %d MPs",
		totalTracked, totalShed, len(srv.MergeReports()), ns.MergeRollbacks.Load(),
		percentile(allLats, 0.5), percentile(allLats, 0.99), rep.KeyFrames, rep.MapPoints)
}

// TestFrozenPeerEvicted is the regression for serveConn wedging
// forever on a peer that stalls: both a mid-message stall (partial
// header, then silence) and a hello-then-silence idle peer must be
// evicted by the read watchdog, releasing their sessions.
func TestFrozenPeerEvicted(t *testing.T) {
	cfg := serverConfig(Scenario{}, "")
	cfg.Overload.ReadTimeout = 300 * time.Millisecond
	cfg.Overload.IdleTimeout = 600 * time.Millisecond
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	addr := l.Addr().String()

	hello := protocol.HelloMsg{ClientID: 1, Mode: camera.Mono}

	// Mid-message freeze: a session-holding peer writes 3 of a frame
	// header's 5 bytes and stalls. Before per-message deadlines the
	// server goroutine blocked in that read forever.
	frozen, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer frozen.Close()
	if err := protocol.WriteMessage(frozen, protocol.TypeHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	if _, err := frozen.Write([]byte{protocol.TypeFrame, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && srv.NetStats().IdleEvicted.Load() < 1 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.NetStats().IdleEvicted.Load(); got < 1 {
		t.Fatal("frozen peer never evicted")
	}
	waitNoSessions(t, srv)

	// Idle peer: hello, then nothing. The idle window (longer than the
	// stall window) evicts it too.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	hello.ClientID = 2
	if err := protocol.WriteMessage(idle, protocol.TypeHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && srv.NetStats().IdleEvicted.Load() < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.NetStats().IdleEvicted.Load(); got < 2 {
		t.Fatal("idle peer never evicted")
	}
	waitNoSessions(t, srv)
}
