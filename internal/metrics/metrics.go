// Package metrics implements the paper's evaluation metrics:
// absolute trajectory error (cumulative and short-term, Appendix C),
// latency statistics, and the CPU busy-time meters behind Fig. 13.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"slamshare/internal/geom"
)

// Counter is a monotonically increasing atomic counter, cheap enough
// for hot paths (journal records, checkpoint counts). The zero value
// is ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge holds one float64 value updated atomically (e.g. the
// recovery-time ATE delta). The zero value reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the stored value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// TrajectoryPoint is a timestamped position estimate.
type TrajectoryPoint struct {
	T   float64 // seconds
	Pos geom.Vec3
}

// Trajectory is a time-ordered sequence of positions.
type Trajectory []TrajectoryPoint

// Append adds a point, keeping time order (points must arrive in
// order; out-of-order points are dropped).
func (tr *Trajectory) Append(t float64, pos geom.Vec3) {
	if n := len(*tr); n > 0 && (*tr)[n-1].T >= t {
		return
	}
	*tr = append(*tr, TrajectoryPoint{T: t, Pos: pos})
}

// At interpolates the position at time t (clamped to the ends).
func (tr Trajectory) At(t float64) (geom.Vec3, bool) {
	n := len(tr)
	if n == 0 {
		return geom.Vec3{}, false
	}
	if t <= tr[0].T {
		return tr[0].Pos, true
	}
	if t >= tr[n-1].T {
		return tr[n-1].Pos, true
	}
	i := sort.Search(n, func(i int) bool { return tr[i].T >= t })
	a, b := tr[i-1], tr[i]
	u := (t - a.T) / (b.T - a.T)
	return a.Pos.Lerp(b.Pos, u), true
}

// Duration returns the time span covered.
func (tr Trajectory) Duration() float64 {
	if len(tr) == 0 {
		return 0
	}
	return tr[len(tr)-1].T - tr[0].T
}

// ATE returns the RMSE of the estimated trajectory against ground
// truth, evaluated at the estimate's timestamps — the cumulative ATE
// of the paper. Returns 0 for empty inputs.
func ATE(est, truth Trajectory) float64 {
	return ATEWindow(est, truth, math.Inf(-1), math.Inf(1))
}

// ATEWindow returns the RMSE restricted to estimate samples with
// t in [t0, t1].
func ATEWindow(est, truth Trajectory, t0, t1 float64) float64 {
	var sum float64
	n := 0
	for _, p := range est {
		if p.T < t0 || p.T > t1 {
			continue
		}
		gt, ok := truth.At(p.T)
		if !ok {
			continue
		}
		d := p.Pos.Sub(gt).NormSq()
		sum += d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// ShortTermATE returns the RMSE over the last `window` seconds of the
// estimate ending at time t — the paper's short-term ATE (Appendix C),
// reflecting the user's most recent experience.
func ShortTermATE(est, truth Trajectory, t, window float64) float64 {
	return ATEWindow(est, truth, t-window, t)
}

// CumulativePoint is one sample of an ATE-versus-time series.
type CumulativePoint struct {
	T   float64
	ATE float64
}

// CumulativeSeries evaluates the cumulative ATE at regular intervals —
// the curves of Figs. 10a, 10c and 12a.
func CumulativeSeries(est, truth Trajectory, step float64) []CumulativePoint {
	if len(est) == 0 || step <= 0 {
		return nil
	}
	var out []CumulativePoint
	end := est[len(est)-1].T
	for t := est[0].T + step; t <= end+1e-9; t += step {
		out = append(out, CumulativePoint{
			T:   t,
			ATE: ATEWindow(est, truth, math.Inf(-1), t),
		})
	}
	return out
}

// ShortTermSeries evaluates the short-term ATE at regular intervals —
// the curves of Figs. 12b and 12c.
func ShortTermSeries(est, truth Trajectory, step, window float64) []CumulativePoint {
	if len(est) == 0 || step <= 0 {
		return nil
	}
	var out []CumulativePoint
	end := est[len(est)-1].T
	for t := est[0].T + window; t <= end+1e-9; t += step {
		out = append(out, CumulativePoint{
			T:   t,
			ATE: ShortTermATE(est, truth, t, window),
		})
	}
	return out
}

// LatencyStats summarizes a set of durations.
type LatencyStats struct {
	N                   int
	Mean, P50, P90, P99 time.Duration
	Min, Max, Total     time.Duration
}

// Latencies collects duration samples; safe for concurrent use.
type Latencies struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, d)
	l.mu.Unlock()
}

// Stats computes summary statistics.
func (l *Latencies) Stats() LatencyStats {
	l.mu.Lock()
	s := make([]time.Duration, len(l.samples))
	copy(s, l.samples)
	l.mu.Unlock()
	if len(s) == 0 {
		return LatencyStats{}
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var total time.Duration
	for _, d := range s {
		total += d
	}
	idx := func(q float64) time.Duration {
		// Nearest rank: the value whose 1-based rank is ceil(q*N). The
		// previous floor indexing int(q*(N-1)) under-reported upper
		// quantiles for small N (P99 of two samples returned the min).
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return LatencyStats{
		N:     len(s),
		Mean:  total / time.Duration(len(s)),
		P50:   idx(0.50),
		P90:   idx(0.90),
		P99:   idx(0.99),
		Min:   s[0],
		Max:   s[len(s)-1],
		Total: total,
	}
}

// CPUMeter accumulates busy time of a component against wall-clock
// time — the substitution for psutil in Fig. 13 (see DESIGN.md).
type CPUMeter struct {
	mu    sync.Mutex
	busy  time.Duration
	start time.Time
}

// NewCPUMeter starts metering now.
func NewCPUMeter() *CPUMeter {
	return &CPUMeter{start: time.Now()}
}

// Add accounts d of busy compute time.
func (c *CPUMeter) Add(d time.Duration) {
	c.mu.Lock()
	c.busy += d
	c.mu.Unlock()
}

// Time runs f and accounts its duration.
func (c *CPUMeter) Time(f func()) {
	t0 := time.Now()
	f()
	c.Add(time.Since(t0))
}

// Busy returns the accumulated busy time.
func (c *CPUMeter) Busy() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.busy
}

// Utilization returns busy time as a fraction of elapsed wall time
// (1.0 = one core fully busy).
func (c *CPUMeter) Utilization() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	wall := time.Since(c.start)
	if wall <= 0 {
		return 0
	}
	return float64(c.busy) / float64(wall)
}

// UtilizationOver returns busy/wall against an explicit wall duration,
// for replaying recorded runs.
func (c *CPUMeter) UtilizationOver(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.busy) / float64(wall)
}
