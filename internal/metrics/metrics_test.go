package metrics

import (
	"math"
	"sync"
	"testing"
	"time"

	"slamshare/internal/geom"
)

func line(t0, t1, dt float64, off geom.Vec3) Trajectory {
	var tr Trajectory
	for t := t0; t <= t1+1e-9; t += dt {
		tr.Append(t, geom.Vec3{X: t}.Add(off))
	}
	return tr
}

func TestTrajectoryAppendOrdered(t *testing.T) {
	var tr Trajectory
	tr.Append(1, geom.Vec3{X: 1})
	tr.Append(2, geom.Vec3{X: 2})
	tr.Append(1.5, geom.Vec3{X: 99}) // out of order: dropped
	if len(tr) != 2 {
		t.Errorf("len = %d", len(tr))
	}
}

func TestTrajectoryAtInterpolates(t *testing.T) {
	tr := line(0, 10, 1, geom.Vec3{})
	p, ok := tr.At(2.5)
	if !ok || math.Abs(p.X-2.5) > 1e-12 {
		t.Errorf("At(2.5) = %v", p)
	}
	// Clamping.
	if p, _ := tr.At(-5); p.X != 0 {
		t.Error("start clamp failed")
	}
	if p, _ := tr.At(100); p.X != 10 {
		t.Error("end clamp failed")
	}
	if _, ok := (Trajectory{}).At(1); ok {
		t.Error("empty trajectory answered")
	}
}

func TestATEExact(t *testing.T) {
	truth := line(0, 10, 0.5, geom.Vec3{})
	est := line(0, 10, 1, geom.Vec3{})
	if a := ATE(est, truth); a > 1e-12 {
		t.Errorf("perfect estimate ATE = %v", a)
	}
	// Constant 0.3 m offset -> ATE 0.3.
	off := line(0, 10, 1, geom.Vec3{Y: 0.3})
	if a := ATE(off, truth); math.Abs(a-0.3) > 1e-9 {
		t.Errorf("offset ATE = %v", a)
	}
	if ATE(Trajectory{}, truth) != 0 {
		t.Error("empty estimate should give 0")
	}
}

func TestShortTermATEIgnoresOldError(t *testing.T) {
	truth := line(0, 20, 0.5, geom.Vec3{})
	// Estimate bad before t=10, perfect after.
	var est Trajectory
	for tt := 0.0; tt <= 20; tt += 0.5 {
		p := geom.Vec3{X: tt}
		if tt < 10 {
			p.Y = 2
		}
		est.Append(tt, p)
	}
	cum := ATE(est, truth)
	short := ShortTermATE(est, truth, 20, 5)
	if short > 1e-9 {
		t.Errorf("short-term ATE over clean window = %v", short)
	}
	if cum < 1 {
		t.Errorf("cumulative ATE should reflect old error: %v", cum)
	}
	// Short-term at t=10 covers the bad region.
	if s := ShortTermATE(est, truth, 10, 5); s < 1 {
		t.Errorf("short-term over bad window = %v", s)
	}
}

func TestCumulativeSeriesMonotoneTime(t *testing.T) {
	truth := line(0, 10, 0.5, geom.Vec3{})
	est := line(0, 10, 0.5, geom.Vec3{Y: 0.1})
	series := CumulativeSeries(est, truth, 1)
	if len(series) < 9 {
		t.Fatalf("series too short: %d", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].T <= series[i-1].T {
			t.Fatal("series time not increasing")
		}
		if math.Abs(series[i].ATE-0.1) > 1e-9 {
			t.Fatalf("ATE at %v = %v", series[i].T, series[i].ATE)
		}
	}
	if CumulativeSeries(Trajectory{}, truth, 1) != nil {
		t.Error("empty series should be nil")
	}
}

func TestShortTermSeries(t *testing.T) {
	truth := line(0, 20, 0.5, geom.Vec3{})
	est := line(0, 20, 0.5, geom.Vec3{Y: 0.2})
	s := ShortTermSeries(est, truth, 2, 5)
	if len(s) == 0 {
		t.Fatal("empty series")
	}
	for _, p := range s {
		if math.Abs(p.ATE-0.2) > 1e-9 {
			t.Fatalf("short-term ATE = %v", p.ATE)
		}
	}
}

func TestLatencies(t *testing.T) {
	var l Latencies
	if s := l.Stats(); s.N != 0 {
		t.Error("empty stats nonzero")
	}
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	s := l.Stats()
	if s.N != 100 {
		t.Errorf("N = %d", s.N)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 < 45*time.Millisecond || s.P50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 < 95*time.Millisecond {
		t.Errorf("p99 = %v", s.P99)
	}
}

// TestLatenciesQuantileNearestRank pins the nearest-rank semantics the
// floor indexing int(q*(N-1)) got wrong for small N: P99 of two
// samples must be the max, not the min.
func TestLatenciesQuantileNearestRank(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	cases := []struct {
		name          string
		samples       []int
		p50, p90, p99 int
	}{
		{"N=1", []int{7}, 7, 7, 7},
		{"N=2", []int{1, 9}, 1, 9, 9},
		{"N=4", []int{1, 2, 4, 8}, 2, 8, 8},
		{"N=100", seqInts(1, 100), 50, 90, 99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var l Latencies
			for _, v := range tc.samples {
				l.Add(ms(v))
			}
			s := l.Stats()
			if s.P50 != ms(tc.p50) {
				t.Errorf("P50 = %v, want %v", s.P50, ms(tc.p50))
			}
			if s.P90 != ms(tc.p90) {
				t.Errorf("P90 = %v, want %v", s.P90, ms(tc.p90))
			}
			if s.P99 != ms(tc.p99) {
				t.Errorf("P99 = %v, want %v", s.P99, ms(tc.p99))
			}
			if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
				t.Errorf("quantiles not monotone: %+v", s)
			}
		})
	}
}

func seqInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

func TestCPUMeter(t *testing.T) {
	m := NewCPUMeter()
	m.Add(30 * time.Millisecond)
	m.Time(func() { time.Sleep(5 * time.Millisecond) })
	if m.Busy() < 35*time.Millisecond {
		t.Errorf("busy = %v", m.Busy())
	}
	u := m.UtilizationOver(100 * time.Millisecond)
	if u < 0.35 || u > 0.6 {
		t.Errorf("utilization = %v", u)
	}
	if m.UtilizationOver(0) != 0 {
		t.Error("zero wall should give 0")
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			c.Add(2)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1000+8*2 {
		t.Errorf("counter = %d", got)
	}
	var g Gauge
	if g.Load() != 0 {
		t.Error("zero gauge not 0")
	}
	g.Set(-0.125)
	if g.Load() != -0.125 {
		t.Errorf("gauge = %v", g.Load())
	}
}
