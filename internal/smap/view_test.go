package smap

import (
	"math/rand"
	"sync"
	"testing"

	"slamshare/internal/geom"
)

// buildViewFixture makes a map with kf1–kf2 covisible (20 shared
// points) and kf3 connected weakly, mirroring the observation fixture
// of smap_test.go.
func buildViewFixture(t *testing.T) (*Map, *KeyFrame, *KeyFrame) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	m := NewMap(testVoc())
	kf1 := newKF(1, 1, rng, 40)
	kf2 := newKF(2, 1, rng, 40)
	m.AddKeyFrame(kf1)
	m.AddKeyFrame(kf2)
	for i := 0; i < 20; i++ {
		mp := &MapPoint{ID: ID(100 + i), Pos: geom.Vec3{X: float64(i)}}
		m.AddMapPoint(mp)
		if err := m.AddObservation(1, mp.ID, i); err != nil {
			t.Fatal(err)
		}
		if err := m.AddObservation(2, mp.ID, i); err != nil {
			t.Fatal(err)
		}
	}
	m.UpdateConnections(1, 15)
	m.UpdateConnections(2, 15)
	return m, kf1, kf2
}

func TestLocalViewCachedUntilRelevantMutation(t *testing.T) {
	m, _, _ := buildViewFixture(t)
	v1 := m.LocalView(1, 10)
	if len(v1.Points) != 20 {
		t.Fatalf("view has %d points, want 20", len(v1.Points))
	}
	if len(v1.KFs) != 2 {
		t.Fatalf("view has %d keyframes, want 2 (kf2 + self)", len(v1.KFs))
	}
	if v2 := m.LocalView(1, 10); v2 != v1 {
		t.Fatal("unchanged map rebuilt the view")
	}

	// An irrelevant mutation (a keyframe outside the window) must NOT
	// invalidate: the global version moves but the deps are unchanged.
	rng := rand.New(rand.NewSource(8))
	m.AddKeyFrame(newKF(999, 2, rng, 10))
	if v3 := m.LocalView(1, 10); v3 != v1 {
		t.Fatal("mutation outside the window invalidated the view")
	}

	// A relevant mutation (new binding on a window keyframe) must.
	m.AddMapPoint(&MapPoint{ID: 500, Pos: geom.Vec3{Z: 9}})
	if err := m.AddObservation(1, 500, 25); err != nil {
		t.Fatal(err)
	}
	v4 := m.LocalView(1, 10)
	if v4 == v1 {
		t.Fatal("binding on a window keyframe did not invalidate the view")
	}
	if _, ok := v4.Point(500); !ok {
		t.Fatal("rebuilt view misses the new point")
	}
}

func TestLocalViewSeesPoseAndEraseUpdates(t *testing.T) {
	m, _, _ := buildViewFixture(t)
	v1 := m.LocalView(1, 10)

	// Pose writes through the setter invalidate (the keyframe version
	// moves) and the rebuilt view carries the new pose.
	want := geom.SE3{R: geom.QuatFromAxisAngle(geom.Vec3{Z: 1}, 0.4), T: geom.Vec3{X: 5, Y: 5, Z: 5}}
	m.SetKeyFramePose(2, want)
	v2 := m.LocalView(1, 10)
	if v2 == v1 {
		t.Fatal("pose write did not invalidate the view")
	}
	found := false
	for _, vkf := range v2.KFs {
		if vkf.ID == 2 {
			found = true
			if vkf.Tcw.T != want.T {
				t.Fatalf("view pose %v, want %v", vkf.Tcw.T, want.T)
			}
		}
	}
	if !found {
		t.Fatal("kf2 missing from window")
	}

	// Erasing a window point zeroes bindings on window keyframes,
	// which invalidates; the rebuilt view drops the point.
	m.EraseMapPoint(100)
	v3 := m.LocalView(1, 10)
	if v3 == v2 {
		t.Fatal("point erase did not invalidate the view")
	}
	if _, ok := v3.Point(100); ok {
		t.Fatal("erased point still in view")
	}
	if len(v3.Points) != len(v2.Points)-1 {
		t.Fatalf("view has %d points, want %d", len(v3.Points), len(v2.Points)-1)
	}
}

func TestLocalViewUnknownKeyFrameInvalidatesOnInsert(t *testing.T) {
	m, _, _ := buildViewFixture(t)
	v := m.LocalView(77, 10)
	if len(v.KFs) != 0 || len(v.Points) != 0 {
		t.Fatal("unknown keyframe produced a non-empty view")
	}
	if m.LocalView(77, 10) != v {
		t.Fatal("empty view not cached")
	}
	rng := rand.New(rand.NewSource(9))
	m.AddKeyFrame(newKF(77, 1, rng, 10))
	if m.LocalView(77, 10) == v {
		t.Fatal("view not invalidated when its keyframe appeared")
	}
}

func TestLocalPointsMatchesViewAndReturnsLivePointers(t *testing.T) {
	m, _, _ := buildViewFixture(t)
	pts := m.LocalPoints(1, 10)
	view := m.LocalView(1, 10)
	if len(pts) != len(view.Points) {
		t.Fatalf("LocalPoints %d vs view %d", len(pts), len(view.Points))
	}
	for _, mp := range pts {
		live, ok := m.MapPoint(mp.ID)
		if !ok || live != mp {
			t.Fatal("LocalPoints returned a non-live pointer")
		}
	}
}

func TestConcurrentViewsAndMutations(t *testing.T) {
	m, _, _ := buildViewFixture(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := float64(i%50) + float64(w)
				m.SetKeyFramePose(ID(1+i%2), geom.SE3{R: geom.IdentityQuat(), T: geom.Vec3{X: k, Y: k, Z: k}})
			}
		}(w)
	}
	for i := 0; i < 2000; i++ {
		v := m.LocalView(1, 10)
		for _, kf := range v.KFs {
			// Writers only ever store equal-component translations, so
			// any mismatch is a torn pose leaking into a snapshot.
			if kf.Tcw.T.X != kf.Tcw.T.Y || kf.Tcw.T.Y != kf.Tcw.T.Z {
				t.Fatalf("torn pose in view: %+v", kf.Tcw.T)
			}
		}
	}
	close(stop)
	wg.Wait()
}
