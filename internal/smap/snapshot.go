package smap

import "sort"

// SnapshotRegion deep-copies a covisibility cluster out of the map
// without mutating it: the named keyframes plus every map point whose
// observers all lie inside the cluster (the cluster-private points —
// the set that would be orphaned if the keyframes were erased). This
// is the boundary-export primitive for cross-shard handoff: unlike the
// lifecycle evictor, which detaches a region as it encodes it, the
// exporter must keep serving the region until the peer shard commits,
// so it works on snapshot copies (the snapshotKF/snapshotMP idiom the
// observer queue uses).
//
// Callers that need the cluster to be mutually consistent — bindings
// in one keyframe matching observations in another — must hold the
// map-wide coordination lock (the server's gmu) across the call;
// per-stripe read locks alone only make each entity copy atomic.
// Results are sorted by ID for deterministic encoding.
func (m *Map) SnapshotRegion(ids []ID) ([]*KeyFrame, []*MapPoint) {
	in := make(map[ID]bool, len(ids))
	for _, id := range ids {
		in[id] = true
	}
	kfs := make([]*KeyFrame, 0, len(ids))
	mpSet := make(map[ID]bool)
	for _, id := range ids {
		s := &m.stripes[stripeOf(id)]
		s.mu.RLock()
		var c *KeyFrame
		if kf := s.keyframes[id]; kf != nil {
			c = snapshotKF(kf)
		}
		s.mu.RUnlock()
		if c == nil {
			continue
		}
		kfs = append(kfs, c)
		for _, mpID := range c.MapPoints {
			if mpID != 0 {
				mpSet[mpID] = true
			}
		}
	}
	mps := make([]*MapPoint, 0, len(mpSet))
	for mpID := range mpSet {
		s := &m.stripes[stripeOf(mpID)]
		s.mu.RLock()
		var c *MapPoint
		if mp := s.points[mpID]; mp != nil {
			private := true
			for kfID := range mp.Obs {
				if !in[kfID] {
					private = false
					break
				}
			}
			if private {
				c = snapshotMP(mp)
			}
		}
		s.mu.RUnlock()
		if c != nil {
			mps = append(mps, c)
		}
	}
	sort.Slice(kfs, func(i, j int) bool { return kfs[i].ID < kfs[j].ID })
	sort.Slice(mps, func(i, j int) bool { return mps[i].ID < mps[j].ID })
	return kfs, mps
}
